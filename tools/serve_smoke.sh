#!/usr/bin/env bash
# Scripted end-to-end smoke session against `rustsight serve`, exercising
# the daemon over real pipes the way an editor would:
#
#   1. initialize -> serverInfo sanity -> initialized -> initial
#      publishDiagnostics sweep (double_lock.mir must carry RS-DL-001);
#   2. didOpen clean.mir, didChange injecting a double-lock -> the
#      debounced re-analysis publishes RS-DL-001 for the edited buffer;
#   3. shutdown -> exit must terminate the daemon with exit code 0;
#   4. an abrupt EOF without shutdown must exit nonzero (abnormal);
#   5. --idle-timeout-ms must let an abandoned daemon exit 0 on its own.
#
# Usage: serve_smoke.sh <rustsight-binary> <mir-corpus-dir>
set -euo pipefail

RS=${1:?usage: serve_smoke.sh <rustsight-binary> <mir-corpus-dir>}
CORPUS=${2:?usage: serve_smoke.sh <rustsight-binary> <mir-corpus-dir>}

python3 - "$RS" "$CORPUS" <<'EOF'
import json
import os
import re
import subprocess
import sys
import time

rs = os.path.abspath(sys.argv[1])
corpus = os.path.abspath(sys.argv[2])


class LspPipe:
    """Minimal Content-Length-framed JSON-RPC client over a daemon's pipes."""

    def __init__(self, args):
        self.p = subprocess.Popen(args, stdin=subprocess.PIPE,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
        self.buf = b""

    def send(self, obj):
        payload = json.dumps(obj).encode()
        self.p.stdin.write(b"Content-Length: %d\r\n\r\n" % len(payload))
        self.p.stdin.write(payload)
        self.p.stdin.flush()

    def read_message(self):
        while True:
            m = re.search(rb"Content-Length: (\d+)\r\n\r\n", self.buf)
            if m:
                n = int(m.group(1))
                start = m.end()
                if len(self.buf) >= start + n:
                    payload = self.buf[start:start + n]
                    self.buf = self.buf[start + n:]
                    return json.loads(payload)
            chunk = self.p.stdout.read1(65536)
            if not chunk:
                raise SystemExit("daemon closed stdout mid-session")
            self.buf += chunk

    def wait_for(self, pred, what):
        for _ in range(1000):
            msg = self.read_message()
            if pred(msg):
                return msg
        raise SystemExit("never saw: " + what)


def publishes_for(uri):
    return lambda m: (m.get("method") == "textDocument/publishDiagnostics"
                      and m["params"]["uri"] == uri)


# --- 1+2+3: the full editor session -----------------------------------------
clean = os.path.join(corpus, "clean.mir")
clean_uri = "file://" + clean
double_lock_src = open(os.path.join(corpus, "double_lock.mir")).read()

s = LspPipe([rs, "serve", "--debounce-ms", "50", corpus])
s.send({"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}})
resp = s.wait_for(lambda m: m.get("id") == 1, "initialize response")
info = resp["result"]["serverInfo"]
assert info["name"] == "rustsight", info
assert info["ruleCount"] >= 18, info
assert info["schemaVersion"] >= 2, info
print("serve_smoke: serverInfo ok:", info)

s.send({"jsonrpc": "2.0", "method": "initialized", "params": {}})
pub = s.wait_for(publishes_for("file://" + os.path.join(corpus,
                                                        "double_lock.mir")),
                 "initial publishDiagnostics for double_lock.mir")
codes = [d["code"] for d in pub["params"]["diagnostics"]]
assert "RS-DL-001" in codes, codes
print("serve_smoke: initial sweep flagged double_lock.mir:", codes)

s.send({"jsonrpc": "2.0", "method": "textDocument/didOpen", "params": {
    "textDocument": {"uri": clean_uri, "languageId": "rustlite-mir",
                     "version": 1, "text": open(clean).read()}}})
s.send({"jsonrpc": "2.0", "method": "textDocument/didChange", "params": {
    "textDocument": {"uri": clean_uri, "version": 2},
    "contentChanges": [{"text": double_lock_src}]}})
pub = s.wait_for(lambda m: (publishes_for(clean_uri)(m)
                            and m["params"].get("version") == 2),
                 "publishDiagnostics for the edited buffer (version 2)")
codes = [d["code"] for d in pub["params"]["diagnostics"]]
assert codes == ["RS-DL-001"], codes
print("serve_smoke: didChange republished the injected bug:", codes)

s.send({"jsonrpc": "2.0", "id": 2, "method": "shutdown"})
s.wait_for(lambda m: m.get("id") == 2, "shutdown response")
s.send({"jsonrpc": "2.0", "method": "exit"})
rc = s.p.wait(timeout=30)
assert rc == 0, "clean shutdown must exit 0, got %d" % rc
print("serve_smoke: shutdown/exit contract ok (exit 0)")

# --- 4: abrupt EOF without shutdown is abnormal ------------------------------
s = LspPipe([rs, "serve", corpus])
s.send({"jsonrpc": "2.0", "id": 1, "method": "initialize", "params": {}})
s.wait_for(lambda m: m.get("id") == 1, "initialize response")
s.p.stdin.close()
rc = s.p.wait(timeout=30)
assert rc != 0, "EOF without shutdown must exit nonzero"
print("serve_smoke: abrupt EOF exits nonzero (%d)" % rc)

# --- 5: an abandoned daemon reaps itself on the idle timeout -----------------
p = subprocess.Popen([rs, "serve", "--idle-timeout-ms", "400"],
                     stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                     stderr=subprocess.PIPE)
start = time.time()
rc = p.wait(timeout=30)
err = p.stderr.read().decode()
assert rc == 0, "idle timeout must exit 0, got %d (%s)" % (rc, err)
assert "idle" in err or "traffic" in err, err
print("serve_smoke: idle timeout reaped the daemon after %.1fs (exit 0)"
      % (time.time() - start))

print("serve_smoke: all checks passed")
EOF

#!/usr/bin/env sh
# Regenerate every pinned JSON golden from the current build.
#
# Run from the repository root after an intentional schema or corpus
# change; the golden tests (testgen/GoldenJsonTest.cpp,
# testgen/EquivalenceSuiteTest.cpp) diff the CLI's live output against
# these files byte-for-byte, and CI re-runs this script to prove the
# checked-in goldens are fresh.
#
# Usage: tools/regen_goldens.sh [path/to/rustsight]
set -eu

RUSTSIGHT="${1:-./build/examples/rustsight}"
if [ ! -x "$RUSTSIGHT" ]; then
  echo "error: '$RUSTSIGHT' is not executable; build first or pass the path" >&2
  exit 2
fi
if [ ! -d tests/golden ]; then
  echo "error: run from the repository root" >&2
  exit 2
fi

# check exits 1 when it reports findings; that is the expected outcome
# for the bug-carrying golden corpora, so tolerate it explicitly.
run_check() {
  out="$1"
  shift
  "$RUSTSIGHT" check --json --jobs 1 --no-cache "$@" > "$out" || test $? -eq 1
}

run_check tests/golden/check.json \
  examples/mir/eval/uaf_post_drop_bug_0.mir examples/mir/eval/clean_0.mir
run_check tests/golden/regress_check.json tests/mir/regress/*.mir
"$RUSTSIGHT" eval --json examples/mir/eval > tests/golden/eval.json

echo "regenerated: tests/golden/{check,regress_check,eval}.json"

//===----------------------------------------------------------------------===//
//
// Conflicting-lock-order (ABBA) detection between thread entry points, the
// cause of seven blocking bugs in the paper's study (Section 6.1). Locks
// shared across threads are identified positionally: spawned thread
// functions receive them as parameters in a fixed order (the RustLite
// convention for Arc-cloned locks).
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

#include "mir/Intrinsics.h"

#include <functional>
#include <map>
#include <set>
#include <tuple>

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

/// A lock-order edge: while holding the lock rooted at parameter Held, the
/// function acquires the lock rooted at parameter Acquired.
struct OrderEdge {
  unsigned Held;
  unsigned Acquired;
  BlockId Block;
  size_t StmtIndex;
  SourceLocation Loc;
  /// When the acquisition happens inside a callee defined in another file,
  /// the callee's link info (for a counterpart span into that file) and the
  /// callee parameter the lock arrived through.
  const ExternalFunctionInfo *ExtCallee = nullptr;
  unsigned ExtParam = 0;
};

/// Appends the cross-file counterpart span of \p E, if its acquisition
/// happened inside an externally-defined callee.
void addExternalAcquireSpan(Diagnostic &D, const OrderEdge &E) {
  if (!E.ExtCallee || E.ExtParam >= E.ExtCallee->LockSites.size())
    return;
  const std::string *File = internFileName(E.ExtCallee->File);
  for (const LinkSite &S : E.ExtCallee->LockSites[E.ExtParam]) {
    diag::Span Span;
    Span.Loc = SourceLocation(File, S.Line, S.Col);
    Span.Label = "lock #" + std::to_string(E.Acquired) +
                 " acquired inside callee '" + E.ExtCallee->Name + "' here";
    Span.Function = E.ExtCallee->Name;
    D.Secondary.push_back(std::move(Span));
  }
}

/// Collects the param-rooted lock-order edges of one function, including
/// acquisitions that happen inside module-defined callees (via summaries).
std::vector<OrderEdge> collectEdges(AnalysisContext &Ctx, const Function &F) {
  std::vector<OrderEdge> Edges;
  const Cfg &G = Ctx.cfg(F);
  const MemoryAnalysis &MA = Ctx.memory(F);
  const ObjectTable &Objects = MA.objects();

  auto HeldParams = [&](const BitVec &State) {
    std::vector<unsigned> Out;
    for (LocalId P = 1; P <= F.NumArgs; ++P) {
      ObjId Pointee = Objects.paramPointee(P);
      ObjId Own = Objects.localObject(P);
      bool Held = false;
      if (Pointee != ~0u)
        Held |= MA.mayBeHeld(State, Pointee, true) ||
                MA.mayBeHeld(State, Pointee, false);
      Held |= MA.mayBeHeld(State, Own, true) || MA.mayBeHeld(State, Own, false);
      if (Held)
        Out.push_back(P);
    }
    return Out;
  };

  MemoryAnalysis::Cursor C = MA.cursor();
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    if (!G.isReachable(B))
      continue;
    const Terminator &T = F.Blocks[B].Term;
    if (T.K != Terminator::Kind::Call)
      continue;
    size_t AtTerm = F.Blocks[B].Statements.size();
    IntrinsicKind Kind = classifyIntrinsic(T.Callee);

    // The parameters whose locks this call acquires, each tagged with the
    // external callee it was acquired inside (null for direct/local).
    struct Acq {
      unsigned P;
      const ExternalFunctionInfo *Ext;
      unsigned ExtParam;
    };
    std::vector<Acq> Acquired;
    C.seek(B);
    const BitVec &State = C.stateAtTerminator();
    if (isLockAcquire(Kind) && !T.Args.empty()) {
      std::vector<ObjId> Roots;
      MA.lockRoots(State, T.Args[0], Roots);
      for (ObjId O : Roots)
        if (LocalId P = paramRootOfObject(F, Objects, O))
          Acquired.push_back({P, nullptr, 0});
    } else if (Kind == IntrinsicKind::None) {
      if (const FunctionSummary *S = Ctx.summaries().find(T.Callee)) {
        const ExternalFunctionInfo *Ext = Ctx.externalInfo(T.Callee);
        for (size_t I = 0; I != T.Args.size(); ++I) {
          unsigned Param = static_cast<unsigned>(I) + 1;
          if (Param >= S->AcquiresLockOnParam.size())
            break;
          if (S->AcquiresLockOnParam[Param] == LM_None ||
              !T.Args[I].isPlace())
            continue;
          std::vector<ObjId> Roots;
          MA.lockRoots(State, T.Args[I], Roots);
          for (ObjId O : Roots)
            if (LocalId P = paramRootOfObject(F, Objects, O))
              Acquired.push_back({P, Ext, Param});
        }
      }
    }
    if (Acquired.empty())
      continue;

    for (unsigned H : HeldParams(State))
      for (const Acq &A : Acquired)
        if (H != A.P)
          Edges.push_back({H, A.P, B, AtTerm, T.Loc, A.Ext, A.ExtParam});
  }
  return Edges;
}

} // namespace

void LockOrderDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  // Thread groups: locks are identified positionally by parameter index,
  // which is only meaningful among threads spawned by the same parent
  // (they receive the same locks in the same order). Without any explicit
  // spawns, fall back to comparing every pair of functions (single-file
  // analyses and tests).
  std::vector<std::vector<const Function *>> Groups;
  const auto &SpawnGroups = Ctx.callGraph().spawnGroups();
  if (SpawnGroups.empty()) {
    Groups.emplace_back();
    for (const Function &F : Ctx.module().functions())
      Groups.back().push_back(&F);
  } else {
    for (const auto &[Spawner, Threads] : SpawnGroups) {
      Groups.emplace_back();
      for (FuncId T : Threads)
        Groups.back().push_back(&Ctx.callGraph().function(T));
    }
  }

  std::map<const Function *, std::vector<OrderEdge>> EdgesByFn;
  auto EdgesOf = [&](const Function *F) -> const std::vector<OrderEdge> & {
    auto It = EdgesByFn.find(F);
    if (It == EdgesByFn.end())
      It = EdgesByFn.emplace(F, collectEdges(Ctx, *F)).first;
    return It->second;
  };

  // A cycle in the union lock-order graph whose edges come from at least
  // two distinct threads is a circular wait: the classic ABBA two-cycle,
  // or longer rings (t1: A->B, t2: B->C, t3: C->A). Cycles contributed by
  // a single function alone are already double-lock territory.
  for (const auto &Threads : Groups) {
    struct GEdge {
      unsigned Held;
      unsigned Acquired;
      const Function *Fn;
      const OrderEdge *Site;
    };
    std::vector<GEdge> Edges;
    for (const Function *F : Threads)
      for (const OrderEdge &E : EdgesOf(F))
        Edges.push_back({E.Held, E.Acquired, F, &E});
    if (Edges.empty())
      continue;

    // Enumerate simple cycles up to length 4, canonicalized by starting
    // at the cycle's smallest lock id so each ring reports once.
    constexpr unsigned MaxLen = 4;
    std::vector<const GEdge *> Path;
    std::set<unsigned> OnPath;

    auto Report = [&](const std::vector<const GEdge *> &Cycle) {
      std::set<const Function *> Fns;
      for (const GEdge *E : Cycle)
        Fns.insert(E->Fn);
      if (Fns.size() < 2)
        return;
      const GEdge *First = Cycle.front();
      Diagnostic D(BugKind::ConflictingLockOrder);
      D.Function = First->Fn->Name;
      D.Block = First->Site->Block;
      D.StmtIndex = First->Site->StmtIndex;
      D.Loc = First->Site->Loc;
      if (Cycle.size() == 2) {
        D.Message = "acquires lock #" + std::to_string(First->Acquired) +
                    " while holding lock #" + std::to_string(First->Held) +
                    ", but '" + Cycle[1]->Fn->Name.str() +
                    "' acquires them in the opposite order (ABBA deadlock)";
      } else {
        std::string Ring;
        for (const GEdge *E : Cycle)
          Ring += "#" + std::to_string(E->Held) + " -> ";
        Ring += "#" + std::to_string(First->Held);
        D.Message = "completes a circular lock-order across " +
                    std::to_string(Fns.size()) + " threads (" + Ring +
                    "); some interleaving deadlocks";
      }
      // The counterpart acquisitions that close the circular wait, one
      // span per remaining cycle edge (cross-function spans carry the
      // acquiring thread's function name).
      addExternalAcquireSpan(D, *First->Site);
      for (size_t I = 1; I != Cycle.size(); ++I) {
        const GEdge *E = Cycle[I];
        D.Secondary.push_back(spanAt(
            {E->Site->Block, E->Site->StmtIndex, E->Site->Loc},
            "'" + E->Fn->Name.str() + "' acquires lock #" +
                std::to_string(E->Acquired) + " while holding lock #" +
                std::to_string(E->Held) + " here",
            E->Fn->Name));
        addExternalAcquireSpan(D, *E->Site);
      }
      Diags.report(std::move(D));
    };

    std::function<void(unsigned, unsigned)> Dfs = [&](unsigned Start,
                                                      unsigned Cur) {
      for (const GEdge &E : Edges) {
        if (E.Held != Cur)
          continue;
        if (E.Acquired == Start) {
          Path.push_back(&E);
          if (Path.size() >= 2)
            Report(Path);
          Path.pop_back();
          continue;
        }
        // Only canonical cycles (every node > Start) and simple paths.
        if (E.Acquired < Start || OnPath.count(E.Acquired) ||
            Path.size() + 1 >= MaxLen)
          continue;
        Path.push_back(&E);
        OnPath.insert(E.Acquired);
        Dfs(Start, E.Acquired);
        OnPath.erase(E.Acquired);
        Path.pop_back();
      }
    };
    std::set<unsigned> Starts;
    for (const GEdge &E : Edges)
      Starts.insert(E.Held);
    for (unsigned Start : Starts) {
      OnPath = {Start};
      Dfs(Start, Start);
    }
  }
}

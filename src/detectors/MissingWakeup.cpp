//===----------------------------------------------------------------------===//
//
// Missing-wakeup detection for the paper's Condvar and channel blocking
// bugs (Section 6.1, Table 3): a Condvar::wait whose thread group contains
// no notifier, or a Receiver::recv whose group contains no sender, blocks
// forever ("one thread is blocked at wait() of a Condvar, while no other
// threads invoke notify_one() or notify_all()").
//
// Scope: threads spawned by the same parent form a group (they are the
// candidate notifiers for each other); functions not reachable from any
// spawn are checked module-globally.
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

#include "mir/Intrinsics.h"

using namespace rs;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

struct GroupFacts {
  bool AnyNotify = false;
  bool AnySend = false;
  /// (function, block) of each blocking call.
  std::vector<std::pair<const Function *, BlockId>> Waits;
  std::vector<std::pair<const Function *, BlockId>> Recvs;
};

void scanFunction(const Function &F, GroupFacts &Facts) {
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    const Terminator &T = F.Blocks[B].Term;
    if (T.K != Terminator::Kind::Call)
      continue;
    switch (classifyIntrinsic(T.Callee)) {
    case IntrinsicKind::CondvarNotify:
      Facts.AnyNotify = true;
      break;
    case IntrinsicKind::ChannelSend:
      Facts.AnySend = true;
      break;
    case IntrinsicKind::CondvarWait:
      Facts.Waits.emplace_back(&F, B);
      break;
    case IntrinsicKind::ChannelRecv:
      Facts.Recvs.emplace_back(&F, B);
      break;
    default:
      break;
    }
  }
}

void reportFacts(const GroupFacts &Facts, DiagnosticEngine &Diags) {
  auto Report = [&Diags](const std::pair<const Function *, BlockId> &Site,
                         BugKind Kind, const char *Message,
                         const char *Note) {
    Diagnostic D(Kind);
    D.Function = Site.first->Name;
    D.Block = Site.second;
    D.StmtIndex = Site.first->Blocks[Site.second].Statements.size();
    D.Loc = Site.first->Blocks[Site.second].Term.Loc;
    D.Message = Message;
    // The bug's defining evidence is an *absence* (no notifier/sender
    // exists), so there is no second program point to span; say so.
    D.Notes.push_back(Note);
    Diags.report(std::move(D));
  };
  if (!Facts.AnyNotify)
    for (const auto &Site : Facts.Waits)
      Report(Site, BugKind::WaitNoNotify,
             "Condvar::wait blocks, but no thread in this group ever calls "
             "notify_one/notify_all",
             "searched every function reachable from this thread group: no "
             "notify_one/notify_all call exists");
  if (!Facts.AnySend)
    for (const auto &Site : Facts.Recvs)
      Report(Site, BugKind::RecvNoSender,
             "Receiver::recv blocks, but no thread in this group ever sends "
             "to a channel",
             "searched every function reachable from this thread group: no "
             "Sender::send call exists");
}

} // namespace

void MissingWakeupDetector::run(AnalysisContext &Ctx,
                                DiagnosticEngine &Diags) {
  const mir::Module &M = Ctx.module();
  const analysis::CallGraph &CG = Ctx.callGraph();
  using analysis::FuncId;

  // Partition functions into spawn groups plus a module-global remainder.
  BitVec Grouped(CG.numFunctions());
  BitVec Members(CG.numFunctions());
  for (const auto &[Spawner, Threads] : CG.spawnGroups()) {
    GroupFacts Facts;
    Members.clear();
    CG.reachableFromInto(Spawner, Members);
    for (FuncId T : Threads)
      CG.reachableFromInto(T, Members);
    // Scan members in function-name order (the old string-set iteration).
    for (FuncId Id : CG.functionsByName()) {
      if (!Members.test(Id))
        continue;
      scanFunction(CG.function(Id), Facts);
      Grouped.set(Id);
    }
    reportFacts(Facts, Diags);
  }

  GroupFacts Rest;
  for (FuncId Id = 0; Id != CG.numFunctions(); ++Id)
    if (!Grouped.test(Id))
      scanFunction(M.functions()[Id], Rest);
  reportFacts(Rest, Diags);
}

//===----------------------------------------------------------------------===//
//
// Missing-wakeup detection for the paper's Condvar and channel blocking
// bugs (Section 6.1, Table 3): a Condvar::wait whose thread group contains
// no notifier, or a Receiver::recv whose group contains no sender, blocks
// forever ("one thread is blocked at wait() of a Condvar, while no other
// threads invoke notify_one() or notify_all()").
//
// Scope: threads spawned by the same parent form a group (they are the
// candidate notifiers for each other); functions not reachable from any
// spawn are checked module-globally.
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

#include "mir/Intrinsics.h"

#include <set>

using namespace rs;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

struct GroupFacts {
  bool AnyNotify = false;
  bool AnySend = false;
  /// (function, block) of each blocking call.
  std::vector<std::pair<const Function *, BlockId>> Waits;
  std::vector<std::pair<const Function *, BlockId>> Recvs;
};

void scanFunction(const Function &F, GroupFacts &Facts) {
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    const Terminator &T = F.Blocks[B].Term;
    if (T.K != Terminator::Kind::Call)
      continue;
    switch (classifyIntrinsic(T.Callee)) {
    case IntrinsicKind::CondvarNotify:
      Facts.AnyNotify = true;
      break;
    case IntrinsicKind::ChannelSend:
      Facts.AnySend = true;
      break;
    case IntrinsicKind::CondvarWait:
      Facts.Waits.emplace_back(&F, B);
      break;
    case IntrinsicKind::ChannelRecv:
      Facts.Recvs.emplace_back(&F, B);
      break;
    default:
      break;
    }
  }
}

void reportFacts(const GroupFacts &Facts, DiagnosticEngine &Diags) {
  auto Report = [&Diags](const std::pair<const Function *, BlockId> &Site,
                         BugKind Kind, const char *Message) {
    Diagnostic D;
    D.Kind = Kind;
    D.Function = Site.first->Name;
    D.Block = Site.second;
    D.StmtIndex = Site.first->Blocks[Site.second].Statements.size();
    D.Loc = Site.first->Blocks[Site.second].Term.Loc;
    D.Message = Message;
    Diags.report(std::move(D));
  };
  if (!Facts.AnyNotify)
    for (const auto &Site : Facts.Waits)
      Report(Site, BugKind::WaitNoNotify,
             "Condvar::wait blocks, but no thread in this group ever calls "
             "notify_one/notify_all");
  if (!Facts.AnySend)
    for (const auto &Site : Facts.Recvs)
      Report(Site, BugKind::RecvNoSender,
             "Receiver::recv blocks, but no thread in this group ever sends "
             "to a channel");
}

} // namespace

void MissingWakeupDetector::run(AnalysisContext &Ctx,
                                DiagnosticEngine &Diags) {
  const mir::Module &M = Ctx.module();
  const analysis::CallGraph &CG = Ctx.callGraph();

  // Partition functions into spawn groups plus a module-global remainder.
  std::set<std::string> Grouped;
  for (const auto &[Spawner, Threads] : CG.spawnGroups()) {
    GroupFacts Facts;
    std::set<std::string> Members = CG.reachableFrom(Spawner);
    for (const std::string &T : Threads)
      Members.merge(CG.reachableFrom(T));
    for (const std::string &Name : Members) {
      if (const Function *F = M.findFunction(Name)) {
        scanFunction(*F, Facts);
        Grouped.insert(Name);
      }
    }
    reportFacts(Facts, Diags);
  }

  GroupFacts Rest;
  for (const auto &F : M.functions())
    if (!Grouped.count(F->Name))
      scanFunction(*F, Rest);
  reportFacts(Rest, Diags);
}

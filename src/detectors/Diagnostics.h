//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detector-facing names for the unified diagnostics core in diag/Diag.h.
/// BugKind is the bug-rule prefix of diag::RuleId (the enumerators and
/// their order are unchanged), and the kind-name helpers delegate to the
/// Rules.def table, so the historical spellings cannot drift from the rule
/// catalog.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_DIAGNOSTICS_H
#define RUSTSIGHT_DETECTORS_DIAGNOSTICS_H

#include "diag/Diag.h"

#include <string_view>

namespace rs::detectors {

/// The bug classes RustSight detects (the bug-rule prefix of
/// diag::RuleId). The first two are the detectors the paper built
/// (Section 7); the rest implement the paper's "future detector"
/// suggestions from Sections 5-7.
using BugKind = diag::RuleId;

using Diagnostic = diag::Diagnostic;
using DiagnosticEngine = diag::DiagnosticEngine;

/// Short stable identifier ("use-after-free") for a bug kind.
inline const char *bugKindName(BugKind K) { return diag::ruleName(K); }

/// Reverses bugKindName over the *bug* rules only; false when \p Name
/// matches no bug kind (the result cache uses this to reject payloads from
/// a different detector set).
inline bool bugKindFromName(std::string_view Name, BugKind &Out) {
  return diag::bugRuleFromName(Name, Out);
}

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_DIAGNOSTICS_H

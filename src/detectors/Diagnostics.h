//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bug reports produced by the static detectors and the engine that
/// collects, deduplicates, and renders them.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_DIAGNOSTICS_H
#define RUSTSIGHT_DETECTORS_DIAGNOSTICS_H

#include "mir/Mir.h"
#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace rs::detectors {

/// The bug classes RustSight detects. The first two are the detectors the
/// paper built (Section 7); the rest implement the paper's "future detector"
/// suggestions from Sections 5-7.
enum class BugKind {
  UseAfterFree,
  DoubleLock,
  ConflictingLockOrder,
  InvalidFree,
  DoubleFree,
  UninitRead,
  InteriorMutability,
  WaitNoNotify,   ///< Condvar::wait with no notifier anywhere (8 bugs).
  RecvNoSender,   ///< Receiver::recv with no sender anywhere (5 bugs).
  BorrowConflict, ///< RefCell borrow_mut while a borrow is alive: the
                  ///< runtime-panic misuse behind Insight 9's RefCell bugs.
  DanglingReturn, ///< Returning a pointer into the function's own dead
                  ///< frame (Section 4.3's lifetime-to-static casts).
};

/// Short stable identifier ("use-after-free") for a bug kind.
const char *bugKindName(BugKind K);

/// Reverses bugKindName; false when \p Name matches no kind (the result
/// cache uses this to reject payloads from a different detector set).
bool bugKindFromName(std::string_view Name, BugKind &Out);

/// One detector finding, anchored at a statement or terminator.
struct Diagnostic {
  BugKind Kind;
  std::string Function;
  mir::BlockId Block = 0;
  /// Statement index within the block; Statements.size() means the
  /// terminator.
  size_t StmtIndex = 0;
  std::string Message;
  SourceLocation Loc;

  /// Renders "function:bbN[i]: kind: message" (plus file location if known).
  std::string toString() const;
};

/// Collects diagnostics across detectors and renders them deterministically.
class DiagnosticEngine {
public:
  void report(Diagnostic D);

  /// All diagnostics, sorted by (function, block, statement, kind).
  const std::vector<Diagnostic> &diagnostics();

  size_t count() const { return Diags.size(); }
  size_t countOfKind(BugKind K) const;

  /// One line per diagnostic.
  std::string renderText();

  /// A JSON array of diagnostic objects.
  std::string renderJson();

private:
  void sortDiags();

  std::vector<Diagnostic> Diags;
  bool Sorted = true;
};

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_DIAGNOSTICS_H

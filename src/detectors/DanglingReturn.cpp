//===----------------------------------------------------------------------===//
//
// Dangling-return detection: at every return site, if the return value may
// point at one of the function's own locals, the caller receives a pointer
// into a dead frame (Section 4.3's lifetime-to-static casting pattern).
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

void DanglingReturnDetector::run(AnalysisContext &Ctx,
                                 DiagnosticEngine &Diags) {
  for (const auto &F : Ctx.module().functions()) {
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();
    MemoryAnalysis::Cursor C = MA.cursor();
    std::vector<ObjId> Pointees;

    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B) ||
          F.Blocks[B].Term.K != Terminator::Kind::Return)
        continue;
      size_t AtTerm = F.Blocks[B].Statements.size();
      C.seek(B);
      const BitVec &State = C.stateAtTerminator();
      Pointees.clear();
      MA.pointees(State, F.returnLocal(), Pointees);
      for (ObjId O : Pointees) {
        LocalId L = 0;
        if (!Objects.isLocalObject(O, L))
          continue; // Heap and parameter pointees outlive the call.
        Diagnostic D(BugKind::DanglingReturn);
        D.Function = F.Name;
        D.Block = B;
        D.StmtIndex = AtTerm;
        D.Loc = F.Blocks[B].Term.Loc;
        D.Message = "the returned value may point at local _" +
                    std::to_string(L) +
                    ", whose storage dies when this function returns";
        // Second program point: where the pointed-at frame slot dies — its
        // StorageDead when one runs before the return, otherwise the
        // allocation that pins it to this frame.
        addSpans(D, MA.transitionSites(ObjEvent::StorageDead, O),
                 "storage of local _" + std::to_string(L) + " ends here");
        if (D.Secondary.empty()) {
          for (BlockId LB = 0; LB != F.numBlocks(); ++LB) {
            const auto &Stmts = F.Blocks[LB].Statements;
            for (size_t I = 0; I != Stmts.size(); ++I)
              if (Stmts[I].K == Statement::Kind::StorageLive &&
                  Stmts[I].Local == L)
                D.Secondary.push_back(
                    spanAt({LB, I, Stmts[I].Loc},
                           "local _" + std::to_string(L) +
                               " lives only in this function's frame, "
                               "allocated here"));
          }
        }
        if (D.Secondary.empty())
          D.Notes.push_back("local _" + std::to_string(L) +
                            "'s frame storage is gone once this return "
                            "executes");
        Diags.report(std::move(D));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in static bug detectors.
///
/// UseAfterFreeDetector and DoubleLockDetector reimplement the two detectors
/// the paper built (Section 7.1/7.2); the others implement the paper's
/// concrete detector suggestions: invalid-free and double-free (Section
/// 5.1/7.1), uninitialized reads (Table 2), conflicting lock orders
/// (Section 6.1), and interior-mutability misuse on Sync types (Section
/// 6.2, Figure 9, Suggestion 8).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_DETECTORS_H
#define RUSTSIGHT_DETECTORS_DETECTORS_H

#include "detectors/Detector.h"

namespace rs::detectors {

/// Reports dereferences of pointers whose pointee may be dropped, freed, or
/// storage-dead — the paper's MIR use-after-free detector: it "maintains the
/// state of each variable (alive or dead) by monitoring when MIR calls
/// StorageLive or StorageDead", with a points-to analysis covering ownership
/// moves, and reports when a dereferenced pointer's object is dead.
class UseAfterFreeDetector : public Detector {
public:
  /// \p FocusOnUnsafe enables the paper's Suggestion 5: skip functions
  /// that never touch unsafe memory (faster; misses purely-safe
  /// use-after-scope patterns — see UnsafeScope.h).
  explicit UseAfterFreeDetector(bool FocusOnUnsafe = false)
      : FocusOnUnsafe(FocusOnUnsafe) {}

  const char *name() const override { return "use-after-free"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;

private:
  bool FocusOnUnsafe;
};

/// Reports acquiring a lock whose guard from an earlier acquisition is still
/// alive — the paper's double-lock detector: it identifies lock() call
/// sites, computes the guard's lifetime (Rust releases the lock implicitly
/// when the guard dies), and reports a second conflicting acquisition of the
/// same lock inside that critical section, including through callees.
class DoubleLockDetector : public Detector {
public:
  const char *name() const override { return "double-lock"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports cyclic lock-acquisition orders between thread entry points
/// (classic ABBA deadlocks, seven of the paper's blocking bugs). Locks are
/// identified positionally: spawned thread functions receive the shared
/// locks as parameters in a fixed order.
class LockOrderDetector : public Detector {
public:
  const char *name() const override { return "conflicting-lock-order"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports drops of values containing uninitialized memory: dropping an
/// uninitialized local, or assigning through a pointer to uninitialized
/// memory when the pointee type runs destructors (the Redox _fdopen bug,
/// Figure 6).
class InvalidFreeDetector : public Detector {
public:
  const char *name() const override { return "invalid-free"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports values dropped twice: a drop of an already-dropped object, and
/// the ptr::read pattern that duplicates ownership so two owners drop the
/// same pointee (Section 5.1).
class DoubleFreeDetector : public Detector {
public:
  const char *name() const override { return "double-free"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports reads through pointers whose pointee memory may still be
/// uninitialized (e.g. reading a buffer fresh out of alloc()).
class UninitReadDetector : public Detector {
public:
  const char *name() const override { return "uninitialized-read"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports unsynchronized writes to shared state through an immutably
/// borrowed &self in methods of types declared Sync (Figure 9): the store
/// is flagged unless an exclusive lock is held or the update is atomic.
class InteriorMutabilityDetector : public Detector {
public:
  const char *name() const override { return "interior-mutability"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports blocking waits whose wake-up can never arrive: Condvar::wait
/// calls in modules with no notify_one/notify_all at all (8 of the paper's
/// blocking bugs: "one thread is blocked at wait() of a Condvar, while no
/// other threads invoke notify"), and Receiver::recv calls in modules with
/// no Sender::send (5 bugs blocked pulling from a channel nobody feeds).
/// The whole-module scope is deliberately coarse — matching candidate
/// notifiers to waits any finer would need cross-thread alias information
/// the paper's detectors also lack.
class MissingWakeupDetector : public Detector {
public:
  const char *name() const override { return "missing-wakeup"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

/// Reports functions returning a pointer into their own frame — a local
/// (or by-value parameter) whose storage dies at return. Safe Rust rejects
/// this, but unsafe lifetime casts smuggle it through (one of Section
/// 4.3's improper encapsulations: "using type casting to change objects'
/// lifetime to static").
class DanglingReturnDetector : public Detector {
public:
  const char *name() const override { return "dangling-return"; }
  void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) override;
};

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_DETECTORS_H

//===----------------------------------------------------------------------===//
//
// The paper's use-after-free detector (Section 7.1), reimplemented over
// RustLite MIR. On the paper's studied applications this design found four
// previously unknown bugs with three false positives.
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"
#include "detectors/PlaceUses.h"
#include "detectors/UnsafeScope.h"

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

/// Appends counterpart spans into other files: for every drop site that is
/// a call to an externally-defined function with a drop effect, point at
/// the statements inside the callee (in its own file) where the pointee may
/// actually die. This is the cross-file half of the paper's two-point UAF
/// pattern — the free lives in a different file than the use.
void addExternalDropSpans(AnalysisContext &Ctx, Diagnostic &D,
                          const Function &F,
                          const std::vector<StatePoint> &DropPoints) {
  for (const StatePoint &P : DropPoints) {
    const BasicBlock &BB = F.Blocks[P.Block];
    if (P.StmtIndex != BB.Statements.size() ||
        BB.Term.K != Terminator::Kind::Call)
      continue;
    const ExternalFunctionInfo *Info = Ctx.externalInfo(BB.Term.Callee);
    if (!Info)
      continue;
    const std::string *File = internFileName(Info->File);
    for (unsigned Param = 1; Param < Info->DropSites.size(); ++Param) {
      if (!Info->Summary.DropsParamPointee[Param])
        continue;
      for (const LinkSite &S : Info->DropSites[Param]) {
        diag::Span Span;
        Span.Loc = SourceLocation(File, S.Line, S.Col);
        Span.Label = "may be dropped inside callee '" + Info->Name + "' here";
        Span.Function = Info->Name;
        D.Secondary.push_back(std::move(Span));
      }
    }
  }
}

/// Checks every dereferencing access in \p Uses against the memory state in
/// \p State.
void checkUses(AnalysisContext &Ctx, const MemoryAnalysis &MA,
               const BitVec &State, const std::vector<PlaceUse> &Uses,
               const Function &F, BlockId B, size_t StmtIndex,
               SourceLocation Loc, DiagnosticEngine &Diags) {
  const ObjectTable &Objects = MA.objects();
  for (const PlaceUse &U : Uses) {
    if (!U.P->hasDeref())
      continue;
    std::vector<ObjId> Roots;
    MA.pointees(State, U.P->Base, Roots);
    for (ObjId O : Roots) {
      if (O == Objects.unknown())
        continue;
      const char *Why = nullptr;
      ObjEvent DeathEvent = ObjEvent::Dropped;
      if (MA.mayBeDropped(State, O)) {
        Why = "may already be dropped";
      } else if (MA.mayBeStorageDead(State, O)) {
        Why = "is out of scope (storage dead)";
        DeathEvent = ObjEvent::StorageDead;
      }
      if (!Why)
        continue;
      Diagnostic D(BugKind::UseAfterFree);
      D.Function = F.Name;
      D.Block = B;
      D.StmtIndex = StmtIndex;
      D.Loc = Loc;
      D.Message = std::string(U.IsWrite ? "write through" : "read through") +
                  " pointer " + U.P->toString() + ", but its target " +
                  Objects.name(O) + " " + Why;
      // The paper's pattern has two program points: the use (primary) and
      // the free. Mark everywhere the target may have died.
      std::vector<StatePoint> DeathSites = MA.transitionSites(DeathEvent, O);
      addSpans(D, DeathSites,
               DeathEvent == ObjEvent::Dropped
                   ? "target " + Objects.name(O) + " may be dropped here"
                   : "storage of " + Objects.name(O) + " ends here");
      if (DeathEvent == ObjEvent::Dropped)
        addExternalDropSpans(Ctx, D, F, DeathSites);
      if (D.Secondary.empty())
        D.Notes.push_back("the target is already dead on entry to this "
                          "function along every flagged path");
      Diags.report(std::move(D));
    }
  }
}

} // namespace

void UseAfterFreeDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  for (const Function &F : Ctx.module().functions()) {
    if (FocusOnUnsafe && !functionTouchesUnsafeMemory(F))
      continue; // Suggestion 5: safe code unrelated to unsafe is skipped.
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    MemoryAnalysis::Cursor C = MA.cursor();
    std::vector<PlaceUse> Uses;
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      C.seek(B);
      while (!C.atTerminator()) {
        Uses.clear();
        collectUses(C.statement(), Uses);
        checkUses(Ctx, MA, C.state(), Uses, F, B, C.index(),
                  C.statement().Loc, Diags);
        C.advance();
      }
      Uses.clear();
      const Terminator &T = F.Blocks[B].Term;
      collectUses(T, Uses);
      checkUses(Ctx, MA, C.state(), Uses, F, B, C.index(), T.Loc, Diags);
    }
  }
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detector framework: a shared AnalysisContext that caches per-function
/// analyses, the Detector interface, and the registry that runs every
/// built-in detector over a module.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_DETECTOR_H
#define RUSTSIGHT_DETECTORS_DETECTOR_H

#include "analysis/CallGraph.h"
#include "analysis/Memory.h"
#include "analysis/Summaries.h"
#include "detectors/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rs::detectors {

/// Caches the module-level and per-function analyses detectors share, so a
/// battery of detectors pays for each analysis once.
class AnalysisContext {
public:
  explicit AnalysisContext(const mir::Module &M);

  const mir::Module &module() const { return M; }
  const analysis::SummaryMap &summaries() const { return Summaries; }
  const analysis::CallGraph &callGraph() const { return CG; }

  /// The (cached) CFG of \p F.
  const analysis::Cfg &cfg(const mir::Function &F);

  /// The (cached) memory analysis of \p F, computed with summaries.
  const analysis::MemoryAnalysis &memory(const mir::Function &F);

private:
  struct PerFunction {
    std::unique_ptr<analysis::Cfg> G;
    std::unique_ptr<analysis::MemoryAnalysis> MA;
  };

  const mir::Module &M;
  analysis::SummaryMap Summaries;
  analysis::CallGraph CG;
  std::map<const mir::Function *, PerFunction> Cache;

  PerFunction &entry(const mir::Function &F);
};

/// A static bug detector.
class Detector {
public:
  virtual ~Detector() = default;

  /// Stable identifier, e.g. "use-after-free".
  virtual const char *name() const = 0;

  /// Scans the whole module, reporting findings into \p Diags.
  virtual void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) = 0;
};

/// Instantiates every built-in detector, in deterministic order.
std::vector<std::unique_ptr<Detector>> makeAllDetectors();

/// Convenience: runs every built-in detector over \p M.
void runAllDetectors(const mir::Module &M, DiagnosticEngine &Diags);

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_DETECTOR_H

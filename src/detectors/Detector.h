//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detector framework: a shared AnalysisContext that caches per-function
/// analyses, the Detector interface, and the registry that runs every
/// built-in detector over a module.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_DETECTOR_H
#define RUSTSIGHT_DETECTORS_DETECTOR_H

#include "analysis/CallGraph.h"
#include "analysis/Link.h"
#include "analysis/Memory.h"
#include "analysis/Summaries.h"
#include "detectors/Diagnostics.h"
#include "support/Budget.h"

#include <memory>
#include <string>
#include <vector>

namespace rs::detectors {

/// Resource limits for one AnalysisContext, threaded into every analysis it
/// runs. All zero/null means unlimited (the historical behavior).
struct AnalysisLimits {
  /// Shared budget for the whole context (typically one file). Analyses
  /// drain it cooperatively; when it is exhausted they degrade instead of
  /// running on. Not owned; may be null.
  Budget *ContextBudget = nullptr;

  /// Per-function cap on dataflow block updates (0 = unlimited). Bounds one
  /// pathological CFG without starving the rest of the module.
  uint64_t MaxDataflowSteps = 0;

  /// Fixpoint rounds for interprocedural summaries.
  unsigned MaxSummaryRounds = 8;

  /// Cross-file summary environment from the whole-program link step
  /// (Link.h). Calls to functions this module does not define resolve
  /// through it, and detectors emit counterpart spans into the defining
  /// files. Null in per-file mode. Not owned; must stay alive and immutable
  /// for the context's lifetime.
  const analysis::ExternalSummaries *External = nullptr;
};

/// Caches the module-level and per-function analyses detectors share, so a
/// battery of detectors pays for each analysis once.
class AnalysisContext {
public:
  explicit AnalysisContext(const mir::Module &M)
      : AnalysisContext(M, AnalysisLimits()) {}

  AnalysisContext(const mir::Module &M, const AnalysisLimits &Limits);

  const mir::Module &module() const { return M; }
  const analysis::SummaryMap &summaries() const { return Summaries; }
  const analysis::CallGraph &callGraph() const { return CG; }

  /// The (cached) CFG of \p F.
  const analysis::Cfg &cfg(const mir::Function &F);

  /// The (cached) memory analysis of \p F, computed with summaries. Under a
  /// budget the result may be degraded; see memoryDegraded().
  const analysis::MemoryAnalysis &memory(const mir::Function &F);

  // --- Degradation ladder introspection -----------------------------------

  /// False when the budget truncated summary computation: detectors still
  /// run, but with per-function-only interprocedural knowledge.
  bool summariesComplete() const { return SummariesOk; }

  /// True when \p F's memory analysis hit its budget before the fixpoint
  /// (only meaningful after memory(F) has been requested).
  bool memoryDegraded(const mir::Function &F) const;

  /// True when anything computed so far was budget-degraded.
  bool anyDegraded() const;

  /// The shared context budget (null when unlimited).
  const Budget *contextBudget() const { return Limits.ContextBudget; }

  /// Cross-file info for externally-defined callee \p Name (effect sites +
  /// defining file for counterpart spans), or null in per-file mode or for
  /// names the link step did not resolve.
  const analysis::ExternalFunctionInfo *
  externalInfo(std::string_view Name) const {
    return Limits.External ? Limits.External->find(Name) : nullptr;
  }

private:
  struct PerFunction {
    std::unique_ptr<analysis::Cfg> G;
    std::unique_ptr<analysis::MemoryAnalysis> MA;
    /// Per-function dataflow budget, chained to the context budget; kept
    /// alive here so its exhaustion state stays inspectable.
    std::unique_ptr<Budget> DfBudget;
  };

  const mir::Module &M;
  AnalysisLimits Limits;
  bool SummariesOk = true;
  analysis::CallGraph CG; ///< Built first; shared with summary scheduling.
  analysis::SummaryMap Summaries;
  /// Dense per-function cache indexed by function ordinal (= CallGraph id).
  /// On unbudgeted contexts the entries start out adopted from the summary
  /// computation, which already solved every function's memory analysis
  /// against the final summaries.
  std::vector<PerFunction> Cache;

  PerFunction &entry(const mir::Function &F);
};

/// Builds a labeled secondary span from an analysis program point.
/// \p Function names the enclosing function only when it differs from the
/// diagnostic's own (cross-function spans, e.g. lock-order counterparts).
inline diag::Span spanAt(const analysis::StatePoint &P, std::string Label,
                         std::string Function = std::string()) {
  diag::Span S;
  S.Loc = P.Loc;
  S.Label = std::move(Label);
  S.Function = std::move(Function);
  return S;
}

/// Appends one \p Label span per transition site. Sites arrive sorted by
/// program point (see MemoryAnalysis::transitionSites), so the resulting
/// span order is deterministic.
inline void addSpans(Diagnostic &D,
                     const std::vector<analysis::StatePoint> &Sites,
                     std::string_view Label) {
  for (const analysis::StatePoint &P : Sites)
    D.Secondary.push_back(spanAt(P, std::string(Label)));
}

/// A static bug detector.
class Detector {
public:
  virtual ~Detector() = default;

  /// Stable identifier, e.g. "use-after-free".
  virtual const char *name() const = 0;

  /// Scans the whole module, reporting findings into \p Diags.
  virtual void run(AnalysisContext &Ctx, DiagnosticEngine &Diags) = 0;
};

/// Instantiates every built-in detector, in deterministic order.
std::vector<std::unique_ptr<Detector>> makeAllDetectors();

/// Convenience: runs every built-in detector over \p M.
void runAllDetectors(const mir::Module &M, DiagnosticEngine &Diags);

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_DETECTOR_H

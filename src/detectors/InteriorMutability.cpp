//===----------------------------------------------------------------------===//
//
// Interior-mutability misuse detection (Figure 9, Insight 10, Suggestion 8):
// "When a struct is sharable (e.g. implementing the Sync trait) and has a
// method immutably borrowing self, we can analyze whether self is modified
// in the method and whether the modification is unsynchronized. If so, we
// can report a potential bug."
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

#include "mir/Intrinsics.h"

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

/// True if the first parameter of \p F is an immutable reference (&T, not
/// &mut T) to a type the module declares Sync. Sets \p AdtName.
bool isSyncSelfMethod(const Function &F, const Module &M,
                      std::string &AdtName) {
  if (F.NumArgs < 1)
    return false;
  const Type *SelfTy = F.localType(1);
  if (!SelfTy->isRef() || SelfTy->isMutPtr())
    return false;
  const Type *Pointee = SelfTy->pointee();
  if (!Pointee->isAdt() || !M.isSync(Pointee->adtName()))
    return false;
  AdtName = Pointee->adtName();
  return true;
}

/// True if any exclusive lock may be held in \p State — a coarse "the writer
/// synchronized somehow" test that keeps lock-protected methods quiet.
bool anyExclusiveLockHeld(const MemoryAnalysis &MA, const BitVec &State) {
  for (ObjId O = 0; O != MA.objects().numObjects(); ++O)
    if (MA.mayBeHeld(State, O, /*Exclusive=*/true))
      return true;
  return false;
}

} // namespace

void InteriorMutabilityDetector::run(AnalysisContext &Ctx,
                                     DiagnosticEngine &Diags) {
  const Module &M = Ctx.module();
  for (const auto &F : M.functions()) {
    std::string AdtName;
    if (!isSyncSelfMethod(F, M, AdtName))
      continue;
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();
    ObjId SelfObj = Objects.paramPointee(1);
    if (SelfObj == ~0u)
      continue;

    auto Report = [&](BlockId B, size_t StmtIndex, SourceLocation Loc,
                      const std::string &Via) {
      Diagnostic D(BugKind::InteriorMutability);
      D.Function = F.Name;
      D.Block = B;
      D.StmtIndex = StmtIndex;
      D.Loc = Loc;
      D.Message = "unsynchronized write to *self (" + AdtName +
                  " is Sync, self is an immutable borrow) " + Via +
                  "; concurrent callers race on this field";
      if (F.Loc.isValid()) {
        diag::Span S;
        S.Loc = F.Loc;
        S.Label = "self is borrowed immutably by this method of Sync type " +
                  AdtName + ", so it may run on many threads at once";
        D.Secondary.push_back(std::move(S));
      }
      D.Notes.push_back("Suggestion 8: protect the field with a Mutex/"
                        "RwLock or use an atomic for the update");
      Diags.report(std::move(D));
    };

    MemoryAnalysis::Cursor C = MA.cursor();
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      C.seek(B);
      while (!C.atTerminator()) {
        const Statement &S = C.statement();
        if (S.K == Statement::Kind::Assign && S.Dest.hasDeref()) {
          BitVec Targets(Objects.numObjects());
          MA.placeTargetObjects(C.state(), S.Dest, Targets);
          if (Targets.test(SelfObj) &&
              !anyExclusiveLockHeld(MA, C.state()))
            Report(B, C.index(), S.Loc,
                   "through " + S.Dest.toString());
        }
        C.advance();
      }
      // ptr::write into self-derived memory counts as a store too.
      const Terminator &T = F.Blocks[B].Term;
      if (T.K == Terminator::Kind::Call &&
          classifyIntrinsic(T.Callee) == IntrinsicKind::PtrWrite &&
          !T.Args.empty() && T.Args[0].isPlace()) {
        BitVec Targets(Objects.numObjects());
        MA.placeValuePointees(C.state(), T.Args[0].P, Targets);
        if (Targets.test(SelfObj) && !anyExclusiveLockHeld(MA, C.state()))
          Report(B, C.index(), T.Loc, "via ptr::write");
      }
    }
  }
}

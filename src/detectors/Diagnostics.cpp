#include "detectors/Diagnostics.h"

#include "support/Json.h"

#include <algorithm>
#include <tuple>

using namespace rs;
using namespace rs::detectors;

const char *rs::detectors::bugKindName(BugKind K) {
  switch (K) {
  case BugKind::UseAfterFree:
    return "use-after-free";
  case BugKind::DoubleLock:
    return "double-lock";
  case BugKind::ConflictingLockOrder:
    return "conflicting-lock-order";
  case BugKind::InvalidFree:
    return "invalid-free";
  case BugKind::DoubleFree:
    return "double-free";
  case BugKind::UninitRead:
    return "uninitialized-read";
  case BugKind::InteriorMutability:
    return "interior-mutability";
  case BugKind::WaitNoNotify:
    return "wait-no-notify";
  case BugKind::RecvNoSender:
    return "recv-no-sender";
  case BugKind::BorrowConflict:
    return "borrow-conflict";
  case BugKind::DanglingReturn:
    return "dangling-return";
  }
  return "?";
}

bool rs::detectors::bugKindFromName(std::string_view Name, BugKind &Out) {
  static constexpr BugKind AllKinds[] = {
      BugKind::UseAfterFree,    BugKind::DoubleLock,
      BugKind::ConflictingLockOrder, BugKind::InvalidFree,
      BugKind::DoubleFree,      BugKind::UninitRead,
      BugKind::InteriorMutability,   BugKind::WaitNoNotify,
      BugKind::RecvNoSender,    BugKind::BorrowConflict,
      BugKind::DanglingReturn,
  };
  for (BugKind K : AllKinds)
    if (Name == bugKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

std::string Diagnostic::toString() const {
  std::string Out = Function + ":bb" + std::to_string(Block) + "[" +
                    std::to_string(StmtIndex) + "]: " + bugKindName(Kind) +
                    ": " + Message;
  if (Loc.isValid())
    Out += " (" + Loc.toString() + ")";
  return Out;
}

void DiagnosticEngine::report(Diagnostic D) {
  Diags.push_back(std::move(D));
  Sorted = false;
}

void DiagnosticEngine::sortDiags() {
  if (Sorted)
    return;
  std::sort(Diags.begin(), Diags.end(),
            [](const Diagnostic &A, const Diagnostic &B) {
              return std::tie(A.Function, A.Block, A.StmtIndex, A.Kind,
                              A.Message) < std::tie(B.Function, B.Block,
                                                    B.StmtIndex, B.Kind,
                                                    B.Message);
            });
  // Detectors may flag the same point twice through different paths.
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [](const Diagnostic &A, const Diagnostic &B) {
                            return A.Function == B.Function &&
                                   A.Block == B.Block &&
                                   A.StmtIndex == B.StmtIndex &&
                                   A.Kind == B.Kind && A.Message == B.Message;
                          }),
              Diags.end());
  Sorted = true;
}

const std::vector<Diagnostic> &DiagnosticEngine::diagnostics() {
  sortDiags();
  return Diags;
}

size_t DiagnosticEngine::countOfKind(BugKind K) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Kind == K)
      ++N;
  return N;
}

std::string DiagnosticEngine::renderText() {
  sortDiags();
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticEngine::renderJson() {
  sortDiags();
  JsonWriter W;
  W.beginArray();
  for (const Diagnostic &D : Diags) {
    W.beginObject();
    W.field("kind", bugKindName(D.Kind));
    W.field("function", D.Function);
    W.field("block", static_cast<int64_t>(D.Block));
    W.field("statement", static_cast<int64_t>(D.StmtIndex));
    W.field("message", D.Message);
    if (D.Loc.isValid())
      W.field("location", D.Loc.toString());
    W.endObject();
  }
  W.endArray();
  return W.str();
}

//===----------------------------------------------------------------------===//
//
// The invalid-free, double-free, and uninitialized-read detectors — the
// concrete memory-bug detector suggestions from the paper's Sections 5.1
// and 7.1: "it is feasible to build static checkers to detect invalid-free,
// use-after-free, double-free memory bugs by analyzing object lifetime and
// ownership relationships."
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"
#include "detectors/PlaceUses.h"

#include "mir/Intrinsics.h"

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

/// The pointee type reached by dereferencing the base local of \p P, or
/// null when the base is not a pointer.
const Type *pointeeType(const Function &F, const Place &P) {
  const Type *Ty = F.localType(P.Base);
  return Ty->isAnyPtr() ? Ty->pointee() : nullptr;
}

Diagnostic makeDiag(BugKind Kind, const Function &F, BlockId B,
                    size_t StmtIndex, SourceLocation Loc,
                    std::string Message) {
  Diagnostic D(Kind);
  D.Function = F.Name;
  D.Block = B;
  D.StmtIndex = StmtIndex;
  D.Loc = Loc;
  D.Message = std::move(Message);
  return D;
}

/// Marks where \p O may have become uninitialized (moves, frees, raw
/// allocs). Locals are *born* uninitialized — when no statement flipped the
/// bit, say so in a note instead.
void addUninitOriginSpans(Diagnostic &D, const MemoryAnalysis &MA, ObjId O,
                          const std::string &Name) {
  addSpans(D, MA.transitionSites(ObjEvent::Uninit, O),
           Name + " may be left uninitialized here");
  if (D.Secondary.empty())
    D.Notes.push_back(Name + " has never been initialized on some path "
                             "from function entry");
}

} // namespace

//===----------------------------------------------------------------------===//
// Invalid free (Figure 6: *f = FILE{...} drops an uninitialized FILE)
//===----------------------------------------------------------------------===//

void InvalidFreeDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  const Module &M = Ctx.module();
  for (const auto &F : M.functions()) {
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();
    MemoryAnalysis::Cursor C = MA.cursor();

    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      C.seek(B);
      while (!C.atTerminator()) {
        const Statement &S = C.statement();
        // Assigning through a pointer drops the old pointee value first; if
        // that value is uninitialized garbage and the type runs Drop, the
        // "free" is of a garbage pointer.
        if (S.K == Statement::Kind::Assign && S.Dest.hasDeref()) {
          const Type *Pointee = pointeeType(F, S.Dest);
          if (Pointee && typeNeedsDrop(Pointee, M)) {
            BitVec Targets(Objects.numObjects());
            MA.placeTargetObjects(C.state(), S.Dest, Targets);
            Targets.forEach([&](size_t O) {
              if (O == Objects.unknown())
                return;
              if (!MA.mayBeUninit(C.state(), static_cast<ObjId>(O)))
                return;
              Diagnostic D = makeDiag(
                  BugKind::InvalidFree, F, B, C.index(), S.Loc,
                  "assignment through " + S.Dest.toString() +
                      " drops the old value of " + Objects.name(O) +
                      ", which may be uninitialized; dropping it runs " +
                      Pointee->toString() +
                      "'s destructor on garbage (use ptr::write instead)");
              addUninitOriginSpans(D, MA, static_cast<ObjId>(O),
                                   Objects.name(O));
              Diags.report(std::move(D));
            });
          }
        }
        C.advance();
      }

      // drop(x) / mem::drop(x) of a possibly-uninitialized value.
      const Terminator &T = F.Blocks[B].Term;
      size_t AtTerm = F.Blocks[B].Statements.size();
      const Place *Dropped = nullptr;
      if (T.K == Terminator::Kind::Drop)
        Dropped = &T.DropPlace;
      else if (T.K == Terminator::Kind::Call &&
               classifyIntrinsic(T.Callee) == IntrinsicKind::MemDrop &&
               !T.Args.empty() && T.Args[0].isPlace())
        Dropped = &T.Args[0].P;
      if (!Dropped || !Dropped->isLocal())
        continue;
      const Type *Ty = F.localType(Dropped->Base);
      if (!typeNeedsDrop(Ty, M))
        continue;
      ObjId O = Objects.localObject(Dropped->Base);
      if (MA.mayBeUninit(C.state(), O) && !MA.mayBeDropped(C.state(), O)) {
        Diagnostic D = makeDiag(BugKind::InvalidFree, F, B, AtTerm, T.Loc,
                                "drop of " + Dropped->toString() +
                                    " runs " + Ty->toString() +
                                    "'s destructor, but the value may be "
                                    "uninitialized");
        addUninitOriginSpans(D, MA, O, Objects.name(O));
        Diags.report(std::move(D));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Double free (Section 5.1: t2 = ptr::read(&t1) makes two owners)
//===----------------------------------------------------------------------===//

void DoubleFreeDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  const Module &M = Ctx.module();
  for (const auto &F : M.functions()) {
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();

    // Ownership duplications created by ptr::read: (duplicate local,
    // original object, site).
    struct Duplication {
      LocalId Dest;
      ObjId Source;
      BlockId Block;
      size_t StmtIndex;
      SourceLocation Loc;
    };
    std::vector<Duplication> Dups;
    MemoryAnalysis::Cursor C = MA.cursor();

    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      const Terminator &T = F.Blocks[B].Term;
      size_t AtTerm = F.Blocks[B].Statements.size();
      C.seek(B);
      const BitVec &State = C.stateAtTerminator();

      // Direct double drop.
      const Place *Dropped = nullptr;
      if (T.K == Terminator::Kind::Drop)
        Dropped = &T.DropPlace;
      else if (T.K == Terminator::Kind::Call &&
               classifyIntrinsic(T.Callee) == IntrinsicKind::MemDrop &&
               !T.Args.empty() && T.Args[0].isPlace())
        Dropped = &T.Args[0].P;
      if (Dropped && Dropped->isLocal()) {
        ObjId O = Objects.localObject(Dropped->Base);
        if (MA.mayBeDropped(State, O)) {
          Diagnostic D = makeDiag(BugKind::DoubleFree, F, B, AtTerm, T.Loc,
                                  "value in " + Dropped->toString() +
                                      " may already have been dropped; "
                                      "dropping it again frees twice");
          // The paper's pattern: the second drop (primary) and the first.
          addSpans(D, MA.transitionSites(ObjEvent::Dropped, O),
                   "first dropped here");
          if (D.Secondary.empty())
            D.Notes.push_back("the value may already be dropped on entry "
                              "to this block along every flagged path");
          Diags.report(std::move(D));
        }
      }

      // Record ptr::read duplications.
      if (T.K == Terminator::Kind::Call && T.HasDest && T.Dest.isLocal() &&
          classifyIntrinsic(T.Callee) == IntrinsicKind::PtrRead &&
          !T.Args.empty() && T.Args[0].isPlace()) {
        BitVec Sources(Objects.numObjects());
        MA.placeValuePointees(State, T.Args[0].P, Sources);
        Sources.forEach([&](size_t O) {
          if (O != Objects.unknown())
            Dups.push_back({T.Dest.Base, static_cast<ObjId>(O), B, AtTerm,
                            T.Loc});
        });
      }
    }

    // A duplication is a double free if both owners' values are dropped on
    // some path to a return.
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B) ||
          F.Blocks[B].Term.K != Terminator::Kind::Return)
        continue;
      C.seek(B);
      const BitVec &State = C.stateAtTerminator();
      for (const Duplication &Dup : Dups) {
        if (MA.mayBeDropped(State, Objects.localObject(Dup.Dest)) &&
            MA.mayBeDropped(State, Dup.Source)) {
          Diagnostic D = makeDiag(
              BugKind::DoubleFree, F, Dup.Block, Dup.StmtIndex, Dup.Loc,
              "ptr::read duplicates the value of " + Objects.name(Dup.Source) +
                  " into _" + std::to_string(Dup.Dest) +
                  "; both owners are later dropped, freeing the contents "
                  "twice (move the ownership with `t2 = t1` instead)");
          // Both owners' drops are the pattern's other program points.
          addSpans(D, MA.transitionSites(ObjEvent::Dropped,
                                         Objects.localObject(Dup.Dest)),
                   "duplicate owner _" + std::to_string(Dup.Dest) +
                       " dropped here");
          addSpans(D, MA.transitionSites(ObjEvent::Dropped, Dup.Source),
                   "original " + Objects.name(Dup.Source) + " dropped here");
          Diags.report(std::move(D));
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Uninitialized read
//===----------------------------------------------------------------------===//

void UninitReadDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  for (const auto &F : Ctx.module().functions()) {
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();

    auto Check = [&](const BitVec &State, const std::vector<PlaceUse> &Uses,
                     BlockId B, size_t StmtIndex, SourceLocation Loc) {
      for (const PlaceUse &U : Uses) {
        if (U.IsWrite || !U.P->hasDeref())
          continue;
        BitVec Targets(Objects.numObjects());
        MA.placeTargetObjects(State, *U.P, Targets);
        // Report only when every known target is possibly-uninitialized:
        // a deliberately conservative rule to keep false positives low.
        // Dropped or out-of-scope targets are use-after-free territory and
        // left to that detector.
        bool AnyKnown = false, AllUninit = true;
        Targets.forEach([&](size_t O) {
          if (O == Objects.unknown())
            return;
          AnyKnown = true;
          ObjId Obj = static_cast<ObjId>(O);
          AllUninit &= MA.mayBeUninit(State, Obj) &&
                       !MA.mayBeDropped(State, Obj) &&
                       !MA.mayBeStorageDead(State, Obj);
        });
        if (!AnyKnown || !AllUninit)
          continue;
        Diagnostic D = makeDiag(BugKind::UninitRead, F, B, StmtIndex, Loc,
                                "read through " + U.P->toString() +
                                    " reaches memory that may be "
                                    "uninitialized");
        Targets.forEach([&](size_t O) {
          if (O != Objects.unknown())
            addSpans(D, MA.transitionSites(ObjEvent::Uninit,
                                           static_cast<ObjId>(O)),
                     Objects.name(O) + " may be left uninitialized here");
        });
        if (D.Secondary.empty())
          D.Notes.push_back("the target memory has never been initialized "
                            "on some path from function entry");
        Diags.report(std::move(D));
      }
    };

    MemoryAnalysis::Cursor C = MA.cursor();
    std::vector<PlaceUse> Uses;
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      C.seek(B);
      while (!C.atTerminator()) {
        Uses.clear();
        collectUses(C.statement(), Uses);
        Check(C.state(), Uses, B, C.index(), C.statement().Loc);
        C.advance();
      }
      Uses.clear();
      const Terminator &T = F.Blocks[B].Term;
      collectUses(T, Uses);
      Check(C.state(), Uses, B, C.index(), T.Loc);
    }
  }
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Suggestion 5, as an analysis-scoping predicate: "Future
/// memory bug detectors can ignore safe code that is unrelated to unsafe
/// code to reduce false positives and to improve execution efficiency"
/// (grounded in Insight 4: all post-2016 memory bugs involve unsafe code).
///
/// A function "touches unsafe memory" when it is itself unsafe, handles
/// raw pointers, or calls the raw-memory intrinsics. Detectors accept a
/// focus flag that restricts scanning to such functions; the safe-only
/// use-after-scope pattern (a &T outliving its referent with no raw
/// pointer anywhere) is the documented blind spot of the focused mode,
/// matching the paper's framing of the trade-off.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_UNSAFESCOPE_H
#define RUSTSIGHT_DETECTORS_UNSAFESCOPE_H

#include "mir/Mir.h"

namespace rs::detectors {

/// True if \p F is unsafe, mentions raw-pointer types, or calls raw-memory
/// intrinsics (alloc/dealloc/ptr::read/ptr::write/ptr::copy).
bool functionTouchesUnsafeMemory(const mir::Function &F);

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_UNSAFESCOPE_H

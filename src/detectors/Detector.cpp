#include "detectors/Detector.h"

#include "detectors/Detectors.h"

using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

AnalysisContext::AnalysisContext(const Module &M, const AnalysisLimits &Limits)
    : M(M), Limits(Limits),
      Summaries(computeSummaries(M, Limits.MaxSummaryRounds,
                                 Limits.ContextBudget, &SummariesOk)),
      CG(M) {}

AnalysisContext::PerFunction &AnalysisContext::entry(const Function &F) {
  PerFunction &E = Cache[&F];
  if (!E.G)
    E.G = std::make_unique<Cfg>(F, /*PruneConstantBranches=*/true);
  return E;
}

const Cfg &AnalysisContext::cfg(const Function &F) { return *entry(F).G; }

const MemoryAnalysis &AnalysisContext::memory(const Function &F) {
  PerFunction &E = entry(F);
  if (!E.MA) {
    Budget *Bgt = nullptr;
    if (Limits.MaxDataflowSteps != 0 || Limits.ContextBudget) {
      E.DfBudget = std::make_unique<Budget>(Budget::steps(
          Limits.MaxDataflowSteps));
      E.DfBudget->setParent(Limits.ContextBudget);
      Bgt = E.DfBudget.get();
    }
    E.MA = std::make_unique<MemoryAnalysis>(*E.G, M, &Summaries, Bgt);
  }
  return *E.MA;
}

bool AnalysisContext::memoryDegraded(const Function &F) const {
  auto It = Cache.find(&F);
  return It != Cache.end() && It->second.MA &&
         !It->second.MA->dataflowConverged();
}

bool AnalysisContext::anyDegraded() const {
  if (!SummariesOk)
    return true;
  for (const auto &KV : Cache)
    if (KV.second.MA && !KV.second.MA->dataflowConverged())
      return true;
  return false;
}

std::vector<std::unique_ptr<Detector>> rs::detectors::makeAllDetectors() {
  std::vector<std::unique_ptr<Detector>> Out;
  Out.push_back(std::make_unique<UseAfterFreeDetector>());
  Out.push_back(std::make_unique<DoubleLockDetector>());
  Out.push_back(std::make_unique<LockOrderDetector>());
  Out.push_back(std::make_unique<InvalidFreeDetector>());
  Out.push_back(std::make_unique<DoubleFreeDetector>());
  Out.push_back(std::make_unique<UninitReadDetector>());
  Out.push_back(std::make_unique<InteriorMutabilityDetector>());
  Out.push_back(std::make_unique<MissingWakeupDetector>());
  Out.push_back(std::make_unique<DanglingReturnDetector>());
  return Out;
}

void rs::detectors::runAllDetectors(const Module &M, DiagnosticEngine &Diags) {
  AnalysisContext Ctx(M);
  for (const auto &D : makeAllDetectors())
    D->run(Ctx, Diags);
}

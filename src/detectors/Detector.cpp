#include "detectors/Detector.h"

#include "detectors/Detectors.h"

#include <cassert>

using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

AnalysisContext::AnalysisContext(const Module &M, const AnalysisLimits &Limits)
    : M(M), Limits(Limits), CG(M) {
  Cache.resize(M.functions().size());
  // Adopt the analyses the summary scheduler built only when nothing bounds
  // this context: under budgets the degradation semantics (per-function
  // budget chaining, partial results) must match a fresh computation.
  bool Unbounded = !Limits.ContextBudget && Limits.MaxDataflowSteps == 0;
  ModuleAnalysisCache Built;
  Summaries =
      computeSummaries(M, Limits.MaxSummaryRounds, Limits.ContextBudget,
                       &SummariesOk, &CG, nullptr, Unbounded ? &Built : nullptr,
                       Limits.External);
  if (Unbounded && Built.Cfgs.size() == Cache.size()) {
    for (size_t I = 0; I != Cache.size(); ++I) {
      Cache[I].G = std::move(Built.Cfgs[I]);
      Cache[I].MA = std::move(Built.Memory[I]);
    }
  }
}

AnalysisContext::PerFunction &AnalysisContext::entry(const Function &F) {
  analysis::FuncId Id = CG.idOf(F.Name);
  assert(Id != analysis::InvalidFuncId && "function from a different module");
  PerFunction &E = Cache[Id];
  if (!E.G)
    E.G = std::make_unique<Cfg>(F, /*PruneConstantBranches=*/true);
  return E;
}

const Cfg &AnalysisContext::cfg(const Function &F) { return *entry(F).G; }

const MemoryAnalysis &AnalysisContext::memory(const Function &F) {
  PerFunction &E = entry(F);
  if (!E.MA) {
    Budget *Bgt = nullptr;
    if (Limits.MaxDataflowSteps != 0 || Limits.ContextBudget) {
      E.DfBudget = std::make_unique<Budget>(Budget::steps(
          Limits.MaxDataflowSteps));
      E.DfBudget->setParent(Limits.ContextBudget);
      Bgt = E.DfBudget.get();
    }
    E.MA = std::make_unique<MemoryAnalysis>(*E.G, M, &Summaries, Bgt);
  }
  return *E.MA;
}

bool AnalysisContext::memoryDegraded(const Function &F) const {
  analysis::FuncId Id = CG.idOf(F.Name);
  if (Id == analysis::InvalidFuncId)
    return false;
  const PerFunction &E = Cache[Id];
  return E.MA && !E.MA->dataflowConverged();
}

bool AnalysisContext::anyDegraded() const {
  if (!SummariesOk)
    return true;
  for (const PerFunction &E : Cache)
    if (E.MA && !E.MA->dataflowConverged())
      return true;
  return false;
}

std::vector<std::unique_ptr<Detector>> rs::detectors::makeAllDetectors() {
  std::vector<std::unique_ptr<Detector>> Out;
  Out.push_back(std::make_unique<UseAfterFreeDetector>());
  Out.push_back(std::make_unique<DoubleLockDetector>());
  Out.push_back(std::make_unique<LockOrderDetector>());
  Out.push_back(std::make_unique<InvalidFreeDetector>());
  Out.push_back(std::make_unique<DoubleFreeDetector>());
  Out.push_back(std::make_unique<UninitReadDetector>());
  Out.push_back(std::make_unique<InteriorMutabilityDetector>());
  Out.push_back(std::make_unique<MissingWakeupDetector>());
  Out.push_back(std::make_unique<DanglingReturnDetector>());
  return Out;
}

void rs::detectors::runAllDetectors(const Module &M, DiagnosticEngine &Diags) {
  AnalysisContext Ctx(M);
  for (const auto &D : makeAllDetectors())
    D->run(Ctx, Diags);
  // The convenience entry point leaves \p Diags render-ready: sorted into
  // the canonical order and deduplicated.
  Diags.sort();
}

//===----------------------------------------------------------------------===//
//
// The paper's double-lock detector (Section 7.2), reimplemented over
// RustLite MIR. It models Rust's implicit unlock: a lock is held until the
// guard returned by lock()/read()/write() dies (StorageDead, drop, or
// mem::drop), which is exactly the lifetime subtlety behind the paper's 30
// double-lock bugs (e.g. a guard born in a match discriminant living to the
// end of the whole match, Figure 8). On the paper's applications this design
// found six previously unknown deadlocks with no false positives.
//
//===----------------------------------------------------------------------===//

#include "detectors/Detectors.h"

#include "mir/Intrinsics.h"

using namespace rs;
using namespace rs::analysis;
using namespace rs::detectors;
using namespace rs::mir;

namespace {

/// Marks everywhere the still-held guard may have been acquired — the
/// second program point of the paper's Figure 8 pattern.
void addFirstAcquisitionSpans(Diagnostic &D, const MemoryAnalysis &MA,
                              const BitVec &State, ObjId O,
                              const std::string &LockName) {
  if (MA.mayBeHeld(State, O, /*Exclusive=*/true))
    addSpans(D, MA.transitionSites(ObjEvent::HeldExclusive, O),
             "first lock on " + LockName + " acquired here; its guard is "
             "still alive");
  if (MA.mayBeHeld(State, O, /*Exclusive=*/false))
    addSpans(D, MA.transitionSites(ObjEvent::HeldShared, O),
             "shared lock on " + LockName + " acquired here; its guard is "
             "still alive");
  if (D.Secondary.empty())
    D.Notes.push_back("the first acquisition reaches this point on every "
                      "path (e.g. around a loop), so no single acquisition "
                      "site dominates it");
}

void reportDoubleLock(const Function &F, BlockId B, size_t StmtIndex,
                      SourceLocation Loc, const std::string &LockName,
                      bool ViaCallee, const std::string &Callee,
                      const MemoryAnalysis &MA, const BitVec &State, ObjId O,
                      DiagnosticEngine &Diags,
                      const ExternalFunctionInfo *ExtCallee = nullptr,
                      unsigned ExtParam = 0) {
  Diagnostic D(BugKind::DoubleLock);
  D.Function = F.Name;
  D.Block = B;
  D.StmtIndex = StmtIndex;
  D.Loc = Loc;
  D.Message = "lock on " + LockName + " acquired while already held";
  if (ViaCallee)
    D.Message += " (acquired inside callee '" + Callee + "')";
  D.Message += "; the first guard is still alive here, so this deadlocks";
  addFirstAcquisitionSpans(D, MA, State, O, LockName);
  // Cross-file half: when the re-acquiring callee lives in another file,
  // point at the lock statements inside it.
  if (ExtCallee && ExtParam < ExtCallee->LockSites.size()) {
    const std::string *File = internFileName(ExtCallee->File);
    for (const LinkSite &S : ExtCallee->LockSites[ExtParam]) {
      diag::Span Span;
      Span.Loc = SourceLocation(File, S.Line, S.Col);
      Span.Label =
          "acquired inside callee '" + ExtCallee->Name + "' here";
      Span.Function = ExtCallee->Name;
      D.Secondary.push_back(std::move(Span));
    }
  }
  Diags.report(std::move(D));
}

/// True if acquiring with \p Mode while the lock is in the given held state
/// deadlocks. Shared/shared (read/read) is the only compatible pairing.
bool conflicts(uint8_t Mode, bool HeldShared, bool HeldExclusive) {
  if (HeldExclusive)
    return true;
  return HeldShared && (Mode & LM_Exclusive) != 0;
}

} // namespace

void DoubleLockDetector::run(AnalysisContext &Ctx, DiagnosticEngine &Diags) {
  const SummaryMap &Summaries = Ctx.summaries();

  for (const Function &F : Ctx.module().functions()) {
    const Cfg &G = Ctx.cfg(F);
    const MemoryAnalysis &MA = Ctx.memory(F);
    const ObjectTable &Objects = MA.objects();
    MemoryAnalysis::Cursor C = MA.cursor();

    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!G.isReachable(B))
        continue;
      const Terminator &T = F.Blocks[B].Term;
      if (T.K != Terminator::Kind::Call)
        continue;
      size_t AtTerm = F.Blocks[B].Statements.size();
      IntrinsicKind Kind = classifyIntrinsic(T.Callee);

      // Direct acquisition: locks deadlock on conflict, RefCell borrows
      // panic (same discipline, different failure mode and bug kind).
      if (isLockAcquire(Kind) || isBorrowAcquire(Kind)) {
        if (T.Args.empty())
          continue;
        C.seek(B);
        const BitVec &State = C.stateAtTerminator();
        std::vector<ObjId> Roots;
        MA.lockRoots(State, T.Args[0], Roots);
        bool Exclusive = isExclusiveAcquire(Kind) ||
                         Kind == IntrinsicKind::RefCellBorrowMut;
        uint8_t Mode = Exclusive ? LM_Exclusive : LM_Shared;
        for (ObjId O : Roots) {
          if (O == Objects.unknown())
            continue;
          if (!conflicts(Mode, MA.mayBeHeld(State, O, false),
                         MA.mayBeHeld(State, O, true)))
            continue;
          if (isBorrowAcquire(Kind)) {
            Diagnostic D(BugKind::BorrowConflict);
            D.Function = F.Name;
            D.Block = B;
            D.StmtIndex = AtTerm;
            D.Loc = T.Loc;
            D.Message = "RefCell " + std::string(T.Callee) + " on " +
                        Objects.name(O) +
                        " while an earlier borrow is still alive; this "
                        "panics at runtime (BorrowMutError)";
            addFirstAcquisitionSpans(D, MA, State, O, Objects.name(O));
            Diags.report(std::move(D));
          } else {
            reportDoubleLock(F, B, AtTerm, T.Loc, Objects.name(O),
                             /*ViaCallee=*/false, T.Callee, MA, State, O,
                             Diags);
          }
        }
        continue;
      }

      // Acquisition inside a module-defined callee (via summaries).
      if (Kind != IntrinsicKind::None)
        continue;
      const FunctionSummary *Found = Summaries.find(T.Callee);
      if (!Found)
        continue;
      const FunctionSummary &S = *Found;
      C.seek(B);
      const BitVec &State = C.stateAtTerminator();
      for (size_t I = 0; I != T.Args.size(); ++I) {
        unsigned Param = static_cast<unsigned>(I) + 1;
        if (Param >= S.AcquiresLockOnParam.size())
          break;
        uint8_t Mode = S.AcquiresLockOnParam[Param];
        if (Mode == LM_None || !T.Args[I].isPlace())
          continue;
        std::vector<ObjId> Roots;
        MA.lockRoots(State, T.Args[I], Roots);
        for (ObjId O : Roots) {
          if (O == Objects.unknown())
            continue;
          if (conflicts(Mode, MA.mayBeHeld(State, O, false),
                        MA.mayBeHeld(State, O, true)))
            reportDoubleLock(F, B, AtTerm, T.Loc, Objects.name(O),
                             /*ViaCallee=*/true, T.Callee, MA, State, O,
                             Diags, Ctx.externalInfo(T.Callee), Param);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helper enumerating the places a statement or terminator touches,
/// used by the pointer-safety detectors to find dereferencing accesses.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DETECTORS_PLACEUSES_H
#define RUSTSIGHT_DETECTORS_PLACEUSES_H

#include "mir/Mir.h"

#include <vector>

namespace rs::detectors {

/// One touched place. Borrows (&p / &raw p) count as reads: creating a
/// reference into freed memory is already a bug the paper's detector flags.
struct PlaceUse {
  const mir::Place *P;
  bool IsWrite;
};

/// Appends the places read or written by \p S (drop subjects excluded —
/// callers handle drops explicitly).
void collectUses(const mir::Statement &S, std::vector<PlaceUse> &Out);

/// Appends the places read or written by terminator \p T.
void collectUses(const mir::Terminator &T, std::vector<PlaceUse> &Out);

} // namespace rs::detectors

#endif // RUSTSIGHT_DETECTORS_PLACEUSES_H

#include "detectors/UnsafeScope.h"

#include "mir/Intrinsics.h"

using namespace rs::detectors;
using namespace rs::mir;

static bool typeMentionsRawPtr(const Type *Ty, unsigned Depth = 0) {
  if (!Ty || Depth > 8)
    return false;
  switch (Ty->kind()) {
  case Type::Kind::RawPtr:
    return true;
  case Type::Kind::Ref:
  case Type::Kind::Array:
  case Type::Kind::Slice:
    return typeMentionsRawPtr(Ty->pointee(), Depth + 1);
  case Type::Kind::Tuple:
  case Type::Kind::Adt:
    for (const Type *Arg : Ty->args())
      if (typeMentionsRawPtr(Arg, Depth + 1))
        return true;
    return false;
  case Type::Kind::Prim:
    return false;
  }
  return false;
}

bool rs::detectors::functionTouchesUnsafeMemory(const Function &F) {
  if (F.IsUnsafe)
    return true;
  for (const LocalDecl &L : F.Locals)
    if (typeMentionsRawPtr(L.Ty))
      return true;
  for (const BasicBlock &BB : F.Blocks) {
    for (const Statement &S : BB.Statements)
      if (S.K == Statement::Kind::Assign &&
          S.RV.K == Rvalue::Kind::AddressOf)
        return true;
    if (BB.Term.K != Terminator::Kind::Call)
      continue;
    switch (classifyIntrinsic(BB.Term.Callee)) {
    case IntrinsicKind::Alloc:
    case IntrinsicKind::Dealloc:
    case IntrinsicKind::PtrRead:
    case IntrinsicKind::PtrWrite:
    case IntrinsicKind::PtrCopy:
      return true;
    default:
      break;
    }
  }
  return false;
}

#include "detectors/PlaceUses.h"

using namespace rs::detectors;
using namespace rs::mir;

static void addOperand(const Operand &O, std::vector<PlaceUse> &Out) {
  if (O.isPlace())
    Out.push_back({&O.P, /*IsWrite=*/false});
}

static void addRvalue(const Rvalue &RV, std::vector<PlaceUse> &Out) {
  for (const Operand &O : RV.Ops)
    addOperand(O, Out);
  switch (RV.K) {
  case Rvalue::Kind::Ref:
  case Rvalue::Kind::AddressOf:
  case Rvalue::Kind::Discriminant:
  case Rvalue::Kind::Len:
    Out.push_back({&RV.P, /*IsWrite=*/false});
    break;
  default:
    break;
  }
}

void rs::detectors::collectUses(const Statement &S,
                                std::vector<PlaceUse> &Out) {
  if (S.K != Statement::Kind::Assign)
    return;
  addRvalue(S.RV, Out);
  Out.push_back({&S.Dest, /*IsWrite=*/true});
}

void rs::detectors::collectUses(const Terminator &T,
                                std::vector<PlaceUse> &Out) {
  switch (T.K) {
  case Terminator::Kind::SwitchInt:
  case Terminator::Kind::Assert:
    addOperand(T.Discr, Out);
    return;
  case Terminator::Kind::Call:
    for (const Operand &O : T.Args)
      addOperand(O, Out);
    if (T.HasDest)
      Out.push_back({&T.Dest, /*IsWrite=*/true});
    return;
  default:
    return;
  }
}

#include "mir/Builder.h"

#include <cassert>

using namespace rs::mir;

FunctionBuilder::FunctionBuilder(Module &M, std::string_view Name,
                                 const Type *RetTy)
    : M(M) {
  F.Name = Symbol::intern(Name);
  LocalDecl Ret;
  Ret.Ty = RetTy ? RetTy : M.types().getUnit();
  Ret.Mutable = true;
  F.Locals.push_back(Ret);
  F.Blocks.emplace_back();
  Terminated.push_back(false);
}

LocalId FunctionBuilder::addArg(const Type *Ty) {
  assert(!SawNonArgLocal && "arguments must be declared before locals");
  assert(Ty && "argument needs a type");
  LocalDecl D;
  D.Ty = Ty;
  F.Locals.push_back(D);
  ++F.NumArgs;
  return static_cast<LocalId>(F.Locals.size() - 1);
}

LocalId FunctionBuilder::addLocal(const Type *Ty, bool Mutable,
                                  std::string_view DebugName) {
  assert(Ty && "local needs a type");
  SawNonArgLocal = true;
  LocalDecl D;
  D.Ty = Ty;
  D.Mutable = Mutable;
  D.DebugName = Symbol::intern(DebugName);
  F.Locals.push_back(D);
  return static_cast<LocalId>(F.Locals.size() - 1);
}

BlockId FunctionBuilder::newBlock() {
  F.Blocks.emplace_back();
  Terminated.push_back(false);
  return static_cast<BlockId>(F.Blocks.size() - 1);
}

void FunctionBuilder::setInsertPoint(BlockId B) {
  assert(B < F.Blocks.size() && "no such block");
  Cur = B;
}

BasicBlock &FunctionBuilder::cur() {
  assert(!Terminated[Cur] && "appending to a terminated block");
  return F.Blocks[Cur];
}

void FunctionBuilder::terminate(Terminator T) {
  assert(!Terminated[Cur] && "block already terminated");
  F.Blocks[Cur].Term = std::move(T);
  Terminated[Cur] = true;
}

void FunctionBuilder::storageLive(LocalId L) {
  cur().Statements.push_back(Statement::storageLive(L));
}

void FunctionBuilder::storageDead(LocalId L) {
  cur().Statements.push_back(Statement::storageDead(L));
}

void FunctionBuilder::assign(Place Dest, Rvalue RV) {
  cur().Statements.push_back(Statement::assign(std::move(Dest), std::move(RV)));
}

void FunctionBuilder::nop() { cur().Statements.push_back(Statement::nop()); }

void FunctionBuilder::gotoBlock(BlockId B) {
  terminate(Terminator::gotoBlock(B));
}

void FunctionBuilder::switchInt(Operand Discr, CaseList Cases,
                                BlockId Otherwise) {
  terminate(Terminator::switchInt(std::move(Discr), std::move(Cases),
                                  Otherwise));
}

void FunctionBuilder::ret() { terminate(Terminator::ret()); }
void FunctionBuilder::resume() { terminate(Terminator::resume()); }
void FunctionBuilder::unreachable() { terminate(Terminator::unreachable()); }

void FunctionBuilder::dropTo(Place P, BlockId Target, BlockId Unwind) {
  terminate(Terminator::drop(std::move(P), Target, Unwind));
  setInsertPoint(Target);
}

void FunctionBuilder::drop(Place P) {
  BlockId Next = newBlock();
  dropTo(std::move(P), Next);
}

void FunctionBuilder::callTo(Place Dest, std::string_view Callee,
                             OperandList Args, BlockId Target,
                             BlockId Unwind) {
  terminate(
      Terminator::call(std::move(Dest), Callee, std::move(Args), Target,
                       Unwind));
  setInsertPoint(Target);
}

BlockId FunctionBuilder::call(Place Dest, std::string_view Callee,
                              OperandList Args) {
  BlockId Next = newBlock();
  callTo(std::move(Dest), Callee, std::move(Args), Next);
  return Next;
}

BlockId FunctionBuilder::callNoDest(std::string_view Callee,
                                    OperandList Args) {
  BlockId Next = newBlock();
  terminate(Terminator::callNoDest(Callee, std::move(Args), Next));
  setInsertPoint(Next);
  return Next;
}

void FunctionBuilder::assertCond(Operand Cond, BlockId Target) {
  terminate(Terminator::assertCond(std::move(Cond), Target));
  setInsertPoint(Target);
}

Function &FunctionBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  for (size_t I = 0; I != Terminated.size(); ++I)
    assert(Terminated[I] && "finish() with an unterminated block");
  return M.addFunction(std::move(F));
}

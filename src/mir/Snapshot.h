//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary MIR snapshots: a Module serialized to bytes so warm
/// starts and the serve daemon can skip the Lexer/Parser entirely.
///
/// Wire format (all integers little-endian):
///
///   header:
///     magic            "RSMS" (4 bytes)
///     schema version   u32  (SnapshotSchemaVersion)
///     interner epoch   u32  (Symbol::EpochVersion)
///     fingerprint      u64  (caller-supplied content fingerprint)
///     payload size     u64
///     payload checksum u64  (FNV-1a over the payload bytes)
///   payload:
///     string table     u32 count, then (u32 len, bytes) per string. Index
///                      0 is always "". Symbols and struct-field names are
///                      written as table indices, so snapshots are portable
///                      across processes whatever the interner state.
///     type table       u32 count, then one record per type, children
///                      before parents (type references are table indices).
///     structs, statics, sync impls (name-sorted), functions.
///
/// Trust model: snapshot bytes are a cache artifact, not an interchange
/// format — but the reader still bounds-checks every read, validates the
/// checksum before decoding, and range-checks every table index. Any
/// defect (truncation, bit flips, version or epoch skew, fingerprint
/// mismatch) returns nullopt: the caller treats it as a cache miss and
/// falls back to the parser. Never a crash, never a partial module.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_SNAPSHOT_H
#define RUSTSIGHT_MIR_SNAPSHOT_H

#include "mir/Mir.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rs::mir::snapshot {

/// Bump on any wire-format change; readers reject other versions.
inline constexpr uint32_t SnapshotSchemaVersion = 1;

/// Serializes \p M with \p Fingerprint recorded in the header (use the
/// content fingerprint of the source the module was parsed from; 0 is
/// legal when the caller does not care).
std::string write(const Module &M, uint64_t Fingerprint);

/// Decodes a snapshot produced by write(). When \p ExpectFingerprint is
/// non-null the header fingerprint must match it exactly. Returns nullopt
/// on any defect; never throws, never returns a partially-decoded module.
std::optional<Module> read(std::string_view Bytes,
                           const uint64_t *ExpectFingerprint = nullptr);

/// The fingerprint recorded in a snapshot header, or nullopt if \p Bytes
/// is not even a structurally valid header (payload is NOT validated).
std::optional<uint64_t> peekFingerprint(std::string_view Bytes);

} // namespace rs::mir::snapshot

#endif // RUSTSIGHT_MIR_SNAPSHOT_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the RustLite MIR textual syntax.
///
/// Grammar sketch (see README.md for the full description):
///
/// \code
///   module     := item*
///   item       := struct | syncImpl | static | function
///   struct     := "struct" NAME (":" "Drop")? "{" (field ("," field)*)? "}"
///   syncImpl   := "unsafe" "impl" "Sync" "for" NAME ";"
///   static     := "static" "mut"? NAME ":" type ";"
///   function   := "unsafe"? "fn" path "(" params? ")" ("->" type)?
///                 "{" local* block+ "}"
///   local      := "let" "mut"? LOCAL ":" type ";"
///   block      := IDENT(bbN) ":" "{" stmt* terminator "}"
///   stmt       := "StorageLive" "(" LOCAL ")" ";"
///               | "StorageDead" "(" LOCAL ")" ";"
///               | "nop" ";"
///               | place "=" rvalue ";"
///   terminator := "goto" "->" BB ";" | "return" ";" | "resume" ";"
///               | "unreachable" ";"
///               | "drop" "(" place ")" "->" targets ";"
///               | "switchInt" "(" operand ")" "->"
///                 "[" (INT ":" BB ",")* "otherwise" ":" BB "]" ";"
///               | "assert" "(" operand ")" "->" BB ";"
///               | (place "=")? path "(" operands? ")" "->" targets ";"
///   targets    := BB | "[" "return" ":" BB ("," "unwind" ":" BB)? "]"
///   rvalue     := operand ("as" type)?
///               | "&" "mut"? place | "&" "raw" ("const"|"mut") place
///               | BINOP "(" operand "," operand ")" | UNOP "(" operand ")"
///               | "(" operands? ")"                       // tuple
///               | path "{" (INT ":" operand ",")* "}"     // struct agg
///               | "discriminant" "(" place ")" | "Len" "(" place ")"
///   operand    := "copy" place | "move" place | "const" literal
///   place      := LOCAL | "(" "*" place ")" ; then (".", INT | "[" LOCAL "]")*
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_PARSER_H
#define RUSTSIGHT_MIR_PARSER_H

#include "mir/Lexer.h"
#include "mir/Mir.h"
#include "support/Error.h"

#include <optional>

namespace rs::mir {

/// The result of a recovering parse: whatever items parsed cleanly, plus one
/// diagnostic per malformed region that was skipped.
struct ModuleParse {
  Module M;
  /// One error per recovery (the first problem in each malformed item).
  std::vector<Error> Errors;
  /// Items abandoned by resynchronization.
  unsigned ItemsDropped = 0;

  bool ok() const { return Errors.empty(); }
};

/// Parses one RustLite MIR buffer into a Module.
class Parser {
public:
  Parser(std::string_view Buffer, std::string_view FileName = "<mir>");

  /// Parses the whole buffer. On failure returns the first error.
  Result<Module> parseModule();

  /// Parses the whole buffer with error recovery: a malformed item records
  /// one diagnostic, the parser resynchronizes at the next top-level item
  /// boundary ('fn' / 'struct' / 'static' / 'unsafe' once braces balance),
  /// and parsing continues. One malformed function costs one diagnostic,
  /// not the module.
  ModuleParse parseModuleRecover();

  /// Convenience entry point.
  static Result<Module> parse(std::string_view Buffer,
                              std::string_view FileName = "<mir>") {
    return Parser(Buffer, FileName).parseModule();
  }

  /// Convenience recovering entry point.
  static ModuleParse parseRecover(std::string_view Buffer,
                                  std::string_view FileName = "<mir>") {
    return Parser(Buffer, FileName).parseModuleRecover();
  }

private:
  // Token plumbing. Tok is the current token.
  void bump();
  bool expect(TokKind K, const char *What);
  bool expectIdent(std::string_view S);
  bool atIdent(std::string_view S) const { return Tok.isIdent(S); }
  bool consumeIdent(std::string_view S);

  // Failure handling: fail() records the first error and returns false.
  bool fail(const std::string &Message);
  bool failed() const { return Err.has_value(); }

  /// Skips tokens until the next plausible top-level item start: an item
  /// keyword once at least as many braces have closed as opened since the
  /// error point (so keywords inside a body being skipped don't fool it).
  void recoverToItemBoundary();

  // Item parsers (operate on the member module M).
  bool parseItem();
  bool parseStruct();
  bool parseStatic();
  bool parseFunction(bool IsUnsafe);
  bool parseSyncImpl();

  /// Dense id-indexed build table for locals and blocks: the common case is
  /// ids arriving in order, so this replaces the std::map (one allocation
  /// per entry) the parser used to build per function.
  template <typename T> struct DenseTable {
    std::vector<T> Slots;
    std::vector<char> Present;
    unsigned Count = 0;

    bool contains(unsigned Id) const {
      return Id < Present.size() && Present[Id];
    }
    /// Inserts at \p Id; returns false if already present.
    bool insert(unsigned Id, T V) {
      if (contains(Id))
        return false;
      if (Id >= Slots.size()) {
        Slots.resize(Id + 1);
        Present.resize(Id + 1, 0);
      }
      Slots[Id] = std::move(V);
      Present[Id] = 1;
      ++Count;
      return true;
    }
    void overwrite(unsigned Id, T V) {
      if (!contains(Id)) {
        insert(Id, std::move(V));
        return;
      }
      Slots[Id] = std::move(V);
    }
    /// First id in [0, Count) with no entry, or Count if dense.
    unsigned firstGap() const {
      for (unsigned I = 0; I != Count; ++I)
        if (!contains(I))
          return I;
      return Count;
    }
  };

  // Function-body parsers.
  bool parseLocalDecl(DenseTable<LocalDecl> &Decls);
  bool parseBlock(DenseTable<BasicBlock> &Blocks);
  /// Parses one statement or terminator within a block. Statements are
  /// appended to \p BB; when the terminator is parsed, it is stored and
  /// \p SawTerminator set.
  bool parseBlockItem(BasicBlock &BB, bool &SawTerminator);

  // Grammar nonterminals.
  bool parsePath(Symbol &Out);
  bool parseType(const Type *&Out);
  bool parsePlace(Place &Out);
  bool parseOperand(Operand &Out);
  bool parseOperandList(OperandList &Out, TokKind Close);
  bool parseBlockRef(BlockId &Out);
  bool parseCallTargets(BlockId &Target, BlockId &Unwind);
  /// Parses the right-hand side of "place =". Either an rvalue statement
  /// (IsCall=false) or a call terminator (IsCall=true, Call filled in).
  bool parseAssignRhs(Rvalue &RV, Terminator &Call, bool &IsCall);

  std::optional<BinOp> binOpFromName(std::string_view Name) const;
  std::optional<UnOp> unOpFromName(std::string_view Name) const;

  Lexer Lex;
  Token Tok;
  std::optional<Error> Err;
  Module M;
  Function *CurFn = nullptr;
  /// Reused buffer for multi-segment paths ("std::sync::Mutex").
  std::string PathScratch;
};

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_PARSER_H

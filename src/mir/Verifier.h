//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for RustLite MIR. The verifier rejects
/// malformed IR (dangling locals, bad block targets, arity errors); it does
/// NOT check the safety properties the detectors look for — using a dead
/// local is a *bug pattern*, not a malformed program.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_VERIFIER_H
#define RUSTSIGHT_MIR_VERIFIER_H

#include "mir/Mir.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace rs::mir {

/// Checks structural invariants of \p M; appends a structured Error (message
/// plus the most precise source location available) per violation. Returns
/// true if the module is well-formed.
bool verifyModule(const Module &M, std::vector<Error> &Errors);

/// Checks a single function. \p M supplies struct declarations for
/// aggregate arity checking (may be null).
bool verifyFunction(const Function &F, const Module *M,
                    std::vector<Error> &Errors);

/// String-rendered convenience overloads ("file:line:col: message"); kept
/// for callers that only print.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);
bool verifyFunction(const Function &F, const Module *M,
                    std::vector<std::string> &Errors);

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_VERIFIER_H

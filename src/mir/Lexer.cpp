#include "mir/Lexer.h"

#include "support/StringUtils.h"

using namespace rs;
using namespace rs::mir;

Lexer::Lexer(std::string_view Buffer, std::string_view FileName)
    : Buf(Buffer), File(internFileName(FileName)) {}

std::string rs::mir::decodeStringLiteral(std::string_view RawWithQuotes) {
  std::string_view Raw = RawWithQuotes;
  if (!Raw.empty() && Raw.front() == '"')
    Raw.remove_prefix(1);
  if (!Raw.empty() && Raw.back() == '"')
    Raw.remove_suffix(1);
  std::string Decoded;
  Decoded.reserve(Raw.size());
  for (size_t I = 0; I != Raw.size(); ++I) {
    char C = Raw[I];
    if (C == '\\' && I + 1 < Raw.size()) {
      char E = Raw[++I];
      if (E == 'n')
        Decoded += '\n';
      else if (E == 't')
        Decoded += '\t';
      else
        Decoded += E; // \" \\ and any other escape map to the raw char.
      continue;
    }
    Decoded += C;
  }
  return Decoded;
}

void Lexer::advance() {
  if (Pos >= Buf.size())
    return;
  if (Buf[Pos] == '\n') {
    ++Line;
    LineStart = Pos + 1;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (Pos < Buf.size()) {
    char C = Buf[Pos];
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Buf.size() && Buf[Pos] != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::make(TokKind K, size_t Begin, SourceLocation Loc) {
  Token T;
  T.K = K;
  T.Text = Buf.substr(Begin, Pos - Begin);
  T.Loc = Loc;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLocation Loc = currentLocation();
  size_t Begin = Pos;

  if (Pos >= Buf.size())
    return make(TokKind::Eof, Begin, Loc);

  char C = peek();

  // Local names: '_' followed by digits (and nothing identifier-like after).
  if (C == '_' && isDigit(peek(1))) {
    size_t Probe = Pos + 1;
    while (Probe < Buf.size() && isDigit(Buf[Probe]))
      ++Probe;
    bool IsLocal = Probe >= Buf.size() || !isIdentCont(Buf[Probe]);
    if (IsLocal) {
      advance(); // '_'
      int64_t Value = 0;
      while (Pos < Buf.size() && isDigit(Buf[Pos])) {
        Value = Value * 10 + (Buf[Pos] - '0');
        advance();
      }
      Token T = make(TokKind::Local, Begin, Loc);
      T.IntVal = Value;
      return T;
    }
  }

  if (isIdentStart(C)) {
    while (Pos < Buf.size() && isIdentCont(Buf[Pos]))
      advance();
    return make(TokKind::Ident, Begin, Loc);
  }

  if (isDigit(C)) {
    int64_t Value = 0;
    while (Pos < Buf.size() && isDigit(Buf[Pos])) {
      Value = Value * 10 + (Buf[Pos] - '0');
      advance();
    }
    Token T = make(TokKind::Int, Begin, Loc);
    T.IntVal = Value;
    // Optional type suffix: "42_i32".
    if (peek() == '_' && isIdentStart(peek(1)) && !isDigit(peek(1))) {
      advance(); // '_'
      size_t SuffixBegin = Pos;
      while (Pos < Buf.size() && isIdentCont(Buf[Pos]))
        advance();
      T.Suffix = Buf.substr(SuffixBegin, Pos - SuffixBegin);
      T.Text = Buf.substr(Begin, Pos - Begin);
    }
    return T;
  }

  if (C == '"') {
    advance();
    while (Pos < Buf.size() && Buf[Pos] != '"') {
      if (Buf[Pos] == '\\' && Pos + 1 < Buf.size())
        advance(); // Skip the escaped character too.
      advance();
    }
    if (Pos < Buf.size())
      advance(); // Closing quote.
    // Text keeps the raw source range (with quotes); the parser decodes it
    // on demand, so lexing a string allocates nothing.
    return make(TokKind::String, Begin, Loc);
  }

  advance();
  switch (C) {
  case '{':
    return make(TokKind::LBrace, Begin, Loc);
  case '}':
    return make(TokKind::RBrace, Begin, Loc);
  case '(':
    return make(TokKind::LParen, Begin, Loc);
  case ')':
    return make(TokKind::RParen, Begin, Loc);
  case '[':
    return make(TokKind::LBracket, Begin, Loc);
  case ']':
    return make(TokKind::RBracket, Begin, Loc);
  case ',':
    return make(TokKind::Comma, Begin, Loc);
  case ';':
    return make(TokKind::Semi, Begin, Loc);
  case ':':
    if (peek() == ':') {
      advance();
      return make(TokKind::ColonColon, Begin, Loc);
    }
    return make(TokKind::Colon, Begin, Loc);
  case '-':
    if (peek() == '>') {
      advance();
      return make(TokKind::Arrow, Begin, Loc);
    }
    return make(TokKind::Minus, Begin, Loc);
  case '=':
    return make(TokKind::Eq, Begin, Loc);
  case '&':
    return make(TokKind::Amp, Begin, Loc);
  case '*':
    return make(TokKind::Star, Begin, Loc);
  case '.':
    return make(TokKind::Dot, Begin, Loc);
  case '<':
    return make(TokKind::Lt, Begin, Loc);
  case '>':
    return make(TokKind::Gt, Begin, Loc);
  default:
    return make(TokKind::Error, Begin, Loc);
  }
}

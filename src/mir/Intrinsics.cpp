#include "mir/Intrinsics.h"

#include <string>

using namespace rs::mir;

/// Returns the last \p N "::"-separated segments of \p Path.
static std::string_view lastSegments(std::string_view Path, int N) {
  size_t Pos = Path.size();
  for (int I = 0; I != N; ++I) {
    size_t Sep = Path.rfind("::", Pos == Path.size() ? std::string_view::npos
                                                     : Pos - 2);
    if (Sep == std::string_view::npos)
      return Path;
    Pos = Sep;
  }
  return Path.substr(Pos + 2);
}

IntrinsicKind rs::mir::classifyIntrinsic(std::string_view Callee) {
  std::string_view Two = lastSegments(Callee, 2);
  std::string_view One = lastSegments(Callee, 1);

  if (Two == "Mutex::lock")
    return IntrinsicKind::MutexLock;
  if (Two == "RwLock::read")
    return IntrinsicKind::RwLockRead;
  if (Two == "RwLock::write")
    return IntrinsicKind::RwLockWrite;
  if (Two == "mem::drop" || One == "drop_in_place")
    return IntrinsicKind::MemDrop;
  if (Two == "mem::forget")
    return IntrinsicKind::MemForget;
  if (Two == "ptr::read")
    return IntrinsicKind::PtrRead;
  if (Two == "ptr::write")
    return IntrinsicKind::PtrWrite;
  if (Two == "ptr::copy" || Two == "ptr::copy_nonoverlapping")
    return IntrinsicKind::PtrCopy;
  if (Two == "Box::new")
    return IntrinsicKind::BoxNew;
  if (One == "alloc" && Two != "Box::alloc")
    return IntrinsicKind::Alloc;
  if (One == "dealloc")
    return IntrinsicKind::Dealloc;
  if (Two == "thread::spawn")
    return IntrinsicKind::ThreadSpawn;
  if (Two == "Condvar::wait")
    return IntrinsicKind::CondvarWait;
  if (Two == "Condvar::notify_one" || Two == "Condvar::notify_all")
    return IntrinsicKind::CondvarNotify;
  if (Two == "Sender::send")
    return IntrinsicKind::ChannelSend;
  if (Two == "Receiver::recv")
    return IntrinsicKind::ChannelRecv;
  if (Two == "Arc::new")
    return IntrinsicKind::ArcNew;
  if (Two == "Arc::clone")
    return IntrinsicKind::ArcClone;
  if (Two == "Once::call_once")
    return IntrinsicKind::OnceCall;
  if (Two == "RefCell::borrow")
    return IntrinsicKind::RefCellBorrow;
  if (Two == "RefCell::borrow_mut")
    return IntrinsicKind::RefCellBorrowMut;
  // AtomicBool::load, AtomicUsize::compare_and_swap, ...
  if (Two.size() > 6 && Two.substr(0, 6) == "Atomic")
    return IntrinsicKind::AtomicOp;
  return IntrinsicKind::None;
}

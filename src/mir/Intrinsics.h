//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classification of well-known callee names. RustLite MIR models Rust
/// standard-library functions whose semantics the paper's detectors depend
/// on (locking, explicit drop, raw-pointer reads, allocation, spawning) as
/// direct calls to distinguished paths; this header maps a callee path to
/// its semantic kind.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_INTRINSICS_H
#define RUSTSIGHT_MIR_INTRINSICS_H

#include <string_view>

namespace rs::mir {

/// Semantic classes of well-known callees.
enum class IntrinsicKind {
  None,          ///< An ordinary (module-defined or opaque) function.
  MutexLock,     ///< Mutex::lock: exclusive acquisition, returns a guard.
  RwLockRead,    ///< RwLock::read: shared acquisition, returns a guard.
  RwLockWrite,   ///< RwLock::write: exclusive acquisition, returns a guard.
  MemDrop,       ///< mem::drop / drop-by-value: ends the argument's lifetime.
  MemForget,     ///< mem::forget: consumes without running Drop.
  PtrRead,       ///< ptr::read: duplicates ownership out of a raw pointer.
  PtrWrite,      ///< ptr::write: writes without dropping the old value.
  PtrCopy,       ///< ptr::copy_nonoverlapping and friends.
  BoxNew,        ///< Box::new: moves the argument to a fresh heap object.
  Alloc,         ///< alloc: returns a fresh *uninitialized* heap object.
  Dealloc,       ///< dealloc: frees the pointee.
  ThreadSpawn,   ///< thread::spawn: runs the callee argument concurrently.
  CondvarWait,   ///< Condvar::wait: blocks; releases and reacquires a lock.
  CondvarNotify, ///< Condvar::notify_one / notify_all.
  ChannelSend,   ///< Sender::send.
  ChannelRecv,   ///< Receiver::recv: blocks on an empty channel.
  ArcNew,        ///< Arc::new.
  ArcClone,      ///< Arc::clone: new handle to the same object.
  AtomicOp,      ///< Atomic*::load/store/compare_and_swap.
  OnceCall,      ///< Once::call_once.
  RefCellBorrow,    ///< RefCell::borrow: shared dynamic borrow.
  RefCellBorrowMut, ///< RefCell::borrow_mut: exclusive dynamic borrow.
};

/// Maps a callee path (e.g. "Mutex::lock", "std::mem::drop") to its semantic
/// kind. Matching is by final path segments so both "Mutex::lock" and
/// "std::sync::Mutex::lock" classify identically.
IntrinsicKind classifyIntrinsic(std::string_view Callee);

/// True for the three lock-acquisition intrinsics.
inline bool isLockAcquire(IntrinsicKind K) {
  return K == IntrinsicKind::MutexLock || K == IntrinsicKind::RwLockRead ||
         K == IntrinsicKind::RwLockWrite;
}

/// True if the acquisition takes the lock exclusively (lock/write).
inline bool isExclusiveAcquire(IntrinsicKind K) {
  return K == IntrinsicKind::MutexLock || K == IntrinsicKind::RwLockWrite;
}

/// True for RefCell's dynamic-borrow intrinsics. Borrows follow the same
/// shared/exclusive discipline as RwLock, but a violation panics instead
/// of blocking (the runtime check behind Insight 9's RefCell bugs).
inline bool isBorrowAcquire(IntrinsicKind K) {
  return K == IntrinsicKind::RefCellBorrow ||
         K == IntrinsicKind::RefCellBorrowMut;
}

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_INTRINSICS_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A programmatic construction API for RustLite MIR functions, used by the
/// corpus generator, the examples, and tests. The builder enforces the
/// structural invariants the parser enforces (dense locals/blocks, exactly
/// one terminator per block).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_BUILDER_H
#define RUSTSIGHT_MIR_BUILDER_H

#include "mir/Mir.h"

#include <vector>

namespace rs::mir {

/// Builds one Function inside a Module.
///
/// Usage:
/// \code
///   FunctionBuilder FB(M, "demo", M.types().getI32());
///   LocalId A = FB.addArg(M.types().getI32());
///   LocalId T = FB.addLocal(M.types().getI32());
///   FB.storageLive(T);
///   FB.assign(T, Rvalue::use(Operand::copy(A)));
///   FB.assign(FB.returnLocal(), Rvalue::use(Operand::move(T)));
///   FB.storageDead(T);
///   FB.ret();
///   Function &F = FB.finish();
/// \endcode
class FunctionBuilder {
public:
  /// Starts a function named \p Name returning \p RetTy (unit if null).
  /// Creates bb0 and sets it as the insertion block.
  FunctionBuilder(Module &M, std::string_view Name,
                  const Type *RetTy = nullptr);

  Module &module() { return M; }
  TypeContext &types() { return M.types(); }

  /// Declares the next parameter. Must precede any addLocal call.
  LocalId addArg(const Type *Ty);

  /// Declares a temporary/user local.
  LocalId addLocal(const Type *Ty, bool Mutable = true,
                   std::string_view DebugName = {});

  LocalId returnLocal() const { return 0; }

  /// Creates a new, empty basic block (does not move the insertion point).
  BlockId newBlock();

  /// Moves the insertion point to \p B. \p B must not be terminated yet.
  void setInsertPoint(BlockId B);

  BlockId currentBlock() const { return Cur; }

  /// Marks the function unsafe.
  void setUnsafe(bool U = true) { F.IsUnsafe = U; }

  // Statement emitters (append to the insertion block).
  void storageLive(LocalId L);
  void storageDead(LocalId L);
  void assign(Place Dest, Rvalue RV);
  void nop();

  // Terminator emitters (terminate the insertion block).
  void gotoBlock(BlockId B);
  void switchInt(Operand Discr, CaseList Cases, BlockId Otherwise);
  void ret();
  void resume();
  void unreachable();
  /// Emits drop(P) -> Target and moves the insertion point to Target.
  void dropTo(Place P, BlockId Target, BlockId Unwind = InvalidBlock);
  /// Emits drop(P) into a fresh continuation block and continues there.
  void drop(Place P);
  /// Emits Dest = Callee(Args) -> Target and moves to Target.
  void callTo(Place Dest, std::string_view Callee, OperandList Args,
              BlockId Target, BlockId Unwind = InvalidBlock);
  /// Emits a call into a fresh continuation block and continues there.
  /// Returns the continuation block.
  BlockId call(Place Dest, std::string_view Callee, OperandList Args);
  /// Call without a destination, continuing in a fresh block.
  BlockId callNoDest(std::string_view Callee, OperandList Args);
  void assertCond(Operand Cond, BlockId Target);

  /// Validates that every block is terminated, registers the function in the
  /// module, and returns it. The builder must not be used afterwards.
  Function &finish();

private:
  BasicBlock &cur();
  void terminate(Terminator T);

  Module &M;
  Function F;
  BlockId Cur = 0;
  std::vector<bool> Terminated;
  bool SawNonArgLocal = false;
  bool Finished = false;
};

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_BUILDER_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIR-to-MIR cleanup passes. rustc runs a pipeline of such passes over
/// MIR before analysis and codegen; RustLite ships the ones that matter
/// for analysis quality on generated or hand-written input:
///
///   - SimplifyCfg: folds constant switchInt terminators, threads trivial
///     gotos, and merges single-predecessor successors.
///   - DeadBlockElim: removes unreachable blocks and renumbers densely.
///   - NopElim: drops nop statements.
///
/// All passes preserve dynamic semantics (checked by interpreting before
/// and after in the test suite) and leave the function verifier-clean.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_TRANSFORMS_H
#define RUSTSIGHT_MIR_TRANSFORMS_H

#include "mir/Mir.h"

#include <memory>
#include <vector>

namespace rs::mir {

/// A function-level rewrite.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  /// Stable identifier, e.g. "simplify-cfg".
  virtual const char *name() const = 0;

  /// Rewrites \p F; returns true if anything changed. \p M provides
  /// module context (struct declarations) and is not modified.
  virtual bool runOn(Function &F, const Module &M) = 0;
};

/// Runs a pass list over every function until a fixpoint (bounded).
class PassManager {
public:
  void add(std::unique_ptr<FunctionPass> P) {
    Passes.push_back(std::move(P));
  }

  /// Runs the pipeline; returns the total number of pass applications
  /// that changed a function.
  unsigned run(Module &M, unsigned MaxRounds = 4);

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
};

std::unique_ptr<FunctionPass> createSimplifyCfgPass();
std::unique_ptr<FunctionPass> createDeadBlockElimPass();
std::unique_ptr<FunctionPass> createNopElimPass();

/// The standard cleanup pipeline, in canonical order.
void addCleanupPasses(PassManager &PM);

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_TRANSFORMS_H

#include "mir/Verifier.h"

using namespace rs::mir;
using rs::Error;
using rs::SourceLocation;

namespace {

/// Accumulates verification failures for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, const Module *M,
                   std::vector<Error> &Errors)
      : F(F), M(M), Errors(Errors) {}

  bool run();

private:
  /// Attaches the most precise location available — the offending
  /// statement/terminator's, else the function's — so corpus-mode reports
  /// point at the line, not just the function.
  void report(const std::string &Message) {
    SourceLocation Loc = CurLoc.isValid() ? CurLoc : F.Loc;
    Errors.push_back(Error("function '" + F.Name.str() + "': " + Message, Loc));
  }

  void checkLocal(LocalId L, const char *Context) {
    if (L >= F.numLocals())
      report(std::string("reference to undeclared local _") +
             std::to_string(L) + " in " + Context);
  }

  void checkPlace(const Place &P, const char *Context) {
    checkLocal(P.Base, Context);
    for (const ProjectionElem &E : P.Projs)
      if (E.K == ProjectionElem::Kind::Index)
        checkLocal(E.IndexLocal, Context);
  }

  void checkOperand(const Operand &O, const char *Context) {
    if (O.isPlace())
      checkPlace(O.P, Context);
  }

  void checkBlock(BlockId B, const char *Context) {
    if (B == InvalidBlock || B >= F.numBlocks())
      report(std::string("branch to nonexistent block in ") + Context);
  }

  void checkRvalue(const Rvalue &RV);
  void checkStatement(const Statement &S);
  void checkTerminator(const Terminator &T);

  const Function &F;
  const Module *M;
  std::vector<Error> &Errors;
  SourceLocation CurLoc; ///< Location of the statement/terminator in check.
};

} // namespace

void FunctionVerifier::checkRvalue(const Rvalue &RV) {
  for (const Operand &O : RV.Ops)
    checkOperand(O, "rvalue");
  switch (RV.K) {
  case Rvalue::Kind::Ref:
  case Rvalue::Kind::AddressOf:
  case Rvalue::Kind::Discriminant:
  case Rvalue::Kind::Len:
    checkPlace(RV.P, "rvalue");
    break;
  case Rvalue::Kind::Use:
    if (RV.Ops.size() != 1)
      report("Use rvalue must have exactly one operand");
    break;
  case Rvalue::Kind::BinaryOp:
    if (RV.Ops.size() != 2)
      report("binary rvalue must have exactly two operands");
    break;
  case Rvalue::Kind::UnaryOp:
    if (RV.Ops.size() != 1)
      report("unary rvalue must have exactly one operand");
    break;
  case Rvalue::Kind::Cast:
    if (RV.Ops.size() != 1 || !RV.CastTy)
      report("cast rvalue must have one operand and a target type");
    break;
  case Rvalue::Kind::Aggregate:
    if (M && !RV.AggName.empty()) {
      if (const StructDecl *S = M->findStruct(RV.AggName)) {
        if (S->Fields.size() != RV.Ops.size())
          report("aggregate of '" + RV.AggName.str() + "' has " +
                 std::to_string(RV.Ops.size()) + " fields, struct declares " +
                 std::to_string(S->Fields.size()));
      }
    }
    break;
  }
}

void FunctionVerifier::checkStatement(const Statement &S) {
  switch (S.K) {
  case Statement::Kind::Assign:
    checkPlace(S.Dest, "assignment destination");
    checkRvalue(S.RV);
    return;
  case Statement::Kind::StorageLive:
  case Statement::Kind::StorageDead:
    checkLocal(S.Local, "storage statement");
    if (S.Local == 0 || F.isArg(S.Local))
      report("storage statements may not target the return place or "
             "parameters (_" +
             std::to_string(S.Local) + ")");
    return;
  case Statement::Kind::Nop:
    return;
  }
}

void FunctionVerifier::checkTerminator(const Terminator &T) {
  switch (T.K) {
  case Terminator::Kind::Goto:
    checkBlock(T.Target, "goto");
    return;
  case Terminator::Kind::SwitchInt:
    checkOperand(T.Discr, "switchInt");
    for (const auto &[Value, Block] : T.Cases)
      checkBlock(Block, "switchInt case");
    checkBlock(T.Target, "switchInt otherwise");
    return;
  case Terminator::Kind::Return:
  case Terminator::Kind::Resume:
  case Terminator::Kind::Unreachable:
    return;
  case Terminator::Kind::Drop:
    checkPlace(T.DropPlace, "drop");
    checkBlock(T.Target, "drop target");
    if (T.Unwind != InvalidBlock)
      checkBlock(T.Unwind, "drop unwind");
    return;
  case Terminator::Kind::Call:
    if (T.Callee.empty())
      report("call with empty callee");
    if (T.HasDest)
      checkPlace(T.Dest, "call destination");
    for (const Operand &O : T.Args)
      checkOperand(O, "call argument");
    checkBlock(T.Target, "call target");
    if (T.Unwind != InvalidBlock)
      checkBlock(T.Unwind, "call unwind");
    return;
  case Terminator::Kind::Assert:
    checkOperand(T.Discr, "assert");
    checkBlock(T.Target, "assert target");
    return;
  }
}

bool FunctionVerifier::run() {
  size_t Before = Errors.size();
  if (F.Locals.empty()) {
    report("missing return place _0");
    return false;
  }
  if (F.NumArgs >= F.numLocals())
    report("declared argument count exceeds locals");
  for (unsigned I = 0; I != F.numLocals(); ++I)
    if (!F.Locals[I].Ty)
      report("local _" + std::to_string(I) + " has no type");
  if (F.Blocks.empty())
    report("function has no basic blocks");
  for (const BasicBlock &BB : F.Blocks) {
    for (const Statement &S : BB.Statements) {
      CurLoc = S.Loc;
      checkStatement(S);
    }
    CurLoc = BB.Term.Loc;
    checkTerminator(BB.Term);
    CurLoc = SourceLocation();
  }
  return Errors.size() == Before;
}

bool rs::mir::verifyFunction(const Function &F, const Module *M,
                             std::vector<Error> &Errors) {
  return FunctionVerifier(F, M, Errors).run();
}

bool rs::mir::verifyModule(const Module &M, std::vector<Error> &Errors) {
  size_t Before = Errors.size();
  for (const Function &F : M.functions())
    verifyFunction(F, &M, Errors);
  return Errors.size() == Before;
}

bool rs::mir::verifyFunction(const Function &F, const Module *M,
                             std::vector<std::string> &Errors) {
  std::vector<Error> Structured;
  bool Ok = verifyFunction(F, M, Structured);
  for (const Error &E : Structured)
    Errors.push_back(E.toString());
  return Ok;
}

bool rs::mir::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  std::vector<Error> Structured;
  bool Ok = verifyModule(M, Structured);
  for (const Error &E : Structured)
    Errors.push_back(E.toString());
  return Ok;
}

#include "mir/Parser.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace rs;
using namespace rs::mir;

Parser::Parser(std::string_view Buffer, std::string_view FileName)
    : Lex(Buffer, FileName) {
  Tok = Lex.next();
}

void Parser::bump() { Tok = Lex.next(); }

bool Parser::fail(const std::string &Message) {
  if (!Err)
    Err = Error(Message, Tok.Loc.isValid() ? Tok.Loc : Lex.currentLocation());
  return false;
}

static const char *tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid character";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Local:
    return "local";
  case TokKind::Int:
    return "integer";
  case TokKind::String:
    return "string";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::ColonColon:
    return "'::'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Eq:
    return "'='";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Minus:
    return "'-'";
  }
  return "?";
}

bool Parser::expect(TokKind K, const char *What) {
  if (Tok.K != K)
    return fail(std::string("expected ") + What + ", found " +
                tokKindName(Tok.K) +
                (Tok.K == TokKind::Ident ? " '" + std::string(Tok.Text) + "'"
                                         : std::string()));
  bump();
  return true;
}

bool Parser::expectIdent(std::string_view S) {
  if (!Tok.isIdent(S))
    return fail("expected '" + std::string(S) + "'");
  bump();
  return true;
}

bool Parser::consumeIdent(std::string_view S) {
  if (!Tok.isIdent(S))
    return false;
  bump();
  return true;
}

//===----------------------------------------------------------------------===//
// Items
//===----------------------------------------------------------------------===//

Result<Module> Parser::parseModule() {
  while (!Tok.is(TokKind::Eof)) {
    if (!parseItem())
      return *Err;
  }
  return std::move(M);
}

ModuleParse Parser::parseModuleRecover() {
  ModuleParse Out;
  while (!Tok.is(TokKind::Eof)) {
    if (parseItem())
      continue;
    Out.Errors.push_back(*Err);
    ++Out.ItemsDropped;
    Err.reset();
    CurFn = nullptr;
    recoverToItemBoundary();
  }
  Out.M = std::move(M);
  return Out;
}

void Parser::recoverToItemBoundary() {
  // Depth is relative to the error point; an item keyword only counts as a
  // boundary once we have closed at least as many braces as we opened, i.e.
  // we are no deeper than where the malformed item began.
  int Depth = 0;
  while (!Tok.is(TokKind::Eof)) {
    if (Tok.is(TokKind::LBrace)) {
      ++Depth;
    } else if (Tok.is(TokKind::RBrace)) {
      --Depth;
    } else if (Depth <= 0 &&
               (atIdent("fn") || atIdent("struct") || atIdent("static") ||
                atIdent("unsafe"))) {
      return;
    }
    bump();
  }
}

bool Parser::parseItem() {
  if (atIdent("struct"))
    return parseStruct();
  if (atIdent("static"))
    return parseStatic();
  if (atIdent("fn"))
    return parseFunction(/*IsUnsafe=*/false);
  if (atIdent("unsafe")) {
    bump();
    if (atIdent("fn"))
      return parseFunction(/*IsUnsafe=*/true);
    if (atIdent("impl"))
      return parseSyncImpl();
    return fail("expected 'fn' or 'impl' after 'unsafe'");
  }
  return fail("expected 'struct', 'static', 'fn', or 'unsafe' item");
}

bool Parser::parseStruct() {
  bump(); // struct
  if (!Tok.is(TokKind::Ident))
    return fail("expected struct name");
  StructDecl S;
  S.Name = Symbol::intern(Tok.Text);
  bump();
  if (Tok.is(TokKind::Colon)) {
    bump();
    if (!expectIdent("Drop"))
      return false;
    S.HasDrop = true;
  }
  if (!expect(TokKind::LBrace, "'{'"))
    return false;
  while (!Tok.is(TokKind::RBrace)) {
    if (!Tok.is(TokKind::Ident))
      return fail("expected field name");
    std::string FieldName(Tok.Text);
    bump();
    if (!expect(TokKind::Colon, "':'"))
      return false;
    const Type *Ty = nullptr;
    if (!parseType(Ty))
      return false;
    S.Fields.emplace_back(std::move(FieldName), Ty);
    if (Tok.is(TokKind::Comma)) {
      bump();
      continue;
    }
    break;
  }
  if (!expect(TokKind::RBrace, "'}'"))
    return false;
  if (M.findStruct(S.Name))
    return fail("duplicate struct '" + S.Name.str() + "'");
  M.addStruct(std::move(S));
  return true;
}

bool Parser::parseSyncImpl() {
  bump(); // impl
  if (!expectIdent("Sync"))
    return false;
  if (!expectIdent("for"))
    return false;
  if (!Tok.is(TokKind::Ident))
    return fail("expected type name in Sync impl");
  std::string_view Name = Tok.Text;
  bump();
  if (!expect(TokKind::Semi, "';'"))
    return false;
  M.addSyncImpl(Name);
  return true;
}

bool Parser::parseStatic() {
  bump(); // static
  StaticDecl S;
  if (consumeIdent("mut"))
    S.Mutable = true;
  if (!Tok.is(TokKind::Ident))
    return fail("expected static name");
  S.Name = Symbol::intern(Tok.Text);
  bump();
  if (!expect(TokKind::Colon, "':'"))
    return false;
  if (!parseType(S.Ty))
    return false;
  if (!expect(TokKind::Semi, "';'"))
    return false;
  M.addStatic(std::move(S));
  return true;
}

bool Parser::parseFunction(bool IsUnsafe) {
  SourceLocation FnLoc = Tok.Loc;
  bump(); // fn
  Function F;
  F.IsUnsafe = IsUnsafe;
  F.Loc = FnLoc;
  if (!parsePath(F.Name))
    return false;
  if (!expect(TokKind::LParen, "'('"))
    return false;

  // Parameters must be _1, _2, ... in order.
  std::vector<const Type *> ParamTypes;
  while (!Tok.is(TokKind::RParen)) {
    if (!Tok.is(TokKind::Local))
      return fail("expected parameter local '_N'");
    if (static_cast<LocalId>(Tok.IntVal) != ParamTypes.size() + 1)
      return fail("parameters must be numbered _1, _2, ... in order");
    bump();
    if (!expect(TokKind::Colon, "':'"))
      return false;
    const Type *Ty = nullptr;
    if (!parseType(Ty))
      return false;
    ParamTypes.push_back(Ty);
    if (Tok.is(TokKind::Comma)) {
      bump();
      continue;
    }
    break;
  }
  if (!expect(TokKind::RParen, "')'"))
    return false;

  const Type *RetTy = M.types().getUnit();
  if (Tok.is(TokKind::Arrow)) {
    bump();
    if (!parseType(RetTy))
      return false;
  }
  if (!expect(TokKind::LBrace, "'{'"))
    return false;

  F.NumArgs = static_cast<unsigned>(ParamTypes.size());
  DenseTable<LocalDecl> Decls;
  Decls.insert(0, LocalDecl{RetTy, true, {}});
  for (unsigned I = 0; I != ParamTypes.size(); ++I)
    Decls.insert(I + 1, LocalDecl{ParamTypes[I], false, {}});

  // Body: local declarations, then basic blocks.
  while (atIdent("let")) {
    if (!parseLocalDecl(Decls))
      return false;
  }

  // Validate local density and build the locals table.
  if (unsigned Gap = Decls.firstGap(); Gap != Decls.Count)
    return fail("function '" + F.Name.str() +
                "' is missing a declaration for _" + std::to_string(Gap));
  F.Locals.resize(Decls.Count);
  for (LocalId I = 0; I != Decls.Count; ++I)
    F.Locals[I] = std::move(Decls.Slots[I]);

  DenseTable<BasicBlock> Blocks;
  while (!Tok.is(TokKind::RBrace)) {
    CurFn = &F;
    bool Ok = parseBlock(Blocks);
    CurFn = nullptr;
    if (!Ok)
      return false;
  }
  bump(); // '}'

  if (Blocks.Count == 0)
    return fail("function '" + F.Name.str() + "' has no basic blocks");
  if (unsigned Gap = Blocks.firstGap(); Gap != Blocks.Count)
    return fail("function '" + F.Name.str() + "' is missing block bb" +
                std::to_string(Gap));
  F.Blocks.resize(Blocks.Count);
  for (BlockId I = 0; I != Blocks.Count; ++I)
    F.Blocks[I] = std::move(Blocks.Slots[I]);

  if (M.findFunction(F.Name))
    return fail("duplicate function '" + F.Name.str() + "'");
  M.addFunction(std::move(F));
  return true;
}

bool Parser::parseLocalDecl(DenseTable<LocalDecl> &Decls) {
  bump(); // let
  LocalDecl D;
  if (consumeIdent("mut"))
    D.Mutable = true;
  if (!Tok.is(TokKind::Local))
    return fail("expected local '_N' in let declaration");
  LocalId Id = static_cast<LocalId>(Tok.IntVal);
  bump();
  if (!expect(TokKind::Colon, "':'"))
    return false;
  if (!parseType(D.Ty))
    return false;
  if (!expect(TokKind::Semi, "';'"))
    return false;
  // The return place _0 is pre-declared from the signature; an explicit
  // "let mut _0: T;" (as the printer emits) is accepted if the type agrees.
  if (Id == 0) {
    if (Decls.Slots[0].Ty != D.Ty)
      return fail("declared type of _0 does not match the return type");
    Decls.overwrite(0, D);
    return true;
  }
  if (!Decls.insert(Id, D))
    return fail("duplicate declaration of _" + std::to_string(Id));
  return true;
}

//===----------------------------------------------------------------------===//
// Blocks, statements, terminators
//===----------------------------------------------------------------------===//

/// Parses "bbN" out of an identifier token, or returns false.
static bool blockIdFromIdent(const Token &T, BlockId &Out) {
  if (T.K != TokKind::Ident || T.Text.size() < 3 ||
      T.Text.substr(0, 2) != "bb")
    return false;
  BlockId Id = 0;
  for (char C : T.Text.substr(2)) {
    if (!isDigit(C))
      return false;
    Id = Id * 10 + static_cast<BlockId>(C - '0');
  }
  Out = Id;
  return true;
}

bool Parser::parseBlockRef(BlockId &Out) {
  if (!blockIdFromIdent(Tok, Out))
    return fail("expected block reference 'bbN'");
  bump();
  return true;
}

bool Parser::parseBlock(DenseTable<BasicBlock> &Blocks) {
  BlockId Id = 0;
  if (!blockIdFromIdent(Tok, Id))
    return fail("expected basic block label 'bbN'");
  bump();
  if (!expect(TokKind::Colon, "':'"))
    return false;
  if (!expect(TokKind::LBrace, "'{'"))
    return false;

  BasicBlock BB;
  bool SawTerminator = false;
  while (!SawTerminator) {
    if (Tok.is(TokKind::RBrace))
      return fail("block bb" + std::to_string(Id) + " has no terminator");
    if (!parseBlockItem(BB, SawTerminator))
      return false;
  }
  if (!expect(TokKind::RBrace, "'}' after terminator"))
    return false;
  if (!Blocks.insert(Id, std::move(BB)))
    return fail("duplicate block bb" + std::to_string(Id));
  return true;
}

bool Parser::parseCallTargets(BlockId &Target, BlockId &Unwind) {
  Unwind = InvalidBlock;
  if (Tok.is(TokKind::LBracket)) {
    bump();
    if (!expectIdent("return"))
      return false;
    if (!expect(TokKind::Colon, "':'"))
      return false;
    if (!parseBlockRef(Target))
      return false;
    if (Tok.is(TokKind::Comma)) {
      bump();
      if (!expectIdent("unwind"))
        return false;
      if (!expect(TokKind::Colon, "':'"))
        return false;
      if (!parseBlockRef(Unwind))
        return false;
    }
    return expect(TokKind::RBracket, "']'");
  }
  return parseBlockRef(Target);
}

bool Parser::parseBlockItem(BasicBlock &BB, bool &SawTerminator) {
  SourceLocation Loc = Tok.Loc;

  // Keyword-led statements.
  if (atIdent("StorageLive") || atIdent("StorageDead")) {
    bool IsLive = Tok.Text == "StorageLive";
    bump();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (!Tok.is(TokKind::Local))
      return fail("expected local in storage statement");
    LocalId L = static_cast<LocalId>(Tok.IntVal);
    bump();
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Statements.push_back(IsLive ? Statement::storageLive(L, Loc)
                                   : Statement::storageDead(L, Loc));
    return true;
  }
  if (atIdent("nop")) {
    bump();
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Statements.push_back(Statement::nop());
    return true;
  }

  // Keyword-led terminators.
  if (atIdent("goto")) {
    bump();
    if (!expect(TokKind::Arrow, "'->'"))
      return false;
    BlockId B = 0;
    if (!parseBlockRef(B))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Term = Terminator::gotoBlock(B);
    BB.Term.Loc = Loc;
    SawTerminator = true;
    return true;
  }
  if (atIdent("return") || atIdent("resume") || atIdent("unreachable")) {
    Terminator T = atIdent("return")   ? Terminator::ret()
                   : atIdent("resume") ? Terminator::resume()
                                       : Terminator::unreachable();
    bump();
    if (!expect(TokKind::Semi, "';'"))
      return false;
    T.Loc = Loc;
    BB.Term = std::move(T);
    SawTerminator = true;
    return true;
  }
  if (atIdent("drop")) {
    bump();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Place P;
    if (!parsePlace(P))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (!expect(TokKind::Arrow, "'->'"))
      return false;
    BlockId Target = 0, Unwind = InvalidBlock;
    if (!parseCallTargets(Target, Unwind))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Term = Terminator::drop(std::move(P), Target, Unwind);
    BB.Term.Loc = Loc;
    SawTerminator = true;
    return true;
  }
  if (atIdent("switchInt")) {
    bump();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Operand Discr;
    if (!parseOperand(Discr))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (!expect(TokKind::Arrow, "'->'"))
      return false;
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    CaseList Cases;
    BlockId Otherwise = InvalidBlock;
    while (true) {
      if (atIdent("otherwise")) {
        bump();
        if (!expect(TokKind::Colon, "':'"))
          return false;
        if (!parseBlockRef(Otherwise))
          return false;
        break;
      }
      bool Negate = false;
      if (Tok.is(TokKind::Minus)) {
        Negate = true;
        bump();
      }
      if (!Tok.is(TokKind::Int))
        return fail("expected case value or 'otherwise' in switchInt");
      int64_t Value = Negate ? -Tok.IntVal : Tok.IntVal;
      bump();
      if (!expect(TokKind::Colon, "':'"))
        return false;
      BlockId B = 0;
      if (!parseBlockRef(B))
        return false;
      Cases.emplace_back(Value, B);
      if (!expect(TokKind::Comma, "','"))
        return false;
    }
    if (!expect(TokKind::RBracket, "']'"))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Term = Terminator::switchInt(std::move(Discr), std::move(Cases),
                                    Otherwise);
    BB.Term.Loc = Loc;
    SawTerminator = true;
    return true;
  }
  if (atIdent("assert")) {
    bump();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Operand Cond;
    if (!parseOperand(Cond))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (!expect(TokKind::Arrow, "'->'"))
      return false;
    BlockId Target = 0;
    if (!parseBlockRef(Target))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Term = Terminator::assertCond(std::move(Cond), Target);
    BB.Term.Loc = Loc;
    SawTerminator = true;
    return true;
  }

  // "place = ..." : assignment statement or call-with-destination.
  if (Tok.is(TokKind::Local) || Tok.is(TokKind::LParen)) {
    Place Dest;
    if (!parsePlace(Dest))
      return false;
    if (!expect(TokKind::Eq, "'='"))
      return false;
    Rvalue RV;
    Terminator Call;
    bool IsCall = false;
    if (!parseAssignRhs(RV, Call, IsCall))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    if (IsCall) {
      Call.Dest = std::move(Dest);
      Call.HasDest = true;
      Call.Loc = Loc;
      BB.Term = std::move(Call);
      SawTerminator = true;
      return true;
    }
    BB.Statements.push_back(
        Statement::assign(std::move(Dest), std::move(RV), Loc));
    return true;
  }

  // Bare call terminator: "callee(args) -> target;".
  if (Tok.is(TokKind::Ident)) {
    Symbol Callee;
    if (!parsePath(Callee))
      return false;
    if (!expect(TokKind::LParen, "'(' after callee"))
      return false;
    OperandList Args;
    if (!parseOperandList(Args, TokKind::RParen))
      return false;
    if (!expect(TokKind::Arrow, "'->' after call"))
      return false;
    BlockId Target = 0, Unwind = InvalidBlock;
    if (!parseCallTargets(Target, Unwind))
      return false;
    if (!expect(TokKind::Semi, "';'"))
      return false;
    BB.Term =
        Terminator::callNoDest(std::move(Callee), std::move(Args), Target,
                               Unwind);
    BB.Term.Loc = Loc;
    SawTerminator = true;
    return true;
  }

  return fail("expected statement or terminator");
}

//===----------------------------------------------------------------------===//
// Rvalues, operands, places, paths, types
//===----------------------------------------------------------------------===//

std::optional<BinOp> Parser::binOpFromName(std::string_view Name) const {
  static const std::pair<std::string_view, BinOp> Names[] = {
      {"Add", BinOp::Add},       {"Sub", BinOp::Sub},
      {"Mul", BinOp::Mul},       {"Div", BinOp::Div},
      {"Rem", BinOp::Rem},       {"BitAnd", BinOp::BitAnd},
      {"BitOr", BinOp::BitOr},   {"BitXor", BinOp::BitXor},
      {"Shl", BinOp::Shl},       {"Shr", BinOp::Shr},
      {"Eq", BinOp::Eq},         {"Ne", BinOp::Ne},
      {"Lt", BinOp::Lt},         {"Le", BinOp::Le},
      {"Gt", BinOp::Gt},         {"Ge", BinOp::Ge},
      {"Offset", BinOp::Offset},
  };
  for (const auto &[N, Op] : Names)
    if (N == Name)
      return Op;
  return std::nullopt;
}

std::optional<UnOp> Parser::unOpFromName(std::string_view Name) const {
  if (Name == "Not")
    return UnOp::Not;
  if (Name == "Neg")
    return UnOp::Neg;
  return std::nullopt;
}

bool Parser::parseAssignRhs(Rvalue &RV, Terminator &Call, bool &IsCall) {
  IsCall = false;

  // Operand-led rvalue, possibly a cast.
  if (atIdent("copy") || atIdent("move") || atIdent("const")) {
    Operand O;
    if (!parseOperand(O))
      return false;
    if (consumeIdent("as")) {
      const Type *Ty = nullptr;
      if (!parseType(Ty))
        return false;
      // Chained casts: "x as *const i32 as *mut i32".
      while (consumeIdent("as"))
        if (!parseType(Ty))
          return false;
      RV = Rvalue::cast(std::move(O), Ty);
      return true;
    }
    RV = Rvalue::use(std::move(O));
    return true;
  }

  // References and raw address-of.
  if (Tok.is(TokKind::Amp)) {
    bump();
    if (consumeIdent("raw")) {
      bool Mut;
      if (consumeIdent("mut"))
        Mut = true;
      else if (consumeIdent("const"))
        Mut = false;
      else
        return fail("expected 'const' or 'mut' after '&raw'");
      Place P;
      if (!parsePlace(P))
        return false;
      RV = Rvalue::addressOf(std::move(P), Mut);
      return true;
    }
    bool Mut = consumeIdent("mut");
    Place P;
    if (!parsePlace(P))
      return false;
    RV = Rvalue::ref(std::move(P), Mut);
    return true;
  }

  // Tuple aggregate.
  if (Tok.is(TokKind::LParen)) {
    bump();
    OperandList Elems;
    if (!parseOperandList(Elems, TokKind::RParen))
      return false;
    RV = Rvalue::tuple(std::move(Elems));
    return true;
  }

  if (atIdent("discriminant") || atIdent("Len")) {
    bool IsDiscr = Tok.Text == "discriminant";
    bump();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Place P;
    if (!parsePlace(P))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    RV = IsDiscr ? Rvalue::discriminant(std::move(P))
                 : Rvalue::len(std::move(P));
    return true;
  }

  // Path-led: struct aggregate, binop/unop, or call terminator.
  if (Tok.is(TokKind::Ident)) {
    Symbol PathName;
    if (!parsePath(PathName))
      return false;

    if (Tok.is(TokKind::LBrace)) {
      bump();
      std::vector<std::pair<unsigned, Operand>> Fields;
      while (!Tok.is(TokKind::RBrace)) {
        if (!Tok.is(TokKind::Int))
          return fail("expected field index in aggregate");
        unsigned Idx = static_cast<unsigned>(Tok.IntVal);
        bump();
        if (!expect(TokKind::Colon, "':'"))
          return false;
        Operand O;
        if (!parseOperand(O))
          return false;
        Fields.emplace_back(Idx, std::move(O));
        if (Tok.is(TokKind::Comma)) {
          bump();
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBrace, "'}'"))
        return false;
      std::sort(Fields.begin(), Fields.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });
      OperandList Ops;
      for (auto &[Idx, O] : Fields) {
        if (Idx != Ops.size())
          return fail("aggregate fields must cover 0..N once each");
        Ops.push_back(std::move(O));
      }
      RV = Rvalue::aggregate(PathName, std::move(Ops));
      return true;
    }

    if (!expect(TokKind::LParen, "'(' after name in rvalue"))
      return false;
    OperandList Args;
    if (!parseOperandList(Args, TokKind::RParen))
      return false;

    if (Tok.is(TokKind::Arrow)) {
      bump();
      BlockId Target = 0, Unwind = InvalidBlock;
      if (!parseCallTargets(Target, Unwind))
        return false;
      Call = Terminator::callNoDest(PathName, std::move(Args), Target, Unwind);
      IsCall = true;
      return true;
    }

    if (auto BOp = binOpFromName(PathName.view())) {
      if (Args.size() != 2)
        return fail(PathName.str() + " expects exactly two operands");
      RV = Rvalue::binary(*BOp, std::move(Args[0]), std::move(Args[1]));
      return true;
    }
    if (auto UOp = unOpFromName(PathName.view())) {
      if (Args.size() != 1)
        return fail(PathName.str() + " expects exactly one operand");
      RV = Rvalue::unary(*UOp, std::move(Args[0]));
      return true;
    }
    return fail("call to '" + PathName.str() +
                "' needs a target block ('-> bbN'); calls are terminators");
  }

  return fail("expected rvalue");
}

bool Parser::parsePath(Symbol &Out) {
  if (!Tok.is(TokKind::Ident))
    return fail("expected path");
  std::string_view First = Tok.Text;
  bump();
  if (!Tok.is(TokKind::ColonColon)) {
    // Single-segment path: intern straight from the buffer, no copy.
    Out = Symbol::intern(First);
    return true;
  }
  PathScratch.assign(First);
  while (Tok.is(TokKind::ColonColon)) {
    bump();
    if (!Tok.is(TokKind::Ident))
      return fail("expected identifier after '::'");
    PathScratch += "::";
    PathScratch += Tok.Text;
    bump();
  }
  Out = Symbol::intern(PathScratch);
  return true;
}

bool Parser::parsePlace(Place &Out) {
  if (Tok.is(TokKind::Local)) {
    Out = Place(static_cast<LocalId>(Tok.IntVal));
    bump();
  } else if (Tok.is(TokKind::LParen)) {
    bump();
    if (!expect(TokKind::Star, "'*' in deref place"))
      return false;
    if (!parsePlace(Out))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    Out.Projs.push_back(ProjectionElem::deref());
  } else {
    return fail("expected place");
  }

  while (true) {
    if (Tok.is(TokKind::Dot)) {
      bump();
      if (!Tok.is(TokKind::Int))
        return fail("expected field index after '.'");
      Out.Projs.push_back(
          ProjectionElem::field(static_cast<unsigned>(Tok.IntVal)));
      bump();
      continue;
    }
    if (Tok.is(TokKind::LBracket)) {
      bump();
      if (!Tok.is(TokKind::Local))
        return fail("expected index local in '[...]'");
      Out.Projs.push_back(
          ProjectionElem::index(static_cast<LocalId>(Tok.IntVal)));
      bump();
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      continue;
    }
    return true;
  }
}

/// Maps a primitive type name to its kind ("i32" -> I32).
static std::optional<PrimKind> primFromName(std::string_view Name) {
  static const std::pair<std::string_view, PrimKind> Names[] = {
      {"bool", PrimKind::Bool},   {"char", PrimKind::Char},
      {"str", PrimKind::Str},     {"i8", PrimKind::I8},
      {"i16", PrimKind::I16},     {"i32", PrimKind::I32},
      {"i64", PrimKind::I64},     {"isize", PrimKind::ISize},
      {"u8", PrimKind::U8},       {"u16", PrimKind::U16},
      {"u32", PrimKind::U32},     {"u64", PrimKind::U64},
      {"usize", PrimKind::USize}, {"f32", PrimKind::F32},
      {"f64", PrimKind::F64},
  };
  for (const auto &[N, K] : Names)
    if (N == Name)
      return K;
  return std::nullopt;
}

bool Parser::parseOperand(Operand &Out) {
  if (consumeIdent("copy")) {
    Place P;
    if (!parsePlace(P))
      return false;
    Out = Operand::copy(std::move(P));
    return true;
  }
  if (consumeIdent("move")) {
    Place P;
    if (!parsePlace(P))
      return false;
    Out = Operand::move(std::move(P));
    return true;
  }
  if (consumeIdent("const")) {
    if (Tok.is(TokKind::Minus)) {
      bump();
      if (!Tok.is(TokKind::Int))
        return fail("expected integer after '-'");
      const Type *Ty = nullptr;
      if (!Tok.Suffix.empty()) {
        auto K = primFromName(Tok.Suffix);
        if (!K)
          return fail("unknown literal suffix '" + std::string(Tok.Suffix) +
                      "'");
        Ty = M.types().getPrim(*K);
      }
      Out = Operand::constant(ConstValue::makeInt(-Tok.IntVal, Ty));
      bump();
      return true;
    }
    if (Tok.is(TokKind::Int)) {
      const Type *Ty = nullptr;
      if (!Tok.Suffix.empty()) {
        auto K = primFromName(Tok.Suffix);
        if (!K)
          return fail("unknown literal suffix '" + std::string(Tok.Suffix) +
                      "'");
        Ty = M.types().getPrim(*K);
      }
      Out = Operand::constant(ConstValue::makeInt(Tok.IntVal, Ty));
      bump();
      return true;
    }
    if (Tok.is(TokKind::String)) {
      Out = Operand::constant(ConstValue::makeStr(decodeStringLiteral(Tok.Text)));
      bump();
      return true;
    }
    if (atIdent("true") || atIdent("false")) {
      Out = Operand::constant(ConstValue::makeBool(Tok.Text == "true"));
      bump();
      return true;
    }
    if (Tok.is(TokKind::LParen)) {
      bump();
      if (!expect(TokKind::RParen, "')' in unit constant"))
        return false;
      Out = Operand::constant(ConstValue::makeUnit());
      return true;
    }
    return fail("expected literal after 'const'");
  }
  return fail("expected operand ('copy', 'move', or 'const')");
}

bool Parser::parseOperandList(OperandList &Out, TokKind Close) {
  while (!Tok.is(Close)) {
    Operand O;
    if (!parseOperand(O))
      return false;
    Out.push_back(std::move(O));
    if (Tok.is(TokKind::Comma)) {
      bump();
      continue;
    }
    break;
  }
  return expect(Close, "closing delimiter of operand list");
}

bool Parser::parseType(const Type *&Out) {
  TypeContext &TC = M.types();

  if (Tok.is(TokKind::Amp)) {
    bump();
    bool Mut = consumeIdent("mut");
    const Type *Pointee = nullptr;
    if (!parseType(Pointee))
      return false;
    Out = TC.getRef(Pointee, Mut);
    return true;
  }
  if (Tok.is(TokKind::Star)) {
    bump();
    bool Mut;
    if (consumeIdent("mut"))
      Mut = true;
    else if (consumeIdent("const"))
      Mut = false;
    else
      return fail("expected 'const' or 'mut' after '*' in type");
    const Type *Pointee = nullptr;
    if (!parseType(Pointee))
      return false;
    Out = TC.getRawPtr(Pointee, Mut);
    return true;
  }
  if (Tok.is(TokKind::LParen)) {
    bump();
    std::vector<const Type *> Elems;
    while (!Tok.is(TokKind::RParen)) {
      const Type *Elem = nullptr;
      if (!parseType(Elem))
        return false;
      Elems.push_back(Elem);
      if (Tok.is(TokKind::Comma)) {
        bump();
        continue;
      }
      break;
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    Out = TC.getTuple(std::move(Elems));
    return true;
  }
  if (Tok.is(TokKind::LBracket)) {
    bump();
    const Type *Elem = nullptr;
    if (!parseType(Elem))
      return false;
    if (Tok.is(TokKind::Semi)) {
      bump();
      if (!Tok.is(TokKind::Int))
        return fail("expected array length");
      uint64_t Len = static_cast<uint64_t>(Tok.IntVal);
      bump();
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      Out = TC.getArray(Elem, Len);
      return true;
    }
    if (!expect(TokKind::RBracket, "']'"))
      return false;
    Out = TC.getSlice(Elem);
    return true;
  }
  if (Tok.is(TokKind::Ident)) {
    if (auto K = primFromName(Tok.Text)) {
      Out = TC.getPrim(*K);
      bump();
      return true;
    }
    Symbol Name;
    if (!parsePath(Name))
      return false;
    std::vector<const Type *> Args;
    if (Tok.is(TokKind::Lt)) {
      bump();
      while (!Tok.is(TokKind::Gt)) {
        const Type *Arg = nullptr;
        if (!parseType(Arg))
          return false;
        Args.push_back(Arg);
        if (Tok.is(TokKind::Comma)) {
          bump();
          continue;
        }
        break;
      }
      if (!expect(TokKind::Gt, "'>'"))
        return false;
    }
    Out = TC.getAdt(Name, std::move(Args));
    return true;
  }
  return fail("expected type");
}

#include "mir/Type.h"

#include <cassert>

using namespace rs::mir;

const char *rs::mir::primKindName(PrimKind K) {
  switch (K) {
  case PrimKind::Unit:
    return "()";
  case PrimKind::Bool:
    return "bool";
  case PrimKind::Char:
    return "char";
  case PrimKind::Str:
    return "str";
  case PrimKind::I8:
    return "i8";
  case PrimKind::I16:
    return "i16";
  case PrimKind::I32:
    return "i32";
  case PrimKind::I64:
    return "i64";
  case PrimKind::ISize:
    return "isize";
  case PrimKind::U8:
    return "u8";
  case PrimKind::U16:
    return "u16";
  case PrimKind::U32:
    return "u32";
  case PrimKind::U64:
    return "u64";
  case PrimKind::USize:
    return "usize";
  case PrimKind::F32:
    return "f32";
  case PrimKind::F64:
    return "f64";
  }
  assert(false && "unknown PrimKind");
  return "?";
}

std::string Type::toString() const {
  switch (K) {
  case Kind::Prim:
    return primKindName(Prim);
  case Kind::Ref:
    return std::string("&") + (Mut ? "mut " : "") + Pointee->toString();
  case Kind::RawPtr:
    return std::string("*") + (Mut ? "mut " : "const ") + Pointee->toString();
  case Kind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I]->toString();
    }
    // A 1-tuple renders with a trailing comma, as in Rust.
    if (Args.size() == 1)
      Out += ",";
    Out += ")";
    return Out;
  }
  case Kind::Array:
    return "[" + Pointee->toString() + "; " + std::to_string(ArrayLen) + "]";
  case Kind::Slice:
    return "[" + Pointee->toString() + "]";
  case Kind::Adt: {
    std::string Out = Name;
    if (!Args.empty()) {
      Out += "<";
      for (size_t I = 0; I != Args.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += Args[I]->toString();
      }
      Out += ">";
    }
    return Out;
  }
  }
  assert(false && "unknown Type::Kind");
  return "?";
}

const Type *TypeContext::intern(Type T) {
  std::string Key = T.toString();
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second.get();
  auto Owned = std::unique_ptr<Type>(new Type(std::move(T)));
  const Type *Raw = Owned.get();
  Interned.emplace(std::move(Key), std::move(Owned));
  return Raw;
}

const Type *TypeContext::getPrim(PrimKind K) {
  Type T;
  T.K = Type::Kind::Prim;
  T.Prim = K;
  return intern(std::move(T));
}

const Type *TypeContext::getRef(const Type *Pointee, bool Mut) {
  assert(Pointee && "null pointee");
  Type T;
  T.K = Type::Kind::Ref;
  T.Mut = Mut;
  T.Pointee = Pointee;
  return intern(std::move(T));
}

const Type *TypeContext::getRawPtr(const Type *Pointee, bool Mut) {
  assert(Pointee && "null pointee");
  Type T;
  T.K = Type::Kind::RawPtr;
  T.Mut = Mut;
  T.Pointee = Pointee;
  return intern(std::move(T));
}

const Type *TypeContext::getTuple(std::vector<const Type *> Elems) {
  Type T;
  T.K = Type::Kind::Tuple;
  T.Args = std::move(Elems);
  if (T.Args.empty())
    return getPrim(PrimKind::Unit);
  return intern(std::move(T));
}

const Type *TypeContext::getArray(const Type *Elem, uint64_t Len) {
  assert(Elem && "null element type");
  Type T;
  T.K = Type::Kind::Array;
  T.Pointee = Elem;
  T.ArrayLen = Len;
  return intern(std::move(T));
}

const Type *TypeContext::getSlice(const Type *Elem) {
  assert(Elem && "null element type");
  Type T;
  T.K = Type::Kind::Slice;
  T.Pointee = Elem;
  return intern(std::move(T));
}

const Type *TypeContext::getAdt(std::string Name,
                                std::vector<const Type *> Args) {
  assert(!Name.empty() && "ADT needs a name");
  Type T;
  T.K = Type::Kind::Adt;
  T.Name = std::move(Name);
  T.Args = std::move(Args);
  return intern(std::move(T));
}

#include "mir/Type.h"

#include "support/Hash.h"

#include <cassert>

using namespace rs;
using namespace rs::mir;

const char *rs::mir::primKindName(PrimKind K) {
  switch (K) {
  case PrimKind::Unit:
    return "()";
  case PrimKind::Bool:
    return "bool";
  case PrimKind::Char:
    return "char";
  case PrimKind::Str:
    return "str";
  case PrimKind::I8:
    return "i8";
  case PrimKind::I16:
    return "i16";
  case PrimKind::I32:
    return "i32";
  case PrimKind::I64:
    return "i64";
  case PrimKind::ISize:
    return "isize";
  case PrimKind::U8:
    return "u8";
  case PrimKind::U16:
    return "u16";
  case PrimKind::U32:
    return "u32";
  case PrimKind::U64:
    return "u64";
  case PrimKind::USize:
    return "usize";
  case PrimKind::F32:
    return "f32";
  case PrimKind::F64:
    return "f64";
  }
  assert(false && "unknown PrimKind");
  return "?";
}

std::string Type::toString() const {
  switch (K) {
  case Kind::Prim:
    return primKindName(Prim);
  case Kind::Ref:
    return std::string("&") + (Mut ? "mut " : "") + Pointee->toString();
  case Kind::RawPtr:
    return std::string("*") + (Mut ? "mut " : "const ") + Pointee->toString();
  case Kind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I]->toString();
    }
    // A 1-tuple renders with a trailing comma, as in Rust.
    if (Args.size() == 1)
      Out += ",";
    Out += ")";
    return Out;
  }
  case Kind::Array:
    return "[" + Pointee->toString() + "; " + std::to_string(ArrayLen) + "]";
  case Kind::Slice:
    return "[" + Pointee->toString() + "]";
  case Kind::Adt: {
    std::string Out = Name.str();
    if (!Args.empty()) {
      Out += "<";
      for (size_t I = 0; I != Args.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += Args[I]->toString();
      }
      Out += ">";
    }
    return Out;
  }
  }
  assert(false && "unknown Type::Kind");
  return "?";
}

static uint64_t structuralHash(const Type &T, Type::Kind K, PrimKind Prim,
                               bool Mut, const Type *Pointee,
                               uint64_t ArrayLen,
                               const std::vector<const Type *> &Args,
                               Symbol Name) {
  (void)T;
  uint64_t H = fnv1a64U64(static_cast<uint64_t>(K));
  H = fnv1a64U64(static_cast<uint64_t>(Prim), H);
  H = fnv1a64U64(Mut ? 1 : 0, H);
  H = fnv1a64U64(reinterpret_cast<uintptr_t>(Pointee), H);
  H = fnv1a64U64(ArrayLen, H);
  H = fnv1a64U64(Name.id(), H);
  for (const Type *A : Args)
    H = fnv1a64U64(reinterpret_cast<uintptr_t>(A), H);
  return H;
}

const Type *TypeContext::intern(Type T) {
  uint64_t H = structuralHash(T, T.K, T.Prim, T.Mut, T.Pointee, T.ArrayLen,
                              T.Args, T.Name);
  std::vector<std::unique_ptr<Type>> &Bucket = Interned[H];
  for (const std::unique_ptr<Type> &Existing : Bucket)
    if (Existing->K == T.K && Existing->Prim == T.Prim &&
        Existing->Mut == T.Mut && Existing->Pointee == T.Pointee &&
        Existing->ArrayLen == T.ArrayLen && Existing->Args == T.Args &&
        Existing->Name == T.Name)
      return Existing.get();
  Bucket.push_back(std::unique_ptr<Type>(new Type(std::move(T))));
  return Bucket.back().get();
}

const Type *TypeContext::getPrim(PrimKind K) {
  unsigned Idx = static_cast<unsigned>(K);
  assert(Idx < NumPrimKinds && "unknown PrimKind");
  if (const Type *Cached = Prims[Idx])
    return Cached;
  Type T;
  T.K = Type::Kind::Prim;
  T.Prim = K;
  Prims[Idx] = intern(std::move(T));
  return Prims[Idx];
}

const Type *TypeContext::getRef(const Type *Pointee, bool Mut) {
  assert(Pointee && "null pointee");
  Type T;
  T.K = Type::Kind::Ref;
  T.Mut = Mut;
  T.Pointee = Pointee;
  return intern(std::move(T));
}

const Type *TypeContext::getRawPtr(const Type *Pointee, bool Mut) {
  assert(Pointee && "null pointee");
  Type T;
  T.K = Type::Kind::RawPtr;
  T.Mut = Mut;
  T.Pointee = Pointee;
  return intern(std::move(T));
}

const Type *TypeContext::getTuple(std::vector<const Type *> Elems) {
  Type T;
  T.K = Type::Kind::Tuple;
  T.Args = std::move(Elems);
  if (T.Args.empty())
    return getPrim(PrimKind::Unit);
  return intern(std::move(T));
}

const Type *TypeContext::getArray(const Type *Elem, uint64_t Len) {
  assert(Elem && "null element type");
  Type T;
  T.K = Type::Kind::Array;
  T.Pointee = Elem;
  T.ArrayLen = Len;
  return intern(std::move(T));
}

const Type *TypeContext::getSlice(const Type *Elem) {
  assert(Elem && "null element type");
  Type T;
  T.K = Type::Kind::Slice;
  T.Pointee = Elem;
  return intern(std::move(T));
}

const Type *TypeContext::getAdt(std::string_view Name,
                                std::vector<const Type *> Args) {
  return getAdt(Symbol::intern(Name), std::move(Args));
}

const Type *TypeContext::getAdt(Symbol Name, std::vector<const Type *> Args) {
  assert(!Name.empty() && "ADT needs a name");
  Type T;
  T.K = Type::Kind::Adt;
  T.Name = Name;
  T.Args = std::move(Args);
  return intern(std::move(T));
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RustLite MIR type system. Types are immutable and interned in a
/// TypeContext, so `const Type *` pointers can be compared for equality.
///
/// The dialect models the parts of Rust's type system the paper's analyses
/// need: primitives, shared/mutable references, raw pointers, tuples, arrays,
/// slices, and nominal ADTs with type arguments (e.g. Mutex<i32>). ADTs are
/// structurally opaque except for struct declarations registered in a Module.
///
/// Interning is structural: a candidate type hashes over its kind, scalar
/// fields, interned child pointers, and name symbol — never over a rendered
/// string — so getRef/getAdt on the hot parse path performs no allocation
/// when the type already exists. Primitives come from a flat array.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_TYPE_H
#define RUSTSIGHT_MIR_TYPE_H

#include "support/Symbol.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace rs::mir {

/// Built-in scalar types.
enum class PrimKind {
  Unit,
  Bool,
  Char,
  Str,
  I8,
  I16,
  I32,
  I64,
  ISize,
  U8,
  U16,
  U32,
  U64,
  USize,
  F32,
  F64,
};

inline constexpr unsigned NumPrimKinds = 16;

/// Renders a primitive kind with Rust surface syntax ("i32", "()", ...).
const char *primKindName(PrimKind K);

/// An interned RustLite type. Construct through TypeContext only.
class Type {
public:
  enum class Kind {
    Prim,    ///< A scalar; see prim().
    Ref,     ///< &T or &mut T.
    RawPtr,  ///< *const T or *mut T.
    Tuple,   ///< (T0, T1, ...).
    Array,   ///< [T; N].
    Slice,   ///< [T].
    Adt,     ///< A nominal type, possibly generic: Foo, Mutex<i32>.
  };

  Kind kind() const { return K; }
  bool isPrim() const { return K == Kind::Prim; }
  bool isRef() const { return K == Kind::Ref; }
  bool isRawPtr() const { return K == Kind::RawPtr; }
  bool isAnyPtr() const { return isRef() || isRawPtr(); }
  bool isTuple() const { return K == Kind::Tuple; }
  bool isAdt() const { return K == Kind::Adt; }
  bool isUnit() const { return K == Kind::Prim && Prim == PrimKind::Unit; }

  /// The scalar kind; only valid for Prim types.
  PrimKind prim() const { return Prim; }

  /// For Ref/RawPtr: whether the pointer permits mutation (&mut, *mut).
  bool isMutPtr() const { return Mut; }

  /// For Ref/RawPtr/Array/Slice: the pointee or element type.
  const Type *pointee() const { return Pointee; }

  /// For Array: the constant length.
  uint64_t arrayLen() const { return ArrayLen; }

  /// For Tuple: element types. For Adt: type arguments.
  const std::vector<const Type *> &args() const { return Args; }

  /// For Adt: the (possibly ::-qualified) nominal name, without arguments.
  const std::string &adtName() const { return Name.str(); }
  Symbol adtNameSym() const { return Name; }

  /// Renders the type with Rust surface syntax.
  std::string toString() const;

private:
  friend class TypeContext;
  Type() = default;

  Kind K = Kind::Prim;
  PrimKind Prim = PrimKind::Unit;
  bool Mut = false;
  const Type *Pointee = nullptr;
  uint64_t ArrayLen = 0;
  std::vector<const Type *> Args;
  Symbol Name;
};

/// Owns and interns Type nodes. Each Module has one; types from different
/// contexts must not be mixed.
class TypeContext {
public:
  TypeContext() = default;
  TypeContext(TypeContext &&) = default;
  TypeContext &operator=(TypeContext &&) = default;
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *getPrim(PrimKind K);
  const Type *getUnit() { return getPrim(PrimKind::Unit); }
  const Type *getBool() { return getPrim(PrimKind::Bool); }
  const Type *getI32() { return getPrim(PrimKind::I32); }
  const Type *getUSize() { return getPrim(PrimKind::USize); }

  const Type *getRef(const Type *Pointee, bool Mut);
  const Type *getRawPtr(const Type *Pointee, bool Mut);
  const Type *getTuple(std::vector<const Type *> Elems);
  const Type *getArray(const Type *Elem, uint64_t Len);
  const Type *getSlice(const Type *Elem);
  const Type *getAdt(std::string_view Name,
                     std::vector<const Type *> Args = {});
  const Type *getAdt(Symbol Name, std::vector<const Type *> Args = {});

private:
  const Type *intern(Type T);

  /// Primitives are a direct lookup — no hashing on the hottest path.
  const Type *Prims[NumPrimKinds] = {};

  /// Structural-hash buckets; collisions resolved by full structural
  /// comparison. Child pointers are already interned, so pointer identity
  /// stands in for structural identity of subterms.
  std::unordered_map<uint64_t, std::vector<std::unique_ptr<Type>>> Interned;
};

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_TYPE_H

#include "mir/Transforms.h"

#include <algorithm>
#include <cassert>

using namespace rs::mir;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

namespace {

/// Applies \p Map to every block reference in \p T. References mapped to
/// InvalidBlock must not occur (callers only remap live targets).
void remapTargets(Terminator &T, const std::vector<BlockId> &Map) {
  auto Remap = [&Map](BlockId &B) {
    if (B == InvalidBlock)
      return;
    assert(B < Map.size() && Map[B] != InvalidBlock &&
           "remapping a reference to a removed block");
    B = Map[B];
  };
  Remap(T.Target);
  Remap(T.Unwind);
  for (auto &[Value, Block] : T.Cases)
    Remap(Block);
}

/// Reachable-block set computed directly over the function (the mir
/// library cannot use analysis::Cfg without inverting the layering).
std::vector<bool> reachableBlocks(const Function &F) {
  std::vector<bool> Seen(F.numBlocks(), false);
  if (F.numBlocks() == 0)
    return Seen;
  std::vector<BlockId> Work{0};
  Seen[0] = true;
  SuccList Succs;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    Succs.clear();
    F.Blocks[B].Term.successors(Succs);
    for (BlockId S : Succs) {
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
    }
  }
  return Seen;
}

/// Number of predecessors of each block (parallel edges counted once).
std::vector<unsigned> predecessorCounts(const Function &F) {
  std::vector<unsigned> Counts(F.numBlocks(), 0);
  SuccList Succs;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    Succs.clear();
    F.Blocks[B].Term.successors(Succs);
    std::sort(Succs.begin(), Succs.end());
    Succs.erase(std::unique(Succs.begin(), Succs.end()), Succs.end());
    for (BlockId S : Succs)
      ++Counts[S];
  }
  return Counts;
}

//===----------------------------------------------------------------------===//
// DeadBlockElim
//===----------------------------------------------------------------------===//

class DeadBlockElim : public FunctionPass {
public:
  const char *name() const override { return "dead-block-elim"; }

  bool runOn(Function &F, const Module &) override {
    std::vector<bool> Live = reachableBlocks(F);
    if (std::find(Live.begin(), Live.end(), false) == Live.end())
      return false;

    std::vector<BlockId> Map(F.numBlocks(), InvalidBlock);
    std::vector<BasicBlock> Kept;
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      if (!Live[B])
        continue;
      Map[B] = static_cast<BlockId>(Kept.size());
      Kept.push_back(std::move(F.Blocks[B]));
    }
    for (BasicBlock &BB : Kept)
      remapTargets(BB.Term, Map);
    F.Blocks = std::move(Kept);
    return true;
  }
};

//===----------------------------------------------------------------------===//
// SimplifyCfg
//===----------------------------------------------------------------------===//

class SimplifyCfg : public FunctionPass {
public:
  const char *name() const override { return "simplify-cfg"; }

  bool runOn(Function &F, const Module &) override {
    bool Changed = false;
    Changed |= foldConstantSwitches(F);
    Changed |= threadTrivialGotos(F);
    Changed |= mergeSoloSuccessors(F);
    return Changed;
  }

private:
  /// switchInt over a literal becomes a goto to the taken arm.
  static bool foldConstantSwitches(Function &F) {
    bool Changed = false;
    for (BasicBlock &BB : F.Blocks) {
      Terminator &T = BB.Term;
      if (T.K != Terminator::Kind::SwitchInt || T.Discr.isPlace())
        continue;
      const ConstValue &C = T.Discr.C;
      int64_t V;
      if (C.K == ConstValue::Kind::Int)
        V = C.Int;
      else if (C.K == ConstValue::Kind::Bool)
        V = C.Bool ? 1 : 0;
      else
        continue;
      BlockId Taken = T.Target;
      for (const auto &[Case, Block] : T.Cases) {
        if (Case == V) {
          Taken = Block;
          break;
        }
      }
      T = Terminator::gotoBlock(Taken);
      Changed = true;
    }
    return Changed;
  }

  /// Retargets edges that point at an empty block whose only content is
  /// "goto -> X" (jump threading). Self-loops are left alone.
  static bool threadTrivialGotos(Function &F) {
    // Resolve each block to its forwarding destination, collapsing chains
    // but guarding against goto cycles.
    unsigned N = F.numBlocks();
    std::vector<BlockId> Forward(N);
    for (BlockId B = 0; B != N; ++B) {
      const BasicBlock &BB = F.Blocks[B];
      Forward[B] = (BB.Statements.empty() &&
                    BB.Term.K == Terminator::Kind::Goto &&
                    BB.Term.Target != B)
                       ? BB.Term.Target
                       : B;
    }
    auto Resolve = [&Forward, N](BlockId B) {
      unsigned Hops = 0;
      while (Forward[B] != B && Hops++ < N)
        B = Forward[B];
      return B;
    };

    bool Changed = false;
    for (BasicBlock &BB : F.Blocks) {
      Terminator &T = BB.Term;
      auto Retarget = [&](BlockId &Ref) {
        if (Ref == InvalidBlock)
          return;
        BlockId R = Resolve(Ref);
        if (R != Ref) {
          Ref = R;
          Changed = true;
        }
      };
      Retarget(T.Target);
      Retarget(T.Unwind);
      for (auto &[Value, Block] : T.Cases)
        Retarget(Block);
    }
    return Changed;
  }

  /// A block ending in "goto -> S" where S has exactly one predecessor
  /// absorbs S's statements and terminator.
  static bool mergeSoloSuccessors(Function &F) {
    bool Changed = false;
    std::vector<unsigned> Preds = predecessorCounts(F);
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      BasicBlock &BB = F.Blocks[B];
      while (BB.Term.K == Terminator::Kind::Goto) {
        BlockId S = BB.Term.Target;
        if (S == B || S == 0 || Preds[S] != 1)
          break;
        BasicBlock &Succ = F.Blocks[S];
        BB.Statements.insert(BB.Statements.end(),
                             std::make_move_iterator(Succ.Statements.begin()),
                             std::make_move_iterator(Succ.Statements.end()));
        Succ.Statements.clear();
        BB.Term = Succ.Term;
        // The absorbed block becomes an unreachable self-loop shell for
        // DeadBlockElim to collect.
        Succ.Term = Terminator::gotoBlock(S);
        Preds[S] = 0;
        Changed = true;
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// NopElim
//===----------------------------------------------------------------------===//

class NopElim : public FunctionPass {
public:
  const char *name() const override { return "nop-elim"; }

  bool runOn(Function &F, const Module &) override {
    bool Changed = false;
    for (BasicBlock &BB : F.Blocks) {
      size_t Before = BB.Statements.size();
      BB.Statements.erase(
          std::remove_if(BB.Statements.begin(), BB.Statements.end(),
                         [](const Statement &S) {
                           return S.K == Statement::Kind::Nop;
                         }),
          BB.Statements.end());
      Changed |= BB.Statements.size() != Before;
    }
    return Changed;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Pass manager and factories
//===----------------------------------------------------------------------===//

unsigned PassManager::run(Module &M, unsigned MaxRounds) {
  unsigned Applications = 0;
  for (Function &F : M.functions()) {
    for (unsigned Round = 0; Round != MaxRounds; ++Round) {
      bool Changed = false;
      for (const auto &P : Passes)
        Changed |= P->runOn(F, M) && ++Applications;
      if (!Changed)
        break;
    }
  }
  return Applications;
}

std::unique_ptr<FunctionPass> rs::mir::createSimplifyCfgPass() {
  return std::make_unique<SimplifyCfg>();
}

std::unique_ptr<FunctionPass> rs::mir::createDeadBlockElimPass() {
  return std::make_unique<DeadBlockElim>();
}

std::unique_ptr<FunctionPass> rs::mir::createNopElimPass() {
  return std::make_unique<NopElim>();
}

void rs::mir::addCleanupPasses(PassManager &PM) {
  PM.add(createSimplifyCfgPass());
  PM.add(createDeadBlockElimPass());
  PM.add(createNopElimPass());
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the RustLite MIR textual syntax. Keywords are not
/// distinguished from identifiers at the lexing level; the parser compares
/// identifier spellings.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_LEXER_H
#define RUSTSIGHT_MIR_LEXER_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace rs::mir {

/// Token kinds produced by the MIR lexer.
enum class TokKind {
  Eof,
  Error,    ///< An unrecognized character; Text holds it.
  Ident,    ///< Identifier or keyword ("fn", "bb0", "StorageLive", ...).
  Local,    ///< A local name "_N"; IntVal holds N.
  Int,      ///< Integer literal; IntVal holds the value, Suffix the
            ///< optional "_i32"-style type suffix (without the underscore).
  String,   ///< String literal; Text holds the raw source range including
            ///< quotes. Decode with decodeStringLiteral at parse time.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  ColonColon,
  Arrow,    ///< "->"
  Eq,
  Amp,
  Star,
  Dot,
  Lt,
  Gt,
  Minus,
};

/// One lexed token. Text/Suffix view into the lexer's input buffer, so a
/// token is trivially copyable and lexing never allocates; string literals
/// stay raw until the parser asks for them.
struct Token {
  TokKind K = TokKind::Eof;
  std::string_view Text;
  int64_t IntVal = 0;
  std::string_view Suffix;
  SourceLocation Loc;

  bool is(TokKind Kind) const { return K == Kind; }
  bool isIdent(std::string_view S) const {
    return K == TokKind::Ident && Text == S;
  }
};

/// Decodes the contents of a String token's raw range (strips the quotes,
/// resolves \n, \t, and pass-through escapes).
std::string decodeStringLiteral(std::string_view RawWithQuotes);

/// A single-pass lexer over an in-memory buffer. The buffer must outlive the
/// lexer and all tokens it produces.
class Lexer {
public:
  Lexer(std::string_view Buffer, std::string_view FileName);

  /// Lexes and returns the next token, advancing the cursor.
  Token next();

  /// The location of the cursor (for end-of-input diagnostics).
  SourceLocation currentLocation() const {
    return SourceLocation(File, Line, column());
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Buf.size() ? Buf[Pos + Ahead] : '\0';
  }
  void advance();
  void skipTrivia();
  unsigned column() const { return static_cast<unsigned>(Pos - LineStart + 1); }
  Token make(TokKind K, size_t Begin, SourceLocation Loc);

  std::string_view Buf;
  const std::string *File;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
};

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_LEXER_H

#include "mir/Mir.h"

#include <algorithm>

using namespace rs::mir;

//===----------------------------------------------------------------------===//
// Printing helpers
//===----------------------------------------------------------------------===//

std::string Place::toString() const {
  // Projections print inside-out: base first, derefs as (*p).
  std::string Out = "_" + std::to_string(Base);
  for (const ProjectionElem &P : Projs) {
    switch (P.K) {
    case ProjectionElem::Kind::Deref:
      Out = "(*" + Out + ")";
      break;
    case ProjectionElem::Kind::Field:
      Out += "." + std::to_string(P.FieldIdx);
      break;
    case ProjectionElem::Kind::Index:
      Out += "[_" + std::to_string(P.IndexLocal) + "]";
      break;
    }
  }
  return Out;
}

std::string ConstValue::toString() const {
  switch (K) {
  case Kind::Int: {
    std::string Out = std::to_string(Int);
    if (Ty)
      Out += "_" + Ty->toString();
    return Out;
  }
  case Kind::Bool:
    return Bool ? "true" : "false";
  case Kind::Str: {
    std::string Out = "\"";
    for (char C : Str.view()) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
    return Out;
  }
  case Kind::Unit:
    return "()";
  }
  return "?";
}

std::string Operand::toString() const {
  switch (K) {
  case Kind::Copy:
    return "copy " + P.toString();
  case Kind::Move:
    return "move " + P.toString();
  case Kind::Const:
    return "const " + C.toString();
  }
  return "?";
}

const char *rs::mir::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "Add";
  case BinOp::Sub:
    return "Sub";
  case BinOp::Mul:
    return "Mul";
  case BinOp::Div:
    return "Div";
  case BinOp::Rem:
    return "Rem";
  case BinOp::BitAnd:
    return "BitAnd";
  case BinOp::BitOr:
    return "BitOr";
  case BinOp::BitXor:
    return "BitXor";
  case BinOp::Shl:
    return "Shl";
  case BinOp::Shr:
    return "Shr";
  case BinOp::Eq:
    return "Eq";
  case BinOp::Ne:
    return "Ne";
  case BinOp::Lt:
    return "Lt";
  case BinOp::Le:
    return "Le";
  case BinOp::Gt:
    return "Gt";
  case BinOp::Ge:
    return "Ge";
  case BinOp::Offset:
    return "Offset";
  }
  return "?";
}

const char *rs::mir::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Not:
    return "Not";
  case UnOp::Neg:
    return "Neg";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Rvalue
//===----------------------------------------------------------------------===//

Rvalue Rvalue::use(Operand O) {
  Rvalue R;
  R.K = Kind::Use;
  R.Ops.push_back(std::move(O));
  return R;
}

Rvalue Rvalue::ref(Place P, bool Mut) {
  Rvalue R;
  R.K = Kind::Ref;
  R.P = std::move(P);
  R.Mut = Mut;
  return R;
}

Rvalue Rvalue::addressOf(Place P, bool Mut) {
  Rvalue R;
  R.K = Kind::AddressOf;
  R.P = std::move(P);
  R.Mut = Mut;
  return R;
}

Rvalue Rvalue::binary(BinOp Op, Operand A, Operand B) {
  Rvalue R;
  R.K = Kind::BinaryOp;
  R.BOp = Op;
  R.Ops.push_back(std::move(A));
  R.Ops.push_back(std::move(B));
  return R;
}

Rvalue Rvalue::unary(UnOp Op, Operand A) {
  Rvalue R;
  R.K = Kind::UnaryOp;
  R.UOp = Op;
  R.Ops.push_back(std::move(A));
  return R;
}

Rvalue Rvalue::cast(Operand A, const Type *Ty) {
  assert(Ty && "cast needs a target type");
  Rvalue R;
  R.K = Kind::Cast;
  R.CastTy = Ty;
  R.Ops.push_back(std::move(A));
  return R;
}

Rvalue Rvalue::tuple(OperandList Elems) {
  Rvalue R;
  R.K = Kind::Aggregate;
  R.Ops = std::move(Elems);
  return R;
}

Rvalue Rvalue::aggregate(std::string_view Name, OperandList Fields) {
  return aggregate(Symbol::intern(Name), std::move(Fields));
}

Rvalue Rvalue::aggregate(Symbol Name, OperandList Fields) {
  Rvalue R;
  R.K = Kind::Aggregate;
  R.AggName = Name;
  R.Ops = std::move(Fields);
  return R;
}

Rvalue Rvalue::discriminant(Place P) {
  Rvalue R;
  R.K = Kind::Discriminant;
  R.P = std::move(P);
  return R;
}

Rvalue Rvalue::len(Place P) {
  Rvalue R;
  R.K = Kind::Len;
  R.P = std::move(P);
  return R;
}

std::string Rvalue::toString() const {
  switch (K) {
  case Kind::Use:
    return Ops[0].toString();
  case Kind::Ref:
    return std::string("&") + (Mut ? "mut " : "") + P.toString();
  case Kind::AddressOf:
    return std::string("&raw ") + (Mut ? "mut " : "const ") + P.toString();
  case Kind::BinaryOp:
    return std::string(binOpName(BOp)) + "(" + Ops[0].toString() + ", " +
           Ops[1].toString() + ")";
  case Kind::UnaryOp:
    return std::string(unOpName(UOp)) + "(" + Ops[0].toString() + ")";
  case Kind::Cast:
    return Ops[0].toString() + " as " + CastTy->toString();
  case Kind::Aggregate: {
    std::string Out;
    if (AggName.empty()) {
      Out = "(";
      for (size_t I = 0; I != Ops.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += Ops[I].toString();
      }
      if (Ops.size() == 1)
        Out += ",";
      Out += ")";
      return Out;
    }
    Out = AggName.str() + " {";
    for (size_t I = 0; I != Ops.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += " " + std::to_string(I) + ": " + Ops[I].toString();
    }
    Out += " }";
    return Out;
  }
  case Kind::Discriminant:
    return "discriminant(" + P.toString() + ")";
  case Kind::Len:
    return "Len(" + P.toString() + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Statement
//===----------------------------------------------------------------------===//

std::string Statement::toString() const {
  switch (K) {
  case Kind::Assign:
    return Dest.toString() + " = " + RV.toString() + ";";
  case Kind::StorageLive:
    return "StorageLive(_" + std::to_string(Local) + ");";
  case Kind::StorageDead:
    return "StorageDead(_" + std::to_string(Local) + ");";
  case Kind::Nop:
    return "nop;";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Terminator
//===----------------------------------------------------------------------===//

Terminator Terminator::gotoBlock(BlockId B) {
  Terminator T;
  T.K = Kind::Goto;
  T.Target = B;
  return T;
}

Terminator Terminator::switchInt(Operand Discr, CaseList Cases,
                                 BlockId Otherwise) {
  Terminator T;
  T.K = Kind::SwitchInt;
  T.Discr = std::move(Discr);
  T.Cases = std::move(Cases);
  T.Target = Otherwise;
  return T;
}

Terminator Terminator::ret() {
  Terminator T;
  T.K = Kind::Return;
  return T;
}

Terminator Terminator::resume() {
  Terminator T;
  T.K = Kind::Resume;
  return T;
}

Terminator Terminator::unreachable() {
  Terminator T;
  T.K = Kind::Unreachable;
  return T;
}

Terminator Terminator::drop(Place P, BlockId Target, BlockId Unwind) {
  Terminator T;
  T.K = Kind::Drop;
  T.DropPlace = std::move(P);
  T.Target = Target;
  T.Unwind = Unwind;
  return T;
}

Terminator Terminator::call(Place Dest, std::string_view Callee,
                            OperandList Args, BlockId Target, BlockId Unwind) {
  return call(std::move(Dest), Symbol::intern(Callee), std::move(Args), Target,
              Unwind);
}

Terminator Terminator::call(Place Dest, Symbol Callee, OperandList Args,
                            BlockId Target, BlockId Unwind) {
  Terminator T;
  T.K = Kind::Call;
  T.Dest = std::move(Dest);
  T.HasDest = true;
  T.Callee = Callee;
  T.Args = std::move(Args);
  T.Target = Target;
  T.Unwind = Unwind;
  return T;
}

Terminator Terminator::callNoDest(std::string_view Callee, OperandList Args,
                                  BlockId Target, BlockId Unwind) {
  return callNoDest(Symbol::intern(Callee), std::move(Args), Target, Unwind);
}

Terminator Terminator::callNoDest(Symbol Callee, OperandList Args,
                                  BlockId Target, BlockId Unwind) {
  Terminator T;
  T.K = Kind::Call;
  T.HasDest = false;
  T.Callee = Callee;
  T.Args = std::move(Args);
  T.Target = Target;
  T.Unwind = Unwind;
  return T;
}

Terminator Terminator::assertCond(Operand Cond, BlockId Target) {
  Terminator T;
  T.K = Kind::Assert;
  T.Discr = std::move(Cond);
  T.Target = Target;
  return T;
}

void Terminator::successors(SuccList &Out) const {
  switch (K) {
  case Kind::Goto:
    Out.push_back(Target);
    return;
  case Kind::SwitchInt:
    for (const auto &[Value, Block] : Cases)
      Out.push_back(Block);
    Out.push_back(Target);
    return;
  case Kind::Return:
  case Kind::Resume:
  case Kind::Unreachable:
    return;
  case Kind::Drop:
  case Kind::Call:
    if (Target != InvalidBlock)
      Out.push_back(Target);
    if (Unwind != InvalidBlock)
      Out.push_back(Unwind);
    return;
  case Kind::Assert:
    Out.push_back(Target);
    return;
  }
}

static std::string blockName(BlockId B) { return "bb" + std::to_string(B); }

std::string Terminator::toString() const {
  switch (K) {
  case Kind::Goto:
    return "goto -> " + blockName(Target) + ";";
  case Kind::SwitchInt: {
    std::string Out = "switchInt(" + Discr.toString() + ") -> [";
    for (const auto &[Value, Block] : Cases)
      Out += std::to_string(Value) + ": " + blockName(Block) + ", ";
    Out += "otherwise: " + blockName(Target) + "];";
    return Out;
  }
  case Kind::Return:
    return "return;";
  case Kind::Resume:
    return "resume;";
  case Kind::Unreachable:
    return "unreachable;";
  case Kind::Drop: {
    std::string Out = "drop(" + DropPlace.toString() + ") -> ";
    if (Unwind != InvalidBlock)
      return Out + "[return: " + blockName(Target) +
             ", unwind: " + blockName(Unwind) + "];";
    return Out + blockName(Target) + ";";
  }
  case Kind::Call: {
    std::string Out;
    if (HasDest)
      Out += Dest.toString() + " = ";
    Out += Callee.str() + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I].toString();
    }
    Out += ") -> ";
    if (Unwind != InvalidBlock)
      return Out + "[return: " + blockName(Target) +
             ", unwind: " + blockName(Unwind) + "];";
    return Out + blockName(Target) + ";";
  }
  case Kind::Assert:
    return "assert(" + Discr.toString() + ") -> " + blockName(Target) + ";";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Function and Module
//===----------------------------------------------------------------------===//

std::string Function::toString() const {
  std::string Out;
  if (IsUnsafe)
    Out += "unsafe ";
  Out += "fn " + Name.str() + "(";
  for (unsigned I = 1; I <= NumArgs; ++I) {
    if (I != 1)
      Out += ", ";
    Out += "_" + std::to_string(I) + ": " + Locals[I].Ty->toString();
  }
  Out += ")";
  if (!Locals.empty() && !Locals[0].Ty->isUnit())
    Out += " -> " + Locals[0].Ty->toString();
  Out += " {\n";

  for (unsigned I = 0; I != Locals.size(); ++I) {
    if (I >= 1 && I <= NumArgs)
      continue; // Parameters are declared in the signature.
    Out += "    let ";
    if (Locals[I].Mutable)
      Out += "mut ";
    Out += "_" + std::to_string(I) + ": " + Locals[I].Ty->toString() + ";";
    if (!Locals[I].DebugName.empty())
      Out += " // " + Locals[I].DebugName.str();
    Out += "\n";
  }
  Out += "\n";

  for (unsigned B = 0; B != Blocks.size(); ++B) {
    Out += "    " + blockName(B) + ": {\n";
    for (const Statement &S : Blocks[B].Statements)
      Out += "        " + S.toString() + "\n";
    Out += "        " + Blocks[B].Term.toString() + "\n";
    Out += "    }\n";
    if (B + 1 != Blocks.size())
      Out += "\n";
  }
  Out += "}\n";
  return Out;
}

Function &Module::addFunction(Function F) {
  assert(FuncByName.find(F.Name) == FuncByName.end() &&
         "duplicate function name");
  FuncId Id = static_cast<FuncId>(Funcs.size());
  Funcs.push_back(std::move(F));
  FuncByName[Funcs.back().Name] = Id;
  return Funcs.back();
}

const Function *Module::findFunction(std::string_view Name) const {
  return findFunction(Symbol::intern(Name));
}

Function *Module::findFunction(std::string_view Name) {
  return findFunction(Symbol::intern(Name));
}

const Function *Module::findFunction(Symbol Name) const {
  auto It = FuncByName.find(Name);
  return It == FuncByName.end() ? nullptr : &Funcs[It->second];
}

Function *Module::findFunction(Symbol Name) {
  auto It = FuncByName.find(Name);
  return It == FuncByName.end() ? nullptr : &Funcs[It->second];
}

void Module::addStruct(StructDecl S) {
  assert(StructByName.find(S.Name) == StructByName.end() &&
         "duplicate struct name");
  StructByName[S.Name] = Structs.size();
  Structs.push_back(std::move(S));
}

const StructDecl *Module::findStruct(std::string_view Name) const {
  auto It = StructByName.find(Symbol::intern(Name));
  return It == StructByName.end() ? nullptr : &Structs[It->second];
}

std::string Module::toString() const {
  std::string Out;
  for (const StructDecl &S : Structs) {
    Out += "struct " + S.Name.str();
    if (S.HasDrop)
      Out += " : Drop";
    Out += " {";
    for (size_t I = 0; I != S.Fields.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += " " + S.Fields[I].first + ": " + S.Fields[I].second->toString();
    }
    Out += " }\n";
  }
  // SyncAdts is unordered; the printed form is sorted by name so module
  // output never depends on interning order.
  std::vector<std::string_view> SyncNames;
  for (const auto &[Name, IsSync] : SyncAdts)
    if (IsSync)
      SyncNames.push_back(Name.view());
  std::sort(SyncNames.begin(), SyncNames.end());
  for (std::string_view Name : SyncNames)
    Out += "unsafe impl Sync for " + std::string(Name) + ";\n";
  for (const StaticDecl &S : Statics) {
    Out += "static ";
    if (S.Mutable)
      Out += "mut ";
    Out += S.Name.str() + ": " + S.Ty->toString() + ";\n";
  }
  if (!Out.empty())
    Out += "\n";
  for (size_t I = 0; I != Funcs.size(); ++I) {
    if (I != 0)
      Out += "\n";
    Out += Funcs[I].toString();
  }
  return Out;
}

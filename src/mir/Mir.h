//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core data structures of RustLite MIR, a dialect of the Rust compiler's
/// mid-level intermediate representation. The paper's detectors (Section 7)
/// operate on MIR because it exposes explicit storage events (StorageLive /
/// StorageDead), explicit drops, ownership moves, and a CFG of basic blocks;
/// this dialect models exactly those constructs.
///
/// A Module owns a TypeContext, struct declarations, and Functions. Each
/// Function owns locals (local 0 is the return place, locals 1..NumArgs are
/// the arguments) and BasicBlocks. Each block holds Statements and exactly
/// one Terminator.
///
/// Storage layout: every recurring name (function paths, call targets,
/// aggregate/struct/static names, debug names, string constants) is an
/// interned Symbol — a 4-byte handle — and per-node sequences (projections,
/// operands, call arguments, switch cases) live in inline-capacity
/// SmallVectors sized for the common case. Building or copying a typical
/// statement therefore performs no heap allocation, and the Module's
/// function table is a dense deque indexed by FuncId with Symbol-keyed name
/// maps on the side. Types are structurally interned by TypeContext and
/// referenced by pointer.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_MIR_MIR_H
#define RUSTSIGHT_MIR_MIR_H

#include "mir/Type.h"
#include "support/SmallVector.h"
#include "support/SourceLocation.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace rs::mir {

/// Index of a local variable within a Function (printed "_N").
using LocalId = unsigned;

/// Index of a basic block within a Function (printed "bbN").
using BlockId = unsigned;

/// Index of a function within a Module's dense function table.
using FuncId = unsigned;

/// Sentinel for "no block" (e.g. a call without an unwind edge).
inline constexpr BlockId InvalidBlock = ~0u;

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

/// One step of a place projection: (*p), p.field, or p[index].
struct ProjectionElem {
  enum class Kind { Deref, Field, Index };

  Kind K;
  /// Field number for Kind::Field (RustLite fields are numbered).
  unsigned FieldIdx = 0;
  /// Local holding the index for Kind::Index.
  LocalId IndexLocal = 0;

  static ProjectionElem deref() { return {Kind::Deref, 0, 0}; }
  static ProjectionElem field(unsigned Idx) { return {Kind::Field, Idx, 0}; }
  static ProjectionElem index(LocalId L) { return {Kind::Index, 0, L}; }

  friend bool operator==(const ProjectionElem &A, const ProjectionElem &B) {
    return A.K == B.K && A.FieldIdx == B.FieldIdx &&
           A.IndexLocal == B.IndexLocal;
  }
};

/// Projection lists are nearly always short: a deref, or a deref + field.
using ProjList = SmallVector<ProjectionElem, 2>;

/// A memory location expression: a base local plus zero or more projections,
/// e.g. (*_2).0 is base _2 with [Deref, Field 0].
struct Place {
  LocalId Base = 0;
  ProjList Projs;

  Place() = default;
  /*implicit*/ Place(LocalId Base) : Base(Base) {}
  Place(LocalId Base, ProjList Projs) : Base(Base), Projs(std::move(Projs)) {}

  /// True if the place is a bare local with no projections.
  bool isLocal() const { return Projs.empty(); }

  /// True if any projection dereferences a pointer, i.e. the place reaches
  /// through indirection and may touch memory not owned by Base.
  bool hasDeref() const {
    for (const ProjectionElem &P : Projs)
      if (P.K == ProjectionElem::Kind::Deref)
        return true;
    return false;
  }

  /// Returns a copy of this place with \p Elem appended.
  Place project(ProjectionElem Elem) const {
    Place Out = *this;
    Out.Projs.push_back(Elem);
    return Out;
  }

  std::string toString() const;

  friend bool operator==(const Place &A, const Place &B) {
    return A.Base == B.Base && A.Projs == B.Projs;
  }
};

//===----------------------------------------------------------------------===//
// Operands and rvalues
//===----------------------------------------------------------------------===//

/// A compile-time constant operand.
struct ConstValue {
  enum class Kind { Int, Bool, Str, Unit };

  Kind K = Kind::Unit;
  int64_t Int = 0;
  bool Bool = false;
  Symbol Str;
  /// Optional type ascription from a literal suffix ("const 0_i32").
  const Type *Ty = nullptr;

  static ConstValue makeInt(int64_t V, const Type *Ty = nullptr) {
    ConstValue C;
    C.K = Kind::Int;
    C.Int = V;
    C.Ty = Ty;
    return C;
  }
  static ConstValue makeBool(bool V) {
    ConstValue C;
    C.K = Kind::Bool;
    C.Bool = V;
    return C;
  }
  static ConstValue makeStr(std::string_view S) {
    ConstValue C;
    C.K = Kind::Str;
    C.Str = Symbol::intern(S);
    return C;
  }
  static ConstValue makeStrSym(Symbol S) {
    ConstValue C;
    C.K = Kind::Str;
    C.Str = S;
    return C;
  }
  static ConstValue makeUnit() { return ConstValue(); }

  std::string toString() const;
};

/// A use of a value: by copy, by move (transferring ownership), or a const.
struct Operand {
  enum class Kind { Copy, Move, Const };

  Kind K = Kind::Const;
  Place P;
  ConstValue C;

  static Operand copy(Place P) {
    Operand O;
    O.K = Kind::Copy;
    O.P = std::move(P);
    return O;
  }
  static Operand move(Place P) {
    Operand O;
    O.K = Kind::Move;
    O.P = std::move(P);
    return O;
  }
  static Operand constant(ConstValue C) {
    Operand O;
    O.K = Kind::Const;
    O.C = std::move(C);
    return O;
  }

  bool isPlace() const { return K != Kind::Const; }
  bool isMove() const { return K == Kind::Move; }

  std::string toString() const;
};

/// Operand lists: one operand for Use/UnaryOp/Cast, two for BinaryOp.
using OperandList = SmallVector<Operand, 2>;

/// Binary operations (a subset of MIR's BinOp; Offset is pointer arithmetic,
/// the MIR form of ptr::offset used by the paper's performance experiments).
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Offset,
};

/// Unary operations.
enum class UnOp { Not, Neg };

const char *binOpName(BinOp Op);
const char *unOpName(UnOp Op);

/// The right-hand side of an assignment.
struct Rvalue {
  enum class Kind {
    Use,          ///< operand
    Ref,          ///< &place or &mut place
    AddressOf,    ///< &raw const place or &raw mut place
    BinaryOp,     ///< Op(a, b)
    UnaryOp,      ///< Op(a)
    Cast,         ///< operand as type
    Aggregate,    ///< Name { 0: a, 1: b } or (a, b)
    Discriminant, ///< discriminant(place)
    Len,          ///< Len(place)
  };

  Kind K = Kind::Use;
  OperandList Ops;             ///< Use: 1; BinaryOp: 2; UnaryOp/Cast: 1;
                               ///< Aggregate: N.
  Place P;                     ///< Ref/AddressOf/Discriminant/Len.
  bool Mut = false;            ///< Ref/AddressOf mutability.
  BinOp BOp = BinOp::Add;      ///< BinaryOp.
  UnOp UOp = UnOp::Not;        ///< UnaryOp.
  const Type *CastTy = nullptr;///< Cast target type.
  Symbol AggName;              ///< Aggregate ADT name; empty for tuples.

  static Rvalue use(Operand O);
  static Rvalue ref(Place P, bool Mut);
  static Rvalue addressOf(Place P, bool Mut);
  static Rvalue binary(BinOp Op, Operand A, Operand B);
  static Rvalue unary(UnOp Op, Operand A);
  static Rvalue cast(Operand A, const Type *Ty);
  static Rvalue tuple(OperandList Elems);
  static Rvalue aggregate(std::string_view Name, OperandList Fields);
  static Rvalue aggregate(Symbol Name, OperandList Fields);
  static Rvalue discriminant(Place P);
  static Rvalue len(Place P);

  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Statements and terminators
//===----------------------------------------------------------------------===//

/// A non-control-flow instruction.
struct Statement {
  enum class Kind {
    Assign,      ///< place = rvalue
    StorageLive, ///< StorageLive(_n): the local's storage begins
    StorageDead, ///< StorageDead(_n): the local's storage ends
    Nop,
  };

  Kind K = Kind::Nop;
  Place Dest;
  Rvalue RV;
  LocalId Local = 0; ///< StorageLive/StorageDead subject.
  SourceLocation Loc;

  static Statement assign(Place Dest, Rvalue RV,
                          SourceLocation Loc = SourceLocation()) {
    Statement S;
    S.K = Kind::Assign;
    S.Dest = std::move(Dest);
    S.RV = std::move(RV);
    S.Loc = Loc;
    return S;
  }
  static Statement storageLive(LocalId L,
                               SourceLocation Loc = SourceLocation()) {
    Statement S;
    S.K = Kind::StorageLive;
    S.Local = L;
    S.Loc = Loc;
    return S;
  }
  static Statement storageDead(LocalId L,
                               SourceLocation Loc = SourceLocation()) {
    Statement S;
    S.K = Kind::StorageDead;
    S.Local = L;
    S.Loc = Loc;
    return S;
  }
  static Statement nop() { return Statement(); }

  std::string toString() const;
};

/// Switch arms: two-way branches dominate real MIR.
using CaseList = SmallVector<std::pair<int64_t, BlockId>, 2>;

/// Fixed-capacity successor buffer: every terminator kind except SwitchInt
/// has at most two successors, so four inline slots cover hot CFG walks
/// without touching the heap.
using SuccList = SmallVector<BlockId, 4>;

/// The single control-flow instruction ending a basic block.
struct Terminator {
  enum class Kind {
    Goto,        ///< goto -> bb
    SwitchInt,   ///< switchInt(op) -> [v: bb, ..., otherwise: bb]
    Return,
    Resume,      ///< resume unwinding
    Unreachable,
    Drop,        ///< drop(place) -> [return: bb, unwind: bb]
    Call,        ///< place = callee(args) -> [return: bb, unwind: bb]
    Assert,      ///< assert(op) -> bb
  };

  Kind K = Kind::Return;
  Operand Discr;                  ///< SwitchInt/Assert operand.
  CaseList Cases;                 ///< SwitchInt arms.
  BlockId Target = InvalidBlock;  ///< Goto target; SwitchInt otherwise;
                                  ///< Drop/Call return; Assert success.
  BlockId Unwind = InvalidBlock;  ///< Drop/Call unwind edge, if any.
  Place DropPlace;                ///< Drop subject.
  Place Dest;                     ///< Call destination (unit type if unused).
  bool HasDest = false;           ///< Whether the call writes a destination.
  Symbol Callee;                  ///< Call target: a function path.
  OperandList Args;               ///< Call arguments.
  SourceLocation Loc;

  static Terminator gotoBlock(BlockId B);
  static Terminator switchInt(Operand Discr, CaseList Cases,
                              BlockId Otherwise);
  static Terminator ret();
  static Terminator resume();
  static Terminator unreachable();
  static Terminator drop(Place P, BlockId Target,
                         BlockId Unwind = InvalidBlock);
  static Terminator call(Place Dest, std::string_view Callee,
                         OperandList Args, BlockId Target,
                         BlockId Unwind = InvalidBlock);
  static Terminator call(Place Dest, Symbol Callee, OperandList Args,
                         BlockId Target, BlockId Unwind = InvalidBlock);
  static Terminator callNoDest(std::string_view Callee, OperandList Args,
                               BlockId Target, BlockId Unwind = InvalidBlock);
  static Terminator callNoDest(Symbol Callee, OperandList Args, BlockId Target,
                               BlockId Unwind = InvalidBlock);
  static Terminator assertCond(Operand Cond, BlockId Target);

  /// Appends every successor block id to \p Out (deduplicated by callers if
  /// needed; order is deterministic). The inline buffer keeps per-block CFG
  /// walks allocation-free; callers reuse one buffer across blocks.
  void successors(SuccList &Out) const;

  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Blocks, locals, functions, modules
//===----------------------------------------------------------------------===//

/// A straight-line sequence of statements ending in one terminator.
struct BasicBlock {
  std::vector<Statement> Statements;
  Terminator Term;
};

/// Declaration of one function-local slot.
struct LocalDecl {
  const Type *Ty = nullptr;
  bool Mutable = false;
  /// Optional human-readable name from the source ("buf"), for diagnostics.
  Symbol DebugName;
};

/// A RustLite MIR function.
///
/// Locals: index 0 is the return place; 1..=NumArgs are parameters; the rest
/// are temporaries and user variables.
class Function {
public:
  Symbol Name;
  bool IsUnsafe = false;
  unsigned NumArgs = 0;
  std::vector<LocalDecl> Locals;
  std::vector<BasicBlock> Blocks;
  SourceLocation Loc;

  LocalId returnLocal() const { return 0; }
  bool isArg(LocalId L) const { return L >= 1 && L <= NumArgs; }
  unsigned numLocals() const { return static_cast<unsigned>(Locals.size()); }
  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  const Type *localType(LocalId L) const {
    assert(L < Locals.size() && "local out of range");
    return Locals[L].Ty;
  }

  /// Renders the function in RustLite MIR textual syntax.
  std::string toString() const;
};

/// A struct declaration: numbered fields plus whether the type has a Drop
/// impl (which matters for invalid-free/double-free reasoning, Section 5.1).
struct StructDecl {
  Symbol Name;
  std::vector<std::pair<std::string, const Type *>> Fields;
  bool HasDrop = false;
};

/// A static item declaration. Mutable statics can only be touched from
/// unsafe code in Rust, one of the data-sharing patterns in Table 4.
struct StaticDecl {
  Symbol Name;
  const Type *Ty = nullptr;
  bool Mutable = false;
};

/// A compilation unit: types, structs, statics, and functions.
///
/// Functions live in a dense table indexed by FuncId (a deque, so references
/// stay stable as functions are added and no per-function heap indirection
/// exists); name lookup goes through a Symbol-keyed index.
class Module {
public:
  Module() = default;
  Module(Module &&) = default;
  Module &operator=(Module &&) = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }

  /// Adds a function and returns a reference to the stored copy.
  Function &addFunction(Function F);
  /// Finds a function by exact name, or nullptr.
  const Function *findFunction(std::string_view Name) const;
  Function *findFunction(std::string_view Name);
  const Function *findFunction(Symbol Name) const;
  Function *findFunction(Symbol Name);

  const std::deque<Function> &functions() const { return Funcs; }
  std::deque<Function> &functions() { return Funcs; }
  unsigned numFunctions() const { return static_cast<unsigned>(Funcs.size()); }
  const Function &func(FuncId Id) const { return Funcs[Id]; }
  Function &func(FuncId Id) { return Funcs[Id]; }

  void addStruct(StructDecl S);
  const StructDecl *findStruct(std::string_view Name) const;
  const std::vector<StructDecl> &structs() const { return Structs; }

  void addStatic(StaticDecl S) { Statics.push_back(std::move(S)); }
  const std::vector<StaticDecl> &statics() const { return Statics; }

  /// Marks "unsafe impl Sync for Name;".
  void addSyncImpl(std::string_view Name) {
    SyncAdts[Symbol::intern(Name)] = true;
  }
  bool isSync(std::string_view Name) const {
    auto It = SyncAdts.find(Symbol::intern(Name));
    return It != SyncAdts.end() && It->second;
  }
  const std::unordered_map<Symbol, bool> &syncAdts() const { return SyncAdts; }

  /// Renders the whole module in RustLite MIR textual syntax.
  std::string toString() const;

private:
  TypeContext Types;
  std::deque<Function> Funcs;
  std::unordered_map<Symbol, FuncId> FuncByName;
  std::vector<StructDecl> Structs;
  std::unordered_map<Symbol, size_t> StructByName;
  std::vector<StaticDecl> Statics;
  /// Unordered for speed; printing sorts by name so output stays stable.
  std::unordered_map<Symbol, bool> SyncAdts;
};

} // namespace rs::mir

#endif // RUSTSIGHT_MIR_MIR_H

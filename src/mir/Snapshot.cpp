#include "mir/Snapshot.h"

// #define RS_SNAPSHOT_PROFILE — flip on to print per-phase decode totals at exit.

#ifdef RS_SNAPSHOT_PROFILE
#include <chrono>
#include <cstdio>
#endif

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

using namespace rs;
using namespace rs::mir;

namespace {

//===----------------------------------------------------------------------===//
// Primitive encoders
//===----------------------------------------------------------------------===//
//
// The payload is written almost entirely in LEB128 varints: local ids,
// string/type indices, counts, line numbers — the values the format is
// made of — are tiny, so the common case is one byte where a fixed-width
// field would spend four. Signed 64-bit values (const ints, switch case
// values) go through zigzag so small negatives stay short too.

void putU8(std::string &Out, uint8_t V) { Out.push_back(static_cast<char>(V)); }

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putVar64(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>(V | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void putVar32(std::string &Out, uint32_t V) { putVar64(Out, V); }

void putZig64(std::string &Out, int64_t V) {
  putVar64(Out, (static_cast<uint64_t>(V) << 1) ^
                    static_cast<uint64_t>(V >> 63));
}

/// Bounds-checked reader over the payload. Every get* reports failure
/// through ok(); callers check once per record, not once per field —
/// reads after a failure return zeros and never touch out-of-range bytes.
class Cursor {
public:
  explicit Cursor(std::string_view Bytes) : Data(Bytes) {}

  bool ok() const { return Ok; }
  bool atEnd() const { return Pos == Data.size(); }

  uint8_t getU8() {
    if (!require(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }

  uint32_t getU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t getU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }

  /// Kept to the single-byte case so it inlines at every call site —
  /// one-byte varints cover nearly the entire payload (ids, counts,
  /// indices, column numbers). Longer encodings take the out-of-line
  /// slow path.
  uint64_t getVar64() {
    if (Ok && Pos < Data.size()) {
      uint8_t B0 = static_cast<uint8_t>(Data[Pos]);
      if (!(B0 & 0x80)) {
        ++Pos;
        return B0;
      }
    }
    return getVar64Slow();
  }

  uint32_t getVar32() {
    uint64_t V = getVar64();
    if (V > ~0u) {
      Ok = false;
      return 0;
    }
    return static_cast<uint32_t>(V);
  }

  int64_t getZig64() {
    uint64_t U = getVar64();
    return static_cast<int64_t>((U >> 1) ^ (~(U & 1) + 1));
  }

  std::string_view getBytes(size_t N) {
    if (!require(N))
      return {};
    std::string_view V = Data.substr(Pos, N);
    Pos += N;
    return V;
  }

  void fail() { Ok = false; }

private:
  __attribute__((noinline)) uint64_t getVar64Slow() {
    // Two-byte values (line numbers, larger indices) still matter; decode
    // them without the general loop.
    if (Ok && Data.size() - Pos >= 2) {
      uint8_t B0 = static_cast<uint8_t>(Data[Pos]);
      uint8_t B1 = static_cast<uint8_t>(Data[Pos + 1]);
      if ((B0 & 0x80) && !(B1 & 0x80)) {
        Pos += 2;
        return static_cast<uint64_t>(B0 & 0x7f) |
               (static_cast<uint64_t>(B1) << 7);
      }
    }
    uint64_t V = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B = getU8();
      if (!Ok)
        return 0;
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
    }
    Ok = false; // Over-long encoding.
    return 0;
  }

  bool require(size_t N) {
    if (!Ok || Data.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Ok = true;
};

//===----------------------------------------------------------------------===//
// Header and checksum
//===----------------------------------------------------------------------===//

constexpr char Magic[4] = {'R', 'S', 'M', 'S'};
constexpr size_t HeaderSize = 4 + 4 + 4 + 8 + 8 + 8;

/// Payload integrity checksum, eight bytes per multiply instead of one:
/// each step is (H ^ chunk) * odd-constant, a bijection of H, so any
/// single corrupted bit changes every later state and survives the final
/// mix. Chunks are read in host byte order — snapshots are a same-host
/// cache (the key already pins schema and interner epoch), not an
/// interchange format, so checksum portability is not required.
uint64_t bodyChecksum(std::string_view B) {
  constexpr uint64_t M = 0x9e3779b97f4a7c15ull;
  uint64_t H = 0xcbf29ce484222325ull ^ (static_cast<uint64_t>(B.size()) * M);
  size_t I = 0;
  for (; I + 8 <= B.size(); I += 8) {
    uint64_t C;
    std::memcpy(&C, B.data() + I, 8);
    H = (H ^ C) * M;
  }
  if (I < B.size()) {
    uint64_t C = 0;
    std::memcpy(&C, B.data() + I, B.size() - I);
    H = (H ^ C) * M;
  }
  H ^= H >> 32;
  H *= M;
  H ^= H >> 29;
  return H;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//
//
// Fields are gated by kind: an operand is a place OR a const, a statement
// carries a destination and rvalue only when it assigns, a terminator
// writes only the edges its kind has. The decoder leaves gated-out fields
// default-constructed, which is exactly what the writer ignores — so
// encode(decode(bytes)) stays byte-identical.

class Writer {
public:
  std::string run(const Module &M, uint64_t Fingerprint) {
    // Index 0 is always the empty string so Symbol() round-trips for free.
    internString("");
    std::string Payload = encodeModule(M);

    std::string Out;
    Out.reserve(HeaderSize + StringBytes.size() + Payload.size());
    Out.append(Magic, 4);
    putU32(Out, snapshot::SnapshotSchemaVersion);
    putU32(Out, Symbol::EpochVersion);
    putU64(Out, Fingerprint);

    std::string Body;
    putVar32(Body, static_cast<uint32_t>(Strings.size()));
    Body += StringBytes;
    Body += Payload;

    putU64(Out, Body.size());
    putU64(Out, bodyChecksum(Body));
    Out += Body;
    return Out;
  }

private:
  uint32_t internString(std::string_view S) {
    auto It = StringIndex.find(std::string(S));
    if (It != StringIndex.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(Strings.size());
    Strings.emplace_back(S);
    StringIndex.emplace(Strings.back(), Idx);
    putVar32(StringBytes, static_cast<uint32_t>(S.size()));
    StringBytes.append(S.data(), S.size());
    return Idx;
  }

  uint32_t internSymbol(Symbol S) { return internString(S.view()); }

  /// Registers \p T (children first) and returns its table index. Plain
  /// type slots are always populated in a verifier-clean module; nullable
  /// slots (cast targets, literal suffixes) go through encodeOptType.
  uint32_t typeIndex(const Type *T) {
    assert(T && "snapshot writer requires a typed module");
    auto It = TypeIndexMap.find(T);
    if (It != TypeIndexMap.end())
      return It->second;
    // Children first so the reader can resolve references linearly.
    uint32_t Pointee =
        T->kind() == Type::Kind::Ref || T->kind() == Type::Kind::RawPtr ||
                T->kind() == Type::Kind::Array ||
                T->kind() == Type::Kind::Slice
            ? typeIndex(T->pointee())
            : 0;
    std::vector<uint32_t> Args;
    if (T->kind() == Type::Kind::Tuple || T->kind() == Type::Kind::Adt)
      for (const Type *A : T->args())
        Args.push_back(typeIndex(A));

    uint32_t Idx = static_cast<uint32_t>(NumTypes++);
    TypeIndexMap.emplace(T, Idx);
    putU8(TypeBytes, static_cast<uint8_t>(T->kind()));
    switch (T->kind()) {
    case Type::Kind::Prim:
      putU8(TypeBytes, static_cast<uint8_t>(T->prim()));
      break;
    case Type::Kind::Ref:
    case Type::Kind::RawPtr:
      putU8(TypeBytes, T->isMutPtr() ? 1 : 0);
      putVar32(TypeBytes, Pointee);
      break;
    case Type::Kind::Array:
      putVar32(TypeBytes, Pointee);
      putVar64(TypeBytes, T->arrayLen());
      break;
    case Type::Kind::Slice:
      putVar32(TypeBytes, Pointee);
      break;
    case Type::Kind::Tuple:
    case Type::Kind::Adt:
      if (T->kind() == Type::Kind::Adt)
        putVar32(TypeBytes, internSymbol(T->adtNameSym()));
      putVar32(TypeBytes, static_cast<uint32_t>(Args.size()));
      for (uint32_t A : Args)
        putVar32(TypeBytes, A);
      break;
    }
    return Idx;
  }

  /// Nullable type slot: 0 is "no type", a real index is stored as idx+1.
  void encodeOptType(std::string &Out, const Type *T) {
    putVar32(Out, T ? typeIndex(T) + 1 : 0);
  }

  /// Nullable block edge: 0 is InvalidBlock, a real id is stored as id+1.
  void encodeBlock(std::string &Out, BlockId B) {
    putVar32(Out, B == InvalidBlock ? 0 : B + 1);
  }

  void encodeLoc(std::string &Out, const SourceLocation &Loc) {
    // The interned file-name pointer goes through the string table; a null
    // file is distinct from an empty-named one.
    bool HasFile = !(Loc.file().empty() && !Loc.isValid());
    uint32_t Slot = HasFile ? internString(Loc.file()) + 1 : 0;
    // Lines are a zigzag delta from the previously encoded location:
    // consecutive statements sit on consecutive source lines, so the
    // delta fits a single-byte varint where the absolute line does not.
    // The file slot is sticky: bit 0 of the line word says "file changed",
    // and only then does the slot follow — a function's locations all
    // share one file.
    int64_t Delta = int64_t(Loc.line()) - int64_t(LastLine);
    uint64_t Zig = (static_cast<uint64_t>(Delta) << 1) ^
                   static_cast<uint64_t>(Delta >> 63);
    // Columns are sticky like the file slot: the printer indents
    // uniformly, so consecutive locations usually share a column and
    // bit 1 says when a new one follows.
    bool FileCh = Slot != LastFileSlot;
    bool ColCh = Loc.column() != LastCol;
    putVar64(Out, (Zig << 2) | (ColCh ? 2 : 0) | (FileCh ? 1 : 0));
    if (FileCh) {
      putVar32(Out, Slot);
      LastFileSlot = Slot;
    }
    if (ColCh) {
      putVar32(Out, Loc.column());
      LastCol = Loc.column();
    }
    LastLine = Loc.line();
  }

  void encodePlace(std::string &Out, const Place &P) {
    putVar32(Out, P.Base);
    encodeProjs(Out, P);
  }

  void encodeProjs(std::string &Out, const Place &P) {
    putVar32(Out, static_cast<uint32_t>(P.Projs.size()));
    for (const ProjectionElem &E : P.Projs) {
      putU8(Out, static_cast<uint8_t>(E.K));
      switch (E.K) {
      case ProjectionElem::Kind::Deref:
        break;
      case ProjectionElem::Kind::Field:
        putVar32(Out, E.FieldIdx);
        break;
      case ProjectionElem::Kind::Index:
        putVar32(Out, E.IndexLocal);
        break;
      }
    }
  }

  void encodeConst(std::string &Out, const ConstValue &C) {
    putU8(Out, static_cast<uint8_t>(C.K));
    switch (C.K) {
    case ConstValue::Kind::Int:
      putZig64(Out, C.Int);
      encodeOptType(Out, C.Ty); // Literal suffix ("0_i32"), if any.
      break;
    case ConstValue::Kind::Bool:
      putU8(Out, C.Bool ? 1 : 0);
      break;
    case ConstValue::Kind::Str:
      putVar32(Out, internSymbol(C.Str));
      break;
    case ConstValue::Kind::Unit:
      break;
    }
  }

  void encodeOperand(std::string &Out, const Operand &O) {
    // The kind rides in the low two bits of the place base (a const has
    // no base): one varint where a tag byte plus a base varint used to go.
    if (O.K == Operand::Kind::Const) {
      putVar32(Out, static_cast<uint32_t>(Operand::Kind::Const));
      encodeConst(Out, O.C);
    } else {
      bool HasProjs = !O.P.Projs.empty();
      putVar64(Out, (static_cast<uint64_t>(O.P.Base) << 3) |
                        (HasProjs ? 4u : 0u) | static_cast<uint64_t>(O.K));
      if (HasProjs)
        encodeProjs(Out, O.P);
    }
  }

  void encodeOps(std::string &Out, const OperandList &Ops) {
    putVar32(Out, static_cast<uint32_t>(Ops.size()));
    for (const Operand &O : Ops)
      encodeOperand(Out, O);
  }

  /// Body only — the kind byte rides in the statement's fused tag, and
  /// arity is structural (Use/UnaryOp/Cast carry exactly one operand,
  /// BinaryOp two; the verifier enforces this), so only Aggregate spends
  /// a count.
  void encodeRvalue(std::string &Out, const Rvalue &RV) {
    switch (RV.K) {
    case Rvalue::Kind::Use:
      assert(RV.Ops.size() == 1 && "Use rvalue carries one operand");
      encodeOperand(Out, RV.Ops[0]);
      break;
    case Rvalue::Kind::Ref:
    case Rvalue::Kind::AddressOf:
      putU8(Out, RV.Mut ? 1 : 0);
      encodePlace(Out, RV.P);
      break;
    case Rvalue::Kind::BinaryOp:
      assert(RV.Ops.size() == 2 && "binary rvalue carries two operands");
      putU8(Out, static_cast<uint8_t>(RV.BOp));
      encodeOperand(Out, RV.Ops[0]);
      encodeOperand(Out, RV.Ops[1]);
      break;
    case Rvalue::Kind::UnaryOp:
      assert(RV.Ops.size() == 1 && "unary rvalue carries one operand");
      putU8(Out, static_cast<uint8_t>(RV.UOp));
      encodeOperand(Out, RV.Ops[0]);
      break;
    case Rvalue::Kind::Cast:
      assert(RV.Ops.size() == 1 && "cast rvalue carries one operand");
      encodeOptType(Out, RV.CastTy);
      encodeOperand(Out, RV.Ops[0]);
      break;
    case Rvalue::Kind::Aggregate:
      putVar32(Out, internSymbol(RV.AggName)); // Empty for tuples.
      encodeOps(Out, RV.Ops);
      break;
    case Rvalue::Kind::Discriminant:
    case Rvalue::Kind::Len:
      encodePlace(Out, RV.P);
      break;
    }
  }

  void encodeStatement(std::string &Out, const Statement &S) {
    // One tag byte: two-bit statement kind, then for assigns the rvalue
    // kind (bits 2-5) and a "destination has projections" flag (bit 6) —
    // a plain `_n = ...` destination is just its base varint.
    uint8_t Tag = static_cast<uint8_t>(S.K);
    if (S.K == Statement::Kind::Assign) {
      Tag |= static_cast<uint8_t>(S.RV.K) << 2;
      if (!S.Dest.Projs.empty())
        Tag |= 0x40;
    } else if (S.K == Statement::Kind::StorageLive ||
               S.K == Statement::Kind::StorageDead) {
      // Small locals (the overwhelming case) ride in the tag's free bits
      // as id+1; 0 means a full varint follows.
      if (S.Local < 63)
        Tag |= static_cast<uint8_t>(S.Local + 1) << 2;
    }
    putU8(Out, Tag);
    switch (S.K) {
    case Statement::Kind::Assign:
      putVar32(Out, S.Dest.Base);
      if (!S.Dest.Projs.empty())
        encodeProjs(Out, S.Dest);
      encodeRvalue(Out, S.RV);
      break;
    case Statement::Kind::StorageLive:
    case Statement::Kind::StorageDead:
      if (S.Local >= 63)
        putVar32(Out, S.Local);
      break;
    case Statement::Kind::Nop:
      break;
    }
    encodeLoc(Out, S.Loc);
  }

  void encodeTerminator(std::string &Out, const Terminator &T) {
    // Kind in bits 0-2. Bits 3-7 carry the record's hottest small field so
    // the common cases are tag-only: a goto's target block (wire value
    // target+1, 0 = doesn't fit, full block varint follows), a switchInt's
    // case count (count+1, 0 = varint follows), a call's has-dest flag
    // (bit 3). Return/resume/unreachable/drop/assert leave them zero.
    uint8_t Tag = static_cast<uint8_t>(T.K);
    switch (T.K) {
    case Terminator::Kind::Goto:
      if (T.Target != InvalidBlock && T.Target < 31)
        Tag |= static_cast<uint8_t>(T.Target + 1) << 3;
      break;
    case Terminator::Kind::SwitchInt:
      if (T.Cases.size() < 31)
        Tag |= static_cast<uint8_t>(T.Cases.size() + 1) << 3;
      break;
    case Terminator::Kind::Call:
      if (T.HasDest)
        Tag |= 0x08;
      break;
    default:
      break;
    }
    putU8(Out, Tag);
    switch (T.K) {
    case Terminator::Kind::Goto:
      if (!(Tag >> 3))
        encodeBlock(Out, T.Target);
      break;
    case Terminator::Kind::SwitchInt:
      encodeOperand(Out, T.Discr);
      if (!(Tag >> 3))
        putVar32(Out, static_cast<uint32_t>(T.Cases.size()));
      for (const auto &[Value, Block] : T.Cases) {
        putZig64(Out, Value);
        encodeBlock(Out, Block);
      }
      encodeBlock(Out, T.Target); // The otherwise edge.
      break;
    case Terminator::Kind::Return:
    case Terminator::Kind::Resume:
    case Terminator::Kind::Unreachable:
      break;
    case Terminator::Kind::Drop:
      encodePlace(Out, T.DropPlace);
      encodeBlock(Out, T.Target);
      encodeBlock(Out, T.Unwind);
      break;
    case Terminator::Kind::Call:
      if (T.HasDest)
        encodePlace(Out, T.Dest);
      putVar32(Out, internSymbol(T.Callee));
      encodeOps(Out, T.Args);
      encodeBlock(Out, T.Target);
      encodeBlock(Out, T.Unwind);
      break;
    case Terminator::Kind::Assert:
      encodeOperand(Out, T.Discr);
      encodeBlock(Out, T.Target);
      break;
    }
    encodeLoc(Out, T.Loc);
  }

  std::string encodeModule(const Module &M) {
    std::string Items;

    putVar32(Items, static_cast<uint32_t>(M.structs().size()));
    for (const StructDecl &S : M.structs()) {
      putVar32(Items, internSymbol(S.Name));
      putU8(Items, S.HasDrop ? 1 : 0);
      putVar32(Items, static_cast<uint32_t>(S.Fields.size()));
      for (const auto &[FieldName, FieldTy] : S.Fields) {
        putVar32(Items, internString(FieldName));
        putVar32(Items, typeIndex(FieldTy));
      }
    }

    putVar32(Items, static_cast<uint32_t>(M.statics().size()));
    for (const StaticDecl &S : M.statics()) {
      putVar32(Items, internSymbol(S.Name));
      putVar32(Items, typeIndex(S.Ty));
      putU8(Items, S.Mutable ? 1 : 0);
    }

    // Sync impls are stored unordered in the module; sort by name so equal
    // modules produce byte-identical snapshots.
    std::vector<std::string_view> SyncNames;
    for (const auto &[Name, IsSync] : M.syncAdts())
      if (IsSync)
        SyncNames.push_back(Name.view());
    std::sort(SyncNames.begin(), SyncNames.end());
    putVar32(Items, static_cast<uint32_t>(SyncNames.size()));
    for (std::string_view Name : SyncNames)
      putVar32(Items, internString(Name));

    putVar32(Items, M.numFunctions());
    for (const Function &F : M.functions()) {
      putVar32(Items, internSymbol(F.Name));
      putU8(Items, F.IsUnsafe ? 1 : 0);
      putVar32(Items, F.NumArgs);
      encodeLoc(Items, F.Loc);
      putVar32(Items, F.numLocals());
      for (const LocalDecl &D : F.Locals) {
        // One word per local: type index, a "has debug name" bit (most
        // locals are compiler temporaries with none) and the mut flag.
        bool Named = !(D.DebugName == Symbol());
        putVar64(Items, (static_cast<uint64_t>(typeIndex(D.Ty)) << 2) |
                            (Named ? 2u : 0u) | (D.Mutable ? 1u : 0u));
        if (Named)
          putVar32(Items, internSymbol(D.DebugName));
      }
      putVar32(Items, F.numBlocks());
      for (const BasicBlock &BB : F.Blocks) {
        putVar32(Items, static_cast<uint32_t>(BB.Statements.size()));
        for (const Statement &S : BB.Statements)
          encodeStatement(Items, S);
        encodeTerminator(Items, BB.Term);
      }
    }

    // Types referenced from items were registered into TypeBytes along the
    // way; the table precedes the items so readers decode it first.
    std::string Out;
    putVar32(Out, static_cast<uint32_t>(NumTypes));
    Out += TypeBytes;
    Out += Items;
    return Out;
  }

  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> StringIndex;
  std::string StringBytes;

  std::unordered_map<const Type *, uint32_t> TypeIndexMap;
  std::string TypeBytes;
  size_t NumTypes = 0;
  /// Line of the last location encoded, the base for the next delta.
  uint32_t LastLine = 0;
  /// File slot of the last location encoded (sticky; 0 = no file).
  uint32_t LastFileSlot = 0;
  /// Column of the last location encoded (sticky).
  uint32_t LastCol = 0;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

#ifdef RS_SNAPSHOT_PROFILE
struct PhaseClock {
  double Header = 0, Strings = 0, Types = 0, Items = 0;
  ~PhaseClock() {
    std::fprintf(stderr,
                 "[snapshot-prof] header %.3f ms, strings %.3f ms, "
                 "types %.3f ms, items %.3f ms\n",
                 Header, Strings, Types, Items);
  }
  static double now() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};
static PhaseClock Phases;
#endif

class Reader {
public:
  std::optional<Module> run(std::string_view Bytes,
                            const uint64_t *ExpectFingerprint) {
#ifdef RS_SNAPSHOT_PROFILE
    double T0 = PhaseClock::now();
#endif
    std::string_view Body = validateHeader(Bytes, ExpectFingerprint);
    if (Body.data() == nullptr)
      return std::nullopt;
#ifdef RS_SNAPSHOT_PROFILE
    double T1 = PhaseClock::now();
    Phases.Header += T1 - T0;
#endif

    Cursor C(Body);
    if (!decodeStrings(C))
      return std::nullopt;

    // Symbols resolve lazily, on first reference (sym()): the string
    // table also carries type spellings and file names, which never
    // become Symbols, so eager interning would pay interner probes for
    // strings the module names nothing with.
    Syms.assign(Strings.size(), Symbol());
    Files.assign(Strings.size(), nullptr);
#ifdef RS_SNAPSHOT_PROFILE
    double T2 = PhaseClock::now();
    Phases.Strings += T2 - T1;
#endif

    Module M;
    if (!decodeTypes(C, M))
      return std::nullopt;
#ifdef RS_SNAPSHOT_PROFILE
    double T3 = PhaseClock::now();
    Phases.Types += T3 - T2;
#endif
    if (!decodeItems(C, M))
      return std::nullopt;
#ifdef RS_SNAPSHOT_PROFILE
    Phases.Items += PhaseClock::now() - T3;
#endif
    if (!C.ok() || !C.atEnd())
      return std::nullopt;
    return M;
  }

  /// Checks magic/versions/size/checksum and returns the payload view, or
  /// a null view on any defect.
  static std::string_view validateHeader(std::string_view Bytes,
                                         const uint64_t *ExpectFingerprint) {
    if (Bytes.size() < HeaderSize ||
        std::memcmp(Bytes.data(), Magic, 4) != 0)
      return {};
    Cursor H(Bytes.substr(4, HeaderSize - 4));
    uint32_t Schema = H.getU32();
    uint32_t Epoch = H.getU32();
    uint64_t Fingerprint = H.getU64();
    uint64_t Size = H.getU64();
    uint64_t Checksum = H.getU64();
    if (!H.ok() || Schema != snapshot::SnapshotSchemaVersion ||
        Epoch != Symbol::EpochVersion)
      return {};
    if (ExpectFingerprint && Fingerprint != *ExpectFingerprint)
      return {};
    std::string_view Body = Bytes.substr(HeaderSize);
    if (Body.size() != Size || bodyChecksum(Body) != Checksum)
      return {};
    return Body;
  }

private:
  bool decodeStrings(Cursor &C) {
    uint32_t N = C.getVar32();
    if (!C.ok() || N == 0)
      return false; // Index 0 ("") is always present.
    Strings.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint32_t Len = C.getVar32();
      std::string_view S = C.getBytes(Len);
      if (!C.ok())
        return false;
      Strings.push_back(S);
    }
    return !Strings.empty() && Strings[0].empty();
  }

  bool str(uint32_t Idx, std::string_view &Out) const {
    if (Idx >= Strings.size())
      return false;
    Out = Strings[Idx];
    return true;
  }

  bool sym(uint32_t Idx, Symbol &Out) {
    if (Idx >= Syms.size())
      return false;
    Symbol &S = Syms[Idx];
    // Index 0 is always "", whose Symbol is the default; any other slot
    // still holding the default has not been interned yet.
    if (Idx != 0 && S == Symbol())
      S = Symbol::intern(Strings[Idx]);
    Out = S;
    return true;
  }

  const Type *type(uint32_t Idx) const {
    return Idx < Types.size() ? Types[Idx] : nullptr;
  }

  /// Nullable type slot: 0 decodes as null, idx+1 as table entry idx.
  bool optType(Cursor &C, const Type *&Out) const {
    uint32_t Idx = C.getVar32();
    if (Idx == 0) {
      Out = nullptr;
      return true;
    }
    Out = type(Idx - 1);
    return Out != nullptr;
  }

  /// Nullable block edge: 0 decodes as InvalidBlock, id+1 as block id.
  bool decodeBlock(Cursor &C, BlockId &Out) const {
    uint32_t V = C.getVar32();
    if (!C.ok())
      return false;
    Out = V == 0 ? InvalidBlock : V - 1;
    return true;
  }

  bool decodeTypes(Cursor &C, Module &M) {
    TypeContext &TC = M.types();
    uint32_t N = C.getVar32();
    if (!C.ok())
      return false;
    Types.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint8_t RawKind = C.getU8();
      if (!C.ok() || RawKind > static_cast<uint8_t>(Type::Kind::Adt))
        return false;
      const Type *T = nullptr;
      switch (static_cast<Type::Kind>(RawKind)) {
      case Type::Kind::Prim: {
        uint8_t P = C.getU8();
        if (!C.ok() || P >= NumPrimKinds)
          return false;
        T = TC.getPrim(static_cast<PrimKind>(P));
        break;
      }
      case Type::Kind::Ref:
      case Type::Kind::RawPtr: {
        bool Mut = C.getU8() != 0;
        const Type *Pointee = type(C.getVar32());
        if (!C.ok() || !Pointee)
          return false;
        T = RawKind == static_cast<uint8_t>(Type::Kind::Ref)
                ? TC.getRef(Pointee, Mut)
                : TC.getRawPtr(Pointee, Mut);
        break;
      }
      case Type::Kind::Array: {
        const Type *Elem = type(C.getVar32());
        uint64_t Len = C.getVar64();
        if (!C.ok() || !Elem)
          return false;
        T = TC.getArray(Elem, Len);
        break;
      }
      case Type::Kind::Slice: {
        const Type *Elem = type(C.getVar32());
        if (!C.ok() || !Elem)
          return false;
        T = TC.getSlice(Elem);
        break;
      }
      case Type::Kind::Tuple:
      case Type::Kind::Adt: {
        Symbol Name;
        if (RawKind == static_cast<uint8_t>(Type::Kind::Adt) &&
            !sym(C.getVar32(), Name))
          return false;
        uint32_t NArgs = C.getVar32();
        if (!C.ok() || NArgs > 1u << 20)
          return false;
        std::vector<const Type *> Args;
        Args.reserve(NArgs);
        for (uint32_t A = 0; A != NArgs; ++A) {
          const Type *Arg = type(C.getVar32());
          if (!C.ok() || !Arg)
            return false;
          Args.push_back(Arg);
        }
        T = RawKind == static_cast<uint8_t>(Type::Kind::Tuple)
                ? TC.getTuple(std::move(Args))
                : TC.getAdt(Name, std::move(Args));
        break;
      }
      }
      if (!T)
        return false;
      Types.push_back(T);
    }
    return true;
  }

  __attribute__((always_inline)) inline bool decodeLoc(Cursor &C,
                                                       SourceLocation &Out) {
    uint64_t V = C.getVar64();
    if (V & 1) { // File changed: the new slot follows (0 = no file).
      uint32_t Slot = C.getVar32();
      if (!C.ok())
        return false;
      if (Slot == 0) {
        LastFile = nullptr;
      } else {
        uint32_t FileIdx = Slot - 1;
        if (FileIdx >= Files.size())
          return false;
        // One internFileName per distinct file, not per location.
        if (!Files[FileIdx])
          Files[FileIdx] = internFileName(Strings[FileIdx]);
        LastFile = Files[FileIdx];
      }
    }
    if (V & 2) { // Column changed: the new (sticky) column follows.
      LastCol = C.getVar32();
    }
    uint64_t Zig = V >> 2;
    int64_t Line = int64_t(LastLine) +
                   static_cast<int64_t>((Zig >> 1) ^ (~(Zig & 1) + 1));
    if (!C.ok() || Line < 0 || Line > int64_t(~0u))
      return false;
    LastLine = static_cast<uint32_t>(Line);
    Out = SourceLocation(LastFile, LastLine, LastCol);
    return true;
  }

  __attribute__((always_inline)) inline bool decodePlace(Cursor &C, Place &Out) {
    Out.Base = C.getVar32();
    return decodeProjs(C, Out);
  }

  bool decodeProjs(Cursor &C, Place &Out) {
    uint32_t N = C.getVar32();
    if (!C.ok() || N > 1u << 20)
      return false;
    Out.Projs.clear();
    for (uint32_t I = 0; I != N; ++I) {
      uint8_t K = C.getU8();
      if (!C.ok() || K > static_cast<uint8_t>(ProjectionElem::Kind::Index))
        return false;
      ProjectionElem &E = Out.Projs.emplace_back();
      E.K = static_cast<ProjectionElem::Kind>(K);
      switch (E.K) {
      case ProjectionElem::Kind::Deref:
        break;
      case ProjectionElem::Kind::Field:
        E.FieldIdx = C.getVar32();
        break;
      case ProjectionElem::Kind::Index:
        E.IndexLocal = C.getVar32();
        break;
      }
    }
    return C.ok();
  }

  bool decodeConst(Cursor &C, ConstValue &Out) {
    uint8_t K = C.getU8();
    if (!C.ok() || K > static_cast<uint8_t>(ConstValue::Kind::Unit))
      return false;
    Out.K = static_cast<ConstValue::Kind>(K);
    switch (Out.K) {
    case ConstValue::Kind::Int:
      Out.Int = C.getZig64();
      return optType(C, Out.Ty) && C.ok();
    case ConstValue::Kind::Bool:
      Out.Bool = C.getU8() != 0;
      return C.ok();
    case ConstValue::Kind::Str:
      return sym(C.getVar32(), Out.Str) && C.ok();
    case ConstValue::Kind::Unit:
      return true;
    }
    return false;
  }

  __attribute__((always_inline)) inline bool decodeOperand(Cursor &C,
                                                            Operand &Out) {
    uint64_t V = C.getVar64();
    uint8_t K = V & 3;
    if (!C.ok() || K > static_cast<uint8_t>(Operand::Kind::Const))
      return false;
    Out.K = static_cast<Operand::Kind>(K);
    if (Out.K == Operand::Kind::Const)
      return V >> 2 == 0 && decodeConst(C, Out.C);
    uint64_t Base = V >> 3;
    if (Base > ~0u)
      return false;
    Out.P.Base = static_cast<uint32_t>(Base);
    return (V & 4) == 0 || decodeProjs(C, Out.P);
  }

  bool decodeOps(Cursor &C, OperandList &Out) {
    uint32_t N = C.getVar32();
    if (!C.ok() || N > 1u << 20)
      return false;
    Out.clear();
    for (uint32_t I = 0; I != N; ++I)
      if (!decodeOperand(C, Out.emplace_back()))
        return false;
    return true;
  }

  /// Body only — \p K comes from the statement's fused tag, and the
  /// fixed-arity kinds decode their exact operand count with no count on
  /// the wire.
  bool decodeRvalue(Cursor &C, Rvalue &Out, uint8_t K) {
    Out.K = static_cast<Rvalue::Kind>(K);
    switch (Out.K) {
    case Rvalue::Kind::Use:
      return decodeOperand(C, Out.Ops.emplace_back());
    case Rvalue::Kind::Ref:
    case Rvalue::Kind::AddressOf:
      Out.Mut = C.getU8() != 0;
      return decodePlace(C, Out.P);
    case Rvalue::Kind::BinaryOp: {
      uint8_t BOp = C.getU8();
      if (!C.ok() || BOp > static_cast<uint8_t>(BinOp::Offset))
        return false;
      Out.BOp = static_cast<BinOp>(BOp);
      return decodeOperand(C, Out.Ops.emplace_back()) &&
             decodeOperand(C, Out.Ops.emplace_back());
    }
    case Rvalue::Kind::UnaryOp: {
      uint8_t UOp = C.getU8();
      if (!C.ok() || UOp > static_cast<uint8_t>(UnOp::Neg))
        return false;
      Out.UOp = static_cast<UnOp>(UOp);
      return decodeOperand(C, Out.Ops.emplace_back());
    }
    case Rvalue::Kind::Cast:
      return optType(C, Out.CastTy) &&
             decodeOperand(C, Out.Ops.emplace_back());
    case Rvalue::Kind::Aggregate:
      return sym(C.getVar32(), Out.AggName) && decodeOps(C, Out.Ops);
    case Rvalue::Kind::Discriminant:
    case Rvalue::Kind::Len:
      return decodePlace(C, Out.P);
    }
    return false;
  }

  bool decodeStatement(Cursor &C, Statement &Out) {
    uint8_t Tag = C.getU8();
    if (!C.ok())
      return false;
    Out.K = static_cast<Statement::Kind>(Tag & 3); // All four values valid.
    uint8_t RvK = (Tag >> 2) & 0xf;
    switch (Out.K) {
    case Statement::Kind::Assign:
      if ((Tag & 0x80) != 0 || RvK > static_cast<uint8_t>(Rvalue::Kind::Len))
        return false;
      Out.Dest.Base = C.getVar32();
      if ((Tag & 0x40) && !decodeProjs(C, Out.Dest))
        return false;
      if (!decodeRvalue(C, Out.RV, RvK))
        return false;
      break;
    case Statement::Kind::StorageLive:
    case Statement::Kind::StorageDead:
      Out.Local = (Tag >> 2) != 0 ? (Tag >> 2) - 1 : C.getVar32();
      break;
    case Statement::Kind::Nop:
      if ((Tag >> 2) != 0)
        return false;
      break;
    }
    return decodeLoc(C, Out.Loc);
  }

  bool decodeTerminator(Cursor &C, Terminator &Out) {
    // Tag layout mirrors encodeTerminator: kind in bits 0-2, bits 3-7
    // carry the goto target / switch case count (value+1, 0 = follows as
    // a varint) or the call's has-dest flag.
    uint8_t Tag = C.getU8();
    uint8_t K = Tag & 7;
    uint8_t Hi = Tag >> 3;
    if (!C.ok() || K > static_cast<uint8_t>(Terminator::Kind::Assert))
      return false;
    Out.K = static_cast<Terminator::Kind>(K);
    switch (Out.K) {
    case Terminator::Kind::Goto:
      if (Hi)
        Out.Target = Hi - 1;
      else if (!decodeBlock(C, Out.Target))
        return false;
      break;
    case Terminator::Kind::SwitchInt: {
      if (!decodeOperand(C, Out.Discr))
        return false;
      uint32_t NCases = Hi ? Hi - 1 : C.getVar32();
      if (!C.ok() || NCases > 1u << 20)
        return false;
      Out.Cases.clear();
      for (uint32_t I = 0; I != NCases; ++I) {
        int64_t Value = C.getZig64();
        BlockId Block = InvalidBlock;
        if (!decodeBlock(C, Block))
          return false;
        Out.Cases.push_back({Value, Block});
      }
      if (!decodeBlock(C, Out.Target))
        return false;
      break;
    }
    case Terminator::Kind::Return:
    case Terminator::Kind::Resume:
    case Terminator::Kind::Unreachable:
      if (Hi)
        return false;
      break;
    case Terminator::Kind::Drop:
      if (Hi || !decodePlace(C, Out.DropPlace) ||
          !decodeBlock(C, Out.Target) || !decodeBlock(C, Out.Unwind))
        return false;
      break;
    case Terminator::Kind::Call:
      if (Hi > 1)
        return false;
      Out.HasDest = Hi != 0;
      if (Out.HasDest && !decodePlace(C, Out.Dest))
        return false;
      if (!sym(C.getVar32(), Out.Callee) || !decodeOps(C, Out.Args) ||
          !decodeBlock(C, Out.Target) || !decodeBlock(C, Out.Unwind))
        return false;
      break;
    case Terminator::Kind::Assert:
      if (Hi || !decodeOperand(C, Out.Discr) ||
          !decodeBlock(C, Out.Target))
        return false;
      break;
    }
    return decodeLoc(C, Out.Loc);
  }

  bool decodeItems(Cursor &C, Module &M) {
    uint32_t NStructs = C.getVar32();
    if (!C.ok() || NStructs > 1u << 20)
      return false;
    for (uint32_t I = 0; I != NStructs; ++I) {
      StructDecl S;
      if (!sym(C.getVar32(), S.Name))
        return false;
      S.HasDrop = C.getU8() != 0;
      uint32_t NFields = C.getVar32();
      if (!C.ok() || NFields > 1u << 20)
        return false;
      for (uint32_t F = 0; F != NFields; ++F) {
        std::string_view Name;
        if (!str(C.getVar32(), Name))
          return false;
        const Type *Ty = type(C.getVar32());
        if (!C.ok() || !Ty)
          return false;
        S.Fields.emplace_back(std::string(Name), Ty);
      }
      M.addStruct(std::move(S));
    }

    uint32_t NStatics = C.getVar32();
    if (!C.ok() || NStatics > 1u << 20)
      return false;
    for (uint32_t I = 0; I != NStatics; ++I) {
      StaticDecl S;
      if (!sym(C.getVar32(), S.Name))
        return false;
      S.Ty = type(C.getVar32());
      S.Mutable = C.getU8() != 0;
      if (!C.ok() || !S.Ty)
        return false;
      M.addStatic(std::move(S));
    }

    uint32_t NSync = C.getVar32();
    if (!C.ok() || NSync > 1u << 20)
      return false;
    for (uint32_t I = 0; I != NSync; ++I) {
      std::string_view Name;
      if (!str(C.getVar32(), Name))
        return false;
      M.addSyncImpl(Name);
    }

    uint32_t NFuncs = C.getVar32();
    if (!C.ok() || NFuncs > 1u << 20)
      return false;
    for (uint32_t I = 0; I != NFuncs; ++I) {
      Function F;
      if (!sym(C.getVar32(), F.Name))
        return false;
      F.IsUnsafe = C.getU8() != 0;
      F.NumArgs = C.getVar32();
      if (!decodeLoc(C, F.Loc))
        return false;
      uint32_t NLocals = C.getVar32();
      if (!C.ok() || NLocals > 1u << 24)
        return false;
      F.Locals.reserve(NLocals);
      for (uint32_t L = 0; L != NLocals; ++L) {
        LocalDecl &D = F.Locals.emplace_back();
        uint64_t W = C.getVar64();
        if (W >> 2 > ~0u)
          return false;
        D.Ty = type(static_cast<uint32_t>(W >> 2));
        D.Mutable = (W & 1) != 0;
        if (!C.ok() || !D.Ty)
          return false;
        if ((W & 2) && !sym(C.getVar32(), D.DebugName))
          return false;
      }
      uint32_t NBlocks = C.getVar32();
      if (!C.ok() || NBlocks > 1u << 24)
        return false;
      F.Blocks.reserve(NBlocks);
      for (uint32_t B = 0; B != NBlocks; ++B) {
        // Decode straight into the vector slot: statements and terminators
        // are wide (inline SmallVector buffers), so building them in a
        // local and moving would copy every inline byte twice.
        BasicBlock &BB = F.Blocks.emplace_back();
        uint32_t NStmts = C.getVar32();
        if (!C.ok() || NStmts > 1u << 24)
          return false;
        BB.Statements.reserve(NStmts);
        for (uint32_t S = 0; S != NStmts; ++S)
          if (!decodeStatement(C, BB.Statements.emplace_back()))
            return false;
        if (!decodeTerminator(C, BB.Term))
          return false;
      }
      // Duplicate function names cannot come from the writer; reject them
      // rather than let the name index silently point at the last one.
      if (M.findFunction(F.Name))
        return false;
      M.addFunction(std::move(F));
    }
    return true;
  }

  std::vector<std::string_view> Strings;
  std::vector<const Type *> Types;
  /// String-table index -> interned Symbol, resolved lazily by sym()
  /// (type spellings and file names never become Symbols).
  std::vector<Symbol> Syms;
  /// String-table index -> interned file name, resolved lazily (only a
  /// handful of table entries are file names).
  std::vector<const std::string *> Files;
  /// Line of the last location decoded, the base for the next delta.
  uint32_t LastLine = 0;
  /// File of the last location decoded (sticky until a change bit).
  const std::string *LastFile = nullptr;
  /// Column of the last location decoded (sticky until a change bit).
  uint32_t LastCol = 0;
};

} // namespace

std::string rs::mir::snapshot::write(const Module &M, uint64_t Fingerprint) {
  return Writer().run(M, Fingerprint);
}

std::optional<Module>
rs::mir::snapshot::read(std::string_view Bytes,
                        const uint64_t *ExpectFingerprint) {
  return Reader().run(Bytes, ExpectFingerprint);
}

std::optional<uint64_t>
rs::mir::snapshot::peekFingerprint(std::string_view Bytes) {
  if (Bytes.size() < HeaderSize || std::memcmp(Bytes.data(), Magic, 4) != 0)
    return std::nullopt;
  Cursor H(Bytes.substr(4, HeaderSize - 4));
  uint32_t Schema = H.getU32();
  uint32_t Epoch = H.getU32();
  uint64_t Fingerprint = H.getU64();
  if (!H.ok() || Schema != SnapshotSchemaVersion ||
      Epoch != Symbol::EpochVersion)
    return std::nullopt;
  return Fingerprint;
}

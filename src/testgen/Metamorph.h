//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantics-preserving module transforms for metamorphic testing. Each
/// transform changes spelling or layout but not behavior, so every detector
/// must reach the same verdict on the transformed module (Oracles.h checks
/// that it does).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_METAMORPH_H
#define RUSTSIGHT_TESTGEN_METAMORPH_H

#include "mir/Mir.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rs::testgen {

/// Appends \p Suffix to the name of every module-defined function: the
/// definition, every call site, and every string constant naming a spawned
/// thread entry point (thread::spawn takes its target by name). Std-model
/// callees such as Mutex::lock are untouched. Returns std::nullopt when the
/// rewritten text no longer parses — itself an oracle violation.
std::optional<mir::Module> renameFunctions(const mir::Module &M,
                                           std::string_view Suffix);

/// The textual rewrite behind renameFunctions, exposed for tests: replaces
/// every identifier-boundary occurrence of a defined function name in
/// \p Text (including inside string literals, which is how spawn operands
/// follow the rename) with name+suffix.
std::string renameFunctionsInText(const std::string &Text,
                                  const mir::Module &M,
                                  std::string_view Suffix);

/// Deterministically shuffles each function's non-entry basic blocks in
/// place, remapping every terminator target. The entry block stays bb0, so
/// the CFG — and therefore every detector verdict — is unchanged.
void permuteBlocks(mir::Module &M, uint64_t Seed);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_METAMORPH_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Fuzz.h"

#include "mir/Parser.h"
#include "sched/ThreadPool.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "testgen/Harness.h"
#include "testgen/Metamorph.h"
#include "testgen/Minimizer.h"
#include "testgen/Mutators.h"
#include "testgen/Oracles.h"
#include "vm/Lower.h"
#include "vm/Vm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace rs::testgen {

namespace {

namespace fs = std::filesystem;

/// Candidates per round. Fixed — never derived from the job count — so the
/// corpus-snapshot boundaries, and therefore every candidate, are
/// byte-identical for any --jobs value.
constexpr size_t BatchSize = 32;

//===----------------------------------------------------------------------===//
// Candidate evaluation
//===----------------------------------------------------------------------===//

struct CandidateResult {
  std::string Text;
  bool Parsed = false;
  std::vector<uint64_t> Keys;   ///< Sorted edge-shape keys this run lit.
  std::string ParityMessage;    ///< Non-empty: interp/VM drift evidence.
};

bool isMemorySafetyTrap(interp::TrapKind K) {
  switch (K) {
  case interp::TrapKind::UseAfterFree:
  case interp::TrapKind::UseAfterScope:
  case interp::TrapKind::DoubleFree:
  case interp::TrapKind::InvalidFree:
  case interp::TrapKind::UninitRead:
    return true;
  default:
    return false;
  }
}

/// Executes every function of \p Text on the VM and collects the edge-shape
/// keys the module lit. Candidates whose run trapped a memory-safety kind
/// are re-checked through the interp-vs-VM parity oracle — the fuzzer's
/// detector-drift hunt, spent only where a drift could hide a missed bug.
CandidateResult evaluateCandidate(std::string Text, const FuzzConfig &C) {
  CandidateResult R;
  R.Text = std::move(Text);
  auto Parsed = mir::Parser::parse(R.Text, "<fuzz>");
  if (!Parsed)
    return R;
  R.Parsed = true;
  mir::Module M = Parsed.take();

  vm::Program P = vm::compile(M);
  vm::Vm::Options Opts;
  Opts.StepLimit = C.StepLimit;
  vm::Vm V(P, Opts);
  bool MemTrap = false;
  for (const auto &Fn : M.functions()) {
    interp::ExecResult E = V.run(Fn.Name);
    if (!E.Ok && E.Error && isMemorySafetyTrap(E.Error->Kind))
      MemTrap = true;
  }
  R.Keys = V.coveredKeys();

  if (MemTrap) {
    OracleResult Parity = checkVmParity(M);
    if (!Parity.Ok)
      R.ParityMessage = Parity.Message;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Candidate derivation
//===----------------------------------------------------------------------===//

/// Fresh generator output, bug injections included — the same module
/// stream the sweep harness checks, on a seed stream disjoint from the
/// blind baseline's.
std::string freshCandidate(const FuzzConfig &C, Rng &R) {
  SweepConfig SC;
  SC.Gen = C.Gen;
  return sweepModuleText(SC, R.next());
}

int64_t tweakedConstant(int64_t Old, Rng &R) {
  // Unsigned arithmetic: INT64_MAX + 1 and -INT64_MIN must wrap, not UB.
  uint64_t U = static_cast<uint64_t>(Old);
  switch (R.below(9)) {
  case 0: return 0;
  case 1: return 1;
  case 2: return 2;
  case 3: return 5;  // The s-bucket of the edge-shape key space.
  case 4: return 17; // The b-bucket.
  case 5: return 100;
  case 6: return static_cast<int64_t>(U + 1);
  case 7: return static_cast<int64_t>(U ^ 1);
  default: return static_cast<int64_t>(~U + 1); // -Old.
  }
}

/// Retargets one integer constant. Loop bounds, switch discriminants, and
/// index operands all live here; this is the mutation that steers
/// execution down arms the generator's value choices never take.
void tweakConstant(mir::Module &M, Rng &R) {
  std::vector<mir::Operand *> Consts;
  auto Collect = [&Consts](mir::Operand &O) {
    if (O.K == mir::Operand::Kind::Const && O.C.K == mir::ConstValue::Kind::Int)
      Consts.push_back(&O);
  };
  for (auto &Fn : M.functions()) {
    for (mir::BasicBlock &B : Fn.Blocks) {
      for (mir::Statement &S : B.Statements)
        for (mir::Operand &O : S.RV.Ops)
          Collect(O);
      Collect(B.Term.Discr);
      for (mir::Operand &O : B.Term.Args)
        Collect(O);
    }
  }
  if (Consts.empty())
    return;
  mir::Operand *O = Consts[R.below(Consts.size())];
  O->C.Int = tweakedConstant(O->C.Int, R);
}

/// Replaces one binary operator with another from the full table —
/// including Div/Rem (division-by-zero asserts) and comparisons (bool
/// results feeding switchInt).
void swapBinOp(mir::Module &M, Rng &R) {
  std::vector<mir::Rvalue *> Binaries;
  for (auto &Fn : M.functions())
    for (mir::BasicBlock &B : Fn.Blocks)
      for (mir::Statement &S : B.Statements)
        if (S.K == mir::Statement::Kind::Assign &&
            S.RV.K == mir::Rvalue::Kind::BinaryOp)
          Binaries.push_back(&S.RV);
  if (Binaries.empty())
    return;
  constexpr unsigned NumBinOps = 17; // Add..Offset.
  Binaries[R.below(Binaries.size())]->BOp =
      static_cast<mir::BinOp>(R.below(NumBinOps));
}

/// Deletes one statement. Dropping a StorageLive, an initializing assign,
/// or a guard binding is exactly how uninit reads and lock misuse sneak
/// into otherwise clean shapes.
void deleteStatement(mir::Module &M, Rng &R) {
  struct Site {
    mir::BasicBlock *Block;
    size_t Index;
  };
  std::vector<Site> Sites;
  for (auto &Fn : M.functions())
    for (mir::BasicBlock &B : Fn.Blocks)
      for (size_t I = 0; I != B.Statements.size(); ++I)
        Sites.push_back({&B, I});
  if (Sites.empty())
    return;
  Site S = Sites[R.below(Sites.size())];
  S.Block->Statements.erase(S.Block->Statements.begin() +
                            static_cast<ptrdiff_t>(S.Index));
}

/// Splices the donor's functions (renamed with a per-candidate suffix, so
/// names stay unique) after the recipient's text. Cross-module calls from
/// donor code resolve against recipient functions where names collide
/// before the rename — new call graphs neither module had.
std::string crossover(const std::string &Recipient, const std::string &Donor,
                      uint64_t Ordinal) {
  auto Parsed = mir::Parser::parse(Donor, "<fuzz-donor>");
  if (!Parsed)
    return Recipient;
  mir::Module D = Parsed.take();
  std::string Fns;
  for (const auto &Fn : D.functions())
    Fns += Fn.toString() + "\n";
  std::string Suffix = "__x" + std::to_string(Ordinal);
  return Recipient + "\n" + renameFunctionsInText(Fns, D, Suffix);
}

/// Derives candidate \p Ordinal from the seed and the round-start corpus
/// snapshot. Pure: no global state, no worker identity.
std::string deriveCandidate(const FuzzConfig &C,
                            const std::vector<std::string> &Corpus,
                            uint64_t Ordinal) {
  Rng R(fnv1a64U64(Ordinal, C.Seed ^ 0xf022bade5eedull));
  if (Corpus.empty())
    return freshCandidate(C, R);

  const std::string &Pick = Corpus[R.below(Corpus.size())];
  auto PickParsed = [&]() {
    auto P = mir::Parser::parse(Pick, "<fuzz-pick>");
    return P ? std::optional<mir::Module>(P.take()) : std::nullopt;
  };

  switch (R.below(8)) {
  case 0:
    return freshCandidate(C, R);
  case 1:
  case 2: {
    // Bug injection into a corpus entry. The Idx ties injected function
    // names to this candidate's globally unique ordinal, so re-injection
    // into an already-injected entry can never collide.
    auto M = PickParsed();
    if (!M)
      return Pick;
    Mutation Mu = allMutations()[R.below(NumMutations)];
    applyMutation(*M, Mu, /*Positive=*/R.below(2) == 0,
                  /*Idx=*/static_cast<unsigned>(1000 + Ordinal), R);
    return M->toString();
  }
  case 3: {
    auto M = PickParsed();
    if (!M)
      return Pick;
    permuteBlocks(*M, R.next());
    return M->toString();
  }
  case 4: {
    auto M = PickParsed();
    if (!M)
      return Pick;
    tweakConstant(*M, R);
    return M->toString();
  }
  case 5: {
    auto M = PickParsed();
    if (!M)
      return Pick;
    swapBinOp(*M, R);
    return M->toString();
  }
  case 6: {
    auto M = PickParsed();
    if (!M)
      return Pick;
    deleteStatement(*M, R);
    return M->toString();
  }
  default:
    return crossover(Pick, Corpus[R.below(Corpus.size())], Ordinal);
  }
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

std::string entryFileName(uint64_t Ordinal, const std::string &Text) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%06llu_",
                static_cast<unsigned long long>(Ordinal));
  return std::string(Buf) + hashToHex(fnv1a64(Text)) + ".mir";
}

void persistCorpus(const FuzzConfig &C, FuzzReport &Report) {
  fs::path Dir(C.CorpusDir);
  // Replace, never append: the directory is a pure function of the run.
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  for (FuzzEntry &E : Report.Corpus) {
    fs::path P = Dir / entryFileName(E.Ordinal, E.Text);
    std::ofstream Out(P, std::ios::binary);
    Out << "// fuzz corpus entry: candidate " << E.Ordinal << ", "
        << E.NewKeys << " new edge key(s)\n";
    Out << "// replay: rustsight fuzz --fuzz-seed "
        << C.Seed << " --fuzz-iters " << C.Iterations << "\n\n";
    Out << E.Text;
    E.Path = P.string();
  }

  JsonWriter W;
  W.beginObject();
  W.field("seed", static_cast<int64_t>(C.Seed));
  W.field("iterations", static_cast<int64_t>(Report.Iterations));
  W.field("digest", hashToHex(Report.Digest));
  W.field("entries", static_cast<int64_t>(Report.Corpus.size()));
  W.key("keys");
  W.beginArray();
  for (uint64_t K : Report.CoveredKeys)
    W.value(hashToHex(K));
  W.endArray();
  W.endObject();
  std::ofstream Out(Dir / "coverage.json", std::ios::binary);
  Out << W.str() << "\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// The fuzzing loop
//===----------------------------------------------------------------------===//

FuzzReport runFuzz(const FuzzConfig &C) {
  FuzzReport Report;
  std::set<uint64_t> Covered;
  std::vector<std::string> CorpusTexts;
  uint64_t Digest = Fnv1a64OffsetBasis;
  uint64_t Ordinal = 0;

  sched::ThreadPool Pool(C.Jobs);
  while (Report.Iterations < C.Iterations) {
    size_t N = static_cast<size_t>(
        std::min<uint64_t>(BatchSize, C.Iterations - Report.Iterations));
    uint64_t Base = Ordinal;

    // Parallel phase: derive and execute each candidate against the
    // round-start corpus snapshot.
    std::vector<CandidateResult> Results(N);
    sched::parallelFor(Pool, N, [&](size_t I) {
      Results[I] =
          evaluateCandidate(deriveCandidate(C, CorpusTexts, Base + I), C);
    });

    // Serial ordinal merge: digest, violations, novelty admission — all in
    // candidate order, independent of which worker ran what.
    for (size_t I = 0; I != N; ++I) {
      CandidateResult &R = Results[I];
      Digest = fnv1a64(R.Text, Digest);
      Digest = fnv1a64("\n--\n", Digest);
      if (!R.ParityMessage.empty())
        Report.Violations.push_back(
            {Base + I, "vm-parity", R.ParityMessage, R.Text});
      if (!R.Parsed)
        continue;

      std::vector<uint64_t> NewKeys;
      for (uint64_t K : R.Keys)
        if (!Covered.count(K))
          NewKeys.push_back(K);
      if (NewKeys.empty())
        continue;

      // Novelty: shrink while the candidate still parses and still lights
      // every key it is being admitted for, then record what the
      // *minimized* text lights — the corpus must replay to exactly the
      // recorded coverage map.
      std::string Admitted = R.Text;
      if (C.Minimize)
        Admitted = minimizeModuleText(
            std::move(Admitted), [&](const std::string &T) {
              CandidateResult Shrunk = evaluateCandidate(T, C);
              if (!Shrunk.Parsed)
                return false;
              return std::includes(Shrunk.Keys.begin(), Shrunk.Keys.end(),
                                   NewKeys.begin(), NewKeys.end());
            });
      CandidateResult Final = evaluateCandidate(Admitted, C);
      Covered.insert(Final.Keys.begin(), Final.Keys.end());
      Report.Corpus.push_back(
          {Base + I, std::move(Admitted), NewKeys.size(), ""});
      CorpusTexts.push_back(Report.Corpus.back().Text);
    }

    Ordinal += N;
    Report.Iterations += N;
  }

  Report.Digest = Digest;
  Report.CoveredKeys.assign(Covered.begin(), Covered.end());
  if (!C.CorpusDir.empty())
    persistCorpus(C, Report);
  return Report;
}

std::vector<uint64_t> runBlindSweepCoverage(const FuzzConfig &C) {
  SweepConfig SC;
  SC.Gen = C.Gen;
  std::set<uint64_t> Covered;
  for (uint64_t I = 0; I != C.Iterations; ++I) {
    CandidateResult R =
        evaluateCandidate(sweepModuleText(SC, C.Seed + I), C);
    Covered.insert(R.Keys.begin(), R.Keys.end());
  }
  return {Covered.begin(), Covered.end()};
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

bool replayCorpus(const std::string &Dir, const FuzzConfig &C,
                  ReplayResult &Out, std::string &Error) {
  fs::path Root(Dir);
  std::ifstream In(Root / "coverage.json", std::ios::binary);
  if (!In.good()) {
    Error = "missing " + (Root / "coverage.json").string();
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::optional<JsonValue> Doc = JsonValue::parse(Buf.str());
  if (!Doc || !Doc->isObject()) {
    Error = "coverage.json is not a JSON object";
    return false;
  }
  const JsonValue *Keys = Doc->get("keys");
  if (!Keys || !Keys->isArray()) {
    Error = "coverage.json has no \"keys\" array";
    return false;
  }
  for (const JsonValue &K : Keys->elements()) {
    if (!K.isString()) {
      Error = "coverage key is not a hex string";
      return false;
    }
    Out.StoredKeys.push_back(
        std::strtoull(K.asString().c_str(), nullptr, 16));
  }
  std::sort(Out.StoredKeys.begin(), Out.StoredKeys.end());

  std::vector<fs::path> Entries;
  for (const auto &E : fs::directory_iterator(Root))
    if (E.is_regular_file() && E.path().extension() == ".mir")
      Entries.push_back(E.path());
  std::sort(Entries.begin(), Entries.end());

  std::set<uint64_t> Covered;
  for (const fs::path &P : Entries) {
    std::ifstream EntryIn(P, std::ios::binary);
    std::stringstream EntryBuf;
    EntryBuf << EntryIn.rdbuf();
    CandidateResult R = evaluateCandidate(EntryBuf.str(), C);
    if (!R.Parsed) {
      Error = "corpus entry no longer parses: " + P.string();
      return false;
    }
    Covered.insert(R.Keys.begin(), R.Keys.end());
    ++Out.Entries;
  }
  Out.ReplayedKeys.assign(Covered.begin(), Covered.end());
  return true;
}

std::string FuzzReport::renderText() const {
  std::string Out = "fuzzed " + std::to_string(Iterations) + " candidates, " +
                    std::to_string(Corpus.size()) + " corpus entries, " +
                    std::to_string(CoveredKeys.size()) + " edges, digest " +
                    hashToHex(Digest);
  if (clean())
    return Out + ": OK\n";
  Out += ": " + std::to_string(Violations.size()) + " violation(s)\n";
  for (const FuzzViolation &V : Violations)
    Out += "  candidate " + std::to_string(V.Ordinal) + " [" + V.Oracle +
           "] " + V.Message + "\n";
  return Out;
}

} // namespace rs::testgen

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth detector evaluation: loads a labeled-case manifest, scores
/// an engine corpus report against it, and renders a per-detector
/// precision/recall/F1 scorecard (text and JSON). The paper reports its
/// detectors' findings qualitatively; this layer measures ours.
///
/// Labeling model: each case names one file and one detector and says
/// whether that detector must fire there ("positive") — the benign twin of
/// every injected pattern is a labeled negative for the same detector. A
/// case with detector "*" is a clean program: a negative for every detector
/// in the battery. (file, detector) pairs no case labels are not scored.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_SCORECARD_H
#define RUSTSIGHT_TESTGEN_SCORECARD_H

#include "engine/Engine.h"

#include <optional>
#include <string>
#include <vector>

namespace rs::testgen {

/// One labeled (file, detector) expectation.
struct LabeledCase {
  std::string File;     ///< Case file name, relative to the manifest.
  std::string Detector; ///< Detector name, or "*" = negative for all.
  bool Positive = false;
};

/// A parsed manifest.json.
struct Manifest {
  std::vector<LabeledCase> Cases;
};

/// Loads a manifest file; nullopt (with \p Error set) on unreadable file,
/// malformed JSON, or a case missing file/detector fields.
std::optional<Manifest> loadManifest(const std::string &Path,
                                     std::string *Error = nullptr);

/// Confusion counts and derived metrics for one detector. Edge conventions:
/// precision is 1 when nothing was reported (TP+FP == 0), recall is 1 when
/// nothing was expected (TP+FN == 0), F1 is 0 when precision+recall is 0.
struct DetectorScore {
  std::string Detector;
  unsigned TP = 0, FP = 0, FN = 0, TN = 0;

  double precision() const;
  double recall() const;
  double f1() const;
};

/// The whole evaluation. Deliberately excludes timings and cache counters —
/// like CorpusReport::renderJson, the rendered scorecard is byte-identical
/// for any job count and cache temperature.
struct Scorecard {
  /// One row per detector with at least one labeled case, in detector
  /// battery order.
  std::vector<DetectorScore> Scores;
  size_t CasesScored = 0;    ///< Labeled (file, detector) pairs scored.
  size_t CasesUnmatched = 0; ///< Labels whose file the report lacks.
  size_t FilesAnalyzed = 0;  ///< Report files that analyzed Ok.
  size_t FilesFailed = 0;    ///< Report files that degraded or skipped.

  const DetectorScore *find(std::string_view Detector) const;

  /// Aligned table plus a summary line.
  std::string renderText() const;

  /// {"scorecard": {...}} — schema pinned by tests/golden.
  std::string renderJson() const;

  /// {"f1": {"<detector>": "<f1>"}} — the EVAL_baseline.json format.
  std::string renderBaselineJson() const;
};

/// Scores \p Report against \p Man. A detector "fires" on a file when the
/// file's findings include that detector's bug kind. Report files match
/// manifest cases by final path component.
Scorecard scoreReport(const engine::CorpusReport &Report, const Manifest &Man);

/// Compares \p S against a baseline document (renderBaselineJson format);
/// returns one human-readable line per regression (F1 below baseline by
/// more than 1e-6, or a baselined detector missing from the scorecard).
std::vector<std::string> compareToBaseline(const Scorecard &S,
                                           const std::string &BaselineJson);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_SCORECARD_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic generator of random RustLite MIR programs. Unlike
/// corpus::MirCorpusGenerator, which stamps out the paper's fixed bug
/// patterns, this generator builds *structurally random* programs through
/// mir::Builder — nested branches, bounded loops, calls along a DAG of
/// generated functions, tuples, safe Box and Mutex use — while guaranteeing
/// by construction that every emitted module is verifier-clean, free of
/// planted bugs, and terminates under the interpreter. Bug patterns are
/// added afterwards by the mutators (Mutators.h), which keeps the labeling
/// exact: a generated module is a true negative until a mutator says
/// otherwise.
///
/// Determinism contract (docs/EVALUATION.md): one seed fully determines the
/// module, byte for byte, on every platform — generation never reads the
/// clock, the environment, or unordered containers.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_GENERATOR_H
#define RUSTSIGHT_TESTGEN_GENERATOR_H

#include "mir/Mir.h"

#include <cstdint>

namespace rs::testgen {

/// Size knobs for one generated module. The defaults produce small modules
/// (a handful of functions, tens of statements) — big enough to exercise
/// every analysis layer, small enough that a 10k-seed sweep stays fast.
struct GenConfig {
  uint64_t Seed = 1;

  /// Functions per module, drawn uniformly from [MinFunctions, MaxFunctions].
  unsigned MinFunctions = 2;
  unsigned MaxFunctions = 6;

  /// Cap on structured-statement recursion (if/loop nesting).
  unsigned MaxDepth = 3;

  /// Statements drawn per straight-line region.
  unsigned MaxRegionStatements = 5;

  /// Emit struct declarations and tuple/aggregate statements.
  bool WithAggregates = true;

  /// Emit safe Box::new / deref / drop sequences.
  bool WithHeap = true;

  /// Emit safe lock/unlock sequences on &Mutex<i32> parameters.
  bool WithLocks = true;

  /// Emit calls from later generated functions to earlier ones (a DAG, so
  /// generated programs never recurse and always terminate).
  bool WithCalls = true;
};

/// Generates one module per call; identical config (seed included) yields a
/// byte-identical module. The result is always verifier-clean and contains
/// no injected bug pattern.
class ProgramGenerator {
public:
  explicit ProgramGenerator(GenConfig Config) : Config(Config) {}

  mir::Module generate();

private:
  GenConfig Config;
};

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_GENERATOR_H

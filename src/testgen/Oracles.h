//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metamorphic and differential oracles over generated modules. Each oracle
/// states a property RustSight promises for *every* module; the sweep
/// harness (Harness.h) checks them across thousands of generated programs,
/// where a hand-written test suite checks a handful.
///
///  - round-trip:   print -> parse -> print reaches a fixpoint after one
///                  cycle (DebugNames print as comments and drop once).
///  - rename:       appending a suffix to every function name changes no
///                  detector verdict.
///  - permute:      shuffling non-entry basic blocks changes no verdict.
///  - interp-uaf:   an interpreter UseAfterFree/UseAfterScope trap implies
///                  a use-after-free detector finding in that function
///                  (the dynamic run under-approximates the static one).
///  - vm-parity:    the bytecode VM (src/vm/) agrees with the tree
///                  interpreter on every function: same verdict, same trap
///                  kind, same trapping function, same step count, same
///                  return value rendering.
///  - expectation:  an injected bug's target detector fires iff the
///                  injection was the buggy form, not the benign twin.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_ORACLES_H
#define RUSTSIGHT_TESTGEN_ORACLES_H

#include "mir/Mir.h"
#include "testgen/Mutators.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rs::testgen {

/// Outcome of one oracle on one module.
struct OracleResult {
  std::string Oracle;  ///< "round-trip", "rename", "permute", ...
  bool Ok = true;
  std::string Message; ///< Human-readable evidence when !Ok.
};

OracleResult checkRoundTrip(const mir::Module &M);
OracleResult checkRenameInvariance(const mir::Module &M);
OracleResult checkPermuteInvariance(const mir::Module &M, uint64_t Seed);
OracleResult checkInterpVsUafDetector(const mir::Module &M);
OracleResult checkVmParity(const mir::Module &M);
OracleResult checkDetectorExpectation(const mir::Module &M,
                                      const InjectedBug &Label);

/// Runs every applicable oracle (expectation only when \p Label is non-null)
/// and returns the failures; empty means the module passed.
std::vector<OracleResult> failedOracles(const mir::Module &M,
                                        const InjectedBug *Label,
                                        uint64_t Seed);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_ORACLES_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Scorecard.h"

#include "detectors/Detector.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace rs::testgen {

namespace {

std::string baseName(const std::string &Path) {
  return std::filesystem::path(Path).filename().string();
}

/// The battery's detector names, in registration order — the row order of
/// every scorecard.
std::vector<std::string> batteryNames() {
  std::vector<std::string> Names;
  for (const auto &D : detectors::makeAllDetectors())
    Names.push_back(D->name());
  return Names;
}

} // namespace

std::optional<Manifest> loadManifest(const std::string &Path,
                                     std::string *Error) {
  auto Fail = [&](std::string Msg) -> std::optional<Manifest> {
    if (Error)
      *Error = std::move(Msg);
    return std::nullopt;
  };

  std::ifstream In(Path);
  if (!In)
    return Fail("cannot read manifest: " + Path);
  std::stringstream Buf;
  Buf << In.rdbuf();

  std::optional<JsonValue> Doc = JsonValue::parse(Buf.str());
  if (!Doc || !Doc->isObject())
    return Fail("manifest is not a JSON object: " + Path);
  const JsonValue *Cases = Doc->get("cases");
  if (!Cases || !Cases->isArray())
    return Fail("manifest has no \"cases\" array: " + Path);

  Manifest Man;
  for (const JsonValue &C : Cases->elements()) {
    LabeledCase L;
    L.File = C.getString("file");
    L.Detector = C.getString("detector");
    L.Positive = C.getBool("positive");
    if (L.File.empty() || L.Detector.empty())
      return Fail("manifest case missing \"file\" or \"detector\": " + Path);
    Man.Cases.push_back(std::move(L));
  }
  return Man;
}

double DetectorScore::precision() const {
  return TP + FP == 0 ? 1.0 : double(TP) / double(TP + FP);
}

double DetectorScore::recall() const {
  return TP + FN == 0 ? 1.0 : double(TP) / double(TP + FN);
}

double DetectorScore::f1() const {
  double P = precision(), R = recall();
  return P + R == 0 ? 0.0 : 2 * P * R / (P + R);
}

const DetectorScore *Scorecard::find(std::string_view Detector) const {
  for (const DetectorScore &S : Scores)
    if (S.Detector == Detector)
      return &S;
  return nullptr;
}

Scorecard scoreReport(const engine::CorpusReport &Report,
                      const Manifest &Man) {
  // Per report file: which detector kinds fired (by name). Keyed by final
  // path component, the spelling the manifest uses.
  std::map<std::string, std::set<std::string>> FiredByFile;
  std::set<std::string> ReportFiles;

  Scorecard Card;
  for (const engine::FileReport &F : Report.Files) {
    std::string Name = baseName(F.Path);
    ReportFiles.insert(Name);
    if (F.Status == engine::EngineStatus::Ok)
      ++Card.FilesAnalyzed;
    else
      ++Card.FilesFailed;
    for (const detectors::Diagnostic &D : F.Findings) {
      // Both spellings, so manifests can label cases by short kind name
      // ("use-after-free") or stable rule ID ("RS-UAF-001").
      FiredByFile[Name].insert(detectors::bugKindName(D.Kind));
      FiredByFile[Name].insert(diag::ruleStringId(D.Kind));
    }
  }

  std::vector<std::string> Battery = batteryNames();
  std::map<std::string, DetectorScore> ByName;

  auto ScoreOne = [&](const std::string &File, const std::string &Detector,
                      bool Positive) {
    if (!ReportFiles.count(File)) {
      ++Card.CasesUnmatched;
      return;
    }
    auto It = FiredByFile.find(File);
    bool Fired = It != FiredByFile.end() && It->second.count(Detector);
    DetectorScore &S = ByName[Detector];
    S.Detector = Detector;
    if (Fired)
      ++(Positive ? S.TP : S.FP);
    else
      ++(Positive ? S.FN : S.TN);
    ++Card.CasesScored;
  };

  for (const LabeledCase &L : Man.Cases) {
    if (L.Detector == "*") {
      for (const std::string &D : Battery)
        ScoreOne(L.File, D, L.Positive);
    } else {
      ScoreOne(L.File, L.Detector, L.Positive);
    }
  }

  for (const std::string &D : Battery)
    if (ByName.count(D))
      Card.Scores.push_back(ByName[D]);
  return Card;
}

std::string Scorecard::renderText() const {
  std::string Out;
  Out += "detector                  tp   fp   fn   tn  precision  recall      f1\n";
  for (const DetectorScore &S : Scores) {
    char Line[160];
    std::snprintf(Line, sizeof(Line),
                  "%-22s %4u %4u %4u %4u     %6s  %6s  %6s\n",
                  S.Detector.c_str(), S.TP, S.FP, S.FN, S.TN,
                  formatDouble(S.precision(), 4).c_str(),
                  formatDouble(S.recall(), 4).c_str(),
                  formatDouble(S.f1(), 4).c_str());
    Out += Line;
  }
  Out += "cases: " + std::to_string(CasesScored) + " scored, " +
         std::to_string(CasesUnmatched) + " unmatched; files: " +
         std::to_string(FilesAnalyzed) + " analyzed, " +
         std::to_string(FilesFailed) + " failed\n";
  return Out;
}

std::string Scorecard::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("scorecard");
  W.beginObject();
  W.field("cases_scored", static_cast<int64_t>(CasesScored));
  W.field("cases_unmatched", static_cast<int64_t>(CasesUnmatched));
  W.field("files_analyzed", static_cast<int64_t>(FilesAnalyzed));
  W.field("files_failed", static_cast<int64_t>(FilesFailed));
  W.key("detectors");
  W.beginArray();
  for (const DetectorScore &S : Scores) {
    W.beginObject();
    W.field("name", S.Detector);
    W.field("tp", static_cast<int64_t>(S.TP));
    W.field("fp", static_cast<int64_t>(S.FP));
    W.field("fn", static_cast<int64_t>(S.FN));
    W.field("tn", static_cast<int64_t>(S.TN));
    // Metrics render as fixed-point strings: byte-stable across platforms,
    // which double formatting is not.
    W.field("precision", formatDouble(S.precision(), 4));
    W.field("recall", formatDouble(S.recall(), 4));
    W.field("f1", formatDouble(S.f1(), 4));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.endObject();
  return W.str();
}

std::string Scorecard::renderBaselineJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("f1");
  W.beginObject();
  for (const DetectorScore &S : Scores)
    W.field(S.Detector, formatDouble(S.f1(), 4));
  W.endObject();
  W.endObject();
  return W.str();
}

std::vector<std::string> compareToBaseline(const Scorecard &S,
                                           const std::string &BaselineJson) {
  std::vector<std::string> Regressions;
  std::optional<JsonValue> Doc = JsonValue::parse(BaselineJson);
  if (!Doc || !Doc->isObject()) {
    Regressions.push_back("baseline is not a JSON object");
    return Regressions;
  }
  const JsonValue *F1 = Doc->get("f1");
  if (!F1 || !F1->isObject()) {
    Regressions.push_back("baseline has no \"f1\" object");
    return Regressions;
  }
  for (const auto &[Name, V] : F1->members()) {
    double Want =
        V.isString() ? std::strtod(V.asString().c_str(), nullptr)
                     : V.asDouble();
    const DetectorScore *Got = S.find(Name);
    if (!Got) {
      Regressions.push_back(Name + ": baselined but missing from scorecard");
      continue;
    }
    if (Got->f1() + 1e-6 < Want)
      Regressions.push_back(Name + ": f1 " + formatDouble(Got->f1(), 4) +
                            " below baseline " + formatDouble(Want, 4));
  }
  return Regressions;
}

} // namespace rs::testgen

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bug-injection mutators: given a clean generated module, each mutator
/// plants one known defect pattern (or its benign twin, the paper's
/// published fix shape) and returns an exact label — which detector must
/// (positive) or must not (benign) fire, and in which function. The catalog
/// covers every use-after-free and double-lock shape from Section 7 plus
/// the paper's suggested detectors: post-drop use (Figure 7), guarded
/// may-UAF, use-after-scope, dangling return (Section 4.3), double lock
/// direct and through a callee (Figure 8), ABBA lock-order inversion,
/// ptr::read double free, Figure 6 invalid free, and uninitialized reads.
///
/// Mutators draw structure noise from the caller's Rng, so two injections
/// of the same pattern differ in filler while keeping the defect identical
/// — the labeled-corpus analogue of the same bug appearing in different
/// surrounding code.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_MUTATORS_H
#define RUSTSIGHT_TESTGEN_MUTATORS_H

#include "mir/Mir.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace rs::testgen {

/// The defect catalog. Each entry has a buggy form and a benign twin.
enum class Mutation {
  UafPostDrop,        ///< Deref a raw pointer after the Box is dropped.
  UafGuarded,         ///< The drop is branch-guarded: a may-UAF.
  UseAfterScope,      ///< Deref a pointer to a StorageDead local.
  DanglingReturn,     ///< Return a pointer into the function's own frame.
  DoubleLock,         ///< Re-lock while the first guard is alive.
  DoubleLockInterproc,///< The second lock happens inside a callee.
  LockOrderInversion, ///< ABBA between two spawned thread entry points.
  DoubleFree,         ///< ptr::read duplicates ownership; both owners drop.
  InvalidFree,        ///< Store a Drop struct through a raw pointer to
                      ///< uninitialized memory (Figure 6).
  UninitRead,         ///< Read through a pointer fresh out of alloc().
};

/// Number of catalog entries (for sweeps over the whole catalog).
inline constexpr unsigned NumMutations = 10;

/// All catalog entries, in declaration order.
const std::vector<Mutation> &allMutations();

/// Stable identifier, e.g. "uaf-post-drop".
const char *mutationName(Mutation M);

/// The detector that must fire on the buggy form ("use-after-free", ...).
const char *mutationDetector(Mutation M);

/// The label a mutator hands back: which function carries the pattern and
/// what verdict the target detector must reach there.
struct InjectedBug {
  Mutation M = Mutation::UafPostDrop;
  bool Positive = true;      ///< False for the benign twin.
  std::string Function;      ///< Primary pattern function.
  std::string Detector;      ///< mutationDetector(M).
};

/// Plants \p M (buggy when \p Positive, the fixed twin otherwise) into
/// \p Mod as one or more new functions named "<pattern>_<Idx>...". The
/// module stays verifier-clean. Returns the label.
InjectedBug applyMutation(mir::Module &Mod, Mutation M, bool Positive,
                          unsigned Idx, Rng &R);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_MUTATORS_H

#include "testgen/Mutators.h"

#include "mir/Builder.h"

using namespace rs;
using namespace rs::testgen;
using namespace rs::mir;

const std::vector<Mutation> &rs::testgen::allMutations() {
  static const std::vector<Mutation> All = {
      Mutation::UafPostDrop,    Mutation::UafGuarded,
      Mutation::UseAfterScope,  Mutation::DanglingReturn,
      Mutation::DoubleLock,     Mutation::DoubleLockInterproc,
      Mutation::LockOrderInversion, Mutation::DoubleFree,
      Mutation::InvalidFree,    Mutation::UninitRead,
  };
  return All;
}

const char *rs::testgen::mutationName(Mutation M) {
  switch (M) {
  case Mutation::UafPostDrop:
    return "uaf-post-drop";
  case Mutation::UafGuarded:
    return "uaf-guarded";
  case Mutation::UseAfterScope:
    return "use-after-scope";
  case Mutation::DanglingReturn:
    return "dangling-return";
  case Mutation::DoubleLock:
    return "double-lock";
  case Mutation::DoubleLockInterproc:
    return "double-lock-interproc";
  case Mutation::LockOrderInversion:
    return "lock-order-inversion";
  case Mutation::DoubleFree:
    return "double-free";
  case Mutation::InvalidFree:
    return "invalid-free";
  case Mutation::UninitRead:
    return "uninit-read";
  }
  return "?";
}

const char *rs::testgen::mutationDetector(Mutation M) {
  switch (M) {
  case Mutation::UafPostDrop:
  case Mutation::UafGuarded:
  case Mutation::UseAfterScope:
    return "use-after-free";
  case Mutation::DanglingReturn:
    return "dangling-return";
  case Mutation::DoubleLock:
  case Mutation::DoubleLockInterproc:
    return "double-lock";
  case Mutation::LockOrderInversion:
    return "conflicting-lock-order";
  case Mutation::DoubleFree:
    return "double-free";
  case Mutation::InvalidFree:
    return "invalid-free";
  case Mutation::UninitRead:
    return "uninitialized-read";
  }
  return "?";
}

namespace {

/// Shared helpers for pattern emission.
struct PatternCtx {
  Module &M;
  Rng &R;
  TypeContext &TC;

  PatternCtx(Module &M, Rng &R) : M(M), R(R), TC(M.types()) {}

  /// A few arithmetic statements on bracketed temporaries, so instances of
  /// one pattern differ without changing safety behavior.
  void filler(FunctionBuilder &FB, unsigned MaxStatements = 3) {
    unsigned N = 1 + static_cast<unsigned>(R.below(MaxStatements));
    for (unsigned I = 0; I != N; ++I) {
      LocalId T = FB.addLocal(TC.getI32());
      FB.storageLive(T);
      static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul};
      FB.assign(Place(T),
                Rvalue::binary(Ops[R.below(3)],
                               Operand::constant(ConstValue::makeInt(
                                   static_cast<int64_t>(R.below(100)))),
                               Operand::constant(ConstValue::makeInt(
                                   1 + static_cast<int64_t>(R.below(50))))));
      FB.storageDead(T);
    }
  }

  int64_t smallInt() { return static_cast<int64_t>(R.below(256)); }
};

std::string patternFnName(Mutation M, bool Positive, unsigned Idx) {
  std::string Name = mutationName(M);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + (Positive ? "_bug_" : "_ok_") + std::to_string(Idx);
}

/// Figure 7: a raw pointer into a Box outlives (buggy) or not (benign) the
/// Box's drop.
void emitUafPostDrop(PatternCtx &P, const std::string &Name, bool Positive) {
  const Type *BoxU8 = P.TC.getAdt("Box", {P.TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(P.M, Name, P.TC.getPrim(PrimKind::U8));
  LocalId B = FB.addLocal(BoxU8);
  LocalId Ptr = FB.addLocal(P.TC.getRawPtr(P.TC.getPrim(PrimKind::U8), false));
  P.filler(FB);
  FB.storageLive(B);
  FB.call(Place(B), "Box::new",
          {Operand::constant(ConstValue::makeInt(P.smallInt()))});
  FB.assign(Place(Ptr),
            Rvalue::addressOf(Place(B).project(ProjectionElem::deref()),
                              /*Mut=*/false));
  if (Positive) {
    FB.drop(Place(B));
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(Ptr).project(ProjectionElem::deref()))));
  } else {
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(Ptr).project(ProjectionElem::deref()))));
    FB.drop(Place(B));
  }
  FB.storageDead(B);
  FB.ret();
  FB.finish();
}

/// The drop happens only under a runtime condition: a static may-UAF. The
/// benign twin re-establishes the pointer on the dropping path.
void emitUafGuarded(PatternCtx &P, const std::string &Name, bool Positive) {
  const Type *BoxU8 = P.TC.getAdt("Box", {P.TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(P.M, Name, P.TC.getPrim(PrimKind::U8));
  LocalId Cond = FB.addArg(P.TC.getBool());
  LocalId B = FB.addLocal(BoxU8);
  LocalId Ptr = FB.addLocal(P.TC.getRawPtr(P.TC.getPrim(PrimKind::U8), false));
  P.filler(FB, 2);
  FB.call(Place(B), "Box::new",
          {Operand::constant(ConstValue::makeInt(P.smallInt()))});
  FB.assign(Place(Ptr),
            Rvalue::addressOf(Place(B).project(ProjectionElem::deref()),
                              /*Mut=*/false));
  BlockId DropBlock = FB.newBlock();
  BlockId Merge = FB.newBlock();
  FB.switchInt(Operand::copy(Place(Cond)), {{1, DropBlock}}, Merge);
  FB.setInsertPoint(DropBlock);
  if (Positive) {
    // The buggy shape: the dropping path rejoins the path that still
    // dereferences the pointer — a may-use-after-free.
    FB.dropTo(Place(B), Merge);
  } else {
    // The published fix shape: the dropping path returns early, so no
    // path reaching the dereference has dropped the box.
    BlockId Early = FB.newBlock();
    FB.dropTo(Place(B), Early);
    FB.setInsertPoint(Early);
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::constant(ConstValue::makeInt(0))));
    FB.ret();
  }
  FB.setInsertPoint(Merge);
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::copy(
                Place(Ptr).project(ProjectionElem::deref()))));
  FB.ret();
  FB.finish();
}

/// Deref of a raw pointer to a local whose storage has ended (buggy) or is
/// still live (benign).
void emitUseAfterScope(PatternCtx &P, const std::string &Name, bool Positive) {
  FunctionBuilder FB(P.M, Name, P.TC.getI32());
  LocalId L = FB.addLocal(P.TC.getI32());
  LocalId Ptr = FB.addLocal(P.TC.getRawPtr(P.TC.getI32(), false));
  P.filler(FB);
  FB.storageLive(L);
  FB.assign(Place(L), Rvalue::use(Operand::constant(
                          ConstValue::makeInt(P.smallInt()))));
  FB.assign(Place(Ptr), Rvalue::addressOf(Place(L), /*Mut=*/false));
  if (Positive) {
    FB.storageDead(L);
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(Ptr).project(ProjectionElem::deref()))));
  } else {
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(Ptr).project(ProjectionElem::deref()))));
    FB.storageDead(L);
  }
  FB.ret();
  FB.finish();
}

/// Section 4.3: return a pointer into the function's own frame (buggy) or
/// into a leaked heap object that outlives the call (benign).
void emitDanglingReturn(PatternCtx &P, const std::string &Name,
                        bool Positive) {
  const Type *I32Ptr = P.TC.getRawPtr(P.TC.getI32(), false);
  FunctionBuilder FB(P.M, Name, I32Ptr);
  P.filler(FB);
  if (Positive) {
    LocalId L = FB.addLocal(P.TC.getI32());
    FB.storageLive(L);
    FB.assign(Place(L), Rvalue::use(Operand::constant(
                            ConstValue::makeInt(P.smallInt()))));
    FB.assign(Place(FB.returnLocal()),
              Rvalue::addressOf(Place(L), /*Mut=*/false));
  } else {
    LocalId Heap = FB.addLocal(P.TC.getRawPtr(P.TC.getI32(), true));
    FB.call(Place(Heap), "alloc",
            {Operand::constant(ConstValue::makeInt(8))});
    FB.assign(Place(Heap).project(ProjectionElem::deref()),
              Rvalue::use(Operand::constant(
                  ConstValue::makeInt(P.smallInt()))));
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(Place(Heap))));
  }
  FB.ret();
  FB.finish();
}

/// Figure 8: the second Mutex::lock runs while (buggy) or after (benign)
/// the first guard's lifetime.
void emitDoubleLock(PatternCtx &P, const std::string &Name, bool Positive,
                    bool Interproc, unsigned Idx) {
  const Type *MutexI32 = P.TC.getAdt("Mutex", {P.TC.getI32()});
  const Type *MutexRef = P.TC.getRef(MutexI32, false);
  const Type *Guard = P.TC.getAdt("MutexGuard", {P.TC.getI32()});

  std::string Helper;
  if (Interproc) {
    Helper = Name + "_helper_" + std::to_string(Idx);
    FunctionBuilder HB(P.M, Helper, P.TC.getI32());
    LocalId Arg = HB.addArg(MutexRef);
    LocalId G = HB.addLocal(Guard);
    P.filler(HB, 2);
    HB.storageLive(G);
    HB.call(Place(G), "Mutex::lock", {Operand::copy(Place(Arg))});
    HB.assign(Place(HB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(G).project(ProjectionElem::deref()))));
    HB.storageDead(G);
    HB.ret();
    HB.finish();
  }

  FunctionBuilder FB(P.M, Name, P.TC.getI32());
  LocalId Arg = FB.addArg(MutexRef);
  LocalId G1 = FB.addLocal(Guard);
  P.filler(FB);
  FB.storageLive(G1);
  FB.call(Place(G1), "Mutex::lock", {Operand::copy(Place(Arg))});
  if (!Positive)
    FB.storageDead(G1); // The published fix: first critical section ends.
  if (Interproc) {
    FB.call(Place(FB.returnLocal()), Helper, {Operand::copy(Place(Arg))});
  } else {
    LocalId G2 = FB.addLocal(Guard);
    FB.storageLive(G2);
    FB.call(Place(G2), "Mutex::lock", {Operand::copy(Place(Arg))});
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(G2).project(ProjectionElem::deref()))));
    FB.storageDead(G2);
  }
  if (Positive)
    FB.storageDead(G1);
  FB.ret();
  FB.finish();
}

/// ABBA deadlock: two spawned thread entries acquire two positional locks
/// in conflicting (buggy) or consistent (benign) order.
void emitLockOrder(PatternCtx &P, const std::string &Name, bool Positive,
                   unsigned Idx) {
  const Type *MutexI32 = P.TC.getAdt("Mutex", {P.TC.getI32()});
  const Type *MutexRef = P.TC.getRef(MutexI32, false);
  const Type *Guard = P.TC.getAdt("MutexGuard", {P.TC.getI32()});

  auto EmitThread = [&](const std::string &ThreadName, bool Swap) {
    FunctionBuilder FB(P.M, ThreadName);
    LocalId A = FB.addArg(MutexRef);
    LocalId B = FB.addArg(MutexRef);
    LocalId G1 = FB.addLocal(Guard);
    LocalId G2 = FB.addLocal(Guard);
    P.filler(FB, 2);
    FB.storageLive(G1);
    FB.call(Place(G1), "Mutex::lock", {Operand::copy(Place(Swap ? B : A))});
    FB.storageLive(G2);
    FB.call(Place(G2), "Mutex::lock", {Operand::copy(Place(Swap ? A : B))});
    FB.storageDead(G2);
    FB.storageDead(G1);
    FB.ret();
    FB.finish();
  };

  std::string T1 = Name + "_t1_" + std::to_string(Idx);
  std::string T2 = Name + "_t2_" + std::to_string(Idx);
  EmitThread(T1, /*Swap=*/false);
  EmitThread(T2, /*Swap=*/Positive); // Benign pairs share one order.

  FunctionBuilder SB(P.M, Name);
  LocalId U1 = SB.addLocal(P.TC.getUnit());
  LocalId U2 = SB.addLocal(P.TC.getUnit());
  SB.call(Place(U1), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(T1))});
  SB.call(Place(U2), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(T2))});
  SB.ret();
  SB.finish();
}

/// Section 5.1: ptr::read duplicates ownership so two owners drop one
/// pointee; the benign twin mem::forgets the original owner.
void emitDoubleFree(PatternCtx &P, const std::string &Name, bool Positive) {
  const Type *BoxU8 = P.TC.getAdt("Box", {P.TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(P.M, Name);
  LocalId T1 = FB.addLocal(BoxU8);
  LocalId Ref = FB.addLocal(P.TC.getRef(BoxU8, false));
  LocalId T2 = FB.addLocal(BoxU8);
  P.filler(FB);
  FB.call(Place(T1), "Box::new",
          {Operand::constant(ConstValue::makeInt(P.smallInt()))});
  FB.assign(Place(Ref), Rvalue::ref(Place(T1), /*Mut=*/false));
  FB.call(Place(T2), "ptr::read", {Operand::copy(Place(Ref))});
  if (Positive) {
    FB.drop(Place(T2));
    FB.drop(Place(T1));
  } else {
    LocalId U = FB.addLocal(P.TC.getUnit());
    FB.call(Place(U), "mem::forget", {Operand::move(Place(T1))});
    FB.drop(Place(T2));
  }
  FB.ret();
  FB.finish();
}

/// Figure 6: assigning a Drop struct through a pointer to uninitialized
/// memory drops the uninitialized old contents; ptr::write is the fix.
void emitInvalidFree(PatternCtx &P, const std::string &Name, bool Positive) {
  const Type *PacketTy = P.TC.getAdt("GenPacket");
  const Type *PacketPtr = P.TC.getRawPtr(PacketTy, true);
  const Type *VecU8 = P.TC.getAdt("Vec", {P.TC.getPrim(PrimKind::U8)});

  FunctionBuilder FB(P.M, Name);
  LocalId Ptr = FB.addLocal(PacketPtr);
  LocalId V = FB.addLocal(VecU8);
  LocalId Tmp = FB.addLocal(PacketTy);
  P.filler(FB);
  FB.call(Place(Ptr), "alloc",
          {Operand::constant(
              ConstValue::makeInt(16 + static_cast<int64_t>(P.R.below(64))))});
  FB.call(Place(V), "Vec::with_capacity",
          {Operand::constant(ConstValue::makeInt(
              1 + static_cast<int64_t>(P.R.below(100))))});
  FB.assign(Place(Tmp),
            Rvalue::aggregate("GenPacket", {Operand::move(Place(V))}));
  if (Positive) {
    FB.assign(Place(Ptr).project(ProjectionElem::deref()),
              Rvalue::use(Operand::move(Place(Tmp))));
  } else {
    LocalId U = FB.addLocal(P.TC.getUnit());
    FB.call(Place(U), "ptr::write",
            {Operand::copy(Place(Ptr)), Operand::move(Place(Tmp))});
  }
  FB.ret();
  FB.finish();
}

/// Reading a buffer fresh out of alloc() before (buggy) or after (benign)
/// its first initialization.
void emitUninitRead(PatternCtx &P, const std::string &Name, bool Positive) {
  const Type *U8Ptr = P.TC.getRawPtr(P.TC.getPrim(PrimKind::U8), true);
  FunctionBuilder FB(P.M, Name, P.TC.getPrim(PrimKind::U8));
  LocalId Ptr = FB.addLocal(U8Ptr);
  P.filler(FB);
  FB.call(Place(Ptr), "alloc",
          {Operand::constant(
              ConstValue::makeInt(8 + static_cast<int64_t>(P.R.below(8))))});
  if (!Positive)
    FB.assign(Place(Ptr).project(ProjectionElem::deref()),
              Rvalue::use(Operand::constant(
                  ConstValue::makeInt(P.smallInt()))));
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::copy(
                Place(Ptr).project(ProjectionElem::deref()))));
  FB.ret();
  FB.finish();
}

/// Declares the Drop-carrying struct InvalidFree stores, once per module.
void ensureGenPacket(Module &M) {
  if (M.findStruct("GenPacket"))
    return;
  StructDecl S;
  S.Name = Symbol::intern("GenPacket");
  S.Fields.emplace_back(
      "buf", M.types().getAdt("Vec", {M.types().getPrim(PrimKind::U8)}));
  S.HasDrop = true;
  M.addStruct(std::move(S));
}

} // namespace

InjectedBug rs::testgen::applyMutation(Module &Mod, Mutation M, bool Positive,
                                       unsigned Idx, Rng &R) {
  PatternCtx Ctx(Mod, R);
  InjectedBug Label;
  Label.M = M;
  Label.Positive = Positive;
  Label.Function = patternFnName(M, Positive, Idx);
  Label.Detector = mutationDetector(M);

  switch (M) {
  case Mutation::UafPostDrop:
    emitUafPostDrop(Ctx, Label.Function, Positive);
    break;
  case Mutation::UafGuarded:
    emitUafGuarded(Ctx, Label.Function, Positive);
    break;
  case Mutation::UseAfterScope:
    emitUseAfterScope(Ctx, Label.Function, Positive);
    break;
  case Mutation::DanglingReturn:
    emitDanglingReturn(Ctx, Label.Function, Positive);
    break;
  case Mutation::DoubleLock:
    emitDoubleLock(Ctx, Label.Function, Positive, /*Interproc=*/false, Idx);
    break;
  case Mutation::DoubleLockInterproc:
    emitDoubleLock(Ctx, Label.Function, Positive, /*Interproc=*/true, Idx);
    break;
  case Mutation::LockOrderInversion:
    emitLockOrder(Ctx, Label.Function, Positive, Idx);
    break;
  case Mutation::DoubleFree:
    emitDoubleFree(Ctx, Label.Function, Positive);
    break;
  case Mutation::InvalidFree:
    ensureGenPacket(Mod);
    emitInvalidFree(Ctx, Label.Function, Positive);
    break;
  case Mutation::UninitRead:
    emitUninitRead(Ctx, Label.Function, Positive);
    break;
  }
  return Label;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Minimizer.h"

#include "mir/Mir.h"
#include "mir/Parser.h"

#include <optional>

namespace rs::testgen {

namespace {

/// Prints \p M like Module::toString but omitting the function named
/// \p SkipFn — the module-surgery primitive Module itself does not offer.
std::string printWithout(const mir::Module &M, const std::string &SkipFn) {
  std::string Out;
  for (const mir::StructDecl &S : M.structs()) {
    Out += "struct " + S.Name.str();
    if (S.HasDrop)
      Out += " : Drop";
    Out += " {";
    for (size_t I = 0; I != S.Fields.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += " " + S.Fields[I].first + ": " + S.Fields[I].second->toString();
    }
    Out += " }\n";
  }
  for (const mir::StructDecl &S : M.structs())
    if (M.isSync(S.Name))
      Out += "unsafe impl Sync for " + S.Name.str() + ";\n";
  for (const mir::StaticDecl &S : M.statics()) {
    Out += "static ";
    if (S.Mutable)
      Out += "mut ";
    Out += S.Name.str() + ": " + S.Ty->toString() + ";\n";
  }
  if (!Out.empty())
    Out += "\n";
  bool First = true;
  for (const auto &F : M.functions()) {
    if (F.Name == SkipFn)
      continue;
    if (!First)
      Out += "\n";
    First = false;
    Out += F.toString();
  }
  return Out;
}

std::optional<mir::Module> tryParse(const std::string &Text) {
  auto R = mir::Parser::parse(Text, "<minimize>");
  if (!R)
    return std::nullopt;
  return R.take();
}

/// One pass of whole-function removal. Returns true if anything shrank.
bool shrinkFunctions(std::string &Text, const TextPredicate &StillFails) {
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    auto M = tryParse(Text);
    if (!M)
      return Changed;
    if (M->functions().size() <= 1)
      return Changed;
    for (const auto &F : M->functions()) {
      std::string Candidate = printWithout(*M, F.Name);
      if (!tryParse(Candidate))
        continue;
      if (StillFails(Candidate)) {
        Text = std::move(Candidate);
        Changed = Progress = true;
        break; // Function list changed; reparse.
      }
    }
  }
  return Changed;
}

/// One pass of statement removal: for every statement, drop it and keep the
/// drop when the failure survives. Mutates a parsed copy in place and only
/// re-prints per candidate.
bool shrinkStatements(std::string &Text, const TextPredicate &StillFails) {
  auto M = tryParse(Text);
  if (!M)
    return false;
  bool Changed = false;
  for (auto &F : M->functions()) {
    for (mir::BasicBlock &B : F.Blocks) {
      for (size_t I = B.Statements.size(); I-- > 0;) {
        mir::Statement Saved = B.Statements[I];
        B.Statements.erase(B.Statements.begin() +
                           static_cast<ptrdiff_t>(I));
        std::string Candidate = M->toString();
        if (tryParse(Candidate) && StillFails(Candidate)) {
          Text = Candidate;
          Changed = true;
        } else {
          B.Statements.insert(B.Statements.begin() +
                                  static_cast<ptrdiff_t>(I),
                              std::move(Saved));
        }
      }
    }
  }
  return Changed;
}

} // namespace

std::string minimizeModuleText(std::string Text,
                               const TextPredicate &StillFails,
                               unsigned MaxRounds) {
  if (!tryParse(Text) || !StillFails(Text))
    return Text;
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    bool A = shrinkFunctions(Text, StillFails);
    bool B = shrinkStatements(Text, StillFails);
    if (!A && !B)
      break;
  }
  return Text;
}

} // namespace rs::testgen

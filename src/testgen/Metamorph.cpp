//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Metamorph.h"

#include "mir/Parser.h"
#include "support/Hash.h"
#include "support/Rng.h"

#include <cctype>
#include <set>

namespace rs::testgen {

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

} // namespace

std::string renameFunctionsInText(const std::string &Text,
                                  const mir::Module &M,
                                  std::string_view Suffix) {
  std::set<std::string> Names;
  for (const auto &F : M.functions())
    Names.insert(F.Name);

  // Rewrite at identifier granularity. Function names never contain "::",
  // so std-model paths like Mutex::lock split into chunks that cannot
  // collide with a defined function, and spawn-target string literals — the
  // one place a function name appears outside call/definition syntax —
  // consist of exactly one identifier chunk and are rewritten too.
  std::string Out;
  Out.reserve(Text.size() + Names.size() * Suffix.size());
  size_t I = 0;
  while (I < Text.size()) {
    if (!isIdentStart(Text[I])) {
      Out += Text[I++];
      continue;
    }
    size_t J = I + 1;
    while (J < Text.size() && isIdentCont(Text[J]))
      ++J;
    std::string Word = Text.substr(I, J - I);
    Out += Word;
    if (Names.count(Word))
      Out += Suffix;
    I = J;
  }
  return Out;
}

std::optional<mir::Module> renameFunctions(const mir::Module &M,
                                           std::string_view Suffix) {
  std::string Rewritten = renameFunctionsInText(M.toString(), M, Suffix);
  auto R = mir::Parser::parse(Rewritten, "<renamed>");
  if (!R)
    return std::nullopt;
  return R.take();
}

void permuteBlocks(mir::Module &M, uint64_t Seed) {
  for (mir::Function &F : M.functions()) {
    size_t N = F.Blocks.size();
    if (N <= 2)
      continue;

    // Seed per function by name so the shuffle is independent of function
    // order within the module.
    Rng R(fnv1a64(F.Name, Seed ^ 0x5bd1e995u));

    // Fisher-Yates over blocks 1..N-1; bb0 stays the entry.
    std::vector<mir::BlockId> NewIndex(N);
    std::vector<size_t> Order(N);
    for (size_t I = 0; I != N; ++I)
      Order[I] = I;
    for (size_t I = N - 1; I > 1; --I) {
      size_t J = 1 + static_cast<size_t>(R.below(I)); // in [1, I]
      std::swap(Order[I], Order[J]);
    }
    // Order[NewPos] = OldPos; invert for target remapping.
    for (size_t NewPos = 0; NewPos != N; ++NewPos)
      NewIndex[Order[NewPos]] = static_cast<mir::BlockId>(NewPos);

    std::vector<mir::BasicBlock> NewBlocks;
    NewBlocks.reserve(N);
    for (size_t NewPos = 0; NewPos != N; ++NewPos)
      NewBlocks.push_back(std::move(F.Blocks[Order[NewPos]]));
    F.Blocks = std::move(NewBlocks);

    for (mir::BasicBlock &B : F.Blocks) {
      mir::Terminator &T = B.Term;
      if (T.Target != mir::InvalidBlock)
        T.Target = NewIndex[T.Target];
      if (T.Unwind != mir::InvalidBlock)
        T.Unwind = NewIndex[T.Unwind];
      for (auto &[Value, Dest] : T.Cases)
        Dest = NewIndex[Dest];
    }
  }
}

} // namespace rs::testgen

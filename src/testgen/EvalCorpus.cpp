//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/EvalCorpus.h"

#include "support/Json.h"
#include "support/Rng.h"
#include "testgen/Generator.h"
#include "testgen/Mutators.h"

#include <filesystem>
#include <fstream>
#include <vector>

namespace rs::testgen {

namespace {

/// "uaf-post-drop" -> "uaf_post_drop" (file names stay underscore-only).
std::string fileStem(Mutation M) {
  std::string S = mutationName(M);
  for (char &C : S)
    if (C == '-')
      C = '_';
  return S;
}

void writeFile(const std::filesystem::path &P, const std::string &Text) {
  std::ofstream Out(P, std::ios::binary);
  Out << Text;
}

} // namespace

size_t writeEvalCorpus(const std::string &Dir, const EvalCorpusSpec &Spec) {
  std::filesystem::create_directories(Dir);
  std::filesystem::path Root(Dir);

  struct CaseLabel {
    std::string File;
    std::string Detector;
    bool Positive;
  };
  std::vector<CaseLabel> Labels;

  uint64_t Seed = Spec.BaseSeed;
  auto hostModule = [&Seed]() {
    // Small hosts: each case should read as one bug in one screenful.
    GenConfig G;
    G.Seed = Seed++;
    G.MinFunctions = 1;
    G.MaxFunctions = 3;
    G.MaxDepth = 2;
    return ProgramGenerator(G).generate();
  };

  for (Mutation Mu : allMutations()) {
    for (unsigned I = 0;
         I != Spec.PositivesPerMutation + Spec.BenignPerMutation; ++I) {
      bool Positive = I < Spec.PositivesPerMutation;
      mir::Module M = hostModule();
      // Injection noise comes from its own stream so host and pattern stay
      // independently reproducible.
      Rng R(Spec.BaseSeed ^ (uint64_t(Mu) * 131 + I));
      InjectedBug Bug = applyMutation(M, Mu, Positive, I, R);
      std::string Name = fileStem(Mu) + (Positive ? "_bug_" : "_ok_") +
                         std::to_string(Positive ? I
                                                 : I - Spec.PositivesPerMutation) +
                         ".mir";
      writeFile(Root / Name, M.toString());
      Labels.push_back({Name, Bug.Detector, Positive});
    }
  }

  for (unsigned I = 0; I != Spec.CleanCases; ++I) {
    mir::Module M = hostModule();
    std::string Name = "clean_" + std::to_string(I) + ".mir";
    writeFile(Root / Name, M.toString());
    Labels.push_back({Name, "*", false});
  }

  if (Spec.CrossFileCases) {
    // Multi-file interprocedural pairs, handwritten (no generator noise:
    // the cases are static text, so adding them never perturbs the seed
    // stream feeding the single-file cases above). Each pair only exhibits
    // — or, for the benign twin, only provably lacks — its bug when the
    // whole-program link step resolves the use-file's callee into the
    // def-file. Labels go on the use-file; def-files are clean standalone.
    struct CrossFileCase {
      const char *Stem;     ///< File-name stem, e.g. "xfile_uaf_bug_0".
      const char *Detector; ///< Label detector for the use-file.
      bool Positive;
      std::string UseText;
      std::string DefText;
    };

    // Cross-file use-after-free: the caller's allocation dies inside the
    // callee (DropsParamPointee through the link env); the benign twin's
    // callee only reads through the pointer.
    auto uafUse = [](const std::string &Callee) {
      return "fn xf_uaf_caller_" + Callee +
             "() -> u8 {\n"
             "    let _1: *mut u8;\n"
             "    let _2: ();\n"
             "    bb0: {\n"
             "        _1 = alloc(const 8) -> bb1;\n"
             "    }\n"
             "    bb1: {\n"
             "        (*_1) = const 5;\n"
             "        _2 = " +
             Callee +
             "(copy _1) -> bb2;\n"
             "    }\n"
             "    bb2: {\n"
             "        _0 = copy (*_1);\n"
             "        return;\n"
             "    }\n"
             "}\n";
    };
    std::string UafFreeDef = "fn xf_free_bug_0(_1: *mut u8) {\n"
                             "    bb0: {\n"
                             "        dealloc(copy _1) -> bb1;\n"
                             "    }\n"
                             "    bb1: {\n"
                             "        return;\n"
                             "    }\n"
                             "}\n";
    std::string UafReadDef = "fn xf_free_ok_0(_1: *mut u8) {\n"
                             "    let _2: u8;\n"
                             "    bb0: {\n"
                             "        _2 = copy (*_1);\n"
                             "        return;\n"
                             "    }\n"
                             "}\n";

    // Cross-file double-lock: the caller holds the guard across a call to
    // a callee that re-locks the same mutex (AcquiresLockOnParam through
    // the link env); the benign twin's callee never locks.
    auto dlUse = [](const std::string &Callee) {
      return "fn xf_dl_outer_" + Callee +
             "(_1: &Mutex<i32>) -> i32 {\n"
             "    let _2: MutexGuard<i32>;\n"
             "    bb0: {\n"
             "        _2 = Mutex::lock(copy _1) -> bb1;\n"
             "    }\n"
             "    bb1: {\n"
             "        _0 = " +
             Callee +
             "(copy _1) -> bb2;\n"
             "    }\n"
             "    bb2: {\n"
             "        return;\n"
             "    }\n"
             "}\n";
    };
    std::string DlLockDef = "fn xf_relock_bug_0(_1: &Mutex<i32>) -> i32 {\n"
                            "    let _2: MutexGuard<i32>;\n"
                            "    bb0: {\n"
                            "        _2 = Mutex::lock(copy _1) -> bb1;\n"
                            "    }\n"
                            "    bb1: {\n"
                            "        _0 = copy (*_2);\n"
                            "        return;\n"
                            "    }\n"
                            "}\n";
    std::string DlNoLockDef = "fn xf_relock_ok_0(_1: &Mutex<i32>) -> i32 {\n"
                              "    bb0: {\n"
                              "        _0 = const 0;\n"
                              "        return;\n"
                              "    }\n"
                              "}\n";

    // Cross-file ABBA: thread1 takes lock A locally then lock B inside a
    // callee in the other file; thread2 takes B then A locally. The twin's
    // thread2 respects A-then-B, so no inversion exists.
    auto abbaUse = [](const std::string &Callee, bool Inverted) {
      std::string T2First = Inverted ? "_2" : "_1";
      std::string T2Second = Inverted ? "_1" : "_2";
      return "fn xf_lo_thread1_" + Callee +
             "(_1: &Mutex<i32>, _2: &Mutex<i32>) {\n"
             "    let _3: MutexGuard<i32>;\n"
             "    let _4: ();\n"
             "    bb0: {\n"
             "        _3 = Mutex::lock(copy _1) -> bb1;\n"
             "    }\n"
             "    bb1: {\n"
             "        _4 = " +
             Callee +
             "(copy _2) -> bb2;\n"
             "    }\n"
             "    bb2: {\n"
             "        return;\n"
             "    }\n"
             "}\n"
             "fn xf_lo_thread2_" +
             Callee +
             "(_1: &Mutex<i32>, _2: &Mutex<i32>) {\n"
             "    let _3: MutexGuard<i32>;\n"
             "    let _4: MutexGuard<i32>;\n"
             "    bb0: {\n"
             "        _3 = Mutex::lock(copy " +
             T2First +
             ") -> bb1;\n"
             "    }\n"
             "    bb1: {\n"
             "        _4 = Mutex::lock(copy " +
             T2Second +
             ") -> bb2;\n"
             "    }\n"
             "    bb2: {\n"
             "        return;\n"
             "    }\n"
             "}\n";
    };
    auto abbaDef = [](const std::string &Name) {
      return "fn " + Name +
             "(_1: &Mutex<i32>) {\n"
             "    let _2: MutexGuard<i32>;\n"
             "    bb0: {\n"
             "        _2 = Mutex::lock(copy _1) -> bb1;\n"
             "    }\n"
             "    bb1: {\n"
             "        return;\n"
             "    }\n"
             "}\n";
    };

    const CrossFileCase Cross[] = {
        {"xfile_uaf_bug_0", "use-after-free", true, uafUse("xf_free_bug_0"),
         UafFreeDef},
        {"xfile_uaf_ok_0", "use-after-free", false, uafUse("xf_free_ok_0"),
         UafReadDef},
        {"xfile_double_lock_bug_0", "double-lock", true,
         dlUse("xf_relock_bug_0"), DlLockDef},
        {"xfile_double_lock_ok_0", "double-lock", false,
         dlUse("xf_relock_ok_0"), DlNoLockDef},
        {"xfile_lock_order_bug_0", "conflicting-lock-order", true,
         abbaUse("xf_lockb_bug_0", /*Inverted=*/true),
         abbaDef("xf_lockb_bug_0")},
        {"xfile_lock_order_ok_0", "conflicting-lock-order", false,
         abbaUse("xf_lockb_ok_0", /*Inverted=*/false),
         abbaDef("xf_lockb_ok_0")},
    };
    for (const CrossFileCase &C : Cross) {
      std::string UseName = std::string(C.Stem) + "_use.mir";
      std::string DefName = std::string(C.Stem) + "_def.mir";
      writeFile(Root / UseName, C.UseText);
      writeFile(Root / DefName, C.DefText);
      Labels.push_back({UseName, C.Detector, C.Positive});
      Labels.push_back({DefName, "*", false});
    }
  }

  JsonWriter W;
  W.beginObject();
  W.field("version", int64_t(1));
  W.key("cases");
  W.beginArray();
  for (const CaseLabel &L : Labels) {
    W.beginObject();
    W.field("file", L.File);
    W.field("detector", L.Detector);
    W.field("positive", L.Positive);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  writeFile(Root / "manifest.json", W.str() + "\n");

  return Labels.size();
}

} // namespace rs::testgen

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/EvalCorpus.h"

#include "support/Json.h"
#include "support/Rng.h"
#include "testgen/Generator.h"
#include "testgen/Mutators.h"

#include <filesystem>
#include <fstream>
#include <vector>

namespace rs::testgen {

namespace {

/// "uaf-post-drop" -> "uaf_post_drop" (file names stay underscore-only).
std::string fileStem(Mutation M) {
  std::string S = mutationName(M);
  for (char &C : S)
    if (C == '-')
      C = '_';
  return S;
}

void writeFile(const std::filesystem::path &P, const std::string &Text) {
  std::ofstream Out(P, std::ios::binary);
  Out << Text;
}

} // namespace

size_t writeEvalCorpus(const std::string &Dir, const EvalCorpusSpec &Spec) {
  std::filesystem::create_directories(Dir);
  std::filesystem::path Root(Dir);

  struct CaseLabel {
    std::string File;
    std::string Detector;
    bool Positive;
  };
  std::vector<CaseLabel> Labels;

  uint64_t Seed = Spec.BaseSeed;
  auto hostModule = [&Seed]() {
    // Small hosts: each case should read as one bug in one screenful.
    GenConfig G;
    G.Seed = Seed++;
    G.MinFunctions = 1;
    G.MaxFunctions = 3;
    G.MaxDepth = 2;
    return ProgramGenerator(G).generate();
  };

  for (Mutation Mu : allMutations()) {
    for (unsigned I = 0;
         I != Spec.PositivesPerMutation + Spec.BenignPerMutation; ++I) {
      bool Positive = I < Spec.PositivesPerMutation;
      mir::Module M = hostModule();
      // Injection noise comes from its own stream so host and pattern stay
      // independently reproducible.
      Rng R(Spec.BaseSeed ^ (uint64_t(Mu) * 131 + I));
      InjectedBug Bug = applyMutation(M, Mu, Positive, I, R);
      std::string Name = fileStem(Mu) + (Positive ? "_bug_" : "_ok_") +
                         std::to_string(Positive ? I
                                                 : I - Spec.PositivesPerMutation) +
                         ".mir";
      writeFile(Root / Name, M.toString());
      Labels.push_back({Name, Bug.Detector, Positive});
    }
  }

  for (unsigned I = 0; I != Spec.CleanCases; ++I) {
    mir::Module M = hostModule();
    std::string Name = "clean_" + std::to_string(I) + ".mir";
    writeFile(Root / Name, M.toString());
    Labels.push_back({Name, "*", false});
  }

  JsonWriter W;
  W.beginObject();
  W.field("version", int64_t(1));
  W.key("cases");
  W.beginArray();
  for (const CaseLabel &L : Labels) {
    W.beginObject();
    W.field("file", L.File);
    W.field("detector", L.Detector);
    W.field("positive", L.Positive);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  writeFile(Root / "manifest.json", W.str() + "\n");

  return Labels.size();
}

} // namespace rs::testgen

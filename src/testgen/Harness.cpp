//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Harness.h"

#include "mir/Parser.h"
#include "mir/Verifier.h"
#include "sched/ThreadPool.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Rng.h"
#include "testgen/Minimizer.h"

#include <exception>
#include <filesystem>
#include <fstream>

namespace rs::testgen {

namespace {

/// Everything one seed produced; merged in seed order after the parallel
/// phase so the report is independent of scheduling.
struct SeedOutcome {
  std::string Text;
  std::vector<SweepViolation> Violations;
};

/// True when \p Text still fails oracle \p Oracle — the minimization
/// predicate. Crash-class failures re-run the whole pipeline.
bool textFailsOracle(const std::string &Text, const std::string &Oracle,
                     const InjectedBug *Label, uint64_t Seed) {
  try {
    auto M = mir::Parser::parse(Text, "<sweep>");
    if (!M)
      return Oracle == "crash";
    std::vector<std::string> Errors;
    if (!mir::verifyModule(*M, Errors))
      return Oracle == "verify";
    for (const OracleResult &R : failedOracles(*M, Label, Seed))
      if (R.Oracle == Oracle)
        return true;
    return false;
  } catch (...) {
    return Oracle == "crash";
  }
}

void checkSeed(const SweepConfig &C, uint64_t Seed, SeedOutcome &Out) {
  std::optional<InjectedBug> Label;
  try {
    Out.Text = sweepModuleText(C, Seed, &Label);

    auto M = mir::Parser::parse(Out.Text, "<sweep>");
    if (!M) {
      Out.Violations.push_back({Seed, "parse",
                                "generated module failed to parse: " +
                                    M.error().toString(),
                                Out.Text, ""});
      return;
    }
    std::vector<std::string> Errors;
    if (!mir::verifyModule(*M, Errors)) {
      Out.Violations.push_back({Seed, "verify",
                                "generated module failed to verify: " +
                                    Errors[0],
                                Out.Text, ""});
      return;
    }
    for (OracleResult &R : failedOracles(
             *M, Label.has_value() ? &*Label : nullptr, Seed))
      Out.Violations.push_back(
          {Seed, R.Oracle, std::move(R.Message), Out.Text, ""});

    // Probe point so tests can drive the violation -> minimize -> repro
    // pipeline without needing a real oracle bug on hand.
    if (fault::shouldFail("testgen.oracle"))
      Out.Violations.push_back(
          {Seed, "injected-fault", "fault-injection probe armed", Out.Text,
           ""});
  } catch (const std::exception &E) {
    Out.Violations.push_back(
        {Seed, "crash", std::string("exception: ") + E.what(), Out.Text, ""});
  } catch (...) {
    Out.Violations.push_back(
        {Seed, "crash", "non-standard exception", Out.Text, ""});
  }

  // Minimize each violation (rare, so the extra oracle runs are cheap).
  for (SweepViolation &V : Out.Violations)
    V.MinimizedText = minimizeModuleText(
        V.MinimizedText,
        [&](const std::string &T) {
          return textFailsOracle(T, V.Oracle,
                                 Label.has_value() ? &*Label : nullptr, Seed);
        });
}

} // namespace

std::string sweepModuleText(const SweepConfig &C, uint64_t Seed,
                            std::optional<InjectedBug> *LabelOut) {
  GenConfig G = C.Gen;
  G.Seed = Seed;
  mir::Module M = ProgramGenerator(G).generate();

  std::optional<InjectedBug> Label;
  if (C.WithMutations) {
    // A separate stream from the generator's, so adding mutation rolls
    // never perturbs the base program at a given seed.
    Rng R(Seed * 0x9E3779B97F4A7C15ull + 0x6d);
    uint64_t Roll = R.below(3); // 0 = clean, 1 = buggy, 2 = benign twin.
    if (Roll != 0) {
      Mutation Mu = allMutations()[R.below(NumMutations)];
      Label = applyMutation(M, Mu, /*Positive=*/Roll == 1, /*Idx=*/0, R);
    }
  }
  if (LabelOut)
    *LabelOut = Label;
  return M.toString();
}

SweepReport runSweep(const SweepConfig &C) {
  if (C.SeedCount == 0) {
    // A zero-seed sweep checks nothing, and for years CI configs have been
    // one typo away from one. Reporting it "clean" would let that pass
    // silently; surface it as a violation instead.
    SweepReport Report;
    Report.Violations.push_back(
        {0, "config", "SeedCount is 0: a sweep over no seeds verifies nothing",
         "", ""});
    return Report;
  }
  std::vector<SeedOutcome> Outcomes(C.SeedCount);
  {
    sched::ThreadPool Pool(C.Jobs);
    sched::parallelFor(Pool, Outcomes.size(), [&](size_t I) {
      checkSeed(C, C.SeedStart + I, Outcomes[I]);
    });
  }

  SweepReport Report;
  Report.SeedsRun = C.SeedCount;
  uint64_t H = Fnv1a64OffsetBasis;
  for (SeedOutcome &O : Outcomes) {
    H = fnv1a64(O.Text, H);
    H = fnv1a64("\n--\n", H); // Separator: split points matter.
    for (SweepViolation &V : O.Violations)
      Report.Violations.push_back(std::move(V));
  }
  Report.Digest = H;

  if (!C.RegressDir.empty() && !Report.Violations.empty()) {
    std::filesystem::create_directories(C.RegressDir);
    for (SweepViolation &V : Report.Violations) {
      std::string Name =
          "seed" + std::to_string(V.Seed) + "_" + V.Oracle + ".mir";
      std::filesystem::path P = std::filesystem::path(C.RegressDir) / Name;
      std::ofstream Out(P);
      Out << "// repro: sweep seed " << V.Seed << " violated the '"
          << V.Oracle << "' oracle\n";
      Out << "// " << V.Message << "\n\n";
      Out << V.MinimizedText;
      V.ReproPath = P.string();
    }
  }
  return Report;
}

std::string SweepReport::renderText() const {
  std::string Out = "swept " + std::to_string(SeedsRun) + " seeds, digest " +
                    hashToHex(Digest);
  if (clean())
    return Out + ": OK\n";
  Out += ": " + std::to_string(Violations.size()) + " violation(s)\n";
  for (const SweepViolation &V : Violations) {
    Out += "  seed " + std::to_string(V.Seed) + " [" + V.Oracle + "] " +
           V.Message + "\n";
    if (!V.ReproPath.empty())
      Out += "    repro: " + V.ReproPath + "\n";
  }
  return Out;
}

} // namespace rs::testgen

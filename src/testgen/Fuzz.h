//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage-guided fuzzing over the bytecode VM (src/vm/). Candidates are
/// whole RustLite modules: fresh generator output, bug injections from the
/// Section-7 mutator catalog, and structural mutations of earlier corpus
/// entries (constant tweaks, operator swaps, statement deletion, block
/// permutation, cross-module function splicing). Each candidate executes on
/// the VM, which reports the set of *stable edge-shape keys* it lit
/// (Bytecode.h); a candidate that lights a key the run has never seen is
/// delta-minimized and admitted to the novelty corpus.
///
/// Determinism contract (the same one the sweep harness keeps): a fuzz run
/// is a pure function of (Seed, Iterations, generator config). Candidates
/// are derived per (round, index) from the seed — never from worker
/// identity — evaluated in parallel, and merged in ordinal order, so the
/// corpus directory, the coverage map, and the fold digest are
/// byte-identical for any --jobs value. CI pins exactly that
/// (fuzz-smoke, FuzzTest).
///
/// The fuzzer doubles as a differential hunter: any candidate whose VM run
/// traps a memory-safety kind is re-run through the interpreter-vs-VM
/// parity oracle, so engine drift found by fuzzing surfaces as a violation
/// with a replayable module attached (docs/FUZZING.md).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_FUZZ_H
#define RUSTSIGHT_TESTGEN_FUZZ_H

#include "testgen/Generator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rs::testgen {

struct FuzzConfig {
  uint64_t Seed = 1;

  /// Total candidate executions (the fuzzing budget). Candidates that fail
  /// to parse still consume budget — determinism over throughput.
  uint64_t Iterations = 1000;

  /// Worker threads; 0 picks the scheduler default. Never affects results.
  unsigned Jobs = 1;

  /// When non-empty, the corpus is persisted here: numbered .mir entries
  /// plus coverage.json (see docs/FUZZING.md for the layout).
  std::string CorpusDir;

  /// Delta-minimize novel candidates before admission (keeps corpus
  /// entries small at the cost of extra executions outside the budget).
  bool Minimize = true;

  /// Generator shape knobs; Seed is overridden per candidate.
  GenConfig Gen;

  /// VM step budget per function execution.
  uint64_t StepLimit = 50000;
};

/// One admitted corpus entry.
struct FuzzEntry {
  uint64_t Ordinal = 0;     ///< Global candidate index that produced it.
  std::string Text;         ///< Minimized module text.
  uint64_t NewKeys = 0;     ///< Edge keys this entry first lit.
  std::string Path;         ///< File under CorpusDir, "" if not persisted.
};

/// A differential drift finding: the VM and the tree interpreter disagreed
/// on a fuzzed module.
struct FuzzViolation {
  uint64_t Ordinal = 0;
  std::string Oracle; ///< "vm-parity".
  std::string Message;
  std::string Text; ///< The module that exposed the drift.
};

struct FuzzReport {
  uint64_t Iterations = 0;
  /// FNV-1a fold over every candidate text in ordinal order — equal
  /// digests mean byte-identical fuzz runs for any job count.
  uint64_t Digest = 0;
  std::vector<FuzzEntry> Corpus;
  /// Cumulative edge-shape keys, sorted ascending.
  std::vector<uint64_t> CoveredKeys;
  std::vector<FuzzViolation> Violations;

  bool clean() const { return Violations.empty(); }

  /// "fuzzed N candidates, M corpus entries, K edges, digest <hex>: OK"
  /// or a per-violation listing.
  std::string renderText() const;
};

/// Runs the fuzzer, parallel across candidates within each round.
FuzzReport runFuzz(const FuzzConfig &C);

/// The blind baseline: executes C.Iterations generator-sweep modules
/// (seeds C.Seed, C.Seed+1, ...) on the VM with no feedback and returns
/// the cumulative sorted key set. The guided run must beat this on the
/// same budget (FuzzTest pins it; the fuzz-smoke CI job re-checks).
std::vector<uint64_t> runBlindSweepCoverage(const FuzzConfig &C);

/// Outcome of re-executing a persisted corpus.
struct ReplayResult {
  uint64_t Entries = 0;
  std::vector<uint64_t> StoredKeys;   ///< From coverage.json.
  std::vector<uint64_t> ReplayedKeys; ///< From re-running every entry.

  bool coverageReproduced() const { return StoredKeys == ReplayedKeys; }
};

/// Reloads a corpus directory and re-runs every entry on the VM. Returns
/// false (with \p Error set) when the directory or coverage.json is
/// missing or malformed, or an entry no longer parses. The delete-and-
/// replay determinism test rides on this: stored coverage must be exactly
/// reproducible from the minimized entries alone.
bool replayCorpus(const std::string &Dir, const FuzzConfig &C,
                  ReplayResult &Out, std::string &Error);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_FUZZ_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes the labeled ground-truth evaluation corpus: for every mutation in
/// the catalog, several buggy cases and their benign twins (each planted in
/// a different generated host program), plus clean generator-only programs
/// labeled negative for every detector. Emits one .mir file per case and a
/// manifest.json that Scorecard.h scores against. Fully determined by the
/// spec — regenerating with the same spec reproduces the checked-in corpus
/// byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_EVALCORPUS_H
#define RUSTSIGHT_TESTGEN_EVALCORPUS_H

#include <cstdint>
#include <string>

namespace rs::testgen {

/// Shape of the written corpus. Defaults satisfy the evaluation floor:
/// 10 mutations x 3 positives + 10 x 2 benign twins + 15 clean = 65 cases,
/// 30 positives, 35 negatives — plus, when CrossFileCases is set, the
/// multi-file interprocedural pairs below.
struct EvalCorpusSpec {
  uint64_t BaseSeed = 9000;
  unsigned PositivesPerMutation = 3;
  unsigned BenignPerMutation = 2;
  unsigned CleanCases = 15;

  /// Emit the cross-file pairs: for each of use-after-free, double-lock
  /// and ABBA lock-order, one buggy (use-file, def-file) pair whose bug
  /// only exists when the whole-program link resolves the callee across
  /// the file boundary, and one benign twin pair. Use-files carry the
  /// positive/negative label; def-files are labeled clean ("*"). Callee
  /// names are unique per case so first-definition-wins extern resolution
  /// can never cross-wire a benign twin to a buggy callee.
  bool CrossFileCases = true;
};

/// Writes the corpus into \p Dir (created if needed): one "<pattern>_bug_N
/// .mir" / "<pattern>_ok_N.mir" per injected case, "clean_N.mir" per clean
/// case, and "manifest.json". Returns the number of cases written.
size_t writeEvalCorpus(const std::string &Dir,
                       const EvalCorpusSpec &Spec = EvalCorpusSpec());

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_EVALCORPUS_H

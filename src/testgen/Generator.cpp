#include "testgen/Generator.h"

#include "mir/Builder.h"
#include "support/Rng.h"

#include <map>
#include <optional>
#include <vector>

using namespace rs;
using namespace rs::testgen;
using namespace rs::mir;

namespace {

/// Signature of an already-generated function, kept so later functions can
/// call earlier ones (a DAG: no recursion, guaranteed termination).
struct CalleeInfo {
  std::string Name;
  std::vector<const Type *> ArgTys;
  const Type *RetTy = nullptr; ///< Null for unit.
  bool TakesMutex = false;     ///< Any arg is &Mutex<i32>.
};

/// Locals that are initialized and storage-live on every path at the
/// current program point, keyed by type. Branch bodies work on a copy, so
/// locals born under a condition never leak to the join point (which would
/// be a real maybe-uninitialized read, and the generator must emit none).
struct Pool {
  std::map<const Type *, std::vector<LocalId>> ByType;

  void add(const Type *Ty, LocalId L) { ByType[Ty].push_back(L); }

  /// A random pool local of \p Ty, or nullopt when none exists.
  std::optional<LocalId> pick(const Type *Ty, Rng &R) const {
    auto It = ByType.find(Ty);
    if (It == ByType.end() || It->second.empty())
      return std::nullopt;
    return It->second[R.below(It->second.size())];
  }
};

/// Generates the body of one function.
class FnGen {
public:
  FnGen(Module &M, Rng &R, const GenConfig &C,
        const std::vector<CalleeInfo> &Callees, const CalleeInfo &Sig)
      : R(R), C(C), Callees(Callees), FB(M, Sig.Name, Sig.RetTy),
        TC(M.types()) {
    for (const Type *Ty : Sig.ArgTys) {
      LocalId A = FB.addArg(Ty);
      if (Ty->isRef() && Ty->pointee()->isAdt() &&
          Ty->pointee()->adtName() == "Mutex")
        MutexArg = A;
      else
        Vars.add(Ty, A);
    }
  }

  void emit() {
    emitRegion(C.MaxDepth, Vars);
    emitReturn();
    FB.finish();
  }

private:
  const Type *i32() { return TC.getI32(); }

  Operand intOperand(const Type *Ty, Pool &P) {
    if (auto L = P.pick(Ty, R); L && R.chance(2, 3))
      return Operand::copy(Place(*L));
    return Operand::constant(
        ConstValue::makeInt(static_cast<int64_t>(R.below(100))));
  }

  Operand boolOperand(Pool &P) {
    if (auto L = P.pick(TC.getBool(), R); L && R.chance(2, 3))
      return Operand::copy(Place(*L));
    return Operand::constant(ConstValue::makeBool(R.chance(1, 2)));
  }

  /// A new initialized, storage-live local holding an arithmetic result.
  LocalId emitArith(const Type *Ty, Pool &P) {
    static const BinOp Ops[] = {BinOp::Add,    BinOp::Sub,   BinOp::Mul,
                                BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor};
    LocalId T = FB.addLocal(Ty);
    FB.storageLive(T);
    FB.assign(Place(T), Rvalue::binary(Ops[R.below(6)], intOperand(Ty, P),
                                       intOperand(Ty, P)));
    return T;
  }

  /// A new bool local from an integer comparison.
  LocalId emitCompare(Pool &P) {
    static const BinOp Ops[] = {BinOp::Lt, BinOp::Le, BinOp::Eq, BinOp::Ne};
    LocalId T = FB.addLocal(TC.getBool());
    FB.storageLive(T);
    FB.assign(Place(T), Rvalue::binary(Ops[R.below(4)], intOperand(i32(), P),
                                       intOperand(i32(), P)));
    return T;
  }

  /// A short-lived temporary: live, computed, dead — never escapes.
  void emitBracketedTemp(Pool &P) {
    LocalId T = emitArith(i32(), P);
    FB.storageDead(T);
  }

  /// Tuple or struct aggregate build plus a field read.
  void emitAggregate(Pool &P) {
    bool UsePair = R.chance(1, 2);
    LocalId A = FB.addLocal(UsePair ? TC.getAdt("Pair")
                                    : TC.getTuple({i32(), i32()}));
    FB.storageLive(A);
    OperandList Fields = {intOperand(i32(), P), intOperand(i32(), P)};
    FB.assign(Place(A), UsePair ? Rvalue::aggregate("Pair", std::move(Fields))
                                : Rvalue::tuple(std::move(Fields)));
    LocalId E = FB.addLocal(i32());
    FB.storageLive(E);
    FB.assign(Place(E),
              Rvalue::use(Operand::copy(Place(A).project(
                  ProjectionElem::field(static_cast<unsigned>(R.below(2)))))));
    P.add(i32(), E);
  }

  /// Safe heap round trip: Box::new, read through the box, drop.
  void emitHeap(Pool &P) {
    const Type *BoxU8 = TC.getAdt("Box", {TC.getPrim(PrimKind::U8)});
    LocalId B = FB.addLocal(BoxU8);
    LocalId T = FB.addLocal(TC.getPrim(PrimKind::U8));
    FB.storageLive(B);
    FB.call(Place(B), "Box::new",
            {Operand::constant(
                ConstValue::makeInt(static_cast<int64_t>(R.below(256))))});
    FB.storageLive(T);
    FB.assign(Place(T), Rvalue::use(Operand::copy(
                            Place(B).project(ProjectionElem::deref()))));
    FB.drop(Place(B));
    FB.storageDead(B);
    P.add(TC.getPrim(PrimKind::U8), T);
  }

  /// Safe critical section: lock, read the guarded value, release.
  void emitLock(Pool &P) {
    const Type *Guard = TC.getAdt("MutexGuard", {i32()});
    LocalId G = FB.addLocal(Guard);
    FB.storageLive(G);
    FB.call(Place(G), "Mutex::lock", {Operand::copy(Place(*MutexArg))});
    LocalId T = FB.addLocal(i32());
    FB.storageLive(T);
    FB.assign(Place(T), Rvalue::use(Operand::copy(
                            Place(G).project(ProjectionElem::deref()))));
    FB.storageDead(G);
    P.add(i32(), T);
  }

  /// A call to an earlier generated function with synthesizable arguments.
  void emitCall(Pool &P) {
    std::vector<const CalleeInfo *> Eligible;
    for (const CalleeInfo &CI : Callees)
      if (!CI.TakesMutex || MutexArg)
        Eligible.push_back(&CI);
    if (Eligible.empty())
      return emitBracketedTemp(P);
    const CalleeInfo &CI = *Eligible[R.below(Eligible.size())];
    OperandList Args;
    for (const Type *Ty : CI.ArgTys) {
      if (Ty->isRef())
        Args.push_back(Operand::copy(Place(*MutexArg)));
      else if (Ty->isPrim() && Ty->prim() == PrimKind::Bool)
        Args.push_back(boolOperand(P));
      else
        Args.push_back(intOperand(Ty, P));
    }
    if (CI.RetTy) {
      LocalId D = FB.addLocal(CI.RetTy);
      FB.storageLive(D);
      FB.call(Place(D), CI.Name, std::move(Args));
      P.add(CI.RetTy, D);
    } else {
      LocalId D = FB.addLocal(TC.getUnit());
      FB.call(Place(D), CI.Name, std::move(Args));
    }
  }

  /// if/else on a fresh comparison; both arms emit a scoped region and
  /// rejoin. Arms work on pool copies so arm-born locals cannot escape.
  void emitBranch(unsigned Depth, Pool &P) {
    LocalId Cond = emitCompare(P);
    BlockId Then = FB.newBlock();
    BlockId Else = FB.newBlock();
    BlockId Join = FB.newBlock();
    FB.switchInt(Operand::copy(Place(Cond)), {{1, Then}}, Else);
    FB.setInsertPoint(Then);
    Pool ThenP = P;
    emitRegion(Depth - 1, ThenP);
    FB.gotoBlock(Join);
    FB.setInsertPoint(Else);
    Pool ElseP = P;
    emitRegion(Depth - 1, ElseP);
    FB.gotoBlock(Join);
    FB.setInsertPoint(Join);
  }

  /// A counted loop, always terminating: i ranges over [0, K), K <= 4.
  void emitLoop(unsigned Depth, Pool &P) {
    LocalId I = FB.addLocal(i32());
    FB.storageLive(I);
    FB.assign(Place(I),
              Rvalue::use(Operand::constant(ConstValue::makeInt(0))));
    int64_t Limit = static_cast<int64_t>(R.range(1, 4));
    BlockId Header = FB.newBlock();
    BlockId Body = FB.newBlock();
    BlockId Exit = FB.newBlock();
    FB.gotoBlock(Header);
    FB.setInsertPoint(Header);
    LocalId Cond = FB.addLocal(TC.getBool());
    FB.storageLive(Cond);
    FB.assign(Place(Cond),
              Rvalue::binary(BinOp::Lt, Operand::copy(Place(I)),
                             Operand::constant(ConstValue::makeInt(Limit))));
    FB.switchInt(Operand::copy(Place(Cond)), {{1, Body}}, Exit);
    FB.setInsertPoint(Body);
    Pool BodyP = P;
    emitRegion(Depth - 1, BodyP);
    FB.assign(Place(I),
              Rvalue::binary(BinOp::Add, Operand::copy(Place(I)),
                             Operand::constant(ConstValue::makeInt(1))));
    FB.gotoBlock(Header);
    FB.setInsertPoint(Exit);
    P.add(i32(), I);
  }

  /// A straight-line-or-nested region of a few statements.
  void emitRegion(unsigned Depth, Pool &P) {
    unsigned N = 1 + static_cast<unsigned>(R.below(C.MaxRegionStatements));
    for (unsigned S = 0; S != N; ++S) {
      unsigned Roll = static_cast<unsigned>(R.below(100));
      if (Depth > 0 && Roll < 12)
        emitBranch(Depth, P);
      else if (Depth > 0 && Roll < 20)
        emitLoop(Depth, P);
      else if (C.WithCalls && Roll < 32)
        emitCall(P);
      else if (C.WithHeap && Roll < 42)
        emitHeap(P);
      else if (C.WithLocks && MutexArg && Roll < 52)
        emitLock(P);
      else if (C.WithAggregates && Roll < 62)
        emitAggregate(P);
      else if (Roll < 72)
        emitBracketedTemp(P);
      else if (Roll < 82)
        P.add(TC.getBool(), emitCompare(P));
      else
        P.add(i32(), emitArith(i32(), P));
    }
  }

  void emitReturn() {
    if (DeclaredRet && !DeclaredRet->isUnit()) {
      if (auto L = Vars.pick(DeclaredRet, R))
        FB.assign(Place(FB.returnLocal()),
                  Rvalue::use(Operand::copy(Place(*L))));
      else if (DeclaredRet->isPrim() && DeclaredRet->prim() == PrimKind::Bool)
        FB.assign(Place(FB.returnLocal()),
                  Rvalue::use(Operand::constant(
                      ConstValue::makeBool(R.chance(1, 2)))));
      else
        FB.assign(Place(FB.returnLocal()),
                  Rvalue::use(Operand::constant(ConstValue::makeInt(
                      static_cast<int64_t>(R.below(100))))));
    }
    FB.ret();
  }

public:
  const Type *DeclaredRet = nullptr;

private:
  Rng &R;
  const GenConfig &C;
  const std::vector<CalleeInfo> &Callees;
  FunctionBuilder FB;
  TypeContext &TC;
  std::optional<LocalId> MutexArg;
  Pool Vars;
};

} // namespace

Module ProgramGenerator::generate() {
  Module M;
  Rng R(Config.Seed);
  TypeContext &TC = M.types();

  if (Config.WithAggregates) {
    StructDecl Pair;
    Pair.Name = Symbol::intern("Pair");
    Pair.Fields.emplace_back("x", TC.getI32());
    Pair.Fields.emplace_back("y", TC.getI32());
    M.addStruct(std::move(Pair));
  }

  unsigned NumFns = static_cast<unsigned>(
      R.range(Config.MinFunctions, Config.MaxFunctions));
  std::vector<CalleeInfo> Callees;
  for (unsigned I = 0; I != NumFns; ++I) {
    CalleeInfo Sig;
    Sig.Name = "gen_" + std::to_string(Config.Seed) + "_" + std::to_string(I);

    unsigned NumArgs = static_cast<unsigned>(R.below(3));
    for (unsigned A = 0; A != NumArgs; ++A) {
      switch (R.below(3)) {
      case 0:
        Sig.ArgTys.push_back(TC.getI32());
        break;
      case 1:
        Sig.ArgTys.push_back(TC.getBool());
        break;
      default:
        Sig.ArgTys.push_back(TC.getPrim(PrimKind::U8));
        break;
      }
    }
    if (Config.WithLocks && R.chance(1, 3)) {
      Sig.ArgTys.push_back(TC.getRef(TC.getAdt("Mutex", {TC.getI32()}),
                                     /*Mut=*/false));
      Sig.TakesMutex = true;
    }
    switch (R.below(4)) {
    case 0:
      Sig.RetTy = TC.getI32();
      break;
    case 1:
      Sig.RetTy = TC.getBool();
      break;
    case 2:
      Sig.RetTy = TC.getPrim(PrimKind::U8);
      break;
    default:
      Sig.RetTy = nullptr; // Unit.
      break;
    }

    FnGen G(M, R, Config, Callees, Sig);
    G.DeclaredRet = Sig.RetTy;
    G.emit();
    Callees.push_back(std::move(Sig));
  }
  return M;
}

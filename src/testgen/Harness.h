//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed-sweep harness: for each seed in a range, generate a module
/// (optionally with an injected mutation), then run the parser, verifier,
/// and every oracle over it. Violations are delta-minimized and written as
/// replayable repro files. The sweep parallelizes across seeds with the
/// same ordinal-merge discipline as the analysis engine, so its report —
/// including the fold digest over all generated module texts — is
/// byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_HARNESS_H
#define RUSTSIGHT_TESTGEN_HARNESS_H

#include "testgen/Generator.h"
#include "testgen/Mutators.h"
#include "testgen/Oracles.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rs::testgen {

/// One seed sweep.
struct SweepConfig {
  uint64_t SeedStart = 1;
  /// Must be non-zero: runSweep reports a "config" violation for an empty
  /// sweep rather than a vacuously clean result.
  uint64_t SeedCount = 100;

  /// Worker threads; 0 picks the scheduler default.
  unsigned Jobs = 1;

  /// When non-empty, each violation's minimized repro is written here as
  /// "seed<N>_<oracle>.mir" with a comment header describing the failure.
  std::string RegressDir;

  /// Interleave clean, bug-injected, and benign-twin modules (two of every
  /// three seeds carry an injection). Off = clean generator output only.
  bool WithMutations = true;

  /// Generator shape knobs; Seed is overridden per sweep seed.
  GenConfig Gen;
};

/// One oracle or pipeline failure at one seed.
struct SweepViolation {
  uint64_t Seed = 0;
  std::string Oracle;        ///< Oracle name, or "crash".
  std::string Message;
  std::string MinimizedText; ///< Delta-minimized module text.
  std::string ReproPath;     ///< File under RegressDir, "" if not written.
};

struct SweepReport {
  uint64_t SeedsRun = 0;
  /// FNV-1a fold over every generated module text, in seed order — equal
  /// digests mean byte-identical sweeps (the determinism contract).
  uint64_t Digest = 0;
  std::vector<SweepViolation> Violations;

  bool clean() const { return Violations.empty(); }

  /// "swept N seeds, digest <hex>: OK" or a per-violation listing.
  std::string renderText() const;
};

/// The module a sweep checks at \p Seed: generated from \p C.Gen, plus the
/// seed-determined mutation when C.WithMutations. Exposed so determinism
/// tests can compare texts without running oracles. \p LabelOut (optional)
/// receives the injected label, or nullopt for clean/unmutated seeds.
std::string sweepModuleText(const SweepConfig &C, uint64_t Seed,
                            std::optional<InjectedBug> *LabelOut = nullptr);

/// Runs the sweep, parallel across seeds.
SweepReport runSweep(const SweepConfig &C);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_HARNESS_H

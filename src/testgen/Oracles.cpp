//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "testgen/Oracles.h"

#include "detectors/Detector.h"
#include "interp/Interp.h"
#include "mir/Parser.h"
#include "mir/Verifier.h"
#include "support/StringUtils.h"
#include "testgen/Metamorph.h"
#include "vm/Lower.h"
#include "vm/Vm.h"

#include <map>
#include <set>

namespace rs::testgen {

namespace {

constexpr std::string_view RenameSuffix = "__mm";

/// Per-(function, kind) finding counts — the verdict signature the
/// metamorphic oracles compare. Messages are excluded on purpose: they
/// legitimately embed local spellings the transforms change.
using Signature = std::map<std::pair<std::string, detectors::BugKind>, unsigned>;

Signature findingSignature(const mir::Module &M) {
  detectors::DiagnosticEngine Diags;
  detectors::runAllDetectors(M, Diags);
  Signature Sig;
  for (const detectors::Diagnostic &D : Diags.diagnostics())
    ++Sig[{D.Function, D.Kind}];
  return Sig;
}

std::string describeSignatureDiff(const Signature &A, const Signature &B) {
  for (const auto &[Key, N] : A) {
    auto It = B.find(Key);
    unsigned M = It == B.end() ? 0 : It->second;
    if (M != N)
      return Key.first + ": " + detectors::bugKindName(Key.second) + " x" +
             std::to_string(N) + " became x" + std::to_string(M);
  }
  for (const auto &[Key, M] : B)
    if (!A.count(Key))
      return Key.first + ": " + detectors::bugKindName(Key.second) +
             " x0 became x" + std::to_string(M);
  return "signatures differ";
}

/// Strips the rename suffix so renamed signatures compare against the
/// original spelling.
Signature stripSuffix(const Signature &Sig) {
  Signature Out;
  for (const auto &[Key, N] : Sig) {
    std::string Fn = Key.first;
    if (Fn.size() > RenameSuffix.size() && endsWith(Fn, RenameSuffix))
      Fn.resize(Fn.size() - RenameSuffix.size());
    Out[{Fn, Key.second}] += N;
  }
  return Out;
}

OracleResult fail(std::string Oracle, std::string Message) {
  return {std::move(Oracle), false, std::move(Message)};
}

OracleResult pass(std::string Oracle) { return {std::move(Oracle), true, ""}; }

} // namespace

OracleResult checkRoundTrip(const mir::Module &M) {
  std::string P1 = M.toString();
  auto R1 = mir::Parser::parse(P1, "<round-trip-1>");
  if (!R1)
    return fail("round-trip", "printed module failed to reparse: " +
                                  R1.error().toString());
  std::string P2 = R1->toString();
  auto R2 = mir::Parser::parse(P2, "<round-trip-2>");
  if (!R2)
    return fail("round-trip", "second print failed to reparse: " +
                                  R2.error().toString());
  std::string P3 = R2->toString();
  // One absorbing cycle: DebugNames print as comments that the parser
  // drops, so P1 may differ from P2 — but P2 must be a fixpoint.
  if (P2 != P3)
    return fail("round-trip", "print->parse->print is not a fixpoint");
  return pass("round-trip");
}

OracleResult checkRenameInvariance(const mir::Module &M) {
  std::optional<mir::Module> Renamed = renameFunctions(M, RenameSuffix);
  if (!Renamed)
    return fail("rename", "renamed module failed to parse");
  std::vector<std::string> Errors;
  if (!mir::verifyModule(*Renamed, Errors))
    return fail("rename", "renamed module failed to verify: " + Errors[0]);
  Signature Before = findingSignature(M);
  Signature After = stripSuffix(findingSignature(*Renamed));
  if (Before != After)
    return fail("rename", describeSignatureDiff(Before, After));
  return pass("rename");
}

OracleResult checkPermuteInvariance(const mir::Module &M, uint64_t Seed) {
  // Module is move-only; reparse our own print to get a mutable copy.
  auto Copy = mir::Parser::parse(M.toString(), "<permute>");
  if (!Copy)
    return fail("permute", "module failed to reparse: " +
                               Copy.error().toString());
  permuteBlocks(*Copy, Seed);
  std::vector<std::string> Errors;
  if (!mir::verifyModule(*Copy, Errors))
    return fail("permute", "permuted module failed to verify: " + Errors[0]);
  Signature Before = findingSignature(M);
  Signature After = findingSignature(*Copy);
  if (Before != After)
    return fail("permute", describeSignatureDiff(Before, After));
  return pass("permute");
}

OracleResult checkInterpVsUafDetector(const mir::Module &M) {
  interp::Interpreter::Options Opts;
  Opts.StepLimit = 200000;
  interp::Interpreter I(M, Opts);
  std::vector<interp::Trap> Traps = I.runAll();

  std::set<std::string> StaticUaf;
  {
    detectors::DiagnosticEngine Diags;
    detectors::runAllDetectors(M, Diags);
    for (const detectors::Diagnostic &D : Diags.diagnostics())
      if (D.Kind == detectors::BugKind::UseAfterFree)
        StaticUaf.insert(D.Function);
  }

  for (const interp::Trap &T : Traps) {
    if (T.Kind != interp::TrapKind::UseAfterFree &&
        T.Kind != interp::TrapKind::UseAfterScope)
      continue;
    // A dynamic use-after-free the static detector missed entirely: the
    // detector is built to over-approximate the interpreter.
    if (!StaticUaf.count(T.Function))
      return fail("interp-uaf", "interpreter trapped " +
                                    std::string(interp::trapKindName(T.Kind)) +
                                    " in '" + T.Function +
                                    "' with no use-after-free finding there");
  }
  return pass("interp-uaf");
}

OracleResult checkVmParity(const mir::Module &M) {
  vm::Program P = vm::compile(M);
  for (const auto &Fn : M.functions()) {
    interp::Interpreter::Options IOpts;
    IOpts.StepLimit = 200000;
    interp::Interpreter I(M, IOpts);
    interp::ExecResult RI = I.run(Fn.Name);

    vm::Vm::Options VOpts;
    VOpts.StepLimit = 200000;
    vm::Vm V(P, VOpts);
    interp::ExecResult RV = V.run(Fn.Name);

    auto Describe = [](const interp::ExecResult &R) {
      return R.Ok ? "completed in " + std::to_string(R.Steps) + " steps"
                  : R.Error->toString() + " after " +
                        std::to_string(R.Steps) + " steps";
    };
    if (RI.Ok != RV.Ok || RI.Steps != RV.Steps)
      return fail("vm-parity", "'" + Fn.Name.str() + "': interp " + Describe(RI) +
                                   ", vm " + Describe(RV));
    if (!RI.Ok && (RI.Error->Kind != RV.Error->Kind ||
                   RI.Error->Function != RV.Error->Function))
      return fail("vm-parity", "'" + Fn.Name.str() + "': interp " + Describe(RI) +
                                   ", vm " + Describe(RV));
    if (RI.Ok && RI.Return.toString() != RV.Return.toString())
      return fail("vm-parity", "'" + Fn.Name.str() + "': interp returned " +
                                   RI.Return.toString() + ", vm returned " +
                                   RV.Return.toString());
  }
  return pass("vm-parity");
}

OracleResult checkDetectorExpectation(const mir::Module &M,
                                      const InjectedBug &Label) {
  detectors::BugKind Kind;
  if (!detectors::bugKindFromName(Label.Detector, Kind))
    return fail("expectation", "unknown detector '" + Label.Detector + "'");
  detectors::DiagnosticEngine Diags;
  detectors::runAllDetectors(M, Diags);
  size_t Hits = Diags.countOfKind(Kind);
  if (Label.Positive && Hits == 0)
    return fail("expectation", std::string(mutationName(Label.M)) +
                                   " injected in '" + Label.Function +
                                   "' but " + Label.Detector +
                                   " reported nothing");
  if (!Label.Positive && Hits != 0)
    return fail("expectation", std::string(mutationName(Label.M)) +
                                   " benign twin in '" + Label.Function +
                                   "' but " + Label.Detector + " reported " +
                                   std::to_string(Hits) + " finding(s)");
  return pass("expectation");
}

std::vector<OracleResult> failedOracles(const mir::Module &M,
                                        const InjectedBug *Label,
                                        uint64_t Seed) {
  std::vector<OracleResult> Failures;
  auto Keep = [&Failures](OracleResult R) {
    if (!R.Ok)
      Failures.push_back(std::move(R));
  };
  Keep(checkRoundTrip(M));
  Keep(checkRenameInvariance(M));
  Keep(checkPermuteInvariance(M, Seed));
  Keep(checkInterpVsUafDetector(M));
  Keep(checkVmParity(M));
  if (Label)
    Keep(checkDetectorExpectation(M, *Label));
  return Failures;
}

} // namespace rs::testgen

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging for failing generated modules: remove whole
/// functions, then individual statements, keeping every removal that
/// preserves the caller's failure predicate. The result is the small repro
/// that goes into tests/mir/regress/ — a human debugs a 10-line module, not
/// the 200-line program the sweep happened to generate.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_TESTGEN_MINIMIZER_H
#define RUSTSIGHT_TESTGEN_MINIMIZER_H

#include <functional>
#include <string>

namespace rs::testgen {

/// Returns true while the candidate module text still exhibits the failure
/// being minimized. The predicate must be deterministic.
using TextPredicate = std::function<bool(const std::string &)>;

/// Shrinks \p Text while \p StillFails holds, alternating function-level and
/// statement-level removal until a round removes nothing (or \p MaxRounds).
/// Candidates that no longer parse are never offered to the predicate; if
/// \p Text itself does not parse it is returned unchanged.
std::string minimizeModuleText(std::string Text,
                               const TextPredicate &StillFails,
                               unsigned MaxRounds = 4);

} // namespace rs::testgen

#endif // RUSTSIGHT_TESTGEN_MINIMIZER_H

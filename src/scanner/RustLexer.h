//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight lexer for Rust surface syntax, sufficient for the unsafe-
/// usage scanner: identifiers/keywords, punctuation, string/char/numeric
/// literals, lifetimes, and comments (line, nested block, and doc).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SCANNER_RUSTLEXER_H
#define RUSTSIGHT_SCANNER_RUSTLEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace rs::scanner {

/// Rust token categories (coarse; the scanner needs structure, not types).
enum class RustTokKind {
  Eof,
  Ident,     ///< Identifier or keyword.
  Lifetime,  ///< 'a (not a char literal).
  Number,
  String,    ///< "..." | r"..." | r#"..."# | b"...".
  CharLit,   ///< 'x'.
  Punct,     ///< One punctuation character.
};

/// One token. Text views into the source buffer.
struct RustToken {
  RustTokKind K = RustTokKind::Eof;
  std::string_view Text;
  unsigned Line = 1;

  bool isIdent(std::string_view S) const {
    return K == RustTokKind::Ident && Text == S;
  }
  bool isPunct(char C) const {
    return K == RustTokKind::Punct && Text.size() == 1 && Text[0] == C;
  }
};

/// Per-line classification used for LOC counting.
struct LineCounts {
  unsigned Code = 0;
  unsigned Comment = 0;
  unsigned Blank = 0;
};

/// Tokenizes an entire Rust source buffer. Comments and whitespace are
/// skipped but counted into the returned LineCounts.
class RustLexer {
public:
  explicit RustLexer(std::string_view Buffer) : Buf(Buffer) {}

  /// Tokenizes everything; fills \p Counts with the line classification.
  std::vector<RustToken> tokenize(LineCounts &Counts);

private:
  std::string_view Buf;
};

} // namespace rs::scanner

#endif // RUSTSIGHT_SCANNER_RUSTLEXER_H

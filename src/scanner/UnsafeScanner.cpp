#include "scanner/UnsafeScanner.h"

#include "scanner/RustLexer.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace rs::scanner;

void ScanStats::merge(const ScanStats &Other) {
  CodeLines += Other.CodeLines;
  CommentLines += Other.CommentLines;
  BlankLines += Other.BlankLines;
  Files += Other.Files;
  UnsafeBlocks += Other.UnsafeBlocks;
  UnsafeFns += Other.UnsafeFns;
  UnsafeTraits += Other.UnsafeTraits;
  UnsafeImpls += Other.UnsafeImpls;
  TotalFns += Other.TotalFns;
  InteriorUnsafeFns += Other.InteriorUnsafeFns;
  RawPtrDerefs += Other.RawPtrDerefs;
  CallsInUnsafe += Other.CallsInUnsafe;
  StaticMutUses += Other.StaticMutUses;
  UnsafeLines += Other.UnsafeLines;
}

namespace {

bool isRustKeyword(std::string_view S) {
  static const std::set<std::string_view> Keywords = {
      "as",     "break",  "const",  "continue", "crate", "dyn",    "else",
      "enum",   "extern", "false",  "fn",       "for",   "if",     "impl",
      "in",     "let",    "loop",   "match",    "mod",   "move",   "mut",
      "pub",    "ref",    "return", "self",     "Self",  "static", "struct",
      "super",  "trait",  "true",   "type",     "unsafe","use",    "where",
      "while",  "async",  "await",  "union"};
  return Keywords.count(S) != 0;
}

/// Token-stream walker implementing the scan.
class Walker {
public:
  Walker(const std::vector<RustToken> &Toks, ScanStats &Stats)
      : Toks(Toks), Stats(Stats) {}

  void run();

private:
  const RustToken &tok(size_t I) const {
    static const RustToken EofTok;
    return I < Toks.size() ? Toks[I] : EofTok;
  }

  /// A brace scope with the reason it was opened.
  enum class ScopeKind { Plain, UnsafeBlock, FnBody };
  struct Scope {
    ScopeKind K;
    bool FnIsUnsafe = false;     ///< FnBody only.
    bool FnSawUnsafe = false;    ///< FnBody only: contains an unsafe block.
  };

  bool inUnsafeContext() const {
    for (const Scope &S : Scopes)
      if (S.K == ScopeKind::UnsafeBlock ||
          (S.K == ScopeKind::FnBody && S.FnIsUnsafe))
        return true;
    return false;
  }

  Scope *currentFn() {
    for (size_t I = Scopes.size(); I != 0; --I)
      if (Scopes[I - 1].K == ScopeKind::FnBody)
        return &Scopes[I - 1];
    return nullptr;
  }

  void collectStaticMuts();

  const std::vector<RustToken> &Toks;
  ScanStats &Stats;
  std::vector<Scope> Scopes;
  std::set<std::string_view> StaticMutNames;
  std::set<unsigned> UnsafeLineSet;
};

void Walker::collectStaticMuts() {
  for (size_t I = 0; I + 2 < Toks.size(); ++I)
    if (Toks[I].isIdent("static") && Toks[I + 1].isIdent("mut") &&
        Toks[I + 2].K == RustTokKind::Ident)
      StaticMutNames.insert(Toks[I + 2].Text);
}

void Walker::run() {
  collectStaticMuts();

  // Pending markers between a keyword and the brace that opens its body.
  bool PendingUnsafeBlock = false; // "unsafe" seen, expecting '{'.
  bool PendingFnBody = false;      // "fn" seen, expecting '{' or ';'.
  bool PendingFnIsUnsafe = false;

  for (size_t I = 0; I != Toks.size(); ++I) {
    const RustToken &T = Toks[I];

    if (T.isIdent("unsafe")) {
      // Find what this 'unsafe' modifies: fn / trait / impl / block.
      // Skip over qualifiers like extern "C".
      size_t J = I + 1;
      while (J < Toks.size() &&
             (tok(J).isIdent("extern") || tok(J).K == RustTokKind::String))
        ++J;
      if (tok(J).isIdent("fn")) {
        ++Stats.UnsafeFns;
        ++Stats.TotalFns;
        PendingFnBody = true;
        PendingFnIsUnsafe = true;
        I = J; // Continue after 'fn'; the body '{' is handled below.
        continue;
      }
      if (tok(J).isIdent("trait")) {
        ++Stats.UnsafeTraits;
        I = J;
        continue;
      }
      if (tok(J).isIdent("impl")) {
        ++Stats.UnsafeImpls;
        I = J;
        continue;
      }
      PendingUnsafeBlock = true;
      continue;
    }

    if (T.isIdent("fn")) {
      ++Stats.TotalFns;
      PendingFnBody = true;
      PendingFnIsUnsafe = false;
      continue;
    }

    if (T.isPunct(';')) {
      // A bodyless fn declaration (trait method signature).
      PendingFnBody = false;
      PendingUnsafeBlock = false;
      continue;
    }

    if (T.isPunct('{')) {
      Scope S{ScopeKind::Plain, false, false};
      if (PendingUnsafeBlock) {
        S.K = ScopeKind::UnsafeBlock;
        ++Stats.UnsafeBlocks;
        if (Scope *Fn = currentFn())
          Fn->FnSawUnsafe = true;
        PendingUnsafeBlock = false;
      } else if (PendingFnBody) {
        S.K = ScopeKind::FnBody;
        S.FnIsUnsafe = PendingFnIsUnsafe;
        PendingFnBody = false;
      }
      Scopes.push_back(S);
      continue;
    }
    if (T.isPunct('}')) {
      if (!Scopes.empty()) {
        Scope S = Scopes.back();
        Scopes.pop_back();
        if (S.K == ScopeKind::FnBody && !S.FnIsUnsafe && S.FnSawUnsafe)
          ++Stats.InteriorUnsafeFns;
      }
      continue;
    }

    if (!inUnsafeContext())
      continue;

    UnsafeLineSet.insert(T.Line);

    // Operation classification inside unsafe code.
    if (T.isPunct('*')) {
      // Unary dereference: '*' introducing an expression (previous token
      // cannot end one).
      const RustToken &Prev = I == 0 ? RustToken() : Toks[I - 1];
      bool PrevEndsExpr =
          Prev.K == RustTokKind::Number || Prev.K == RustTokKind::String ||
          Prev.isPunct(')') || Prev.isPunct(']') ||
          (Prev.K == RustTokKind::Ident && !isRustKeyword(Prev.Text));
      const RustToken &Next = tok(I + 1);
      bool NextStartsExpr =
          (Next.K == RustTokKind::Ident &&
           (!isRustKeyword(Next.Text) || Next.Text == "self")) ||
          Next.isPunct('(') || Next.isPunct('*');
      // Exclude type position "*const T" / "*mut T".
      bool IsTypePosition = Next.isIdent("const") || Next.isIdent("mut");
      if (!PrevEndsExpr && NextStartsExpr && !IsTypePosition)
        ++Stats.RawPtrDerefs;
      continue;
    }
    if (T.K == RustTokKind::Ident && !isRustKeyword(T.Text)) {
      if (StaticMutNames.count(T.Text)) {
        ++Stats.StaticMutUses;
        continue;
      }
      if (tok(I + 1).isPunct('('))
        ++Stats.CallsInUnsafe;
      continue;
    }
  }
  Stats.UnsafeLines = static_cast<unsigned>(UnsafeLineSet.size());
}

} // namespace

ScanStats UnsafeScanner::scanSource(std::string_view Source) const {
  ScanStats Stats;
  Stats.Files = 1;
  LineCounts Counts;
  RustLexer Lexer(Source);
  std::vector<RustToken> Toks = Lexer.tokenize(Counts);
  Stats.CodeLines = Counts.Code;
  Stats.CommentLines = Counts.Comment;
  Stats.BlankLines = Counts.Blank;
  Walker(Toks, Stats).run();
  return Stats;
}

ScanStats UnsafeScanner::scanFile(const std::string &Path) const {
  std::ifstream In(Path);
  if (!In)
    return ScanStats();
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();
  return scanSource(Source);
}

ScanStats UnsafeScanner::scanDirectory(const std::string &Dir) const {
  ScanStats Total;
  std::error_code EC;
  std::filesystem::recursive_directory_iterator It(Dir, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    if (It->path().extension() != ".rs")
      continue;
    Total.merge(scanFile(It->path().string()));
  }
  return Total;
}

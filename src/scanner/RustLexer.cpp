#include "scanner/RustLexer.h"

#include "support/StringUtils.h"

using namespace rs;
using namespace rs::scanner;

namespace {

/// Single-pass tokenizer state.
class LexerImpl {
public:
  LexerImpl(std::string_view Buf) : Buf(Buf) {}

  std::vector<RustToken> run(LineCounts &Counts);

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Buf.size() ? Buf[Pos + Ahead] : '\0';
  }
  void advance() {
    if (Pos < Buf.size() && Buf[Pos] == '\n')
      ++Line;
    ++Pos;
  }
  void markCode() { touch(LineKind::Code); }
  void markComment() { touch(LineKind::Comment); }

  enum class LineKind { Code, Comment };
  void touch(LineKind K) {
    if (LineMarks.size() < Line + 1)
      LineMarks.resize(Line + 1, 0);
    LineMarks[Line] |= K == LineKind::Code ? 1 : 2;
  }

  void skipLineComment();
  void skipBlockComment();
  bool lexRawString(RustToken &T);
  void lexString(RustToken &T);

  std::string_view Buf;
  size_t Pos = 0;
  unsigned Line = 1;
  std::vector<uint8_t> LineMarks; ///< Bit 0: code, bit 1: comment.

  friend class rs::scanner::RustLexer;
public:
  std::vector<uint8_t> &marks() { return LineMarks; }
  unsigned lastLine() const { return Line; }
};

void LexerImpl::skipLineComment() {
  markComment();
  while (Pos < Buf.size() && Buf[Pos] != '\n') {
    markComment();
    advance();
  }
}

void LexerImpl::skipBlockComment() {
  // Rust block comments nest.
  unsigned Depth = 1;
  markComment();
  advance(); // '/'
  advance(); // '*'
  while (Pos < Buf.size() && Depth != 0) {
    markComment();
    if (peek() == '/' && peek(1) == '*') {
      ++Depth;
      advance();
      advance();
      continue;
    }
    if (peek() == '*' && peek(1) == '/') {
      --Depth;
      advance();
      advance();
      continue;
    }
    advance();
  }
}

bool LexerImpl::lexRawString(RustToken &T) {
  // At 'r' (possibly after 'b'); raw string is r...#..." with N hashes.
  size_t Probe = Pos + 1;
  size_t Hashes = 0;
  while (Probe < Buf.size() && Buf[Probe] == '#') {
    ++Hashes;
    ++Probe;
  }
  if (Probe >= Buf.size() || Buf[Probe] != '"')
    return false;
  size_t Begin = Pos;
  while (Pos <= Probe)
    advance(); // Consume r##...".
  // Scan until '"' followed by Hashes '#'.
  while (Pos < Buf.size()) {
    markCode();
    if (Buf[Pos] == '"') {
      size_t H = 0;
      while (H < Hashes && Pos + 1 + H < Buf.size() &&
             Buf[Pos + 1 + H] == '#')
        ++H;
      if (H == Hashes) {
        for (size_t I = 0; I <= Hashes; ++I)
          advance();
        break;
      }
    }
    advance();
  }
  T.K = RustTokKind::String;
  T.Text = Buf.substr(Begin, Pos - Begin);
  return true;
}

void LexerImpl::lexString(RustToken &T) {
  size_t Begin = Pos;
  advance(); // Opening quote.
  while (Pos < Buf.size() && Buf[Pos] != '"') {
    markCode();
    if (Buf[Pos] == '\\' && Pos + 1 < Buf.size()) {
      advance();
      advance();
      continue;
    }
    advance();
  }
  if (Pos < Buf.size())
    advance(); // Closing quote.
  T.K = RustTokKind::String;
  T.Text = Buf.substr(Begin, Pos - Begin);
}

std::vector<RustToken> LexerImpl::run(LineCounts &Counts) {
  std::vector<RustToken> Toks;
  while (Pos < Buf.size()) {
    char C = peek();

    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      skipLineComment();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      skipBlockComment();
      continue;
    }

    RustToken T;
    T.Line = Line;
    markCode();

    // Raw identifiers and raw strings: r#ident, r"..." / r#"..."#, br"...".
    if ((C == 'r' || (C == 'b' && peek(1) == 'r'))) {
      size_t Save = Pos;
      if (C == 'b')
        advance();
      if (lexRawString(T)) {
        Toks.push_back(T);
        continue;
      }
      Pos = Save;
      if (C == 'r' && peek(1) == '#' && isIdentStart(peek(2))) {
        // Raw identifier r#unsafe: lex as an identifier without the prefix.
        advance();
        advance();
        size_t Begin = Pos;
        while (Pos < Buf.size() && isIdentCont(Buf[Pos]))
          advance();
        T.K = RustTokKind::Ident;
        T.Text = Buf.substr(Begin, Pos - Begin);
        Toks.push_back(T);
        continue;
      }
    }

    if (C == 'b' && peek(1) == '\'') {
      // Byte char literal b'x'.
      size_t Begin = Pos;
      advance();
      advance();
      if (peek() == '\\')
        advance();
      advance();
      if (peek() == '\'')
        advance();
      T.K = RustTokKind::CharLit;
      T.Text = Buf.substr(Begin, Pos - Begin);
      Toks.push_back(T);
      continue;
    }
    if (C == 'b' && peek(1) == '"') {
      advance(); // 'b'
      lexString(T);
      Toks.push_back(T);
      continue;
    }

    if (isIdentStart(C)) {
      size_t Begin = Pos;
      while (Pos < Buf.size() && isIdentCont(Buf[Pos]))
        advance();
      T.K = RustTokKind::Ident;
      T.Text = Buf.substr(Begin, Pos - Begin);
      Toks.push_back(T);
      continue;
    }

    if (isDigit(C)) {
      size_t Begin = Pos;
      while (Pos < Buf.size() &&
             (isIdentCont(Buf[Pos]) || Buf[Pos] == '.') &&
             !(Buf[Pos] == '.' && peek(1) == '.')) {
        if (Buf[Pos] == '.' && !isDigit(peek(1)))
          break;
        advance();
      }
      T.K = RustTokKind::Number;
      T.Text = Buf.substr(Begin, Pos - Begin);
      Toks.push_back(T);
      continue;
    }

    if (C == '"') {
      lexString(T);
      Toks.push_back(T);
      continue;
    }

    if (C == '\'') {
      // Lifetime ('a) or char literal ('a', '\n').
      size_t Begin = Pos;
      if (isIdentStart(peek(1)) && peek(2) != '\'') {
        advance(); // '\''
        while (Pos < Buf.size() && isIdentCont(Buf[Pos]))
          advance();
        T.K = RustTokKind::Lifetime;
        T.Text = Buf.substr(Begin, Pos - Begin);
        Toks.push_back(T);
        continue;
      }
      advance(); // '\''
      if (peek() == '\\')
        advance();
      advance(); // The char.
      if (peek() == '\'')
        advance();
      T.K = RustTokKind::CharLit;
      T.Text = Buf.substr(Begin, Pos - Begin);
      Toks.push_back(T);
      continue;
    }

    // Any other character is a single punctuation token.
    T.K = RustTokKind::Punct;
    T.Text = Buf.substr(Pos, 1);
    advance();
    Toks.push_back(T);
  }

  // Classify lines: code wins over comment; untouched lines are blank.
  unsigned TotalLines = Line;
  if (!Buf.empty() && Buf.back() == '\n')
    --TotalLines;
  Counts = LineCounts();
  for (unsigned L = 1; L <= TotalLines; ++L) {
    uint8_t Mark = L < LineMarks.size() ? LineMarks[L] : 0;
    if (Mark & 1)
      ++Counts.Code;
    else if (Mark & 2)
      ++Counts.Comment;
    else
      ++Counts.Blank;
  }
  return Toks;
}

} // namespace

std::vector<RustToken> RustLexer::tokenize(LineCounts &Counts) {
  return LexerImpl(Buf).run(Counts);
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unsafe-usage scanner: the measurement instrument behind the paper's
/// Section 4. It counts unsafe blocks / functions / traits / impls,
/// interior-unsafe functions (safe functions containing unsafe blocks), LOC,
/// and classifies the operations performed inside unsafe code (raw-pointer
/// dereferences, calls, mutable-static accesses), matching the paper's
/// operation-type breakdown.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SCANNER_UNSAFESCANNER_H
#define RUSTSIGHT_SCANNER_UNSAFESCANNER_H

#include <string>
#include <string_view>
#include <vector>

namespace rs::scanner {

/// Aggregated counts from scanning Rust sources.
struct ScanStats {
  // Line counts.
  unsigned CodeLines = 0;
  unsigned CommentLines = 0;
  unsigned BlankLines = 0;
  unsigned Files = 0;

  // Unsafe constructs (the paper's "unsafe usages": regions + fns + traits).
  unsigned UnsafeBlocks = 0;
  unsigned UnsafeFns = 0;
  unsigned UnsafeTraits = 0;
  unsigned UnsafeImpls = 0;

  // Functions.
  unsigned TotalFns = 0;
  unsigned InteriorUnsafeFns = 0; ///< Safe fns containing unsafe blocks.

  // Operations observed inside unsafe code.
  unsigned RawPtrDerefs = 0;
  unsigned CallsInUnsafe = 0;
  unsigned StaticMutUses = 0;

  /// Source lines carrying at least one token inside unsafe code ("the
  /// amount of unsafe code", Section 2.6's crates.io measurements).
  unsigned UnsafeLines = 0;

  /// Regions + functions + traits, the paper's headline "unsafe usages".
  unsigned totalUnsafeUsages() const {
    return UnsafeBlocks + UnsafeFns + UnsafeTraits;
  }

  /// Accumulates \p Other into this.
  void merge(const ScanStats &Other);
};

/// Scans Rust source text or trees for unsafe usage.
class UnsafeScanner {
public:
  /// Scans one in-memory source buffer.
  ScanStats scanSource(std::string_view Source) const;

  /// Scans one file on disk; returns empty stats if unreadable.
  ScanStats scanFile(const std::string &Path) const;

  /// Recursively scans every .rs file under \p Dir.
  ScanStats scanDirectory(const std::string &Dir) const;
};

} // namespace rs::scanner

#endif // RUSTSIGHT_SCANNER_UNSAFESCANNER_H

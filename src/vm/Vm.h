//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dispatch-loop virtual machine over the register bytecode in
/// Bytecode.h. Semantically equivalent to the tree-walking interpreter in
/// src/interp/ — same value model, same sanitizer checks (use-after-free /
/// use-after-scope, double/invalid free, uninitialized reads,
/// self-deadlock, RefCell borrow panics), same trap classification, and
/// the same step accounting (one step per executed statement and per
/// executed terminator) — but an order of magnitude faster, because call
/// targets, intrinsic kinds, atomic-op names, and jump targets were all
/// resolved at lowering time and the loop walks a flat instruction array
/// with an explicit call stack instead of recursing over the MIR tree.
/// The differential suite (tests/vm/) holds the two engines to identical
/// trap kind, trapping function, and step counts across the generated
/// sweep; bench_vm measures the speedup.
///
/// The VM additionally records *edge coverage*: a hit bit per edge-table
/// entry, accumulated across runs until clearCoverage(). This is what the
/// coverage-guided fuzzer (src/testgen/Fuzz.h) feeds on.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_VM_VM_H
#define RUSTSIGHT_VM_VM_H

#include "support/BitVec.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rs::vm {

class Vm {
public:
  /// Mirrors interp::Interpreter::Options.
  struct Options {
    uint64_t StepLimit = 1000000;
    unsigned MaxCallDepth = 128;
    bool RunSpawnedThreads = true;
  };

  explicit Vm(const Program &P, Options Opts);
  explicit Vm(const Program &P);
  ~Vm();

  /// Runs \p FnName with synthesized default arguments, then drains the
  /// spawn queue sequentially — exactly like Interpreter::run.
  interp::ExecResult run(const std::string &FnName);

  /// Runs \p FnName with explicit arguments (no spawn drain, mirroring
  /// the interpreter overload).
  interp::ExecResult run(const std::string &FnName,
                         std::vector<interp::Value> Args);

  /// Runs every function independently with fresh state, collecting one
  /// Trap per failing function.
  std::vector<interp::Trap> runAll();

  /// Synthesizes a default argument value for a parameter type, creating
  /// backing heap objects for pointers (identical to the interpreter's).
  interp::Value defaultArgument(const mir::Type *Ty);

  // --- Coverage -----------------------------------------------------------

  /// Edge-hit bitmap, indexed by edge ordinal; accumulates across runs.
  const BitVec &edgeHits() const;

  void clearCoverage();

  /// Sorted, deduplicated stable shape keys of all edges hit so far.
  std::vector<uint64_t> coveredKeys() const;

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace rs::vm

#endif // RUSTSIGHT_VM_VM_H

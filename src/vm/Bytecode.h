//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register bytecode a RustLite MIR module lowers to: one flat
/// instruction array across all functions, with side pools for places,
/// operands, constants, rvalues, switch tables, and call sites. Every jump
/// target is a pre-resolved program counter and every callee is classified
/// (intrinsic kind, compiled-function index, pre-parsed atomic op,
/// pre-resolved spawn / Once-init targets) at lowering time, so the
/// dispatch loop in Vm.cpp never touches strings or the MIR tree.
///
/// A parallel debug array maps each instruction back to its (block,
/// statement) origin; it is consulted only when a trap fires, keeping the
/// hot loop free of provenance bookkeeping while traps still anchor
/// exactly like the tree interpreter's.
///
/// The lowering also enumerates a per-module *edge table*: one entry per
/// CFG transfer (goto, each switch arm, assert success, drop continuation,
/// call return, and one exit edge per returning terminator). Each edge
/// carries a stable 64-bit shape key — a hash of the surrounding code's
/// shape with local numbering abstracted away — so the same code shape in
/// two different modules maps to the same key and cumulative fuzzing
/// coverage can be unioned across a whole corpus (docs/FUZZING.md).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_VM_BYTECODE_H
#define RUSTSIGHT_VM_BYTECODE_H

#include "interp/Runtime.h"
#include "mir/Intrinsics.h"
#include "mir/Mir.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rs::vm {

/// Sentinel for "no pool entry".
inline constexpr uint32_t NoIndex = ~0u;

enum class Opcode : uint8_t {
  Nop,
  StorageLive, ///< A = local
  StorageDead, ///< A = local
  Assign,      ///< A = place id (dest), B = rvalue id
  Goto,        ///< A = target pc, B = edge ordinal
  Switch,      ///< A = operand id (discr), B = switch id
  Return,      ///< A = exit edge ordinal (also Resume/Unreachable)
  Assert,      ///< A = operand id (cond), B = target pc, C = edge ordinal
  Drop,        ///< A = place id, B = target pc, C = edge ordinal
  Call,        ///< A = call-site id
  /// Target of a branch to a block id outside the function (the tree
  /// interpreter's "branch to missing block" trap); also the entry point
  /// of a function with no blocks.
  TrapMissingBlock,
};

/// Drop-instruction flags.
enum : uint8_t {
  DropFlagTypeHasDrop = 1 << 0, ///< Local place whose type has drop glue.
  DropFlagIsLocal = 1 << 1,     ///< Place is a bare local.
};

/// Assign-instruction specializations (Insn::Flags). The lowering tags an
/// assign only when the destination is a bare local and the source is the
/// encoded form with both indices <= 0xffff; Insn::C then packs dest local
/// (low 16 bits) and source local / constant id (high 16 bits), letting
/// the dispatch loop skip the place/rvalue pools entirely. The generic
/// ids stay in A/B: the loop falls back to them whenever a liveness or
/// kind check fails, so traps stay byte-identical to the interpreter's.
enum : uint8_t {
  AssignGeneric = 0,
  AssignConstToLocal = 1, ///< dst = const
  AssignCopyLocal = 2,    ///< dst = copy src
  AssignMoveLocal = 3,    ///< dst = move src
  /// dst = binop(copy/const, copy/const); Insn::C indexes Program::
  /// FusedBins instead of packing the operands.
  AssignBinaryFused = 4,
};

/// Pre-resolved `dst = binop(a, b)` where dst is a bare local and each
/// operand is a bare-local copy or a constant (never a move — moves need
/// their source marked). 8 bytes.
struct FusedBinary {
  uint8_t Op = 0;          ///< mir::BinOp, raw.
  uint8_t ConstMask = 0;   ///< Bit 0: L is a const id; bit 1: R is.
  uint16_t Dst = 0;
  uint16_t L = 0;          ///< Local or const id, per ConstMask.
  uint16_t R = 0;
};

struct Insn {
  Opcode Op = Opcode::Nop;
  uint8_t Flags = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
};

/// Where an instruction came from, for trap anchoring. Parallel to the
/// instruction array; read only when a trap fires.
struct InsnDebug {
  mir::BlockId Block = 0;
  uint32_t Stmt = 0;
};

/// One flattened projection step.
struct ProjRef {
  enum : uint8_t { Deref = 0, Field = 1, Index = 2 };
  uint8_t Kind = Deref;
  uint32_t Arg = 0; ///< Field index or index local.
};

/// A flattened place: base local plus a projection span.
struct PlaceRef {
  mir::LocalId Base = 0;
  uint32_t ProjBegin = 0;
  uint32_t ProjEnd = 0;
  bool HasDeref = false; ///< Precomputed Place::hasDeref().

  bool isLocal() const { return ProjBegin == ProjEnd; }
};

struct OperandRef {
  enum : uint8_t { Copy = 0, Move = 1, Const = 2 };
  uint8_t Kind = Const;
  uint32_t Index = 0; ///< Place id (Copy/Move) or constant id (Const).
};

/// A flattened rvalue. Cast and AddressOf lower to Use and Ref — the
/// engines treat them identically.
struct RvRef {
  enum class Kind : uint8_t {
    Use,
    Ref,
    Binary,
    Unary,
    Aggregate,
    Discriminant,
    Len,
  };
  Kind K = Kind::Use;
  uint8_t Op = 0;   ///< mir::BinOp or mir::UnOp, raw.
  uint32_t A = 0;   ///< Operand id; Aggregate: operand span begin.
  uint32_t B = 0;   ///< Binary: second operand id; Aggregate: span end.
  uint32_t P = 0;   ///< Place id for Ref/Discriminant/Len.
};

struct SwitchCaseRef {
  int64_t Value = 0;
  uint32_t Pc = 0;
  uint32_t Edge = 0;
};

/// A switch table: cases in source order (first match wins, like the tree
/// interpreter) plus the otherwise edge.
struct SwitchRef {
  uint32_t CaseBegin = 0;
  uint32_t CaseEnd = 0;
  uint32_t OtherPc = 0;
  uint32_t OtherEdge = 0;
};

/// Pre-parsed atomic operation (from the callee path's final segment).
enum class AtomicOpKind : uint8_t { Other, CompareAndSwap, Store, FetchAdd };

/// A call site with everything the dispatch loop needs pre-resolved.
struct CallSite {
  mir::IntrinsicKind Kind = mir::IntrinsicKind::None;
  AtomicOpKind Atomic = AtomicOpKind::Other;
  int32_t Callee = -1;   ///< Compiled-function index (Kind == None only).
  int32_t OnceInit = -1; ///< Pre-resolved Once initializer, -1 if none.
  int32_t SpawnFn = -1;  ///< Pre-resolved spawn target, -1 if unresolved.
  bool HasSpawnName = false; ///< Whether the spawn enqueues at all.
  uint32_t ArgBegin = 0;
  uint32_t ArgEnd = 0;        ///< Operand span of the arguments.
  uint32_t Arg0Place = NoIndex; ///< Place id of arg 0 when it is a place.
  uint32_t Dest = 0;
  bool HasDest = false;
  uint32_t TargetPc = 0;
  uint32_t Edge = 0;
};

struct CompiledFunction {
  std::string Name;
  unsigned NumArgs = 0;
  unsigned NumLocals = 0;
  uint32_t EntryPc = 0;
  uint32_t NumBlocks = 0;
  /// Source function, for argument synthesis (parameter types).
  const mir::Function *Src = nullptr;
};

/// A lowered module. Owns no MIR; the source module must outlive it.
struct Program {
  const mir::Module *Src = nullptr;

  std::vector<CompiledFunction> Funcs;
  std::vector<Insn> Insns;
  std::vector<InsnDebug> Debug;
  std::vector<ProjRef> Projs;
  std::vector<PlaceRef> Places;
  std::vector<OperandRef> Operands;
  std::vector<interp::Value> Consts;
  std::vector<RvRef> Rvalues;
  std::vector<SwitchCaseRef> SwitchCases;
  std::vector<SwitchRef> Switches;
  std::vector<CallSite> Calls;
  std::vector<FusedBinary> FusedBins;

  /// Edge ordinal -> stable cross-module shape key (see file comment).
  std::vector<uint64_t> EdgeKeys;

  std::map<std::string, uint32_t> FuncIndex;

  /// Compiled-function index for \p Name, or -1. Same resolution the tree
  /// interpreter's Module::findFunction performs.
  int32_t findFunc(const std::string &Name) const {
    auto It = FuncIndex.find(Name);
    return It == FuncIndex.end() ? -1 : static_cast<int32_t>(It->second);
  }

  size_t numEdges() const { return EdgeKeys.size(); }
};

} // namespace rs::vm

#endif // RUSTSIGHT_VM_BYTECODE_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering from RustLite MIR to the register bytecode in Bytecode.h.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_VM_LOWER_H
#define RUSTSIGHT_VM_LOWER_H

#include "vm/Bytecode.h"

namespace rs::vm {

/// Compiles \p M to bytecode. Infallible: any construct the verifier would
/// reject (e.g. a branch to a missing block) lowers to an explicit trap
/// instruction so the VM reports it exactly like the tree interpreter.
/// The returned Program borrows \p M (function pointers, struct layouts);
/// \p M must outlive it.
Program compile(const mir::Module &M);

} // namespace rs::vm

#endif // RUSTSIGHT_VM_LOWER_H

#include "vm/Vm.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace rs;
using namespace rs::vm;
using interp::ExecResult;
using interp::PointerTarget;
using interp::Trap;
using interp::TrapKind;
using interp::Value;

//===----------------------------------------------------------------------===//
// Runtime state
//
// The VM does not execute on interp::Value: that struct carries four
// container members (string, two pointer paths, aggregate elements), so
// every copy, move and destruction walks allocators — and profiling shows
// that churn, not dispatch, dominating both engines. Instead the VM runs
// on VVal, a flat POD value whose rare variable-size payloads live in
// per-VM arena pools (strings, pointer paths, aggregate element arrays).
// Copies are memcpy; frame push/pop is a resize of a trivially-copyable
// vector; reset() truncates the arenas but keeps their capacity, so a hot
// Vm reaches a zero-allocation steady state. interp::Value appears only
// at the public API boundary (arguments in, ExecResult::Return out).
//
// Ownership stays tree-shaped exactly as in the interpreter: duplicating
// a value deep-copies aggregate payloads (copyVal), moving transfers the
// arena index. Overwritten or dropped payloads are not returned to the
// pool — they leak into the arena until the next reset(), which is
// bounded by the step limit and keeps the hot paths free of bookkeeping.
//===----------------------------------------------------------------------===//

#if defined(__GNUC__)
#define RS_VM_HOT __attribute__((always_inline)) inline
#define RS_VM_NOINLINE __attribute__((noinline))
#define RS_VM_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define RS_VM_LIKELY(x) __builtin_expect(!!(x), 1)
#else
#define RS_VM_HOT inline
#define RS_VM_NOINLINE
#define RS_VM_UNLIKELY(x) (x)
#define RS_VM_LIKELY(x) (x)
#endif

namespace {

enum class Why : uint8_t { NeverInit, Moved, Dropped };

using VKind = Value::Kind;

/// POD pointer target / lock key. Paths are spans into the VM's PathPool
/// arena. Trivial (no default member initializers) so it can live in
/// VVal's union; always construct via zeroTgt()/heapTgt()/localTgt() —
/// a zeroTgt() is a dangling heap pointer (id 0), exactly like a default
/// interp::PointerTarget.
struct VTgt {
  PointerTarget::Space Space;
  uint32_t FrameId;
  uint32_t Local;
  uint32_t HeapId;
  uint32_t PathIdx;
  uint32_t PathLen;
};

inline VTgt zeroTgt() {
  return VTgt{PointerTarget::Space::Heap, 0, 0, 0, 0, 0};
}
inline VTgt heapTgt(uint32_t HeapId) {
  return VTgt{PointerTarget::Space::Heap, 0, 0, HeapId, 0, 0};
}
inline VTgt stackTgt(uint32_t FrameId, uint32_t Local) {
  return VTgt{PointerTarget::Space::Stack, FrameId, Local, 0, 0, 0};
}

/// POD runtime value, 32 bytes. Int carries Int and Bool (0/1) payloads;
/// Idx is the StrPool index (Str) or AggPool index (Aggregate); T is the
/// pointer target (Ptr) or the held lock's key (Guard). Int and T never
/// coexist, so they share storage — raw-field reads must go through
/// rawInt/coerceInt below to reproduce the interpreter's zero-filled
/// struct semantics.
struct VVal {
  VKind K = VKind::Uninit;
  uint8_t Flags = 0;
  uint32_t Idx = 0;
  union {
    int64_t Int = 0;
    VTgt T;
  };

  bool isUninit() const { return K == VKind::Uninit; }
};

/// interp::Value::Int stays zero unless the value is an Int (Bool lives
/// in the separate .Bool field). Sites that read .Int without a kind
/// check — unary ops, fetch_add operands — see 0 for everything else.
inline int64_t rawInt(const VVal &V) {
  return V.K == VKind::Int ? V.Int : 0;
}

/// The interpreter's `K==Bool ? (Bool?1:0) : Int` idiom (switch
/// discriminants, enum discriminant reads).
inline int64_t coerceInt(const VVal &V) {
  return V.K == VKind::Int || V.K == VKind::Bool ? V.Int : 0;
}

constexpr uint8_t FlagOwning = 1;     ///< Ptr: dropping frees the pointee.
constexpr uint8_t FlagRefCounted = 2; ///< Ptr: Arc-style shared ownership.
constexpr uint8_t FlagExclusive = 4;  ///< Guard: write acquisition.

VVal makeUninitV() { return VVal(); }
VVal makeUnitV() {
  VVal V;
  V.K = VKind::Unit;
  return V;
}
VVal makeIntV(int64_t N) {
  VVal V;
  V.K = VKind::Int;
  V.Int = N;
  return V;
}
VVal makeBoolV(bool B) {
  VVal V;
  V.K = VKind::Bool;
  V.Int = B ? 1 : 0;
  return V;
}
VVal makePtrV(VTgt T, bool Owning = false, bool RefCounted = false) {
  VVal V;
  V.K = VKind::Ptr;
  V.T = T;
  V.Flags = (Owning ? FlagOwning : 0) | (RefCounted ? FlagRefCounted : 0);
  return V;
}
VVal makeGuardV(VTgt Key, bool Exclusive) {
  VVal V;
  V.K = VKind::Guard;
  V.T = Key;
  V.Flags = Exclusive ? FlagExclusive : 0;
  return V;
}
VVal makeOpaqueV() {
  VVal V;
  V.K = VKind::Opaque;
  return V;
}

struct VCell {
  VVal V;
  bool StorageLive = true;
  Why Reason = Why::NeverInit;
};

struct VHeapObj {
  VVal V;
  bool Freed = false;
  bool Initialized = true;
  int RefCount = 1;
};

struct VLock {
  VTgt Key = zeroTgt();
  unsigned Shared = 0;
  bool Exclusive = false;
};

enum class OnceSt : uint8_t { Running, Done }; // Fresh == absent entry.

struct VOnce {
  VTgt Key = zeroTgt();
  OnceSt St = OnceSt::Running;
};

/// One live activation. Locals live in a shared stack vector at
/// [LocalsBase, LocalsBase + NumLocals).
struct VFrame {
  unsigned Id = 0;
  uint32_t Fn = 0;
  uint32_t LocalsBase = 0;
  uint32_t RetPc = 0;       ///< Caller pc to resume at after return.
  uint32_t RetDest = 0;     ///< Caller's call destination place.
  bool RetHasDest = false;
  bool IsOnceInit = false;  ///< Frame runs a Once initializer.
  VTgt OnceKey = zeroTgt(); ///< IsOnceInit: the Once to mark Done on return.
  uint32_t OnceDest = 0;    ///< IsOnceInit: the call_once destination.
  bool OnceHasDest = false;
};

} // namespace

class Vm::Impl {
public:
  Impl(const Program &P, Options Opts)
      : P(P), Opts(Opts), EdgeHits(P.numEdges()) {
    // Intern the constant pool once; these StrPool entries are permanent
    // (reset() truncates back to PersistentStrs). Constants are scalars,
    // strings or unit — never pointers or aggregates.
    VConsts.reserve(P.Consts.size());
    for (const Value &C : P.Consts) {
      switch (C.K) {
      case VKind::Int:
        VConsts.push_back(makeIntV(C.Int));
        break;
      case VKind::Bool:
        VConsts.push_back(makeBoolV(C.Bool));
        break;
      case VKind::Str: {
        VVal V;
        V.K = VKind::Str;
        V.Idx = internStr(C.Str);
        VConsts.push_back(V);
        break;
      }
      default:
        VConsts.push_back(makeUnitV());
        break;
      }
    }
    EmptyStrId = internStr("");
    PersistentStrs = StrPool.size();
  }

  const Program &P;
  Options Opts;

  // Arenas. StrPool keeps a persistent prefix (interned constants);
  // PathPool and AggPool are fully transient. AggPool slots are recycled
  // high-water style: reset() rewinds AggUsed but keeps every inner
  // vector's capacity, so steady-state runs allocate nothing.
  std::vector<std::string> StrPool;
  std::vector<unsigned> PathPool;
  std::vector<std::vector<VVal>> AggPool;
  uint32_t AggUsed = 0;
  size_t PersistentStrs = 0;
  uint32_t EmptyStrId = 0;
  std::vector<VVal> VConsts;

  // Execution state (reset per run()).
  std::vector<VFrame> Stack;
  /// Frame locals, high-water style: LocalsTop is the live extent and the
  /// vector never shrinks, so push/pop never re-run element constructors.
  /// pushFrame initializes exactly the fields a fresh local needs.
  std::vector<VCell> Locals;
  uint32_t LocalsTop = 0;
  /// Frame id -> stack index + 1, or 0 when dead. Index 0 is the never-
  /// allocated frame id 0, so a default PointerTarget dangles, exactly as
  /// the interpreter's map lookup misses.
  std::vector<uint32_t> FrameSlots;
  unsigned NextFrameId = 1;
  std::vector<VHeapObj> Heap;
  std::vector<VLock> Locks;
  std::vector<VOnce> Onces;
  std::deque<int32_t> SpawnQueue;
  std::vector<VVal> ArgBuf; ///< Scratch for call-argument evaluation.
  /// Cached &Locals[cur().LocalsBase]; recomputed on every frame push/pop
  /// (Locals may reallocate on push).
  VCell *CurLocals = nullptr;
  uint64_t Steps = 0;
  unsigned CallDepth = 0;
  uint32_t Pc = 0;
  VVal EntryRet;

  bool Trapped = false;
  bool Halted = false; ///< Quiet abort (malformed intrinsic arity).
  Trap Error{TrapKind::UseAfterFree, "", "", 0, 0};

  // Coverage, deliberately *not* reset between runs.
  BitVec EdgeHits;

  /// String-address memo for entry-point lookup: run() is typically driven
  /// with the module's own stable function-name strings, so a pointer
  /// match skips the map. A content check guards against a caller reusing
  /// one string object for different names.
  std::vector<std::pair<const std::string *, int32_t>> NameMemo;
  int32_t findFuncFast(const std::string &Name) {
    for (const auto &E : NameMemo)
      if (E.first == &Name && Name == P.Funcs[E.second].Name)
        return E.second;
    int32_t Idx = P.findFunc(Name);
    if (Idx >= 0 && NameMemo.size() < 64)
      NameMemo.push_back({&Name, Idx});
    return Idx;
  }

  /// Default entry arguments per function, with the heap/aggregate state
  /// their synthesis creates. Synthesis is deterministic and runs against
  /// a freshly reset VM, so replaying the snapshot is exact — repeated
  /// runs of the same function skip the type-tree walk entirely.
  struct EntryArgs {
    bool Valid = false;
    std::vector<VVal> Args;
    std::vector<VHeapObj> Heap;
    std::vector<std::vector<VVal>> Aggs;
  };
  std::vector<EntryArgs> ArgCache;

  /// Post-reset: installs (and on first use records) the default-argument
  /// state for \p FnIdx, returning the entry arguments.
  const std::vector<VVal> &entryArgs(uint32_t FnIdx) {
    if (ArgCache.empty())
      ArgCache.resize(P.Funcs.size());
    EntryArgs &AC = ArgCache[FnIdx];
    if (!AC.Valid) {
      const CompiledFunction &CF = P.Funcs[FnIdx];
      for (mir::LocalId A = 1; A <= CF.NumArgs; ++A) {
        VVal V = defaultArgumentV(CF.Src->localType(A));
        AC.Args.push_back(V);
      }
      AC.Heap = Heap;
      AC.Aggs.assign(AggPool.begin(), AggPool.begin() + AggUsed);
      AC.Valid = true;
      return AC.Args;
    }
    Heap = AC.Heap; // POD copy; reuses capacity after the first replay.
    for (const std::vector<VVal> &Agg : AC.Aggs) {
      uint32_t Id = newAgg();
      AggPool[Id] = Agg;
    }
    return AC.Args;
  }

  void reset() {
    Stack.clear();
    LocalsTop = 0;
    FrameSlots.assign(1, 0);
    NextFrameId = 1;
    Heap.clear();
    Locks.clear();
    Onces.clear();
    SpawnQueue.clear();
    Steps = 0;
    CallDepth = 0;
    Pc = 0;
    CurLocals = nullptr;
    Trapped = false;
    Halted = false;
    StrPool.resize(PersistentStrs);
    PathPool.clear();
    AggUsed = 0;
  }

  // --- Arena helpers ------------------------------------------------------

  uint32_t internStr(std::string S) {
    StrPool.push_back(std::move(S));
    return static_cast<uint32_t>(StrPool.size() - 1);
  }

  /// Claims a fresh (recycled) aggregate slot. Growing AggPool moves the
  /// inner vector objects but not their element buffers, so VVal* into
  /// entries stay valid; references to the inner vectors themselves do
  /// not — always re-index AggPool[Id] after any call that may allocate.
  uint32_t newAgg() {
    if (AggUsed == AggPool.size())
      AggPool.emplace_back();
    AggPool[AggUsed].clear();
    return AggUsed++;
  }

  static VVal aggVal(uint32_t Id) {
    VVal V;
    V.K = VKind::Aggregate;
    V.Idx = Id;
    return V;
  }

  /// Appends one field index to a target's path, copying the span to the
  /// arena tail first when it cannot be extended in place.
  void pathAppend(VTgt &T, unsigned F) {
    if (T.PathLen != 0 &&
        T.PathIdx + T.PathLen != static_cast<uint32_t>(PathPool.size())) {
      uint32_t NewIdx = static_cast<uint32_t>(PathPool.size());
      for (uint32_t I = 0; I != T.PathLen; ++I)
        PathPool.push_back(PathPool[T.PathIdx + I]);
      T.PathIdx = NewIdx;
    } else if (T.PathLen == 0) {
      T.PathIdx = static_cast<uint32_t>(PathPool.size());
    }
    PathPool.push_back(F);
    ++T.PathLen;
  }

  bool tgtEq(const VTgt &A, const VTgt &B) const {
    if (A.Space != B.Space || A.FrameId != B.FrameId || A.Local != B.Local ||
        A.HeapId != B.HeapId || A.PathLen != B.PathLen)
      return false;
    for (uint32_t I = 0; I != A.PathLen; ++I)
      if (PathPool[A.PathIdx + I] != PathPool[B.PathIdx + I])
        return false;
    return true;
  }

  /// Duplicates a value, deep-copying aggregate payloads so ownership
  /// stays tree-shaped. Strings and paths are immutable and shared.
  VVal copyVal(const VVal &V) {
    if (V.K != VKind::Aggregate)
      return V;
    uint32_t Id = newAgg();
    size_t N = AggPool[V.Idx].size();
    for (size_t I = 0; I != N; ++I) {
      VVal E = copyVal(AggPool[V.Idx][I]);
      AggPool[Id].push_back(E);
    }
    VVal Out = V;
    Out.Idx = Id;
    return Out;
  }

  bool needsDropV(const VVal &V) const {
    switch (V.K) {
    case VKind::Guard:
      return true;
    case VKind::Ptr:
      return (V.Flags & FlagOwning) != 0;
    case VKind::Aggregate:
      for (const VVal &E : AggPool[V.Idx])
        if (needsDropV(E))
          return true;
      return false;
    default:
      return false;
    }
  }

  // --- interp::Value boundary ---------------------------------------------

  PointerTarget toInterpTgt(const VTgt &T) const {
    PointerTarget Out;
    Out.K = T.Space;
    Out.FrameId = T.FrameId;
    Out.Local = T.Local;
    Out.HeapId = T.HeapId;
    Out.Path.assign(PathPool.begin() + T.PathIdx,
                    PathPool.begin() + T.PathIdx + T.PathLen);
    return Out;
  }

  VTgt fromInterpTgt(const PointerTarget &T) {
    VTgt Out;
    Out.Space = T.K;
    Out.FrameId = T.FrameId;
    Out.Local = T.Local;
    Out.HeapId = T.HeapId;
    Out.PathIdx = static_cast<uint32_t>(PathPool.size());
    Out.PathLen = static_cast<uint32_t>(T.Path.size());
    PathPool.insert(PathPool.end(), T.Path.begin(), T.Path.end());
    return Out;
  }

  Value toInterp(const VVal &V) const {
    switch (V.K) {
    case VKind::Uninit:
      return Value::makeUninit();
    case VKind::Unit:
      return Value::makeUnit();
    case VKind::Int:
      return Value::makeInt(V.Int);
    case VKind::Bool:
      return Value::makeBool(V.Int != 0);
    case VKind::Str:
      return Value::makeStr(StrPool[V.Idx]);
    case VKind::Ptr:
      return Value::makePtr(toInterpTgt(V.T), (V.Flags & FlagOwning) != 0,
                            (V.Flags & FlagRefCounted) != 0);
    case VKind::Guard:
      return Value::makeGuard(toInterpTgt(V.T),
                              (V.Flags & FlagExclusive) != 0);
    case VKind::Opaque:
      return Value::makeOpaque();
    case VKind::Aggregate: {
      std::vector<Value> Elems;
      Elems.reserve(AggPool[V.Idx].size());
      for (const VVal &E : AggPool[V.Idx])
        Elems.push_back(toInterp(E));
      return Value::makeAggregate(std::move(Elems));
    }
    }
    return Value::makeUninit();
  }

  VVal fromInterp(const Value &V) {
    switch (V.K) {
    case VKind::Uninit:
      return makeUninitV();
    case VKind::Unit:
      return makeUnitV();
    case VKind::Int:
      return makeIntV(V.Int);
    case VKind::Bool:
      return makeBoolV(V.Bool);
    case VKind::Str: {
      VVal Out;
      Out.K = VKind::Str;
      Out.Idx = internStr(V.Str);
      return Out;
    }
    case VKind::Ptr:
      return makePtrV(fromInterpTgt(V.Ptr), V.Owning, V.RefCounted);
    case VKind::Guard:
      return makeGuardV(fromInterpTgt(V.LockKey), V.Exclusive);
    case VKind::Opaque:
      return makeOpaqueV();
    case VKind::Aggregate: {
      uint32_t Id = newAgg();
      for (const Value &E : V.Elems) {
        VVal Elem = fromInterp(E); // May grow AggPool; sequence before [].
        AggPool[Id].push_back(Elem);
      }
      return aggVal(Id);
    }
    }
    return makeUninitV();
  }

  /// Trap-message spelling of a target (cold path only).
  std::string tgtStr(const VTgt &T) const { return toInterpTgt(T).toString(); }

  VFrame &cur() { return Stack.back(); }

  bool trap(TrapKind K, std::string Message) {
    if (Trapped)
      return false;
    Trapped = true;
    Error.Kind = K;
    Error.Message = std::move(Message);
    if (Stack.empty()) {
      Error.Function = "<none>";
      Error.Block = 0;
      Error.StmtIndex = 0;
    } else {
      Error.Function = P.Funcs[cur().Fn].Name;
      const InsnDebug &D = P.Debug[Pc];
      Error.Block = D.Block;
      Error.StmtIndex = D.Stmt;
    }
    return false;
  }

  RS_VM_NOINLINE bool stepTrap() {
    return trap(TrapKind::StepLimit,
                "execution step limit (" + std::to_string(Opts.StepLimit) +
                    ") exceeded; result is inconclusive, not a bug");
  }

  RS_VM_HOT bool step() {
    if (RS_VM_UNLIKELY(++Steps > Opts.StepLimit))
      return stepTrap();
    return true;
  }

  void hit(uint32_t Edge) { EdgeHits.set(Edge); }

  // --- Heap / lock / Once tables ------------------------------------------

  VHeapObj *heapFind(unsigned Id) {
    return Id >= 1 && Id <= Heap.size() ? &Heap[Id - 1] : nullptr;
  }

  VTgt freshHeap(VVal V, bool Initialized = true) {
    Heap.emplace_back();
    Heap.back().V = V;
    Heap.back().Initialized = Initialized;
    return heapTgt(static_cast<uint32_t>(Heap.size()));
  }

  VLock &lockFor(const VTgt &Key) {
    for (VLock &L : Locks)
      if (tgtEq(L.Key, Key))
        return L;
    Locks.push_back(VLock{Key, 0, false});
    return Locks.back();
  }

  OnceSt *onceFind(const VTgt &Key) {
    for (VOnce &O : Onces)
      if (tgtEq(O.Key, Key))
        return &O.St;
    return nullptr;
  }

  void onceSet(const VTgt &Key, OnceSt St) {
    if (OnceSt *Existing = onceFind(Key)) {
      *Existing = St;
      return;
    }
    Onces.push_back(VOnce{Key, St});
  }

  // --- Memory access ------------------------------------------------------

  VVal *resolveTarget(const VTgt &T) {
    VVal *Root = nullptr;
    if (T.Space == PointerTarget::Space::Stack) {
      uint32_t Slot = T.FrameId < FrameSlots.size() ? FrameSlots[T.FrameId] : 0;
      if (!Slot) {
        trap(TrapKind::UseAfterScope,
             "pointer target " + tgtStr(T) +
                 " is a local of a function that already returned");
        return nullptr;
      }
      VFrame &F = Stack[Slot - 1];
      if (T.Local >= P.Funcs[F.Fn].NumLocals) {
        trap(TrapKind::InvalidPointer, "pointer past frame locals");
        return nullptr;
      }
      VCell &C = Locals[F.LocalsBase + T.Local];
      if (!C.StorageLive) {
        trap(TrapKind::UseAfterScope, "pointer target " + tgtStr(T) +
                                          " is out of scope (storage dead)");
        return nullptr;
      }
      if (C.Reason == Why::Dropped && C.V.isUninit()) {
        trap(TrapKind::UseAfterFree,
             "pointer target " + tgtStr(T) + " was dropped");
        return nullptr;
      }
      Root = &C.V;
    } else {
      VHeapObj *H = heapFind(T.HeapId);
      if (!H) {
        trap(TrapKind::InvalidPointer, "dangling heap pointer");
        return nullptr;
      }
      if (H->Freed) {
        trap(TrapKind::UseAfterFree,
             "heap object " + tgtStr(T) + " was already freed");
        return nullptr;
      }
      Root = &H->V;
    }
    for (uint32_t Pi = 0; Pi != T.PathLen; ++Pi) {
      unsigned F = PathPool[T.PathIdx + Pi];
      if (Root->K != VKind::Aggregate) {
        trap(TrapKind::TypeMismatch,
             "field access into non-aggregate value at " + tgtStr(T));
        return nullptr;
      }
      std::vector<VVal> &Elems = AggPool[Root->Idx];
      if (F >= Elems.size()) {
        trap(TrapKind::IndexOutOfBounds,
             "index out of bounds: the len is " +
                 std::to_string(Elems.size()) + " but the index is " +
                 std::to_string(F));
        return nullptr;
      }
      Root = &Elems[F];
    }
    return Root;
  }

  // --- Dropping -----------------------------------------------------------

  void unlock(const VTgt &Key, bool Exclusive) {
    VLock &L = lockFor(Key);
    if (Exclusive)
      L.Exclusive = false;
    else if (L.Shared > 0)
      --L.Shared;
  }

  /// Hot wrapper: only guards, pointers and aggregates have drop glue;
  /// for everything else a drop is just clearing the kind byte.
  RS_VM_HOT void dropVal(VVal &V) {
    if (V.K == VKind::Guard || V.K == VKind::Ptr || V.K == VKind::Aggregate)
      dropValue(V);
    else
      V.K = VKind::Uninit;
  }

  RS_VM_NOINLINE void dropValue(VVal &V) {
    switch (V.K) {
    case VKind::Guard:
      unlock(V.T, (V.Flags & FlagExclusive) != 0);
      break;
    case VKind::Ptr: {
      if (!(V.Flags & FlagOwning))
        break;
      VHeapObj *H = heapFind(V.T.HeapId);
      if (!H || V.T.Space != PointerTarget::Space::Heap)
        break;
      if (H->Freed) {
        trap(TrapKind::DoubleFree, "heap object " + tgtStr(V.T) +
                                       " freed a second time (two owners)");
        return;
      }
      if ((V.Flags & FlagRefCounted) && --H->RefCount > 0)
        break;
      H->Freed = true;
      dropValue(H->V);
      break;
    }
    case VKind::Aggregate:
      for (VVal &E : AggPool[V.Idx])
        dropValue(E);
      break;
    default:
      break;
    }
    V = makeUninitV();
  }

  // --- Places and operands ------------------------------------------------

  bool resolvePlace(uint32_t PlaceId, VTgt &Out) {
    const PlaceRef &PR = P.Places[PlaceId];
    VFrame &F = cur();
    VTgt T = zeroTgt();
    T.Space = PointerTarget::Space::Stack;
    T.FrameId = F.Id;
    T.Local = PR.Base;
    for (uint32_t Pi = PR.ProjBegin; Pi != PR.ProjEnd; ++Pi) {
      const ProjRef &E = P.Projs[Pi];
      switch (E.Kind) {
      case ProjRef::Field:
        pathAppend(T, E.Arg);
        break;
      case ProjRef::Index: {
        VTgt IdxT = zeroTgt();
        IdxT.Space = PointerTarget::Space::Stack;
        IdxT.FrameId = F.Id;
        IdxT.Local = E.Arg;
        VVal *Idx = resolveTarget(IdxT);
        if (!Idx)
          return false;
        if (Idx->K != VKind::Int)
          return trap(TrapKind::TypeMismatch, "index local is not an int");
        pathAppend(T, static_cast<unsigned>(Idx->Int));
        break;
      }
      case ProjRef::Deref: {
        VVal *Ptr = resolveTarget(T);
        if (!Ptr)
          return false;
        if (Ptr->K == VKind::Ptr) {
          T = Ptr->T;
        } else if (Ptr->K == VKind::Guard) {
          T = Ptr->T;
        } else if (Ptr->isUninit()) {
          return trap(TrapKind::UninitRead,
                      "dereference of an uninitialized pointer");
        } else {
          return trap(TrapKind::TypeMismatch,
                      "dereference of a non-pointer value");
        }
        break;
      }
      }
    }
    Out = T;
    return true;
  }

  /// All of readPlace's checks, returning a borrowed slot instead of a
  /// copy. Callers must not allocate while holding the pointer.
  bool readPlaceRef(uint32_t PlaceId, const VVal *&Out) {
    VTgt T;
    if (!resolvePlace(PlaceId, T))
      return false;
    VVal *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    if (Slot->isUninit()) {
      if (T.Space == PointerTarget::Space::Stack) {
        uint32_t S = T.FrameId < FrameSlots.size() ? FrameSlots[T.FrameId] : 0;
        if (S && Locals[Stack[S - 1].LocalsBase + T.Local].Reason ==
                     Why::Dropped)
          return trap(TrapKind::UseAfterFree,
                      "read of dropped value at " + tgtStr(T));
      }
      return trap(TrapKind::UninitRead,
                  "read of uninitialized value at " + tgtStr(T));
    }
    Out = Slot;
    return true;
  }

  RS_VM_NOINLINE bool readPlaceSlow(uint32_t PlaceId, VVal &Out) {
    const VVal *Slot = nullptr;
    if (!readPlaceRef(PlaceId, Slot))
      return false;
    Out = copyVal(*Slot);
    return true;
  }

  /// Place resolution straight through AggPool / Heap / Locals: returns
  /// the leaf slot of a live, in-bounds walk, or nullptr when any check
  /// fails — the caller then falls back to the VTgt slow path, which
  /// re-resolves from scratch and raises the exact trap. Reads only (no
  /// PathPool traffic), so falling back is always safe. The projection
  /// walk stays out of line: inlining it into every place access bloats
  /// the dispatch loop enough to cost more than the call.
  RS_VM_HOT VVal *fastResolve(const PlaceRef &PR) {
    if (PR.isLocal()) {
      VCell &C = CurLocals[PR.Base];
      return C.StorageLive ? &C.V : nullptr;
    }
    return fastResolveProj(PR);
  }

  RS_VM_NOINLINE VVal *fastResolveProj(const PlaceRef &PR) {
    VCell &C = CurLocals[PR.Base];
    if (!C.StorageLive)
      return nullptr;
    VVal *V = &C.V;
    for (uint32_t Pi = PR.ProjBegin; Pi != PR.ProjEnd; ++Pi) {
      const ProjRef &E = P.Projs[Pi];
      if (E.Kind == ProjRef::Deref) {
        // Follow the pointer/guard, replicating every resolveTarget
        // check; any would-trap state bails to the slow path.
        if (V->K != VKind::Ptr && V->K != VKind::Guard)
          return nullptr;
        const VTgt T = V->T;
        if (T.Space == PointerTarget::Space::Stack) {
          uint32_t Slot =
              T.FrameId < FrameSlots.size() ? FrameSlots[T.FrameId] : 0;
          if (!Slot)
            return nullptr;
          VFrame &F = Stack[Slot - 1];
          if (T.Local >= P.Funcs[F.Fn].NumLocals)
            return nullptr;
          VCell &TC = Locals[F.LocalsBase + T.Local];
          if (!TC.StorageLive ||
              (TC.Reason == Why::Dropped && TC.V.isUninit()))
            return nullptr;
          V = &TC.V;
        } else {
          if (T.HeapId == 0 || T.HeapId > Heap.size())
            return nullptr;
          VHeapObj &H = Heap[T.HeapId - 1];
          if (H.Freed)
            return nullptr;
          V = &H.V;
        }
        for (uint32_t Qi = 0; Qi != T.PathLen; ++Qi) {
          if (V->K != VKind::Aggregate)
            return nullptr;
          unsigned Fld = PathPool[T.PathIdx + Qi];
          std::vector<VVal> &Agg = AggPool[V->Idx];
          if (Fld >= Agg.size())
            return nullptr;
          V = &Agg[Fld];
        }
        continue;
      }
      if (V->K != VKind::Aggregate)
        return nullptr;
      uint64_t Idx;
      if (E.Kind == ProjRef::Field) {
        Idx = E.Arg;
      } else {
        const VCell &IC = CurLocals[E.Arg];
        if (!IC.StorageLive || IC.V.K != VKind::Int || IC.V.Int < 0)
          return nullptr;
        Idx = static_cast<uint64_t>(IC.V.Int);
      }
      std::vector<VVal> &Agg = AggPool[V->Idx];
      if (Idx >= Agg.size())
        return nullptr;
      V = &Agg[Idx];
    }
    return V;
  }

  RS_VM_HOT bool readPlace(uint32_t PlaceId, VVal &Out) {
    // Fast path: a scalar leaf needs no deep copy and cannot trap.
    // Reading never mutates, so deref places qualify too.
    const PlaceRef &PR = P.Places[PlaceId];
    const VVal *V = fastResolve(PR);
    if (V && !V->isUninit() && V->K != VKind::Aggregate) {
      Out = *V;
      return true;
    }
    return readPlaceSlow(PlaceId, Out);
  }

  RS_VM_NOINLINE bool takePlaceSlow(uint32_t PlaceId, VVal &Out) {
    VTgt T;
    if (!resolvePlace(PlaceId, T))
      return false;
    VVal *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    if (Slot->isUninit())
      return trap(TrapKind::UninitRead,
                  "move out of uninitialized value at " + tgtStr(T));
    Out = *Slot;
    *Slot = makeUninitV();
    if (T.Space == PointerTarget::Space::Stack && T.PathLen == 0) {
      uint32_t S = T.FrameId < FrameSlots.size() ? FrameSlots[T.FrameId] : 0;
      if (S)
        Locals[Stack[S - 1].LocalsBase + T.Local].Reason = Why::Moved;
    }
    return true;
  }

  RS_VM_HOT bool takePlace(uint32_t PlaceId, VVal &Out) {
    const PlaceRef &PR = P.Places[PlaceId];
    if (PR.isLocal()) {
      VCell &C = CurLocals[PR.Base];
      if (C.StorageLive && !C.V.isUninit()) {
        Out = C.V;
        C.V.K = VKind::Uninit;
        C.Reason = Why::Moved;
        return true;
      }
    } else if (!PR.HasDeref) {
      // Moves are bit-moves even for aggregates; only bare locals get
      // their move reason marked (projected moves leave the cell alone).
      VVal *S = fastResolve(PR);
      if (S && !S->isUninit()) {
        Out = *S;
        S->K = VKind::Uninit;
        return true;
      }
    }
    return takePlaceSlow(PlaceId, Out);
  }

  RS_VM_HOT bool evalOperand(uint32_t OperandId, VVal &Out) {
    const OperandRef &O = P.Operands[OperandId];
    switch (O.Kind) {
    case OperandRef::Copy:
      return readPlace(O.Index, Out);
    case OperandRef::Move:
      return takePlace(O.Index, Out);
    default:
      Out = VConsts[O.Index];
      return true;
    }
  }

  RS_VM_HOT bool evalBinary(mir::BinOp Op, const VVal &A, const VVal &B,
                            VVal &Out) {
    if (Op == mir::BinOp::Offset) {
      Out = A;
      return true;
    }
    if ((A.K != VKind::Int && A.K != VKind::Bool) ||
        (B.K != VKind::Int && B.K != VKind::Bool))
      return trap(TrapKind::TypeMismatch, "arithmetic on non-scalar values");
    int64_t X = A.Int, Y = B.Int;
    switch (Op) {
    case mir::BinOp::Add:
      Out = makeIntV(X + Y);
      return true;
    case mir::BinOp::Sub:
      Out = makeIntV(X - Y);
      return true;
    case mir::BinOp::Mul:
      Out = makeIntV(X * Y);
      return true;
    case mir::BinOp::Div:
      if (Y == 0)
        return trap(TrapKind::AssertFailed, "division by zero");
      Out = makeIntV(X / Y);
      return true;
    case mir::BinOp::Rem:
      if (Y == 0)
        return trap(TrapKind::AssertFailed, "remainder by zero");
      Out = makeIntV(X % Y);
      return true;
    case mir::BinOp::BitAnd:
      Out = makeIntV(X & Y);
      return true;
    case mir::BinOp::BitOr:
      Out = makeIntV(X | Y);
      return true;
    case mir::BinOp::BitXor:
      Out = makeIntV(X ^ Y);
      return true;
    case mir::BinOp::Shl:
      Out = makeIntV(X << (Y & 63));
      return true;
    case mir::BinOp::Shr:
      Out = makeIntV(X >> (Y & 63));
      return true;
    case mir::BinOp::Eq:
      Out = makeBoolV(X == Y);
      return true;
    case mir::BinOp::Ne:
      Out = makeBoolV(X != Y);
      return true;
    case mir::BinOp::Lt:
      Out = makeBoolV(X < Y);
      return true;
    case mir::BinOp::Le:
      Out = makeBoolV(X <= Y);
      return true;
    case mir::BinOp::Gt:
      Out = makeBoolV(X > Y);
      return true;
    case mir::BinOp::Ge:
      Out = makeBoolV(X >= Y);
      return true;
    case mir::BinOp::Offset:
      break;
    }
    return trap(TrapKind::TypeMismatch, "unsupported binary operation");
  }

  /// Fused `dst = binop(a, b)` over bare locals/constants (see
  /// FusedBinary). Returns 1 when handled, 0 on a trap (the generic path
  /// would compute the identical operands and trap identically, so there
  /// is nothing to re-run), and 2 to fall back to the generic path when
  /// a cell check fails. Out of line: the operand checks plus evalBinary
  /// are too big to inline into the dispatch loop.
  RS_VM_NOINLINE int execFusedBinary(const Insn &I) {
    const FusedBinary &FB = P.FusedBins[I.C];
    VCell &D = CurLocals[FB.Dst];
    if (!D.StorageLive || (D.Reason == Why::Dropped && D.V.isUninit()))
      return 2;
    // Operands stay in place: evalBinary reads both inputs fully before
    // writing its output, so aiming it straight at D.V is alias-safe even
    // when dst == src, and no 32-byte VVal copies are made.
    const VVal *A, *B;
    if (FB.ConstMask & 1) {
      A = &VConsts[FB.L];
    } else {
      const VCell &S = CurLocals[FB.L];
      if (!S.StorageLive || S.V.isUninit() || S.V.K == VKind::Aggregate)
        return 2;
      A = &S.V;
    }
    if (FB.ConstMask & 2) {
      B = &VConsts[FB.R];
    } else {
      const VCell &S = CurLocals[FB.R];
      if (!S.StorageLive || S.V.isUninit() || S.V.K == VKind::Aggregate)
        return 2;
      B = &S.V;
    }
    if (!evalBinary(static_cast<mir::BinOp>(FB.Op), *A, *B, D.V))
      return 0;
    D.Reason = Why::NeverInit;
    return 1;
  }

  bool evalRvalue(uint32_t RvId, VVal &Out) {
    const RvRef &RV = P.Rvalues[RvId];
    switch (RV.K) {
    case RvRef::Kind::Use:
      return evalOperand(RV.A, Out);
    case RvRef::Kind::Ref: {
      // Fast path: a ref to a live local of the current frame is always
      // valid (taking the ref does not read the value).
      const PlaceRef &PR = P.Places[RV.P];
      if (PR.isLocal() && CurLocals[PR.Base].StorageLive) {
        Out = makePtrV(stackTgt(cur().Id, PR.Base));
        return true;
      }
      VTgt T;
      if (!resolvePlace(RV.P, T))
        return false;
      if (!resolveTarget(T))
        return false;
      Out = makePtrV(T);
      return true;
    }
    case RvRef::Kind::Binary: {
      VVal A, B;
      if (!evalOperand(RV.A, A) || !evalOperand(RV.B, B))
        return false;
      return evalBinary(static_cast<mir::BinOp>(RV.Op), A, B, Out);
    }
    case RvRef::Kind::Unary: {
      VVal A;
      if (!evalOperand(RV.A, A))
        return false;
      if (static_cast<mir::UnOp>(RV.Op) == mir::UnOp::Not) {
        if (A.K == VKind::Bool)
          Out = makeBoolV(A.Int == 0);
        else
          Out = makeIntV(~rawInt(A));
      } else {
        Out = makeIntV(-rawInt(A));
      }
      return true;
    }
    case RvRef::Kind::Aggregate: {
      uint32_t Id = newAgg();
      for (uint32_t Oi = RV.A; Oi != RV.B; ++Oi) {
        VVal V;
        if (!evalOperand(Oi, V)) // May grow AggPool; re-index below.
          return false;
        AggPool[Id].push_back(V);
      }
      Out = aggVal(Id);
      return true;
    }
    case RvRef::Kind::Discriminant: {
      const VVal *V = nullptr;
      if (!readPlaceRef(RV.P, V))
        return false;
      Out = makeIntV(coerceInt(*V));
      return true;
    }
    case RvRef::Kind::Len: {
      const VVal *V = nullptr;
      if (!readPlaceRef(RV.P, V))
        return false;
      Out = makeIntV(V->K == VKind::Aggregate
                         ? static_cast<int64_t>(AggPool[V->Idx].size())
                         : 0);
      return true;
    }
    }
    return trap(TrapKind::TypeMismatch, "unsupported rvalue");
  }

  RS_VM_HOT bool writePlace(uint32_t PlaceId, const VVal &V) {
    // Fast path: the non-deref write path never drops the overwritten
    // value, so a resolvable leaf is a plain store. Only bare locals get
    // their init reason refreshed (projected writes leave the cell alone).
    const PlaceRef &PR = P.Places[PlaceId];
    if (PR.isLocal()) {
      VCell &C = CurLocals[PR.Base];
      if (C.StorageLive && !(C.Reason == Why::Dropped && C.V.isUninit())) {
        C.V = V;
        C.Reason = Why::NeverInit;
        return true;
      }
    } else if (!PR.HasDeref) {
      if (VVal *S = fastResolve(PR)) {
        *S = V;
        return true;
      }
    }
    return writePlaceSlow(PlaceId, V);
  }

  RS_VM_NOINLINE bool writePlaceSlow(uint32_t PlaceId, const VVal &V) {
    VTgt T;
    if (!resolvePlace(PlaceId, T))
      return false;
    VVal *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    if (P.Places[PlaceId].HasDeref) {
      if (Slot->isUninit()) {
        if (needsDropV(V))
          return trap(TrapKind::InvalidFree,
                      "assignment through pointer drops the previous value, "
                      "but the memory at " + tgtStr(T) +
                          " is uninitialized garbage (use ptr::write)");
      } else {
        dropValue(*Slot);
        if (Trapped)
          return false;
      }
    }
    *Slot = V;
    if (T.Space == PointerTarget::Space::Stack && T.PathLen == 0) {
      uint32_t S = T.FrameId < FrameSlots.size() ? FrameSlots[T.FrameId] : 0;
      if (S)
        Locals[Stack[S - 1].LocalsBase + T.Local].Reason = Why::NeverInit;
    }
    return true;
  }

  // --- Frames -------------------------------------------------------------

  bool pushFrame(uint32_t FnIdx, const std::vector<VVal> &Args, uint32_t RetPc,
                 uint32_t RetDest, bool RetHasDest) {
    const CompiledFunction &CF = P.Funcs[FnIdx];
    if (CallDepth >= Opts.MaxCallDepth)
      return trap(TrapKind::StackOverflow,
                  "call depth limit (" + std::to_string(Opts.MaxCallDepth) +
                      ") exceeded; result is inconclusive, not a bug");
    if (Args.size() != CF.NumArgs)
      return trap(TrapKind::TypeMismatch,
                  "call to '" + CF.Name + "' with wrong argument count");
    ++CallDepth;
    FrameSlots.push_back(static_cast<uint32_t>(Stack.size()) + 1);
    Stack.emplace_back();
    VFrame &F = Stack.back();
    F.Id = NextFrameId++;
    F.Fn = FnIdx;
    F.LocalsBase = LocalsTop;
    F.RetPc = RetPc;
    F.RetDest = RetDest;
    F.RetHasDest = RetHasDest;
    uint32_t NewTop = LocalsTop + CF.NumLocals;
    if (NewTop > Locals.size())
      Locals.resize(NewTop + 64);
    LocalsTop = NewTop;
    CurLocals = Locals.data() + F.LocalsBase;
    // A fresh local is live, never-initialized, and holds Uninit; only
    // the kind byte of a recycled cell's value needs clearing.
    for (unsigned Li = 0; Li != CF.NumLocals; ++Li) {
      VCell &C = CurLocals[Li];
      C.V.K = VKind::Uninit;
      C.StorageLive = true;
      C.Reason = Why::NeverInit;
    }
    for (size_t I = 0; I != Args.size(); ++I)
      CurLocals[1 + I].V = Args[I];
    Pc = CF.EntryPc;
    return true;
  }

  /// Module-call fast path: evaluates arguments straight into the callee's
  /// argument slots (scratch above LocalsTop until the frame is pushed),
  /// skipping the ArgBuf staging copy. Trap order matches the generic
  /// evalArgs-then-pushFrame sequence exactly: argument evaluation first,
  /// then the depth and arity checks.
  RS_VM_NOINLINE bool callModule(const CallSite &CS) {
    const CompiledFunction &CF = P.Funcs[static_cast<uint32_t>(CS.Callee)];
    const uint32_t NArgs = CS.ArgEnd - CS.ArgBegin;
    const uint32_t NewBase = LocalsTop;
    const uint32_t Need =
        NewBase + (CF.NumLocals > NArgs + 1 ? CF.NumLocals : NArgs + 1);
    if (Need > Locals.size()) {
      Locals.resize(Need + 64);
      CurLocals = Locals.data() + cur().LocalsBase;
    }
    for (uint32_t Oi = CS.ArgBegin; Oi != CS.ArgEnd; ++Oi)
      if (!evalOperand(Oi, Locals[NewBase + 1 + (Oi - CS.ArgBegin)].V))
        return false;
    if (CallDepth >= Opts.MaxCallDepth)
      return trap(TrapKind::StackOverflow,
                  "call depth limit (" + std::to_string(Opts.MaxCallDepth) +
                      ") exceeded; result is inconclusive, not a bug");
    if (NArgs != CF.NumArgs)
      return trap(TrapKind::TypeMismatch,
                  "call to '" + CF.Name + "' with wrong argument count");
    ++CallDepth;
    FrameSlots.push_back(static_cast<uint32_t>(Stack.size()) + 1);
    Stack.emplace_back();
    VFrame &F = Stack.back();
    F.Id = NextFrameId++;
    F.Fn = static_cast<uint32_t>(CS.Callee);
    F.LocalsBase = NewBase;
    F.RetPc = CS.TargetPc;
    F.RetDest = CS.Dest;
    F.RetHasDest = CS.HasDest;
    LocalsTop = NewBase + CF.NumLocals;
    CurLocals = Locals.data() + NewBase;
    // Same cell state pushFrame establishes, but the argument slots keep
    // the values evaluated above instead of being cleared and re-copied.
    for (unsigned Li = 0; Li != CF.NumLocals; ++Li) {
      VCell &C = CurLocals[Li];
      if (Li == 0 || Li > NArgs)
        C.V.K = VKind::Uninit;
      C.StorageLive = true;
      C.Reason = Why::NeverInit;
    }
    Pc = CF.EntryPc;
    return true;
  }

  bool storeDest(const CallSite &CS, const VVal &V) {
    if (!CS.HasDest)
      return true;
    return writePlace(CS.Dest, V);
  }

  RS_VM_HOT bool evalArgs(const CallSite &CS) {
    ArgBuf.clear();
    ArgBuf.reserve(CS.ArgEnd - CS.ArgBegin);
    for (uint32_t Oi = CS.ArgBegin; Oi != CS.ArgEnd; ++Oi) {
      VVal V;
      if (!evalOperand(Oi, V))
        return false;
      ArgBuf.push_back(V);
    }
    return true;
  }

  /// The lock a Mutex/RwLock/Once argument denotes.
  bool lockKeyOf(const CallSite &CS, const VVal &Arg, VTgt &Key) {
    if (Arg.K == VKind::Ptr) {
      Key = Arg.T;
      return true;
    }
    if (CS.Arg0Place != NoIndex)
      return resolvePlace(CS.Arg0Place, Key);
    return trap(TrapKind::TypeMismatch, "cannot identify lock argument");
  }

  /// The interpreter aborts without trapping on malformed intrinsic arity
  /// (e.g. a lock intrinsic with no arguments); mirror that exactly.
  bool haltQuiet() {
    Halted = true;
    return false;
  }

  bool execCall(const CallSite &CS);

  /// Syncs the loop's register-resident step counter back to the member
  /// on every exit path (run() reads Steps after the loop returns).
  struct StepSync {
    uint64_t &Mem;
    const uint64_t &Loc;
    ~StepSync() { Mem = Loc; }
  };

  /// Runs instructions until the entry frame returns (true) or execution
  /// aborts (false). On success EntryRet holds the entry return value.
  bool loop() {
    const Insn *const Insns = P.Insns.data();
    // Keep the virtual pc and step counter in locals so they live in
    // registers across the inlined fast paths (out-of-line helpers would
    // otherwise force a reload around every call). Each case stores the
    // pc back to the member before doing anything that can trap — trap()
    // anchors from P.Debug[Pc] — and execCall/pushFrame still *set* the
    // member, so the Call case reloads it afterwards. The step counter
    // syncs on every exit via StepSync.
    uint32_t Pcl = Pc;
    uint64_t StepsL = Steps;
    StepSync SyncSteps{Steps, StepsL};
#define VM_STEP()                                                              \
  do {                                                                         \
    if (RS_VM_UNLIKELY(++StepsL > Opts.StepLimit))                             \
      return stepTrap();                                                       \
  } while (0)
#if defined(__GNUC__)
    // Direct-threaded dispatch: replicating the indirect branch at every
    // opcode exit gives the branch predictor per-transition histories — a
    // substantial win over funneling through one shared switch branch.
    // Table order must match the Opcode enum.
    static const void *const Disp[] = {
        &&L_Nop,    &&L_StorageLive, &&L_StorageDead, &&L_Assign,
        &&L_Goto,   &&L_Switch,      &&L_Return,      &&L_Assert,
        &&L_Drop,   &&L_Call,        &&L_TrapMissingBlock};
#define VM_CASE(op) L_##op:
#define VM_NEXT goto *Disp[static_cast<unsigned>(Insns[Pcl].Op)]
    VM_NEXT;
#else
#define VM_CASE(op) case Opcode::op:
#define VM_NEXT continue
    while (true) {
      switch (Insns[Pcl].Op) {
#endif
    VM_CASE(Nop) {
      Pc = Pcl;
      VM_STEP();
      ++Pcl;
      VM_NEXT;
    }
    VM_CASE(StorageLive) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      VCell &C = CurLocals[I.A];
      C.StorageLive = true;
      C.V = makeUninitV();
      C.Reason = Why::NeverInit;
      ++Pcl;
      VM_NEXT;
    }
    VM_CASE(StorageDead) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      VCell &C = CurLocals[I.A];
      if (!C.V.isUninit()) {
        dropVal(C.V);
        C.Reason = Why::Dropped;
        if (Trapped)
          return false;
      }
      C.StorageLive = false;
      ++Pcl;
      VM_NEXT;
    }
    VM_CASE(Assign) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      // Fused forms tagged by the lowering: both sides are bare locals
      // (or a constant), so the place/rvalue pools can be skipped. Every
      // check the generic path performs is replicated; any failure falls
      // through to the generic path below for the exact trap.
      // Fused forms tagged by the lowering: both sides are bare locals
      // (or a constant), so the place/rvalue pools can be skipped. Every
      // check the generic path performs is replicated; any failure falls
      // through to the generic path below for the exact trap.
      if (I.Flags == AssignBinaryFused) {
        int FR = execFusedBinary(I);
        if (FR == 0)
          return false;
        if (FR == 1) {
          ++Pcl;
          VM_NEXT;
        }
      } else if (I.Flags != AssignGeneric) {
        VCell &D = CurLocals[I.C & 0xffffu];
        if (D.StorageLive && !(D.Reason == Why::Dropped && D.V.isUninit())) {
          if (I.Flags == AssignConstToLocal) {
            D.V = VConsts[I.C >> 16];
            D.Reason = Why::NeverInit;
            ++Pcl;
            VM_NEXT;
          }
          VCell &S = CurLocals[I.C >> 16];
          if (I.Flags == AssignCopyLocal) {
            if (S.StorageLive && !S.V.isUninit() &&
                S.V.K != VKind::Aggregate) {
              D.V = S.V;
              D.Reason = Why::NeverInit;
              ++Pcl;
              VM_NEXT;
            }
          } else if (S.StorageLive && !S.V.isUninit()) {
            // Move. The temporary keeps dst == src correct: the generic
            // path reads the value out before marking the source moved.
            VVal Tmp = S.V;
            S.V.K = VKind::Uninit;
            S.Reason = Why::Moved;
            D.V = Tmp;
            D.Reason = Why::NeverInit;
            ++Pcl;
            VM_NEXT;
          }
        }
      }
      // Use and Binary cover almost all assignments; keep them inline.
      const RvRef &RV = P.Rvalues[I.B];
      VVal V;
      if (RV.K == RvRef::Kind::Use) {
        if (!evalOperand(RV.A, V))
          return false;
      } else if (RV.K == RvRef::Kind::Binary) {
        VVal A, B;
        if (!evalOperand(RV.A, A) || !evalOperand(RV.B, B) ||
            !evalBinary(static_cast<mir::BinOp>(RV.Op), A, B, V))
          return false;
      } else if (!evalRvalue(I.B, V)) {
        return false;
      }
      if (!writePlace(I.A, V))
        return false;
      ++Pcl;
      VM_NEXT;
    }
    VM_CASE(Goto) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      hit(I.B);
      Pcl = I.A;
      VM_NEXT;
    }
    VM_CASE(Switch) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      int64_t X;
      // Flags == 1: discriminant is a copy of the bare local in C (set by
      // the lowering); read the cell in place. Any check failure falls
      // back to the generic operand path for the exact trap.
      const VCell *DC = I.Flags ? &CurLocals[I.C] : nullptr;
      if (DC && RS_VM_LIKELY(DC->StorageLive && !DC->V.isUninit() &&
                             DC->V.K != VKind::Aggregate)) {
        X = coerceInt(DC->V);
      } else {
        VVal D;
        if (!evalOperand(I.A, D))
          return false;
        X = coerceInt(D);
      }
      const SwitchRef &SR = P.Switches[I.B];
      uint32_t NextPc = SR.OtherPc;
      uint32_t Edge = SR.OtherEdge;
      for (uint32_t Ci = SR.CaseBegin; Ci != SR.CaseEnd; ++Ci) {
        if (P.SwitchCases[Ci].Value == X) {
          NextPc = P.SwitchCases[Ci].Pc;
          Edge = P.SwitchCases[Ci].Edge;
          break;
        }
      }
      hit(Edge);
      Pcl = NextPc;
      VM_NEXT;
    }
    VM_CASE(Return) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      hit(I.A);
      VFrame F = Stack.back();
      VVal Ret = Locals[F.LocalsBase].V;
      FrameSlots[F.Id] = 0; // Locals die; pointers into them dangle.
      Stack.pop_back();
      LocalsTop = F.LocalsBase;
      --CallDepth;
      if (Stack.empty()) {
        EntryRet = Ret;
        return true;
      }
      CurLocals = Locals.data() + cur().LocalsBase;
      if (F.IsOnceInit) {
        onceSet(F.OnceKey, OnceSt::Done);
        if (F.OnceHasDest && !writePlace(F.OnceDest, makeUnitV()))
          return false;
      } else if (F.RetHasDest) {
        if (!writePlace(F.RetDest, Ret))
          return false;
      }
      Pcl = F.RetPc;
      VM_NEXT;
    }
    VM_CASE(Assert) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      VVal C;
      if (!evalOperand(I.A, C))
        return false;
      if (C.K != VKind::Bool || C.Int == 0)
        return trap(TrapKind::AssertFailed, "assertion failed");
      hit(I.C);
      Pcl = I.B;
      VM_NEXT;
    }
    VM_CASE(Drop) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      const PlaceRef &PR = P.Places[I.A];
      if (PR.isLocal()) {
        VCell &C = CurLocals[PR.Base];
        if (C.StorageLive && !(C.Reason == Why::Dropped && C.V.isUninit())) {
          if (C.V.isUninit()) {
            if ((I.Flags & DropFlagTypeHasDrop) &&
                C.Reason == Why::NeverInit)
              return trap(TrapKind::InvalidFree,
                          "drop of uninitialized value in " +
                              placeToString(I.A));
          } else {
            dropVal(C.V);
            if (Trapped)
              return false;
          }
          if (I.Flags & DropFlagIsLocal)
            C.Reason = Why::Dropped;
          hit(I.C);
          Pcl = I.B;
          VM_NEXT;
        }
      }
      VTgt T;
      if (!resolvePlace(I.A, T))
        return false;
      VVal *Slot = resolveTarget(T);
      if (!Slot)
        return false;
      if (Slot->isUninit()) {
        if ((I.Flags & DropFlagTypeHasDrop) &&
            Locals[cur().LocalsBase + P.Places[I.A].Base].Reason ==
                Why::NeverInit)
          return trap(TrapKind::InvalidFree,
                      "drop of uninitialized value in " + placeToString(I.A));
      } else {
        dropValue(*Slot);
        if (Trapped)
          return false;
      }
      if (I.Flags & DropFlagIsLocal)
        Locals[cur().LocalsBase + P.Places[I.A].Base].Reason = Why::Dropped;
      hit(I.C);
      Pcl = I.B;
      VM_NEXT;
    }
    VM_CASE(Call) {
      const Insn &I = Insns[Pcl];
      Pc = Pcl;
      VM_STEP();
      // Plain module calls skip the intrinsic switch entirely.
      const CallSite &CS = P.Calls[I.A];
      if (CS.Kind == mir::IntrinsicKind::None && CS.Callee >= 0) {
        hit(CS.Edge);
        if (!callModule(CS))
          return false;
        Pcl = Pc; // callModule set Pc to the callee's entry.
        VM_NEXT;
      }
      if (!execCall(CS))
        return false;
      Pcl = Pc; // execCall set Pc to the continuation (or a callee entry).
      VM_NEXT;
    }
    VM_CASE(TrapMissingBlock) {
      Pc = Pcl;
      return trap(TrapKind::InvalidPointer, "branch to missing block");
    }
#if !defined(__GNUC__)
      }
    }
#endif
#undef VM_CASE
#undef VM_NEXT
#undef VM_STEP
  }

  /// Reconstructs a place's source spelling for trap messages (cold path).
  std::string placeToString(uint32_t PlaceId) const {
    const PlaceRef &PR = P.Places[PlaceId];
    mir::Place Pl(PR.Base);
    for (uint32_t Pi = PR.ProjBegin; Pi != PR.ProjEnd; ++Pi) {
      const ProjRef &E = P.Projs[Pi];
      switch (E.Kind) {
      case ProjRef::Deref:
        Pl.Projs.push_back(mir::ProjectionElem::deref());
        break;
      case ProjRef::Field:
        Pl.Projs.push_back(mir::ProjectionElem::field(E.Arg));
        break;
      case ProjRef::Index:
        Pl.Projs.push_back(mir::ProjectionElem::index(E.Arg));
        break;
      }
    }
    return Pl.toString();
  }

  bool execEntry(uint32_t FnIdx, const std::vector<VVal> &Args, VVal &Ret) {
    if (!pushFrame(FnIdx, Args, 0, 0, false))
      return false;
    if (!loop())
      return false;
    Ret = EntryRet;
    return true;
  }

  VVal defaultArgumentV(const mir::Type *Ty);
};

//===----------------------------------------------------------------------===//
// Calls and intrinsics
//===----------------------------------------------------------------------===//

bool Vm::Impl::execCall(const CallSite &CS) {
  hit(CS.Edge);
  using mir::IntrinsicKind;
  switch (CS.Kind) {
  case IntrinsicKind::MutexLock:
  case IntrinsicKind::RwLockRead:
  case IntrinsicKind::RwLockWrite:
  case IntrinsicKind::RefCellBorrow:
  case IntrinsicKind::RefCellBorrowMut: {
    if (CS.ArgBegin == CS.ArgEnd)
      return haltQuiet();
    VVal Arg;
    if (!evalOperand(CS.ArgBegin, Arg))
      return false;
    VTgt Key = zeroTgt();
    if (!lockKeyOf(CS, Arg, Key))
      return false;
    bool IsBorrow = isBorrowAcquire(CS.Kind);
    bool Exclusive = isExclusiveAcquire(CS.Kind) ||
                     CS.Kind == IntrinsicKind::RefCellBorrowMut;
    VLock &L = lockFor(Key);
    if (L.Exclusive || (Exclusive && L.Shared > 0)) {
      if (IsBorrow)
        return trap(TrapKind::BorrowPanic,
                    "RefCell at " + tgtStr(Key) +
                        " already borrowed (BorrowMutError panic)");
      return trap(TrapKind::Deadlock,
                  "acquiring lock " + tgtStr(Key) +
                      " already held by this thread (the guard from the "
                      "first acquisition is still alive)");
    }
    if (Exclusive)
      L.Exclusive = true;
    else
      ++L.Shared;
    if (!storeDest(CS, makeGuardV(Key, Exclusive)))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::MemDrop: {
    for (uint32_t Oi = CS.ArgBegin; Oi != CS.ArgEnd; ++Oi) {
      VVal V;
      if (!evalOperand(Oi, V))
        return false;
      dropValue(V);
      if (Trapped)
        return false;
      const OperandRef &O = P.Operands[Oi];
      if (O.Kind == OperandRef::Move && P.Places[O.Index].isLocal())
        Locals[cur().LocalsBase + P.Places[O.Index].Base].Reason =
            Why::Dropped;
    }
    if (!storeDest(CS, makeUnitV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::MemForget: {
    if (!evalArgs(CS))
      return false;
    if (!storeDest(CS, makeUnitV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::BoxNew: {
    if (!evalArgs(CS))
      return false;
    VVal Inner = ArgBuf.empty() ? makeUnitV() : ArgBuf[0];
    if (!storeDest(CS, makePtrV(freshHeap(Inner), /*Owning=*/true)))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::Alloc: {
    if (!evalArgs(CS))
      return false;
    if (!storeDest(CS, makePtrV(freshHeap(makeUninitV(),
                                          /*Initialized=*/false))))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::Dealloc: {
    if (CS.ArgBegin == CS.ArgEnd)
      return haltQuiet();
    VVal Arg;
    if (!evalOperand(CS.ArgBegin, Arg))
      return false;
    if (Arg.K != VKind::Ptr || Arg.T.Space != PointerTarget::Space::Heap)
      return trap(TrapKind::InvalidPointer, "dealloc of a non-heap pointer");
    VHeapObj *H = heapFind(Arg.T.HeapId);
    if (!H)
      return trap(TrapKind::InvalidPointer, "dealloc of unknown pointer");
    if (H->Freed)
      return trap(TrapKind::DoubleFree,
                  "dealloc of already-freed " + tgtStr(Arg.T));
    H->Freed = true;
    if (!storeDest(CS, makeUnitV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::PtrRead: {
    if (CS.ArgBegin == CS.ArgEnd)
      return haltQuiet();
    VVal Arg;
    if (!evalOperand(CS.ArgBegin, Arg))
      return false;
    if (Arg.K != VKind::Ptr)
      return trap(TrapKind::TypeMismatch, "ptr::read of a non-pointer");
    VVal *Slot = resolveTarget(Arg.T);
    if (!Slot)
      return false;
    if (Slot->isUninit())
      return trap(TrapKind::UninitRead, "ptr::read of uninitialized memory");
    VVal Dup = copyVal(*Slot); // Bitwise duplication: ownership duplicated.
    if (!storeDest(CS, Dup))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::PtrWrite: {
    if (CS.ArgEnd - CS.ArgBegin < 2)
      return haltQuiet();
    VVal Ptr, V;
    if (!evalOperand(CS.ArgBegin, Ptr) || !evalOperand(CS.ArgBegin + 1, V))
      return false;
    if (Ptr.K != VKind::Ptr)
      return trap(TrapKind::TypeMismatch, "ptr::write to a non-pointer");
    VVal *Slot = resolveTarget(Ptr.T);
    if (!Slot)
      return false;
    *Slot = V; // No drop of the old value: that is the point.
    if (!storeDest(CS, makeUnitV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::ArcNew: {
    if (!evalArgs(CS))
      return false;
    VVal Inner = ArgBuf.empty() ? makeUnitV() : ArgBuf[0];
    VTgt T = freshHeap(Inner);
    Heap[T.HeapId - 1].RefCount = 1;
    if (!storeDest(CS, makePtrV(T, /*Owning=*/true, /*RefCounted=*/true)))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::ArcClone: {
    if (CS.ArgBegin == CS.ArgEnd)
      return haltQuiet();
    VVal Arg;
    if (!evalOperand(CS.ArgBegin, Arg))
      return false;
    VVal Clone = copyVal(Arg);
    if (Clone.K == VKind::Ptr &&
        Clone.T.Space == PointerTarget::Space::Heap) {
      if (VHeapObj *H = heapFind(Clone.T.HeapId))
        ++H->RefCount;
      Clone.Flags |= FlagOwning | FlagRefCounted;
    }
    if (!storeDest(CS, Clone))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::ThreadSpawn: {
    if (CS.HasSpawnName)
      SpawnQueue.push_back(CS.SpawnFn);
    if (!storeDest(CS, makeOpaqueV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::AtomicOp: {
    if (!evalArgs(CS))
      return false;
    if (ArgBuf.empty() || ArgBuf[0].K != VKind::Ptr)
      return trap(TrapKind::TypeMismatch, "atomic op needs a reference");
    VVal *Slot = resolveTarget(ArgBuf[0].T);
    if (!Slot)
      return false;
    if (Slot->isUninit())
      *Slot = makeBoolV(false);
    VVal Old = copyVal(*Slot);
    if (CS.Atomic == AtomicOpKind::CompareAndSwap && ArgBuf.size() >= 3) {
      bool Equal = (Old.K == VKind::Bool && ArgBuf[1].K == VKind::Bool &&
                    Old.Int == ArgBuf[1].Int) ||
                   (Old.K == VKind::Int && ArgBuf[1].K == VKind::Int &&
                    Old.Int == ArgBuf[1].Int);
      if (Equal) {
        VVal New = copyVal(ArgBuf[2]);
        Slot = resolveTarget(ArgBuf[0].T); // copyVal may grow AggPool.
        *Slot = New;
      }
      if (!storeDest(CS, Old))
        return false;
      Pc = CS.TargetPc;
      return true;
    }
    if (CS.Atomic == AtomicOpKind::Store && ArgBuf.size() >= 2) {
      VVal New = copyVal(ArgBuf[1]);
      Slot = resolveTarget(ArgBuf[0].T);
      *Slot = New;
      if (!storeDest(CS, makeUnitV()))
        return false;
      Pc = CS.TargetPc;
      return true;
    }
    if (CS.Atomic == AtomicOpKind::FetchAdd && ArgBuf.size() >= 2 &&
        Old.K == VKind::Int) {
      *Slot = makeIntV(Old.Int + rawInt(ArgBuf[1]));
      if (!storeDest(CS, Old))
        return false;
      Pc = CS.TargetPc;
      return true;
    }
    if (!storeDest(CS, Old)) // load and anything else.
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::OnceCall: {
    if (CS.ArgBegin == CS.ArgEnd)
      return haltQuiet();
    VVal Arg;
    if (!evalOperand(CS.ArgBegin, Arg))
      return false;
    VTgt Key = zeroTgt();
    if (!lockKeyOf(CS, Arg, Key))
      return false;
    OnceSt *St = onceFind(Key);
    if (St && *St == OnceSt::Running)
      return trap(TrapKind::Deadlock,
                  "call_once on " + tgtStr(Key) +
                      " re-entered while its initializer is still running");
    if (St && *St == OnceSt::Done) {
      if (!storeDest(CS, makeUnitV()))
        return false;
      Pc = CS.TargetPc;
      return true;
    }
    onceSet(Key, OnceSt::Running);
    if (CS.OnceInit >= 0) {
      const CompiledFunction &Init = P.Funcs[CS.OnceInit];
      std::vector<VVal> InitArgs;
      for (unsigned A = 1; A <= Init.NumArgs; ++A)
        InitArgs.push_back(A == 1 ? Arg : makeOpaqueV());
      // Continuation state: the frame marks the Once done and stores the
      // call_once destination when it returns.
      if (!pushFrame(CS.OnceInit, InitArgs, CS.TargetPc, 0, false))
        return false;
      VFrame &F = cur();
      F.IsOnceInit = true;
      F.OnceKey = Key;
      F.OnceDest = CS.Dest;
      F.OnceHasDest = CS.HasDest;
      return true;
    }
    onceSet(Key, OnceSt::Done);
    if (!storeDest(CS, makeUnitV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::PtrCopy:
  case IntrinsicKind::CondvarWait:
  case IntrinsicKind::CondvarNotify:
  case IntrinsicKind::ChannelSend:
  case IntrinsicKind::ChannelRecv: {
    if (!evalArgs(CS))
      return false;
    if (!storeDest(CS, makeOpaqueV()))
      return false;
    Pc = CS.TargetPc;
    return true;
  }
  case IntrinsicKind::None:
    break;
  }

  // Module-defined function: push a frame. Unknown external calls return a
  // fresh opaque heap allocation (mirroring the static analysis's model).
  if (!evalArgs(CS))
    return false;
  if (CS.Callee >= 0)
    return pushFrame(CS.Callee, ArgBuf, CS.TargetPc, CS.Dest, CS.HasDest);
  if (!storeDest(CS, makePtrV(freshHeap(makeOpaqueV()), /*Owning=*/true)))
    return false;
  Pc = CS.TargetPc;
  return true;
}

//===----------------------------------------------------------------------===//
// Argument synthesis
//===----------------------------------------------------------------------===//

VVal Vm::Impl::defaultArgumentV(const mir::Type *Ty) {
  using mir::PrimKind;
  using mir::Type;
  if (!Ty)
    return makeOpaqueV();
  switch (Ty->kind()) {
  case Type::Kind::Prim:
    switch (Ty->prim()) {
    case PrimKind::Bool:
      return makeBoolV(false);
    case PrimKind::Unit:
      return makeUnitV();
    case PrimKind::Str: {
      VVal V;
      V.K = VKind::Str;
      V.Idx = EmptyStrId;
      return V;
    }
    default:
      return makeIntV(0);
    }
  case Type::Kind::Ref:
  case Type::Kind::RawPtr: {
    VVal Inner = defaultArgumentV(Ty->pointee());
    return makePtrV(freshHeap(Inner));
  }
  case Type::Kind::Tuple: {
    uint32_t Id = newAgg();
    for (const Type *E : Ty->args()) {
      VVal Elem = defaultArgumentV(E); // May grow AggPool; sequence first.
      AggPool[Id].push_back(Elem);
    }
    return aggVal(Id);
  }
  case Type::Kind::Array:
  case Type::Kind::Slice:
    return aggVal(newAgg());
  case Type::Kind::Adt: {
    if ((Ty->adtName() == "Mutex" || Ty->adtName() == "RwLock") &&
        !Ty->args().empty())
      return defaultArgumentV(Ty->args()[0]);
    if (const mir::StructDecl *S = P.Src->findStruct(Ty->adtName())) {
      uint32_t Id = newAgg();
      for (const auto &[Name, FieldTy] : S->Fields) {
        VVal Elem = defaultArgumentV(FieldTy);
        AggPool[Id].push_back(Elem);
      }
      return aggVal(Id);
    }
    return makeOpaqueV();
  }
  }
  return makeOpaqueV();
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Vm::Vm(const Program &Prog, Options Opts)
    : P(std::make_unique<Impl>(Prog, Opts)) {}

Vm::Vm(const Program &Prog) : Vm(Prog, Options()) {}

Vm::~Vm() = default;

Value Vm::defaultArgument(const mir::Type *Ty) {
  return P->toInterp(P->defaultArgumentV(Ty));
}

ExecResult Vm::run(const std::string &FnName) {
  int32_t FnIdx = P->findFuncFast(FnName);
  if (FnIdx < 0) {
    ExecResult R;
    R.Error = Trap{TrapKind::UnknownFunction,
                   "no function named '" + FnName + "'", FnName, 0, 0};
    return R;
  }
  P->reset();
  const std::vector<VVal> &Args = P->entryArgs(static_cast<uint32_t>(FnIdx));
  ExecResult R;
  VVal Ret;
  bool Ok = P->execEntry(FnIdx, Args, Ret);
  // Run spawned threads sequentially (one deterministic schedule).
  while (Ok && P->Opts.RunSpawnedThreads && !P->SpawnQueue.empty()) {
    int32_t Next = P->SpawnQueue.front();
    P->SpawnQueue.pop_front();
    if (Next < 0)
      continue;
    const CompiledFunction &TFn = P->P.Funcs[Next];
    std::vector<VVal> TArgs;
    for (mir::LocalId A = 1; A <= TFn.NumArgs; ++A)
      TArgs.push_back(P->defaultArgumentV(TFn.Src->localType(A)));
    VVal TRet;
    Ok = P->execEntry(static_cast<uint32_t>(Next), TArgs, TRet);
  }
  R.Ok = Ok;
  R.Steps = P->Steps;
  if (Ok)
    R.Return = P->toInterp(Ret);
  else
    R.Error = P->Error;
  return R;
}

ExecResult Vm::run(const std::string &FnName, std::vector<Value> Args) {
  int32_t FnIdx = P->findFuncFast(FnName);
  if (FnIdx < 0) {
    ExecResult R;
    R.Error = Trap{TrapKind::UnknownFunction,
                   "no function named '" + FnName + "'", FnName, 0, 0};
    return R;
  }
  P->reset();
  std::vector<VVal> VArgs;
  VArgs.reserve(Args.size());
  for (const Value &A : Args)
    VArgs.push_back(P->fromInterp(A));
  ExecResult R;
  VVal Ret;
  R.Ok = P->execEntry(static_cast<uint32_t>(FnIdx), VArgs, Ret);
  R.Steps = P->Steps;
  if (R.Ok)
    R.Return = P->toInterp(Ret);
  else
    R.Error = P->Error;
  return R;
}

std::vector<Trap> Vm::runAll() {
  std::vector<Trap> Traps;
  for (const CompiledFunction &Fn : P->P.Funcs) {
    ExecResult R = run(Fn.Name);
    if (!R.Ok && R.Error)
      Traps.push_back(*R.Error);
  }
  return Traps;
}

const BitVec &Vm::edgeHits() const { return P->EdgeHits; }

void Vm::clearCoverage() { P->EdgeHits.clear(); }

std::vector<uint64_t> Vm::coveredKeys() const {
  std::vector<uint64_t> Keys;
  for (size_t I = 0; I != P->EdgeHits.size(); ++I)
    if (P->EdgeHits.test(I))
      Keys.push_back(P->P.EdgeKeys[I]);
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());
  return Keys;
}

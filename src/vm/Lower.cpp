#include "vm/Lower.h"

#include "analysis/Objects.h" // typeNeedsDrop
#include "support/Hash.h"

#include <map>
#include <string>

using namespace rs;
using namespace rs::vm;
using namespace rs::mir;

namespace {

//===----------------------------------------------------------------------===//
// Shape strings for edge keys
//===----------------------------------------------------------------------===//
//
// An edge key hashes the *shape* of the code around a CFG transfer: the
// source block's last statement + terminator, the transfer slot, and the
// destination block's first instruction. Local numbering is abstracted away
// and integer constants are bucketed coarsely, so:
//  - the same code shape in two different generated modules shares a key
//    (cumulative corpus coverage is a union over modules),
//  - the clean generator's finite statement vocabulary saturates, while
//    mutations that change what the code *does* (injected bug patterns,
//    operator swaps, constant-class changes) mint new keys.

std::string bucketInt(int64_t V) {
  if (V == 0)
    return "0";
  if (V == 1)
    return "1";
  if (V < 0)
    return "n";
  if (V <= 16)
    return "s";
  return "b";
}

std::string placeShape(const Place &P) {
  std::string Out;
  for (const ProjectionElem &E : P.Projs) {
    switch (E.K) {
    case ProjectionElem::Kind::Deref:
      Out += "*";
      break;
    case ProjectionElem::Kind::Field:
      Out += "." + std::to_string(E.FieldIdx);
      break;
    case ProjectionElem::Kind::Index:
      Out += "[]";
      break;
    }
  }
  return Out;
}

std::string operandShape(const Operand &O) {
  switch (O.K) {
  case Operand::Kind::Copy:
    return "c" + placeShape(O.P);
  case Operand::Kind::Move:
    return "m" + placeShape(O.P);
  case Operand::Kind::Const:
    switch (O.C.K) {
    case ConstValue::Kind::Int:
      return "i" + bucketInt(O.C.Int);
    case ConstValue::Kind::Bool:
      return O.C.Bool ? "bt" : "bf";
    case ConstValue::Kind::Str:
      return "s";
    case ConstValue::Kind::Unit:
      return "u";
    }
  }
  return "?";
}

std::string rvalueShape(const Rvalue &RV) {
  switch (RV.K) {
  case Rvalue::Kind::Use:
  case Rvalue::Kind::Cast:
    return "u(" + operandShape(RV.Ops[0]) + ")";
  case Rvalue::Kind::Ref:
  case Rvalue::Kind::AddressOf:
    return "&" + placeShape(RV.P);
  case Rvalue::Kind::BinaryOp:
    return std::string(binOpName(RV.BOp)) + "(" + operandShape(RV.Ops[0]) +
           "," + operandShape(RV.Ops[1]) + ")";
  case Rvalue::Kind::UnaryOp:
    return std::string(RV.UOp == UnOp::Not ? "!" : "-") + "(" +
           operandShape(RV.Ops[0]) + ")";
  case Rvalue::Kind::Aggregate: {
    std::string Out = "{";
    for (const Operand &O : RV.Ops)
      Out += operandShape(O) + ",";
    return Out + "}";
  }
  case Rvalue::Kind::Discriminant:
    return "d" + placeShape(RV.P);
  case Rvalue::Kind::Len:
    return "l" + placeShape(RV.P);
  }
  return "?";
}

std::string statementShape(const Statement &S) {
  switch (S.K) {
  case Statement::Kind::Nop:
    return "N";
  case Statement::Kind::StorageLive:
    return "L";
  case Statement::Kind::StorageDead:
    return "D";
  case Statement::Kind::Assign:
    return "A" + placeShape(S.Dest) + "=" + rvalueShape(S.RV);
  }
  return "?";
}

std::string terminatorShape(const Terminator &T) {
  switch (T.K) {
  case Terminator::Kind::Goto:
    return "G";
  case Terminator::Kind::SwitchInt:
    return "S" + operandShape(T.Discr) + ":" +
           std::to_string(T.Cases.size());
  case Terminator::Kind::Return:
    return "R";
  case Terminator::Kind::Resume:
    return "X";
  case Terminator::Kind::Unreachable:
    return "U";
  case Terminator::Kind::Assert:
    return "T" + operandShape(T.Discr);
  case Terminator::Kind::Drop:
    return "P" + placeShape(T.DropPlace);
  case Terminator::Kind::Call: {
    IntrinsicKind Kind = classifyIntrinsic(T.Callee);
    std::string Callee =
        Kind != IntrinsicKind::None
            ? std::to_string(static_cast<int>(Kind))
            : "@"; // Module-defined and unknown callees share one tag:
                   // their bodies carry their own edges.
    std::string Out = "C" + Callee + "(";
    for (const Operand &O : T.Args)
      Out += operandShape(O) + ",";
    return Out + ")" + (T.HasDest ? "d" : "");
  }
  }
  return "?";
}

/// Shape of the first instruction of a block (a statement, or the
/// terminator when the block has none).
std::string blockHead(const BasicBlock &BB) {
  return BB.Statements.empty() ? terminatorShape(BB.Term)
                               : statementShape(BB.Statements.front());
}

/// Shape of the tail of a block: last statement + terminator.
std::string blockTail(const BasicBlock &BB) {
  std::string Out =
      BB.Statements.empty() ? "" : statementShape(BB.Statements.back());
  return Out + ";" + terminatorShape(BB.Term);
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class Lowering {
public:
  explicit Lowering(const Module &M) : M(M) { P.Src = &M; }

  Program run() {
    // Pass 1: function table, so call targets resolve by index.
    uint32_t Idx = 0;
    for (const auto &Fn : M.functions()) {
      CompiledFunction CF;
      CF.Name = Fn.Name;
      CF.NumArgs = Fn.NumArgs;
      CF.NumLocals = Fn.numLocals();
      CF.NumBlocks = Fn.numBlocks();
      CF.Src = &Fn;
      P.Funcs.push_back(std::move(CF));
      P.FuncIndex.emplace(Fn.Name, Idx++);
    }
    // Pass 2: bodies.
    for (uint32_t I = 0; I != P.Funcs.size(); ++I)
      lowerFunction(I, *P.Funcs[I].Src);
    return std::move(P);
  }

private:
  const Module &M;
  Program P;

  // Per-function lowering state.
  std::vector<uint32_t> BlockPc;
  uint32_t StubPc = 0;
  std::vector<std::string> Heads; ///< blockHead per block.

  uint32_t targetPc(BlockId B) const {
    return B < BlockPc.size() ? BlockPc[B] : StubPc;
  }

  const std::string &headOf(BlockId B) const {
    static const std::string Missing = "<missing>";
    return B < Heads.size() ? Heads[B] : Missing;
  }

  uint32_t addEdge(const std::string &Tail, const std::string &Slot,
                   const std::string &Head) {
    uint64_t Key = fnv1a64(Tail + "|" + Slot + "|" + Head);
    P.EdgeKeys.push_back(Key);
    return static_cast<uint32_t>(P.EdgeKeys.size() - 1);
  }

  uint32_t lowerPlace(const Place &Pl) {
    PlaceRef R;
    R.Base = Pl.Base;
    R.ProjBegin = static_cast<uint32_t>(P.Projs.size());
    for (const ProjectionElem &E : Pl.Projs) {
      ProjRef PR;
      switch (E.K) {
      case ProjectionElem::Kind::Deref:
        PR.Kind = ProjRef::Deref;
        R.HasDeref = true;
        break;
      case ProjectionElem::Kind::Field:
        PR.Kind = ProjRef::Field;
        PR.Arg = E.FieldIdx;
        break;
      case ProjectionElem::Kind::Index:
        PR.Kind = ProjRef::Index;
        PR.Arg = E.IndexLocal;
        break;
      }
      P.Projs.push_back(PR);
    }
    R.ProjEnd = static_cast<uint32_t>(P.Projs.size());
    P.Places.push_back(R);
    return static_cast<uint32_t>(P.Places.size() - 1);
  }

  uint32_t lowerConst(const ConstValue &C) {
    interp::Value V;
    switch (C.K) {
    case ConstValue::Kind::Int:
      V = interp::Value::makeInt(C.Int);
      break;
    case ConstValue::Kind::Bool:
      V = interp::Value::makeBool(C.Bool);
      break;
    case ConstValue::Kind::Str:
      V = interp::Value::makeStr(C.Str);
      break;
    case ConstValue::Kind::Unit:
      V = interp::Value::makeUnit();
      break;
    }
    P.Consts.push_back(std::move(V));
    return static_cast<uint32_t>(P.Consts.size() - 1);
  }

  uint32_t lowerOperand(const Operand &O) {
    OperandRef R;
    switch (O.K) {
    case Operand::Kind::Copy:
      R.Kind = OperandRef::Copy;
      R.Index = lowerPlace(O.P);
      break;
    case Operand::Kind::Move:
      R.Kind = OperandRef::Move;
      R.Index = lowerPlace(O.P);
      break;
    case Operand::Kind::Const:
      R.Kind = OperandRef::Const;
      R.Index = lowerConst(O.C);
      break;
    }
    P.Operands.push_back(R);
    return static_cast<uint32_t>(P.Operands.size() - 1);
  }

  uint32_t lowerRvalue(const Rvalue &RV) {
    RvRef R;
    switch (RV.K) {
    case Rvalue::Kind::Use:
    case Rvalue::Kind::Cast: // Value-preserving, same as Use.
      R.K = RvRef::Kind::Use;
      R.A = lowerOperand(RV.Ops[0]);
      break;
    case Rvalue::Kind::Ref:
    case Rvalue::Kind::AddressOf:
      R.K = RvRef::Kind::Ref;
      R.P = lowerPlace(RV.P);
      break;
    case Rvalue::Kind::BinaryOp:
      R.K = RvRef::Kind::Binary;
      R.Op = static_cast<uint8_t>(RV.BOp);
      R.A = lowerOperand(RV.Ops[0]);
      R.B = lowerOperand(RV.Ops[1]);
      break;
    case Rvalue::Kind::UnaryOp:
      R.K = RvRef::Kind::Unary;
      R.Op = static_cast<uint8_t>(RV.UOp);
      R.A = lowerOperand(RV.Ops[0]);
      break;
    case Rvalue::Kind::Aggregate: {
      R.K = RvRef::Kind::Aggregate;
      // Operand ids for an aggregate must be contiguous: lowerOperand
      // appends one OperandRef per call (pools referenced by the operand
      // interleave, but the operand ids themselves stay consecutive).
      R.A = static_cast<uint32_t>(P.Operands.size());
      for (const Operand &O : RV.Ops)
        lowerOperand(O);
      R.B = static_cast<uint32_t>(P.Operands.size());
      break;
    }
    case Rvalue::Kind::Discriminant:
      R.K = RvRef::Kind::Discriminant;
      R.P = lowerPlace(RV.P);
      break;
    case Rvalue::Kind::Len:
      R.K = RvRef::Kind::Len;
      R.P = lowerPlace(RV.P);
      break;
    }
    P.Rvalues.push_back(R);
    return static_cast<uint32_t>(P.Rvalues.size() - 1);
  }

  static AtomicOpKind parseAtomicOp(std::string_view Callee) {
    size_t Sep = Callee.rfind("::");
    std::string_view Op =
        Sep == std::string_view::npos ? Callee : Callee.substr(Sep + 2);
    if (Op == "compare_and_swap")
      return AtomicOpKind::CompareAndSwap;
    if (Op == "store")
      return AtomicOpKind::Store;
    if (Op == "fetch_add")
      return AtomicOpKind::FetchAdd;
    return AtomicOpKind::Other;
  }

  uint32_t lowerCall(const Terminator &T, const std::string &Tail) {
    CallSite CS;
    CS.Kind = classifyIntrinsic(T.Callee);
    if (CS.Kind == IntrinsicKind::None)
      CS.Callee = P.findFunc(T.Callee);
    if (CS.Kind == IntrinsicKind::AtomicOp)
      CS.Atomic = parseAtomicOp(T.Callee);
    if (CS.Kind == IntrinsicKind::ThreadSpawn) {
      // The interpreter enqueues the spawn target's *name* and resolves it
      // when the queue drains; resolution against a fixed module commutes,
      // so pre-resolve here (a miss enqueues a skip marker for parity).
      CS.HasSpawnName = !T.Args.empty() && !T.Args[0].isPlace() &&
                        T.Args[0].C.K == ConstValue::Kind::Str;
      if (CS.HasSpawnName)
        CS.SpawnFn = P.findFunc(T.Args[0].C.Str);
    }
    if (CS.Kind == IntrinsicKind::OnceCall) {
      if (T.Args.size() >= 2 && !T.Args[1].isPlace() &&
          T.Args[1].C.K == ConstValue::Kind::Str)
        CS.OnceInit = P.findFunc(T.Args[1].C.Str);
    }
    CS.ArgBegin = static_cast<uint32_t>(P.Operands.size());
    for (const Operand &O : T.Args)
      lowerOperand(O);
    CS.ArgEnd = static_cast<uint32_t>(P.Operands.size());
    if (!T.Args.empty() && T.Args[0].isPlace())
      CS.Arg0Place = lowerPlace(T.Args[0].P);
    CS.HasDest = T.HasDest;
    if (T.HasDest)
      CS.Dest = lowerPlace(T.Dest);
    CS.TargetPc = targetPc(T.Target);
    CS.Edge = addEdge(Tail, "r", headOf(T.Target));
    P.Calls.push_back(std::move(CS));
    return static_cast<uint32_t>(P.Calls.size() - 1);
  }

  void emit(Insn I, mir::BlockId Block, uint32_t Stmt) {
    P.Insns.push_back(I);
    P.Debug.push_back({Block, Stmt});
  }

  void lowerFunction(uint32_t FnIdx, const Function &Fn) {
    // Pc layout: each block occupies (numStatements + 1) slots, then one
    // shared missing-block trap stub at the end of the function.
    uint32_t Pc = static_cast<uint32_t>(P.Insns.size());
    BlockPc.assign(Fn.numBlocks(), 0);
    Heads.assign(Fn.numBlocks(), "");
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      BlockPc[B] = Pc;
      Pc += static_cast<uint32_t>(Fn.Blocks[B].Statements.size()) + 1;
      Heads[B] = blockHead(Fn.Blocks[B]);
    }
    StubPc = Pc;

    P.Funcs[FnIdx].EntryPc =
        Fn.numBlocks() == 0 ? StubPc : BlockPc[0];

    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (size_t I = 0; I != BB.Statements.size(); ++I)
        lowerStatement(BB.Statements[I], B, static_cast<uint32_t>(I));
      lowerTerminator(Fn, BB, B);
    }

    emit({Opcode::TrapMissingBlock, 0, 0, 0, 0}, Fn.numBlocks(), 0);
  }

  void lowerStatement(const Statement &S, mir::BlockId Block, uint32_t Idx) {
    Insn I;
    switch (S.K) {
    case Statement::Kind::Nop:
      I.Op = Opcode::Nop;
      break;
    case Statement::Kind::StorageLive:
      I.Op = Opcode::StorageLive;
      I.A = S.Local;
      break;
    case Statement::Kind::StorageDead:
      I.Op = Opcode::StorageDead;
      I.A = S.Local;
      break;
    case Statement::Kind::Assign:
      I.Op = Opcode::Assign;
      I.A = lowerPlace(S.Dest);
      I.B = lowerRvalue(S.RV);
      specializeAssign(I);
      break;
    }
    emit(I, Block, Idx);
  }

  /// Tags local-to-local / const-to-local / scalar-binary assigns with a
  /// fused form (see the Assign* flags in Bytecode.h).
  void specializeAssign(Insn &I) {
    const PlaceRef &Dst = P.Places[I.A];
    if (!Dst.isLocal() || Dst.Base > 0xffff)
      return;
    const RvRef &RV = P.Rvalues[I.B];
    if (RV.K == RvRef::Kind::Use) {
      const OperandRef &O = P.Operands[RV.A];
      if (O.Kind == OperandRef::Const) {
        if (O.Index > 0xffff)
          return;
        I.Flags = AssignConstToLocal;
        I.C = static_cast<uint32_t>(Dst.Base) | (O.Index << 16);
        return;
      }
      const PlaceRef &Src = P.Places[O.Index];
      if (!Src.isLocal() || Src.Base > 0xffff)
        return;
      I.Flags = O.Kind == OperandRef::Copy ? AssignCopyLocal : AssignMoveLocal;
      I.C = static_cast<uint32_t>(Dst.Base) |
            (static_cast<uint32_t>(Src.Base) << 16);
      return;
    }
    if (RV.K == RvRef::Kind::Binary) {
      // Moves are excluded: a moved-out source must be marked, which the
      // fused path does not do.
      auto FuseOperand = [this](uint32_t OpId, uint16_t &Out, bool &IsConst) {
        const OperandRef &O = P.Operands[OpId];
        if (O.Kind == OperandRef::Const) {
          if (O.Index > 0xffff)
            return false;
          Out = static_cast<uint16_t>(O.Index);
          IsConst = true;
          return true;
        }
        if (O.Kind != OperandRef::Copy)
          return false;
        const PlaceRef &Pl = P.Places[O.Index];
        if (!Pl.isLocal() || Pl.Base > 0xffff)
          return false;
        Out = static_cast<uint16_t>(Pl.Base);
        IsConst = false;
        return true;
      };
      FusedBinary FB;
      bool LC = false, RC = false;
      if (!FuseOperand(RV.A, FB.L, LC) || !FuseOperand(RV.B, FB.R, RC))
        return;
      FB.Op = RV.Op;
      FB.ConstMask = (LC ? 1 : 0) | (RC ? 2 : 0);
      FB.Dst = static_cast<uint16_t>(Dst.Base);
      I.Flags = AssignBinaryFused;
      I.C = static_cast<uint32_t>(P.FusedBins.size());
      P.FusedBins.push_back(FB);
    }
  }

  void lowerTerminator(const Function &Fn, const BasicBlock &BB,
                       mir::BlockId Block) {
    const Terminator &T = BB.Term;
    const std::string Tail = blockTail(BB);
    const uint32_t Stmt = static_cast<uint32_t>(BB.Statements.size());
    Insn I;
    switch (T.K) {
    case Terminator::Kind::Goto:
      I.Op = Opcode::Goto;
      I.A = targetPc(T.Target);
      I.B = addEdge(Tail, "g", headOf(T.Target));
      break;
    case Terminator::Kind::SwitchInt: {
      I.Op = Opcode::Switch;
      I.A = lowerOperand(T.Discr);
      // A copy-of-bare-local discriminant (the common shape: a freshly
      // computed comparison temp) is tagged so the loop reads the cell
      // directly; C is otherwise unused on Switch.
      {
        const OperandRef &O = P.Operands[I.A];
        if (O.Kind == OperandRef::Copy && P.Places[O.Index].isLocal()) {
          I.Flags = 1;
          I.C = P.Places[O.Index].Base;
        }
      }
      SwitchRef SR;
      SR.CaseBegin = static_cast<uint32_t>(P.SwitchCases.size());
      for (const auto &[Case, Target] : T.Cases) {
        SwitchCaseRef CR;
        CR.Value = Case;
        CR.Pc = targetPc(Target);
        CR.Edge = addEdge(Tail, "c" + bucketInt(Case), headOf(Target));
        P.SwitchCases.push_back(CR);
      }
      SR.CaseEnd = static_cast<uint32_t>(P.SwitchCases.size());
      SR.OtherPc = targetPc(T.Target);
      SR.OtherEdge = addEdge(Tail, "o", headOf(T.Target));
      P.Switches.push_back(SR);
      I.B = static_cast<uint32_t>(P.Switches.size() - 1);
      break;
    }
    case Terminator::Kind::Return:
    case Terminator::Kind::Resume:
    case Terminator::Kind::Unreachable:
      I.Op = Opcode::Return;
      I.A = addEdge(Tail, "x", "");
      break;
    case Terminator::Kind::Assert:
      I.Op = Opcode::Assert;
      I.A = lowerOperand(T.Discr);
      I.B = targetPc(T.Target);
      I.C = addEdge(Tail, "a", headOf(T.Target));
      break;
    case Terminator::Kind::Drop: {
      I.Op = Opcode::Drop;
      I.A = lowerPlace(T.DropPlace);
      I.B = targetPc(T.Target);
      I.C = addEdge(Tail, "d", headOf(T.Target));
      if (T.DropPlace.isLocal()) {
        I.Flags |= DropFlagIsLocal;
        if (analysis::typeNeedsDrop(Fn.localType(T.DropPlace.Base), M))
          I.Flags |= DropFlagTypeHasDrop;
      }
      break;
    }
    case Terminator::Kind::Call:
      I.Op = Opcode::Call;
      I.A = lowerCall(T, Tail);
      break;
    }
    emit(I, Block, Stmt);
  }
};

} // namespace

Program rs::vm::compile(const Module &M) { return Lowering(M).run(); }

#include "study/BugDatabase.h"

#include <cassert>

using namespace rs::study;

BugDatabase::BugDatabase() {
  buildMemoryBugs();
  buildBlockingBugs();
  buildNonBlockingBugs();
  assignDates();
}

//===----------------------------------------------------------------------===//
// Memory bugs: Table 2 cell by cell (category x propagation x interior),
// Section 5.2 fix strategies, Table 1 per-project counts.
//===----------------------------------------------------------------------===//

void BugDatabase::buildMemoryBugs() {
  unsigned NextId = 1;

  // Per-category fix-strategy schedules realizing Section 5.2's 30/22/9/9:
  // buffer overflows are fixed by skipping the dangerous access; UAF and
  // double-free by lifetime adjustment (the paper's Figures 6/7 fixes); etc.
  unsigned NullCount = 0, UninitCount = 0, InvalidCount = 0;
  auto FixFor = [&](MemCategory C) {
    switch (C) {
    case MemCategory::Buffer:
      return MemFix::ConditionallySkip;
    case MemCategory::Null:
      return ++NullCount <= 9 ? MemFix::ConditionallySkip
                              : MemFix::ChangeOperands;
    case MemCategory::Uninitialized:
      return ++UninitCount <= 6 ? MemFix::ChangeOperands : MemFix::Other;
    case MemCategory::InvalidFree:
      return ++InvalidCount <= 2 ? MemFix::AdjustLifetime : MemFix::Other;
    case MemCategory::UseAfterFree:
    case MemCategory::DoubleFree:
      return MemFix::AdjustLifetime;
    }
    return MemFix::Other;
  };

  auto Emit = [&](MemCategory C, Propagation P, unsigned Count,
                  unsigned InteriorCount) {
    for (unsigned I = 0; I != Count; ++I) {
      MemoryBug B;
      B.Id = NextId++;
      B.Category = C;
      B.Prop = P;
      B.EffectInInteriorUnsafe = I < InteriorCount;
      B.Fix = FixFor(C);
      B.Proj = Project::Servo; // Reassigned below.
      B.Source = BugSource::GitHub;
      Memory.push_back(B);
    }
  };

  // Table 2, row "safe": one pre-2016 use-after-free entirely in safe code.
  Emit(MemCategory::UseAfterFree, Propagation::SafeToSafe, 1, 0);
  // Row "unsafe": 4(1) buffer, 12(4) null, 5(3) invalid free, 2(2) UAF.
  Emit(MemCategory::Buffer, Propagation::UnsafeToUnsafe, 4, 1);
  Emit(MemCategory::Null, Propagation::UnsafeToUnsafe, 12, 4);
  Emit(MemCategory::InvalidFree, Propagation::UnsafeToUnsafe, 5, 3);
  Emit(MemCategory::UseAfterFree, Propagation::UnsafeToUnsafe, 2, 2);
  // Row "safe -> unsafe": 17(10) buffer, 1 invalid, 11(4) UAF, 2(2) double.
  Emit(MemCategory::Buffer, Propagation::SafeToUnsafe, 17, 10);
  Emit(MemCategory::InvalidFree, Propagation::SafeToUnsafe, 1, 0);
  Emit(MemCategory::UseAfterFree, Propagation::SafeToUnsafe, 11, 4);
  Emit(MemCategory::DoubleFree, Propagation::SafeToUnsafe, 2, 2);
  // Row "unsafe -> safe": 7 uninitialized, 4 invalid, 4 double free.
  Emit(MemCategory::Uninitialized, Propagation::UnsafeToSafe, 7, 0);
  Emit(MemCategory::InvalidFree, Propagation::UnsafeToSafe, 4, 0);
  Emit(MemCategory::DoubleFree, Propagation::UnsafeToSafe, 4, 0);

  assert(Memory.size() == 70 && "Table 2 cells must sum to 70");

  // Project attribution: Table 1 reports 14/5/2/1/20/7 per project; the
  // remaining 21 come from the CVE/RustSec databases (21 memory + 1
  // non-blocking = the footnote's 22 database records).
  std::vector<Project> Slots;
  auto Push = [&Slots](Project P, unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      Slots.push_back(P);
  };
  Push(Project::Servo, 14);
  Push(Project::Redox, 20);
  Push(Project::Tock, 5);
  Push(Project::Ethereum, 2);
  Push(Project::TiKV, 1);
  Push(Project::Libraries, 7);
  Push(Project::CveDatabase, 21);
  assert(Slots.size() == Memory.size());
  for (size_t I = 0; I != Memory.size(); ++I) {
    Memory[I].Proj = Slots[I];
    if (Slots[I] == Project::CveDatabase)
      Memory[I].Source = BugSource::CVE;
  }
}

//===----------------------------------------------------------------------===//
// Blocking bugs: Table 3 cell by cell, Section 6.1 causes and fixes.
//===----------------------------------------------------------------------===//

void BugDatabase::buildBlockingBugs() {
  unsigned NextId = 1000;
  auto Emit = [&](Project P, BlockingPrimitive Prim, BlockingCause C,
                  unsigned Count) {
    for (unsigned I = 0; I != Count; ++I) {
      BlockingBug B;
      B.Id = NextId++;
      B.Proj = P;
      B.Primitive = Prim;
      B.Cause = C;
      B.Fix = BlockingFix::AdjustSyncOps; // Refined below.
      Blocking.push_back(B);
    }
  };

  // Servo: 6 Mutex&RwLock, 5 Channel, 2 Other.
  Emit(Project::Servo, BlockingPrimitive::Mutex, BlockingCause::DoubleLock, 4);
  Emit(Project::Servo, BlockingPrimitive::Mutex,
       BlockingCause::ConflictingOrder, 1);
  Emit(Project::Servo, BlockingPrimitive::Mutex, BlockingCause::ForgotUnlock,
       1);
  Emit(Project::Servo, BlockingPrimitive::Channel,
       BlockingCause::ChannelRecvBlock, 5);
  Emit(Project::Servo, BlockingPrimitive::Other, BlockingCause::OtherCause, 2);
  // Ethereum: 27 Mutex&RwLock, 6 Condvar, 1 Other.
  Emit(Project::Ethereum, BlockingPrimitive::Mutex, BlockingCause::DoubleLock,
       21);
  Emit(Project::Ethereum, BlockingPrimitive::Mutex,
       BlockingCause::ConflictingOrder, 6);
  Emit(Project::Ethereum, BlockingPrimitive::Condvar,
       BlockingCause::WaitNoNotify, 5);
  Emit(Project::Ethereum, BlockingPrimitive::Condvar,
       BlockingCause::MissedNotify, 1);
  Emit(Project::Ethereum, BlockingPrimitive::Other, BlockingCause::OtherCause,
       1);
  // TiKV: 3 Mutex&RwLock, 1 Condvar.
  Emit(Project::TiKV, BlockingPrimitive::Mutex, BlockingCause::DoubleLock, 3);
  Emit(Project::TiKV, BlockingPrimitive::Condvar, BlockingCause::WaitNoNotify,
       1);
  // Redox: 2 Mutex&RwLock.
  Emit(Project::Redox, BlockingPrimitive::Mutex, BlockingCause::DoubleLock, 2);
  // Libraries: 3 Condvar, 1 Channel, 1 Once, 1 Other.
  Emit(Project::Libraries, BlockingPrimitive::Condvar,
       BlockingCause::WaitNoNotify, 2);
  Emit(Project::Libraries, BlockingPrimitive::Condvar,
       BlockingCause::MissedNotify, 1);
  Emit(Project::Libraries, BlockingPrimitive::Channel,
       BlockingCause::ChannelSendFull, 1);
  Emit(Project::Libraries, BlockingPrimitive::Once,
       BlockingCause::OnceRecursion, 1);
  Emit(Project::Libraries, BlockingPrimitive::Other, BlockingCause::OtherCause,
       1);

  assert(Blocking.size() == 59 && "Table 3 cells must sum to 59");

  // Fixes (Section 6.1): 51 adjusted synchronization operations, 21 of
  // which moved the implicit unlock by adjusting the guard's lifetime (the
  // Figure 8 fix); the remaining 8 changed other logic (non-blocking
  // syscalls, removing the recursion, resizing the channel, ...).
  unsigned GuardLifetime = 0, Others = 0, RecvSeen = 0;
  for (BlockingBug &B : Blocking) {
    switch (B.Cause) {
    case BlockingCause::DoubleLock:
      B.Fix = GuardLifetime++ < 21 ? BlockingFix::AdjustGuardLifetime
                                   : BlockingFix::AdjustSyncOps;
      break;
    case BlockingCause::OtherCause:
    case BlockingCause::OnceRecursion:
    case BlockingCause::ChannelSendFull:
      B.Fix = BlockingFix::OtherFix;
      ++Others;
      break;
    case BlockingCause::ChannelRecvBlock:
      // Two of the channel bugs were restructured rather than re-
      // synchronized, completing the paper's 8 "other" fixes.
      B.Fix = ++RecvSeen <= 2 ? BlockingFix::OtherFix
                              : BlockingFix::AdjustSyncOps;
      break;
    default:
      B.Fix = BlockingFix::AdjustSyncOps;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Non-blocking bugs: Table 4 cell by cell, Section 6.2 attributes.
//===----------------------------------------------------------------------===//

void BugDatabase::buildNonBlockingBugs() {
  unsigned NextId = 2000;
  auto Emit = [&](Project P, SharingMethod S, unsigned Count) {
    for (unsigned I = 0; I != Count; ++I) {
      NonBlockingBug B;
      B.Id = NextId++;
      B.Proj = P;
      B.Source = BugSource::GitHub;
      B.Sharing = S;
      B.BuggyCodeIsSafe = false;
      B.Synchronized = false;
      B.InteriorMutability = false;
      B.RustLibMisuse = false;
      B.Fix = NonBlockingFix::EnforceAtomicity; // Refined below.
      NonBlocking.push_back(B);
    }
  };

  // Table 4 rows.
  Emit(Project::Servo, SharingMethod::GlobalStatic, 1);
  Emit(Project::Servo, SharingMethod::Pointer, 7);
  Emit(Project::Servo, SharingMethod::SyncTrait, 1);
  Emit(Project::Servo, SharingMethod::MutexShared, 7);
  Emit(Project::Servo, SharingMethod::Message, 2);
  Emit(Project::Tock, SharingMethod::OsHardware, 2);
  Emit(Project::Ethereum, SharingMethod::Atomic, 1);
  Emit(Project::Ethereum, SharingMethod::MutexShared, 2);
  Emit(Project::Ethereum, SharingMethod::Message, 1);
  Emit(Project::TiKV, SharingMethod::OsHardware, 1);
  Emit(Project::TiKV, SharingMethod::Atomic, 1);
  Emit(Project::TiKV, SharingMethod::MutexShared, 1);
  Emit(Project::Redox, SharingMethod::GlobalStatic, 1);
  Emit(Project::Redox, SharingMethod::OsHardware, 2);
  Emit(Project::Libraries, SharingMethod::GlobalStatic, 1);
  Emit(Project::Libraries, SharingMethod::Pointer, 5);
  Emit(Project::Libraries, SharingMethod::SyncTrait, 2);
  Emit(Project::Libraries, SharingMethod::Atomic, 3);

  assert(NonBlocking.size() == 41 && "Table 4 cells must sum to 41");

  // One of the library records came from the vulnerability databases
  // (completing the footnote's 22 database records).
  for (NonBlockingBug &B : NonBlocking) {
    if (B.Proj == Project::Libraries && B.Sharing == SharingMethod::Pointer) {
      B.Source = BugSource::CVE;
      break;
    }
  }

  auto IsSafeSharing = [](SharingMethod S) {
    return S == SharingMethod::Atomic || S == SharingMethod::MutexShared;
  };

  // Synchronization (Section 6.2): all 15 safe-sharing bugs synchronized
  // but wrongly; of the 23 unsafe-sharing bugs, the 5 OS/hardware ones and
  // one Sync-trait bug synchronized, the other 17 not at all.
  unsigned SyncTraitSynced = 0;
  for (NonBlockingBug &B : NonBlocking) {
    if (IsSafeSharing(B.Sharing) || B.Sharing == SharingMethod::OsHardware)
      B.Synchronized = true;
    else if (B.Sharing == SharingMethod::SyncTrait && SyncTraitSynced++ == 0)
      B.Synchronized = true;
  }

  // Buggy code in safe Rust (25 of 41, Insight 8): all safe-sharing and
  // message bugs, plus seven pointer-sharing bugs whose racy accesses are
  // through safe references casted from the pointer.
  unsigned SafePointerBugs = 0;
  for (NonBlockingBug &B : NonBlocking) {
    if (IsSafeSharing(B.Sharing) || B.Sharing == SharingMethod::Message)
      B.BuggyCodeIsSafe = true;
    else if (B.Sharing == SharingMethod::Pointer && SafePointerBugs < 7) {
      B.BuggyCodeIsSafe = true;
      ++SafePointerBugs;
    }
  }

  // Interior mutability involved in 13 bugs: six on safely-shared objects
  // (5 Mutex + 1 Atomic) and seven on unsafely-shared ones (3 Sync + 4
  // Pointer) — Section 6.2's "12 more ... where self is immutably borrowed"
  // plus Figure 9.
  unsigned IMMutex = 0, IMAtomic = 0, IMSync = 0, IMPointer = 0;
  for (NonBlockingBug &B : NonBlocking) {
    switch (B.Sharing) {
    case SharingMethod::MutexShared:
      B.InteriorMutability = IMMutex++ < 5;
      break;
    case SharingMethod::Atomic:
      B.InteriorMutability = IMAtomic++ < 1;
      break;
    case SharingMethod::SyncTrait:
      B.InteriorMutability = IMSync++ < 3;
      break;
    case SharingMethod::Pointer:
      B.InteriorMutability = IMPointer++ < 4;
      break;
    default:
      break;
    }
  }

  // Rust-library misuse (7 bugs, Insight 9): 4 RefCell double-borrow panics
  // (2 shared via Sync, 2 via pointers), 1 lost poisoning log (Mutex), and
  // 2 panics misusing Arc/channel (1 Mutex-shared, 1 message).
  unsigned MisuseSync = 0, MisusePtr = 0, MisuseMutex = 0, MisuseMsg = 0;
  for (NonBlockingBug &B : NonBlocking) {
    switch (B.Sharing) {
    case SharingMethod::SyncTrait:
      B.RustLibMisuse = MisuseSync++ < 2;
      break;
    case SharingMethod::Pointer:
      B.RustLibMisuse = MisusePtr++ < 2;
      break;
    case SharingMethod::MutexShared:
      B.RustLibMisuse = MisuseMutex++ < 2;
      break;
    case SharingMethod::Message:
      B.RustLibMisuse = MisuseMsg++ < 1;
      break;
    default:
      break;
    }
  }

  // Fixes (Section 6.2): over the 38 shared-memory bugs, 20 enforce
  // atomicity, 10 enforce ordering, 5 remove the sharing, 1 copies locally,
  // 2 change application logic; the 3 message bugs fix their protocols.
  unsigned FixIdx = 0;
  for (NonBlockingBug &B : NonBlocking) {
    if (B.Sharing == SharingMethod::Message) {
      B.Fix = NonBlockingFix::MessageProtocol;
      continue;
    }
    unsigned I = FixIdx++;
    if (I < 20)
      B.Fix = NonBlockingFix::EnforceAtomicity;
    else if (I < 30)
      B.Fix = NonBlockingFix::EnforceOrder;
    else if (I < 35)
      B.Fix = NonBlockingFix::AvoidSharing;
    else if (I < 36)
      B.Fix = NonBlockingFix::MakeLocalCopy;
    else
      B.Fix = NonBlockingFix::ChangeLogic;
  }
}

//===----------------------------------------------------------------------===//
// Fix-date synthesis (Figure 2)
//===----------------------------------------------------------------------===//

size_t BugDatabase::fixedSince2016() const {
  size_t N = 0;
  for (const MemoryBug &B : Memory)
    N += B.Fixed.Year >= 2016;
  for (const BlockingBug &B : Blocking)
    N += B.Fixed.Year >= 2016;
  for (const NonBlockingBug &B : NonBlocking)
    N += B.Fixed.Year >= 2016;
  return N;
}

void BugDatabase::assignDates() {
  // Quarter sequences per project. Servo (started 2012) and the libraries
  // (oldest started 2010) contribute the paper's 25 pre-2016 fixes: the
  // first 20 Servo bugs and first 5 library bugs get pre-2016 quarters;
  // everything else lands in the project's post-2016 window.
  struct Window {
    Quarter Start;
    Quarter End;
  };
  auto PostWindow = [](Project P) -> Window {
    switch (P) {
    case Project::Redox:
      return {{2016, 4}, {2019, 3}}; // Started 2016/08.
    case Project::TiKV:
      return {{2016, 2}, {2019, 3}}; // Started 2016/01.
    default:
      return {{2016, 1}, {2019, 3}};
    }
  };

  unsigned Counts[NumProjects] = {};
  auto NextQuarter = [&](Project P) {
    unsigned K = Counts[static_cast<unsigned>(P)]++;
    if (P == Project::Servo && K < 20) {
      // 2013Q1 .. 2015Q4 cycling.
      unsigned Idx = K % 12;
      return Quarter{2013 + Idx / 4, 1 + Idx % 4};
    }
    if (P == Project::Libraries && K < 5) {
      unsigned Idx = K % 8; // 2014Q1 .. 2015Q4.
      return Quarter{2014 + Idx / 4, 1 + Idx % 4};
    }
    Window W = PostWindow(P);
    unsigned Span = W.End.index() - W.Start.index() + 1;
    unsigned Idx = W.Start.index() + (K * 5) % Span; // Spread with stride 5.
    return Quarter{Idx / 4, 1 + Idx % 4};
  };

  for (MemoryBug &B : Memory)
    B.Fixed = NextQuarter(B.Proj);
  for (BlockingBug &B : Blocking)
    B.Fixed = NextQuarter(B.Proj);
  for (NonBlockingBug &B : NonBlocking)
    B.Fixed = NextQuarter(B.Proj);
}

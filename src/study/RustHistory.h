//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Rust release-history dataset behind Figure 1 ("each blue point shows
/// the number of feature changes in one release version; each red point
/// shows total LOC"). Release versions and dates are the public Rust
/// release timeline (0.1 in January 2012 through 1.39 in November 2019, the
/// paper's "now at version 1.39.0"); the per-release feature-change counts
/// and KLOC are synthesized to reproduce the figure's shape — heavy churn
/// through 2015, stability from 1.6.0 (January 2016) on, code size growing
/// toward ~800 KLOC — since the paper publishes the curve, not the raw
/// numbers.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_RUSTHISTORY_H
#define RUSTSIGHT_STUDY_RUSTHISTORY_H

#include <string>
#include <vector>

namespace rs::study {

/// One Rust release (a point in Figure 1).
struct RustRelease {
  std::string Version;
  unsigned Year;
  unsigned Month; ///< 1..12
  unsigned FeatureChanges;
  unsigned KLoc;
};

/// All releases from 0.1 (2012) through 1.39 (2019), in order.
const std::vector<RustRelease> &rustReleaseHistory();

/// Sum of feature changes in releases dated before \p Year.
unsigned featureChangesBefore(unsigned Year);

/// Sum of feature changes in releases dated in or after \p Year.
unsigned featureChangesSince(unsigned Year);

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_RUSTHISTORY_H

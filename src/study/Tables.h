//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregators recomputing the paper's Tables 1-4, Figures 1-2, and the
/// Section 5/6 fix-strategy statistics from the per-bug dataset. Each comes
/// in two flavours: a raw count structure (asserted against the paper in
/// tests and printed by the benches) and a rendered ASCII Table.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_TABLES_H
#define RUSTSIGHT_STUDY_TABLES_H

#include "study/BugDatabase.h"
#include "study/Projects.h"
#include "support/Table.h"

#include <map>

namespace rs::study {

//===----------------------------------------------------------------------===//
// Table 1: studied applications
//===----------------------------------------------------------------------===//

/// Per-project bug counts (GitHub-sourced only, as in Table 1).
struct Table1Row {
  ProjectInfo Info;
  unsigned MemBugs = 0;
  unsigned BlockingBugs = 0;
  unsigned NonBlockingBugs = 0;
};

std::vector<Table1Row> computeTable1(const BugDatabase &DB);
Table renderTable1(const BugDatabase &DB);

//===----------------------------------------------------------------------===//
// Table 2: memory bugs, propagation x category
//===----------------------------------------------------------------------===//

struct Table2Data {
  unsigned Count[NumPropagations][NumMemCategories] = {};
  unsigned Interior[NumPropagations][NumMemCategories] = {};

  unsigned rowTotal(Propagation P) const;
  unsigned rowInterior(Propagation P) const;
  unsigned columnTotal(MemCategory C) const;
  unsigned total() const;
};

Table2Data computeTable2(const BugDatabase &DB);
Table renderTable2(const BugDatabase &DB);

//===----------------------------------------------------------------------===//
// Table 3: blocking bugs, project x synchronization primitive
//===----------------------------------------------------------------------===//

struct Table3Data {
  unsigned Count[NumProjects][NumBlockingPrimitives] = {};
  unsigned columnTotal(BlockingPrimitive P) const;
  unsigned total() const;
};

Table3Data computeTable3(const BugDatabase &DB);
Table renderTable3(const BugDatabase &DB);

//===----------------------------------------------------------------------===//
// Table 4: non-blocking bugs, project x data-sharing method
//===----------------------------------------------------------------------===//

struct Table4Data {
  unsigned Count[NumProjects][NumSharingMethods] = {};
  unsigned columnTotal(SharingMethod M) const;
  unsigned total() const;
};

Table4Data computeTable4(const BugDatabase &DB);
Table renderTable4(const BugDatabase &DB);

//===----------------------------------------------------------------------===//
// Figure 2: fix dates per project per quarter
//===----------------------------------------------------------------------===//

/// Series per project: quarter -> number of studied bugs fixed then.
using Figure2Series = std::map<Project, std::map<Quarter, unsigned>>;

Figure2Series computeFigure2(const BugDatabase &DB);
Table renderFigure2(const BugDatabase &DB);

//===----------------------------------------------------------------------===//
// Section 5.2 / 6.1 / 6.2 statistics
//===----------------------------------------------------------------------===//

std::map<MemFix, unsigned> computeMemFixCounts(const BugDatabase &DB);
std::map<BlockingCause, unsigned>
computeBlockingCauseCounts(const BugDatabase &DB);
std::map<BlockingFix, unsigned>
computeBlockingFixCounts(const BugDatabase &DB);
std::map<NonBlockingFix, unsigned>
computeNonBlockingFixCounts(const BugDatabase &DB);

/// Section 6.2 cross-cutting attributes of non-blocking bugs.
struct NonBlockingAttributes {
  unsigned SharedMemory = 0;       ///< 38.
  unsigned MessagePassing = 0;     ///< 3.
  unsigned UnsafeSharing = 0;      ///< 23.
  unsigned SafeSharing = 0;        ///< 15.
  unsigned BuggyCodeSafe = 0;      ///< 25.
  unsigned Unsynchronized = 0;     ///< 17.
  unsigned Synchronized = 0;       ///< 21.
  unsigned InteriorMutability = 0; ///< 13.
  unsigned RustLibMisuse = 0;      ///< 7.
};

NonBlockingAttributes computeNonBlockingAttributes(const BugDatabase &DB);

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_TABLES_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable export of the study dataset, so downstream tooling
/// (plotting scripts, follow-up studies) can consume the per-bug records
/// the tables are computed from.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_JSONEXPORT_H
#define RUSTSIGHT_STUDY_JSONEXPORT_H

#include "study/BugDatabase.h"

#include <string>

namespace rs::study {

/// Serializes the whole dataset as one JSON object with "memory",
/// "blocking", and "nonblocking" record arrays plus a "summary" object.
std::string exportDatabaseJson(const BugDatabase &DB);

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_JSONEXPORT_H

#include "study/JsonExport.h"

#include "support/Json.h"

using namespace rs;
using namespace rs::study;

std::string rs::study::exportDatabaseJson(const BugDatabase &DB) {
  JsonWriter W;
  W.beginObject();

  W.key("memory");
  W.beginArray();
  for (const MemoryBug &B : DB.memoryBugs()) {
    W.beginObject();
    W.field("id", static_cast<int64_t>(B.Id));
    W.field("project", projectName(B.Proj));
    W.field("source", B.Source == BugSource::CVE ? "cve" : "github");
    W.field("category", memCategoryName(B.Category));
    W.field("propagation", propagationName(B.Prop));
    W.field("interiorUnsafeEffect", B.EffectInInteriorUnsafe);
    W.field("fix", memFixName(B.Fix));
    W.field("fixed", B.Fixed.toString());
    W.endObject();
  }
  W.endArray();

  W.key("blocking");
  W.beginArray();
  for (const BlockingBug &B : DB.blockingBugs()) {
    W.beginObject();
    W.field("id", static_cast<int64_t>(B.Id));
    W.field("project", projectName(B.Proj));
    W.field("primitive", blockingPrimitiveName(B.Primitive));
    W.field("cause", blockingCauseName(B.Cause));
    W.field("fix", blockingFixName(B.Fix));
    W.field("fixed", B.Fixed.toString());
    W.endObject();
  }
  W.endArray();

  W.key("nonblocking");
  W.beginArray();
  for (const NonBlockingBug &B : DB.nonBlockingBugs()) {
    W.beginObject();
    W.field("id", static_cast<int64_t>(B.Id));
    W.field("project", projectName(B.Proj));
    W.field("source", B.Source == BugSource::CVE ? "cve" : "github");
    W.field("sharing", sharingMethodName(B.Sharing));
    W.field("buggyCodeIsSafe", B.BuggyCodeIsSafe);
    W.field("synchronized", B.Synchronized);
    W.field("interiorMutability", B.InteriorMutability);
    W.field("rustLibMisuse", B.RustLibMisuse);
    W.field("fix", nonBlockingFixName(B.Fix));
    W.field("fixed", B.Fixed.toString());
    W.endObject();
  }
  W.endArray();

  W.key("summary");
  W.beginObject();
  W.field("totalBugs", static_cast<int64_t>(DB.totalBugs()));
  W.field("memoryBugs", static_cast<int64_t>(DB.memoryBugs().size()));
  W.field("blockingBugs", static_cast<int64_t>(DB.blockingBugs().size()));
  W.field("nonBlockingBugs",
          static_cast<int64_t>(DB.nonBlockingBugs().size()));
  W.field("fixedSince2016", static_cast<int64_t>(DB.fixedSince2016()));
  W.endObject();

  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata for the studied applications and libraries (Table 1). Stars,
/// commits, and LOC are the values the paper reports; the "libraries" row
/// aggregates the five studied libraries, reporting maxima as the paper
/// does.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_PROJECTS_H
#define RUSTSIGHT_STUDY_PROJECTS_H

#include "study/BugRecords.h"

#include <string>
#include <vector>

namespace rs::study {

/// One Table 1 row's static metadata.
struct ProjectInfo {
  Project Proj;
  std::string StartTime; ///< "YYYY/MM".
  unsigned Stars;
  unsigned Commits;
  unsigned KLoc; ///< Source lines, thousands.
};

/// The six Table 1 rows, in the paper's order.
const std::vector<ProjectInfo> &projectTable();

/// Metadata for one project, or null for CveDatabase.
const ProjectInfo *findProject(Project P);

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_PROJECTS_H

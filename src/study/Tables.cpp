#include "study/Tables.h"

using namespace rs;
using namespace rs::study;

//===----------------------------------------------------------------------===//
// Table 1
//===----------------------------------------------------------------------===//

std::vector<Table1Row> rs::study::computeTable1(const BugDatabase &DB) {
  std::vector<Table1Row> Rows;
  for (const ProjectInfo &Info : projectTable()) {
    Table1Row Row;
    Row.Info = Info;
    for (const MemoryBug &B : DB.memoryBugs())
      if (B.Proj == Info.Proj && B.Source == BugSource::GitHub)
        ++Row.MemBugs;
    for (const BlockingBug &B : DB.blockingBugs())
      if (B.Proj == Info.Proj)
        ++Row.BlockingBugs;
    for (const NonBlockingBug &B : DB.nonBlockingBugs())
      if (B.Proj == Info.Proj && B.Source == BugSource::GitHub)
        ++Row.NonBlockingBugs;
    Rows.push_back(Row);
  }
  return Rows;
}

Table rs::study::renderTable1(const BugDatabase &DB) {
  Table T("Table 1. Studied Applications and Libraries.");
  T.setHeader({"Software", "Start Time", "Stars", "Commits", "LOC", "Mem",
               "Blk", "NBlk"});
  for (const Table1Row &Row : computeTable1(DB)) {
    T.addRow({projectName(Row.Info.Proj), Row.Info.StartTime,
              std::to_string(Row.Info.Stars), std::to_string(Row.Info.Commits),
              std::to_string(Row.Info.KLoc) + "K",
              std::to_string(Row.MemBugs), std::to_string(Row.BlockingBugs),
              std::to_string(Row.NonBlockingBugs)});
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Table 2
//===----------------------------------------------------------------------===//

unsigned Table2Data::rowTotal(Propagation P) const {
  unsigned Sum = 0;
  for (unsigned C = 0; C != NumMemCategories; ++C)
    Sum += Count[static_cast<unsigned>(P)][C];
  return Sum;
}

unsigned Table2Data::rowInterior(Propagation P) const {
  unsigned Sum = 0;
  for (unsigned C = 0; C != NumMemCategories; ++C)
    Sum += Interior[static_cast<unsigned>(P)][C];
  return Sum;
}

unsigned Table2Data::columnTotal(MemCategory C) const {
  unsigned Sum = 0;
  for (unsigned P = 0; P != NumPropagations; ++P)
    Sum += Count[P][static_cast<unsigned>(C)];
  return Sum;
}

unsigned Table2Data::total() const {
  unsigned Sum = 0;
  for (unsigned P = 0; P != NumPropagations; ++P)
    for (unsigned C = 0; C != NumMemCategories; ++C)
      Sum += Count[P][C];
  return Sum;
}

Table2Data rs::study::computeTable2(const BugDatabase &DB) {
  Table2Data D;
  for (const MemoryBug &B : DB.memoryBugs()) {
    unsigned P = static_cast<unsigned>(B.Prop);
    unsigned C = static_cast<unsigned>(B.Category);
    ++D.Count[P][C];
    if (B.EffectInInteriorUnsafe)
      ++D.Interior[P][C];
  }
  return D;
}

Table rs::study::renderTable2(const BugDatabase &DB) {
  Table2Data D = computeTable2(DB);
  Table T("Table 2. Memory Bugs Category. (n) = effect in interior-unsafe "
          "fn");
  T.setHeader({"Category", "Buffer", "Null", "Uninitialized", "Invalid",
               "UAF", "Double free", "Total"});
  static const Propagation Rows[] = {
      Propagation::SafeToSafe, Propagation::UnsafeToUnsafe,
      Propagation::SafeToUnsafe, Propagation::UnsafeToSafe};
  for (Propagation P : Rows) {
    std::vector<std::string> Cells{propagationName(P)};
    for (unsigned C = 0; C != NumMemCategories; ++C) {
      unsigned N = D.Count[static_cast<unsigned>(P)][C];
      unsigned I = D.Interior[static_cast<unsigned>(P)][C];
      std::string Cell = std::to_string(N);
      if (I != 0)
        Cell += " (" + std::to_string(I) + ")";
      Cells.push_back(Cell);
    }
    std::string Total = std::to_string(D.rowTotal(P));
    if (unsigned RI = D.rowInterior(P))
      Total += " (" + std::to_string(RI) + ")";
    Cells.push_back(Total);
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> Totals{"Total"};
  for (unsigned C = 0; C != NumMemCategories; ++C)
    Totals.push_back(
        std::to_string(D.columnTotal(static_cast<MemCategory>(C))));
  Totals.push_back(std::to_string(D.total()));
  T.addRow(Totals);
  return T;
}

//===----------------------------------------------------------------------===//
// Table 3
//===----------------------------------------------------------------------===//

unsigned Table3Data::columnTotal(BlockingPrimitive P) const {
  unsigned Sum = 0;
  for (unsigned Proj = 0; Proj != NumProjects; ++Proj)
    Sum += Count[Proj][static_cast<unsigned>(P)];
  return Sum;
}

unsigned Table3Data::total() const {
  unsigned Sum = 0;
  for (unsigned Proj = 0; Proj != NumProjects; ++Proj)
    for (unsigned P = 0; P != NumBlockingPrimitives; ++P)
      Sum += Count[Proj][P];
  return Sum;
}

Table3Data rs::study::computeTable3(const BugDatabase &DB) {
  Table3Data D;
  for (const BlockingBug &B : DB.blockingBugs())
    ++D.Count[static_cast<unsigned>(B.Proj)]
             [static_cast<unsigned>(B.Primitive)];
  return D;
}

Table rs::study::renderTable3(const BugDatabase &DB) {
  Table3Data D = computeTable3(DB);
  Table T("Table 3. Types of Synchronization in Blocking Bugs.");
  T.setHeader({"Software", "Mutex&Rwlock", "Condvar", "Channel", "Once",
               "Other"});
  for (const ProjectInfo &Info : projectTable()) {
    std::vector<std::string> Cells{projectName(Info.Proj)};
    for (unsigned P = 0; P != NumBlockingPrimitives; ++P)
      Cells.push_back(std::to_string(
          D.Count[static_cast<unsigned>(Info.Proj)][P]));
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> Totals{"Total"};
  for (unsigned P = 0; P != NumBlockingPrimitives; ++P)
    Totals.push_back(
        std::to_string(D.columnTotal(static_cast<BlockingPrimitive>(P))));
  T.addRow(Totals);
  return T;
}

//===----------------------------------------------------------------------===//
// Table 4
//===----------------------------------------------------------------------===//

unsigned Table4Data::columnTotal(SharingMethod M) const {
  unsigned Sum = 0;
  for (unsigned Proj = 0; Proj != NumProjects; ++Proj)
    Sum += Count[Proj][static_cast<unsigned>(M)];
  return Sum;
}

unsigned Table4Data::total() const {
  unsigned Sum = 0;
  for (unsigned Proj = 0; Proj != NumProjects; ++Proj)
    for (unsigned M = 0; M != NumSharingMethods; ++M)
      Sum += Count[Proj][M];
  return Sum;
}

Table4Data rs::study::computeTable4(const BugDatabase &DB) {
  Table4Data D;
  for (const NonBlockingBug &B : DB.nonBlockingBugs())
    ++D.Count[static_cast<unsigned>(B.Proj)][static_cast<unsigned>(B.Sharing)];
  return D;
}

Table rs::study::renderTable4(const BugDatabase &DB) {
  Table4Data D = computeTable4(DB);
  Table T("Table 4. How threads communicate.");
  T.setHeader({"Software", "Global", "Pointer", "Sync", "O.H.", "Atomic",
               "Mutex", "MSG"});
  for (const ProjectInfo &Info : projectTable()) {
    std::vector<std::string> Cells{projectName(Info.Proj)};
    for (unsigned M = 0; M != NumSharingMethods; ++M)
      Cells.push_back(
          std::to_string(D.Count[static_cast<unsigned>(Info.Proj)][M]));
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> Totals{"Total"};
  for (unsigned M = 0; M != NumSharingMethods; ++M)
    Totals.push_back(
        std::to_string(D.columnTotal(static_cast<SharingMethod>(M))));
  T.addRow(Totals);
  return T;
}

//===----------------------------------------------------------------------===//
// Figure 2
//===----------------------------------------------------------------------===//

Figure2Series rs::study::computeFigure2(const BugDatabase &DB) {
  Figure2Series S;
  auto Add = [&S](Project P, Quarter Q) { ++S[P][Q]; };
  for (const MemoryBug &B : DB.memoryBugs())
    Add(B.Proj, B.Fixed);
  for (const BlockingBug &B : DB.blockingBugs())
    Add(B.Proj, B.Fixed);
  for (const NonBlockingBug &B : DB.nonBlockingBugs())
    Add(B.Proj, B.Fixed);
  return S;
}

Table rs::study::renderFigure2(const BugDatabase &DB) {
  Figure2Series S = computeFigure2(DB);
  Table T("Figure 2. Time of Studied Bugs (fixes per quarter).");
  T.setHeader({"Quarter", "Servo", "Tock", "Ethereum", "TiKV", "Redox",
               "libraries", "CVE/RustSec"});
  // Collect all quarters in order.
  std::map<Quarter, bool> Quarters;
  for (const auto &[P, Series] : S)
    for (const auto &[Q, N] : Series)
      Quarters[Q] = true;
  static const Project Cols[] = {
      Project::Servo,     Project::Tock,  Project::Ethereum, Project::TiKV,
      Project::Redox,     Project::Libraries, Project::CveDatabase};
  for (const auto &[Q, Unused] : Quarters) {
    std::vector<std::string> Cells{Q.toString()};
    for (Project P : Cols) {
      auto It = S.find(P);
      unsigned N = 0;
      if (It != S.end()) {
        auto QIt = It->second.find(Q);
        if (QIt != It->second.end())
          N = QIt->second;
      }
      Cells.push_back(N == 0 ? "" : std::to_string(N));
    }
    T.addRow(Cells);
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Fix-strategy statistics
//===----------------------------------------------------------------------===//

std::map<MemFix, unsigned>
rs::study::computeMemFixCounts(const BugDatabase &DB) {
  std::map<MemFix, unsigned> Counts;
  for (const MemoryBug &B : DB.memoryBugs())
    ++Counts[B.Fix];
  return Counts;
}

std::map<BlockingCause, unsigned>
rs::study::computeBlockingCauseCounts(const BugDatabase &DB) {
  std::map<BlockingCause, unsigned> Counts;
  for (const BlockingBug &B : DB.blockingBugs())
    ++Counts[B.Cause];
  return Counts;
}

std::map<BlockingFix, unsigned>
rs::study::computeBlockingFixCounts(const BugDatabase &DB) {
  std::map<BlockingFix, unsigned> Counts;
  for (const BlockingBug &B : DB.blockingBugs())
    ++Counts[B.Fix];
  return Counts;
}

std::map<NonBlockingFix, unsigned>
rs::study::computeNonBlockingFixCounts(const BugDatabase &DB) {
  std::map<NonBlockingFix, unsigned> Counts;
  for (const NonBlockingBug &B : DB.nonBlockingBugs())
    ++Counts[B.Fix];
  return Counts;
}

NonBlockingAttributes
rs::study::computeNonBlockingAttributes(const BugDatabase &DB) {
  NonBlockingAttributes A;
  for (const NonBlockingBug &B : DB.nonBlockingBugs()) {
    bool IsMessage = B.Sharing == SharingMethod::Message;
    bool IsSafeSharing = B.Sharing == SharingMethod::Atomic ||
                         B.Sharing == SharingMethod::MutexShared;
    if (IsMessage)
      ++A.MessagePassing;
    else {
      ++A.SharedMemory;
      if (IsSafeSharing)
        ++A.SafeSharing;
      else
        ++A.UnsafeSharing;
      if (B.Synchronized)
        ++A.Synchronized;
      else
        ++A.Unsynchronized;
    }
    if (B.BuggyCodeIsSafe)
      ++A.BuggyCodeSafe;
    if (B.InteriorMutability)
      ++A.InteriorMutability;
    if (B.RustLibMisuse)
      ++A.RustLibMisuse;
  }
  return A;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed records for the paper's 170 studied bugs (70 memory-safety issues,
/// 59 blocking bugs, 41 non-blocking bugs). The paper publishes aggregate
/// marginals (Tables 1-4 and in-text statistics); BugDatabase materializes
/// one record per studied bug whose attribute vectors reproduce every
/// published marginal, so the tables are *recomputed* from per-bug data
/// rather than hard-coded.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_BUGRECORDS_H
#define RUSTSIGHT_STUDY_BUGRECORDS_H

#include <string>

namespace rs::study {

/// The studied code bases (Table 1). CveDatabase marks vulnerability-DB
/// records not attributed to a studied project.
enum class Project {
  Servo,
  Tock,
  Ethereum,
  TiKV,
  Redox,
  Libraries,
  CveDatabase,
};
inline constexpr unsigned NumProjects = 7;

const char *projectName(Project P);

/// Where the bug report came from.
enum class BugSource { GitHub, CVE };

/// A quarter-resolution fix date (Figure 2 buckets by three-month periods).
struct Quarter {
  unsigned Year = 2016;
  unsigned Q = 1; ///< 1..4

  /// Linearized index for plotting (year*4 + quarter).
  unsigned index() const { return Year * 4 + (Q - 1); }
  std::string toString() const {
    return std::to_string(Year) + "Q" + std::to_string(Q);
  }
  friend bool operator<(const Quarter &A, const Quarter &B) {
    return A.index() < B.index();
  }
  friend bool operator==(const Quarter &A, const Quarter &B) {
    return A.index() == B.index();
  }
};

//===----------------------------------------------------------------------===//
// Memory-safety bugs (Section 5, Table 2)
//===----------------------------------------------------------------------===//

/// Bug-effect categories (Table 2 columns).
enum class MemCategory {
  Buffer,        ///< Buffer overflow.
  Null,          ///< Null pointer dereference.
  Uninitialized, ///< Read of uninitialized memory.
  InvalidFree,
  UseAfterFree,
  DoubleFree,
};
inline constexpr unsigned NumMemCategories = 6;

const char *memCategoryName(MemCategory C);

/// Error-propagation classes (Table 2 rows): where the cause and the effect
/// of the bug live.
enum class Propagation {
  SafeToSafe,
  UnsafeToUnsafe,
  SafeToUnsafe,
  UnsafeToSafe,
};
inline constexpr unsigned NumPropagations = 4;

const char *propagationName(Propagation P);

/// Fix strategies for memory bugs (Section 5.2).
enum class MemFix {
  ConditionallySkip, ///< 30 bugs.
  AdjustLifetime,    ///< 22 bugs.
  ChangeOperands,    ///< 9 bugs.
  Other,             ///< 9 bugs.
};

const char *memFixName(MemFix F);

struct MemoryBug {
  unsigned Id;
  Project Proj;
  BugSource Source;
  MemCategory Category;
  Propagation Prop;
  /// Whether the effect is inside an interior-unsafe function (the
  /// parenthesized counts in Table 2).
  bool EffectInInteriorUnsafe;
  MemFix Fix;
  Quarter Fixed;
};

//===----------------------------------------------------------------------===//
// Blocking bugs (Section 6.1, Table 3)
//===----------------------------------------------------------------------===//

/// Synchronization primitive involved (Table 3 columns).
enum class BlockingPrimitive { Mutex, Condvar, Channel, Once, Other };
inline constexpr unsigned NumBlockingPrimitives = 5;

const char *blockingPrimitiveName(BlockingPrimitive P);

/// Root causes (Section 6.1 narrative).
enum class BlockingCause {
  DoubleLock,        ///< 30 bugs.
  ConflictingOrder,  ///< 7 bugs.
  ForgotUnlock,      ///< 1 bug (self-implemented mutex).
  WaitNoNotify,      ///< 8 Condvar bugs.
  MissedNotify,      ///< 2 Condvar bugs.
  ChannelRecvBlock,  ///< 5 bugs.
  ChannelSendFull,   ///< 1 bug.
  OnceRecursion,     ///< 1 bug.
  OtherCause,        ///< 4 bugs (platform API, busy loops, join).
};

const char *blockingCauseName(BlockingCause C);

/// Fix strategies (Section 6.1: 51 adjusted synchronization operations, of
/// which 21 adjusted the lock guard's lifetime; 8 others).
enum class BlockingFix { AdjustSyncOps, AdjustGuardLifetime, OtherFix };

const char *blockingFixName(BlockingFix F);

struct BlockingBug {
  unsigned Id;
  Project Proj;
  BlockingPrimitive Primitive;
  BlockingCause Cause;
  BlockingFix Fix;
  Quarter Fixed;
};

//===----------------------------------------------------------------------===//
// Non-blocking bugs (Section 6.2, Table 4)
//===----------------------------------------------------------------------===//

/// How the buggy code shares data across threads (Table 4 columns).
enum class SharingMethod {
  GlobalStatic, ///< Unsafe: mutable static.
  Pointer,      ///< Unsafe: raw pointer passed across threads.
  SyncTrait,    ///< Unsafe: manually implemented Sync.
  OsHardware,   ///< Unsafe: OS/hardware resources.
  Atomic,       ///< Safe: atomic variables.
  MutexShared,  ///< Safe: Mutex/RwLock-wrapped data.
  Message,      ///< Message passing, not shared memory.
};
inline constexpr unsigned NumSharingMethods = 7;

const char *sharingMethodName(SharingMethod M);

/// Fix strategies (Section 6.2; assigned to the 38 shared-memory bugs).
enum class NonBlockingFix {
  EnforceAtomicity, ///< 20 bugs.
  EnforceOrder,     ///< 10 bugs.
  AvoidSharing,     ///< 5 bugs.
  MakeLocalCopy,    ///< 1 bug.
  ChangeLogic,      ///< 2 bugs.
  MessageProtocol,  ///< The 3 message-passing bugs.
};

const char *nonBlockingFixName(NonBlockingFix F);

struct NonBlockingBug {
  unsigned Id;
  Project Proj;
  BugSource Source;
  SharingMethod Sharing;
  /// The buggy code itself is safe code (25 of 41, Insight 8).
  bool BuggyCodeIsSafe;
  /// The accesses were synchronized, but wrongly (21 of the 38
  /// shared-memory bugs; the other 17 had no synchronization at all).
  bool Synchronized;
  /// Involves an interior-mutability function (13 bugs).
  bool InteriorMutability;
  /// Misuses a Rust-unique library (7 bugs: 4 RefCell, 3 poisoning/Arc/
  /// channel panics), all caught by library runtime checks (Insight 9).
  bool RustLibMisuse;
  NonBlockingFix Fix;
  Quarter Fixed;
};

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_BUGRECORDS_H

#include "study/RustHistory.h"

using namespace rs::study;

namespace {

std::vector<RustRelease> buildHistory() {
  // Pre-1.0 releases: the era of heavy feature churn in Figure 1.
  std::vector<RustRelease> H = {
      {"0.1", 2012, 1, 1180, 55},   {"0.2", 2012, 3, 1520, 70},
      {"0.3", 2012, 7, 1780, 90},   {"0.4", 2012, 10, 2050, 110},
      {"0.5", 2012, 12, 1890, 130}, {"0.6", 2013, 4, 2210, 160},
      {"0.7", 2013, 7, 2440, 190},  {"0.8", 2013, 9, 2380, 220},
      {"0.9", 2014, 1, 2520, 260},  {"0.10", 2014, 4, 2460, 300},
      {"0.11", 2014, 7, 2310, 340}, {"0.12", 2014, 10, 2150, 380},
      {"1.0", 2015, 5, 1620, 420},  {"1.1", 2015, 6, 840, 440},
      {"1.2", 2015, 8, 690, 455},   {"1.3", 2015, 9, 560, 470},
      {"1.4", 2015, 10, 470, 485},  {"1.5", 2015, 12, 390, 500},
  };

  // Stable era: 1.6 (January 2016) through 1.39 (November 2019) on the
  // six-week release train. Churn settles to a low plateau while the code
  // base keeps growing toward ~800 KLOC.
  unsigned Year = 2016, Month = 1;
  unsigned KLoc = 510;
  for (unsigned Minor = 6; Minor <= 39; ++Minor) {
    unsigned Changes = 260 - (Minor - 6) * 5; // 260 down to 95.
    H.push_back({"1." + std::to_string(Minor), Year, Month, Changes, KLoc});
    KLoc += 9;
    // Advance ~6 weeks (every third release slips an extra month).
    Month += 1;
    if (Minor % 3 == 0)
      ++Month;
    if (Month > 12) {
      Month -= 12;
      ++Year;
    }
  }
  return H;
}

} // namespace

const std::vector<RustRelease> &rs::study::rustReleaseHistory() {
  static const std::vector<RustRelease> History = buildHistory();
  return History;
}

unsigned rs::study::featureChangesBefore(unsigned Year) {
  unsigned Sum = 0;
  for (const RustRelease &R : rustReleaseHistory())
    if (R.Year < Year)
      Sum += R.FeatureChanges;
  return Sum;
}

unsigned rs::study::featureChangesSince(unsigned Year) {
  unsigned Sum = 0;
  for (const RustRelease &R : rustReleaseHistory())
    if (R.Year >= Year)
      Sum += R.FeatureChanges;
  return Sum;
}

#include "study/Insights.h"

using namespace rs::study;

const std::vector<Finding> &rs::study::insights() {
  static const std::vector<Finding> Items = {
      {Finding::Kind::Insight, 1,
       "Most unsafe usages are for good or unavoidable reasons, indicating "
       "that Rust's rule checks are sometimes too strict and that it is "
       "useful to provide an alternative way to escape these checks.",
       "study/UnsafeStats purpose breakdown; scanner classification"},
      {Finding::Kind::Insight, 2,
       "Interior unsafe is a good way to encapsulate unsafe code.",
       "scanner interior-unsafe detection; stdmodel proper patterns"},
      {Finding::Kind::Insight, 3,
       "Some safety conditions of unsafe code are difficult to check. "
       "Interior unsafe functions often rely on the preparation of correct "
       "inputs and/or execution environments.",
       "stdmodel ProperByEnvironment models"},
      {Finding::Kind::Insight, 4,
       "Rust's safety mechanisms (in stable versions) are very effective in "
       "preventing memory bugs. All memory-safety issues involve unsafe "
       "code.",
       "Table 2 propagation rows; UnsafeScope focus mode"},
      {Finding::Kind::Insight, 5,
       "More than half of memory-safety bugs were fixed by changing or "
       "conditionally skipping unsafe code, but only a few by completely "
       "removing unsafe code.",
       "study fix-strategy counts (30/22/9/9)"},
      {Finding::Kind::Insight, 6,
       "Lacking good understanding in Rust's lifetime rules is a common "
       "cause for many blocking bugs.",
       "DoubleLockDetector guard-lifetime model; LifetimeReport"},
      {Finding::Kind::Insight, 7,
       "There are patterns of how data is (improperly) shared and these "
       "patterns are useful when designing bug detection tools.",
       "Table 4 sharing taxonomy; corpus sharing patterns"},
      {Finding::Kind::Insight, 8,
       "How data is shared is not necessarily associated with how "
       "non-blocking bugs happen; the former can be in unsafe code and the "
       "latter in safe code.",
       "NonBlockingAttributes (25 safe-code bugs of 41)"},
      {Finding::Kind::Insight, 9,
       "Misusing Rust's unique libraries is one major root cause of "
       "non-blocking bugs, and all these bugs are captured by runtime "
       "checks inside the libraries.",
       "RefCell borrow modeling (static + interpreter panic)"},
      {Finding::Kind::Insight, 10,
       "The design of APIs can heavily impact the Rust compiler's "
       "capability of identifying bugs.",
       "InteriorMutabilityDetector (&self vs &mut self)"},
      {Finding::Kind::Insight, 11,
       "Fixing strategies of Rust concurrency bugs are similar to "
       "traditional languages; existing automated bug fixing techniques "
       "are likely to work on Rust too.",
       "study fix-strategy distributions"},
  };
  return Items;
}

const std::vector<Finding> &rs::study::suggestions() {
  static const std::vector<Finding> Items = {
      {Finding::Kind::Suggestion, 1,
       "Programmers should try to find the source of unsafety and only "
       "export that piece of code as an unsafe interface.",
       "-"},
      {Finding::Kind::Suggestion, 2,
       "Rust developers should first try to properly encapsulate unsafe "
       "code in interior unsafe functions before exposing them as unsafe.",
       "stdmodel encapsulation audit"},
      {Finding::Kind::Suggestion, 3,
       "If a function's safety depends on how it is used, it is better "
       "marked as unsafe, not interior unsafe.",
       "stdmodel improper models"},
      {Finding::Kind::Suggestion, 4,
       "Interior mutability can potentially violate Rust's ownership "
       "borrowing safety rules; restrict its usages and check all possible "
       "safety violations.",
       "InteriorMutabilityDetector; Figure 5 reproduction"},
      {Finding::Kind::Suggestion, 5,
       "Future memory bug detectors can ignore safe code that is unrelated "
       "to unsafe code to reduce false positives and improve efficiency.",
       "UseAfterFreeDetector(FocusOnUnsafe); bench_sec7_detectors"},
      {Finding::Kind::Suggestion, 6,
       "Future IDEs should add plug-ins to highlight the location of "
       "Rust's implicit unlock.",
       "LifetimeReport implicit-unlock markers; lifetimes CLI"},
      {Finding::Kind::Suggestion, 7,
       "Rust should add an explicit unlock API of Mutex.",
       "mem::drop modeling (the workaround the paper describes)"},
      {Finding::Kind::Suggestion, 8,
       "Internal mutual exclusion must be carefully reviewed for interior "
       "mutability functions in structs implementing the Sync trait.",
       "InteriorMutabilityDetector lock-awareness"},
  };
  return Items;
}

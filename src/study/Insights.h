//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's 11 insights and 8 suggestions as structured data, each
/// cross-referenced to the RustSight component that embodies or
/// operationalizes it. Printed by study_report and checked for
/// completeness in tests.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_INSIGHTS_H
#define RUSTSIGHT_STUDY_INSIGHTS_H

#include <string>
#include <vector>

namespace rs::study {

/// One insight or suggestion from the paper.
struct Finding {
  enum class Kind { Insight, Suggestion };
  Kind K;
  unsigned Number; ///< 1-based, as in the paper.
  std::string Text;
  /// Where RustSight embodies it ("-" when it targets language design).
  std::string EmbodiedBy;
};

/// All 11 insights, in paper order.
const std::vector<Finding> &insights();

/// All 8 suggestions, in paper order.
const std::vector<Finding> &suggestions();

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_INSIGHTS_H

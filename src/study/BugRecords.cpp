#include "study/BugRecords.h"

#include <cassert>

using namespace rs::study;

const char *rs::study::projectName(Project P) {
  switch (P) {
  case Project::Servo:
    return "Servo";
  case Project::Tock:
    return "Tock";
  case Project::Ethereum:
    return "Ethereum";
  case Project::TiKV:
    return "TiKV";
  case Project::Redox:
    return "Redox";
  case Project::Libraries:
    return "libraries";
  case Project::CveDatabase:
    return "CVE/RustSec";
  }
  assert(false && "unknown project");
  return "?";
}

const char *rs::study::memCategoryName(MemCategory C) {
  switch (C) {
  case MemCategory::Buffer:
    return "Buffer";
  case MemCategory::Null:
    return "Null";
  case MemCategory::Uninitialized:
    return "Uninitialized";
  case MemCategory::InvalidFree:
    return "Invalid";
  case MemCategory::UseAfterFree:
    return "UAF";
  case MemCategory::DoubleFree:
    return "Double free";
  }
  return "?";
}

const char *rs::study::propagationName(Propagation P) {
  switch (P) {
  case Propagation::SafeToSafe:
    return "safe";
  case Propagation::UnsafeToUnsafe:
    return "unsafe";
  case Propagation::SafeToUnsafe:
    return "safe -> unsafe";
  case Propagation::UnsafeToSafe:
    return "unsafe -> safe";
  }
  return "?";
}

const char *rs::study::memFixName(MemFix F) {
  switch (F) {
  case MemFix::ConditionallySkip:
    return "Conditionally skip code";
  case MemFix::AdjustLifetime:
    return "Adjust lifetime";
  case MemFix::ChangeOperands:
    return "Change unsafe operands";
  case MemFix::Other:
    return "Other";
  }
  return "?";
}

const char *rs::study::blockingPrimitiveName(BlockingPrimitive P) {
  switch (P) {
  case BlockingPrimitive::Mutex:
    return "Mutex&RwLock";
  case BlockingPrimitive::Condvar:
    return "Condvar";
  case BlockingPrimitive::Channel:
    return "Channel";
  case BlockingPrimitive::Once:
    return "Once";
  case BlockingPrimitive::Other:
    return "Other";
  }
  return "?";
}

const char *rs::study::blockingCauseName(BlockingCause C) {
  switch (C) {
  case BlockingCause::DoubleLock:
    return "double lock";
  case BlockingCause::ConflictingOrder:
    return "locks in conflicting orders";
  case BlockingCause::ForgotUnlock:
    return "forgot to unlock (self-implemented mutex)";
  case BlockingCause::WaitNoNotify:
    return "wait with no notify";
  case BlockingCause::MissedNotify:
    return "circular wait on notify";
  case BlockingCause::ChannelRecvBlock:
    return "blocked receiving from channel";
  case BlockingCause::ChannelSendFull:
    return "blocked sending to full channel";
  case BlockingCause::OnceRecursion:
    return "recursive call_once";
  case BlockingCause::OtherCause:
    return "other (platform API, busy loop, join)";
  }
  return "?";
}

const char *rs::study::blockingFixName(BlockingFix F) {
  switch (F) {
  case BlockingFix::AdjustSyncOps:
    return "adjust synchronization operations";
  case BlockingFix::AdjustGuardLifetime:
    return "adjust lock-guard lifetime";
  case BlockingFix::OtherFix:
    return "other";
  }
  return "?";
}

const char *rs::study::sharingMethodName(SharingMethod M) {
  switch (M) {
  case SharingMethod::GlobalStatic:
    return "Global";
  case SharingMethod::Pointer:
    return "Pointer";
  case SharingMethod::SyncTrait:
    return "Sync";
  case SharingMethod::OsHardware:
    return "O.H.";
  case SharingMethod::Atomic:
    return "Atomic";
  case SharingMethod::MutexShared:
    return "Mutex";
  case SharingMethod::Message:
    return "MSG";
  }
  return "?";
}

const char *rs::study::nonBlockingFixName(NonBlockingFix F) {
  switch (F) {
  case NonBlockingFix::EnforceAtomicity:
    return "enforce atomic accesses";
  case NonBlockingFix::EnforceOrder:
    return "enforce access order";
  case NonBlockingFix::AvoidSharing:
    return "avoid shared memory accesses";
  case NonBlockingFix::MakeLocalCopy:
    return "make a local copy";
  case NonBlockingFix::ChangeLogic:
    return "change application logic";
  case NonBlockingFix::MessageProtocol:
    return "fix message-passing protocol";
  }
  return "?";
}

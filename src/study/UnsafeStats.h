//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4's unsafe-usage study data: the headline unsafe counts over the
/// studied applications and the standard library, the manually-inspected
/// 600-usage sample (operation types, purposes, removability), the 130
/// unsafe-removal commits, and the interior-unsafe encapsulation study.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_UNSAFESTATS_H
#define RUSTSIGHT_STUDY_UNSAFESTATS_H

#include <vector>

namespace rs::study {

/// What the unsafe code does (Section 4.1's operation-type breakdown).
enum class UnsafeOpType {
  MemoryOp,     ///< Raw-pointer manipulation, casting, ... (66%).
  CallUnsafeFn, ///< Calling unsafe functions (29%).
  OtherOp,      ///< Everything else (5%).
};

/// Why the programmers wrote it (Section 4.1's purpose breakdown).
enum class UnsafePurpose {
  CodeReuse,   ///< 42%.
  Performance, ///< 22%.
  DataSharing, ///< Bypassing safety rules to share across threads (14%).
  OtherBypass, ///< Other compiler-check bypassing (22%).
};

/// Why an unsafe label survives with no compile-time need (32 usages).
enum class RemovableReason {
  NotRemovable,
  CodeConsistency,   ///< 21 usages.
  ConstructorMarker, ///< 5 usages: unsafe-labeled struct constructors.
  DangerWarning,     ///< 6 usages: unsafe purely as a warning.
};

/// One record of the paper's manually-inspected 600-usage sample.
struct UnsafeUsage {
  unsigned Id;
  UnsafeOpType Op;
  UnsafePurpose Purpose;
  RemovableReason Removable;
};

/// The 600-usage sample (400 interior-unsafe usages + 200 unsafe functions
/// from the studied applications).
const std::vector<UnsafeUsage> &unsafeUsageSample();

/// Headline unsafe counts (Section 4 opening).
struct UnsafeCounts {
  unsigned Regions;
  unsigned Fns;
  unsigned Traits;
  unsigned total() const { return Regions + Fns + Traits; }
};

/// 4990 usages across the studied applications: 3665 regions, 1302
/// functions, 23 traits.
UnsafeCounts applicationUnsafeCounts();

/// The Rust standard library: 1581 regions, 861 functions, 12 traits.
UnsafeCounts stdUnsafeCounts();

/// The 130 unsafe-removal cases from 108 commits (Section 4.2).
struct UnsafeRemovals {
  unsigned Total = 130;
  // Purposes.
  unsigned ForMemorySafety = 79;  ///< 61%.
  unsigned ForCodeStructure = 31; ///< 24%.
  unsigned ForThreadSafety = 13;  ///< 10%.
  unsigned ForBugFix = 4;         ///< 3%.
  unsigned Unnecessary = 3;       ///< 2%.
  // Targets.
  unsigned ToSafeCode = 43;
  unsigned ToStdInteriorUnsafe = 48;
  unsigned ToSelfInteriorUnsafe = 29;
  unsigned ToThirdPartyInteriorUnsafe = 10;
};

UnsafeRemovals unsafeRemovals();

/// The interior-unsafe encapsulation study (Section 4.3).
struct InteriorUnsafeStudy {
  unsigned StdSampled = 250;
  unsigned RequireValidMemoryOrUtf8 = 172; ///< 69%.
  unsigned RequireLifetimeOwnership = 38;  ///< 15%.
  unsigned NoExplicitCheck = 145;          ///< 58%.
  unsigned AppSampled = 400;
  unsigned ImproperStd = 5;
  unsigned ImproperApps = 14;
  unsigned improperTotal() const { return ImproperStd + ImproperApps; }
};

InteriorUnsafeStudy interiorUnsafeStudy();

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_UNSAFESTATS_H

#include "study/Projects.h"

using namespace rs::study;

const std::vector<ProjectInfo> &rs::study::projectTable() {
  static const std::vector<ProjectInfo> Table = {
      {Project::Servo, "2012/02", 14574, 38096, 271},
      {Project::Tock, "2015/05", 1343, 4621, 60},
      {Project::Ethereum, "2015/11", 5565, 12121, 145},
      {Project::TiKV, "2016/01", 5717, 3897, 149},
      {Project::Redox, "2016/08", 11450, 2129, 199},
      {Project::Libraries, "2010/07", 3106, 2402, 25},
  };
  return Table;
}

const ProjectInfo *rs::study::findProject(Project P) {
  for (const ProjectInfo &Info : projectTable())
    if (Info.Proj == P)
      return &Info;
  return nullptr;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The materialized study dataset: one record per studied bug. The paper
/// publishes aggregates; the per-bug attribute assignment here realizes all
/// of them simultaneously (see BugDatabase.cpp for the cell-by-cell
/// construction and DESIGN.md for the substitution rationale). Fix dates are
/// synthesized deterministically within each project's active range,
/// preserving the published "145 of 170 fixed after 2016" property that
/// Figure 2 illustrates.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STUDY_BUGDATABASE_H
#define RUSTSIGHT_STUDY_BUGDATABASE_H

#include "study/BugRecords.h"

#include <vector>

namespace rs::study {

/// The full 170-bug dataset.
class BugDatabase {
public:
  BugDatabase();

  const std::vector<MemoryBug> &memoryBugs() const { return Memory; }
  const std::vector<BlockingBug> &blockingBugs() const { return Blocking; }
  const std::vector<NonBlockingBug> &nonBlockingBugs() const {
    return NonBlocking;
  }

  size_t totalBugs() const {
    return Memory.size() + Blocking.size() + NonBlocking.size();
  }

  /// Number of bugs fixed in or after 2016 (the paper reports 145 of 170).
  size_t fixedSince2016() const;

private:
  void buildMemoryBugs();
  void buildBlockingBugs();
  void buildNonBlockingBugs();
  void assignDates();

  std::vector<MemoryBug> Memory;
  std::vector<BlockingBug> Blocking;
  std::vector<NonBlockingBug> NonBlocking;
};

} // namespace rs::study

#endif // RUSTSIGHT_STUDY_BUGDATABASE_H

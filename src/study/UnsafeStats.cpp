#include "study/UnsafeStats.h"

using namespace rs::study;

namespace {

std::vector<UnsafeUsage> buildSample() {
  std::vector<UnsafeUsage> Sample;
  Sample.reserve(600);

  // Operation types: 66% memory operations (396), 29% unsafe calls (174),
  // 5% other (30).
  auto OpFor = [](unsigned I) {
    if (I < 396)
      return UnsafeOpType::MemoryOp;
    if (I < 396 + 174)
      return UnsafeOpType::CallUnsafeFn;
    return UnsafeOpType::OtherOp;
  };

  // Purposes: 42% reuse (252), 22% performance (132), 14% sharing (84),
  // 22% other bypassing (132). Interleaved so purposes spread across the
  // operation-type strata.
  auto PurposeFor = [](unsigned I) {
    unsigned Slot = (I * 7) % 600; // 7 is coprime with 600.
    if (Slot < 252)
      return UnsafePurpose::CodeReuse;
    if (Slot < 252 + 132)
      return UnsafePurpose::Performance;
    if (Slot < 252 + 132 + 84)
      return UnsafePurpose::DataSharing;
    return UnsafePurpose::OtherBypass;
  };

  // 32 usages compile without the unsafe keyword: 21 kept for consistency,
  // 5 constructor markers, 6 danger warnings.
  auto RemovableFor = [](unsigned I) {
    if (I >= 32)
      return RemovableReason::NotRemovable;
    if (I < 21)
      return RemovableReason::CodeConsistency;
    if (I < 26)
      return RemovableReason::ConstructorMarker;
    return RemovableReason::DangerWarning;
  };

  for (unsigned I = 0; I != 600; ++I)
    Sample.push_back({I + 1, OpFor(I), PurposeFor(I), RemovableFor(I)});
  return Sample;
}

} // namespace

const std::vector<UnsafeUsage> &rs::study::unsafeUsageSample() {
  static const std::vector<UnsafeUsage> Sample = buildSample();
  return Sample;
}

UnsafeCounts rs::study::applicationUnsafeCounts() { return {3665, 1302, 23}; }

UnsafeCounts rs::study::stdUnsafeCounts() { return {1581, 861, 12}; }

UnsafeRemovals rs::study::unsafeRemovals() { return UnsafeRemovals(); }

InteriorUnsafeStudy rs::study::interiorUnsafeStudy() {
  return InteriorUnsafeStudy();
}

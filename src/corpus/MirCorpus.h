//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of RustLite MIR corpora with injected bug
/// patterns. Each injected bug reproduces one of the paper's studied bug
/// shapes (Figures 5-9 and the Section 5.1 patterns); each pattern also has
/// a benign twin — the paper's published fix — so detector precision can be
/// evaluated, standing in for the real code bases the paper's detectors ran
/// on (which reported 4 use-after-free bugs with 3 false positives and 6
/// double-locks with none).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_CORPUS_MIRCORPUS_H
#define RUSTSIGHT_CORPUS_MIRCORPUS_H

#include "mir/Mir.h"

#include <cstdint>

namespace rs::corpus {

/// How many instances of each pattern to inject.
struct MirCorpusConfig {
  uint64_t Seed = 1;

  /// Bug-free filler functions (arithmetic, branches, loops, calls).
  unsigned BenignFunctions = 10;

  unsigned UseAfterFreeBugs = 0;
  unsigned UseAfterFreeBenign = 0;
  /// Use-after-free reachable only when a bool parameter is true: a static
  /// may-analysis reports it, but a dynamic run with default (false) inputs
  /// never executes the drop — the coverage gap bench_sec7_ablation
  /// measures.
  unsigned UseAfterFreeGuardedBugs = 0;
  unsigned DoubleLockBugs = 0;
  unsigned DoubleLockBenign = 0;
  /// Each pair is two thread functions with conflicting (buggy) or
  /// consistent (benign) lock orders, plus a spawner.
  unsigned LockOrderBugPairs = 0;
  unsigned LockOrderBenignPairs = 0;
  unsigned InvalidFreeBugs = 0;
  unsigned InvalidFreeBenign = 0;
  unsigned DoubleFreeBugs = 0;
  unsigned DoubleFreeBenign = 0;
  unsigned UninitReadBugs = 0;
  unsigned UninitReadBenign = 0;
  unsigned InteriorMutabilityBugs = 0;
  unsigned InteriorMutabilityBenign = 0;
  /// Condvar wait with (benign) or without (buggy) a notifier thread in
  /// the same spawn group.
  unsigned CondvarWaitBugs = 0;
  unsigned CondvarWaitBenign = 0;
  /// Channel receive with (benign) or without (buggy) a sender thread.
  unsigned ChannelRecvBugs = 0;
  unsigned ChannelRecvBenign = 0;
  /// RefCell borrow_mut while another borrow is alive (panics at runtime,
  /// Insight 9) — buggy; the benign twin ends the first borrow first.
  unsigned RefCellConflictBugs = 0;
  unsigned RefCellConflictBenign = 0;
  /// Fraction of double-lock instances (buggy and benign) routed through a
  /// helper function, exercising the interprocedural analysis: one in
  /// every `InterprocEvery` instances (0 disables).
  unsigned InterprocEvery = 3;

  /// Expected *static* diagnostics: one per injected bug instance/pair.
  unsigned totalBugs() const {
    return UseAfterFreeBugs + UseAfterFreeGuardedBugs + DoubleLockBugs +
           LockOrderBugPairs + InvalidFreeBugs + DoubleFreeBugs +
           UninitReadBugs + InteriorMutabilityBugs + CondvarWaitBugs +
           ChannelRecvBugs + RefCellConflictBugs;
  }
};

/// Generates one Module per call; identical config -> identical module.
class MirCorpusGenerator {
public:
  explicit MirCorpusGenerator(MirCorpusConfig Config)
      : Config(Config) {}

  mir::Module generate();

private:
  MirCorpusConfig Config;
};

} // namespace rs::corpus

#endif // RUSTSIGHT_CORPUS_MIRCORPUS_H

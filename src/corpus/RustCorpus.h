//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of synthetic Rust source trees with exact,
/// known counts of unsafe blocks, unsafe functions, unsafe traits/impls,
/// and interior-unsafe functions. It stands in for the five applications
/// and five libraries the paper counted (4990 unsafe usages), letting the
/// scanner pipeline be exercised end-to-end with a verifiable ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_CORPUS_RUSTCORPUS_H
#define RUSTSIGHT_CORPUS_RUSTCORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace rs::corpus {

/// Target construct counts for the generated tree.
struct RustCorpusConfig {
  uint64_t Seed = 1;
  unsigned Files = 8;
  unsigned UnsafeBlocks = 40;       ///< Includes the interior-unsafe ones.
  unsigned UnsafeFns = 15;
  unsigned UnsafeTraits = 2;
  unsigned UnsafeImpls = 3;
  unsigned InteriorUnsafeFns = 10;  ///< Safe fns wrapping one unsafe block
                                    ///< each; must be <= UnsafeBlocks.
  unsigned SafeFns = 30;            ///< Plain safe filler functions.
};

/// One generated file.
struct RustFile {
  std::string Name;
  std::string Source;
};

/// Generates sources realizing the configured counts exactly.
class RustCorpusGenerator {
public:
  explicit RustCorpusGenerator(RustCorpusConfig Config) : Config(Config) {}

  std::vector<RustFile> generate() const;

  /// Renders all files into one concatenated buffer (handy for scanning
  /// without touching the filesystem).
  std::string generateConcatenated() const;

private:
  RustCorpusConfig Config;
};

} // namespace rs::corpus

#endif // RUSTSIGHT_CORPUS_RUSTCORPUS_H

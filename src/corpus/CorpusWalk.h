//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic corpus enumeration: expands a mixed list of files and
/// directories into the exact, ordered list of analysis inputs the engine
/// will process. The expansion is pure — no parsing, no IO beyond the
/// directory walk — so the parallel scheduler can size its task list (and
/// the report its slot vector) before any analysis starts, and serial and
/// parallel runs see byte-identical input orderings.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_CORPUS_CORPUSWALK_H
#define RUSTSIGHT_CORPUS_CORPUSWALK_H

#include <string>
#include <vector>

namespace rs::corpus {

/// One analysis input. When SkipReason is nonempty the entry is a
/// placeholder the engine must report as skipped without touching the
/// path again (e.g. a directory that contained no .mir files).
struct CorpusInput {
  std::string Path;
  std::string SkipReason;
};

/// Expands \p Paths in order: a file maps to itself; a directory maps to
/// every .mir file under it, recursively, sorted by the corpus sort key
/// below; an empty directory maps to one skipped placeholder. Unreadable
/// paths pass through as plain files so the engine reports them with its
/// usual "cannot open file" status.
///
/// THE corpus ordering. The returned vector's order is load-bearing far
/// beyond display: the whole-program linker derives module indices (and
/// so link keys and digests) from it, the shard partitioner cuts it into
/// contiguous ranges, and the supervisor's ordinal merge reassembles
/// worker results by position in it. All three consume this one ordering,
/// which is why `--shards N` and in-process runs are byte-identical.
///
/// Sort key, exactly: within each expanded directory, the full path
/// spelling (directory argument as given + native separators + relative
/// path), compared as raw unsigned bytes (memcmp order — what
/// std::string's operator< does). No locale, no case folding, no numeric
/// collation, no depth-first tiebreak: "a-x/f.mir" < "a/f.mir" because
/// '-' (0x2d) < '/' (0x2f). Explicit file arguments and the directories
/// themselves keep their command-line order. Stable across filesystems
/// because the directory enumeration order never reaches the output.
std::vector<CorpusInput> expandMirPaths(const std::vector<std::string> &Paths);

} // namespace rs::corpus

#endif // RUSTSIGHT_CORPUS_CORPUSWALK_H

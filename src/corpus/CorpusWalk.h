//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic corpus enumeration: expands a mixed list of files and
/// directories into the exact, ordered list of analysis inputs the engine
/// will process. The expansion is pure — no parsing, no IO beyond the
/// directory walk — so the parallel scheduler can size its task list (and
/// the report its slot vector) before any analysis starts, and serial and
/// parallel runs see byte-identical input orderings.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_CORPUS_CORPUSWALK_H
#define RUSTSIGHT_CORPUS_CORPUSWALK_H

#include <string>
#include <vector>

namespace rs::corpus {

/// One analysis input. When SkipReason is nonempty the entry is a
/// placeholder the engine must report as skipped without touching the
/// path again (e.g. a directory that contained no .mir files).
struct CorpusInput {
  std::string Path;
  std::string SkipReason;
};

/// Expands \p Paths in order: a file maps to itself; a directory maps to
/// every .mir file under it, recursively, in lexicographically sorted
/// order (stable across filesystems); an empty directory maps to one
/// skipped placeholder. Unreadable paths pass through as plain files so
/// the engine reports them with its usual "cannot open file" status.
std::vector<CorpusInput> expandMirPaths(const std::vector<std::string> &Paths);

} // namespace rs::corpus

#endif // RUSTSIGHT_CORPUS_CORPUSWALK_H

#include "corpus/MirCorpus.h"

#include "mir/Builder.h"
#include "support/Rng.h"

using namespace rs;
using namespace rs::corpus;
using namespace rs::mir;

namespace {

/// Emits pattern functions into a module with index-suffixed names.
class Emitter {
public:
  Emitter(Module &M, Rng &R) : M(M), R(R), TC(M.types()) {}

  void declareSharedTypes();

  void benignFiller(unsigned Idx);
  void useAfterFree(unsigned Idx, bool Buggy);
  void useAfterFreeGuarded(unsigned Idx);
  void doubleLock(unsigned Idx, bool Buggy, bool Interproc);
  void lockOrderPair(unsigned Idx, bool Buggy);
  void invalidFree(unsigned Idx, bool Buggy);
  void doubleFree(unsigned Idx, bool Buggy);
  void uninitRead(unsigned Idx, bool Buggy);
  void interiorMutability(unsigned Idx, bool Buggy);
  void condvarWait(unsigned Idx, bool Buggy);
  void channelRecv(unsigned Idx, bool Buggy);
  void refCellConflict(unsigned Idx, bool Buggy);

private:
  /// Appends a few arithmetic statements on fresh locals, so instances of
  /// a pattern differ without changing their safety behaviour.
  void filler(FunctionBuilder &FB, unsigned MaxStatements = 4);

  std::string name(const char *Base, unsigned Idx) {
    return std::string(Base) + "_" + std::to_string(Idx);
  }

  Module &M;
  Rng &R;
  TypeContext &TC;
};

void Emitter::declareSharedTypes() {
  // The Figure 6 stand-in: a struct owning heap memory, so dropping a
  // garbage value is an invalid free.
  StructDecl Packet;
  Packet.Name = Symbol::intern("Packet");
  Packet.Fields.emplace_back("buf",
                             TC.getAdt("Vec", {TC.getPrim(PrimKind::U8)}));
  M.addStruct(std::move(Packet));

  // The Figure 9 stand-in: a Sync type with a plain mutable field.
  StructDecl Shared;
  Shared.Name = Symbol::intern("SharedState");
  Shared.Fields.emplace_back("flag", TC.getBool());
  M.addStruct(std::move(Shared));
  M.addSyncImpl("SharedState");
}

void Emitter::filler(FunctionBuilder &FB, unsigned MaxStatements) {
  unsigned N = 1 + static_cast<unsigned>(R.below(MaxStatements));
  for (unsigned I = 0; I != N; ++I) {
    LocalId T = FB.addLocal(TC.getI32());
    FB.storageLive(T);
    FB.assign(Place(T),
              Rvalue::binary(
                  static_cast<BinOp>(R.below(5)), // Add..Rem
                  Operand::constant(ConstValue::makeInt(
                      static_cast<int64_t>(R.below(100)))),
                  Operand::constant(ConstValue::makeInt(
                      1 + static_cast<int64_t>(R.below(100))))));
    FB.storageDead(T);
  }
}

void Emitter::benignFiller(unsigned Idx) {
  FunctionBuilder FB(M, name("compute", Idx), TC.getI32());
  LocalId A = FB.addArg(TC.getI32());
  LocalId Cond = FB.addLocal(TC.getBool());
  filler(FB);
  FB.assign(Place(Cond),
            Rvalue::binary(BinOp::Lt, Operand::copy(Place(A)),
                           Operand::constant(ConstValue::makeInt(50))));
  BlockId Then = FB.newBlock();
  BlockId Else = FB.newBlock();
  BlockId Join = FB.newBlock();
  FB.switchInt(Operand::copy(Place(Cond)), {{1, Then}}, Else);
  FB.setInsertPoint(Then);
  FB.assign(Place(FB.returnLocal()),
            Rvalue::binary(BinOp::Add, Operand::copy(Place(A)),
                           Operand::constant(ConstValue::makeInt(1))));
  FB.gotoBlock(Join);
  FB.setInsertPoint(Else);
  FB.assign(Place(FB.returnLocal()),
            Rvalue::binary(BinOp::Sub, Operand::copy(Place(A)),
                           Operand::constant(ConstValue::makeInt(1))));
  FB.gotoBlock(Join);
  FB.setInsertPoint(Join);
  filler(FB, 2);
  FB.ret();
  FB.finish();
}

void Emitter::useAfterFree(unsigned Idx, bool Buggy) {
  // Figure 7 shape: pointer into a Box outlives (buggy) or not (benign)
  // the Box's drop.
  const Type *BoxU8 = TC.getAdt("Box", {TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(M, name(Buggy ? "uaf_bug" : "uaf_ok", Idx),
                     TC.getPrim(PrimKind::U8));
  LocalId B = FB.addLocal(BoxU8);
  LocalId P = FB.addLocal(TC.getRawPtr(TC.getPrim(PrimKind::U8), false));
  filler(FB);
  FB.storageLive(B);
  FB.call(Place(B), "Box::new",
          {Operand::constant(
              ConstValue::makeInt(static_cast<int64_t>(R.below(256))))});
  FB.assign(Place(P),
            Rvalue::addressOf(Place(B).project(ProjectionElem::deref()),
                              /*Mut=*/false));
  if (Buggy) {
    FB.drop(Place(B));
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(P).project(ProjectionElem::deref()))));
  } else {
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(P).project(ProjectionElem::deref()))));
    FB.drop(Place(B));
  }
  FB.storageDead(B);
  FB.ret();
  FB.finish();
}

void Emitter::useAfterFreeGuarded(unsigned Idx) {
  // The drop runs only when the bool parameter is true; the dereference
  // after the merge is a may-use-after-free (static) but executes cleanly
  // on a default (false) input (dynamic miss).
  const Type *BoxU8 = TC.getAdt("Box", {TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(M, name("uaf_guarded_bug", Idx),
                     TC.getPrim(PrimKind::U8));
  LocalId Cond = FB.addArg(TC.getBool());
  LocalId B = FB.addLocal(BoxU8);
  LocalId P = FB.addLocal(TC.getRawPtr(TC.getPrim(PrimKind::U8), false));
  filler(FB, 2);
  FB.call(Place(B), "Box::new",
          {Operand::constant(
              ConstValue::makeInt(static_cast<int64_t>(R.below(256))))});
  FB.assign(Place(P),
            Rvalue::addressOf(Place(B).project(ProjectionElem::deref()),
                              /*Mut=*/false));
  BlockId DropBlock = FB.newBlock();
  BlockId Merge = FB.newBlock();
  FB.switchInt(Operand::copy(Place(Cond)), {{1, DropBlock}}, Merge);
  FB.setInsertPoint(DropBlock);
  FB.dropTo(Place(B), Merge);
  FB.setInsertPoint(Merge);
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::copy(
                Place(P).project(ProjectionElem::deref()))));
  FB.ret();
  FB.finish();
}

void Emitter::doubleLock(unsigned Idx, bool Buggy, bool Interproc) {
  const Type *MutexI32 = TC.getAdt("Mutex", {TC.getI32()});
  const Type *MutexRef = TC.getRef(MutexI32, false);
  const Type *Guard = TC.getAdt("MutexGuard", {TC.getI32()});

  std::string Helper;
  if (Interproc) {
    // A helper that locks its parameter, used by the buggy/benign caller.
    Helper = name(Buggy ? "dl_bug_helper" : "dl_ok_helper", Idx);
    FunctionBuilder HB(M, Helper, TC.getI32());
    LocalId Arg = HB.addArg(MutexRef);
    LocalId G = HB.addLocal(Guard);
    HB.storageLive(G);
    HB.call(Place(G), "Mutex::lock", {Operand::copy(Place(Arg))});
    HB.assign(Place(HB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(G).project(ProjectionElem::deref()))));
    HB.storageDead(G);
    HB.ret();
    HB.finish();
  }

  FunctionBuilder FB(M, name(Buggy ? "dl_bug" : "dl_ok", Idx), TC.getI32());
  LocalId Arg = FB.addArg(MutexRef);
  LocalId G1 = FB.addLocal(Guard);
  filler(FB);
  FB.storageLive(G1);
  FB.call(Place(G1), "Mutex::lock", {Operand::copy(Place(Arg))});
  if (!Buggy)
    FB.storageDead(G1); // The fix: the first critical section ends here.
  if (Interproc) {
    FB.call(Place(FB.returnLocal()), Helper, {Operand::copy(Place(Arg))});
  } else {
    LocalId G2 = FB.addLocal(Guard);
    FB.storageLive(G2);
    FB.call(Place(G2), "Mutex::lock", {Operand::copy(Place(Arg))});
    FB.assign(Place(FB.returnLocal()),
              Rvalue::use(Operand::copy(
                  Place(G2).project(ProjectionElem::deref()))));
    FB.storageDead(G2);
  }
  if (Buggy)
    FB.storageDead(G1);
  FB.ret();
  FB.finish();
}

void Emitter::lockOrderPair(unsigned Idx, bool Buggy) {
  const Type *MutexI32 = TC.getAdt("Mutex", {TC.getI32()});
  const Type *MutexRef = TC.getRef(MutexI32, false);
  const Type *Guard = TC.getAdt("MutexGuard", {TC.getI32()});

  auto EmitThread = [&](const std::string &Name, bool Swap) {
    FunctionBuilder FB(M, Name);
    LocalId A = FB.addArg(MutexRef);
    LocalId B = FB.addArg(MutexRef);
    LocalId G1 = FB.addLocal(Guard);
    LocalId G2 = FB.addLocal(Guard);
    filler(FB, 3);
    FB.storageLive(G1);
    FB.call(Place(G1), "Mutex::lock", {Operand::copy(Place(Swap ? B : A))});
    FB.storageLive(G2);
    FB.call(Place(G2), "Mutex::lock", {Operand::copy(Place(Swap ? A : B))});
    FB.storageDead(G2);
    FB.storageDead(G1);
    FB.ret();
    FB.finish();
  };

  std::string T1 = name(Buggy ? "abba_bug_t1" : "order_ok_t1", Idx);
  std::string T2 = name(Buggy ? "abba_bug_t2" : "order_ok_t2", Idx);
  EmitThread(T1, /*Swap=*/false);
  EmitThread(T2, /*Swap=*/Buggy); // Benign pairs use the same order.

  // The spawner marks both functions as thread entry points.
  FunctionBuilder SB(M, name(Buggy ? "abba_spawner" : "order_spawner", Idx));
  LocalId U1 = SB.addLocal(TC.getUnit());
  LocalId U2 = SB.addLocal(TC.getUnit());
  SB.call(Place(U1), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(T1))});
  SB.call(Place(U2), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(T2))});
  SB.ret();
  SB.finish();
}

void Emitter::invalidFree(unsigned Idx, bool Buggy) {
  // Figure 6 shape: write a struct-with-Drop through a pointer to
  // uninitialized memory. Benign twin uses ptr::write.
  const Type *PacketTy = TC.getAdt("Packet");
  const Type *PacketPtr = TC.getRawPtr(PacketTy, true);
  const Type *VecU8 = TC.getAdt("Vec", {TC.getPrim(PrimKind::U8)});

  FunctionBuilder FB(M, name(Buggy ? "invfree_bug" : "invfree_ok", Idx));
  LocalId P = FB.addLocal(PacketPtr);
  LocalId V = FB.addLocal(VecU8);
  LocalId Tmp = FB.addLocal(PacketTy);
  filler(FB);
  FB.call(Place(P), "alloc",
          {Operand::constant(
              ConstValue::makeInt(16 + static_cast<int64_t>(R.below(64))))});
  FB.call(Place(V), "Vec::with_capacity",
          {Operand::constant(ConstValue::makeInt(100))});
  FB.assign(Place(Tmp),
            Rvalue::aggregate("Packet", {Operand::move(Place(V))}));
  if (Buggy) {
    FB.assign(Place(P).project(ProjectionElem::deref()),
              Rvalue::use(Operand::move(Place(Tmp))));
  } else {
    LocalId U = FB.addLocal(TC.getUnit());
    FB.call(Place(U), "ptr::write",
            {Operand::copy(Place(P)), Operand::move(Place(Tmp))});
  }
  FB.ret();
  FB.finish();
}

void Emitter::doubleFree(unsigned Idx, bool Buggy) {
  // Section 5.1 shape: ptr::read duplicates ownership; the benign twin
  // forgets the original owner.
  const Type *BoxU8 = TC.getAdt("Box", {TC.getPrim(PrimKind::U8)});
  FunctionBuilder FB(M, name(Buggy ? "dfree_bug" : "dfree_ok", Idx));
  LocalId T1 = FB.addLocal(BoxU8);
  LocalId Ref = FB.addLocal(TC.getRef(BoxU8, false));
  LocalId T2 = FB.addLocal(BoxU8);
  filler(FB);
  FB.call(Place(T1), "Box::new",
          {Operand::constant(ConstValue::makeInt(7))});
  FB.assign(Place(Ref), Rvalue::ref(Place(T1), /*Mut=*/false));
  FB.call(Place(T2), "ptr::read", {Operand::copy(Place(Ref))});
  if (Buggy) {
    FB.drop(Place(T2));
    FB.drop(Place(T1));
  } else {
    LocalId U = FB.addLocal(TC.getUnit());
    FB.call(Place(U), "mem::forget", {Operand::move(Place(T1))});
    FB.drop(Place(T2));
  }
  FB.ret();
  FB.finish();
}

void Emitter::uninitRead(unsigned Idx, bool Buggy) {
  const Type *U8Ptr = TC.getRawPtr(TC.getPrim(PrimKind::U8), true);
  FunctionBuilder FB(M, name(Buggy ? "uninit_bug" : "uninit_ok", Idx),
                     TC.getPrim(PrimKind::U8));
  LocalId P = FB.addLocal(U8Ptr);
  filler(FB);
  FB.call(Place(P), "alloc",
          {Operand::constant(
              ConstValue::makeInt(8 + static_cast<int64_t>(R.below(8))))});
  if (!Buggy) {
    FB.assign(Place(P).project(ProjectionElem::deref()),
              Rvalue::use(Operand::constant(ConstValue::makeInt(0))));
  }
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::copy(
                Place(P).project(ProjectionElem::deref()))));
  FB.ret();
  FB.finish();
}

void Emitter::interiorMutability(unsigned Idx, bool Buggy) {
  // Figure 9 shape: &self method of a Sync type mutating a field through a
  // pointer cast. Benign twin uses an atomic compare-and-swap.
  const Type *SelfRef = TC.getRef(TC.getAdt("SharedState"), false);
  FunctionBuilder FB(M, name(Buggy ? "imut_bug" : "imut_ok", Idx),
                     TC.getI32());
  LocalId SelfArg = FB.addArg(SelfRef);
  filler(FB, 2);
  if (Buggy) {
    LocalId FieldRef = FB.addLocal(TC.getRef(TC.getBool(), false));
    LocalId Ptr = FB.addLocal(TC.getRawPtr(TC.getBool(), true));
    FB.assign(Place(FieldRef),
              Rvalue::ref(Place(SelfArg)
                              .project(ProjectionElem::deref())
                              .project(ProjectionElem::field(0)),
                          /*Mut=*/false));
    FB.assign(Place(Ptr), Rvalue::cast(Operand::copy(Place(FieldRef)),
                                       TC.getRawPtr(TC.getBool(), true)));
    FB.assign(Place(Ptr).project(ProjectionElem::deref()),
              Rvalue::use(Operand::constant(ConstValue::makeBool(true))));
  } else {
    LocalId FieldRef = FB.addLocal(TC.getRef(TC.getAdt("AtomicBool"), false));
    LocalId Old = FB.addLocal(TC.getBool());
    FB.assign(Place(FieldRef),
              Rvalue::ref(Place(SelfArg)
                              .project(ProjectionElem::deref())
                              .project(ProjectionElem::field(0)),
                          /*Mut=*/false));
    FB.call(Place(Old), "AtomicBool::compare_and_swap",
            {Operand::copy(Place(FieldRef)),
             Operand::constant(ConstValue::makeBool(false)),
             Operand::constant(ConstValue::makeBool(true))});
  }
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::constant(ConstValue::makeInt(0))));
  FB.ret();
  FB.finish();
}

void Emitter::condvarWait(unsigned Idx, bool Buggy) {
  // A waiter thread blocks on a condvar; the benign twin spawns a
  // notifier thread alongside it, the buggy one does not (8 of the
  // paper's blocking bugs).
  const Type *CvRef = TC.getRef(TC.getAdt("Condvar"), false);
  const Type *MutexRef = TC.getRef(TC.getAdt("Mutex", {TC.getI32()}), false);
  const Type *Guard = TC.getAdt("MutexGuard", {TC.getI32()});

  std::string Waiter = name(Buggy ? "cv_bug_waiter" : "cv_ok_waiter", Idx);
  {
    FunctionBuilder FB(M, Waiter);
    LocalId Cv = FB.addArg(CvRef);
    LocalId Mx = FB.addArg(MutexRef);
    LocalId G = FB.addLocal(Guard);
    filler(FB, 2);
    FB.storageLive(G);
    FB.call(Place(G), "Mutex::lock", {Operand::copy(Place(Mx))});
    FB.call(Place(G), "Condvar::wait",
            {Operand::copy(Place(Cv)), Operand::move(Place(G))});
    FB.storageDead(G);
    FB.ret();
    FB.finish();
  }

  std::string Notifier;
  if (!Buggy) {
    Notifier = name("cv_ok_notifier", Idx);
    FunctionBuilder FB(M, Notifier);
    LocalId Cv = FB.addArg(CvRef);
    LocalId U = FB.addLocal(TC.getUnit());
    FB.call(Place(U), "Condvar::notify_one", {Operand::copy(Place(Cv))});
    FB.ret();
    FB.finish();
  }

  FunctionBuilder SB(M, name(Buggy ? "cv_bug_spawner" : "cv_ok_spawner",
                             Idx));
  LocalId U1 = SB.addLocal(TC.getUnit());
  SB.call(Place(U1), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(Waiter))});
  if (!Buggy) {
    LocalId U2 = SB.addLocal(TC.getUnit());
    SB.call(Place(U2), "thread::spawn",
            {Operand::constant(ConstValue::makeStr(Notifier))});
  }
  SB.ret();
  SB.finish();
}

void Emitter::channelRecv(unsigned Idx, bool Buggy) {
  // A receiver blocks pulling from a channel; the benign twin spawns a
  // sender thread (5 of the paper's blocking bugs have none).
  const Type *RecvRef =
      TC.getRef(TC.getAdt("Receiver", {TC.getI32()}), false);
  const Type *SendRef = TC.getRef(TC.getAdt("Sender", {TC.getI32()}), false);

  std::string Receiver =
      name(Buggy ? "ch_bug_receiver" : "ch_ok_receiver", Idx);
  {
    FunctionBuilder FB(M, Receiver, TC.getI32());
    LocalId Rx = FB.addArg(RecvRef);
    filler(FB, 2);
    FB.call(Place(FB.returnLocal()), "Receiver::recv",
            {Operand::copy(Place(Rx))});
    FB.ret();
    FB.finish();
  }

  std::string Sender;
  if (!Buggy) {
    Sender = name("ch_ok_sender", Idx);
    FunctionBuilder FB(M, Sender);
    LocalId Tx = FB.addArg(SendRef);
    LocalId U = FB.addLocal(TC.getUnit());
    FB.call(Place(U), "Sender::send",
            {Operand::copy(Place(Tx)),
             Operand::constant(ConstValue::makeInt(1))});
    FB.ret();
    FB.finish();
  }

  FunctionBuilder SB(M, name(Buggy ? "ch_bug_spawner" : "ch_ok_spawner",
                             Idx));
  LocalId U1 = SB.addLocal(TC.getUnit());
  SB.call(Place(U1), "thread::spawn",
          {Operand::constant(ConstValue::makeStr(Receiver))});
  if (!Buggy) {
    LocalId U2 = SB.addLocal(TC.getUnit());
    SB.call(Place(U2), "thread::spawn",
            {Operand::constant(ConstValue::makeStr(Sender))});
  }
  SB.ret();
  SB.finish();
}

void Emitter::refCellConflict(unsigned Idx, bool Buggy) {
  // Insight 9's RefCell misuse: a second borrow_mut while the first
  // borrow's guard is alive panics at runtime; the benign twin ends the
  // first borrow's scope before re-borrowing.
  const Type *CellRef = TC.getRef(TC.getAdt("RefCell", {TC.getI32()}), false);
  const Type *RefMut = TC.getAdt("RefMut", {TC.getI32()});
  FunctionBuilder FB(M, name(Buggy ? "rc_bug" : "rc_ok", Idx), TC.getI32());
  LocalId Arg = FB.addArg(CellRef);
  LocalId G1 = FB.addLocal(RefMut);
  LocalId G2 = FB.addLocal(RefMut);
  filler(FB, 2);
  FB.storageLive(G1);
  FB.call(Place(G1), "RefCell::borrow_mut", {Operand::copy(Place(Arg))});
  if (!Buggy)
    FB.storageDead(G1);
  FB.storageLive(G2);
  FB.call(Place(G2), "RefCell::borrow_mut", {Operand::copy(Place(Arg))});
  FB.assign(Place(FB.returnLocal()),
            Rvalue::use(Operand::copy(
                Place(G2).project(ProjectionElem::deref()))));
  FB.storageDead(G2);
  if (Buggy)
    FB.storageDead(G1);
  FB.ret();
  FB.finish();
}

} // namespace

Module MirCorpusGenerator::generate() {
  Module M;
  Rng R(Config.Seed);
  Emitter E(M, R);
  E.declareSharedTypes();

  for (unsigned I = 0; I != Config.BenignFunctions; ++I)
    E.benignFiller(I);
  for (unsigned I = 0; I != Config.UseAfterFreeBugs; ++I)
    E.useAfterFree(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.UseAfterFreeBenign; ++I)
    E.useAfterFree(I, /*Buggy=*/false);
  for (unsigned I = 0; I != Config.UseAfterFreeGuardedBugs; ++I)
    E.useAfterFreeGuarded(I);

  auto Interproc = [this](unsigned I) {
    return Config.InterprocEvery != 0 && I % Config.InterprocEvery == 0;
  };
  for (unsigned I = 0; I != Config.DoubleLockBugs; ++I)
    E.doubleLock(I, /*Buggy=*/true, Interproc(I));
  for (unsigned I = 0; I != Config.DoubleLockBenign; ++I)
    E.doubleLock(I, /*Buggy=*/false, Interproc(I));

  for (unsigned I = 0; I != Config.LockOrderBugPairs; ++I)
    E.lockOrderPair(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.LockOrderBenignPairs; ++I)
    E.lockOrderPair(I, /*Buggy=*/false);

  for (unsigned I = 0; I != Config.InvalidFreeBugs; ++I)
    E.invalidFree(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.InvalidFreeBenign; ++I)
    E.invalidFree(I, /*Buggy=*/false);

  for (unsigned I = 0; I != Config.DoubleFreeBugs; ++I)
    E.doubleFree(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.DoubleFreeBenign; ++I)
    E.doubleFree(I, /*Buggy=*/false);

  for (unsigned I = 0; I != Config.UninitReadBugs; ++I)
    E.uninitRead(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.UninitReadBenign; ++I)
    E.uninitRead(I, /*Buggy=*/false);

  for (unsigned I = 0; I != Config.InteriorMutabilityBugs; ++I)
    E.interiorMutability(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.InteriorMutabilityBenign; ++I)
    E.interiorMutability(I, /*Buggy=*/false);

  for (unsigned I = 0; I != Config.CondvarWaitBugs; ++I)
    E.condvarWait(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.CondvarWaitBenign; ++I)
    E.condvarWait(I, /*Buggy=*/false);
  for (unsigned I = 0; I != Config.ChannelRecvBugs; ++I)
    E.channelRecv(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.ChannelRecvBenign; ++I)
    E.channelRecv(I, /*Buggy=*/false);
  for (unsigned I = 0; I != Config.RefCellConflictBugs; ++I)
    E.refCellConflict(I, /*Buggy=*/true);
  for (unsigned I = 0; I != Config.RefCellConflictBenign; ++I)
    E.refCellConflict(I, /*Buggy=*/false);

  return M;
}

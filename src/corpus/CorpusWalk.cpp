#include "corpus/CorpusWalk.h"

#include <algorithm>
#include <filesystem>

namespace fs = std::filesystem;

using namespace rs::corpus;

std::vector<CorpusInput>
rs::corpus::expandMirPaths(const std::vector<std::string> &Paths) {
  std::vector<CorpusInput> Out;
  Out.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    std::error_code Ec;
    if (!fs::is_directory(Path, Ec)) {
      Out.push_back({Path, ""});
      continue;
    }
    // Directories expand to their .mir files, recursively, in raw-byte
    // (memcmp) order of the full path spelling — the corpus sort key the
    // linker, shard partitioner and ordinal merge all share (see the
    // header). std::string's operator< is exactly that order; the explicit
    // comparator documents the contract and pins it against a well-meaning
    // future "smarter" collation.
    std::vector<std::string> Found;
    for (const auto &Entry : fs::recursive_directory_iterator(
             Path, fs::directory_options::skip_permission_denied, Ec)) {
      std::error_code FileEc;
      if (Entry.is_regular_file(FileEc) && Entry.path().extension() == ".mir")
        Found.push_back(Entry.path().string());
    }
    std::sort(Found.begin(), Found.end(),
              [](const std::string &A, const std::string &B) {
                return A.compare(B) < 0; // memcmp order, unsigned bytes.
              });
    if (Found.empty()) {
      Out.push_back({Path, "no .mir files in directory"});
      continue;
    }
    for (std::string &F : Found)
      Out.push_back({std::move(F), ""});
  }
  return Out;
}

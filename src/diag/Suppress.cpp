#include "diag/Suppress.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace rs;
using namespace rs::diag;

bool SuppressionSet::allows(RuleId R, unsigned Line) const {
  for (unsigned Candidate : {Line, Line - 1}) {
    if (Candidate == 0 || Candidate > Line)
      continue;
    auto It = ByLine.find(Candidate);
    if (It != ByLine.end() &&
        std::find(It->second.begin(), It->second.end(), R) != It->second.end())
      return true;
  }
  return false;
}

namespace {

constexpr std::string_view Marker = "rustsight-allow(";

/// Splits the allow-list body on commas and resolves each token.
void scanLine(std::string_view LineText, unsigned LineNo,
              SuppressionSet &Out) {
  size_t Comment = LineText.find("//");
  if (Comment == std::string_view::npos)
    return;
  size_t MarkerPos = LineText.find(Marker, Comment);
  if (MarkerPos == std::string_view::npos)
    return;
  size_t BodyStart = MarkerPos + Marker.size();
  size_t Close = LineText.find(')', BodyStart);
  std::string_view Body =
      Close == std::string_view::npos
          ? LineText.substr(BodyStart)
          : LineText.substr(BodyStart, Close - BodyStart);

  std::vector<RuleId> Known;
  std::vector<std::string> KnownSpellings;
  std::vector<std::pair<size_t, std::string>> UnknownTokens;
  size_t Pos = 0;
  while (Pos <= Body.size()) {
    size_t Comma = Body.find(',', Pos);
    std::string_view Raw = Body.substr(
        Pos, Comma == std::string_view::npos ? Body.npos : Comma - Pos);
    size_t Lead = Raw.find_first_not_of(" \t");
    std::string_view Token = Lead == std::string_view::npos
                                 ? std::string_view{}
                                 : trim(Raw);
    size_t TokenCol = BodyStart + Pos + (Lead == std::string_view::npos
                                             ? 0
                                             : Lead);
    if (!Token.empty()) {
      RuleId R;
      if (ruleFromString(Token, R)) {
        if (std::find(Known.begin(), Known.end(), R) == Known.end()) {
          Known.push_back(R);
          KnownSpellings.emplace_back(Token);
        }
      } else {
        UnknownTokens.emplace_back(TokenCol, std::string(Token));
      }
    }
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }

  if (!Known.empty()) {
    std::vector<RuleId> &Rules = Out.ByLine[LineNo];
    for (RuleId R : Known)
      if (std::find(Rules.begin(), Rules.end(), R) == Rules.end())
        Rules.push_back(R);
  }

  if (!UnknownTokens.empty()) {
    // The machine-applicable fix: the same line with only the known rules
    // in the allow list, or with the comment removed when nothing remains.
    std::string Fixed;
    if (!Known.empty()) {
      Fixed = std::string(LineText.substr(0, MarkerPos));
      Fixed += Marker;
      for (size_t I = 0; I != KnownSpellings.size(); ++I) {
        if (I)
          Fixed += ", ";
        Fixed += KnownSpellings[I];
      }
      Fixed += ')';
      if (Close != std::string_view::npos)
        Fixed += LineText.substr(Close + 1);
    } else {
      Fixed = std::string(trim(LineText.substr(0, Comment)));
    }
    for (const auto &[Col, Token] : UnknownTokens) {
      UnknownSuppression U;
      U.Line = LineNo;
      U.Col = static_cast<unsigned>(Col) + 1;
      U.Token = Token;
      U.FixedLine = Fixed;
      Out.Unknown.push_back(std::move(U));
    }
  }
}

} // namespace

SuppressionSet rs::diag::scanSuppressions(std::string_view Source) {
  SuppressionSet Out;
  unsigned LineNo = 1;
  size_t Start = 0;
  while (Start <= Source.size()) {
    size_t Nl = Source.find('\n', Start);
    std::string_view Line =
        Nl == std::string_view::npos ? Source.substr(Start)
                                     : Source.substr(Start, Nl - Start);
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.find(Marker) != std::string_view::npos)
      scanLine(Line, LineNo, Out);
    if (Nl == std::string_view::npos)
      break;
    Start = Nl + 1;
    ++LineNo;
  }
  return Out;
}

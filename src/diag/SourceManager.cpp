#include "diag/SourceManager.h"

#include <fstream>
#include <sstream>

using namespace rs::diag;

void SourceManager::addBuffer(std::string Name, std::string Content) {
  Entry &E = Buffers[std::move(Name)];
  E.Content = std::move(Content);
  E.Loaded = true;
}

void SourceManager::removeBuffer(const std::string &Name) {
  Buffers.erase(Name);
}

bool SourceManager::hasBuffer(const std::string &Name) const {
  auto It = Buffers.find(Name);
  return It != Buffers.end() && It->second.Loaded;
}

const std::string *SourceManager::buffer(const std::string &Name) const {
  auto It = Buffers.find(Name);
  if (It == Buffers.end()) {
    Entry E;
    std::ifstream In(Name, std::ios::binary);
    if (In) {
      std::ostringstream Ss;
      Ss << In.rdbuf();
      E.Content = Ss.str();
      E.Loaded = true;
    }
    It = Buffers.emplace(Name, std::move(E)).first;
  }
  return It->second.Loaded ? &It->second.Content : nullptr;
}

std::string_view SourceManager::line(const std::string &Name, unsigned LineNo,
                                     bool &Found) const {
  Found = false;
  if (LineNo == 0)
    return {};
  const std::string *Buf = buffer(Name);
  if (!Buf)
    return {};
  std::string_view Text(*Buf);
  unsigned Current = 1;
  size_t Start = 0;
  while (Current < LineNo) {
    size_t Nl = Text.find('\n', Start);
    if (Nl == std::string_view::npos)
      return {};
    Start = Nl + 1;
    ++Current;
  }
  size_t End = Text.find('\n', Start);
  std::string_view Line = End == std::string_view::npos
                              ? Text.substr(Start)
                              : Text.substr(Start, End - Start);
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  Found = true;
  return Line;
}

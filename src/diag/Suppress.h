//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inline suppression comments: `// rustsight-allow(rule, rule, ...)`.
/// Rules are named by stable ID ("RS-UAF-001") or short name
/// ("use-after-free"). A comment suppresses matching findings anchored on
/// its own line (trailing comment) or on the line directly below it
/// (standalone comment above the statement). Unknown rule spellings are
/// surfaced as RS-META-001 warnings carrying a machine-applicable fix-it
/// that rewrites the comment to drop the bogus entries.
///
/// The scanner works on raw source text, before parsing — the MIR lexer
/// skips comments as trivia, so suppressions are invisible to the parser
/// and, because the result-cache key is the source fingerprint, cache
/// entries stay consistent with the suppressions embedded in the source.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_SUPPRESS_H
#define RUSTSIGHT_DIAG_SUPPRESS_H

#include "diag/Diag.h"

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rs::diag {

/// One allow-list token the scanner could not resolve to a rule.
struct UnknownSuppression {
  unsigned Line = 0; ///< 1-based line of the comment.
  unsigned Col = 0;  ///< 1-based column of the unknown token.
  std::string Token;
  /// The comment line rewritten without the unknown tokens (the comment
  /// disappears entirely when no known rule remains) — the machine-
  /// applicable fix.
  std::string FixedLine;
};

/// All suppressions found in one source buffer.
struct SuppressionSet {
  /// Comment line -> rules allowed there (deduplicated, in spelling order).
  std::map<unsigned, std::vector<RuleId>> ByLine;
  std::vector<UnknownSuppression> Unknown;

  bool empty() const { return ByLine.empty() && Unknown.empty(); }

  /// True when a comment on \p Line or the line above allows \p R.
  bool allows(RuleId R, unsigned Line) const;
};

/// Scans \p Source for rustsight-allow comments.
SuppressionSet scanSuppressions(std::string_view Source);

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_SUPPRESS_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span -> LSP conversion: 1-based SourceLocations become 0-based LSP
/// Position/Range objects. When a SourceManager can supply the line (from a
/// disk file or an in-memory overlay buffer — the serve daemon registers
/// its virtual documents there), the range covers the identifier or token
/// under the location so editors underline something visible; without a
/// buffer it degrades to an empty range at the point. Severity maps onto
/// the LSP DiagnosticSeverity numbering.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_LSP_H
#define RUSTSIGHT_DIAG_LSP_H

#include "diag/Diag.h"

namespace rs {
class JsonWriter;
} // namespace rs

namespace rs::diag {

class SourceManager;

/// LSP DiagnosticSeverity: Error = 1, Warning = 2, Information = 3.
int lspSeverity(Severity S);

/// The half-open [start, end) column extent (1-based, like SourceLocation)
/// of the token at \p Loc on its line, using \p SM to fetch the line text.
/// Identifiers/paths extend over [A-Za-z0-9_:]; any other character is a
/// one-column token. Returns {col, col} (empty extent) when the buffer or
/// line is unavailable.
void tokenExtent(const SourceManager *SM, const SourceLocation &Loc,
                 unsigned &StartCol, unsigned &EndCol);

/// Writes {"start":{"line":L,"character":C},"end":{...}} for \p Loc.
/// LSP positions are 0-based; invalid locations write a zero range.
void writeLspRange(JsonWriter &W, const SourceLocation &Loc,
                   const SourceManager *SM);

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_LSP_H

#include "diag/Lsp.h"

#include "diag/SourceManager.h"
#include "support/Json.h"
#include "support/StringUtils.h"

using namespace rs;
using namespace rs::diag;

int rs::diag::lspSeverity(Severity S) {
  switch (S) {
  case Severity::Error:
    return 1;
  case Severity::Warning:
    return 2;
  case Severity::Note:
    return 3;
  }
  return 1;
}

/// True for characters that continue a MIR identifier or path segment
/// ("Mutex::lock", "_2").
static bool isPathChar(char C) { return isIdentCont(C) || C == ':'; }

void rs::diag::tokenExtent(const SourceManager *SM, const SourceLocation &Loc,
                           unsigned &StartCol, unsigned &EndCol) {
  StartCol = Loc.column() == 0 ? 1 : Loc.column();
  EndCol = StartCol;
  if (!SM || !Loc.isValid())
    return;
  bool Found = false;
  std::string_view Line = SM->line(Loc.file(), Loc.line(), Found);
  if (!Found || StartCol > Line.size())
    return;
  size_t I = StartCol - 1; // 0-based index of the located character.
  if (isPathChar(Line[I])) {
    size_t End = I;
    while (End < Line.size() && isPathChar(Line[End]))
      ++End;
    EndCol = static_cast<unsigned>(End) + 1;
  } else {
    EndCol = StartCol + 1;
  }
}

void rs::diag::writeLspRange(JsonWriter &W, const SourceLocation &Loc,
                             const SourceManager *SM) {
  // LSP is 0-based; SourceLocation is 1-based. Invalid locations pin to 0:0.
  unsigned Line = Loc.isValid() ? Loc.line() - 1 : 0;
  unsigned StartCol = 1, EndCol = 1;
  if (Loc.isValid())
    tokenExtent(SM, Loc, StartCol, EndCol);
  W.beginObject();
  W.key("start");
  W.beginObject();
  W.field("line", static_cast<int64_t>(Line));
  W.field("character", static_cast<int64_t>(StartCol - 1));
  W.endObject();
  W.key("end");
  W.beginObject();
  W.field("line", static_cast<int64_t>(Line));
  W.field("character", static_cast<int64_t>(EndCol - 1));
  W.endObject();
  W.endObject();
}

#include "diag/Baseline.h"

#include "support/Hash.h"
#include "support/Json.h"

#include <fstream>
#include <sstream>

using namespace rs;
using namespace rs::diag;

std::string Baseline::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("version");
  W.value(FormatVersion);
  W.key("fingerprints");
  W.beginArray();
  for (const std::string &F : Fingerprints)
    W.value(F);
  W.endArray();
  W.endObject();
  return W.str();
}

bool Baseline::parse(std::string_view Text, Baseline &Out, std::string &Err) {
  std::optional<JsonValue> Doc = JsonValue::parse(Text);
  if (!Doc || !Doc->isObject()) {
    Err = "not a JSON object";
    return false;
  }
  if (Doc->getInt("version", -1) != FormatVersion) {
    Err = "unsupported baseline version";
    return false;
  }
  const JsonValue *Prints = Doc->get("fingerprints");
  if (!Prints || !Prints->isArray()) {
    Err = "missing fingerprints array";
    return false;
  }
  Baseline Parsed;
  for (const JsonValue &E : Prints->elements()) {
    uint64_t Ignored;
    if (!E.isString() || !hexToHash(E.asString(), Ignored)) {
      Err = "malformed fingerprint entry";
      return false;
    }
    Parsed.add(E.asString());
  }
  Out = std::move(Parsed);
  return true;
}

bool Baseline::loadFile(const std::string &Path, Baseline &Out,
                        std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot read " + Path;
    return false;
  }
  std::ostringstream Ss;
  Ss << In.rdbuf();
  if (!parse(Ss.str(), Out, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  return true;
}

bool Baseline::writeFile(const std::string &Path, std::string &Err) const {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile) {
    Err = "cannot write " + Path;
    return false;
  }
  OutFile << renderJson() << '\n';
  OutFile.flush();
  if (!OutFile) {
    Err = "write failed for " + Path;
    return false;
  }
  return true;
}

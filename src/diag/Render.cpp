#include "diag/Render.h"

#include "diag/SourceManager.h"

using namespace rs;
using namespace rs::diag;

std::string rs::diag::renderSnippet(const SourceManager &SM,
                                    const SourceLocation &Loc,
                                    std::string_view Indent) {
  if (!Loc.isValid() || Loc.file().empty())
    return {};
  bool Found = false;
  std::string_view Line = SM.line(Loc.file(), Loc.line(), Found);
  if (!Found)
    return {};

  std::string Num = std::to_string(Loc.line());
  std::string Gutter(Num.size() < 5 ? 5 - Num.size() : 0, ' ');

  std::string Out;
  Out += Indent;
  Out += Gutter + Num + " | ";
  // Tabs become single spaces so the caret column below stays aligned.
  for (char C : Line)
    Out += C == '\t' ? ' ' : C;
  Out += '\n';

  size_t CaretCol = Loc.column() == 0 ? 0 : Loc.column() - 1;
  if (CaretCol > Line.size())
    CaretCol = Line.size();
  Out += Indent;
  Out += std::string(Gutter.size() + Num.size(), ' ') + " | ";
  Out += std::string(CaretCol, ' ');
  Out += "^\n";
  return Out;
}

std::string rs::diag::renderDiagnosticText(const Diagnostic &D,
                                           const SourceManager *SM) {
  std::string Out = D.toString();
  Out += '\n';
  if (SM)
    Out += renderSnippet(*SM, D.Loc, "  ");
  for (const Span &S : D.Secondary) {
    Out += "  note: " + S.Label;
    if (!S.Function.empty() && S.Function != D.Function)
      Out += " [in " + S.Function + "]";
    if (S.Loc.isValid())
      Out += " (" + S.Loc.toString() + ")";
    Out += '\n';
    if (SM)
      Out += renderSnippet(*SM, S.Loc, "  ");
  }
  for (const std::string &N : D.Notes)
    Out += "  note: " + N + "\n";
  for (const FixIt &F : D.Fixes) {
    Out += "  fix: " + F.Description;
    if (F.Loc.isValid())
      Out += " (" + F.Loc.toString() + ")";
    Out += '\n';
    Out += "    replace line with: " + F.Replacement + "\n";
  }
  return Out;
}

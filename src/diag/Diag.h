//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified structured-diagnostics core. Every producer in the system —
/// the eleven bug detectors, the MIR parser and verifier, and the analysis
/// engine's degradation machinery — emits diag::Diagnostic values, and every
/// output format (text with source snippets, JSON, SARIF 2.1.0) renders from
/// the same list. A diagnostic carries a stable rule ID from Rules.def, a
/// severity, a primary span plus ordered labeled secondary spans ("value
/// dropped here", "first lock acquired here"), free-form notes, optional
/// machine-applicable fix-its, and a stable fingerprint used for
/// deduplication and --baseline diffing.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_DIAG_H
#define RUSTSIGHT_DIAG_DIAG_H

#include "mir/Mir.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rs {
class JsonWriter;
} // namespace rs

namespace rs::diag {

/// How severe a diagnostic is. Orders by decreasing severity so severity
/// comparisons read naturally (Error < Warning means "more severe").
enum class Severity {
  Error,   ///< A bug finding or a hard pipeline failure.
  Warning, ///< Suspicious but not certainly wrong, or lost coverage.
  Note,    ///< Informational: reduced precision, context.
};

/// Every rule RustSight can emit, generated from Rules.def. The bug rules
/// come first, in the historical BugKind order (their enumerator values are
/// the deterministic sort key for findings); infrastructure rules follow.
enum class RuleId {
#define DIAG_RULE(EnumName, Id, Name, Detector, Sev, Summary, Help) EnumName,
#include "diag/Rules.def"
};

/// Static metadata for one rule, shared by the name tables, the SARIF rule
/// array, and the suppression parser.
struct RuleInfo {
  RuleId Rule;
  const char *StringId;  ///< Stable ID: "RS-UAF-001". Spelled in SARIF,
                         ///< suppression comments, and baselines.
  const char *Name;      ///< Short kind name: "use-after-free".
  const char *Detector;  ///< Battery detector that produces it ("" = none).
  Severity DefaultSeverity;
  const char *Summary;   ///< One-sentence description (SARIF shortDescription).
  const char *Help;      ///< Paper anchor / remediation (SARIF fullDescription).
};

/// Total number of rules, and the index of the first non-bug rule.
size_t numRules();
size_t numBugRules();

/// Metadata lookup; valid for every RuleId.
const RuleInfo &ruleInfo(RuleId R);

/// "RS-UAF-001" spelling of \p R.
const char *ruleStringId(RuleId R);

/// "use-after-free" spelling of \p R.
const char *ruleName(RuleId R);

/// "error" / "warning" / "note".
const char *severityName(Severity S);

/// True for the detector bug kinds (paper Sections 5-7); false for
/// pipeline/infrastructure rules.
bool isBugRule(RuleId R);

/// Looks a rule up by its stable string ID ("RS-UAF-001") or, failing that,
/// by its short name ("use-after-free"). Accepts any rule. Returns false
/// when nothing matches.
bool ruleFromString(std::string_view Spelling, RuleId &Out);

/// Looks a *bug* rule up by short name only — the historical
/// bugKindFromName contract, used by the result cache to reject payloads
/// from a different detector set and by eval manifests.
bool bugRuleFromName(std::string_view Name, RuleId &Out);

/// A labeled secondary program point: "value dropped here", "first lock
/// acquired here". Function is the enclosing function when the span lives
/// in a different function than the diagnostic (lock-order counterparts);
/// empty otherwise.
struct Span {
  SourceLocation Loc;
  std::string Label;
  std::string Function;

  friend bool operator==(const Span &A, const Span &B) {
    return A.Loc == B.Loc && A.Label == B.Label && A.Function == B.Function;
  }
};

/// A machine-applicable replacement: swap the full source line at Loc for
/// Replacement. Line-granular because MIR statements are line-oriented;
/// tools/IDEs can apply it textually without reparsing.
struct FixIt {
  SourceLocation Loc;
  std::string Replacement;
  std::string Description;
};

/// One structured diagnostic: a finding from a detector, a parser or
/// verifier error, or an engine status note.
struct Diagnostic {
  Diagnostic() = default;
  /// Seeds Kind and the severity from the rule table.
  explicit Diagnostic(RuleId Rule)
      : Kind(Rule), Sev(ruleInfo(Rule).DefaultSeverity) {}

  RuleId Kind = RuleId::UseAfterFree;
  Severity Sev = Severity::Error;
  /// Enclosing function; empty for file-level diagnostics (parse errors,
  /// engine statuses).
  std::string Function;
  mir::BlockId Block = 0;
  /// Statement index within the block; Statements.size() means the
  /// terminator. Zero for file-level diagnostics.
  size_t StmtIndex = 0;
  std::string Message;
  /// Primary span.
  SourceLocation Loc;
  /// Ordered labeled secondary spans (producers emit them sorted by
  /// program point so output is deterministic).
  std::vector<Span> Secondary;
  /// Free-form notes rendered after the spans.
  std::vector<std::string> Notes;
  /// Machine-applicable fixes.
  std::vector<FixIt> Fixes;

  /// Renders the historical one-line form
  /// "function:bbN[i]: kind: message (loc)"; file-level diagnostics render
  /// "loc: severity: kind: message" instead.
  std::string toString() const;

  /// Stable identity for dedup and baselines: FNV-1a over the rule string
  /// ID, the basename of the primary span's file, the function, block and
  /// statement indices, and the message. Deliberately excludes line/column
  /// (so unrelated edits above a finding don't churn baselines) and the
  /// directory (so baselines survive path re-anchoring).
  uint64_t fingerprint() const;

  /// fingerprint() in the 16-digit hex spelling used by baseline files and
  /// SARIF partialFingerprints.
  std::string fingerprintHex() const;
};

/// Deterministic ordering used everywhere a diagnostic list is rendered:
/// (Function, Block, StmtIndex, Kind, Message).
bool diagnosticLess(const Diagnostic &A, const Diagnostic &B);

/// Writes one diagnostic as a JSON object — the single schema every JSON
/// surface shares (DiagnosticEngine::renderJson, the engine's CorpusReport,
/// the result-cache payload).
void writeDiagnosticJson(JsonWriter &W, const Diagnostic &D);

/// Collects diagnostics across producers and renders them deterministically.
/// Sorting is explicit: call sort() once after the last report(); the
/// accessors are const and never mutate.
class DiagnosticEngine {
public:
  void report(Diagnostic D);

  /// Sorts by (function, block, statement, kind, message) and drops exact
  /// duplicates (detectors may flag the same point twice through different
  /// paths). Idempotent.
  void sort();

  /// True once sort() has run and no report() followed it.
  bool isSorted() const { return Sorted; }

  /// The collected diagnostics, in report order until sort() is called.
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Moves the (sorted) diagnostics out, leaving the engine empty.
  std::vector<Diagnostic> take();

  size_t count() const { return Diags.size(); }
  size_t countOfKind(RuleId K) const;

  /// One toString() line per diagnostic. Call sort() first for
  /// deterministic output.
  std::string renderText() const;

  /// A JSON array of diagnostic objects. Call sort() first for
  /// deterministic output.
  std::string renderJson() const;

private:
  std::vector<Diagnostic> Diags;
  bool Sorted = true;
};

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_DIAG_H

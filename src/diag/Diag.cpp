#include "diag/Diag.h"

#include "support/Hash.h"
#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace rs;
using namespace rs::diag;

//===----------------------------------------------------------------------===//
// Rule table
//===----------------------------------------------------------------------===//

namespace {

constexpr RuleInfo RuleTable[] = {
#define DIAG_RULE(EnumName, Id, Name, Detector, Sev, Summary, Help)           \
  {RuleId::EnumName, Id, Name, Detector, Severity::Sev, Summary, Help},
#include "diag/Rules.def"
};

constexpr size_t NumRulesTotal = sizeof(RuleTable) / sizeof(RuleTable[0]);

constexpr size_t NumBugRulesTotal = [] {
  size_t N = 0;
#define DIAG_BUG_RULE(EnumName, Id, Name, Detector, Sev, Summary, Help) ++N;
#define DIAG_INFRA_RULE(EnumName, Id, Name, Detector, Sev, Summary, Help)
#include "diag/Rules.def"
  return N;
}();

static_assert(NumBugRulesTotal == 11,
              "the paper's taxonomy defines 11 detector bug kinds; update "
              "the detectors and this assert together");

} // namespace

size_t rs::diag::numRules() { return NumRulesTotal; }
size_t rs::diag::numBugRules() { return NumBugRulesTotal; }

const RuleInfo &rs::diag::ruleInfo(RuleId R) {
  size_t Index = static_cast<size_t>(R);
  assert(Index < NumRulesTotal && "RuleId outside Rules.def");
  return RuleTable[Index];
}

const char *rs::diag::ruleStringId(RuleId R) { return ruleInfo(R).StringId; }

const char *rs::diag::ruleName(RuleId R) { return ruleInfo(R).Name; }

const char *rs::diag::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "error";
}

bool rs::diag::isBugRule(RuleId R) {
  return static_cast<size_t>(R) < NumBugRulesTotal;
}

bool rs::diag::ruleFromString(std::string_view Spelling, RuleId &Out) {
  for (const RuleInfo &I : RuleTable)
    if (Spelling == I.StringId || Spelling == I.Name) {
      Out = I.Rule;
      return true;
    }
  return false;
}

bool rs::diag::bugRuleFromName(std::string_view Name, RuleId &Out) {
  for (size_t I = 0; I != NumBugRulesTotal; ++I)
    if (Name == RuleTable[I].Name) {
      Out = RuleTable[I].Rule;
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Diagnostic
//===----------------------------------------------------------------------===//

std::string Diagnostic::toString() const {
  if (Function.empty()) {
    // File-level diagnostic (parse error, engine status).
    std::string Out;
    if (Loc.isValid())
      Out = Loc.toString() + ": ";
    Out += std::string(severityName(Sev)) + ": " + ruleName(Kind) + ": " +
           Message;
    return Out;
  }
  std::string Out = Function + ":bb" + std::to_string(Block) + "[" +
                    std::to_string(StmtIndex) + "]: " + ruleName(Kind) +
                    ": " + Message;
  if (Loc.isValid())
    Out += " (" + Loc.toString() + ")";
  return Out;
}

namespace {

std::string_view baseName(std::string_view Path) {
  size_t Slash = Path.find_last_of("/\\");
  return Slash == std::string_view::npos ? Path : Path.substr(Slash + 1);
}

} // namespace

uint64_t Diagnostic::fingerprint() const {
  uint64_t H = fnv1a64(ruleStringId(Kind));
  H = fnv1a64("\x1f", H);
  H = fnv1a64(baseName(Loc.file()), H);
  H = fnv1a64("\x1f", H);
  H = fnv1a64(Function, H);
  H = fnv1a64U64(Block, H);
  H = fnv1a64U64(StmtIndex, H);
  H = fnv1a64(Message, H);
  return H;
}

std::string Diagnostic::fingerprintHex() const {
  return hashToHex(fingerprint());
}

bool rs::diag::diagnosticLess(const Diagnostic &A, const Diagnostic &B) {
  return std::tie(A.Function, A.Block, A.StmtIndex, A.Kind, A.Message) <
         std::tie(B.Function, B.Block, B.StmtIndex, B.Kind, B.Message);
}

//===----------------------------------------------------------------------===//
// DiagnosticEngine
//===----------------------------------------------------------------------===//

void DiagnosticEngine::report(Diagnostic D) {
  Diags.push_back(std::move(D));
  Sorted = false;
}

void DiagnosticEngine::sort() {
  if (Sorted)
    return;
  std::sort(Diags.begin(), Diags.end(), diagnosticLess);
  // Detectors may flag the same point twice through different paths; the
  // first copy wins (producers emit secondary spans deterministically, so
  // duplicates carry identical payloads).
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [](const Diagnostic &A, const Diagnostic &B) {
                            return A.Function == B.Function &&
                                   A.Block == B.Block &&
                                   A.StmtIndex == B.StmtIndex &&
                                   A.Kind == B.Kind && A.Message == B.Message;
                          }),
              Diags.end());
  Sorted = true;
}

std::vector<Diagnostic> DiagnosticEngine::take() {
  sort();
  std::vector<Diagnostic> Out = std::move(Diags);
  Diags.clear();
  Sorted = true;
  return Out;
}

size_t DiagnosticEngine::countOfKind(RuleId K) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Kind == K)
      ++N;
  return N;
}

std::string DiagnosticEngine::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticEngine::renderJson() const {
  JsonWriter W;
  W.beginArray();
  for (const Diagnostic &D : Diags)
    writeDiagnosticJson(W, D);
  W.endArray();
  return W.str();
}

//===----------------------------------------------------------------------===//
// Shared JSON shape (schema v2)
//===----------------------------------------------------------------------===//

void rs::diag::writeDiagnosticJson(JsonWriter &W, const Diagnostic &D) {
  W.beginObject();
  W.field("rule", ruleStringId(D.Kind));
  W.field("kind", ruleName(D.Kind));
  W.field("severity", severityName(D.Sev));
  if (!D.Function.empty()) {
    W.field("function", D.Function);
    W.field("block", static_cast<int64_t>(D.Block));
    W.field("statement", static_cast<int64_t>(D.StmtIndex));
  }
  W.field("message", D.Message);
  if (D.Loc.isValid())
    W.field("location", D.Loc.toString());
  W.field("fingerprint", D.fingerprintHex());
  if (!D.Secondary.empty()) {
    W.key("secondary");
    W.beginArray();
    for (const Span &S : D.Secondary) {
      W.beginObject();
      if (S.Loc.isValid())
        W.field("location", S.Loc.toString());
      if (!S.Function.empty())
        W.field("function", S.Function);
      W.field("label", S.Label);
      W.endObject();
    }
    W.endArray();
  }
  if (!D.Notes.empty()) {
    W.key("notes");
    W.beginArray();
    for (const std::string &N : D.Notes)
      W.value(N);
    W.endArray();
  }
  if (!D.Fixes.empty()) {
    W.key("fixes");
    W.beginArray();
    for (const FixIt &F : D.Fixes) {
      W.beginObject();
      if (F.Loc.isValid())
        W.field("location", F.Loc.toString());
      W.field("replacement", F.Replacement);
      W.field("description", F.Description);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
}

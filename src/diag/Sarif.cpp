#include "diag/Sarif.h"

#include "support/Json.h"

#include <cassert>

using namespace rs;
using namespace rs::diag;

const char *rs::diag::sarifLevel(Severity S) {
  // SARIF spells the three levels exactly like severityName does.
  return severityName(S);
}

struct SarifWriter::Impl {
  JsonWriter W;
  bool Finished = false;
};

namespace {

void writeRegion(JsonWriter &W, const SourceLocation &Loc) {
  if (!Loc.isValid())
    return;
  W.key("region");
  W.beginObject();
  W.field("startLine", static_cast<int64_t>(Loc.line()));
  if (Loc.column() != 0)
    W.field("startColumn", static_cast<int64_t>(Loc.column()));
  W.endObject();
}

void writePhysicalLocation(JsonWriter &W, const SourceLocation &Loc,
                           const std::string &FallbackPath) {
  W.key("physicalLocation");
  W.beginObject();
  W.key("artifactLocation");
  W.beginObject();
  W.field("uri", Loc.isValid() && !Loc.file().empty() ? Loc.file()
                                                      : FallbackPath);
  W.endObject();
  writeRegion(W, Loc);
  W.endObject();
}

} // namespace

SarifWriter::SarifWriter() : I(new Impl) {
  JsonWriter &W = I->W;
  W.beginObject();
  W.field("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  W.field("version", "2.1.0");
  W.key("runs");
  W.beginArray();
  W.beginObject();
  W.key("tool");
  W.beginObject();
  W.key("driver");
  W.beginObject();
  W.field("name", "rustsight");
  W.field("semanticVersion", "0.5.0");
  W.key("rules");
  W.beginArray();
  for (size_t Index = 0; Index != numRules(); ++Index) {
    const RuleInfo &R = ruleInfo(static_cast<RuleId>(Index));
    W.beginObject();
    W.field("id", R.StringId);
    W.field("name", R.Name);
    W.key("shortDescription");
    W.beginObject();
    W.field("text", R.Summary);
    W.endObject();
    W.key("fullDescription");
    W.beginObject();
    W.field("text", R.Help);
    W.endObject();
    W.key("defaultConfiguration");
    W.beginObject();
    W.field("level", sarifLevel(R.DefaultSeverity));
    W.endObject();
    W.key("properties");
    W.beginObject();
    W.key("tags");
    W.beginArray();
    W.value(isBugRule(R.Rule) ? "bug" : "pipeline");
    if (R.Detector[0] != '\0')
      W.value(R.Detector);
    W.endArray();
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.endObject();
  W.key("columnKind");
  W.value("utf16CodeUnits");
  W.key("results");
  W.beginArray();
}

SarifWriter::~SarifWriter() { delete I; }

void SarifWriter::addResult(const Diagnostic &D,
                            const std::string &ArtifactPath) {
  assert(!I->Finished && "addResult after finish");
  JsonWriter &W = I->W;
  W.beginObject();
  W.field("ruleId", ruleStringId(D.Kind));
  W.field("ruleIndex", static_cast<int64_t>(D.Kind));
  W.field("level", sarifLevel(D.Sev));
  W.key("message");
  W.beginObject();
  W.field("text", D.Message);
  W.endObject();
  W.key("locations");
  W.beginArray();
  W.beginObject();
  writePhysicalLocation(W, D.Loc, ArtifactPath);
  if (!D.Function.empty()) {
    W.key("logicalLocations");
    W.beginArray();
    W.beginObject();
    W.field("name", D.Function);
    W.field("kind", "function");
    W.endObject();
    W.endArray();
  }
  W.endObject();
  W.endArray();
  if (!D.Secondary.empty()) {
    W.key("relatedLocations");
    W.beginArray();
    for (const Span &S : D.Secondary) {
      W.beginObject();
      writePhysicalLocation(W, S.Loc, ArtifactPath);
      W.key("message");
      W.beginObject();
      W.field("text", S.Label);
      W.endObject();
      if (!S.Function.empty()) {
        W.key("logicalLocations");
        W.beginArray();
        W.beginObject();
        W.field("name", S.Function);
        W.field("kind", "function");
        W.endObject();
        W.endArray();
      }
      W.endObject();
    }
    W.endArray();
  }
  if (!D.Fixes.empty()) {
    W.key("fixes");
    W.beginArray();
    for (const FixIt &F : D.Fixes) {
      W.beginObject();
      W.key("description");
      W.beginObject();
      W.field("text", F.Description);
      W.endObject();
      W.key("artifactChanges");
      W.beginArray();
      W.beginObject();
      W.key("artifactLocation");
      W.beginObject();
      W.field("uri", F.Loc.isValid() && !F.Loc.file().empty()
                         ? F.Loc.file()
                         : ArtifactPath);
      W.endObject();
      W.key("replacements");
      W.beginArray();
      W.beginObject();
      // Line-granular replacement: swap the whole line (including its
      // newline) for the replacement text.
      W.key("deletedRegion");
      W.beginObject();
      W.field("startLine", static_cast<int64_t>(F.Loc.line()));
      W.field("startColumn", static_cast<int64_t>(1));
      W.field("endLine", static_cast<int64_t>(F.Loc.line() + 1));
      W.field("endColumn", static_cast<int64_t>(1));
      W.endObject();
      W.key("insertedContent");
      W.beginObject();
      W.field("text", F.Replacement.empty() ? std::string()
                                            : F.Replacement + "\n");
      W.endObject();
      W.endObject();
      W.endArray();
      W.endObject();
      W.endArray();
      W.endObject();
    }
    W.endArray();
  }
  W.key("partialFingerprints");
  W.beginObject();
  W.field("rustsightFingerprint/v1", D.fingerprintHex());
  W.endObject();
  W.endObject();
}

std::string SarifWriter::finish() {
  assert(!I->Finished && "finish called twice");
  I->Finished = true;
  JsonWriter &W = I->W;
  W.endArray(); // results
  W.endObject(); // run
  W.endArray(); // runs
  W.endObject(); // document
  return W.str();
}

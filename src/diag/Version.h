//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the tool's identity: version string,
/// report schema version, and the derived one-line banner. `rustsight
/// --version`, the serve daemon's JSON-RPC `initialize` serverInfo, and the
/// engine's cache/wire schema salt all read from here, so the spellings
/// cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_VERSION_H
#define RUSTSIGHT_DIAG_VERSION_H

#include <cstdint>
#include <string>

namespace rs::version {

/// The tool name as spelled in --version output, SARIF tool.driver, and
/// LSP serverInfo.
inline constexpr const char *ToolName = "rustsight";

/// The tool version. Bump on releases.
inline constexpr const char *ToolVersion = "0.7.0";

/// The FileReport serialization schema version shared by the result cache,
/// the worker wire protocol, and the checkpoint journal. Bump when
/// serializeFileReport's shape changes: the version feeds the cache salt,
/// so old entries stop matching instead of misparsing.
/// v2: structured-diagnostics core — findings carry rule IDs, severities,
/// secondary spans, notes and fix-its; suppression notices and the
/// suppressed-finding count ride along.
/// v3: arena/SoA MIR storage + interned symbols landed alongside the
/// binary snapshot layer; reports are shape-compatible with v2 but the
/// bump retires every pre-SoA disk entry as a clean miss (cold, not
/// corrupt) rather than trusting payloads produced by the old layout.
/// v4: whole-program link step — secondary spans and fix-its may carry an
/// explicit "file" when they point into a counterpart file instead of
/// re-anchoring to the report's own path (docs/WHOLEPROGRAM.md).
inline constexpr uint64_t ReportSchemaVersion = 4;

/// Total rule-catalog size (diag::numRules(), re-exported here so version
/// consumers need only this header).
uint64_t ruleCount();

/// "rustsight 0.7.0 (report schema v2, N rules)" with the live rule count.
std::string versionLine();

} // namespace rs::version

#endif // RUSTSIGHT_DIAG_VERSION_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finding baselines for CI: a baseline file records the fingerprints of
/// every accepted finding; `rustsight check --baseline f.json` drops the
/// matching findings from the report so only *new* findings fail the build,
/// and `--write-baseline f.json` (re)records the current state. Format:
///   {"version":1,"fingerprints":["16-hex", ...]}   (sorted, deduplicated)
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_BASELINE_H
#define RUSTSIGHT_DIAG_BASELINE_H

#include <set>
#include <string>
#include <string_view>

namespace rs::diag {

class Baseline {
public:
  /// Current on-disk format version.
  static constexpr int64_t FormatVersion = 1;

  void add(std::string FingerprintHex) {
    Fingerprints.insert(std::move(FingerprintHex));
  }
  bool contains(const std::string &FingerprintHex) const {
    return Fingerprints.count(FingerprintHex) != 0;
  }
  size_t size() const { return Fingerprints.size(); }

  /// Renders the sorted JSON document.
  std::string renderJson() const;

  /// Parses a baseline document. False (with \p Err set) on malformed JSON,
  /// wrong version, or non-fingerprint entries.
  static bool parse(std::string_view Text, Baseline &Out, std::string &Err);

  /// File convenience wrappers around parse()/renderJson().
  static bool loadFile(const std::string &Path, Baseline &Out,
                       std::string &Err);
  bool writeFile(const std::string &Path, std::string &Err) const;

private:
  std::set<std::string> Fingerprints;
};

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_BASELINE_H

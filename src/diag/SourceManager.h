//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps file names to source buffers so the text renderer can show
/// caret/underline code snippets under diagnostics. Buffers are either
/// registered in-memory (analyzeSource, tests) or lazily loaded from disk
/// the first time a snippet for that file is requested; an unreadable file
/// simply yields no snippet — rendering never fails.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_SOURCEMANAGER_H
#define RUSTSIGHT_DIAG_SOURCEMANAGER_H

#include <map>
#include <string>
#include <string_view>

namespace rs::diag {

class SourceManager {
public:
  /// Registers an in-memory buffer for \p Name, replacing any previous one.
  void addBuffer(std::string Name, std::string Content);

  /// Drops the entry for \p Name — a registered overlay buffer or a cached
  /// disk probe (successful or failed) — so the next request re-probes the
  /// filesystem. The serve daemon calls this on didClose to fall back from
  /// the virtual document to the on-disk file.
  void removeBuffer(const std::string &Name);

  /// True when an entry (in-memory or loaded from disk) is resident for
  /// \p Name. Never touches the filesystem.
  bool hasBuffer(const std::string &Name) const;

  /// The buffer registered or loaded for \p Name, or nullptr. The first
  /// call for an unknown name tries the filesystem once; failures are
  /// remembered so a missing file is probed only once.
  const std::string *buffer(const std::string &Name) const;

  /// 1-based line \p LineNo of \p Name without its trailing newline, or
  /// nullopt-like empty view with Found=false when the file or line is
  /// unavailable.
  std::string_view line(const std::string &Name, unsigned LineNo,
                        bool &Found) const;

private:
  /// Name -> content; an entry with Loaded=false marks a failed disk probe.
  struct Entry {
    std::string Content;
    bool Loaded = false;
  };
  mutable std::map<std::string, Entry, std::less<>> Buffers;
};

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_SOURCEMANAGER_H

#include "diag/Version.h"

#include "diag/Diag.h"

using namespace rs;

uint64_t rs::version::ruleCount() { return diag::numRules(); }

std::string rs::version::versionLine() {
  return std::string(ToolName) + " " + ToolVersion + " (report schema v" +
         std::to_string(ReportSchemaVersion) + ", " +
         std::to_string(ruleCount()) + " rules)";
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rich text rendering for diagnostics: the historical one-line header,
/// followed by caret-annotated source snippets for the primary span, each
/// labeled secondary span ("value dropped here"), free-form notes, and
/// machine-applicable fix-its. Pass a SourceManager to get snippets; pass
/// nullptr to fall back to location-only lines (buffers unavailable).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_RENDER_H
#define RUSTSIGHT_DIAG_RENDER_H

#include "diag/Diag.h"

#include <string>

namespace rs::diag {

class SourceManager;

/// Renders one diagnostic, multi-line, snippet-annotated. The first line is
/// exactly Diagnostic::toString() so line-oriented consumers keep working.
std::string renderDiagnosticText(const Diagnostic &D, const SourceManager *SM);

/// Renders "   35 |     drop(a);" + a caret line pointing at \p Loc, or ""
/// when the buffer or line is unavailable. \p Indent prefixes every emitted
/// line.
std::string renderSnippet(const SourceManager &SM, const SourceLocation &Loc,
                          std::string_view Indent);

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_RENDER_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SARIF 2.1.0 output. One run, with the full Rules.def catalog in
/// tool.driver.rules (ruleIndex == RuleId enumerator value) so consumers
/// get the paper's bug taxonomy as first-class rule metadata, and one
/// result per diagnostic with level, message, physical + logical locations,
/// relatedLocations for the labeled secondary spans, partialFingerprints
/// for baselining services, and machine-applicable fixes.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_DIAG_SARIF_H
#define RUSTSIGHT_DIAG_SARIF_H

#include "diag/Diag.h"

#include <string>

namespace rs::diag {

/// Streams one SARIF log: construct, addResult() for every diagnostic (in
/// the deterministic report order), then finish() exactly once.
class SarifWriter {
public:
  SarifWriter();
  SarifWriter(const SarifWriter &) = delete;
  SarifWriter &operator=(const SarifWriter &) = delete;
  ~SarifWriter();

  /// Appends one result. \p ArtifactPath names the analyzed file and is
  /// used whenever a span has no file of its own.
  void addResult(const Diagnostic &D, const std::string &ArtifactPath);

  /// Closes the document and returns the full SARIF text.
  std::string finish();

private:
  struct Impl;
  Impl *I;
};

/// SARIF level string for a severity ("error"/"warning"/"note").
const char *sarifLevel(Severity S);

} // namespace rs::diag

#endif // RUSTSIGHT_DIAG_SARIF_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LSP base-protocol framing: every message on the wire is
///
///   Content-Length: <bytes>\r\n
///   [other headers, ignored]\r\n
///   \r\n
///   <payload of exactly that many bytes>
///
/// The FrameReader is a pure incremental state machine over fed byte
/// chunks, so the same code path serves the stdio event loop and the tests
/// that slice frames at every hostile boundary: byte-at-a-time splits,
/// several frames coalesced into one chunk, oversized headers, absent or
/// unparseable Content-Length, and payloads that never finish arriving.
/// A malformed header degrades to one RecoverableError (the server answers
/// with a JSON-RPC error) and the reader resynchronizes at the next header
/// terminator — framing damage never crashes or wedges the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SERVE_TRANSPORT_H
#define RUSTSIGHT_SERVE_TRANSPORT_H

#include <cstddef>
#include <string>
#include <string_view>

namespace rs::serve {

/// Wraps \p Payload in a Content-Length frame.
std::string frameMessage(std::string_view Payload);

/// Incremental frame extractor. Feed arbitrary byte chunks; pull complete
/// payloads.
class FrameReader {
public:
  struct Limits {
    /// A header block (everything before "\r\n\r\n") larger than this is a
    /// framing error — a client that lost sync, not a real message.
    size_t MaxHeaderBytes = 16 * 1024;
    /// Upper bound on one message body; larger declarations are errors so
    /// a corrupt length can never make the daemon buffer without bound.
    size_t MaxContentLength = 64u * 1024 * 1024;
  };

  enum class Status {
    NeedMore, ///< No complete frame buffered; feed more bytes.
    Frame,    ///< One payload extracted.
    Error,    ///< Malformed framing; the error text says why. The reader
              ///< has already resynchronized — keep feeding and pulling.
  };

  FrameReader() = default;
  explicit FrameReader(Limits L) : Lim(L) {}

  /// Appends raw bytes from the wire.
  void feed(std::string_view Bytes) { Buf.append(Bytes); }

  /// Extracts the next complete frame payload into \p Payload, or reports
  /// why it cannot. Call in a loop until NeedMore: one chunk may carry any
  /// number of frames.
  Status next(std::string &Payload, std::string &Error);

  /// True when no partial frame is pending (a clean point to shut down).
  bool idle() const { return Buf.empty(); }

  /// Bytes currently buffered (tests size split/coalesce behavior with it).
  size_t buffered() const { return Buf.size(); }

private:
  Limits Lim;
  std::string Buf;
};

} // namespace rs::serve

#endif // RUSTSIGHT_SERVE_TRANSPORT_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overlay document store: didOpen/didChange/didClose virtual buffers
/// layered over the on-disk corpus, version-stamped per the LSP text
/// synchronization contract. Everything downstream (the analysis session,
/// the snippet renderer) addresses documents by normalized filesystem path;
/// the URI <-> path conversion lives here so "file:///a/b%20c.mir" and
/// "/a/b c.mir" can never drift into two identities for one document.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SERVE_DOCUMENTSTORE_H
#define RUSTSIGHT_SERVE_DOCUMENTSTORE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace rs::serve {

/// "file:///abs/path%20x" -> "/abs/path x". Non-file URIs (untitled:,
/// custom schemes) pass through verbatim so they still work as in-memory
/// document names. Percent-escapes are decoded; a lone or malformed escape
/// is kept literally rather than rejected.
std::string uriToPath(std::string_view Uri);

/// "/abs/path x" -> "file:///abs/path%20x". Paths that are not absolute
/// (or already look like URIs) pass through verbatim — the inverse keeps
/// uriToPath(pathToUri(P)) == P for every path the daemon handles.
std::string pathToUri(const std::string &Path);

/// Version-stamped virtual buffers keyed by normalized path.
class DocumentStore {
public:
  struct Document {
    std::string Text;
    int64_t Version = 0;
  };

  /// didOpen: installs (or replaces) the overlay for \p Path.
  void open(const std::string &Path, int64_t Version, std::string Text);

  /// didChange (full sync): replaces the overlay text. Returns false when
  /// the document is not open — the caller surfaces that as a protocol
  /// error instead of silently creating state.
  bool change(const std::string &Path, int64_t Version, std::string Text);

  /// didClose: drops the overlay; reads fall back to disk. Returns false
  /// when the document was not open.
  bool close(const std::string &Path);

  bool isOpen(const std::string &Path) const;

  /// The overlay version, or -1 when not open.
  int64_t version(const std::string &Path) const;

  /// The effective content of \p Path: the overlay when open, otherwise
  /// the on-disk bytes; nullopt when neither exists.
  std::optional<std::string> content(const std::string &Path) const;

  /// All open overlays, path-sorted (the map order).
  const std::map<std::string, Document> &overlays() const { return Docs; }

private:
  std::map<std::string, Document> Docs;
};

} // namespace rs::serve

#endif // RUSTSIGHT_SERVE_DOCUMENTSTORE_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON-RPC 2.0 message model over the in-tree JsonValue parser. Parsing is
/// total: any byte sequence maps to either a well-formed RpcMessage or a
/// structured RpcError the server turns into an error response — malformed
/// JSON (including MaxParseDepth nesting bombs from a hostile client) and
/// shape violations are protocol errors, never crashes. Ids round-trip
/// integer, string, and null spellings exactly, as the spec requires.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SERVE_PROTOCOL_H
#define RUSTSIGHT_SERVE_PROTOCOL_H

#include "support/Json.h"

#include <optional>
#include <string>
#include <string_view>

namespace rs::serve {

/// Standard JSON-RPC 2.0 error codes, plus the LSP extensions the server
/// speaks.
enum RpcErrorCode : int {
  ParseError = -32700,
  InvalidRequest = -32600,
  MethodNotFound = -32601,
  InvalidParams = -32602,
  ServerNotInitialized = -32002, // LSP: request before initialize.
  RequestCancelled = -32800,     // LSP: $/cancelRequest hit a queued request.
};

/// A request/notification id: integer, string, or absent (notification).
/// JSON-RPC also allows null ids; those parse as Null and echo back as
/// null (the spelling error responses to unparseable requests use).
struct RpcId {
  enum class Kind { None, Int, Str, Null };
  Kind K = Kind::None;
  int64_t Int = 0;
  std::string Str;

  static RpcId integer(int64_t V) {
    RpcId Id;
    Id.K = Kind::Int;
    Id.Int = V;
    return Id;
  }
  static RpcId string(std::string V) {
    RpcId Id;
    Id.K = Kind::Str;
    Id.Str = std::move(V);
    return Id;
  }
  static RpcId null() {
    RpcId Id;
    Id.K = Kind::Null;
    return Id;
  }

  bool present() const { return K == Kind::Int || K == Kind::Str; }

  /// The id as a JSON fragment ("7", "\"seq-7\"", "null").
  std::string toJson() const;

  friend bool operator==(const RpcId &A, const RpcId &B) {
    return A.K == B.K && A.Int == B.Int && A.Str == B.Str;
  }
};

/// One parsed inbound message. Requests carry a present Id; notifications
/// carry none.
struct RpcMessage {
  RpcId Id;
  std::string Method;
  JsonValue Params; ///< Null when absent.

  bool isRequest() const { return Id.present(); }
};

/// Why a payload failed to parse as a JSON-RPC message.
struct RpcParseFailure {
  int Code = ParseError;
  std::string Message;
  RpcId Id; ///< Echoed when the broken request still had a readable id.
};

/// Parses one JSON-RPC 2.0 payload. On failure returns nullopt and fills
/// \p Failure with the error-response ingredients.
std::optional<RpcMessage> parseRpcMessage(std::string_view Payload,
                                          RpcParseFailure &Failure);

/// {"jsonrpc":"2.0","id":<id>,"result":<ResultJson>} — \p ResultJson must
/// be a complete JSON fragment ("null", an object, ...).
std::string makeResponse(const RpcId &Id, std::string_view ResultJson);

/// {"jsonrpc":"2.0","id":<id>,"error":{"code":...,"message":...}}.
std::string makeErrorResponse(const RpcId &Id, int Code,
                              std::string_view Message);

/// {"jsonrpc":"2.0","method":...,"params":<ParamsJson>}.
std::string makeNotification(std::string_view Method,
                             std::string_view ParamsJson);

} // namespace rs::serve

#endif // RUSTSIGHT_SERVE_PROTOCOL_H

#include "serve/Protocol.h"

using namespace rs;
using namespace rs::serve;

std::string RpcId::toJson() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Str: {
    JsonWriter W;
    W.value(Str);
    return W.str();
  }
  case Kind::None:
  case Kind::Null:
    return "null";
  }
  return "null";
}

/// Reads an id member into \p Out; false for types the spec forbids
/// (objects, arrays, booleans, fractional numbers).
static bool readId(const JsonValue &V, RpcId &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Int:
    Out = RpcId::integer(V.asInt());
    return true;
  case JsonValue::Kind::String:
    Out = RpcId::string(V.asString());
    return true;
  case JsonValue::Kind::Null:
    Out = RpcId::null();
    return true;
  default:
    return false;
  }
}

std::optional<RpcMessage>
rs::serve::parseRpcMessage(std::string_view Payload, RpcParseFailure &F) {
  F = RpcParseFailure();
  std::optional<JsonValue> Doc = JsonValue::parse(Payload);
  if (!Doc) {
    F.Code = ParseError;
    F.Message = "payload is not valid JSON";
    F.Id = RpcId::null();
    return std::nullopt;
  }
  if (!Doc->isObject()) {
    F.Code = InvalidRequest;
    F.Message = "message must be a JSON object";
    F.Id = RpcId::null();
    return std::nullopt;
  }

  RpcMessage M;
  if (const JsonValue *Id = Doc->get("id")) {
    if (!readId(*Id, M.Id)) {
      F.Code = InvalidRequest;
      F.Message = "id must be an integer, string, or null";
      F.Id = RpcId::null();
      return std::nullopt;
    }
  }

  if (Doc->getString("jsonrpc") != "2.0") {
    F.Code = InvalidRequest;
    F.Message = "missing or wrong jsonrpc version (want \"2.0\")";
    F.Id = M.Id.present() ? M.Id : RpcId::null();
    return std::nullopt;
  }
  const JsonValue *Method = Doc->get("method");
  if (!Method || !Method->isString() || Method->asString().empty()) {
    F.Code = InvalidRequest;
    F.Message = "missing method";
    F.Id = M.Id.present() ? M.Id : RpcId::null();
    return std::nullopt;
  }
  M.Method = Method->asString();
  if (const JsonValue *Params = Doc->get("params")) {
    if (!Params->isObject() && !Params->isArray() && !Params->isNull()) {
      F.Code = InvalidRequest;
      F.Message = "params must be an object or array";
      F.Id = M.Id.present() ? M.Id : RpcId::null();
      return std::nullopt;
    }
    M.Params = *Params;
  }
  return M;
}

std::string rs::serve::makeResponse(const RpcId &Id,
                                    std::string_view ResultJson) {
  std::string Out = "{\"jsonrpc\":\"2.0\",\"id\":" + Id.toJson() +
                    ",\"result\":";
  Out.append(ResultJson);
  Out += "}";
  return Out;
}

std::string rs::serve::makeErrorResponse(const RpcId &Id, int Code,
                                         std::string_view Message) {
  JsonWriter W;
  W.beginObject();
  W.field("code", static_cast<int64_t>(Code));
  W.field("message", Message);
  W.endObject();
  return "{\"jsonrpc\":\"2.0\",\"id\":" + Id.toJson() +
         ",\"error\":" + W.str() + "}";
}

std::string rs::serve::makeNotification(std::string_view Method,
                                        std::string_view ParamsJson) {
  JsonWriter W;
  W.value(Method);
  std::string Out = "{\"jsonrpc\":\"2.0\",\"method\":" + W.str() +
                    ",\"params\":";
  Out.append(ParamsJson);
  Out += "}";
  return Out;
}

#include "serve/Server.h"

#include "diag/Lsp.h"
#include "diag/Version.h"
#include "serve/Transport.h"
#include "support/Json.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include <poll.h>
#include <unistd.h>

using namespace rs;
using namespace rs::serve;

Server::Server(ServerOptions O) : Opts(std::move(O)), Sess(Opts.Session) {}

void Server::handleMessage(std::string_view Payload) {
  RpcParseFailure F;
  std::optional<RpcMessage> M = parseRpcMessage(Payload, F);
  if (!M) {
    send(makeErrorResponse(F.Id, F.Code, F.Message));
    return;
  }
  dispatch(*M);
}

void Server::handleFramingError(const std::string &Reason) {
  send(makeErrorResponse(RpcId::null(), ParseError, Reason));
}

void Server::dispatch(const RpcMessage &M) {
  const std::string &Method = M.Method;

  // exit is honored in every state — it is how clients kill a wedged server.
  if (Method == "exit") {
    ExitSeen = true;
    return;
  }

  if (!Initialized) {
    if (Method == "initialize" && M.isRequest()) {
      handleInitialize(M);
      return;
    }
    if (M.isRequest()) {
      send(makeErrorResponse(M.Id, ServerNotInitialized,
                             "server not initialized"));
      return;
    }
    return; // LSP: notifications before initialize are dropped.
  }

  if (ShutdownSeen) {
    // LSP: between shutdown and exit only exit is meaningful.
    if (M.isRequest())
      send(makeErrorResponse(M.Id, InvalidRequest, "request after shutdown"));
    return;
  }

  if (Method == "initialize") {
    send(makeErrorResponse(M.Id, InvalidRequest, "server already initialized"));
    return;
  }
  if (Method == "initialized") {
    for (const std::string &P : Sess.analyzeAll())
      publishDiagnostics(P);
    return;
  }
  if (Method == "shutdown") {
    ShutdownSeen = true;
    if (M.isRequest())
      send(makeResponse(M.Id, "null"));
    return;
  }
  if (Method == "textDocument/didOpen") {
    handleDidOpen(M.Params);
    return;
  }
  if (Method == "textDocument/didChange") {
    handleDidChange(M.Params);
    return;
  }
  if (Method == "textDocument/didClose") {
    handleDidClose(M.Params);
    return;
  }
  if (Method == "textDocument/codeAction") {
    if (!M.isRequest())
      return;
    handleCodeAction(M.Id, M.Params);
    return;
  }
  if (Method == "$/cancelRequest") {
    handleCancel(M.Params);
    return;
  }

  if (M.isRequest()) {
    send(makeErrorResponse(M.Id, MethodNotFound, "unknown method: " + Method));
    return;
  }
  // Unknown notifications — including optional "$/..." ones — are ignored.
}

void Server::handleInitialize(const RpcMessage &M) {
  // With no roots from the command line, adopt the client's workspace root.
  bool HaveRoots = !Opts.Session.Roots.empty();
  if (!HaveRoots && M.Params.isObject()) {
    std::string_view RootUri = M.Params.getString("rootUri");
    if (!RootUri.empty()) {
      Sess.addRoot(uriToPath(RootUri));
    } else {
      std::string_view RootPath = M.Params.getString("rootPath");
      if (!RootPath.empty())
        Sess.addRoot(std::string(RootPath));
    }
  }

  JsonWriter W;
  W.beginObject();
  W.key("capabilities");
  W.beginObject();
  W.field("textDocumentSync", static_cast<int64_t>(1)); // full-document sync
  W.field("codeActionProvider", true);
  W.endObject();
  W.key("serverInfo");
  W.beginObject();
  W.field("name", version::ToolName);
  W.field("version", version::ToolVersion);
  W.field("schemaVersion", static_cast<int64_t>(version::ReportSchemaVersion));
  W.field("ruleCount", static_cast<int64_t>(version::ruleCount()));
  W.endObject();
  W.endObject();
  send(makeResponse(M.Id, W.str()));
  Initialized = true;
}

void Server::handleDidOpen(const JsonValue &Params) {
  const JsonValue *TD = Params.get("textDocument");
  const JsonValue *Text = TD ? TD->get("text") : nullptr;
  std::string Uri = TD ? std::string(TD->getString("uri")) : std::string();
  if (Uri.empty() || !Text || !Text->isString()) {
    logError("didOpen: malformed params (need textDocument.uri and .text)");
    return;
  }
  std::string Path = uriToPath(Uri);
  Sess.documents().open(Path, TD->getInt("version", 0), Text->asString());
  Sess.sources().addBuffer(Path, Text->asString());
  Sess.markDirty(Path);
}

void Server::handleDidChange(const JsonValue &Params) {
  const JsonValue *TD = Params.get("textDocument");
  const JsonValue *Changes = Params.get("contentChanges");
  std::string Uri = TD ? std::string(TD->getString("uri")) : std::string();
  if (Uri.empty() || !Changes || !Changes->isArray() ||
      Changes->elements().empty()) {
    logError("didChange: malformed params (need textDocument.uri and "
             "non-empty contentChanges)");
    return;
  }
  // Full sync (textDocumentSync = 1): the last change carries the whole
  // document; earlier elements are superseded.
  const JsonValue &Last = Changes->elements().back();
  const JsonValue *Text = Last.isObject() ? Last.get("text") : nullptr;
  if (!Text || !Text->isString()) {
    logError("didChange: contentChanges element has no full text");
    return;
  }
  std::string Path = uriToPath(Uri);
  if (!Sess.documents().change(Path, TD->getInt("version", 0),
                               Text->asString())) {
    logError("didChange for a document that is not open: " + Path);
    return;
  }
  Sess.sources().addBuffer(Path, Text->asString());
  Sess.markDirty(Path);
}

void Server::handleDidClose(const JsonValue &Params) {
  const JsonValue *TD = Params.get("textDocument");
  std::string Uri = TD ? std::string(TD->getString("uri")) : std::string();
  if (Uri.empty()) {
    logError("didClose: malformed params (need textDocument.uri)");
    return;
  }
  std::string Path = uriToPath(Uri);
  Sess.documents().close(Path);
  Sess.sources().removeBuffer(Path);
  if (Sess.forget(Path)) {
    // A scratch buffer left the session entirely: clear its client-side
    // diagnostics so nothing stale lingers in the editor.
    JsonWriter W;
    W.beginObject();
    W.field("uri", pathToUri(Path));
    W.key("diagnostics");
    W.beginArray();
    W.endArray();
    W.endObject();
    send(makeNotification("textDocument/publishDiagnostics", W.str()));
    return;
  }
  // A corpus file reverts to its on-disk content.
  Sess.markDirty(Path);
}

/// Emits one quickfix code action per fix-it whose primary line falls in
/// the requested window. Fix-its are line-granular (diag::FixIt replaces
/// the whole source line), which maps exactly onto a one-line TextEdit.
static void writeCodeActions(JsonWriter &W, const std::string &Path,
                             const engine::FileReport &R, int64_t StartLine,
                             int64_t EndLine) {
  std::string Uri = pathToUri(Path);
  auto EmitFixes = [&](const diag::Diagnostic &D) {
    for (const diag::FixIt &F : D.Fixes) {
      if (!F.Loc.isValid())
        continue;
      int64_t Line = static_cast<int64_t>(F.Loc.line()) - 1; // 0-based
      if (Line < StartLine || Line > EndLine)
        continue;
      W.beginObject();
      W.field("title", F.Description);
      W.field("kind", "quickfix");
      W.key("edit");
      W.beginObject();
      W.key("changes");
      W.beginObject();
      W.key(Uri);
      W.beginArray();
      W.beginObject();
      W.key("range");
      W.beginObject();
      W.key("start");
      W.beginObject();
      W.field("line", Line);
      W.field("character", static_cast<int64_t>(0));
      W.endObject();
      W.key("end");
      W.beginObject();
      W.field("line", Line + 1);
      W.field("character", static_cast<int64_t>(0));
      W.endObject();
      W.endObject();
      W.field("newText", F.Replacement + "\n");
      W.endObject();
      W.endArray();
      W.endObject();
      W.endObject();
      W.endObject();
    }
  };
  for (const diag::Diagnostic &D : R.Notices)
    EmitFixes(D);
  for (const diag::Diagnostic &D : R.Findings)
    EmitFixes(D);
}

void Server::handleCodeAction(const RpcId &Id, const JsonValue &Params) {
  // Code actions must see post-edit analysis state. While edits are
  // pending (or earlier requests are already queued behind them), defer;
  // flushPending() answers in arrival order after the re-analysis.
  if (Sess.anyDirty() || !DeferredRequests.empty()) {
    Deferred D;
    D.Id = Id;
    D.Method = "textDocument/codeAction";
    D.Params = Params;
    DeferredRequests.push_back(std::move(D));
    return;
  }

  const JsonValue *TD = Params.get("textDocument");
  const JsonValue *Range = Params.get("range");
  std::string Uri = TD ? std::string(TD->getString("uri")) : std::string();
  if (Uri.empty() || !Range || !Range->isObject()) {
    send(makeErrorResponse(Id, InvalidParams,
                           "codeAction: need textDocument.uri and range"));
    return;
  }
  std::string Path = uriToPath(Uri);
  int64_t StartLine = 0;
  int64_t EndLine = std::numeric_limits<int64_t>::max();
  if (const JsonValue *S = Range->get("start"))
    StartLine = S->getInt("line", 0);
  if (const JsonValue *E = Range->get("end"))
    EndLine = E->getInt("line", EndLine);

  JsonWriter W;
  W.beginArray();
  if (const engine::FileReport *R = Sess.report(Path))
    writeCodeActions(W, Path, *R, StartLine, EndLine);
  W.endArray();
  send(makeResponse(Id, W.str()));
}

void Server::handleCancel(const JsonValue &Params) {
  const JsonValue *IdV = Params.get("id");
  if (!IdV)
    return;
  RpcId Target;
  if (IdV->isInt())
    Target = RpcId::integer(IdV->asInt());
  else if (IdV->isString())
    Target = RpcId::string(IdV->asString());
  else
    return;
  for (auto It = DeferredRequests.begin(); It != DeferredRequests.end(); ++It)
    if (It->Id == Target) {
      send(makeErrorResponse(Target, RequestCancelled, "request cancelled"));
      DeferredRequests.erase(It);
      return;
    }
  // Not queued: the request already completed (or never existed). LSP says
  // cancellation of finished work is ignored.
}

void Server::publishDiagnostics(const std::string &Path) {
  const engine::FileReport *R = Sess.report(Path);
  if (!R)
    return;

  JsonWriter W;
  W.beginObject();
  W.field("uri", pathToUri(Path));
  if (Sess.documents().isOpen(Path)) {
    W.key("version");
    W.value(Sess.documents().version(Path));
  }
  W.key("diagnostics");
  W.beginArray();
  const diag::SourceManager *SM = &Sess.sources();
  auto Emit = [&](const diag::Diagnostic &D) {
    W.beginObject();
    W.key("range");
    diag::writeLspRange(W, D.Loc, SM);
    W.key("severity");
    W.value(static_cast<int64_t>(diag::lspSeverity(D.Sev)));
    W.field("code", diag::ruleStringId(D.Kind));
    W.field("source", "rustsight");
    W.field("message", D.Message);
    if (!D.Secondary.empty()) {
      W.key("relatedInformation");
      W.beginArray();
      for (const diag::Span &S : D.Secondary) {
        W.beginObject();
        W.key("location");
        W.beginObject();
        const std::string &File = S.Loc.file();
        W.field("uri", pathToUri(File.empty() ? Path : File));
        W.key("range");
        diag::writeLspRange(W, S.Loc, SM);
        W.endObject();
        W.field("message",
                S.Function.empty() ? S.Label
                                   : S.Label + " (in " + S.Function + ")");
        W.endObject();
      }
      W.endArray();
    }
    // Extension payload: the stable fingerprint (for client-side dedup /
    // baselining) and the machine-applicable fixes that back codeAction.
    W.key("data");
    W.beginObject();
    W.field("fingerprint", D.fingerprintHex());
    if (!D.Fixes.empty()) {
      W.key("fixes");
      W.beginArray();
      for (const diag::FixIt &F : D.Fixes) {
        W.beginObject();
        W.field("description", F.Description);
        W.field("line", static_cast<int64_t>(F.Loc.line()));
        W.field("replacement", F.Replacement);
        W.endObject();
      }
      W.endArray();
    }
    W.endObject();
    W.endObject();
  };
  for (const diag::Diagnostic &D : R->ParseErrors)
    Emit(D);
  for (const diag::Diagnostic &D : R->VerifierErrors)
    Emit(D);
  for (const diag::Diagnostic &D : R->Notices)
    Emit(D);
  for (const diag::Diagnostic &D : R->Findings)
    Emit(D);
  for (const diag::Diagnostic &D : R->statusDiagnostics())
    Emit(D);
  W.endArray();
  W.endObject();
  send(makeNotification("textDocument/publishDiagnostics", W.str()));
}

void Server::logError(const std::string &Message) {
  JsonWriter W;
  W.beginObject();
  W.field("type", static_cast<int64_t>(1)); // MessageType.Error
  W.field("message", Message);
  W.endObject();
  send(makeNotification("window/logMessage", W.str()));
}

bool Server::flushPending() {
  bool Did = false;
  if (Sess.anyDirty()) {
    for (const std::string &P : Sess.refresh())
      publishDiagnostics(P);
    Did = true;
  }
  while (!DeferredRequests.empty()) {
    Deferred D = std::move(DeferredRequests.front());
    DeferredRequests.pop_front();
    // Only codeAction defers today; re-dispatching through the public
    // handler keeps a single code path (the dirty set is clear now, so it
    // answers immediately).
    handleCodeAction(D.Id, D.Params);
    Did = true;
  }
  return Did;
}

bool Server::hasPendingWork() const {
  return Sess.anyDirty() || !DeferredRequests.empty();
}

std::vector<std::string> Server::takeOutgoing() {
  std::vector<std::string> Out;
  Out.swap(Outgoing);
  return Out;
}

//===----------------------------------------------------------------------===//
// The stdio event loop.
//===----------------------------------------------------------------------===//

int rs::serve::serveStdio(const ServerOptions &Opts) {
  Server S(Opts);
  FrameReader Reader;
  using Clock = std::chrono::steady_clock;

  auto WriteOut = [&S] {
    std::vector<std::string> Out = S.takeOutgoing();
    if (Out.empty())
      return;
    for (const std::string &Payload : Out) {
      std::string Frame = frameMessage(Payload);
      std::fwrite(Frame.data(), 1, Frame.size(), stdout);
    }
    std::fflush(stdout);
  };

  Clock::time_point LastTraffic = Clock::now();
  while (!S.exitRequested()) {
    // Drain every frame the reader already holds before touching the fd.
    for (;;) {
      std::string Payload, Error;
      FrameReader::Status St = Reader.next(Payload, Error);
      if (St == FrameReader::Status::NeedMore)
        break;
      if (St == FrameReader::Status::Frame)
        S.handleMessage(Payload);
      else
        S.handleFramingError(Error);
      if (S.exitRequested())
        break;
    }
    WriteOut();
    if (S.exitRequested())
      break;

    // Debounce: while edits (or deferred requests) are pending, wake after
    // DebounceMs of quiet and flush. Otherwise sleep until the idle
    // timeout — or forever when none is configured.
    int TimeoutMs = -1;
    if (S.hasPendingWork()) {
      TimeoutMs = static_cast<int>(Opts.DebounceMs);
    } else if (Opts.IdleTimeoutMs) {
      uint64_t ElapsedMs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                LastTraffic)
              .count());
      if (ElapsedMs >= Opts.IdleTimeoutMs) {
        std::fprintf(stderr,
                     "rustsight serve: no client traffic for %llu ms, "
                     "exiting\n",
                     static_cast<unsigned long long>(ElapsedMs));
        return 0;
      }
      TimeoutMs = static_cast<int>(Opts.IdleTimeoutMs - ElapsedMs);
    }

    struct pollfd P;
    P.fd = STDIN_FILENO;
    P.events = POLLIN;
    P.revents = 0;
    int Rc = ::poll(&P, 1, TimeoutMs);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return 1;
    }
    if (Rc == 0) {
      // Quiet period elapsed. Pending work flushes; pure idleness loops
      // back to the timeout check above.
      if (S.hasPendingWork()) {
        S.flushPending();
        WriteOut();
      }
      continue;
    }

    char Buf[16384];
    ssize_t N = ::read(STDIN_FILENO, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return 1;
    }
    if (N == 0)
      break; // EOF: the client is gone.
    Reader.feed(std::string_view(Buf, static_cast<size_t>(N)));
    LastTraffic = Clock::now();
  }

  WriteOut();
  // LSP exit contract: 0 only when shutdown preceded the end of the
  // session (via exit or EOF); an abrupt disconnect is abnormal.
  return S.shutdownRequested() ? 0 : 1;
}

#include "serve/DocumentStore.h"

#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace rs;
using namespace rs::serve;

static int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

std::string rs::serve::uriToPath(std::string_view Uri) {
  if (!startsWith(Uri, "file://"))
    return std::string(Uri);
  std::string_view Rest = Uri.substr(7);
  // file://<authority>/<path>: the only authority we accept is empty or
  // "localhost" — anything else is a remote URI we pass through untouched.
  if (!Rest.empty() && Rest.front() != '/') {
    size_t Slash = Rest.find('/');
    std::string_view Authority =
        Slash == std::string_view::npos ? Rest : Rest.substr(0, Slash);
    if (Authority != "localhost")
      return std::string(Uri);
    Rest = Slash == std::string_view::npos ? std::string_view()
                                           : Rest.substr(Slash);
  }
  std::string Path;
  Path.reserve(Rest.size());
  for (size_t I = 0; I < Rest.size(); ++I) {
    if (Rest[I] == '%' && I + 2 < Rest.size()) {
      int Hi = hexDigit(Rest[I + 1]), Lo = hexDigit(Rest[I + 2]);
      if (Hi >= 0 && Lo >= 0) {
        Path.push_back(char(Hi * 16 + Lo));
        I += 2;
        continue;
      }
    }
    Path.push_back(Rest[I]);
  }
  return Path;
}

/// RFC 3986 unreserved characters plus '/' stay literal in the path
/// component; everything else is percent-encoded.
static bool uriSafe(char C) {
  return isIdentCont(C) || C == '/' || C == '.' || C == '-' || C == '~';
}

std::string rs::serve::pathToUri(const std::string &Path) {
  if (Path.empty() || Path.front() != '/')
    return Path;
  std::string Uri = "file://";
  static const char *Hex = "0123456789ABCDEF";
  for (char C : Path) {
    if (uriSafe(C)) {
      Uri.push_back(C);
    } else {
      unsigned char U = static_cast<unsigned char>(C);
      Uri.push_back('%');
      Uri.push_back(Hex[U >> 4]);
      Uri.push_back(Hex[U & 15]);
    }
  }
  return Uri;
}

void DocumentStore::open(const std::string &Path, int64_t Version,
                         std::string Text) {
  Document &D = Docs[Path];
  D.Text = std::move(Text);
  D.Version = Version;
}

bool DocumentStore::change(const std::string &Path, int64_t Version,
                           std::string Text) {
  auto It = Docs.find(Path);
  if (It == Docs.end())
    return false;
  It->second.Text = std::move(Text);
  It->second.Version = Version;
  return true;
}

bool DocumentStore::close(const std::string &Path) {
  return Docs.erase(Path) != 0;
}

bool DocumentStore::isOpen(const std::string &Path) const {
  return Docs.count(Path) != 0;
}

int64_t DocumentStore::version(const std::string &Path) const {
  auto It = Docs.find(Path);
  return It == Docs.end() ? -1 : It->second.Version;
}

std::optional<std::string>
DocumentStore::content(const std::string &Path) const {
  auto It = Docs.find(Path);
  if (It != Docs.end())
    return It->second.Text;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

#include "serve/Session.h"

#include "analysis/Link.h"
#include "corpus/CorpusWalk.h"
#include "mir/Parser.h"

#include <algorithm>

using namespace rs;
using namespace rs::serve;

Session::Session(SessionOptions O)
    : Opts(std::move(O)), Engine(Opts.Engine) {}

void Session::indexContent(FileState &St, const std::string &Path,
                           const std::string &Content) {
  // A light recovery parse just for the name-reference graph; the engine
  // owns the real (fault-isolated) analysis parse. The def/ref extraction
  // itself is the linker's — the daemon's dependency index and the
  // whole-program link phase must agree on what counts as an extern ref.
  mir::ModuleParse P = mir::Parser::parseRecover(Content, Path);
  analysis::ModuleDefsRefs DR = analysis::collectDefsAndRefs(P.M);
  St.Defines = std::move(DR.Defines);
  St.ExternalRefs = std::move(DR.ExternalRefs);
}

void Session::analyzeOne(const std::string &Path) {
  FileState &St = Files[Path];
  ++St.Epoch;

  std::optional<std::string> Content = Docs.content(Path);
  if (!Content) {
    engine::FileReport R;
    R.Path = Path;
    R.Status = engine::EngineStatus::Skipped;
    R.Reason = "cannot open file";
    St.Report = std::move(R);
    St.Defines.clear();
    St.ExternalRefs.clear();
    return;
  }

  // Hit/miss attribution: the engine's cache counters move by exactly one
  // lookup for this call, so the delta tells revalidation (hit) from true
  // re-analysis (miss). With the cache disabled every run is an analysis.
  uint64_t MissesBefore = 0;
  bool HaveCache = false;
  if (sched::ResultCache *C = Engine.cache()) {
    MissesBefore = C->stats().Misses;
    HaveCache = true;
  }
  St.Report = Engine.analyzeSourceThroughCache(*Content, Path);
  bool Analyzed = true;
  if (!HaveCache) {
    // ensureCache ran inside the engine call; re-probe for the next round.
    HaveCache = Engine.cache() != nullptr;
    if (HaveCache)
      MissesBefore = 0;
  }
  if (Engine.cache())
    Analyzed = Engine.cache()->stats().Misses > MissesBefore;
  if (Analyzed) {
    ++St.Analyses;
    ++TotalAnalyses;
  } else {
    ++St.Revalidations;
  }

  indexContent(St, Path, *Content);
}

std::vector<std::string> Session::analyzeAll() {
  std::vector<std::string> Affected;
  for (const corpus::CorpusInput &In : corpus::expandMirPaths(Opts.Roots)) {
    if (!In.SkipReason.empty()) {
      FileState &St = Files[In.Path];
      St.InCorpus = true;
      ++St.Epoch;
      St.Report.Path = In.Path;
      St.Report.Status = engine::EngineStatus::Skipped;
      St.Report.Reason = In.SkipReason;
      Affected.push_back(In.Path);
      continue;
    }
    analyzeOne(In.Path);
    Files[In.Path].InCorpus = true;
    Affected.push_back(In.Path);
  }
  // Overlay documents opened before the initial pass (or outside the
  // roots) are part of the session too.
  for (const auto &[Path, Doc] : Docs.overlays()) {
    (void)Doc;
    if (!Files.count(Path)) {
      analyzeOne(Path);
      Affected.push_back(Path);
    }
  }
  Dirty.clear();
  std::sort(Affected.begin(), Affected.end());
  Affected.erase(std::unique(Affected.begin(), Affected.end()),
                 Affected.end());
  return Affected;
}

void Session::markDirty(const std::string &Path) { Dirty.insert(Path); }

std::vector<std::string>
Session::dependentsOf(const std::string &Path) const {
  std::vector<std::string> Out;
  auto It = Files.find(Path);
  if (It == Files.end())
    return Out;
  const std::vector<std::string> &Defines = It->second.Defines;
  if (Defines.empty())
    return Out;
  for (const auto &[Other, St] : Files) {
    if (Other == Path)
      continue;
    bool Depends = false;
    for (const std::string &Ref : St.ExternalRefs)
      if (std::binary_search(Defines.begin(), Defines.end(), Ref)) {
        Depends = true;
        break;
      }
    if (Depends)
      Out.push_back(Other);
  }
  return Out; // Map iteration order: already sorted.
}

std::vector<std::string> Session::refresh() {
  // The slice: every dirty file plus every file referencing a function a
  // dirty file defines. Dependents are computed against the *pre-edit*
  // index first; after re-analysis the index is fresh, so a second pass
  // catches files that now reference newly added definitions.
  std::set<std::string> Affected;
  for (const std::string &P : Dirty) {
    Affected.insert(P);
    for (const std::string &Dep : dependentsOf(P))
      Affected.insert(Dep);
  }
  std::vector<std::string> DirtyNow(Dirty.begin(), Dirty.end());
  Dirty.clear();

  for (const std::string &P : DirtyNow)
    analyzeOne(P);
  // Post-edit dependents (the defines may have changed).
  for (const std::string &P : DirtyNow)
    for (const std::string &Dep : dependentsOf(P))
      Affected.insert(Dep);
  for (const std::string &P : Affected)
    if (std::find(DirtyNow.begin(), DirtyNow.end(), P) == DirtyNow.end())
      analyzeOne(P);

  return std::vector<std::string>(Affected.begin(), Affected.end());
}

bool Session::forget(const std::string &Path) {
  auto It = Files.find(Path);
  if (It == Files.end() || It->second.InCorpus)
    return false;
  Files.erase(It);
  Dirty.erase(Path);
  return true;
}

const engine::FileReport *Session::report(const std::string &Path) const {
  auto It = Files.find(Path);
  return It == Files.end() ? nullptr : &It->second.Report;
}

Session::FileStats Session::fileStats(const std::string &Path) const {
  FileStats S;
  auto It = Files.find(Path);
  if (It != Files.end()) {
    S.Epoch = It->second.Epoch;
    S.Analyses = It->second.Analyses;
    S.Revalidations = It->second.Revalidations;
  }
  return S;
}

std::vector<std::string> Session::paths() const {
  std::vector<std::string> Out;
  Out.reserve(Files.size());
  for (const auto &[Path, St] : Files) {
    (void)St;
    Out.push_back(Path);
  }
  return Out;
}

engine::CorpusReport Session::snapshot() const {
  engine::CorpusReport Report;
  Report.Files.reserve(Files.size());
  for (const auto &[Path, St] : Files) {
    (void)Path;
    Report.Files.push_back(St.Report);
  }
  Report.finalize();
  return Report;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `rustsight serve`: a resident analysis daemon speaking JSON-RPC 2.0 with
/// LSP Content-Length framing over stdio. The Server is IO-agnostic — it
/// consumes raw message payloads and queues outbound payloads — so the
/// tests drive whole editor sessions in-process while serveStdio() owns the
/// real event loop (poll on stdin, debounce, idle timeout).
///
/// Protocol surface (docs/SERVING.md):
///   initialize / initialized / shutdown / exit      lifecycle
///   textDocument/didOpen|didChange|didClose         overlay sync (full text)
///   textDocument/publishDiagnostics                 <- server push
///   textDocument/codeAction                         fix-its as quickfixes
///   $/cancelRequest                                 cancels deferred work
///
/// Scheduling: didChange traffic only marks files dirty; the debounced
/// flush coalesces bursts into one incremental re-analysis (dirty files +
/// dependency slice, Session::refresh) that fans out on the engine's
/// work-stealing ThreadPool and runs under the engine's cooperative
/// rs::Budget options. Requests that need fresh state (codeAction) defer
/// until the flush; $/cancelRequest aborts them while queued with the LSP
/// RequestCancelled error.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SERVE_SERVER_H
#define RUSTSIGHT_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "serve/Session.h"

#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace rs::serve {

struct ServerOptions {
  SessionOptions Session;
  /// Quiet time after the last inbound message before the coalesced
  /// re-analysis flush runs.
  uint64_t DebounceMs = 150;
  /// With no inbound traffic at all for this long the daemon exits
  /// cleanly (0 = stay resident forever).
  uint64_t IdleTimeoutMs = 0;
};

class Server {
public:
  explicit Server(ServerOptions O);

  /// Handles one inbound JSON-RPC payload: responds immediately to
  /// lifecycle and stateless requests, updates overlays and the dirty set
  /// for document notifications, and defers analysis-dependent requests to
  /// the next flush.
  void handleMessage(std::string_view Payload);

  /// Converts a transport framing error into a JSON-RPC error response
  /// (id null) so a confused client sees why its frame was dropped.
  void handleFramingError(const std::string &Reason);

  /// The debounced work point: runs the incremental re-analysis if
  /// anything is dirty, publishes diagnostics for every affected file, and
  /// answers deferred requests. Returns true when it did anything.
  bool flushPending();

  /// True when a flush would do work (dirty files or deferred requests).
  bool hasPendingWork() const;

  /// Outbound payloads (responses and notifications) queued since the last
  /// take; the transport wraps each in a Content-Length frame.
  std::vector<std::string> takeOutgoing();

  bool initialized() const { return Initialized; }
  bool shutdownRequested() const { return ShutdownSeen; }
  bool exitRequested() const { return ExitSeen; }

  /// LSP exit contract: 0 when exit followed shutdown, 1 otherwise.
  int exitCode() const { return ShutdownSeen ? 0 : 1; }

  Session &session() { return Sess; }

private:
  struct Deferred {
    RpcId Id;
    std::string Method;
    JsonValue Params;
  };

  void dispatch(const RpcMessage &M);
  void handleInitialize(const RpcMessage &M);
  void handleDidOpen(const JsonValue &Params);
  void handleDidChange(const JsonValue &Params);
  void handleDidClose(const JsonValue &Params);
  void handleCodeAction(const RpcId &Id, const JsonValue &Params);
  void handleCancel(const JsonValue &Params);

  /// Queues textDocument/publishDiagnostics for \p Path from its current
  /// session report.
  void publishDiagnostics(const std::string &Path);

  /// Queues a window/logMessage error notification (malformed notification
  /// params have no response channel; this is the LSP-conform substitute).
  void logError(const std::string &Message);

  void send(std::string Payload) { Outgoing.push_back(std::move(Payload)); }

  ServerOptions Opts;
  Session Sess;
  std::vector<std::string> Outgoing;
  std::deque<Deferred> DeferredRequests;
  bool Initialized = false;
  bool ShutdownSeen = false;
  bool ExitSeen = false;
};

/// Runs the full daemon over stdin/stdout with ServerOptions::DebounceMs
/// coalescing and ServerOptions::IdleTimeoutMs lifetime. Returns the
/// process exit code (0 clean shutdown or idle timeout, 1 abnormal exit).
int serveStdio(const ServerOptions &Opts);

} // namespace rs::serve

#endif // RUSTSIGHT_SERVE_SERVER_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident analysis state behind one serve connection: a warm
/// AnalysisEngine (its content-addressed ResultCache persists across every
/// request, which is what makes re-analysis incremental), the overlay
/// DocumentStore, an overlay-aware SourceManager for snippet/token
/// rendering, the last FileReport per corpus file, and a cross-file
/// dependency index.
///
/// Invalidation model: an edit marks its file dirty. refresh() re-analyzes
/// the dirty files (their content fingerprint changed, so the cache misses
/// and the engine truly re-runs) plus their reverse-dependency slice — the
/// files whose call-graph external references touch any function the dirty
/// files define (before or after the edit). Dependents' bytes are
/// unchanged, so they revalidate as pure cache hits; everything outside the
/// slice is not touched at all. Per-file epoch/analysis/revalidation
/// counters make exactly that claim testable.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SERVE_SESSION_H
#define RUSTSIGHT_SERVE_SESSION_H

#include "diag/SourceManager.h"
#include "engine/Engine.h"
#include "serve/DocumentStore.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rs::serve {

struct SessionOptions {
  engine::EngineOptions Engine;
  /// Corpus roots (files or directories) analyzed at session start and
  /// kept resident. Overlay documents outside the roots join the session
  /// while open and leave it on didClose.
  std::vector<std::string> Roots;
};

class Session {
public:
  explicit Session(SessionOptions O);

  DocumentStore &documents() { return Docs; }

  /// The overlay-aware SourceManager: open documents are registered as
  /// virtual buffers so snippet and token-extent rendering never touch
  /// disk for edited state.
  diag::SourceManager &sources() { return SM; }

  engine::AnalysisEngine &engine() { return Engine; }

  /// Adds a corpus root after construction — the client's rootUri from
  /// `initialize` when no roots came from the command line.
  void addRoot(std::string Root) { Opts.Roots.push_back(std::move(Root)); }

  /// Expands the corpus roots and analyzes every file (warm cache hits
  /// permitting). Returns the ordered list of paths now resident.
  std::vector<std::string> analyzeAll();

  /// Marks \p Path changed; refresh() will pick it (and its dependents) up.
  void markDirty(const std::string &Path);
  bool anyDirty() const { return !Dirty.empty(); }

  /// Re-analyzes the dirty set plus its dependency slice; clears the dirty
  /// set. Returns the affected paths in deterministic (sorted) order.
  std::vector<std::string> refresh();

  /// Drops a non-corpus overlay document from the session (didClose of a
  /// scratch buffer). Corpus files are never forgotten — they fall back to
  /// their on-disk content instead. Returns true when the path was
  /// resident and outside the corpus roots.
  bool forget(const std::string &Path);

  /// The most recent report for \p Path, or nullptr.
  const engine::FileReport *report(const std::string &Path) const;

  /// Files whose external references name a function \p Path defines —
  /// the dependency slice refresh() re-validates. Sorted; excludes \p Path.
  std::vector<std::string> dependentsOf(const std::string &Path) const;

  /// Per-file incrementality counters. Epoch bumps on every refresh that
  /// touched the file; Analyses counts true engine runs (cache misses);
  /// Revalidations counts cache-hit refreshes.
  struct FileStats {
    uint64_t Epoch = 0;
    uint64_t Analyses = 0;
    uint64_t Revalidations = 0;
  };
  FileStats fileStats(const std::string &Path) const;

  /// Total true engine runs across the session.
  uint64_t totalAnalyses() const { return TotalAnalyses; }

  /// All resident paths, sorted.
  std::vector<std::string> paths() const;

  /// The session's current state as a CorpusReport (files in sorted path
  /// order, findings finalized). For any buffer state this renders
  /// byte-identically to a cold `rustsight check --json` over the same
  /// bytes — the acceptance contract the ServeTest pins.
  engine::CorpusReport snapshot() const;

private:
  struct FileState {
    engine::FileReport Report;
    /// Function names this file defines (sorted, deduplicated).
    std::vector<std::string> Defines;
    /// Callee/spawn-target names referenced but not defined here (sorted).
    std::vector<std::string> ExternalRefs;
    uint64_t Epoch = 0;
    uint64_t Analyses = 0;
    uint64_t Revalidations = 0;
    bool InCorpus = false;
  };

  /// Runs one file through the warm engine and refreshes its state and
  /// dependency-index rows. \p Content empty-optional means unreadable.
  void analyzeOne(const std::string &Path);

  /// Recomputes Defines/ExternalRefs for \p Path from \p Content.
  void indexContent(FileState &St, const std::string &Path,
                    const std::string &Content);

  SessionOptions Opts;
  engine::AnalysisEngine Engine;
  DocumentStore Docs;
  diag::SourceManager SM;
  std::map<std::string, FileState> Files;
  std::set<std::string> Dirty;
  uint64_t TotalAnalyses = 0;
};

} // namespace rs::serve

#endif // RUSTSIGHT_SERVE_SESSION_H

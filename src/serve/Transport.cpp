#include "serve/Transport.h"

#include "support/StringUtils.h"

using namespace rs;
using namespace rs::serve;

std::string rs::serve::frameMessage(std::string_view Payload) {
  std::string Out = "Content-Length: " + std::to_string(Payload.size()) +
                    "\r\n\r\n";
  Out.append(Payload);
  return Out;
}

/// Case-insensitive ASCII prefix match (header names are case-insensitive
/// per RFC 7230, which the LSP base protocol borrows).
static bool headerIs(std::string_view Line, std::string_view Name) {
  if (Line.size() < Name.size())
    return false;
  for (size_t I = 0; I != Name.size(); ++I) {
    char A = Line[I], B = Name[I];
    if (A >= 'A' && A <= 'Z')
      A = char(A - 'A' + 'a');
    if (B >= 'A' && B <= 'Z')
      B = char(B - 'A' + 'a');
    if (A != B)
      return false;
  }
  return true;
}

FrameReader::Status FrameReader::next(std::string &Payload,
                                      std::string &Error) {
  Error.clear();
  size_t HeaderEnd = Buf.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos) {
    if (Buf.size() > Lim.MaxHeaderBytes) {
      // No terminator within the allowance: drop the garbage so one lost
      // client cannot make the reader buffer forever.
      Buf.clear();
      Error = "header block exceeds " + std::to_string(Lim.MaxHeaderBytes) +
              " bytes without CRLFCRLF terminator";
      return Status::Error;
    }
    return Status::NeedMore;
  }

  // Parse the header block for Content-Length; every other header
  // (Content-Type, ...) is ignored.
  bool HaveLength = false;
  size_t Length = 0;
  bool Bad = false;
  std::string BadReason;
  for (std::string_view Line : split(std::string_view(Buf).substr(0, HeaderEnd),
                                     '\n')) {
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty())
      continue;
    if (!headerIs(Line, "content-length:"))
      continue;
    std::string_view Value = trim(Line.substr(std::string_view("content-length:").size()));
    if (Value.empty()) {
      Bad = true;
      BadReason = "empty Content-Length value";
      break;
    }
    size_t N = 0;
    for (char C : Value) {
      if (!isDigit(C)) {
        Bad = true;
        BadReason = "non-numeric Content-Length value";
        break;
      }
      if (N > (Lim.MaxContentLength - (C - '0')) / 10) {
        Bad = true;
        BadReason = "Content-Length exceeds the " +
                    std::to_string(Lim.MaxContentLength) + "-byte limit";
        break;
      }
      N = N * 10 + size_t(C - '0');
    }
    if (Bad)
      break;
    HaveLength = true;
    Length = N;
  }
  if (!Bad && !HaveLength) {
    Bad = true;
    BadReason = "missing Content-Length header";
  }
  if (Bad) {
    // Resynchronize past the bad header block; its "payload" start is the
    // best next-header guess we have.
    Buf.erase(0, HeaderEnd + 4);
    Error = BadReason;
    return Status::Error;
  }

  size_t BodyStart = HeaderEnd + 4;
  if (Buf.size() - BodyStart < Length)
    return Status::NeedMore; // Truncated payload: wait for the rest.

  Payload.assign(Buf, BodyStart, Length);
  Buf.erase(0, BodyStart + Length);
  return Status::Frame;
}

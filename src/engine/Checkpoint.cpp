#include "engine/Checkpoint.h"

#include "corpus/CorpusWalk.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

namespace fs = std::filesystem;

using namespace rs;
using namespace rs::engine;

uint64_t
rs::engine::fingerprintCorpus(const std::vector<corpus::CorpusInput> &Inputs) {
  uint64_t H = fnv1a64("rustsight-corpus");
  for (const corpus::CorpusInput &In : Inputs) {
    H = fnv1a64(In.Path, H);
    H = fnv1a64("\x1f", H);
    H = fnv1a64(In.SkipReason, H);
    H = fnv1a64("\x1e", H);
  }
  return H;
}

bool CheckpointJournal::load(
    const RunKey &Key, std::vector<std::optional<FileReport>> &Out) const {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();

  std::optional<JsonValue> Doc = JsonValue::parse(Buf.str());
  if (!Doc || !Doc->isObject())
    return false;
  if (Doc->getInt("version", -1) != FormatVersion)
    return false;
  uint64_t Corpus = 0, Salt = 0;
  if (!hexToHash(Doc->getString("corpus"), Corpus) ||
      Corpus != Key.CorpusFingerprint)
    return false;
  if (!hexToHash(Doc->getString("salt"), Salt) || Salt != Key.Salt)
    return false;
  const JsonValue *Files = Doc->get("files");
  if (!Files || !Files->isArray())
    return false;

  // Stage into a scratch vector so a defect halfway through leaves the
  // caller's state untouched.
  std::vector<std::optional<FileReport>> Staged(Out.size());
  for (const JsonValue &Entry : Files->elements()) {
    if (!Entry.isObject())
      return false;
    int64_t Ordinal = Entry.getInt("ordinal", -1);
    const JsonValue *Report = Entry.get("report");
    if (Ordinal < 0 || !Report)
      return false;
    if (static_cast<size_t>(Ordinal) >= Staged.size())
      continue; // Corpus shrank out from under the key check; ignore.
    std::optional<FileReport> R = fileReportFromJson(*Report);
    if (!R)
      return false;
    Staged[static_cast<size_t>(Ordinal)] = std::move(*R);
  }
  for (size_t I = 0; I != Staged.size(); ++I)
    if (Staged[I])
      Out[I] = std::move(Staged[I]);
  return true;
}

bool CheckpointJournal::write(
    const RunKey &Key,
    const std::vector<std::optional<FileReport>> &Results) const {
  JsonWriter W;
  W.beginObject();
  W.field("version", FormatVersion);
  W.field("corpus", hashToHex(Key.CorpusFingerprint));
  W.field("salt", hashToHex(Key.Salt));
  W.key("files");
  W.beginArray();
  std::string Body = W.str();
  bool First = true;
  for (size_t I = 0; I != Results.size(); ++I) {
    if (!Results[I])
      continue;
    if (!First)
      Body += ',';
    First = false;
    // The report is itself writer-produced JSON; splice it in verbatim
    // rather than re-escaping it through a string field.
    Body += "{\"ordinal\":" + std::to_string(I) +
            ",\"report\":" + serializeWireFileReport(*Results[I]) + "}";
  }
  Body += "]}";

  fs::path Final(Path);
  std::error_code Ec;
  if (Final.has_parent_path())
    fs::create_directories(Final.parent_path(), Ec);
  fs::path Tmp = Final;
  Tmp += ".tmp." + std::to_string(::getpid()) + "." +
         hashToHex(std::hash<std::thread::id>()(std::this_thread::get_id()));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << Body;
    OutF.flush();
    if (!OutF) {
      OutF.close();
      fs::remove(Tmp, Ec);
      return false;
    }
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

void CheckpointJournal::remove() const {
  std::error_code Ec;
  fs::remove(fs::path(Path), Ec);
}

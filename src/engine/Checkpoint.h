//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervisor's checkpoint journal: a single JSON document, rewritten
/// with the atomic temp-write + rename idiom the ResultCache disk layer
/// uses, recording every finalized FileReport of a supervised corpus run.
/// A run that dies — SIGKILL, OOM, power loss — resumes from the journal:
/// completed files replay verbatim (full wire fidelity, so the merged
/// report is byte-identical to an uninterrupted run) and only the missing
/// ordinals are re-analyzed.
///
/// The journal is keyed by a RunKey (corpus fingerprint + engine cache
/// salt). A journal whose key does not match the current run — different
/// file list, different detector battery, different budgets — is ignored,
/// never misapplied. A corrupt or truncated journal loads as "no
/// checkpoint" (the resilience rules apply here too: degrade, never die).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_ENGINE_CHECKPOINT_H
#define RUSTSIGHT_ENGINE_CHECKPOINT_H

#include "engine/Engine.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rs::corpus {
struct CorpusInput;
} // namespace rs::corpus

namespace rs::engine {

/// Identity of one supervised run: resume is only valid when both parts
/// match (same expanded input list, same analysis configuration).
struct RunKey {
  uint64_t CorpusFingerprint = 0;
  uint64_t Salt = 0;
};

/// FNV-1a over the ordered expanded input list (paths and skip reasons),
/// with separators so list structure cannot alias.
uint64_t fingerprintCorpus(const std::vector<corpus::CorpusInput> &Inputs);

class CheckpointJournal {
public:
  explicit CheckpointJournal(std::string Path) : Path(std::move(Path)) {}

  const std::string &path() const { return Path; }

  /// Loads the journal into \p Out (sized by the caller to the corpus;
  /// entries whose ordinal is out of range are dropped). Returns false —
  /// with \p Out untouched — when the file is absent, unreadable, corrupt,
  /// from another format version, or keyed to a different run.
  bool load(const RunKey &Key,
            std::vector<std::optional<FileReport>> &Out) const;

  /// Atomically replaces the journal with the completed entries of
  /// \p Results. Returns false on any IO failure (the supervisor treats
  /// that as "checkpointing unavailable" and keeps running).
  bool write(const RunKey &Key,
             const std::vector<std::optional<FileReport>> &Results) const;

  /// Best-effort removal (used by tests; stale journals are otherwise
  /// harmless because the RunKey gates every load).
  void remove() const;

  static constexpr int64_t FormatVersion = 1;

private:
  std::string Path;
};

} // namespace rs::engine

#endif // RUSTSIGHT_ENGINE_CHECKPOINT_H

#include "engine/Engine.h"

#include "analysis/Link.h"
#include "corpus/CorpusWalk.h"
#include "diag/Render.h"
#include "diag/Sarif.h"
#include "diag/SourceManager.h"
#include "diag/Suppress.h"
#include "diag/Version.h"
#include "mir/Parser.h"
#include "mir/Snapshot.h"
#include "mir/Verifier.h"
#include "sched/ThreadPool.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

using namespace rs;
using namespace rs::engine;

const char *rs::engine::engineStatusName(EngineStatus S) {
  switch (S) {
  case EngineStatus::Ok:
    return "ok";
  case EngineStatus::Degraded:
    return "degraded";
  case EngineStatus::Skipped:
    return "skipped";
  }
  return "?";
}

AnalysisEngine::AnalysisEngine(EngineOptions Opts) : Opts(Opts) {}

//===----------------------------------------------------------------------===//
// Per-file pipeline
//===----------------------------------------------------------------------===//

void AnalysisEngine::runDetectors(const mir::Module &M, FileReport &R,
                                  const analysis::ExternalSummaries *Ext) {
  Budget FileBudget;
  bool HasFileBudget = Opts.BudgetMs != 0 || Opts.MaxFileSteps != 0;
  if (Opts.BudgetMs != 0)
    FileBudget.setDeadline(Opts.BudgetMs);
  if (Opts.MaxFileSteps != 0)
    FileBudget.setMaxSteps(Opts.MaxFileSteps);

  detectors::AnalysisLimits Limits;
  Limits.ContextBudget = HasFileBudget ? &FileBudget : nullptr;
  Limits.MaxDataflowSteps = Opts.MaxDataflowIters;
  Limits.MaxSummaryRounds = Opts.MaxSummaryRounds;
  Limits.External = Ext && !Ext->empty() ? Ext : nullptr;
  detectors::AnalysisContext Ctx(M, Limits);

  detectors::DiagnosticEngine FileDiags;
  bool AnyQuarantined = false;
  bool AnyBudgetSkip = false;

  std::vector<std::unique_ptr<detectors::Detector>> Detectors =
      Factory ? Factory() : detectors::makeAllDetectors();
  for (const auto &D : Detectors) {
    DetectorOutcome O;
    O.Name = D->name();
    if (HasFileBudget && FileBudget.exhausted()) {
      // Bottom rung of the degradation ladder: no budget left, so the
      // detector is skipped with a note rather than run to a hang.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string(FileBudget.reason()) + "; skipped before run";
      AnyBudgetSkip = true;
      R.Detectors.push_back(std::move(O));
      continue;
    }
    detectors::DiagnosticEngine DetDiags;
    try {
      if (fault::shouldFail("engine.detector"))
        throw std::runtime_error("injected fault at probe engine.detector");
      D->run(Ctx, DetDiags);
      DetDiags.sort();
      O.Findings = DetDiags.count();
      for (const detectors::Diagnostic &Diag : DetDiags.diagnostics())
        FileDiags.report(Diag);
      if (Ctx.anyDegraded()) {
        O.Status = EngineStatus::Degraded;
        O.Note = Ctx.summariesComplete()
                     ? "analysis budget exhausted; findings may be incomplete"
                     : "interprocedural summaries truncated; per-function "
                       "results only";
      }
    } catch (const std::exception &E) {
      // The containment boundary: a buggy (or fault-injected) detector is
      // quarantined — its partial findings are dropped so the report never
      // mixes trustworthy and half-computed results — and the battery
      // continues.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string("quarantined: ") + E.what();
      O.Findings = 0;
      AnyQuarantined = true;
    } catch (...) {
      O.Status = EngineStatus::Skipped;
      O.Note = "quarantined: unknown fault";
      O.Findings = 0;
      AnyQuarantined = true;
    }
    R.Detectors.push_back(std::move(O));
  }

  FileDiags.sort();
  R.Findings = FileDiags.take();

  // Fold the stage outcomes into the file status.
  std::vector<std::string> Reasons;
  if (!R.ParseErrors.empty())
    Reasons.push_back(std::to_string(R.ItemsDropped) +
                      " malformed item(s) dropped by parser recovery");
  if (Ctx.anyDegraded())
    Reasons.push_back("analysis budget exhausted; precision degraded");
  if (AnyBudgetSkip)
    Reasons.push_back("budget exhausted: detector(s) skipped");
  if (AnyQuarantined)
    Reasons.push_back("detector fault(s) quarantined");

  bool AnyDetectorRan = Detectors.empty();
  for (const DetectorOutcome &O : R.Detectors)
    AnyDetectorRan |= O.Status != EngineStatus::Skipped;

  std::string Joined;
  for (const std::string &Reason : Reasons)
    Joined += (Joined.empty() ? "" : "; ") + Reason;

  if (!AnyDetectorRan) {
    R.Status = EngineStatus::Skipped;
    R.Reason = Joined.empty() ? "all detectors skipped" : Joined;
  } else if (!Reasons.empty()) {
    R.Status = EngineStatus::Degraded;
    R.Reason = Joined;
  } else {
    R.Status = EngineStatus::Ok;
  }
}

/// Converts a recoverable pipeline error into the file-level diagnostic
/// shape shared by every renderer.
static diag::Diagnostic errorDiagnostic(diag::RuleId Rule, const Error &E) {
  diag::Diagnostic D(Rule);
  D.Message = E.message();
  D.Loc = E.location();
  return D;
}

/// Applies `// rustsight-allow(...)` comments: drops the findings they
/// cover (keeping the per-detector counts honest via the rule table's
/// detector column) and surfaces unknown rule spellings as RS-META-001
/// warnings with a machine-applicable comment rewrite.
static void applySuppressions(std::string_view Source, FileReport &R) {
  diag::SuppressionSet Supp = diag::scanSuppressions(Source);
  if (Supp.empty())
    return;
  const std::string *File = internFileName(R.Path);
  for (const diag::UnknownSuppression &U : Supp.Unknown) {
    diag::Diagnostic D(diag::RuleId::UnknownSuppression);
    D.Message =
        "unknown rule '" + U.Token + "' in rustsight-allow comment";
    D.Loc = SourceLocation(File, U.Line, U.Col);
    diag::FixIt Fix;
    Fix.Loc = SourceLocation(File, U.Line, 1);
    Fix.Replacement = U.FixedLine;
    Fix.Description = "drop the unknown rule from the allow list";
    D.Fixes.push_back(std::move(Fix));
    R.Notices.push_back(std::move(D));
  }
  if (Supp.ByLine.empty())
    return;
  std::vector<diag::Diagnostic> Kept;
  Kept.reserve(R.Findings.size());
  for (diag::Diagnostic &D : R.Findings) {
    if (D.Loc.isValid() && Supp.allows(D.Kind, D.Loc.line())) {
      ++R.SuppressedFindings;
      for (DetectorOutcome &O : R.Detectors)
        if (O.Name == diag::ruleInfo(D.Kind).Detector && O.Findings != 0) {
          --O.Findings;
          break;
        }
    } else {
      Kept.push_back(std::move(D));
    }
  }
  R.Findings = std::move(Kept);
}

FileReport AnalysisEngine::analyzeSource(std::string_view Source,
                                         std::string Name) {
  return analyzeSourceImpl(Source, std::move(Name), /*StoreSnapshot=*/false,
                           /*SnapKey=*/0, /*Fingerprint=*/0, /*Ext=*/nullptr);
}

FileReport
AnalysisEngine::analyzeSourceImpl(std::string_view Source, std::string Name,
                                  bool StoreSnapshot, uint64_t SnapKey,
                                  uint64_t Fingerprint,
                                  const analysis::ExternalSummaries *Ext) {
  FileReport R;
  R.Path = std::move(Name);
  try {
    if (fault::shouldFail("engine.parse"))
      throw std::runtime_error("injected fault at probe engine.parse");
    mir::ModuleParse P = mir::Parser::parseRecover(Source, R.Path);
    for (const Error &E : P.Errors)
      R.ParseErrors.push_back(errorDiagnostic(diag::RuleId::ParseError, E));
    R.ItemsDropped = P.ItemsDropped;
    if (!P.Errors.empty() && P.M.functions().empty() &&
        P.M.structs().empty() && P.M.statics().empty()) {
      R.Status = EngineStatus::Skipped;
      R.Reason = "no parseable items: " + P.Errors.front().toString();
      return R;
    }

    if (fault::shouldFail("engine.verify"))
      throw std::runtime_error("injected fault at probe engine.verify");
    std::vector<Error> VErr;
    if (!mir::verifyModule(P.M, VErr)) {
      for (const Error &E : VErr)
        R.VerifierErrors.push_back(
            errorDiagnostic(diag::RuleId::VerifyError, E));
      R.Status = EngineStatus::Skipped;
      R.Reason = "verifier rejected module: " + VErr.front().toString();
      return R;
    }

    // Only a fully clean parse is worth snapshotting: a recovered parse
    // carries ParseErrors/ItemsDropped that a snapshot-served report could
    // not reproduce.
    if (StoreSnapshot && Cache && P.Errors.empty())
      Cache->storeBlob(SnapKey, mir::snapshot::write(P.M, Fingerprint));

    runDetectors(P.M, R, Ext);
    applySuppressions(Source, R);
  } catch (const std::exception &E) {
    R.Status = EngineStatus::Skipped;
    R.Reason = std::string("engine fault contained: ") + E.what();
    R.Detectors.clear();
    R.Findings.clear();
    R.Notices.clear();
    R.SuppressedFindings = 0;
  } catch (...) {
    R.Status = EngineStatus::Skipped;
    R.Reason = "engine fault contained: unknown exception";
    R.Detectors.clear();
    R.Findings.clear();
    R.Notices.clear();
    R.SuppressedFindings = 0;
  }
  return R;
}

FileReport
AnalysisEngine::analyzeParsedModule(const mir::Module &M,
                                    std::string_view Source, std::string Name,
                                    const analysis::ExternalSummaries *Ext) {
  FileReport R;
  R.Path = std::move(Name);
  try {
    runDetectors(M, R, Ext);
    applySuppressions(Source, R);
  } catch (const std::exception &E) {
    R.Status = EngineStatus::Skipped;
    R.Reason = std::string("engine fault contained: ") + E.what();
    R.Detectors.clear();
    R.Findings.clear();
    R.Notices.clear();
    R.SuppressedFindings = 0;
  } catch (...) {
    R.Status = EngineStatus::Skipped;
    R.Reason = "engine fault contained: unknown exception";
    R.Detectors.clear();
    R.Findings.clear();
    R.Notices.clear();
    R.SuppressedFindings = 0;
  }
  return R;
}

FileReport AnalysisEngine::analyzeFile(const std::string &Path) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    // An ifstream on a directory reads as empty on some platforms, which
    // would masquerade as a clean empty module.
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "is a directory";
    return R;
  }
  std::ifstream In(Path);
  if (!In) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return analyzeSource(Buf.str(), Path);
}

//===----------------------------------------------------------------------===//
// Cache key derivation and report serialization
//===----------------------------------------------------------------------===//

/// The FileReport serialization schema version, shared with --version and
/// the serve daemon's serverInfo via diag/Version.h. It feeds the cache
/// salt, so old entries stop matching instead of misparsing.
static constexpr uint64_t ReportSchemaVersion = version::ReportSchemaVersion;

namespace {

/// 8-byte-chunk multiply-fold over canonical bytes, the same family as
/// the snapshot body checksum. Hashing every source is the unavoidable
/// price of content addressing, so on a warm corpus this sits directly
/// on the report-hit path; chunking buys most of an order of magnitude
/// over byte-at-a-time FNV.
uint64_t hashCanonicalBytes(std::string_view Bytes) {
  constexpr uint64_t M = 0x9e3779b97f4a7c15ull;
  uint64_t H =
      Fnv1a64OffsetBasis ^ (static_cast<uint64_t>(Bytes.size()) * M);
  size_t I = 0;
  for (; I + 8 <= Bytes.size(); I += 8) {
    uint64_t Chunk;
    std::memcpy(&Chunk, Bytes.data() + I, 8);
    H = (H ^ Chunk) * M;
  }
  uint64_t Tail = 0;
  for (unsigned Shift = 0; I < Bytes.size(); ++I, Shift += 8)
    Tail |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[I]))
            << Shift;
  H = (H ^ Tail) * M;
  H ^= H >> 32;
  H *= M;
  H ^= H >> 29;
  return H;
}

} // namespace

uint64_t rs::engine::fingerprintSource(std::string_view Source) {
  // Canonicalize CRLF -> LF so checkouts differing only in line endings
  // share cache entries. Sources without a '\r' — the overwhelmingly
  // common case — hash in 8-byte chunks straight off the buffer; any
  // '\r' takes the materialize-then-hash path so both spellings of the
  // same canonical bytes agree (a lone '\r' is content and is kept).
  if (Source.find('\r') == std::string_view::npos)
    return hashCanonicalBytes(Source);
  std::string Canon;
  Canon.reserve(Source.size());
  for (size_t I = 0; I < Source.size(); ++I)
    if (!(Source[I] == '\r' && I + 1 < Source.size() &&
          Source[I + 1] == '\n'))
      Canon.push_back(Source[I]);
  return hashCanonicalBytes(Canon);
}

uint64_t rs::engine::cacheSalt(const EngineOptions &Opts,
                               const std::vector<std::string> &DetectorNames) {
  uint64_t H = fnv1a64("rustsight-filereport");
  H = fnv1a64U64(ReportSchemaVersion, H);
  for (const std::string &Name : DetectorNames) {
    H = fnv1a64(Name, H);
    H = fnv1a64("\n", H); // Separator: {"ab"} must differ from {"a","b"}.
  }
  H = fnv1a64U64(Opts.BudgetMs, H);
  H = fnv1a64U64(Opts.MaxFileSteps, H);
  H = fnv1a64U64(Opts.MaxDataflowIters, H);
  H = fnv1a64U64(Opts.MaxSummaryRounds, H);
  return H;
}

uint64_t rs::engine::cacheKey(uint64_t SourceFingerprint, uint64_t Salt) {
  return fnv1a64U64(SourceFingerprint, Salt);
}

uint64_t rs::engine::snapshotCacheKey(uint64_t SourceFingerprint) {
  uint64_t H = fnv1a64("rustsight-mir-snapshot");
  H = fnv1a64U64(mir::snapshot::SnapshotSchemaVersion, H);
  H = fnv1a64U64(Symbol::EpochVersion, H);
  return fnv1a64U64(SourceFingerprint, H);
}

namespace {

bool severityFromName(std::string_view Name, diag::Severity &Out) {
  if (Name == "error")
    Out = diag::Severity::Error;
  else if (Name == "warning")
    Out = diag::Severity::Warning;
  else if (Name == "note")
    Out = diag::Severity::Note;
  else
    return false;
  return true;
}

/// Writes one diagnostic into the cache payload. The primary location's
/// file name is omitted: it re-anchors to whatever path the content shows
/// up at on the way back in (fingerprints are recomputed from the
/// re-anchored locations, so they follow). Secondary spans and fix-its
/// carry an explicit "file" only when they point into a counterpart file
/// (whole-program link findings, schema v4) — those names are corpus
/// identities and must survive the round trip verbatim.
void writeCounterpartFile(JsonWriter &W, const SourceLocation &Loc,
                          const std::string &OwnPath) {
  if (Loc.isValid() && !Loc.file().empty() && Loc.file() != OwnPath)
    W.field("file", Loc.file());
}

void writeCachedDiagnostic(JsonWriter &W, const diag::Diagnostic &D,
                           const std::string &OwnPath) {
  W.beginObject();
  W.field("rule", diag::ruleStringId(D.Kind));
  W.field("severity", diag::severityName(D.Sev));
  W.field("function", D.Function);
  W.field("block", static_cast<int64_t>(D.Block));
  W.field("statement", static_cast<int64_t>(D.StmtIndex));
  W.field("message", D.Message);
  W.field("line", static_cast<int64_t>(D.Loc.line()));
  W.field("col", static_cast<int64_t>(D.Loc.column()));
  if (!D.Secondary.empty()) {
    W.key("secondary");
    W.beginArray();
    for (const diag::Span &S : D.Secondary) {
      W.beginObject();
      W.field("line", static_cast<int64_t>(S.Loc.line()));
      W.field("col", static_cast<int64_t>(S.Loc.column()));
      writeCounterpartFile(W, S.Loc, OwnPath);
      if (!S.Function.empty())
        W.field("function", S.Function);
      W.field("label", S.Label);
      W.endObject();
    }
    W.endArray();
  }
  if (!D.Notes.empty()) {
    W.key("notes");
    W.beginArray();
    for (const std::string &N : D.Notes)
      W.value(N);
    W.endArray();
  }
  if (!D.Fixes.empty()) {
    W.key("fixes");
    W.beginArray();
    for (const diag::FixIt &F : D.Fixes) {
      W.beginObject();
      W.field("line", static_cast<int64_t>(F.Loc.line()));
      W.field("col", static_cast<int64_t>(F.Loc.column()));
      writeCounterpartFile(W, F.Loc, OwnPath);
      W.field("replacement", F.Replacement);
      W.field("description", F.Description);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
}

SourceLocation cachedLoc(const JsonValue &V, const std::string *File) {
  unsigned Line = static_cast<unsigned>(V.getInt("line"));
  unsigned Col = static_cast<unsigned>(V.getInt("col"));
  if (Line == 0)
    return SourceLocation();
  // An explicit "file" is a counterpart-file span (schema v4): keep it
  // verbatim instead of re-anchoring to the report's own path.
  std::string_view Counterpart = V.getString("file");
  if (!Counterpart.empty())
    File = internFileName(std::string(Counterpart));
  return SourceLocation(File, Line, Col);
}

bool readCachedDiagnostic(const JsonValue &V, const std::string *File,
                          diag::Diagnostic &D) {
  if (!V.isObject())
    return false;
  if (!diag::ruleFromString(V.getString("rule"), D.Kind))
    return false;
  if (!severityFromName(V.getString("severity"), D.Sev))
    return false;
  D.Function = V.getString("function");
  D.Block = static_cast<mir::BlockId>(V.getInt("block"));
  D.StmtIndex = static_cast<size_t>(V.getInt("statement"));
  D.Message = V.getString("message");
  D.Loc = cachedLoc(V, File);
  if (const JsonValue *Spans = V.get("secondary")) {
    if (!Spans->isArray())
      return false;
    for (const JsonValue &S : Spans->elements()) {
      if (!S.isObject())
        return false;
      diag::Span Span;
      Span.Loc = cachedLoc(S, File);
      Span.Function = S.getString("function");
      Span.Label = S.getString("label");
      D.Secondary.push_back(std::move(Span));
    }
  }
  if (const JsonValue *Notes = V.get("notes")) {
    if (!Notes->isArray())
      return false;
    for (const JsonValue &N : Notes->elements())
      D.Notes.push_back(N.isString() ? N.asString() : std::string());
  }
  if (const JsonValue *Fixes = V.get("fixes")) {
    if (!Fixes->isArray())
      return false;
    for (const JsonValue &FV : Fixes->elements()) {
      if (!FV.isObject())
        return false;
      diag::FixIt F;
      F.Loc = cachedLoc(FV, File);
      F.Replacement = FV.getString("replacement");
      F.Description = FV.getString("description");
      D.Fixes.push_back(std::move(F));
    }
  }
  return true;
}

} // namespace

std::string rs::engine::serializeFileReport(const FileReport &R) {
  JsonWriter W;
  W.beginObject();
  W.field("v", static_cast<int64_t>(ReportSchemaVersion));
  W.key("detectors");
  W.beginArray();
  for (const DetectorOutcome &D : R.Detectors) {
    W.beginObject();
    W.field("name", D.Name);
    W.field("findings", static_cast<int64_t>(D.Findings));
    W.endObject();
  }
  W.endArray();
  W.key("findings");
  W.beginArray();
  for (const detectors::Diagnostic &D : R.Findings)
    writeCachedDiagnostic(W, D, R.Path);
  W.endArray();
  if (!R.Notices.empty()) {
    W.key("notices");
    W.beginArray();
    for (const diag::Diagnostic &D : R.Notices)
      writeCachedDiagnostic(W, D, R.Path);
    W.endArray();
  }
  if (R.SuppressedFindings != 0)
    W.field("suppressed", static_cast<int64_t>(R.SuppressedFindings));
  W.endObject();
  return W.str();
}

std::optional<FileReport>
rs::engine::deserializeFileReport(std::string_view Payload,
                                  const std::string &Path) {
  std::optional<JsonValue> Doc = JsonValue::parse(Payload);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  if (Doc->getInt("v", -1) != static_cast<int64_t>(ReportSchemaVersion))
    return std::nullopt;
  const JsonValue *Dets = Doc->get("detectors");
  const JsonValue *Finds = Doc->get("findings");
  if (!Dets || !Dets->isArray() || !Finds || !Finds->isArray())
    return std::nullopt;

  FileReport R;
  R.Path = Path;
  R.Status = EngineStatus::Ok; // Only clean reports are ever cached.
  for (const JsonValue &D : Dets->elements()) {
    if (!D.isObject())
      return std::nullopt;
    DetectorOutcome O;
    O.Name = D.getString("name");
    O.Status = EngineStatus::Ok;
    O.Findings = static_cast<size_t>(D.getInt("findings"));
    R.Detectors.push_back(std::move(O));
  }
  const std::string *File = internFileName(Path);
  for (const JsonValue &F : Finds->elements()) {
    detectors::Diagnostic D;
    if (!readCachedDiagnostic(F, File, D))
      return std::nullopt;
    R.Findings.push_back(std::move(D));
  }
  if (const JsonValue *Notices = Doc->get("notices")) {
    if (!Notices->isArray())
      return std::nullopt;
    for (const JsonValue &N : Notices->elements()) {
      diag::Diagnostic D;
      if (!readCachedDiagnostic(N, File, D))
        return std::nullopt;
      R.Notices.push_back(std::move(D));
    }
  }
  R.SuppressedFindings = static_cast<size_t>(Doc->getInt("suppressed", 0));
  return R;
}

//===----------------------------------------------------------------------===//
// Wire serialization (worker protocol + checkpoint journal)
//===----------------------------------------------------------------------===//

namespace {

bool engineStatusFromName(std::string_view Name, EngineStatus &Out) {
  if (Name == "ok")
    Out = EngineStatus::Ok;
  else if (Name == "degraded")
    Out = EngineStatus::Degraded;
  else if (Name == "skipped")
    Out = EngineStatus::Skipped;
  else
    return false;
  return true;
}

bool readWireDiagnostics(const JsonValue *Arr, const std::string *File,
                         std::vector<diag::Diagnostic> &Out) {
  if (!Arr)
    return true; // Absent array == empty.
  if (!Arr->isArray())
    return false;
  for (const JsonValue &V : Arr->elements()) {
    diag::Diagnostic D;
    if (!readCachedDiagnostic(V, File, D))
      return false;
    Out.push_back(std::move(D));
  }
  return true;
}

} // namespace

std::string rs::engine::serializeWireFileReport(const FileReport &R) {
  JsonWriter W;
  W.beginObject();
  W.field("v", static_cast<int64_t>(ReportSchemaVersion));
  W.field("path", R.Path);
  W.field("status", engineStatusName(R.Status));
  if (!R.Reason.empty())
    W.field("reason", R.Reason);
  if (R.ItemsDropped != 0)
    W.field("items_dropped", static_cast<int64_t>(R.ItemsDropped));
  if (R.SuppressedFindings != 0)
    W.field("suppressed", static_cast<int64_t>(R.SuppressedFindings));
  if (R.BaselinedFindings != 0)
    W.field("baselined", static_cast<int64_t>(R.BaselinedFindings));
  auto WriteDiags = [&](const char *Key,
                        const std::vector<diag::Diagnostic> &Diags) {
    if (Diags.empty())
      return;
    W.key(Key);
    W.beginArray();
    for (const diag::Diagnostic &D : Diags)
      writeCachedDiagnostic(W, D, R.Path);
    W.endArray();
  };
  WriteDiags("parse_errors", R.ParseErrors);
  WriteDiags("verifier_errors", R.VerifierErrors);
  WriteDiags("notices", R.Notices);
  W.key("detectors");
  W.beginArray();
  for (const DetectorOutcome &D : R.Detectors) {
    W.beginObject();
    W.field("name", D.Name);
    W.field("status", engineStatusName(D.Status));
    if (!D.Note.empty())
      W.field("note", D.Note);
    W.field("findings", static_cast<int64_t>(D.Findings));
    W.endObject();
  }
  W.endArray();
  WriteDiags("findings", R.Findings);
  W.endObject();
  return W.str();
}

std::optional<FileReport>
rs::engine::fileReportFromJson(const JsonValue &Doc) {
  if (!Doc.isObject())
    return std::nullopt;
  if (Doc.getInt("v", -1) != static_cast<int64_t>(ReportSchemaVersion))
    return std::nullopt;
  FileReport R;
  R.Path = std::string(Doc.getString("path"));
  if (R.Path.empty())
    return std::nullopt;
  if (!engineStatusFromName(Doc.getString("status"), R.Status))
    return std::nullopt;
  R.Reason = std::string(Doc.getString("reason"));
  R.ItemsDropped = static_cast<unsigned>(Doc.getInt("items_dropped", 0));
  R.SuppressedFindings = static_cast<size_t>(Doc.getInt("suppressed", 0));
  R.BaselinedFindings = static_cast<size_t>(Doc.getInt("baselined", 0));

  const std::string *File = internFileName(R.Path);
  if (!readWireDiagnostics(Doc.get("parse_errors"), File, R.ParseErrors) ||
      !readWireDiagnostics(Doc.get("verifier_errors"), File,
                           R.VerifierErrors) ||
      !readWireDiagnostics(Doc.get("notices"), File, R.Notices) ||
      !readWireDiagnostics(Doc.get("findings"), File, R.Findings))
    return std::nullopt;

  const JsonValue *Dets = Doc.get("detectors");
  if (!Dets || !Dets->isArray())
    return std::nullopt;
  for (const JsonValue &D : Dets->elements()) {
    if (!D.isObject())
      return std::nullopt;
    DetectorOutcome O;
    O.Name = std::string(D.getString("name"));
    if (!engineStatusFromName(D.getString("status"), O.Status))
      return std::nullopt;
    O.Note = std::string(D.getString("note"));
    O.Findings = static_cast<size_t>(D.getInt("findings"));
    R.Detectors.push_back(std::move(O));
  }
  return R;
}

std::optional<FileReport>
rs::engine::deserializeWireFileReport(std::string_view Payload) {
  std::optional<JsonValue> Doc = JsonValue::parse(Payload);
  if (!Doc)
    return std::nullopt;
  return fileReportFromJson(*Doc);
}

//===----------------------------------------------------------------------===//
// The parallel corpus driver
//===----------------------------------------------------------------------===//

void AnalysisEngine::ensureCache() {
  if (!Opts.UseCache) {
    Cache.reset();
    return;
  }
  if (Cache)
    return;
  sched::ResultCache::Options O;
  O.MaxMemoryEntries = Opts.CacheMaxEntries;
  O.DiskDir = Opts.CacheDir;
  Cache = std::make_unique<sched::ResultCache>(std::move(O));
}

void AnalysisEngine::ensureSummaryDb() {
  if (!Opts.UseCache) {
    SummaryDbPtr.reset();
    return;
  }
  if (SummaryDbPtr)
    return;
  sched::SummaryDb::Options O;
  O.DiskDir = Opts.CacheDir; // Shared root; addresses are salted apart.
  O.SchemaOverride = Opts.SummaryDbSchemaOverride;
  SummaryDbPtr = std::make_unique<sched::SummaryDb>(std::move(O));
}

std::vector<std::string> AnalysisEngine::detectorNames() {
  std::vector<std::string> Names;
  std::vector<std::unique_ptr<detectors::Detector>> Detectors =
      Factory ? Factory() : detectors::makeAllDetectors();
  Names.reserve(Detectors.size());
  for (const auto &D : Detectors)
    Names.emplace_back(D->name());
  return Names;
}

FileReport AnalysisEngine::analyzeFileThroughCache(const std::string &Path) {
  ensureCache();
  return analyzeFileCached(Path, cacheSalt(Opts, detectorNames()));
}

FileReport AnalysisEngine::analyzeFileThroughCacheLinked(
    const std::string &Path, const analysis::ExternalSummaries &Env,
    uint64_t LinkDigest) {
  ensureCache();
  return analyzeFileCached(Path, cacheSalt(Opts, detectorNames()), &Env,
                           LinkDigest);
}

std::optional<analysis::ModuleFacts>
AnalysisEngine::collectFileFacts(const std::string &Path) {
  ensureCache();
  std::optional<mir::Module> M = loadModuleForLink(Path, nullptr, nullptr);
  if (!M)
    return std::nullopt;
  return analysis::collectModuleFacts(*M, Path);
}

std::optional<analysis::ModuleSummaries>
AnalysisEngine::summarizeFileForLink(const std::string &Path,
                                     uint32_t ModuleIdx,
                                     const analysis::ExternalSummaries &Env) {
  ensureCache();
  std::optional<mir::Module> M = loadModuleForLink(Path, nullptr, nullptr);
  if (!M)
    return std::nullopt;
  try {
    return analysis::summarizeLinkedModule(
        *M, ModuleIdx, Env,
        Opts.MaxSummaryRounds ? Opts.MaxSummaryRounds : 8);
  } catch (...) {
    // Containment: a summarization fault degrades this module to "no
    // contribution" rather than killing the run; the solver treats a
    // missing round result as unchanged.
    return std::nullopt;
  }
}

FileReport AnalysisEngine::analyzeSourceThroughCache(std::string_view Source,
                                                     const std::string &Path) {
  ensureCache();
  if (!Cache)
    return analyzeSource(Source, Path);
  uint64_t Fp = fingerprintSource(Source);
  uint64_t Key = cacheKey(Fp, cacheSalt(Opts, detectorNames()));
  if (std::optional<std::string> Payload = Cache->lookup(Key))
    if (std::optional<FileReport> R = deserializeFileReport(*Payload, Path))
      return std::move(*R);

  // Report miss: try the parsed-MIR snapshot layer before touching the
  // Lexer/Parser. A defective snapshot is a miss, never an error.
  uint64_t SnapKey = snapshotCacheKey(Fp);
  // lookupBlobRef maps the envelope in place; the snapshot decoder's
  // string table borrows the mapped bytes until the Module owns its data.
  if (std::optional<sched::ResultCache::BlobRef> Blob =
          Cache->lookupBlobRef(SnapKey)) {
    if (std::optional<mir::Module> M =
            mir::snapshot::read(Blob->bytes(), &Fp)) {
      FileReport R = analyzeParsedModule(*M, Source, Path, nullptr);
      if (R.Status == EngineStatus::Ok)
        Cache->store(Key, serializeFileReport(R));
      return R;
    }
  }

  FileReport R = analyzeSourceImpl(Source, Path, /*StoreSnapshot=*/true,
                                   SnapKey, Fp, /*Ext=*/nullptr);
  if (R.Status == EngineStatus::Ok)
    Cache->store(Key, serializeFileReport(R));
  return R;
}

FileReport AnalysisEngine::analyzeFileCached(const std::string &Path,
                                             uint64_t Salt,
                                             const analysis::ExternalSummaries *Ext,
                                             uint64_t LinkDigest) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "is a directory";
    return R;
  }
  std::ifstream In(Path);
  if (!In) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  if (!Cache) {
    FileReport R = analyzeSourceImpl(Source, Path, /*StoreSnapshot=*/false,
                                     /*SnapKey=*/0, /*Fingerprint=*/0, Ext);
    return R;
  }

  uint64_t Fp = fingerprintSource(Source);
  // A linked file folds its link digest into the key: a change to a callee
  // body in another corpus file must invalidate this file's entry even
  // though this file's bytes are unchanged. Leaf files (digest 0) keep
  // sharing entries with per-file runs.
  uint64_t Key = cacheKey(Fp, Salt);
  if (LinkDigest != 0)
    Key = fnv1a64U64(LinkDigest, Key);
  if (std::optional<std::string> Payload = Cache->lookup(Key))
    if (std::optional<FileReport> R = deserializeFileReport(*Payload, Path))
      return std::move(*R);

  // Report miss: a parsed-MIR snapshot (keyed by content only, not by the
  // detector salt) lets us run detectors without lexing or parsing — the
  // common case after a detector or option change, and the whole point of
  // the binary snapshot layer on a cold disk-warm corpus.
  uint64_t SnapKey = snapshotCacheKey(Fp);
  if (std::optional<sched::ResultCache::BlobRef> Blob =
          Cache->lookupBlobRef(SnapKey)) {
    if (std::optional<mir::Module> M =
            mir::snapshot::read(Blob->bytes(), &Fp)) {
      FileReport R = analyzeParsedModule(*M, Source, Path, Ext);
      if (R.Status == EngineStatus::Ok)
        Cache->store(Key, serializeFileReport(R));
      return R;
    }
  }

  FileReport R = analyzeSourceImpl(Source, Path, /*StoreSnapshot=*/true,
                                   SnapKey, Fp, Ext);
  // Only clean results are cached: degraded/skipped outcomes depend on
  // wall-clock budgets and embed path-bearing error text, neither of which
  // belongs in a content-addressed entry.
  if (R.Status == EngineStatus::Ok)
    Cache->store(Key, serializeFileReport(R));
  return R;
}

std::optional<mir::Module>
AnalysisEngine::loadModuleForLink(const std::string &Path,
                                  std::string *SourceOut, uint64_t *FpOut) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec))
    return std::nullopt;
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();
  uint64_t Fp = fingerprintSource(Source);
  uint64_t SnapKey = snapshotCacheKey(Fp);

  std::optional<mir::Module> M;
  if (Cache)
    if (std::optional<sched::ResultCache::BlobRef> Blob =
            Cache->lookupBlobRef(SnapKey))
      M = mir::snapshot::read(Blob->bytes(), &Fp);
  if (!M) {
    try {
      if (fault::shouldFail("engine.parse"))
        throw std::runtime_error("injected fault at probe engine.parse");
      mir::ModuleParse P = mir::Parser::parseRecover(Source, Path);
      // Only a fully clean module joins the link: recovered parses carry
      // dropped items a linked summary must not pretend to cover. Such
      // files fall back to the per-file pipeline, which reports them with
      // its usual recovery/skip statuses.
      if (!P.Errors.empty())
        return std::nullopt;
      if (fault::shouldFail("engine.verify"))
        throw std::runtime_error("injected fault at probe engine.verify");
      std::vector<Error> VErr;
      if (!mir::verifyModule(P.M, VErr))
        return std::nullopt;
      if (Cache)
        Cache->storeBlob(SnapKey, mir::snapshot::write(P.M, Fp));
      M = std::move(P.M);
    } catch (...) {
      return std::nullopt;
    }
  }
  if (SourceOut)
    *SourceOut = std::move(Source);
  if (FpOut)
    *FpOut = Fp;
  return M;
}

CorpusReport AnalysisEngine::analyzeCorpus(const std::vector<std::string> &Paths) {
  auto Start = std::chrono::steady_clock::now();

  std::vector<corpus::CorpusInput> Inputs = corpus::expandMirPaths(Paths);

  size_t Analyzable = 0;
  for (const corpus::CorpusInput &In : Inputs)
    Analyzable += In.SkipReason.empty();
  bool Linked = Opts.WholeProgram == WholeProgramMode::On ||
                (Opts.WholeProgram == WholeProgramMode::Auto && Analyzable > 1);
  if (Linked)
    return analyzeCorpusLinked(std::move(Inputs), Start);

  CorpusReport Report;
  Report.Files.resize(Inputs.size());

  ensureCache();
  sched::ResultCache::Stats Before;
  if (Cache)
    Before = Cache->stats();
  const uint64_t Salt = cacheSalt(Opts, detectorNames());

  // Each task owns exactly slot I of the report — the deterministic merge:
  // results land by input ordinal, never by completion order.
  auto ProcessOne = [&](size_t I) {
    const corpus::CorpusInput &In = Inputs[I];
    if (!In.SkipReason.empty()) {
      FileReport R;
      R.Path = In.Path;
      R.Status = EngineStatus::Skipped;
      R.Reason = In.SkipReason;
      Report.Files[I] = std::move(R);
      return;
    }
    Report.Files[I] = analyzeFileCached(In.Path, Salt);
  };

  unsigned Jobs =
      Opts.Jobs == 0 ? sched::ThreadPool::defaultWorkerCount() : Opts.Jobs;
  if (Jobs > Inputs.size() && !Inputs.empty())
    Jobs = unsigned(Inputs.size());
  if (Jobs <= 1) {
    Jobs = 1;
    for (size_t I = 0; I != Inputs.size(); ++I)
      ProcessOne(I);
  } else {
    sched::ThreadPool Pool(Jobs);
    sched::parallelFor(Pool, Inputs.size(), ProcessOne);
  }

  Report.finalize();

  Report.Stats.Jobs = Jobs;
  Report.Stats.WallMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  Report.Stats.CacheEnabled = Cache != nullptr;
  if (Cache) {
    sched::ResultCache::Stats After = Cache->stats();
    Report.Stats.CacheHits = After.Hits - Before.Hits;
    Report.Stats.CacheMisses = After.Misses - Before.Misses;
    Report.Stats.CacheEvictions = After.Evictions - Before.Evictions;
    Report.Stats.DiskHits = After.DiskHits - Before.DiskHits;
    Report.Stats.CorruptEntries =
        After.CorruptEntries - Before.CorruptEntries;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// The whole-program (linked) corpus driver
//===----------------------------------------------------------------------===//

CorpusReport AnalysisEngine::analyzeCorpusLinked(
    std::vector<corpus::CorpusInput> Inputs,
    std::chrono::steady_clock::time_point Start) {
  CorpusReport Report;
  Report.Files.resize(Inputs.size());

  ensureCache();
  ensureSummaryDb();
  sched::ResultCache::Stats Before;
  if (Cache)
    Before = Cache->stats();
  const uint64_t Salt = cacheSalt(Opts, detectorNames());
  const unsigned MaxRounds = Opts.MaxSummaryRounds ? Opts.MaxSummaryRounds : 8;

  unsigned Jobs =
      Opts.Jobs == 0 ? sched::ThreadPool::defaultWorkerCount() : Opts.Jobs;
  if (Jobs > Inputs.size() && !Inputs.empty())
    Jobs = unsigned(Inputs.size());
  if (Jobs < 1)
    Jobs = 1;
  auto RunParallel = [&](size_t N, const std::function<void(size_t)> &Fn) {
    if (N == 0)
      return;
    if (Jobs <= 1 || N == 1) {
      for (size_t I = 0; I != N; ++I)
        Fn(I);
      return;
    }
    sched::ThreadPool Pool(Jobs > N ? unsigned(N) : Jobs);
    sched::parallelFor(Pool, N, Fn);
  };

  // Phase A: load every analyzable input once. Only fully clean modules
  // (parse without recovery, verifier pass) join the link; the rest take
  // the per-file pipeline in phase C so their recovery/skip reporting is
  // byte-identical to a per-file run.
  struct LoadedModule {
    std::optional<mir::Module> M;
    std::string Source;
    uint64_t Fp = 0;
  };
  std::vector<LoadedModule> Mods(Inputs.size());
  RunParallel(Inputs.size(), [&](size_t I) {
    if (!Inputs[I].SkipReason.empty())
      return;
    Mods[I].M =
        loadModuleForLink(Inputs[I].Path, &Mods[I].Source, &Mods[I].Fp);
  });

  // Phase B: link. Facts are collected in input order — the determinism
  // anchor the first-definition-wins rule and the shard fleet both key on.
  std::vector<analysis::ModuleFacts> Facts;
  std::vector<size_t> LinkInput; // Module index -> input ordinal.
  std::vector<uint32_t> InputModule(Inputs.size(), UINT32_MAX);
  for (size_t I = 0; I != Inputs.size(); ++I)
    if (Mods[I].M) {
      InputModule[I] = static_cast<uint32_t>(Facts.size());
      Facts.push_back(analysis::collectModuleFacts(*Mods[I].M, Inputs[I].Path));
      LinkInput.push_back(I);
    }

  analysis::LinkOptions LO;
  LO.MaxSummaryRounds = MaxRounds;
  analysis::LinkDbHooks Hooks;
  if (SummaryDbPtr) {
    Hooks.Lookup = [this](uint64_t K) { return SummaryDbPtr->lookup(K); };
    Hooks.Store = [this](uint64_t K, std::string_view P) {
      SummaryDbPtr->store(K, P);
    };
  }
  analysis::SummarizeRoundFn Summarize =
      [&](const std::vector<uint32_t> &ModuleIdxs,
          const analysis::ExternalSummaries &Env) {
        std::vector<analysis::ModuleSummaries> Out(ModuleIdxs.size());
        RunParallel(ModuleIdxs.size(), [&](size_t I) {
          uint32_t MIdx = ModuleIdxs[I];
          Out[I].ModuleIdx = MIdx;
          try {
            Out[I] = analysis::summarizeLinkedModule(
                *Mods[LinkInput[MIdx]].M, MIdx, Env, MaxRounds);
          } catch (...) {
            // Contained: this module contributes nothing this round and
            // its summaries are never persisted.
            Out[I].Functions.clear();
            Out[I].Complete = false;
          }
        });
        return Out;
      };

  analysis::LinkResult LR = analysis::solveLink(
      analysis::LinkedCorpus::build(std::move(Facts)), LO, Hooks, Summarize);

  // Phase C: analyze every file. Linked files consume the converged
  // environment (their detectors see callee summaries from other files)
  // under a digest-folded cache key; everything else takes the plain
  // per-file path.
  RunParallel(Inputs.size(), [&](size_t I) {
    const corpus::CorpusInput &In = Inputs[I];
    if (!In.SkipReason.empty()) {
      FileReport R;
      R.Path = In.Path;
      R.Status = EngineStatus::Skipped;
      R.Reason = In.SkipReason;
      Report.Files[I] = std::move(R);
      return;
    }
    if (InputModule[I] == UINT32_MAX) {
      Report.Files[I] = analyzeFileCached(In.Path, Salt);
      return;
    }
    uint32_t MIdx = InputModule[I];
    uint64_t Digest = LR.Corpus.linkDigest(MIdx);
    uint64_t Key = cacheKey(Mods[I].Fp, Salt);
    if (Digest != 0)
      Key = fnv1a64U64(Digest, Key);
    if (Cache)
      if (std::optional<std::string> Payload = Cache->lookup(Key))
        if (std::optional<FileReport> R =
                deserializeFileReport(*Payload, In.Path)) {
          Report.Files[I] = std::move(*R);
          return;
        }
    // Lookups during analysis only use the module's own callee names, so
    // analyzing against the full environment is byte-identical to the
    // sliced environment a shard worker receives.
    FileReport R =
        analyzeParsedModule(*Mods[I].M, Mods[I].Source, In.Path, &LR.Env);
    if (Cache && R.Status == EngineStatus::Ok)
      Cache->store(Key, serializeFileReport(R));
    Report.Files[I] = std::move(R);
  });

  Report.finalize();

  Report.Stats.Jobs = Jobs;
  Report.Stats.WallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - Start)
                            .count();
  Report.Stats.CacheEnabled = Cache != nullptr;
  if (Cache) {
    sched::ResultCache::Stats After = Cache->stats();
    Report.Stats.CacheHits = After.Hits - Before.Hits;
    Report.Stats.CacheMisses = After.Misses - Before.Misses;
    Report.Stats.CacheEvictions = After.Evictions - Before.Evictions;
    Report.Stats.DiskHits = After.DiskHits - Before.DiskHits;
    Report.Stats.CorruptEntries =
        After.CorruptEntries - Before.CorruptEntries;
  }
  Report.Stats.LinkEnabled = true;
  Report.Stats.LinkedFiles = static_cast<unsigned>(LinkInput.size());
  Report.Stats.LinkRounds = LR.Stats.Rounds;
  Report.Stats.ModulesFromSummaryDb = LR.Stats.ModulesFromDb;
  Report.Stats.SummaryDbHits = LR.Stats.DbHits;
  Report.Stats.SummaryDbMisses = LR.Stats.DbMisses;
  Report.Stats.SummaryDbStores = LR.Stats.DbStores;
  return Report;
}

//===----------------------------------------------------------------------===//
// CorpusReport
//===----------------------------------------------------------------------===//

std::string RunStats::renderLine() const {
  std::string Out = "cache: ";
  if (!CacheEnabled) {
    Out += "disabled";
  } else {
    Out += std::to_string(CacheHits) + " hit(s), " +
           std::to_string(CacheMisses) + " miss(es), " +
           std::to_string(CacheEvictions) + " eviction(s)";
    if (DiskHits != 0 || CorruptEntries != 0)
      Out += " (" + std::to_string(DiskHits) + " from disk, " +
             std::to_string(CorruptEntries) + " corrupt)";
  }
  if (LinkEnabled) {
    Out += "; link: " + std::to_string(LinkedFiles) + " file(s), " +
           std::to_string(LinkRounds) + " round(s), " +
           std::to_string(ModulesFromSummaryDb) + " module(s) from summary-db";
    if (SummaryDbHits != 0 || SummaryDbMisses != 0 || SummaryDbStores != 0)
      Out += " (" + std::to_string(SummaryDbHits) + " hit(s), " +
             std::to_string(SummaryDbMisses) + " miss(es), " +
             std::to_string(SummaryDbStores) + " store(s))";
  }
  Out += "; " + formatDouble(WallMs, 1) + " ms wall-clock, " +
         std::to_string(Jobs) + " job(s)";
  return Out;
}

void CorpusReport::finalize() {
  for (FileReport &F : Files)
    std::stable_sort(F.Findings.begin(), F.Findings.end(),
                     diag::diagnosticLess);
}

std::vector<diag::Diagnostic> FileReport::statusDiagnostics() const {
  std::vector<diag::Diagnostic> Out;
  const std::string *File = Path.empty() ? nullptr : internFileName(Path);
  auto FileLevel = [&](diag::RuleId Rule, std::string Message) {
    diag::Diagnostic D(Rule);
    D.Message = std::move(Message);
    // Anchor at the top of the file so renderers with location-keyed
    // output (SARIF region, text header) have somewhere to point.
    if (File)
      D.Loc = SourceLocation(File, 1, 1);
    return D;
  };
  if (Status == EngineStatus::Degraded)
    Out.push_back(FileLevel(diag::RuleId::FileDegraded,
                            "analysis degraded: " + Reason));
  else if (Status == EngineStatus::Skipped)
    Out.push_back(
        FileLevel(diag::RuleId::FileSkipped, "file skipped: " + Reason));
  for (const DetectorOutcome &O : Detectors) {
    if (O.Status == EngineStatus::Ok)
      continue;
    diag::RuleId Rule = O.Status == EngineStatus::Degraded
                            ? diag::RuleId::DetectorDegraded
                            : diag::RuleId::DetectorSkipped;
    diag::Diagnostic D = FileLevel(
        Rule, "detector '" + O.Name + "' " +
                  engineStatusName(O.Status) + " on this file");
    if (!O.Note.empty())
      D.Notes.push_back(O.Note); // The budget or fault cause.
    Out.push_back(std::move(D));
  }
  return Out;
}

size_t CorpusReport::countWithStatus(EngineStatus S) const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Status == S;
  return N;
}

size_t CorpusReport::totalFindings() const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Findings.size();
  return N;
}

std::string CorpusReport::renderText(const diag::SourceManager *SM) const {
  std::string Out;
  for (const FileReport &F : Files) {
    Out += "== " + F.Path + ": " + engineStatusName(F.Status) + ", " +
           std::to_string(F.Findings.size()) + " finding(s)";
    if (F.SuppressedFindings != 0)
      Out += ", " + std::to_string(F.SuppressedFindings) + " suppressed";
    if (F.BaselinedFindings != 0)
      Out += ", " + std::to_string(F.BaselinedFindings) + " baselined";
    if (!F.Reason.empty())
      Out += " (" + F.Reason + ")";
    Out += " ==\n";
    for (const diag::Diagnostic &E : F.ParseErrors)
      Out += "  recovered parse error: " + E.toString() + "\n";
    for (const diag::Diagnostic &E : F.VerifierErrors)
      Out += "  verifier: " + E.toString() + "\n";
    for (const DetectorOutcome &D : F.Detectors)
      if (D.Status != EngineStatus::Ok)
        Out += "  [" + D.Name + "] " + engineStatusName(D.Status) + ": " +
               D.Note + "\n";
    for (const diag::Diagnostic &N : F.Notices)
      Out += diag::renderDiagnosticText(N, SM);
    for (const detectors::Diagnostic &Diag : F.Findings)
      Out += diag::renderDiagnosticText(Diag, SM);
  }
  return Out;
}

std::string CorpusReport::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("files");
  W.beginArray();
  for (const FileReport &F : Files) {
    W.beginObject();
    W.field("path", F.Path);
    W.field("status", engineStatusName(F.Status));
    if (!F.Reason.empty())
      W.field("reason", F.Reason);
    if (!F.ParseErrors.empty()) {
      W.key("parse_errors");
      W.beginArray();
      for (const diag::Diagnostic &E : F.ParseErrors)
        diag::writeDiagnosticJson(W, E);
      W.endArray();
    }
    if (!F.VerifierErrors.empty()) {
      W.key("verifier_errors");
      W.beginArray();
      for (const diag::Diagnostic &E : F.VerifierErrors)
        diag::writeDiagnosticJson(W, E);
      W.endArray();
    }
    if (F.ItemsDropped != 0)
      W.field("items_dropped", static_cast<int64_t>(F.ItemsDropped));
    if (F.SuppressedFindings != 0)
      W.field("suppressed", static_cast<int64_t>(F.SuppressedFindings));
    if (F.BaselinedFindings != 0)
      W.field("baselined", static_cast<int64_t>(F.BaselinedFindings));
    W.key("detectors");
    W.beginArray();
    for (const DetectorOutcome &D : F.Detectors) {
      W.beginObject();
      W.field("name", D.Name);
      W.field("status", engineStatusName(D.Status));
      if (!D.Note.empty())
        W.field("note", D.Note);
      W.field("findings", static_cast<int64_t>(D.Findings));
      W.endObject();
    }
    W.endArray();
    if (!F.Notices.empty()) {
      W.key("notices");
      W.beginArray();
      for (const diag::Diagnostic &N : F.Notices)
        diag::writeDiagnosticJson(W, N);
      W.endArray();
    }
    // The per-finding objects come from writeDiagnosticJson, the single
    // diagnostic schema every JSON surface shares.
    W.key("findings");
    W.beginArray();
    for (const detectors::Diagnostic &D : F.Findings)
      diag::writeDiagnosticJson(W, D);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("summary");
  W.beginObject();
  W.field("files", static_cast<int64_t>(Files.size()));
  W.field("ok", static_cast<int64_t>(countWithStatus(EngineStatus::Ok)));
  W.field("degraded",
          static_cast<int64_t>(countWithStatus(EngineStatus::Degraded)));
  W.field("skipped",
          static_cast<int64_t>(countWithStatus(EngineStatus::Skipped)));
  W.field("findings", static_cast<int64_t>(totalFindings()));
  size_t Suppressed = 0, Baselined = 0;
  for (const FileReport &F : Files) {
    Suppressed += F.SuppressedFindings;
    Baselined += F.BaselinedFindings;
  }
  W.field("suppressed", static_cast<int64_t>(Suppressed));
  W.field("baselined", static_cast<int64_t>(Baselined));
  W.endObject();
  W.endObject();
  return W.str();
}

std::string CorpusReport::renderSarif() const {
  diag::SarifWriter W;
  for (const FileReport &F : Files) {
    for (const diag::Diagnostic &E : F.ParseErrors)
      W.addResult(E, F.Path);
    for (const diag::Diagnostic &E : F.VerifierErrors)
      W.addResult(E, F.Path);
    for (const diag::Diagnostic &D : F.statusDiagnostics())
      W.addResult(D, F.Path);
    for (const diag::Diagnostic &N : F.Notices)
      W.addResult(N, F.Path);
    for (const detectors::Diagnostic &D : F.Findings)
      W.addResult(D, F.Path);
  }
  return W.finish();
}

diag::Baseline rs::engine::collectBaseline(const CorpusReport &Report) {
  diag::Baseline B;
  for (const FileReport &F : Report.Files)
    for (const detectors::Diagnostic &D : F.Findings)
      B.add(D.fingerprintHex());
  return B;
}

size_t rs::engine::applyBaseline(CorpusReport &Report,
                                 const diag::Baseline &B) {
  size_t Dropped = 0;
  for (FileReport &F : Report.Files) {
    std::vector<detectors::Diagnostic> Kept;
    Kept.reserve(F.Findings.size());
    for (detectors::Diagnostic &D : F.Findings) {
      if (B.contains(D.fingerprintHex())) {
        ++F.BaselinedFindings;
        ++Dropped;
      } else {
        Kept.push_back(std::move(D));
      }
    }
    F.Findings = std::move(Kept);
  }
  return Dropped;
}

int CorpusReport::exitCode(bool Strict) const {
  bool AnyAnalyzed = false;
  bool AnyImperfect = false;
  for (const FileReport &F : Files) {
    AnyAnalyzed |= F.analyzed();
    AnyImperfect |= F.Status != EngineStatus::Ok;
  }
  if (Files.empty() || !AnyAnalyzed)
    return 2;
  if (Strict && AnyImperfect)
    return 2;
  return totalFindings() == 0 ? 0 : 1;
}

#include "engine/Engine.h"

#include "mir/Parser.h"
#include "mir/Verifier.h"
#include "support/FaultInjection.h"
#include "support/Json.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace rs;
using namespace rs::engine;

const char *rs::engine::engineStatusName(EngineStatus S) {
  switch (S) {
  case EngineStatus::Ok:
    return "ok";
  case EngineStatus::Degraded:
    return "degraded";
  case EngineStatus::Skipped:
    return "skipped";
  }
  return "?";
}

AnalysisEngine::AnalysisEngine(EngineOptions Opts) : Opts(Opts) {}

//===----------------------------------------------------------------------===//
// Per-file pipeline
//===----------------------------------------------------------------------===//

void AnalysisEngine::runDetectors(const mir::Module &M, FileReport &R) {
  Budget FileBudget;
  bool HasFileBudget = Opts.BudgetMs != 0 || Opts.MaxFileSteps != 0;
  if (Opts.BudgetMs != 0)
    FileBudget.setDeadline(Opts.BudgetMs);
  if (Opts.MaxFileSteps != 0)
    FileBudget.setMaxSteps(Opts.MaxFileSteps);

  detectors::AnalysisLimits Limits;
  Limits.ContextBudget = HasFileBudget ? &FileBudget : nullptr;
  Limits.MaxDataflowSteps = Opts.MaxDataflowIters;
  Limits.MaxSummaryRounds = Opts.MaxSummaryRounds;
  detectors::AnalysisContext Ctx(M, Limits);

  detectors::DiagnosticEngine FileDiags;
  bool AnyQuarantined = false;
  bool AnyBudgetSkip = false;

  std::vector<std::unique_ptr<detectors::Detector>> Detectors =
      Factory ? Factory() : detectors::makeAllDetectors();
  for (const auto &D : Detectors) {
    DetectorOutcome O;
    O.Name = D->name();
    if (HasFileBudget && FileBudget.exhausted()) {
      // Bottom rung of the degradation ladder: no budget left, so the
      // detector is skipped with a note rather than run to a hang.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string(FileBudget.reason()) + "; skipped before run";
      AnyBudgetSkip = true;
      R.Detectors.push_back(std::move(O));
      continue;
    }
    detectors::DiagnosticEngine DetDiags;
    try {
      if (fault::shouldFail("engine.detector"))
        throw std::runtime_error("injected fault at probe engine.detector");
      D->run(Ctx, DetDiags);
      O.Findings = DetDiags.count();
      for (const detectors::Diagnostic &Diag : DetDiags.diagnostics())
        FileDiags.report(Diag);
      if (Ctx.anyDegraded()) {
        O.Status = EngineStatus::Degraded;
        O.Note = Ctx.summariesComplete()
                     ? "analysis budget exhausted; findings may be incomplete"
                     : "interprocedural summaries truncated; per-function "
                       "results only";
      }
    } catch (const std::exception &E) {
      // The containment boundary: a buggy (or fault-injected) detector is
      // quarantined — its partial findings are dropped so the report never
      // mixes trustworthy and half-computed results — and the battery
      // continues.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string("quarantined: ") + E.what();
      O.Findings = 0;
      AnyQuarantined = true;
    } catch (...) {
      O.Status = EngineStatus::Skipped;
      O.Note = "quarantined: unknown fault";
      O.Findings = 0;
      AnyQuarantined = true;
    }
    R.Detectors.push_back(std::move(O));
  }

  R.Findings = FileDiags.diagnostics();

  // Fold the stage outcomes into the file status.
  std::vector<std::string> Reasons;
  if (!R.ParseErrors.empty())
    Reasons.push_back(std::to_string(R.ItemsDropped) +
                      " malformed item(s) dropped by parser recovery");
  if (Ctx.anyDegraded())
    Reasons.push_back("analysis budget exhausted; precision degraded");
  if (AnyBudgetSkip)
    Reasons.push_back("budget exhausted: detector(s) skipped");
  if (AnyQuarantined)
    Reasons.push_back("detector fault(s) quarantined");

  bool AnyDetectorRan = Detectors.empty();
  for (const DetectorOutcome &O : R.Detectors)
    AnyDetectorRan |= O.Status != EngineStatus::Skipped;

  std::string Joined;
  for (const std::string &Reason : Reasons)
    Joined += (Joined.empty() ? "" : "; ") + Reason;

  if (!AnyDetectorRan) {
    R.Status = EngineStatus::Skipped;
    R.Reason = Joined.empty() ? "all detectors skipped" : Joined;
  } else if (!Reasons.empty()) {
    R.Status = EngineStatus::Degraded;
    R.Reason = Joined;
  } else {
    R.Status = EngineStatus::Ok;
  }
}

FileReport AnalysisEngine::analyzeSource(std::string_view Source,
                                         std::string Name) {
  FileReport R;
  R.Path = std::move(Name);
  try {
    if (fault::shouldFail("engine.parse"))
      throw std::runtime_error("injected fault at probe engine.parse");
    mir::ModuleParse P = mir::Parser::parseRecover(Source, R.Path);
    for (const Error &E : P.Errors)
      R.ParseErrors.push_back(E.toString());
    R.ItemsDropped = P.ItemsDropped;
    if (!P.Errors.empty() && P.M.functions().empty() &&
        P.M.structs().empty() && P.M.statics().empty()) {
      R.Status = EngineStatus::Skipped;
      R.Reason = "no parseable items: " + R.ParseErrors.front();
      return R;
    }

    if (fault::shouldFail("engine.verify"))
      throw std::runtime_error("injected fault at probe engine.verify");
    std::vector<std::string> VErr;
    if (!mir::verifyModule(P.M, VErr)) {
      R.VerifierErrors = std::move(VErr);
      R.Status = EngineStatus::Skipped;
      R.Reason = "verifier rejected module: " + R.VerifierErrors.front();
      return R;
    }

    runDetectors(P.M, R);
  } catch (const std::exception &E) {
    R.Status = EngineStatus::Skipped;
    R.Reason = std::string("engine fault contained: ") + E.what();
    R.Detectors.clear();
    R.Findings.clear();
  } catch (...) {
    R.Status = EngineStatus::Skipped;
    R.Reason = "engine fault contained: unknown exception";
    R.Detectors.clear();
    R.Findings.clear();
  }
  return R;
}

FileReport AnalysisEngine::analyzeFile(const std::string &Path) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    // An ifstream on a directory reads as empty on some platforms, which
    // would masquerade as a clean empty module.
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "is a directory";
    return R;
  }
  std::ifstream In(Path);
  if (!In) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return analyzeSource(Buf.str(), Path);
}

CorpusReport AnalysisEngine::run(const std::vector<std::string> &Paths) {
  namespace fs = std::filesystem;
  CorpusReport Report;
  Report.Files.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    std::error_code Ec;
    if (!fs::is_directory(Path, Ec)) {
      Report.Files.push_back(analyzeFile(Path));
      continue;
    }
    // Directories expand to their .mir files, recursively, in sorted order
    // so reports are deterministic across filesystems.
    std::vector<std::string> Found;
    for (const auto &Entry : fs::recursive_directory_iterator(
             Path, fs::directory_options::skip_permission_denied, Ec)) {
      std::error_code FileEc;
      if (Entry.is_regular_file(FileEc) && Entry.path().extension() == ".mir")
        Found.push_back(Entry.path().string());
    }
    std::sort(Found.begin(), Found.end());
    if (Found.empty()) {
      FileReport R;
      R.Path = Path;
      R.Status = EngineStatus::Skipped;
      R.Reason = "no .mir files in directory";
      Report.Files.push_back(std::move(R));
      continue;
    }
    for (const std::string &F : Found)
      Report.Files.push_back(analyzeFile(F));
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// CorpusReport
//===----------------------------------------------------------------------===//

size_t CorpusReport::countWithStatus(EngineStatus S) const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Status == S;
  return N;
}

size_t CorpusReport::totalFindings() const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Findings.size();
  return N;
}

std::string CorpusReport::renderText() const {
  std::string Out;
  for (const FileReport &F : Files) {
    Out += "== " + F.Path + ": " + engineStatusName(F.Status) + ", " +
           std::to_string(F.Findings.size()) + " finding(s)";
    if (!F.Reason.empty())
      Out += " (" + F.Reason + ")";
    Out += " ==\n";
    for (const std::string &E : F.ParseErrors)
      Out += "  recovered parse error: " + E + "\n";
    for (const std::string &E : F.VerifierErrors)
      Out += "  verifier: " + E + "\n";
    for (const DetectorOutcome &D : F.Detectors)
      if (D.Status != EngineStatus::Ok)
        Out += "  [" + D.Name + "] " + engineStatusName(D.Status) + ": " +
               D.Note + "\n";
    for (const detectors::Diagnostic &Diag : F.Findings)
      Out += Diag.toString() + "\n";
  }
  return Out;
}

std::string CorpusReport::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("files");
  W.beginArray();
  for (const FileReport &F : Files) {
    W.beginObject();
    W.field("path", F.Path);
    W.field("status", engineStatusName(F.Status));
    if (!F.Reason.empty())
      W.field("reason", F.Reason);
    if (!F.ParseErrors.empty()) {
      W.key("parse_errors");
      W.beginArray();
      for (const std::string &E : F.ParseErrors)
        W.value(E);
      W.endArray();
    }
    if (!F.VerifierErrors.empty()) {
      W.key("verifier_errors");
      W.beginArray();
      for (const std::string &E : F.VerifierErrors)
        W.value(E);
      W.endArray();
    }
    if (F.ItemsDropped != 0)
      W.field("items_dropped", static_cast<int64_t>(F.ItemsDropped));
    W.key("detectors");
    W.beginArray();
    for (const DetectorOutcome &D : F.Detectors) {
      W.beginObject();
      W.field("name", D.Name);
      W.field("status", engineStatusName(D.Status));
      if (!D.Note.empty())
        W.field("note", D.Note);
      W.field("findings", static_cast<int64_t>(D.Findings));
      W.endObject();
    }
    W.endArray();
    // The per-finding fields mirror DiagnosticEngine::renderJson so report
    // consumers parse one schema.
    W.key("findings");
    W.beginArray();
    for (const detectors::Diagnostic &D : F.Findings) {
      W.beginObject();
      W.field("kind", detectors::bugKindName(D.Kind));
      W.field("function", D.Function);
      W.field("block", static_cast<int64_t>(D.Block));
      W.field("statement", static_cast<int64_t>(D.StmtIndex));
      W.field("message", D.Message);
      if (D.Loc.isValid())
        W.field("location", D.Loc.toString());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("summary");
  W.beginObject();
  W.field("files", static_cast<int64_t>(Files.size()));
  W.field("ok", static_cast<int64_t>(countWithStatus(EngineStatus::Ok)));
  W.field("degraded",
          static_cast<int64_t>(countWithStatus(EngineStatus::Degraded)));
  W.field("skipped",
          static_cast<int64_t>(countWithStatus(EngineStatus::Skipped)));
  W.field("findings", static_cast<int64_t>(totalFindings()));
  W.endObject();
  W.endObject();
  return W.str();
}

int CorpusReport::exitCode(bool Strict) const {
  bool AnyAnalyzed = false;
  bool AnyImperfect = false;
  for (const FileReport &F : Files) {
    AnyAnalyzed |= F.analyzed();
    AnyImperfect |= F.Status != EngineStatus::Ok;
  }
  if (Files.empty() || !AnyAnalyzed)
    return 2;
  if (Strict && AnyImperfect)
    return 2;
  return totalFindings() == 0 ? 0 : 1;
}

#include "engine/Engine.h"

#include "corpus/CorpusWalk.h"
#include "mir/Parser.h"
#include "mir/Verifier.h"
#include "sched/ThreadPool.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

using namespace rs;
using namespace rs::engine;

const char *rs::engine::engineStatusName(EngineStatus S) {
  switch (S) {
  case EngineStatus::Ok:
    return "ok";
  case EngineStatus::Degraded:
    return "degraded";
  case EngineStatus::Skipped:
    return "skipped";
  }
  return "?";
}

AnalysisEngine::AnalysisEngine(EngineOptions Opts) : Opts(Opts) {}

//===----------------------------------------------------------------------===//
// Per-file pipeline
//===----------------------------------------------------------------------===//

void AnalysisEngine::runDetectors(const mir::Module &M, FileReport &R) {
  Budget FileBudget;
  bool HasFileBudget = Opts.BudgetMs != 0 || Opts.MaxFileSteps != 0;
  if (Opts.BudgetMs != 0)
    FileBudget.setDeadline(Opts.BudgetMs);
  if (Opts.MaxFileSteps != 0)
    FileBudget.setMaxSteps(Opts.MaxFileSteps);

  detectors::AnalysisLimits Limits;
  Limits.ContextBudget = HasFileBudget ? &FileBudget : nullptr;
  Limits.MaxDataflowSteps = Opts.MaxDataflowIters;
  Limits.MaxSummaryRounds = Opts.MaxSummaryRounds;
  detectors::AnalysisContext Ctx(M, Limits);

  detectors::DiagnosticEngine FileDiags;
  bool AnyQuarantined = false;
  bool AnyBudgetSkip = false;

  std::vector<std::unique_ptr<detectors::Detector>> Detectors =
      Factory ? Factory() : detectors::makeAllDetectors();
  for (const auto &D : Detectors) {
    DetectorOutcome O;
    O.Name = D->name();
    if (HasFileBudget && FileBudget.exhausted()) {
      // Bottom rung of the degradation ladder: no budget left, so the
      // detector is skipped with a note rather than run to a hang.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string(FileBudget.reason()) + "; skipped before run";
      AnyBudgetSkip = true;
      R.Detectors.push_back(std::move(O));
      continue;
    }
    detectors::DiagnosticEngine DetDiags;
    try {
      if (fault::shouldFail("engine.detector"))
        throw std::runtime_error("injected fault at probe engine.detector");
      D->run(Ctx, DetDiags);
      O.Findings = DetDiags.count();
      for (const detectors::Diagnostic &Diag : DetDiags.diagnostics())
        FileDiags.report(Diag);
      if (Ctx.anyDegraded()) {
        O.Status = EngineStatus::Degraded;
        O.Note = Ctx.summariesComplete()
                     ? "analysis budget exhausted; findings may be incomplete"
                     : "interprocedural summaries truncated; per-function "
                       "results only";
      }
    } catch (const std::exception &E) {
      // The containment boundary: a buggy (or fault-injected) detector is
      // quarantined — its partial findings are dropped so the report never
      // mixes trustworthy and half-computed results — and the battery
      // continues.
      O.Status = EngineStatus::Skipped;
      O.Note = std::string("quarantined: ") + E.what();
      O.Findings = 0;
      AnyQuarantined = true;
    } catch (...) {
      O.Status = EngineStatus::Skipped;
      O.Note = "quarantined: unknown fault";
      O.Findings = 0;
      AnyQuarantined = true;
    }
    R.Detectors.push_back(std::move(O));
  }

  R.Findings = FileDiags.diagnostics();

  // Fold the stage outcomes into the file status.
  std::vector<std::string> Reasons;
  if (!R.ParseErrors.empty())
    Reasons.push_back(std::to_string(R.ItemsDropped) +
                      " malformed item(s) dropped by parser recovery");
  if (Ctx.anyDegraded())
    Reasons.push_back("analysis budget exhausted; precision degraded");
  if (AnyBudgetSkip)
    Reasons.push_back("budget exhausted: detector(s) skipped");
  if (AnyQuarantined)
    Reasons.push_back("detector fault(s) quarantined");

  bool AnyDetectorRan = Detectors.empty();
  for (const DetectorOutcome &O : R.Detectors)
    AnyDetectorRan |= O.Status != EngineStatus::Skipped;

  std::string Joined;
  for (const std::string &Reason : Reasons)
    Joined += (Joined.empty() ? "" : "; ") + Reason;

  if (!AnyDetectorRan) {
    R.Status = EngineStatus::Skipped;
    R.Reason = Joined.empty() ? "all detectors skipped" : Joined;
  } else if (!Reasons.empty()) {
    R.Status = EngineStatus::Degraded;
    R.Reason = Joined;
  } else {
    R.Status = EngineStatus::Ok;
  }
}

FileReport AnalysisEngine::analyzeSource(std::string_view Source,
                                         std::string Name) {
  FileReport R;
  R.Path = std::move(Name);
  try {
    if (fault::shouldFail("engine.parse"))
      throw std::runtime_error("injected fault at probe engine.parse");
    mir::ModuleParse P = mir::Parser::parseRecover(Source, R.Path);
    for (const Error &E : P.Errors)
      R.ParseErrors.push_back(E.toString());
    R.ItemsDropped = P.ItemsDropped;
    if (!P.Errors.empty() && P.M.functions().empty() &&
        P.M.structs().empty() && P.M.statics().empty()) {
      R.Status = EngineStatus::Skipped;
      R.Reason = "no parseable items: " + R.ParseErrors.front();
      return R;
    }

    if (fault::shouldFail("engine.verify"))
      throw std::runtime_error("injected fault at probe engine.verify");
    std::vector<std::string> VErr;
    if (!mir::verifyModule(P.M, VErr)) {
      R.VerifierErrors = std::move(VErr);
      R.Status = EngineStatus::Skipped;
      R.Reason = "verifier rejected module: " + R.VerifierErrors.front();
      return R;
    }

    runDetectors(P.M, R);
  } catch (const std::exception &E) {
    R.Status = EngineStatus::Skipped;
    R.Reason = std::string("engine fault contained: ") + E.what();
    R.Detectors.clear();
    R.Findings.clear();
  } catch (...) {
    R.Status = EngineStatus::Skipped;
    R.Reason = "engine fault contained: unknown exception";
    R.Detectors.clear();
    R.Findings.clear();
  }
  return R;
}

FileReport AnalysisEngine::analyzeFile(const std::string &Path) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    // An ifstream on a directory reads as empty on some platforms, which
    // would masquerade as a clean empty module.
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "is a directory";
    return R;
  }
  std::ifstream In(Path);
  if (!In) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return analyzeSource(Buf.str(), Path);
}

//===----------------------------------------------------------------------===//
// Cache key derivation and report serialization
//===----------------------------------------------------------------------===//

/// Bump when serializeFileReport's schema changes: the version feeds the
/// salt, so old entries stop matching instead of misparsing.
static constexpr uint64_t ReportSchemaVersion = 1;

uint64_t rs::engine::fingerprintSource(std::string_view Source) {
  // Canonicalize CRLF -> LF without materializing a copy.
  uint64_t H = Fnv1a64OffsetBasis;
  size_t I = 0;
  while (I < Source.size()) {
    char C = Source[I];
    if (C == '\r' && I + 1 < Source.size() && Source[I + 1] == '\n') {
      ++I;
      continue;
    }
    H ^= static_cast<unsigned char>(C);
    H *= Fnv1a64Prime;
    ++I;
  }
  return H;
}

uint64_t rs::engine::cacheSalt(const EngineOptions &Opts,
                               const std::vector<std::string> &DetectorNames) {
  uint64_t H = fnv1a64("rustsight-filereport");
  H = fnv1a64U64(ReportSchemaVersion, H);
  for (const std::string &Name : DetectorNames) {
    H = fnv1a64(Name, H);
    H = fnv1a64("\n", H); // Separator: {"ab"} must differ from {"a","b"}.
  }
  H = fnv1a64U64(Opts.BudgetMs, H);
  H = fnv1a64U64(Opts.MaxFileSteps, H);
  H = fnv1a64U64(Opts.MaxDataflowIters, H);
  H = fnv1a64U64(Opts.MaxSummaryRounds, H);
  return H;
}

uint64_t rs::engine::cacheKey(uint64_t SourceFingerprint, uint64_t Salt) {
  return fnv1a64U64(SourceFingerprint, Salt);
}

std::string rs::engine::serializeFileReport(const FileReport &R) {
  JsonWriter W;
  W.beginObject();
  W.field("v", static_cast<int64_t>(ReportSchemaVersion));
  W.key("detectors");
  W.beginArray();
  for (const DetectorOutcome &D : R.Detectors) {
    W.beginObject();
    W.field("name", D.Name);
    W.field("findings", static_cast<int64_t>(D.Findings));
    W.endObject();
  }
  W.endArray();
  W.key("findings");
  W.beginArray();
  for (const detectors::Diagnostic &D : R.Findings) {
    W.beginObject();
    W.field("kind", detectors::bugKindName(D.Kind));
    W.field("function", D.Function);
    W.field("block", static_cast<int64_t>(D.Block));
    W.field("statement", static_cast<int64_t>(D.StmtIndex));
    W.field("message", D.Message);
    // The file name is omitted: locations re-anchor to whatever path the
    // content shows up at on the way back in.
    W.field("line", static_cast<int64_t>(D.Loc.line()));
    W.field("col", static_cast<int64_t>(D.Loc.column()));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

std::optional<FileReport>
rs::engine::deserializeFileReport(std::string_view Payload,
                                  const std::string &Path) {
  std::optional<JsonValue> Doc = JsonValue::parse(Payload);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  if (Doc->getInt("v", -1) != static_cast<int64_t>(ReportSchemaVersion))
    return std::nullopt;
  const JsonValue *Dets = Doc->get("detectors");
  const JsonValue *Finds = Doc->get("findings");
  if (!Dets || !Dets->isArray() || !Finds || !Finds->isArray())
    return std::nullopt;

  FileReport R;
  R.Path = Path;
  R.Status = EngineStatus::Ok; // Only clean reports are ever cached.
  for (const JsonValue &D : Dets->elements()) {
    if (!D.isObject())
      return std::nullopt;
    DetectorOutcome O;
    O.Name = D.getString("name");
    O.Status = EngineStatus::Ok;
    O.Findings = static_cast<size_t>(D.getInt("findings"));
    R.Detectors.push_back(std::move(O));
  }
  const std::string *File = internFileName(Path);
  for (const JsonValue &F : Finds->elements()) {
    if (!F.isObject())
      return std::nullopt;
    detectors::Diagnostic D;
    if (!detectors::bugKindFromName(F.getString("kind"), D.Kind))
      return std::nullopt;
    D.Function = F.getString("function");
    D.Block = static_cast<mir::BlockId>(F.getInt("block"));
    D.StmtIndex = static_cast<size_t>(F.getInt("statement"));
    D.Message = F.getString("message");
    unsigned Line = static_cast<unsigned>(F.getInt("line"));
    unsigned Col = static_cast<unsigned>(F.getInt("col"));
    if (Line != 0)
      D.Loc = SourceLocation(File, Line, Col);
    R.Findings.push_back(std::move(D));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// The parallel corpus driver
//===----------------------------------------------------------------------===//

void AnalysisEngine::ensureCache() {
  if (!Opts.UseCache) {
    Cache.reset();
    return;
  }
  if (Cache)
    return;
  sched::ResultCache::Options O;
  O.MaxMemoryEntries = Opts.CacheMaxEntries;
  O.DiskDir = Opts.CacheDir;
  Cache = std::make_unique<sched::ResultCache>(std::move(O));
}

std::vector<std::string> AnalysisEngine::detectorNames() {
  std::vector<std::string> Names;
  std::vector<std::unique_ptr<detectors::Detector>> Detectors =
      Factory ? Factory() : detectors::makeAllDetectors();
  Names.reserve(Detectors.size());
  for (const auto &D : Detectors)
    Names.emplace_back(D->name());
  return Names;
}

FileReport AnalysisEngine::analyzeFileCached(const std::string &Path,
                                             uint64_t Salt) {
  std::error_code Ec;
  if (std::filesystem::is_directory(Path, Ec)) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "is a directory";
    return R;
  }
  std::ifstream In(Path);
  if (!In) {
    FileReport R;
    R.Path = Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  if (!Cache)
    return analyzeSource(Source, Path);

  uint64_t Key = cacheKey(fingerprintSource(Source), Salt);
  if (std::optional<std::string> Payload = Cache->lookup(Key))
    if (std::optional<FileReport> R = deserializeFileReport(*Payload, Path))
      return std::move(*R);

  FileReport R = analyzeSource(Source, Path);
  // Only clean results are cached: degraded/skipped outcomes depend on
  // wall-clock budgets and embed path-bearing error text, neither of which
  // belongs in a content-addressed entry.
  if (R.Status == EngineStatus::Ok)
    Cache->store(Key, serializeFileReport(R));
  return R;
}

CorpusReport AnalysisEngine::analyzeCorpus(const std::vector<std::string> &Paths) {
  auto Start = std::chrono::steady_clock::now();

  std::vector<corpus::CorpusInput> Inputs = corpus::expandMirPaths(Paths);
  CorpusReport Report;
  Report.Files.resize(Inputs.size());

  ensureCache();
  sched::ResultCache::Stats Before;
  if (Cache)
    Before = Cache->stats();
  const uint64_t Salt = cacheSalt(Opts, detectorNames());

  // Each task owns exactly slot I of the report — the deterministic merge:
  // results land by input ordinal, never by completion order.
  auto ProcessOne = [&](size_t I) {
    const corpus::CorpusInput &In = Inputs[I];
    if (!In.SkipReason.empty()) {
      FileReport R;
      R.Path = In.Path;
      R.Status = EngineStatus::Skipped;
      R.Reason = In.SkipReason;
      Report.Files[I] = std::move(R);
      return;
    }
    Report.Files[I] = analyzeFileCached(In.Path, Salt);
  };

  unsigned Jobs =
      Opts.Jobs == 0 ? sched::ThreadPool::defaultWorkerCount() : Opts.Jobs;
  if (Jobs > Inputs.size() && !Inputs.empty())
    Jobs = unsigned(Inputs.size());
  if (Jobs <= 1) {
    Jobs = 1;
    for (size_t I = 0; I != Inputs.size(); ++I)
      ProcessOne(I);
  } else {
    sched::ThreadPool Pool(Jobs);
    sched::parallelFor(Pool, Inputs.size(), ProcessOne);
  }

  Report.finalize();

  Report.Stats.Jobs = Jobs;
  Report.Stats.WallMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  Report.Stats.CacheEnabled = Cache != nullptr;
  if (Cache) {
    sched::ResultCache::Stats After = Cache->stats();
    Report.Stats.CacheHits = After.Hits - Before.Hits;
    Report.Stats.CacheMisses = After.Misses - Before.Misses;
    Report.Stats.CacheEvictions = After.Evictions - Before.Evictions;
    Report.Stats.DiskHits = After.DiskHits - Before.DiskHits;
    Report.Stats.CorruptEntries =
        After.CorruptEntries - Before.CorruptEntries;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// CorpusReport
//===----------------------------------------------------------------------===//

std::string RunStats::renderLine() const {
  std::string Out = "cache: ";
  if (!CacheEnabled) {
    Out += "disabled";
  } else {
    Out += std::to_string(CacheHits) + " hit(s), " +
           std::to_string(CacheMisses) + " miss(es), " +
           std::to_string(CacheEvictions) + " eviction(s)";
    if (DiskHits != 0 || CorruptEntries != 0)
      Out += " (" + std::to_string(DiskHits) + " from disk, " +
             std::to_string(CorruptEntries) + " corrupt)";
  }
  Out += "; " + formatDouble(WallMs, 1) + " ms wall-clock, " +
         std::to_string(Jobs) + " job(s)";
  return Out;
}

void CorpusReport::finalize() {
  for (FileReport &F : Files)
    std::stable_sort(F.Findings.begin(), F.Findings.end(),
                     [](const detectors::Diagnostic &A,
                        const detectors::Diagnostic &B) {
                       return std::tie(A.Function, A.Block, A.StmtIndex,
                                       A.Kind, A.Message) <
                              std::tie(B.Function, B.Block, B.StmtIndex,
                                       B.Kind, B.Message);
                     });
}

size_t CorpusReport::countWithStatus(EngineStatus S) const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Status == S;
  return N;
}

size_t CorpusReport::totalFindings() const {
  size_t N = 0;
  for (const FileReport &F : Files)
    N += F.Findings.size();
  return N;
}

std::string CorpusReport::renderText() const {
  std::string Out;
  for (const FileReport &F : Files) {
    Out += "== " + F.Path + ": " + engineStatusName(F.Status) + ", " +
           std::to_string(F.Findings.size()) + " finding(s)";
    if (!F.Reason.empty())
      Out += " (" + F.Reason + ")";
    Out += " ==\n";
    for (const std::string &E : F.ParseErrors)
      Out += "  recovered parse error: " + E + "\n";
    for (const std::string &E : F.VerifierErrors)
      Out += "  verifier: " + E + "\n";
    for (const DetectorOutcome &D : F.Detectors)
      if (D.Status != EngineStatus::Ok)
        Out += "  [" + D.Name + "] " + engineStatusName(D.Status) + ": " +
               D.Note + "\n";
    for (const detectors::Diagnostic &Diag : F.Findings)
      Out += Diag.toString() + "\n";
  }
  return Out;
}

std::string CorpusReport::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("files");
  W.beginArray();
  for (const FileReport &F : Files) {
    W.beginObject();
    W.field("path", F.Path);
    W.field("status", engineStatusName(F.Status));
    if (!F.Reason.empty())
      W.field("reason", F.Reason);
    if (!F.ParseErrors.empty()) {
      W.key("parse_errors");
      W.beginArray();
      for (const std::string &E : F.ParseErrors)
        W.value(E);
      W.endArray();
    }
    if (!F.VerifierErrors.empty()) {
      W.key("verifier_errors");
      W.beginArray();
      for (const std::string &E : F.VerifierErrors)
        W.value(E);
      W.endArray();
    }
    if (F.ItemsDropped != 0)
      W.field("items_dropped", static_cast<int64_t>(F.ItemsDropped));
    W.key("detectors");
    W.beginArray();
    for (const DetectorOutcome &D : F.Detectors) {
      W.beginObject();
      W.field("name", D.Name);
      W.field("status", engineStatusName(D.Status));
      if (!D.Note.empty())
        W.field("note", D.Note);
      W.field("findings", static_cast<int64_t>(D.Findings));
      W.endObject();
    }
    W.endArray();
    // The per-finding fields mirror DiagnosticEngine::renderJson so report
    // consumers parse one schema.
    W.key("findings");
    W.beginArray();
    for (const detectors::Diagnostic &D : F.Findings) {
      W.beginObject();
      W.field("kind", detectors::bugKindName(D.Kind));
      W.field("function", D.Function);
      W.field("block", static_cast<int64_t>(D.Block));
      W.field("statement", static_cast<int64_t>(D.StmtIndex));
      W.field("message", D.Message);
      if (D.Loc.isValid())
        W.field("location", D.Loc.toString());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("summary");
  W.beginObject();
  W.field("files", static_cast<int64_t>(Files.size()));
  W.field("ok", static_cast<int64_t>(countWithStatus(EngineStatus::Ok)));
  W.field("degraded",
          static_cast<int64_t>(countWithStatus(EngineStatus::Degraded)));
  W.field("skipped",
          static_cast<int64_t>(countWithStatus(EngineStatus::Skipped)));
  W.field("findings", static_cast<int64_t>(totalFindings()));
  W.endObject();
  W.endObject();
  return W.str();
}

int CorpusReport::exitCode(bool Strict) const {
  bool AnyAnalyzed = false;
  bool AnyImperfect = false;
  for (const FileReport &F : Files) {
    AnyAnalyzed |= F.analyzed();
    AnyImperfect |= F.Status != EngineStatus::Ok;
  }
  if (Files.empty() || !AnyAnalyzed)
    return 2;
  if (Strict && AnyImperfect)
    return 2;
  return totalFindings() == 0 ? 0 : 1;
}

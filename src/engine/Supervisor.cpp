#include "engine/Supervisor.h"

#include "analysis/Link.h"
#include "corpus/CorpusWalk.h"
#include "detectors/Detector.h"
#include "diag/Diag.h"
#include "engine/Checkpoint.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/SourceLocation.h"
#include "support/Subprocess.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include <poll.h>
#include <unistd.h>

using namespace rs;
using namespace rs::engine;

namespace {

using Clock = std::chrono::steady_clock;

/// Backstop against a worker announcing an absurd frame; a single file
/// report is orders of magnitude smaller.
constexpr size_t MaxFramePayload = 64u << 20;

/// Worker stderr kept per attempt (the tail is what lands in quarantine
/// notes; anything longer has stopped being a note).
constexpr size_t StderrTailCap = 8192;

/// Grace period between a worker closing both streams and the supervisor
/// SIGKILLing it anyway — a worker with closed pipes that has not exited
/// is as hung as one that never wrote.
constexpr auto ReapGrace = std::chrono::seconds(5);

/// Link-phase stats carried from the link block to the final report.
struct LinkStatsOut {
  unsigned LinkedFiles = 0;
  unsigned Rounds = 0;
  unsigned ModulesFromDb = 0;
  uint64_t DbHits = 0;
  uint64_t DbMisses = 0;
  uint64_t DbStores = 0;
};

enum class Outcome {
  Done,     ///< Complete frame stream + "done" frame.
  Crash,    ///< Killed by a signal (SIGSEGV, SIGABRT, ...).
  Exit,     ///< Exited with a nonzero code.
  Timeout,  ///< SIGKILLed by the watchdog deadline.
  Protocol, ///< Output unusable: bad framing, bad JSON, premature exit 0.
};

/// One unit of queued work: a sorted slice of global input ordinals.
/// Attempts counts protocol-failure attempts (trusted-frame failures use
/// per-file strike counters instead, so attribution survives re-sharding).
struct Shard {
  std::vector<size_t> Ordinals;
  unsigned Attempts = 0;
  Clock::time_point NotBefore{};
};

struct ActiveWorker {
  ActiveWorker(proc::Subprocess P, Shard T)
      : Proc(std::move(P)), Task(std::move(T)) {}

  proc::Subprocess Proc;
  Shard Task;
  std::string OutBuf;  ///< Unconsumed frame bytes.
  std::string ErrTail; ///< Trailing stderr (capped).
  /// Results accepted from this attempt's frame stream, in arrival order.
  /// Only merged into the run once the attempt is classified: trusted
  /// classifications (done/crash/exit/timeout) keep them, protocol
  /// failures discard them.
  std::vector<std::pair<size_t, FileReport>> Accepted;
  bool Done = false;
  bool Protocol = false;
  std::string ProtocolNote;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
};

bool parseHexLen(const char *P, size_t &Out) {
  size_t V = 0;
  for (int I = 0; I != 8; ++I) {
    char C = P[I];
    unsigned D = 0;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = unsigned(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

void markProtocol(ActiveWorker &W, std::string Note) {
  W.Protocol = true;
  if (W.ProtocolNote.empty())
    W.ProtocolNote = std::move(Note);
}

void handlePayload(ActiveWorker &W, std::string_view Payload) {
  std::optional<JsonValue> V = JsonValue::parse(Payload);
  if (!V || !V->isObject()) {
    markProtocol(W, "unparseable frame payload");
    return;
  }
  std::string_view Type = V->getString("type");
  if (Type == "done") {
    W.Done = true;
    return;
  }
  if (Type != "file") {
    markProtocol(W, "unknown frame type");
    return;
  }
  int64_t Ordinal = V->getInt("ordinal", -1);
  const JsonValue *Report = V->get("report");
  if (Ordinal < 0 || !Report ||
      !std::binary_search(W.Task.Ordinals.begin(), W.Task.Ordinals.end(),
                          size_t(Ordinal))) {
    markProtocol(W, "frame for an ordinal outside the shard");
    return;
  }
  for (const auto &P : W.Accepted)
    if (P.first == size_t(Ordinal)) {
      markProtocol(W, "duplicate frame for one ordinal");
      return;
    }
  std::optional<FileReport> R = fileReportFromJson(*Report);
  if (!R) {
    markProtocol(W, "malformed file report");
    return;
  }
  W.Accepted.emplace_back(size_t(Ordinal), std::move(*R));
}

void parseFrames(ActiveWorker &W) {
  while (!W.Protocol) {
    if (W.OutBuf.size() < 9)
      return;
    size_t Len = 0;
    if (!parseHexLen(W.OutBuf.data(), Len) || W.OutBuf[8] != '\n' ||
        Len > MaxFramePayload) {
      markProtocol(W, "corrupt frame header");
      return;
    }
    if (W.OutBuf.size() < 9 + Len + 1)
      return;
    if (W.OutBuf[9 + Len] != '\n') {
      markProtocol(W, "missing frame terminator");
      return;
    }
    handlePayload(W, std::string_view(W.OutBuf.data() + 9, Len));
    W.OutBuf.erase(0, 9 + Len + 1);
  }
}

/// Drains whatever is currently readable from the worker's streams.
/// Returns true while at least one stream is still open.
bool drainStreams(ActiveWorker &W) {
  if (int Fd = W.Proc.stdoutFd(); Fd != -1) {
    W.Proc.readSome(Fd, W.OutBuf);
    parseFrames(W);
  }
  if (int Fd = W.Proc.stderrFd(); Fd != -1) {
    std::string Chunk;
    if (W.Proc.readSome(Fd, Chunk) == proc::Subprocess::ReadStatus::Data) {
      // Forward worker-side notes (budget exhaustion, fault causes) so a
      // supervised run surfaces the same observability as an in-process
      // one; stderr is already outside the byte-stable report surface.
      std::fwrite(Chunk.data(), 1, Chunk.size(), stderr);
      W.ErrTail += Chunk;
      if (W.ErrTail.size() > StderrTailCap)
        W.ErrTail.erase(0, W.ErrTail.size() - StderrTailCap);
    }
  }
  return W.Proc.stdoutFd() != -1 || W.Proc.stderrFd() != -1;
}

/// Keeps the stderr-tail lines relevant to \p Path: lines naming the path,
/// plus unattributed lines (crash spew). Lines the worker attributed to
/// *other* files ("worker: <other>: ...") are dropped so quarantine notes
/// stay byte-identical however the corpus was sharded around the victim.
std::string filterTailFor(const std::string &Tail, const std::string &Path) {
  std::string Out;
  size_t Begin = 0;
  while (Begin < Tail.size()) {
    size_t End = Tail.find('\n', Begin);
    size_t Len = (End == std::string::npos ? Tail.size() : End) - Begin;
    std::string_view Line(Tail.data() + Begin, Len);
    bool NamesPath = Line.find(Path) != std::string_view::npos;
    bool AttributedElsewhere =
        !NamesPath && Line.substr(0, 8) == "worker: ";
    if (!Line.empty() && !AttributedElsewhere) {
      Out.append(Line);
      Out += '\n';
    }
    if (End == std::string::npos)
      break;
    Begin = End + 1;
  }
  return Out;
}

FileReport makeQuarantineReport(const std::string &Path,
                                const std::string &Cause, unsigned Attempts,
                                const std::string &Tail) {
  FileReport R;
  R.Path = Path;
  R.Status = EngineStatus::Skipped;
  R.Reason = "quarantined after " + std::to_string(Attempts) +
             " isolated worker attempt(s): " + Cause;

  diag::Diagnostic D(diag::RuleId::WorkerQuarantined);
  D.Message = "file quarantined: " + Cause;
  D.Loc = SourceLocation(internFileName(Path), 1, 1);
  size_t Notes = 0;
  size_t Begin = 0;
  while (Begin < Tail.size() && Notes != 5) {
    size_t End = Tail.find('\n', Begin);
    size_t Len = (End == std::string::npos ? Tail.size() : End) - Begin;
    if (Len != 0) {
      D.Notes.push_back("worker stderr: " + Tail.substr(Begin, Len));
      ++Notes;
    }
    if (End == std::string::npos)
      break;
    Begin = End + 1;
  }
  R.Notices.push_back(std::move(D));
  return R;
}

std::vector<std::string> workerArgv(const SupervisorOptions &Opts) {
  const EngineOptions &E = Opts.Engine;
  std::vector<std::string> Argv{Opts.WorkerExe, "worker"};
  auto Push = [&](const char *Flag, uint64_t Value) {
    Argv.emplace_back(Flag);
    Argv.push_back(std::to_string(Value));
  };
  if (E.BudgetMs)
    Push("--budget-ms", E.BudgetMs);
  if (E.MaxFileSteps)
    Push("--max-file-steps", E.MaxFileSteps);
  if (E.MaxDataflowIters)
    Push("--max-dataflow-iters", E.MaxDataflowIters);
  if (E.MaxSummaryRounds != EngineOptions().MaxSummaryRounds)
    Push("--max-summary-rounds", E.MaxSummaryRounds);
  if (!E.UseCache)
    Argv.emplace_back("--no-cache");
  else if (!E.CacheDir.empty()) {
    Argv.emplace_back("--cache-dir");
    Argv.push_back(E.CacheDir);
  }
  return Argv;
}

/// One JSON string literal (quoted, escaped).
std::string jsonString(std::string_view S) {
  JsonWriter W;
  W.value(S);
  return W.str();
}

//===----------------------------------------------------------------------===//
// The map fleet (link phases 1 and 2)
//===----------------------------------------------------------------------===//
//
// The link step's facts and summarize phases are simple maps: item in,
// opaque JSON payload out, no cross-item state. They reuse the worker wire
// protocol (length-prefixed frames) under a mode preamble, with a reduced
// supervision ladder: retries with first-unreported-file attribution, but
// no bisection — a file whose facts cannot be collected just degrades to
// per-file analysis (and a module whose summarize round is lost contributes
// nothing that round), so poison files meet the full quarantine machinery
// in the analyze phase, exactly once.

struct MapWorker {
  MapWorker(proc::Subprocess P, Shard T)
      : Proc(std::move(P)), Task(std::move(T)) {}

  proc::Subprocess Proc;
  Shard Task;
  std::string OutBuf;
  std::string ErrTail;
  std::vector<std::pair<size_t, std::optional<std::string>>> Accepted;
  bool Done = false;
  bool Protocol = false;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
};

void parseMapFrames(MapWorker &W) {
  while (!W.Protocol) {
    if (W.OutBuf.size() < 9)
      return;
    size_t Len = 0;
    if (!parseHexLen(W.OutBuf.data(), Len) || W.OutBuf[8] != '\n' ||
        Len > MaxFramePayload)
      W.Protocol = true;
    if (W.Protocol || W.OutBuf.size() < 9 + Len + 1)
      return;
    if (W.OutBuf[9 + Len] != '\n') {
      W.Protocol = true;
      return;
    }
    std::string_view Payload(W.OutBuf.data() + 9, Len);
    std::optional<JsonValue> V = JsonValue::parse(Payload);
    if (!V || !V->isObject()) {
      W.Protocol = true;
      return;
    }
    std::string_view Type = V->getString("type");
    if (Type == "done") {
      W.Done = true;
    } else if (Type == "file") {
      int64_t Ordinal = V->getInt("ordinal", -1);
      if (Ordinal < 0 ||
          !std::binary_search(W.Task.Ordinals.begin(),
                              W.Task.Ordinals.end(), size_t(Ordinal))) {
        W.Protocol = true;
        return;
      }
      const JsonValue *P = V->get("payload");
      std::optional<std::string> Out;
      if (P && P->isString())
        Out = std::string(P->asString());
      W.Accepted.emplace_back(size_t(Ordinal), std::move(Out));
    } else {
      W.Protocol = true;
      return;
    }
    W.OutBuf.erase(0, 9 + Len + 1);
  }
}

bool drainMapStreams(MapWorker &W) {
  if (int Fd = W.Proc.stdoutFd(); Fd != -1) {
    W.Proc.readSome(Fd, W.OutBuf);
    parseMapFrames(W);
  }
  if (int Fd = W.Proc.stderrFd(); Fd != -1) {
    std::string Chunk;
    if (W.Proc.readSome(Fd, Chunk) == proc::Subprocess::ReadStatus::Data) {
      std::fwrite(Chunk.data(), 1, Chunk.size(), stderr);
      W.ErrTail += Chunk;
      if (W.ErrTail.size() > StderrTailCap)
        W.ErrTail.erase(0, W.ErrTail.size() - StderrTailCap);
    }
  }
  return W.Proc.stdoutFd() != -1 || W.Proc.stderrFd() != -1;
}

/// Maps \p ItemTails through a worker fleet under \p Preamble (the mode
/// line). Item I is fed as "<I>\t<ItemTails[I]>"; the result slot holds the
/// worker's payload string, or nullopt when the worker returned null or the
/// item kept failing (MaxRetries strikes on the first unreported file of a
/// failed attempt, like the analyze fleet's trusted path).
std::vector<std::optional<std::string>>
runMapFleet(const SupervisorOptions &Opts, const std::string &Preamble,
            const std::vector<std::string> &ItemTails, unsigned MaxWorkers) {
  const size_t N = ItemTails.size();
  std::vector<std::optional<std::string>> Out(N);
  if (N == 0)
    return Out;
  std::vector<bool> Resolved(N, false);

  std::deque<Shard> Queue;
  {
    unsigned ShardCount = std::min<size_t>(MaxWorkers, N);
    size_t Base = 0;
    for (unsigned S = 0; S != ShardCount; ++S) {
      size_t Count = N / ShardCount + (S < N % ShardCount ? 1 : 0);
      if (Count == 0)
        continue;
      Shard Sh;
      for (size_t I = Base; I != Base + Count; ++I)
        Sh.Ordinals.push_back(I);
      Base += Count;
      Queue.push_back(std::move(Sh));
    }
  }

  std::map<size_t, unsigned> Strikes;
  std::vector<std::unique_ptr<MapWorker>> Active;

  auto Requeue = [&](std::vector<std::pair<size_t, std::optional<std::string>>>
                         &Accepted,
                     const std::vector<size_t> &Ordinals, bool Trusted) {
    if (Trusted)
      for (auto &P : Accepted)
        if (!Resolved[P.first]) {
          Resolved[P.first] = true;
          Out[P.first] = std::move(P.second);
        }
    std::vector<size_t> Remaining;
    for (size_t Ord : Ordinals)
      if (!Resolved[Ord])
        Remaining.push_back(Ord);
    if (Remaining.empty())
      return;
    const size_t Suspect = Remaining.front();
    if (++Strikes[Suspect] > Opts.MaxRetries) {
      Resolved[Suspect] = true; // Stays nullopt: degraded, not retried.
      Remaining.erase(Remaining.begin());
      if (Remaining.empty())
        return;
    }
    Shard Next;
    Next.Ordinals = std::move(Remaining);
    Queue.push_back(std::move(Next));
  };

  auto Launch = [&](Shard Task) {
    proc::Subprocess::Options SO;
    SO.Argv = workerArgv(Opts);
    SO.PipeStdin = true;
    std::string Err;
    std::optional<proc::Subprocess> P = proc::Subprocess::spawn(SO, &Err);
    if (!P) {
      // Spawn failure: strike through the same path a dead worker takes.
      std::vector<std::pair<size_t, std::optional<std::string>>> None;
      Requeue(None, Task.Ordinals, /*Trusted=*/false);
      return;
    }
    std::string Feed = Preamble;
    Feed += '\n';
    for (size_t Ord : Task.Ordinals) {
      Feed += std::to_string(Ord);
      Feed += '\t';
      Feed += ItemTails[Ord];
      Feed += '\n';
    }
    auto W = std::make_unique<MapWorker>(std::move(*P), std::move(Task));
    W->Proc.writeStdin(Feed);
    W->Proc.closeStdin();
    if (Opts.TimeoutMs) {
      W->HasDeadline = true;
      W->Deadline = Clock::now() + std::chrono::milliseconds(Opts.TimeoutMs);
    }
    Active.push_back(std::move(W));
  };

  while (!Queue.empty() || !Active.empty()) {
    while (!Queue.empty() && Active.size() < MaxWorkers) {
      Shard Task = std::move(Queue.front());
      Queue.pop_front();
      Launch(std::move(Task));
    }
    if (Active.empty())
      continue;

    {
      std::vector<struct pollfd> Fds;
      for (const auto &W : Active) {
        if (int Fd = W->Proc.stdoutFd(); Fd != -1)
          Fds.push_back({Fd, POLLIN, 0});
        if (int Fd = W->Proc.stderrFd(); Fd != -1)
          Fds.push_back({Fd, POLLIN, 0});
      }
      ::poll(Fds.empty() ? nullptr : Fds.data(), nfds_t(Fds.size()), 100);
    }
    for (auto &W : Active)
      drainMapStreams(*W);

    for (size_t I = 0; I != Active.size();) {
      MapWorker &W = *Active[I];
      bool Finished = false;
      bool Trusted = true;
      if (W.Protocol) {
        W.Proc.kill();
        W.Proc.wait();
        Finished = true;
        Trusted = false;
      } else if (W.Proc.stdoutFd() == -1 && W.Proc.stderrFd() == -1) {
        if (std::optional<proc::ExitStatus> St = W.Proc.tryWait()) {
          Finished = true;
          Trusted = St->Signaled || St->Code != 0 ||
                    (W.Done && W.Accepted.size() == W.Task.Ordinals.size());
          // A clean exit mid-protocol is as untrustworthy here as in the
          // analyze fleet.
          if (!St->Signaled && St->Code == 0 && !W.Done)
            Trusted = false;
        } else if (!W.HasDeadline || W.Deadline > Clock::now() + ReapGrace) {
          W.HasDeadline = true;
          W.Deadline = Clock::now() + ReapGrace;
        }
      }
      if (!Finished && W.HasDeadline && Clock::now() >= W.Deadline) {
        W.Proc.kill();
        W.Proc.wait();
        while (drainMapStreams(W))
          ;
        Finished = true;
        Trusted = !W.Protocol;
      }
      if (!Finished) {
        ++I;
        continue;
      }
      std::unique_ptr<MapWorker> Owned = std::move(Active[I]);
      Active.erase(Active.begin() + long(I));
      if (Owned->Done &&
          Owned->Accepted.size() == Owned->Task.Ordinals.size() &&
          !Owned->Protocol) {
        for (auto &P : Owned->Accepted)
          if (!Resolved[P.first]) {
            Resolved[P.first] = true;
            Out[P.first] = std::move(P.second);
          }
      } else {
        Requeue(Owned->Accepted, Owned->Task.Ordinals, Trusted);
      }
    }
  }
  return Out;
}

} // namespace

uint64_t rs::engine::journalSalt(const EngineOptions &Opts,
                                 const std::vector<std::string> &DetectorNames,
                                 bool Linked) {
  uint64_t Salt = cacheSalt(Opts, DetectorNames);
  if (Linked)
    Salt = fnv1a64("rustsight-whole-program", Salt);
  return Salt;
}

CorpusReport Supervisor::run(const std::vector<std::string> &Paths) {
  const auto Start = Clock::now();

  std::vector<corpus::CorpusInput> Inputs = corpus::expandMirPaths(Paths);
  const size_t N = Inputs.size();
  std::vector<std::optional<FileReport>> Results(N);
  for (size_t I = 0; I != N; ++I) {
    if (Inputs[I].SkipReason.empty())
      continue;
    FileReport R;
    R.Path = Inputs[I].Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = Inputs[I].SkipReason;
    Results[I] = std::move(R);
  }

  // The whole-program gate, decided exactly like the in-process driver
  // (AnalysisEngine::analyzeCorpus) so `--shards N` never changes modes.
  size_t Analyzable = 0;
  for (const corpus::CorpusInput &In : Inputs)
    Analyzable += In.SkipReason.empty();
  const bool Linked =
      Opts.Engine.WholeProgram == WholeProgramMode::On ||
      (Opts.Engine.WholeProgram == WholeProgramMode::Auto && Analyzable > 1);

  // The same salt the workers' caches use keys the checkpoint journal: a
  // journal from a different battery or budget configuration never resumes.
  std::vector<std::string> DetNames;
  for (const auto &D : detectors::makeAllDetectors())
    DetNames.emplace_back(D->name());
  const RunKey Key{fingerprintCorpus(Inputs),
                   journalSalt(Opts.Engine, DetNames, Linked)};

  std::optional<CheckpointJournal> Journal;
  if (!Opts.CheckpointPath.empty())
    Journal.emplace(Opts.CheckpointPath);
  if (Journal && Opts.Resume)
    Journal->load(Key, Results);

  std::vector<size_t> PendingOrdinals;
  for (size_t I = 0; I != N; ++I)
    if (!Results[I])
      PendingOrdinals.push_back(I);

  const unsigned Hardware =
      std::max(1u, std::thread::hardware_concurrency());
  unsigned ShardCount =
      Opts.Shards ? Opts.Shards
                  : (Opts.MaxWorkers ? Opts.MaxWorkers : Hardware);
  if (!PendingOrdinals.empty() && ShardCount > PendingOrdinals.size())
    ShardCount = unsigned(PendingOrdinals.size());
  const unsigned MaxWorkers =
      Opts.MaxWorkers ? Opts.MaxWorkers : std::min(ShardCount, Hardware);

  // The link step (phases 1 and 2 of the whole-program protocol). The
  // supervisor drives the same solveLink() fixpoint as the in-process
  // engine — only the transport of each phase differs (a map fleet instead
  // of a thread pool) — so the round trajectory, the environment, and the
  // per-file digests are byte-identical to an in-process run over the same
  // corpus and summary DB.
  analysis::ExternalSummaries LinkEnv;
  std::vector<uint64_t> LinkDigest(N, 0);
  std::vector<bool> InLink(N, false);
  std::string AnalyzePreamble;
  LinkStatsOut LinkStats;
  if (Linked) {
    const unsigned FleetWorkers =
        std::max(1u, Opts.MaxWorkers ? Opts.MaxWorkers : Hardware);

    // Phase 1: facts, one fleet over every analyzable input (journaled
    // files included — their summaries still feed other files' analyses).
    // A file whose facts cannot be collected degrades to per-file mode.
    std::vector<size_t> FactInput;
    std::vector<std::string> FactTails;
    for (size_t I = 0; I != N; ++I)
      if (Inputs[I].SkipReason.empty()) {
        FactInput.push_back(I);
        FactTails.push_back(Inputs[I].Path);
      }
    std::vector<std::optional<std::string>> FactPayloads =
        runMapFleet(Opts, "{\"mode\":\"facts\"}", FactTails, FleetWorkers);

    std::vector<analysis::ModuleFacts> Facts;
    std::vector<size_t> LinkInputOrd; // Module index -> input ordinal.
    for (size_t K = 0; K != FactInput.size(); ++K) {
      if (!FactPayloads[K])
        continue;
      std::optional<analysis::ModuleFacts> F =
          analysis::deserializeModuleFacts(*FactPayloads[K]);
      if (!F)
        continue;
      LinkInputOrd.push_back(FactInput[K]);
      Facts.push_back(std::move(*F));
    }

    // Phase 2: the link fixpoint; each solver round is one summarize fleet.
    analysis::LinkOptions LO;
    LO.MaxSummaryRounds =
        Opts.Engine.MaxSummaryRounds ? Opts.Engine.MaxSummaryRounds : 8;
    std::optional<sched::SummaryDb> Db;
    analysis::LinkDbHooks Hooks;
    if (Opts.Engine.UseCache) {
      sched::SummaryDb::Options DO;
      DO.DiskDir = Opts.Engine.CacheDir;
      DO.SchemaOverride = Opts.Engine.SummaryDbSchemaOverride;
      Db.emplace(std::move(DO));
      Hooks.Lookup = [&Db](uint64_t K) { return Db->lookup(K); };
      Hooks.Store = [&Db](uint64_t K, std::string_view P) {
        Db->store(K, P);
      };
    }
    analysis::SummarizeRoundFn Summarize =
        [&](const std::vector<uint32_t> &ModuleIdxs,
            const analysis::ExternalSummaries &Env) {
          std::vector<std::string> Tails;
          Tails.reserve(ModuleIdxs.size());
          for (uint32_t M : ModuleIdxs)
            Tails.push_back(std::to_string(M) + "\t" +
                            Inputs[LinkInputOrd[M]].Path);
          std::string Pre = "{\"mode\":\"summarize\",\"env\":" +
                            jsonString(analysis::serializeEnv(Env)) + "}";
          std::vector<std::optional<std::string>> Payloads =
              runMapFleet(Opts, Pre, Tails, FleetWorkers);
          std::vector<analysis::ModuleSummaries> Round;
          for (auto &P : Payloads) {
            if (!P)
              continue; // Lost module: unchanged this round.
            if (std::optional<analysis::ModuleSummaries> MS =
                    analysis::deserializeModuleSummaries(*P))
              Round.push_back(std::move(*MS));
          }
          return Round;
        };
    analysis::LinkResult LR =
        analysis::solveLink(analysis::LinkedCorpus::build(std::move(Facts)),
                            LO, Hooks, Summarize);
    LinkEnv = std::move(LR.Env);
    for (uint32_t M = 0;
         M != static_cast<uint32_t>(LR.Corpus.modules().size()); ++M) {
      size_t Ord = LinkInputOrd[M];
      InLink[Ord] = true;
      LinkDigest[Ord] = LR.Corpus.linkDigest(M);
    }
    AnalyzePreamble = "{\"mode\":\"analyze\",\"env\":" +
                      jsonString(analysis::serializeEnv(LinkEnv)) + "}";
    LinkStats.LinkedFiles = static_cast<unsigned>(LinkInputOrd.size());
    LinkStats.Rounds = LR.Stats.Rounds;
    LinkStats.ModulesFromDb = LR.Stats.ModulesFromDb;
    LinkStats.DbHits = LR.Stats.DbHits;
    LinkStats.DbMisses = LR.Stats.DbMisses;
    LinkStats.DbStores = LR.Stats.DbStores;
  }

  // Contiguous, deterministic partition of the pending ordinals.
  std::deque<Shard> Queue;
  if (!PendingOrdinals.empty()) {
    size_t Base = 0;
    for (unsigned S = 0; S != ShardCount; ++S) {
      size_t Count = PendingOrdinals.size() / ShardCount +
                     (S < PendingOrdinals.size() % ShardCount ? 1 : 0);
      if (Count == 0)
        continue;
      Shard Sh;
      Sh.Ordinals.assign(PendingOrdinals.begin() + long(Base),
                         PendingOrdinals.begin() + long(Base + Count));
      Base += Count;
      Queue.push_back(std::move(Sh));
    }
  }

  std::map<size_t, unsigned> Strikes;
  std::vector<std::unique_ptr<ActiveWorker>> Active;
  bool Interrupted = false;

  auto Checkpoint = [&] {
    if (Journal)
      Journal->write(Key, Results);
    // Deterministic stand-in for kill -9: tests arm this site to verify
    // that whatever the journal holds right now is enough to resume from.
    if (fault::shouldFail("engine.supervisor.interrupt"))
      Interrupted = true;
  };

  auto Quarantine = [&](size_t Ordinal, const std::string &Cause,
                        unsigned Attempts, const std::string &Tail) {
    Results[Ordinal] = makeQuarantineReport(
        Inputs[Ordinal].Path, Cause, Attempts,
        filterTailFor(Tail, Inputs[Ordinal].Path));
  };

  auto Backoff = [&](unsigned Strike) {
    uint64_t Ms = Opts.BackoffMs;
    for (unsigned I = 1; I < Strike && Ms < 2000; ++I)
      Ms *= 2;
    return Clock::now() + std::chrono::milliseconds(std::min<uint64_t>(
                              Ms, 2000));
  };

  // Frames from the attempt could not be trusted (corrupt framing or JSON,
  // premature clean exit, spawn failure): retry the remainder whole, then
  // bisect — each level gets one attempt — down to a quarantined singleton.
  auto HandleUntrusted = [&](Shard Task, const std::string &Cause,
                             const std::string &Tail) {
    std::vector<size_t> Remaining;
    for (size_t Ord : Task.Ordinals)
      if (!Results[Ord])
        Remaining.push_back(Ord);
    if (Remaining.empty()) {
      Checkpoint();
      return;
    }
    Task.Ordinals = std::move(Remaining);
    ++Task.Attempts;
    if (Task.Attempts <= Opts.MaxRetries) {
      Task.NotBefore = Backoff(Task.Attempts);
      Queue.push_back(std::move(Task));
      return;
    }
    if (Task.Ordinals.size() == 1) {
      Quarantine(Task.Ordinals[0], Cause, Task.Attempts, Tail);
      Checkpoint();
      return;
    }
    size_t Mid = Task.Ordinals.size() / 2;
    Shard Lo, Hi;
    Lo.Ordinals.assign(Task.Ordinals.begin(),
                       Task.Ordinals.begin() + long(Mid));
    Hi.Ordinals.assign(Task.Ordinals.begin() + long(Mid),
                       Task.Ordinals.end());
    // One attempt per bisection level keeps isolation O(log n) worker runs
    // while the total attempt count at quarantine stays MaxRetries + 1 —
    // the reason text is byte-identical however the run was sharded.
    Lo.Attempts = Hi.Attempts = Opts.MaxRetries;
    Lo.NotBefore = Hi.NotBefore = Clock::now();
    Queue.push_back(std::move(Lo));
    Queue.push_back(std::move(Hi));
  };

  // The frame stream up to the failure is trustworthy (crash, nonzero
  // exit, watchdog kill): keep every streamed result, attribute the
  // failure to the first file without one, and strike it.
  auto HandleTrusted = [&](ActiveWorker &W, const std::string &Cause) {
    for (auto &P : W.Accepted)
      if (!Results[P.first])
        Results[P.first] = std::move(P.second);
    std::vector<size_t> Remaining;
    for (size_t Ord : W.Task.Ordinals)
      if (!Results[Ord])
        Remaining.push_back(Ord);
    if (Remaining.empty()) {
      Checkpoint();
      return;
    }
    const size_t Suspect = Remaining.front();
    const unsigned S = ++Strikes[Suspect];
    Shard Next;
    if (S > Opts.MaxRetries) {
      Quarantine(Suspect, Cause, S, W.ErrTail);
      Remaining.erase(Remaining.begin());
      Checkpoint();
      if (Remaining.empty())
        return;
      Next.NotBefore = Clock::now();
    } else {
      Next.NotBefore = Backoff(S);
      Checkpoint();
    }
    Next.Ordinals = std::move(Remaining);
    Queue.push_back(std::move(Next));
  };

  auto Launch = [&](Shard Task) {
    proc::Subprocess::Options SO;
    SO.Argv = workerArgv(Opts);
    SO.PipeStdin = true;
    std::string Err;
    std::optional<proc::Subprocess> P = proc::Subprocess::spawn(SO, &Err);
    if (!P) {
      HandleUntrusted(std::move(Task), "worker spawn failed: " + Err, "");
      return;
    }
    // Linked runs prepend the analyze preamble (mode + environment) and a
    // per-file digest column; the legacy two-column feed is preserved for
    // per-file runs so the wire stays byte-compatible.
    std::string Feed;
    if (Linked) {
      Feed += AnalyzePreamble;
      Feed += '\n';
    }
    for (size_t Ord : Task.Ordinals) {
      Feed += std::to_string(Ord);
      Feed += '\t';
      if (Linked) {
        Feed += InLink[Ord] ? std::to_string(LinkDigest[Ord])
                            : std::string("-");
        Feed += '\t';
      }
      Feed += Inputs[Ord].Path;
      Feed += '\n';
    }
    auto W = std::make_unique<ActiveWorker>(std::move(*P), std::move(Task));
    // A write failure means the child is already dead; the reap below
    // classifies that better than we could here.
    W->Proc.writeStdin(Feed);
    W->Proc.closeStdin();
    if (Opts.TimeoutMs) {
      W->HasDeadline = true;
      W->Deadline = Clock::now() + std::chrono::milliseconds(Opts.TimeoutMs);
    }
    Active.push_back(std::move(W));
  };

  while (!Interrupted && (!Queue.empty() || !Active.empty())) {
    // Launch every ready shard for which there is a worker slot.
    const auto Now = Clock::now();
    for (size_t I = 0; I != Queue.size() && Active.size() < MaxWorkers;) {
      if (Queue[I].NotBefore <= Now) {
        Shard Task = std::move(Queue[I]);
        Queue.erase(Queue.begin() + long(I));
        Launch(std::move(Task));
      } else {
        ++I;
      }
    }
    if (Interrupted)
      break;
    if (Active.empty()) {
      if (Queue.empty())
        break;
      // Everything queued is backing off; sleep until the earliest gate.
      Clock::time_point Earliest = Queue.front().NotBefore;
      for (const Shard &Sh : Queue)
        Earliest = std::min(Earliest, Sh.NotBefore);
      std::this_thread::sleep_until(Earliest);
      continue;
    }

    // Wait for output, a death, or a deadline. readSome is non-blocking,
    // so it is safe (and simplest) to attempt a drain on every worker
    // afterwards regardless of which fd woke us.
    {
      std::vector<struct pollfd> Fds;
      for (const auto &W : Active) {
        if (int Fd = W->Proc.stdoutFd(); Fd != -1)
          Fds.push_back({Fd, POLLIN, 0});
        if (int Fd = W->Proc.stderrFd(); Fd != -1)
          Fds.push_back({Fd, POLLIN, 0});
      }
      int TimeoutMsPoll = 100;
      const auto PollNow = Clock::now();
      auto Consider = [&](Clock::time_point T) {
        auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      T - PollNow)
                      .count();
        TimeoutMsPoll = int(std::clamp<long long>(Ms, 0, TimeoutMsPoll));
      };
      for (const auto &W : Active)
        if (W->HasDeadline)
          Consider(W->Deadline);
      if (Active.size() < MaxWorkers)
        for (const Shard &Sh : Queue)
          Consider(Sh.NotBefore);
      ::poll(Fds.empty() ? nullptr : Fds.data(), nfds_t(Fds.size()),
             TimeoutMsPoll);
    }

    for (auto &W : Active)
      drainStreams(*W);

    // Classify every worker that finished (or must be finished off).
    for (size_t I = 0; I != Active.size();) {
      ActiveWorker &W = *Active[I];
      bool Finished = false;
      Outcome Oc = Outcome::Done;
      std::string Cause;

      if (W.Protocol) {
        W.Proc.kill();
        W.Proc.wait();
        Finished = true;
        Oc = Outcome::Protocol;
        Cause = "unusable worker output (" + W.ProtocolNote + ")";
      } else if (W.Proc.stdoutFd() == -1 && W.Proc.stderrFd() == -1) {
        if (std::optional<proc::ExitStatus> St = W.Proc.tryWait()) {
          Finished = true;
          if (W.Done && W.Accepted.size() == W.Task.Ordinals.size()) {
            Oc = Outcome::Done;
          } else if (St->Signaled) {
            Oc = Outcome::Crash;
            Cause = "worker " + St->describe();
          } else if (St->Code != 0) {
            Oc = Outcome::Exit;
            Cause = "worker " + St->describe();
          } else {
            Oc = Outcome::Protocol;
            Cause = "unusable worker output (exited cleanly mid-protocol)";
          }
        } else if (!W.HasDeadline ||
                   W.Deadline > Clock::now() + ReapGrace) {
          // Streams closed but not exited: give it a short grace, then
          // the deadline branch below SIGKILLs it.
          W.HasDeadline = true;
          W.Deadline = Clock::now() + ReapGrace;
        }
      }

      if (!Finished && W.HasDeadline && Clock::now() >= W.Deadline) {
        W.Proc.kill();
        W.Proc.wait();
        // The pipes may still hold frames written before the hang; use
        // them — they tighten the attribution to the first un-reported
        // file.
        while (drainStreams(W))
          ;
        Finished = true;
        if (W.Protocol) {
          Oc = Outcome::Protocol;
          Cause = "unusable worker output (" + W.ProtocolNote + ")";
        } else {
          Oc = Outcome::Timeout;
          Cause = Opts.TimeoutMs
                      ? "watchdog timeout after " +
                            std::to_string(Opts.TimeoutMs) + " ms"
                      : "worker unresponsive after closing its streams";
        }
      }

      if (!Finished) {
        ++I;
        continue;
      }
      std::unique_ptr<ActiveWorker> Owned = std::move(Active[I]);
      Active.erase(Active.begin() + long(I));
      switch (Oc) {
      case Outcome::Done:
        for (auto &P : Owned->Accepted)
          Results[P.first] = std::move(P.second);
        Checkpoint();
        break;
      case Outcome::Protocol:
        HandleUntrusted(std::move(Owned->Task), Cause, Owned->ErrTail);
        break;
      case Outcome::Crash:
      case Outcome::Exit:
      case Outcome::Timeout:
        HandleTrusted(*Owned, Cause);
        break;
      }
      if (Interrupted)
        break;
    }
  }

  for (auto &W : Active) {
    W->Proc.kill();
    W->Proc.wait();
  }
  Active.clear();

  // Only an interrupt can leave holes; a completed run resolved every
  // ordinal through done/quarantine handling.
  for (size_t I = 0; I != N; ++I) {
    if (Results[I])
      continue;
    FileReport R;
    R.Path = Inputs[I].Path;
    R.Status = EngineStatus::Skipped;
    R.Reason = "run interrupted before analysis (resume with --resume)";
    Results[I] = std::move(R);
  }

  CorpusReport Report;
  Report.Files.reserve(N);
  for (auto &R : Results)
    Report.Files.push_back(std::move(*R));
  Report.finalize();
  Report.Stats.Jobs = MaxWorkers;
  Report.Stats.CacheEnabled = Opts.Engine.UseCache;
  Report.Stats.WallMs = std::chrono::duration<double, std::milli>(
                            Clock::now() - Start)
                            .count();
  if (Linked) {
    Report.Stats.LinkEnabled = true;
    Report.Stats.LinkedFiles = LinkStats.LinkedFiles;
    Report.Stats.LinkRounds = LinkStats.Rounds;
    Report.Stats.ModulesFromSummaryDb = LinkStats.ModulesFromDb;
    Report.Stats.SummaryDbHits = LinkStats.DbHits;
    Report.Stats.SummaryDbMisses = LinkStats.DbMisses;
    Report.Stats.SummaryDbStores = LinkStats.DbStores;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Worker mode
//===----------------------------------------------------------------------===//

namespace {

void writeFrame(std::string_view Payload) {
  char Header[16];
  std::snprintf(Header, sizeof(Header), "%08zx\n", Payload.size());
  std::fwrite(Header, 1, 9, stdout);
  std::fwrite(Payload.data(), 1, Payload.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

} // namespace

int rs::engine::runWorker(const EngineOptions &OptsIn) {
  EngineOptions Opts = OptsIn;
  Opts.Jobs = 1; // Parallelism is the supervisor's job, one level up.
  AnalysisEngine Engine(Opts);

  // Fault injection must cross the process boundary, so the worker side is
  // armed through the environment rather than the in-process registry:
  // RUSTSIGHT_WORKER_FAULT names the site, RUSTSIGHT_WORKER_FAULT_FILE
  // optionally gates it to paths containing the substring. Fresh processes
  // make the injection deterministic per attempt.
  std::string FaultSite;
  if (const char *S = std::getenv("RUSTSIGHT_WORKER_FAULT"))
    FaultSite = S;
  std::string FaultFile;
  if (const char *S = std::getenv("RUSTSIGHT_WORKER_FAULT_FILE"))
    FaultFile = S;
  if (!FaultSite.empty())
    fault::arm(FaultSite, 1, uint64_t(1) << 32); // Every hit, sans overflow.

  // Read the whole shard before producing any output: the supervisor
  // writes the list and closes our stdin up front, so consuming it first
  // leaves no window for pipe deadlock. A first line starting with '{' is
  // a mode preamble (whole-program link phases); the plain two-column feed
  // stays the legacy analyze protocol.
  enum class Mode { Analyze, LinkedAnalyze, Facts, Summarize };
  Mode WorkerMode = Mode::Analyze;
  analysis::ExternalSummaries Env;

  struct Item {
    uint64_t Ordinal;  ///< Corpus input ordinal (facts/analyze) or module
                       ///< ordinal as assigned by the fleet (summarize).
    uint64_t Aux = 0;  ///< LinkedAnalyze: digest. Summarize: module index.
    bool Linked = false; ///< LinkedAnalyze: file joined the link.
    std::string Path;
  };
  std::vector<Item> Items;
  std::string Line;
  bool First = true;
  while (std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    if (First && Line[0] == '{') {
      First = false;
      std::optional<JsonValue> P = JsonValue::parse(Line);
      if (!P || !P->isObject()) {
        std::fprintf(stderr, "worker: malformed mode preamble\n");
        return 3;
      }
      std::string_view M = P->getString("mode");
      if (M == "facts")
        WorkerMode = Mode::Facts;
      else if (M == "summarize")
        WorkerMode = Mode::Summarize;
      else if (M == "analyze")
        WorkerMode = Mode::LinkedAnalyze;
      else {
        std::fprintf(stderr, "worker: unknown mode preamble\n");
        return 3;
      }
      std::string_view E = P->getString("env");
      if (!E.empty()) {
        std::optional<analysis::ExternalSummaries> D =
            analysis::deserializeEnv(E);
        if (!D) {
          std::fprintf(stderr, "worker: malformed link environment\n");
          return 3;
        }
        Env = std::move(*D);
      }
      continue;
    }
    First = false;
    size_t Tab = Line.find('\t');
    if (Tab == std::string::npos || Tab == 0) {
      std::fprintf(stderr, "worker: malformed shard line\n");
      return 3;
    }
    Item It;
    It.Ordinal = std::strtoull(Line.c_str(), nullptr, 10);
    std::string Rest = Line.substr(Tab + 1);
    if (WorkerMode == Mode::LinkedAnalyze || WorkerMode == Mode::Summarize) {
      size_t Tab2 = Rest.find('\t');
      if (Tab2 == std::string::npos || Tab2 == 0) {
        std::fprintf(stderr, "worker: malformed shard line\n");
        return 3;
      }
      std::string Field = Rest.substr(0, Tab2);
      if (WorkerMode == Mode::LinkedAnalyze && Field == "-") {
        It.Linked = false;
      } else {
        It.Linked = true;
        It.Aux = std::strtoull(Field.c_str(), nullptr, 10);
      }
      It.Path = Rest.substr(Tab2 + 1);
    } else {
      It.Path = std::move(Rest);
    }
    Items.push_back(std::move(It));
  }

  for (const Item &It : Items) {
    if (FaultFile.empty() ||
        It.Path.find(FaultFile) != std::string::npos) {
      if (fault::shouldFail("engine.worker.crash")) {
        // Die by a genuine SIGSEGV even under sanitizers (restore the
        // default disposition first) so the supervisor's classification
        // sees "killed by signal 11", exactly like a real crash.
        std::signal(SIGSEGV, SIG_DFL);
        std::raise(SIGSEGV);
      }
      if (fault::shouldFail("engine.worker.hang"))
        for (;;)
          ::sleep(1); // Watchdog food.
      if (fault::shouldFail("engine.worker.garbage-output")) {
        std::fputs("!! this is not a frame: corrupted worker stream\n",
                   stdout);
        std::fflush(stdout);
        return 0;
      }
    }

    switch (WorkerMode) {
    case Mode::Facts: {
      std::optional<analysis::ModuleFacts> F =
          Engine.collectFileFacts(It.Path);
      if (!F)
        std::fprintf(stderr, "worker: %s: no link facts (per-file mode)\n",
                     It.Path.c_str());
      writeFrame(
          "{\"type\":\"file\",\"ordinal\":" + std::to_string(It.Ordinal) +
          ",\"payload\":" +
          (F ? jsonString(analysis::serializeModuleFacts(*F)) : "null") +
          "}");
      continue;
    }
    case Mode::Summarize: {
      std::optional<analysis::ModuleSummaries> MS = Engine.summarizeFileForLink(
          It.Path, static_cast<uint32_t>(It.Aux), Env);
      if (!MS)
        std::fprintf(stderr, "worker: %s: summarize round lost\n",
                     It.Path.c_str());
      writeFrame(
          "{\"type\":\"file\",\"ordinal\":" + std::to_string(It.Ordinal) +
          ",\"payload\":" +
          (MS ? jsonString(analysis::serializeModuleSummaries(*MS)) : "null") +
          "}");
      continue;
    }
    case Mode::Analyze:
    case Mode::LinkedAnalyze:
      break;
    }

    FileReport R =
        WorkerMode == Mode::LinkedAnalyze && It.Linked
            ? Engine.analyzeFileThroughCacheLinked(It.Path, Env, It.Aux)
            : Engine.analyzeFileThroughCache(It.Path);
    if (R.Status != EngineStatus::Ok)
      std::fprintf(stderr, "worker: %s: %s: %s\n", R.Path.c_str(),
                   engineStatusName(R.Status), R.Reason.c_str());
    writeFrame("{\"type\":\"file\",\"ordinal\":" +
               std::to_string(It.Ordinal) +
               ",\"report\":" + serializeWireFileReport(R) + "}");
  }
  writeFrame("{\"type\":\"done\",\"files\":" + std::to_string(Items.size()) +
             "}");
  return 0;
}

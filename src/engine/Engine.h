//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilient corpus analysis engine: wraps parse -> verify -> detect for
/// whole corpora the way the paper ran its detectors over Servo, TiKV,
/// Parity and the CVE sets — one bad input must cost one status entry, not
/// the run. Three mechanisms (see docs/RESILIENCE.md):
///
///  - Fault isolation: every per-file and per-detector stage runs inside a
///    containment boundary. A parse error, verifier rejection, or detector
///    fault (a thrown exception, including injected ones) quarantines that
///    unit with a structured EngineStatus and the run continues.
///
///  - Resource budgets: a per-file Budget (wall-clock and/or steps) plus a
///    per-function dataflow cap are threaded through summaries and
///    MemoryAnalysis. Exhaustion degrades along the ladder: full analysis
///    -> per-function-only summaries -> detector skipped-with-note. Never a
///    hang.
///
///  - Observability: the CorpusReport carries per-file and per-detector
///    statuses, reasons, and every surviving finding, rendered as text or
///    JSON with a documented exit-code contract.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_ENGINE_ENGINE_H
#define RUSTSIGHT_ENGINE_ENGINE_H

#include "detectors/Detector.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rs::engine {

/// How far a unit (file or detector) got through the pipeline.
enum class EngineStatus {
  Ok,       ///< Completed fully.
  Degraded, ///< Completed, but recovery or budget exhaustion lost precision.
  Skipped,  ///< Quarantined; no (trustworthy) results for this unit.
};

/// Short stable identifier ("ok" / "degraded" / "skipped").
const char *engineStatusName(EngineStatus S);

/// One detector's outcome on one file.
struct DetectorOutcome {
  std::string Name;
  EngineStatus Status = EngineStatus::Ok;
  std::string Note; ///< Why it degraded or was skipped ("" when Ok).
  size_t Findings = 0;
};

/// One file's outcome.
struct FileReport {
  std::string Path;
  EngineStatus Status = EngineStatus::Skipped;
  std::string Reason; ///< Why the file degraded or was skipped ("" when Ok).
  std::vector<std::string> ParseErrors;    ///< Recovered parse diagnostics.
  std::vector<std::string> VerifierErrors; ///< Structural rejections.
  unsigned ItemsDropped = 0; ///< Items lost to parser resynchronization.
  std::vector<DetectorOutcome> Detectors;
  std::vector<detectors::Diagnostic> Findings; ///< Sorted, deduplicated.

  bool analyzed() const { return Status != EngineStatus::Skipped; }
};

/// The whole corpus run.
struct CorpusReport {
  std::vector<FileReport> Files;

  size_t countWithStatus(EngineStatus S) const;
  size_t totalFindings() const;

  /// One status line per file plus its findings and detector notes.
  std::string renderText() const;

  /// {"files": [...], "summary": {...}} — see docs/RESILIENCE.md.
  std::string renderJson() const;

  /// The exit-code contract: 0 = at least one file analyzed, no findings;
  /// 1 = findings reported; 2 = no file produced results (or, under
  /// \p Strict, any file was skipped/degraded or any recovery happened).
  int exitCode(bool Strict = false) const;
};

/// Engine configuration. Zeros mean unlimited (the fail-fast pipeline's
/// historical behavior, minus the fail-fast).
struct EngineOptions {
  uint64_t BudgetMs = 0;         ///< Per-file wall-clock budget.
  uint64_t MaxFileSteps = 0;     ///< Per-file analysis step budget.
  uint64_t MaxDataflowIters = 0; ///< Per-function dataflow update cap.
  unsigned MaxSummaryRounds = 8; ///< Interprocedural summary rounds.
};

/// Runs the detector battery over files/sources with fault isolation and
/// budgets. Fault-injection probe sites: "engine.parse", "engine.verify",
/// "engine.detector" (one probe per detector per file).
class AnalysisEngine {
public:
  using DetectorFactory =
      std::function<std::vector<std::unique_ptr<detectors::Detector>>()>;

  explicit AnalysisEngine(EngineOptions Opts = EngineOptions());

  /// Replaces the built-in detector battery (tests inject faulty
  /// detectors through this).
  void setDetectorFactory(DetectorFactory F) { Factory = std::move(F); }

  /// Analyzes one in-memory buffer.
  FileReport analyzeSource(std::string_view Source, std::string Name);

  /// Reads and analyzes one file; unreadable files are Skipped.
  FileReport analyzeFile(const std::string &Path);

  /// Analyzes every path, never aborting the batch. Directories expand to
  /// their .mir files (recursively, in sorted order); a directory with no
  /// .mir files yields one Skipped entry.
  CorpusReport run(const std::vector<std::string> &Paths);

private:
  void runDetectors(const mir::Module &M, FileReport &R);

  EngineOptions Opts;
  DetectorFactory Factory;
};

} // namespace rs::engine

#endif // RUSTSIGHT_ENGINE_ENGINE_H

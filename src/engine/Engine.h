//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilient corpus analysis engine: wraps parse -> verify -> detect for
/// whole corpora the way the paper ran its detectors over Servo, TiKV,
/// Parity and the CVE sets — one bad input must cost one status entry, not
/// the run. Three mechanisms (see docs/RESILIENCE.md):
///
///  - Fault isolation: every per-file and per-detector stage runs inside a
///    containment boundary. A parse error, verifier rejection, or detector
///    fault (a thrown exception, including injected ones) quarantines that
///    unit with a structured EngineStatus and the run continues.
///
///  - Resource budgets: a per-file Budget (wall-clock and/or steps) plus a
///    per-function dataflow cap are threaded through summaries and
///    MemoryAnalysis. Exhaustion degrades along the ladder: full analysis
///    -> per-function-only summaries -> detector skipped-with-note. Never a
///    hang.
///
///  - Observability: the CorpusReport carries per-file and per-detector
///    statuses, reasons, and every surviving finding, rendered as text or
///    JSON with a documented exit-code contract.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_ENGINE_ENGINE_H
#define RUSTSIGHT_ENGINE_ENGINE_H

#include "corpus/CorpusWalk.h"
#include "detectors/Detector.h"
#include "diag/Baseline.h"
#include "sched/ResultCache.h"
#include "sched/SummaryDb.h"

#include <chrono>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rs {
class JsonValue;
} // namespace rs

namespace rs::diag {
class SourceManager;
} // namespace rs::diag

namespace rs::engine {

/// How far a unit (file or detector) got through the pipeline.
enum class EngineStatus {
  Ok,       ///< Completed fully.
  Degraded, ///< Completed, but recovery or budget exhaustion lost precision.
  Skipped,  ///< Quarantined; no (trustworthy) results for this unit.
};

/// Short stable identifier ("ok" / "degraded" / "skipped").
const char *engineStatusName(EngineStatus S);

/// One detector's outcome on one file.
struct DetectorOutcome {
  std::string Name;
  EngineStatus Status = EngineStatus::Ok;
  std::string Note; ///< Why it degraded or was skipped ("" when Ok).
  size_t Findings = 0;
};

/// One file's outcome. Parse errors, verifier rejections, suppression
/// notices, and the findings themselves are all diag::Diagnostic values —
/// one schema from producer to renderer.
struct FileReport {
  std::string Path;
  EngineStatus Status = EngineStatus::Skipped;
  std::string Reason; ///< Why the file degraded or was skipped ("" when Ok).
  std::vector<diag::Diagnostic> ParseErrors;    ///< RS-PARSE-001 entries.
  std::vector<diag::Diagnostic> VerifierErrors; ///< RS-VERIFY-001 entries.
  /// Non-finding diagnostics about the file itself, e.g. RS-META-001
  /// unknown-suppression warnings (with their machine-applicable fix-its).
  std::vector<diag::Diagnostic> Notices;
  unsigned ItemsDropped = 0; ///< Items lost to parser resynchronization.
  /// Findings dropped by `// rustsight-allow(...)` comments in the source.
  size_t SuppressedFindings = 0;
  /// Findings dropped by an accepted `--baseline` file (applyBaseline).
  size_t BaselinedFindings = 0;
  std::vector<DetectorOutcome> Detectors;
  std::vector<detectors::Diagnostic> Findings; ///< Sorted, deduplicated.

  bool analyzed() const { return Status != EngineStatus::Skipped; }

  /// The degradation machinery as first-class diagnostics: one
  /// RS-ENGINE-001/002 per degraded/skipped file and one RS-ENGINE-003/004
  /// per degraded/skipped detector, each carrying the budget or fault cause.
  /// Derived on demand so the statuses stay the single source of truth.
  std::vector<diag::Diagnostic> statusDiagnostics() const;
};

/// Aggregate observability for one corpus run: scheduler shape, cache
/// effectiveness, wall-clock. Deliberately NOT part of renderJson() — the
/// JSON report is byte-identical across job counts and cold/warm caches,
/// and these numbers are anything but.
struct RunStats {
  unsigned Jobs = 1;         ///< Worker threads actually used.
  double WallMs = 0;         ///< End-to-end corpus wall-clock.
  bool CacheEnabled = false; ///< False when EngineOptions::UseCache is off.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t DiskHits = 0;       ///< Subset of CacheHits served from disk.
  uint64_t CorruptEntries = 0; ///< Disk entries that degraded to misses.

  // Whole-program link step (all zero when the run was per-file).
  bool LinkEnabled = false;
  unsigned LinkedFiles = 0;    ///< Modules that joined the link.
  unsigned LinkRounds = 0;     ///< Summarization rounds the solver ran.
  unsigned ModulesFromSummaryDb = 0; ///< Modules served entirely by the DB.
  uint64_t SummaryDbHits = 0;
  uint64_t SummaryDbMisses = 0;
  uint64_t SummaryDbStores = 0;

  /// One human-readable line, e.g.
  /// "cache: 3 hits, 5 misses, 0 evictions; 12.4 ms wall-clock, 8 jobs".
  std::string renderLine() const;
};

/// The whole corpus run.
struct CorpusReport {
  std::vector<FileReport> Files;
  RunStats Stats;

  size_t countWithStatus(EngineStatus S) const;
  size_t totalFindings() const;

  /// The determinism pass: explicitly re-sorts every file's findings into
  /// the canonical (function, block, statement, kind, message) order.
  /// Files are already in input order — the parallel driver merges results
  /// by input ordinal, never by completion order — so after this pass the
  /// rendered report is byte-identical for any job count. Idempotent.
  void finalize();

  /// One status line per file plus its findings (with labeled secondary
  /// spans, notes and fix-its) and detector notes. Pass a SourceManager to
  /// annotate every span with a caret snippet; with null the spans render
  /// location-only.
  std::string renderText(const diag::SourceManager *SM = nullptr) const;

  /// {"files": [...], "summary": {...}} — see docs/RESILIENCE.md and
  /// docs/DIAGNOSTICS.md for the per-diagnostic schema (schema v2).
  std::string renderJson() const;

  /// SARIF 2.1.0: the full Rules.def catalog as tool.driver.rules plus one
  /// result per finding, parse/verifier error, suppression notice, and
  /// degraded/skipped status diagnostic.
  std::string renderSarif() const;

  /// The exit-code contract: 0 = at least one file analyzed, no findings;
  /// 1 = findings reported; 2 = no file produced results (or, under
  /// \p Strict, any file was skipped/degraded or any recovery happened).
  int exitCode(bool Strict = false) const;
};

/// The fingerprints of every finding in \p Report — the payload of
/// `--write-baseline`.
diag::Baseline collectBaseline(const CorpusReport &Report);

/// Drops every finding whose fingerprint \p B contains (the `--baseline`
/// flow: only *new* findings survive). Bumps each file's BaselinedFindings
/// by the number dropped there; returns the total dropped.
size_t applyBaseline(CorpusReport &Report, const diag::Baseline &B);

/// Whole-program link mode for analyzeCorpus (docs/WHOLEPROGRAM.md).
enum class WholeProgramMode {
  Auto, ///< Link when the corpus has more than one analyzable file.
  On,   ///< Always link.
  Off,  ///< Strictly per-file (the historical pipeline).
};

/// Engine configuration. Zeros mean unlimited (the fail-fast pipeline's
/// historical behavior, minus the fail-fast).
struct EngineOptions {
  uint64_t BudgetMs = 0;         ///< Per-file wall-clock budget.
  uint64_t MaxFileSteps = 0;     ///< Per-file analysis step budget.
  uint64_t MaxDataflowIters = 0; ///< Per-function dataflow update cap.
  unsigned MaxSummaryRounds = 8; ///< Interprocedural summary rounds.

  /// Whole-program link step: resolve extern callees across corpus files
  /// and let detectors consume cross-file summaries.
  WholeProgramMode WholeProgram = WholeProgramMode::Auto;

  /// SummaryDb address-schema override (0 = the built-in schema). Only the
  /// CI schema-bump drill sets this: a bumped schema must read as a cold
  /// DB, never as corruption.
  int64_t SummaryDbSchemaOverride = 0;

  /// Worker threads for analyzeCorpus (0 = hardware_concurrency, 1 =
  /// serial). Output is byte-identical for every value.
  unsigned Jobs = 0;

  /// Result-cache master switch. The in-memory layer always rides along
  /// when enabled; only clean (Ok) file reports are ever cached.
  bool UseCache = true;

  /// On-disk cache layer root ("" = memory-only).
  std::string CacheDir;

  /// In-memory cache entry cap (0 = unbounded).
  size_t CacheMaxEntries = 4096;
};

//===----------------------------------------------------------------------===//
// Cache key derivation and report serialization (exposed for tests and
// docs/PARALLELISM.md's invalidation rules).
//===----------------------------------------------------------------------===//

/// Fingerprints one file's canonical MIR text: CRLF is normalized to LF so
/// a checkout-mode change does not invalidate, any other byte change does.
uint64_t fingerprintSource(std::string_view Source);

/// Folds everything that changes analysis results — the report schema
/// version, the detector battery (names, in order), and the analysis
/// budget options — into a salt. A content fingerprint combined with a
/// different salt can never collide back onto the same cache key, so
/// adding a detector or changing a budget invalidates en masse.
uint64_t cacheSalt(const EngineOptions &Opts,
                   const std::vector<std::string> &DetectorNames);

/// The full cache key for one file under one engine configuration.
uint64_t cacheKey(uint64_t SourceFingerprint, uint64_t Salt);

/// The cache key for one file's parsed-MIR snapshot blob. Deliberately
/// independent of the detector/options salt — a snapshot captures the
/// parse, not the analysis, so changing the detector battery re-runs
/// detectors against the cached module instead of re-lexing the world.
/// Folds the snapshot schema version and the interner epoch so format or
/// interner changes invalidate en masse, plus a distinct tag so snapshot
/// keys can never collide with report keys in the shared cache.
uint64_t snapshotCacheKey(uint64_t SourceFingerprint);

/// Serializes a clean (Ok) FileReport into the cache payload JSON. The
/// path is deliberately excluded: identical content at two paths shares
/// one entry.
std::string serializeFileReport(const FileReport &R);

/// Rebuilds a FileReport from a cache payload, re-anchored at \p Path
/// (finding locations are re-interned against it). Returns nullopt on any
/// schema mismatch — the caller treats that as a miss and re-analyzes.
std::optional<FileReport> deserializeFileReport(std::string_view Payload,
                                                const std::string &Path);

/// Full-fidelity FileReport serialization for the worker wire protocol and
/// the checkpoint journal. Unlike the cache payload it carries the path,
/// status, reason, parse/verifier errors, items-dropped and suppression
/// counts, and per-detector statuses verbatim, so a report that crossed a
/// process boundary (or a resume) renders byte-identically to one computed
/// in-process. See docs/RESILIENCE.md ("worker wire protocol").
std::string serializeWireFileReport(const FileReport &R);

/// Rebuilds a FileReport from a parsed wire/checkpoint object. Returns
/// nullopt on any schema defect — the supervisor treats that as a protocol
/// error (worker retry), the checkpoint loader as an absent journal.
std::optional<FileReport> fileReportFromJson(const JsonValue &V);

/// String-payload convenience over fileReportFromJson.
std::optional<FileReport> deserializeWireFileReport(std::string_view Payload);

/// Runs the detector battery over files/sources with fault isolation and
/// budgets. Fault-injection probe sites: "engine.parse", "engine.verify",
/// "engine.detector" (one probe per detector per file).
class AnalysisEngine {
public:
  using DetectorFactory =
      std::function<std::vector<std::unique_ptr<detectors::Detector>>()>;

  explicit AnalysisEngine(EngineOptions Opts = EngineOptions());

  /// Replaces the built-in detector battery (tests inject faulty
  /// detectors through this).
  void setDetectorFactory(DetectorFactory F) { Factory = std::move(F); }

  /// Analyzes one in-memory buffer.
  FileReport analyzeSource(std::string_view Source, std::string Name);

  /// Reads and analyzes one file; unreadable files are Skipped. Always
  /// analyzes fresh (no cache) — the cached path is analyzeCorpus.
  FileReport analyzeFile(const std::string &Path);

  /// Reads and analyzes one file through the result cache (the same path
  /// analyzeCorpus takes per file). This is the worker-mode entry point:
  /// a shard worker streams one of these per input so the supervisor can
  /// checkpoint and attribute failures file-by-file.
  FileReport analyzeFileThroughCache(const std::string &Path);

  /// analyzeFileThroughCache against a whole-program link environment: the
  /// detectors resolve extern callees through \p Env, and \p LinkDigest
  /// (the file's LinkedCorpus::linkDigest) is folded into the report cache
  /// key so cross-file changes invalidate this file's entry. The sharded
  /// analyze phase drives this; in-process linked runs take the same code
  /// path with the module already in memory.
  FileReport
  analyzeFileThroughCacheLinked(const std::string &Path,
                                const analysis::ExternalSummaries &Env,
                                uint64_t LinkDigest);

  /// Link facts for one file: snapshot-or-parse + verify, then the
  /// linker-visible shape. Returns nullopt when the file cannot join the
  /// link (unreadable, parse errors, verifier rejection) — such files are
  /// analyzed per-file instead. Worker entry for the supervisor's facts
  /// phase.
  std::optional<analysis::ModuleFacts>
  collectFileFacts(const std::string &Path);

  /// One link-solver round over one file: summarize every function of
  /// \p Path's module (as corpus module \p ModuleIdx) against \p Env.
  /// Returns nullopt when the module no longer loads cleanly. Worker entry
  /// for the supervisor's summarize rounds.
  std::optional<analysis::ModuleSummaries>
  summarizeFileForLink(const std::string &Path, uint32_t ModuleIdx,
                       const analysis::ExternalSummaries &Env);

  /// Analyzes one in-memory buffer through the result cache — the
  /// re-entrant per-session entry point the serve daemon uses for editor
  /// overlay documents. Keying is identical to the file path: content
  /// fingerprint x option/detector salt, so an overlay whose text matches
  /// the on-disk file (or a previously analyzed buffer state) is a cache
  /// hit, and every keystroke that changes bytes is a miss. Only clean
  /// (Ok) results are stored, like everywhere else.
  FileReport analyzeSourceThroughCache(std::string_view Source,
                                       const std::string &Path);

  /// Analyzes every path, never aborting the batch. Directories expand to
  /// their .mir files (recursively, in sorted order); a directory with no
  /// .mir files yields one Skipped entry. Files run as parallel tasks on a
  /// work-stealing pool (EngineOptions::Jobs), each inside the containment
  /// boundary; results are merged in input order, so the report renders
  /// byte-identically for any job count. Clean per-file results are served
  /// from / stored into the content-addressed result cache.
  CorpusReport analyzeCorpus(const std::vector<std::string> &Paths);

  /// Historical name for analyzeCorpus.
  CorpusReport run(const std::vector<std::string> &Paths) {
    return analyzeCorpus(Paths);
  }

  /// The engine's cache (null when disabled). Persists across
  /// analyzeCorpus calls, which is what makes warm reruns hit.
  sched::ResultCache *cache() { return Cache.get(); }

  /// The engine's summary DB (null until a linked run created it).
  sched::SummaryDb *summaryDb() { return SummaryDbPtr.get(); }

private:
  void runDetectors(const mir::Module &M, FileReport &R,
                    const analysis::ExternalSummaries *Ext);
  /// The shared back half of analysis: detectors + suppressions over an
  /// already-built module, inside the containment boundary. Both the
  /// parse path and the snapshot fast path funnel through this, which is
  /// what keeps snapshot-served reports byte-identical to parsed ones.
  /// \p Ext (optional) is the whole-program link environment.
  FileReport analyzeParsedModule(const mir::Module &M, std::string_view Source,
                                 std::string Name,
                                 const analysis::ExternalSummaries *Ext);
  /// analyzeSource plus an optional snapshot store: when \p StoreSnapshot
  /// is set and the parse had no errors and the verifier passed, the
  /// module is serialized into the cache's blob layer under \p SnapKey so
  /// the next cold run skips the Lexer/Parser/Verifier entirely.
  FileReport analyzeSourceImpl(std::string_view Source, std::string Name,
                               bool StoreSnapshot, uint64_t SnapKey,
                               uint64_t Fingerprint,
                               const analysis::ExternalSummaries *Ext);
  FileReport analyzeFileCached(const std::string &Path, uint64_t Salt,
                               const analysis::ExternalSummaries *Ext = nullptr,
                               uint64_t LinkDigest = 0);
  /// Loads \p Path's module for the link: snapshot fast path, else
  /// parse + verify. Only fully clean modules load (nullopt otherwise);
  /// freshly parsed ones are snapshotted for the next run. \p SourceOut /
  /// \p FpOut (optional) receive the raw source and its fingerprint.
  std::optional<mir::Module> loadModuleForLink(const std::string &Path,
                                               std::string *SourceOut,
                                               uint64_t *FpOut);
  /// The linked corpus driver behind analyzeCorpus (whole-program mode).
  CorpusReport
  analyzeCorpusLinked(std::vector<corpus::CorpusInput> Inputs,
                      std::chrono::steady_clock::time_point Start);
  void ensureCache();
  void ensureSummaryDb();
  std::vector<std::string> detectorNames();

  EngineOptions Opts;
  DetectorFactory Factory;
  std::unique_ptr<sched::ResultCache> Cache;
  std::unique_ptr<sched::SummaryDb> SummaryDbPtr;
};

} // namespace rs::engine

#endif // RUSTSIGHT_ENGINE_ENGINE_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level supervision for corpus analysis: `rustsight check
/// --shards N` partitions the corpus into deterministic shard plans and
/// runs each shard in a spawned `rustsight worker` subprocess. The
/// in-process AnalysisEngine contains faults it can catch (exceptions,
/// cooperative budget exhaustion); the Supervisor contains everything it
/// cannot — SIGSEGV, stack overflow, runaway loops, corrupted output —
/// because a dead or hung worker costs one shard attempt, never the run.
///
/// The supervision ladder on top of PR 1's degradation ladder:
///
///  - Watchdog: a hard per-shard wall-clock deadline (`--timeout-ms`),
///    orthogonal to the cooperative Budget — it SIGKILLs hangs the
///    in-process ladder can never reach.
///  - Classification: worker deaths are classified (clean exit / nonzero
///    exit / signal / watchdog timeout / protocol corruption) from the
///    Subprocess exit status and the frame stream.
///  - Retry with backoff: failed shard remainders are re-queued with
///    exponential backoff; results streamed before the failure are kept.
///  - Attribution and bisection: workers stream one result frame per
///    file, so a crash or timeout is attributed to the first file without
///    a frame. When frames cannot be trusted (garbage output), the shard
///    is bisected — halved repeatedly until the culpable file is isolated.
///  - Quarantine: a file that keeps killing workers is quarantined as a
///    first-class RS-ENGINE-005 diagnostic carrying the classified cause
///    and the worker's stderr tail; the run continues without it.
///  - Checkpoint/resume: completed files are journaled (CheckpointJournal)
///    so an interrupted run resumes where it left off.
///
/// Shard outputs flow through the same ordinal-merge + finalize() path as
/// the in-process driver, so `--json`/SARIF output is byte-identical
/// across any `--shards`/`--jobs` count, cache temperature, and any
/// crash/retry/resume history. See docs/RESILIENCE.md.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_ENGINE_SUPERVISOR_H
#define RUSTSIGHT_ENGINE_SUPERVISOR_H

#include "engine/Engine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rs::engine {

struct SupervisorOptions {
  /// Forwarded to every worker (budgets, cache configuration). Jobs is
  /// ignored — each worker analyzes its shard serially; parallelism comes
  /// from running MaxWorkers workers at once.
  EngineOptions Engine;

  /// Number of shard partitions (0 = one per worker slot). Output is
  /// byte-identical for every value.
  unsigned Shards = 0;

  /// Concurrent worker processes (0 = min(shards, hardware threads)).
  unsigned MaxWorkers = 0;

  /// Hard per-shard wall-clock watchdog in milliseconds (0 = none). This
  /// is the non-cooperative backstop above EngineOptions::BudgetMs: the
  /// budget degrades analyses that check it, the watchdog SIGKILLs
  /// workers that stopped checking anything.
  uint64_t TimeoutMs = 0;

  /// Extra attempts a suspect file (or, for untrusted output, a shard)
  /// gets before quarantine/bisection. Total attempts = MaxRetries + 1.
  unsigned MaxRetries = 2;

  /// Base of the exponential retry backoff (doubles per strike, capped).
  uint64_t BackoffMs = 25;

  /// Path of the rustsight binary to respawn in worker mode
  /// (proc::currentExecutablePath).
  std::string WorkerExe;

  /// Checkpoint journal path ("" = checkpointing disabled).
  std::string CheckpointPath;

  /// Replay completed files from the journal instead of re-analyzing
  /// them. Ignored (with a fresh start) when the journal is absent,
  /// corrupt, or keyed to a different corpus/configuration.
  bool Resume = false;
};

/// Runs supervised corpus analysis. Fault-injection probe sites:
/// "engine.supervisor.interrupt" (fires after each checkpoint write;
/// simulates a hard death for resume tests). Worker-side sites
/// ("engine.worker.crash", "engine.worker.hang",
/// "engine.worker.garbage-output") are armed in the worker process via
/// the RUSTSIGHT_WORKER_FAULT / RUSTSIGHT_WORKER_FAULT_FILE environment
/// variables — see runWorker.
class Supervisor {
public:
  explicit Supervisor(SupervisorOptions O) : Opts(std::move(O)) {}

  /// Analyzes every path (expanded exactly like
  /// AnalysisEngine::analyzeCorpus) across supervised workers and merges
  /// the results by input ordinal.
  CorpusReport run(const std::vector<std::string> &Paths);

private:
  SupervisorOptions Opts;
};

/// The salt half of the checkpoint journal's RunKey: the workers'
/// cacheSalt, with a whole-program marker folded in for linked runs so a
/// per-file journal never resumes a whole-program run (or vice versa) —
/// the findings differ by design.
uint64_t journalSalt(const EngineOptions &Opts,
                     const std::vector<std::string> &DetectorNames,
                     bool Linked);

/// The hidden `rustsight worker` entry point: reads "<ordinal>\t<path>"
/// lines from stdin until EOF, analyzes each file through the result
/// cache, and streams one length-prefixed JSON frame per file followed by
/// a "done" frame on stdout (the wire protocol in docs/RESILIENCE.md).
/// Degraded/skipped statuses are also logged to stderr so the supervisor
/// can surface fault causes. Returns the process exit code.
int runWorker(const EngineOptions &Opts);

} // namespace rs::engine

#endif // RUSTSIGHT_ENGINE_SUPERVISOR_H

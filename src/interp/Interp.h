//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic interpreter for RustLite MIR with sanitizer-style safety
/// checks — the reproduction's stand-in for Miri, the MIR interpreter the
/// paper discusses as the dynamic-detection baseline (Section 2.4): "Miri
/// is a dynamic memory-bug detector that interprets and executes Rust's
/// mid-level intermediate representation". Like Miri, it only reports bugs
/// on paths an execution actually takes, which is exactly the limitation
/// the paper's static detectors address; bench_sec7_ablation quantifies
/// that difference on the injected corpus.
///
/// Checked properties: use-after-free and use-after-scope on loads, stores,
/// and drops; double free (both explicit and via duplicated ownership);
/// invalid free (dropping uninitialized contents); uninitialized reads;
/// self-deadlock on Mutex/RwLock re-acquisition (Rust's std behaviour).
///
/// The value model and trap taxonomy live in Runtime.h, shared with the
/// register bytecode VM (src/vm/) so both engines classify traps
/// identically.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_INTERP_INTERP_H
#define RUSTSIGHT_INTERP_INTERP_H

#include "interp/Runtime.h"
#include "mir/Mir.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rs::interp {

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

/// Interprets RustLite MIR modules. Each run() starts from fresh state;
/// spawned thread entry points are executed sequentially after the main
/// function returns (a deterministic schedule — racy interleavings and
/// cross-thread deadlocks are deliberately *not* explored, mirroring a
/// single dynamic run's coverage).
class Interpreter {
public:
  struct Options {
    /// Execution budget; exhaustion traps with TrapKind::StepLimit.
    uint64_t StepLimit = 1000000;
    /// Call-stack budget; exhaustion traps with TrapKind::StackOverflow.
    unsigned MaxCallDepth = 128;
    bool RunSpawnedThreads = true;
  };

  explicit Interpreter(const mir::Module &M, Options Opts);
  explicit Interpreter(const mir::Module &M);
  ~Interpreter();

  /// Runs \p FnName with synthesized default arguments (heap-backed
  /// pointees for reference/pointer parameters; zero scalars).
  ExecResult run(const std::string &FnName);

  /// Runs \p FnName with explicit arguments.
  ExecResult run(const std::string &FnName, std::vector<Value> Args);

  /// Runs every function whose name does not look like a helper entered
  /// only via calls (i.e. every function, independently, fresh state
  /// each) and returns one Trap per failing function.
  std::vector<Trap> runAll();

  /// Synthesizes a default argument value for a parameter type, creating
  /// backing heap objects for pointers.
  Value defaultArgument(const mir::Type *Ty);

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace rs::interp

#endif // RUSTSIGHT_INTERP_INTERP_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic interpreter for RustLite MIR with sanitizer-style safety
/// checks — the reproduction's stand-in for Miri, the MIR interpreter the
/// paper discusses as the dynamic-detection baseline (Section 2.4): "Miri
/// is a dynamic memory-bug detector that interprets and executes Rust's
/// mid-level intermediate representation". Like Miri, it only reports bugs
/// on paths an execution actually takes, which is exactly the limitation
/// the paper's static detectors address; bench_sec7_ablation quantifies
/// that difference on the injected corpus.
///
/// Checked properties: use-after-free and use-after-scope on loads, stores,
/// and drops; double free (both explicit and via duplicated ownership);
/// invalid free (dropping uninitialized contents); uninitialized reads;
/// self-deadlock on Mutex/RwLock re-acquisition (Rust's std behaviour).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_INTERP_INTERP_H
#define RUSTSIGHT_INTERP_INTERP_H

#include "mir/Mir.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rs::interp {

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

/// Where a pointer points: a frame local or a heap object, plus a field
/// path into nested aggregates.
struct PointerTarget {
  enum class Space { Stack, Heap };
  Space K = Space::Heap;
  unsigned FrameId = 0;  ///< Stack only.
  mir::LocalId Local = 0; ///< Stack only.
  unsigned HeapId = 0;   ///< Heap only.
  std::vector<unsigned> Path; ///< Field indices into the target value.

  friend bool operator<(const PointerTarget &A, const PointerTarget &B) {
    return std::tie(A.K, A.FrameId, A.Local, A.HeapId, A.Path) <
           std::tie(B.K, B.FrameId, B.Local, B.HeapId, B.Path);
  }
  friend bool operator==(const PointerTarget &A, const PointerTarget &B) {
    return A.K == B.K && A.FrameId == B.FrameId && A.Local == B.Local &&
           A.HeapId == B.HeapId && A.Path == B.Path;
  }

  std::string toString() const;
};

/// A runtime value. Aggregates own their elements; pointers may own their
/// heap pointee (Box) or share it with reference counting (Arc).
class Value {
public:
  enum class Kind {
    Uninit, ///< No value yet (fresh storage, moved-out, or dropped).
    Unit,
    Int,
    Bool,
    Str,
    Ptr,
    Guard,  ///< A lock guard; dropping it releases the lock.
    Opaque, ///< Result of an un-modeled call; inert.
    Aggregate,
  };

  Kind K = Kind::Uninit;
  int64_t Int = 0;
  bool Bool = false;
  std::string Str;
  PointerTarget Ptr;
  bool Owning = false;     ///< Ptr: dropping frees the pointee (Box).
  bool RefCounted = false; ///< Ptr: Arc-style shared ownership.
  PointerTarget LockKey;   ///< Guard: the lock this guard holds.
  bool Exclusive = false;  ///< Guard: write vs read acquisition.
  std::vector<Value> Elems; ///< Aggregate.

  static Value makeUninit() { return Value(); }
  static Value makeUnit() {
    Value V;
    V.K = Kind::Unit;
    return V;
  }
  static Value makeInt(int64_t N) {
    Value V;
    V.K = Kind::Int;
    V.Int = N;
    return V;
  }
  static Value makeBool(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.Bool = B;
    return V;
  }
  static Value makeStr(std::string S) {
    Value V;
    V.K = Kind::Str;
    V.Str = std::move(S);
    return V;
  }
  static Value makePtr(PointerTarget T, bool Owning = false,
                       bool RefCounted = false) {
    Value V;
    V.K = Kind::Ptr;
    V.Ptr = std::move(T);
    V.Owning = Owning;
    V.RefCounted = RefCounted;
    return V;
  }
  static Value makeGuard(PointerTarget Key, bool Exclusive) {
    Value V;
    V.K = Kind::Guard;
    V.LockKey = std::move(Key);
    V.Exclusive = Exclusive;
    return V;
  }
  static Value makeOpaque() {
    Value V;
    V.K = Kind::Opaque;
    return V;
  }
  static Value makeAggregate(std::vector<Value> Elems) {
    Value V;
    V.K = Kind::Aggregate;
    V.Elems = std::move(Elems);
    return V;
  }

  bool isUninit() const { return K == Kind::Uninit; }

  /// True if dropping this value has an effect (frees, unlocks, or
  /// contains something that does).
  bool needsDrop() const;

  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Errors and results
//===----------------------------------------------------------------------===//

/// Dynamic safety violations the interpreter traps on, plus the two
/// resource-limit exhaustions. The limit kinds are distinct from the bug
/// kinds on purpose: hitting Options::StepLimit or Options::MaxCallDepth
/// means the *analysis* ran out of budget, not that the program is unsafe,
/// and corpus drivers must report them as "inconclusive", never as findings
/// (see docs/RESILIENCE.md). Use isResourceLimitTrap() to classify.
enum class TrapKind {
  UseAfterFree,
  UseAfterScope,
  DoubleFree,
  InvalidFree,
  UninitRead,
  Deadlock,
  BorrowPanic, ///< RefCell dynamic-borrow violation (BorrowMutError).
  IndexOutOfBounds, ///< The buffer-overflow panic of Rust's runtime checks.
  InvalidPointer,
  AssertFailed,
  StepLimit,      ///< Options::StepLimit exhausted — a budget, not a bug.
  StackOverflow,  ///< Options::MaxCallDepth exhausted — a budget, not a bug.
  UnknownFunction,
  TypeMismatch,
};

const char *trapKindName(TrapKind K);

/// True for the traps that signal resource-budget exhaustion (StepLimit,
/// StackOverflow) rather than a detected safety violation.
bool isResourceLimitTrap(TrapKind K);

/// One trapped violation, anchored where execution stopped.
struct Trap {
  TrapKind Kind;
  std::string Message;
  std::string Function;
  mir::BlockId Block = 0;
  size_t StmtIndex = 0;

  std::string toString() const;
};

/// Outcome of one execution.
struct ExecResult {
  bool Ok = false;
  std::optional<Trap> Error;
  Value Return;
  uint64_t Steps = 0;
};

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

/// Interprets RustLite MIR modules. Each run() starts from fresh state;
/// spawned thread entry points are executed sequentially after the main
/// function returns (a deterministic schedule — racy interleavings and
/// cross-thread deadlocks are deliberately *not* explored, mirroring a
/// single dynamic run's coverage).
class Interpreter {
public:
  struct Options {
    /// Execution budget; exhaustion traps with TrapKind::StepLimit.
    uint64_t StepLimit = 1000000;
    /// Call-stack budget; exhaustion traps with TrapKind::StackOverflow.
    unsigned MaxCallDepth = 128;
    bool RunSpawnedThreads = true;
  };

  explicit Interpreter(const mir::Module &M, Options Opts);
  explicit Interpreter(const mir::Module &M);
  ~Interpreter();

  /// Runs \p FnName with synthesized default arguments (heap-backed
  /// pointees for reference/pointer parameters; zero scalars).
  ExecResult run(const std::string &FnName);

  /// Runs \p FnName with explicit arguments.
  ExecResult run(const std::string &FnName, std::vector<Value> Args);

  /// Runs every function whose name does not look like a helper entered
  /// only via calls (i.e. every function, independently, fresh state
  /// each) and returns one Trap per failing function.
  std::vector<Trap> runAll();

  /// Synthesizes a default argument value for a parameter type, creating
  /// backing heap objects for pointers.
  Value defaultArgument(const mir::Type *Ty);

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace rs::interp

#endif // RUSTSIGHT_INTERP_INTERP_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value model and trap taxonomy shared by the two dynamic
/// execution engines: the tree-walking interpreter (src/interp/Interp.h)
/// and the register bytecode VM (src/vm/). Both engines trap on the same
/// sanitizer checks and must classify every trap identically — the
/// differential oracle (vm-trap ⇒ static-UAF) depends on it — so the
/// taxonomy lives here, in one place.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_INTERP_RUNTIME_H
#define RUSTSIGHT_INTERP_RUNTIME_H

#include "mir/Mir.h"

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace rs::interp {

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

/// Where a pointer points: a frame local or a heap object, plus a field
/// path into nested aggregates.
struct PointerTarget {
  enum class Space { Stack, Heap };
  Space K = Space::Heap;
  unsigned FrameId = 0;  ///< Stack only.
  mir::LocalId Local = 0; ///< Stack only.
  unsigned HeapId = 0;   ///< Heap only.
  std::vector<unsigned> Path; ///< Field indices into the target value.

  friend bool operator<(const PointerTarget &A, const PointerTarget &B) {
    return std::tie(A.K, A.FrameId, A.Local, A.HeapId, A.Path) <
           std::tie(B.K, B.FrameId, B.Local, B.HeapId, B.Path);
  }
  friend bool operator==(const PointerTarget &A, const PointerTarget &B) {
    return A.K == B.K && A.FrameId == B.FrameId && A.Local == B.Local &&
           A.HeapId == B.HeapId && A.Path == B.Path;
  }

  std::string toString() const;
};

/// A runtime value. Aggregates own their elements; pointers may own their
/// heap pointee (Box) or share it with reference counting (Arc).
class Value {
public:
  enum class Kind {
    Uninit, ///< No value yet (fresh storage, moved-out, or dropped).
    Unit,
    Int,
    Bool,
    Str,
    Ptr,
    Guard,  ///< A lock guard; dropping it releases the lock.
    Opaque, ///< Result of an un-modeled call; inert.
    Aggregate,
  };

  Kind K = Kind::Uninit;
  int64_t Int = 0;
  bool Bool = false;
  std::string Str;
  PointerTarget Ptr;
  bool Owning = false;     ///< Ptr: dropping frees the pointee (Box).
  bool RefCounted = false; ///< Ptr: Arc-style shared ownership.
  PointerTarget LockKey;   ///< Guard: the lock this guard holds.
  bool Exclusive = false;  ///< Guard: write vs read acquisition.
  std::vector<Value> Elems; ///< Aggregate.

  static Value makeUninit() { return Value(); }
  static Value makeUnit() {
    Value V;
    V.K = Kind::Unit;
    return V;
  }
  static Value makeInt(int64_t N) {
    Value V;
    V.K = Kind::Int;
    V.Int = N;
    return V;
  }
  static Value makeBool(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.Bool = B;
    return V;
  }
  static Value makeStr(std::string S) {
    Value V;
    V.K = Kind::Str;
    V.Str = std::move(S);
    return V;
  }
  static Value makePtr(PointerTarget T, bool Owning = false,
                       bool RefCounted = false) {
    Value V;
    V.K = Kind::Ptr;
    V.Ptr = std::move(T);
    V.Owning = Owning;
    V.RefCounted = RefCounted;
    return V;
  }
  static Value makeGuard(PointerTarget Key, bool Exclusive) {
    Value V;
    V.K = Kind::Guard;
    V.LockKey = std::move(Key);
    V.Exclusive = Exclusive;
    return V;
  }
  static Value makeOpaque() {
    Value V;
    V.K = Kind::Opaque;
    return V;
  }
  static Value makeAggregate(std::vector<Value> Elems) {
    Value V;
    V.K = Kind::Aggregate;
    V.Elems = std::move(Elems);
    return V;
  }

  bool isUninit() const { return K == Kind::Uninit; }

  /// True if dropping this value has an effect (frees, unlocks, or
  /// contains something that does).
  bool needsDrop() const;

  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Errors and results
//===----------------------------------------------------------------------===//

/// Dynamic safety violations the execution engines trap on, plus the two
/// resource-limit exhaustions. The limit kinds are distinct from the bug
/// kinds on purpose: hitting a StepLimit or MaxCallDepth budget means the
/// *analysis* ran out of budget, not that the program is unsafe, and corpus
/// drivers must report them as "inconclusive", never as findings (see
/// docs/RESILIENCE.md). Use isResourceLimitTrap() to classify.
enum class TrapKind {
  UseAfterFree,
  UseAfterScope,
  DoubleFree,
  InvalidFree,
  UninitRead,
  Deadlock,
  BorrowPanic, ///< RefCell dynamic-borrow violation (BorrowMutError).
  IndexOutOfBounds, ///< The buffer-overflow panic of Rust's runtime checks.
  InvalidPointer,
  AssertFailed,
  StepLimit,      ///< Step budget exhausted — a budget, not a bug.
  StackOverflow,  ///< Call-depth budget exhausted — a budget, not a bug.
  UnknownFunction,
  TypeMismatch,
};

const char *trapKindName(TrapKind K);

/// True for the traps that signal resource-budget exhaustion (StepLimit,
/// StackOverflow) rather than a detected safety violation.
bool isResourceLimitTrap(TrapKind K);

/// One trapped violation, anchored where execution stopped.
struct Trap {
  TrapKind Kind;
  std::string Message;
  std::string Function;
  mir::BlockId Block = 0;
  size_t StmtIndex = 0;

  std::string toString() const;
};

/// Outcome of one execution.
struct ExecResult {
  bool Ok = false;
  std::optional<Trap> Error;
  Value Return;
  uint64_t Steps = 0;
};

} // namespace rs::interp

#endif // RUSTSIGHT_INTERP_RUNTIME_H

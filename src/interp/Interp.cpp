#include "interp/Interp.h"

#include "analysis/Objects.h" // typeNeedsDrop
#include "mir/Intrinsics.h"

#include <cassert>
#include <deque>
#include <map>

using namespace rs;
using namespace rs::interp;
using namespace rs::mir;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

std::string PointerTarget::toString() const {
  std::string Out = K == Space::Stack
                        ? "frame" + std::to_string(FrameId) + ":_" +
                              std::to_string(Local)
                        : "heap#" + std::to_string(HeapId);
  for (unsigned F : Path)
    Out += "." + std::to_string(F);
  return Out;
}

bool Value::needsDrop() const {
  switch (K) {
  case Kind::Guard:
    return true;
  case Kind::Ptr:
    return Owning;
  case Kind::Aggregate:
    for (const Value &E : Elems)
      if (E.needsDrop())
        return true;
    return false;
  default:
    return false;
  }
}

std::string Value::toString() const {
  switch (K) {
  case Kind::Uninit:
    return "<uninit>";
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Bool:
    return Bool ? "true" : "false";
  case Kind::Str:
    return "\"" + Str + "\"";
  case Kind::Ptr:
    return (Owning ? "box " : "&") + Ptr.toString();
  case Kind::Guard:
    return std::string("guard(") + (Exclusive ? "excl " : "shared ") +
           LockKey.toString() + ")";
  case Kind::Opaque:
    return "<opaque>";
  case Kind::Aggregate: {
    std::string Out = "{";
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Elems[I].toString();
    }
    return Out + "}";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Traps
//===----------------------------------------------------------------------===//

const char *rs::interp::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::UseAfterFree:
    return "use-after-free";
  case TrapKind::UseAfterScope:
    return "use-after-scope";
  case TrapKind::DoubleFree:
    return "double-free";
  case TrapKind::InvalidFree:
    return "invalid-free";
  case TrapKind::UninitRead:
    return "uninitialized-read";
  case TrapKind::Deadlock:
    return "deadlock";
  case TrapKind::BorrowPanic:
    return "borrow-panic";
  case TrapKind::IndexOutOfBounds:
    return "index-out-of-bounds";
  case TrapKind::InvalidPointer:
    return "invalid-pointer";
  case TrapKind::AssertFailed:
    return "assert-failed";
  case TrapKind::StepLimit:
    return "step-limit";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::UnknownFunction:
    return "unknown-function";
  case TrapKind::TypeMismatch:
    return "type-mismatch";
  }
  return "?";
}

bool rs::interp::isResourceLimitTrap(TrapKind K) {
  return K == TrapKind::StepLimit || K == TrapKind::StackOverflow;
}

std::string Trap::toString() const {
  return Function + ":bb" + std::to_string(Block) + "[" +
         std::to_string(StmtIndex) + "]: " + trapKindName(Kind) + ": " +
         Message;
}

//===----------------------------------------------------------------------===//
// Interpreter implementation
//===----------------------------------------------------------------------===//

namespace {

/// Why a storage cell currently holds no value.
enum class VoidReason { NeverInit, Moved, Dropped };

struct Cell {
  Value V;
  bool StorageLive = true;
  VoidReason Reason = VoidReason::NeverInit;
};

struct HeapObject {
  Value V;
  bool Freed = false;
  bool Initialized = true;
  int RefCount = 1; ///< Only meaningful for Arc allocations.
};

struct LockState {
  unsigned Shared = 0;
  bool Exclusive = false;
};

struct Frame {
  unsigned Id;
  const Function *Fn;
  std::vector<Cell> Locals;
};

} // namespace

class Interpreter::Impl {
public:
  Impl(const Module &M, Options Opts) : M(M), Opts(Opts) {}

  const Module &M;
  Options Opts;

  // Execution state (reset per run()).
  std::map<unsigned, Frame> Frames; ///< Alive frames by id.
  unsigned NextFrameId = 1;
  std::map<unsigned, HeapObject> Heap;
  unsigned NextHeapId = 1;
  std::map<PointerTarget, LockState> Locks;
  enum class OnceState { Fresh, Running, Done };
  std::map<PointerTarget, OnceState> Onces;
  std::deque<std::string> SpawnQueue;
  uint64_t Steps = 0;
  unsigned CallDepth = 0;

  bool Trapped = false;
  Trap Error;

  // Current location, for trap anchoring.
  const Function *CurFn = nullptr;
  BlockId CurBlock = 0;
  size_t CurStmt = 0;

  void reset() {
    Frames.clear();
    NextFrameId = 1;
    Heap.clear();
    NextHeapId = 1;
    Locks.clear();
    Onces.clear();
    SpawnQueue.clear();
    Steps = 0;
    CallDepth = 0;
    Trapped = false;
  }

  bool trap(TrapKind K, std::string Message) {
    if (Trapped)
      return false;
    Trapped = true;
    Error.Kind = K;
    Error.Message = std::move(Message);
    Error.Function = CurFn ? CurFn->Name.str() : "<none>";
    Error.Block = CurBlock;
    Error.StmtIndex = CurStmt;
    return false;
  }

  bool step() {
    if (++Steps > Opts.StepLimit)
      return trap(TrapKind::StepLimit,
                  "execution step limit (" + std::to_string(Opts.StepLimit) +
                      ") exceeded; result is inconclusive, not a bug");
    return true;
  }

  // --- Memory access ------------------------------------------------------

  /// Returns the value slot a target designates, applying validity checks.
  /// \p ForRead additionally rejects freed/dead targets with UAF traps.
  Value *resolveTarget(const PointerTarget &T) {
    Value *Root = nullptr;
    if (T.K == PointerTarget::Space::Stack) {
      auto It = Frames.find(T.FrameId);
      if (It == Frames.end()) {
        trap(TrapKind::UseAfterScope,
             "pointer target " + T.toString() +
                 " is a local of a function that already returned");
        return nullptr;
      }
      if (T.Local >= It->second.Locals.size()) {
        trap(TrapKind::InvalidPointer, "pointer past frame locals");
        return nullptr;
      }
      Cell &C = It->second.Locals[T.Local];
      if (!C.StorageLive) {
        trap(TrapKind::UseAfterScope, "pointer target " + T.toString() +
                                          " is out of scope (storage dead)");
        return nullptr;
      }
      if (C.Reason == VoidReason::Dropped && C.V.isUninit()) {
        trap(TrapKind::UseAfterFree,
             "pointer target " + T.toString() + " was dropped");
        return nullptr;
      }
      Root = &C.V;
    } else {
      auto It = Heap.find(T.HeapId);
      if (It == Heap.end()) {
        trap(TrapKind::InvalidPointer, "dangling heap pointer");
        return nullptr;
      }
      if (It->second.Freed) {
        trap(TrapKind::UseAfterFree,
             "heap object " + T.toString() + " was already freed");
        return nullptr;
      }
      Root = &It->second.V;
    }
    // Navigate the field path.
    for (unsigned F : T.Path) {
      if (Root->K != Value::Kind::Aggregate) {
        trap(TrapKind::TypeMismatch,
             "field access into non-aggregate value at " + T.toString());
        return nullptr;
      }
      if (F >= Root->Elems.size()) {
        // Rust's runtime bounds check: panic, do not read past the end.
        trap(TrapKind::IndexOutOfBounds,
             "index out of bounds: the len is " +
                 std::to_string(Root->Elems.size()) + " but the index is " +
                 std::to_string(F));
        return nullptr;
      }
      Root = &Root->Elems[F];
    }
    return Root;
  }

  // --- Dropping -----------------------------------------------------------

  void unlock(const PointerTarget &Key, bool Exclusive) {
    LockState &L = Locks[Key];
    if (Exclusive)
      L.Exclusive = false;
    else if (L.Shared > 0)
      --L.Shared;
  }

  /// Runs the drop glue of \p V (frees, unlocks, recurses).
  void dropValue(Value &V) {
    switch (V.K) {
    case Value::Kind::Guard:
      unlock(V.LockKey, V.Exclusive);
      break;
    case Value::Kind::Ptr: {
      if (!V.Owning)
        break;
      auto It = Heap.find(V.Ptr.HeapId);
      if (It == Heap.end() || V.Ptr.K != PointerTarget::Space::Heap)
        break;
      if (It->second.Freed) {
        trap(TrapKind::DoubleFree, "heap object " + V.Ptr.toString() +
                                       " freed a second time (two owners)");
        return;
      }
      if (V.RefCounted && --It->second.RefCount > 0)
        break;
      It->second.Freed = true;
      dropValue(It->second.V);
      break;
    }
    case Value::Kind::Aggregate:
      for (Value &E : V.Elems)
        dropValue(E);
      break;
    default:
      break;
    }
    V = Value::makeUninit();
  }

  // --- Operand / rvalue evaluation ----------------------------------------

  /// Resolves a place to its target without reading the final value
  /// (derefs along the way do read pointers).
  bool resolvePlace(Frame &F, const Place &P, PointerTarget &Out) {
    PointerTarget T;
    T.K = PointerTarget::Space::Stack;
    T.FrameId = F.Id;
    T.Local = P.Base;
    for (const ProjectionElem &E : P.Projs) {
      switch (E.K) {
      case ProjectionElem::Kind::Field:
        T.Path.push_back(E.FieldIdx);
        break;
      case ProjectionElem::Kind::Index: {
        Value *Idx = resolveTarget(PointerTarget{
            PointerTarget::Space::Stack, F.Id, E.IndexLocal, 0, {}});
        if (!Idx)
          return false;
        if (Idx->K != Value::Kind::Int)
          return trap(TrapKind::TypeMismatch, "index local is not an int");
        T.Path.push_back(static_cast<unsigned>(Idx->Int));
        break;
      }
      case ProjectionElem::Kind::Deref: {
        Value *Ptr = resolveTarget(T);
        if (!Ptr)
          return false;
        if (Ptr->K == Value::Kind::Ptr) {
          T = Ptr->Ptr;
        } else if (Ptr->K == Value::Kind::Guard) {
          // Dereferencing a guard reaches the lock's protected data.
          T = Ptr->LockKey;
        } else if (Ptr->isUninit()) {
          return trap(TrapKind::UninitRead,
                      "dereference of an uninitialized pointer");
        } else {
          return trap(TrapKind::TypeMismatch,
                      "dereference of a non-pointer value");
        }
        break;
      }
      }
    }
    Out = std::move(T);
    return true;
  }

  /// Reads the value a place designates (for copy operands).
  bool readPlace(Frame &F, const Place &P, Value &Out) {
    PointerTarget T;
    if (!resolvePlace(F, P, T))
      return false;
    Value *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    if (Slot->isUninit()) {
      // Distinguish dropped (UAF) from merely uninitialized.
      if (T.K == PointerTarget::Space::Stack) {
        auto It = Frames.find(T.FrameId);
        if (It != Frames.end() &&
            It->second.Locals[T.Local].Reason == VoidReason::Dropped)
          return trap(TrapKind::UseAfterFree,
                      "read of dropped value at " + T.toString());
      }
      return trap(TrapKind::UninitRead,
                  "read of uninitialized value at " + T.toString());
    }
    Out = *Slot;
    return true;
  }

  /// Takes the value out of a place (for move operands).
  bool takePlace(Frame &F, const Place &P, Value &Out) {
    PointerTarget T;
    if (!resolvePlace(F, P, T))
      return false;
    Value *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    if (Slot->isUninit())
      return trap(TrapKind::UninitRead,
                  "move out of uninitialized value at " + T.toString());
    Out = std::move(*Slot);
    *Slot = Value::makeUninit();
    if (T.K == PointerTarget::Space::Stack && T.Path.empty()) {
      auto It = Frames.find(T.FrameId);
      if (It != Frames.end())
        It->second.Locals[T.Local].Reason = VoidReason::Moved;
    }
    return true;
  }

  bool evalOperand(Frame &F, const Operand &O, Value &Out) {
    switch (O.K) {
    case Operand::Kind::Copy:
      return readPlace(F, O.P, Out);
    case Operand::Kind::Move:
      return takePlace(F, O.P, Out);
    case Operand::Kind::Const:
      switch (O.C.K) {
      case ConstValue::Kind::Int:
        Out = Value::makeInt(O.C.Int);
        return true;
      case ConstValue::Kind::Bool:
        Out = Value::makeBool(O.C.Bool);
        return true;
      case ConstValue::Kind::Str:
        Out = Value::makeStr(O.C.Str);
        return true;
      case ConstValue::Kind::Unit:
        Out = Value::makeUnit();
        return true;
      }
      return true;
    }
    return true;
  }

  bool evalBinary(BinOp Op, const Value &A, const Value &B, Value &Out) {
    if (Op == BinOp::Offset) {
      // Pointer arithmetic: stay within the allocation (field-insensitive).
      Out = A;
      return true;
    }
    auto AsInt = [](const Value &V) {
      return V.K == Value::Kind::Bool ? (V.Bool ? 1 : 0) : V.Int;
    };
    if ((A.K != Value::Kind::Int && A.K != Value::Kind::Bool) ||
        (B.K != Value::Kind::Int && B.K != Value::Kind::Bool))
      return trap(TrapKind::TypeMismatch, "arithmetic on non-scalar values");
    int64_t X = AsInt(A), Y = AsInt(B);
    switch (Op) {
    case BinOp::Add:
      Out = Value::makeInt(X + Y);
      return true;
    case BinOp::Sub:
      Out = Value::makeInt(X - Y);
      return true;
    case BinOp::Mul:
      Out = Value::makeInt(X * Y);
      return true;
    case BinOp::Div:
      if (Y == 0)
        return trap(TrapKind::AssertFailed, "division by zero");
      Out = Value::makeInt(X / Y);
      return true;
    case BinOp::Rem:
      if (Y == 0)
        return trap(TrapKind::AssertFailed, "remainder by zero");
      Out = Value::makeInt(X % Y);
      return true;
    case BinOp::BitAnd:
      Out = Value::makeInt(X & Y);
      return true;
    case BinOp::BitOr:
      Out = Value::makeInt(X | Y);
      return true;
    case BinOp::BitXor:
      Out = Value::makeInt(X ^ Y);
      return true;
    case BinOp::Shl:
      Out = Value::makeInt(X << (Y & 63));
      return true;
    case BinOp::Shr:
      Out = Value::makeInt(X >> (Y & 63));
      return true;
    case BinOp::Eq:
      Out = Value::makeBool(X == Y);
      return true;
    case BinOp::Ne:
      Out = Value::makeBool(X != Y);
      return true;
    case BinOp::Lt:
      Out = Value::makeBool(X < Y);
      return true;
    case BinOp::Le:
      Out = Value::makeBool(X <= Y);
      return true;
    case BinOp::Gt:
      Out = Value::makeBool(X > Y);
      return true;
    case BinOp::Ge:
      Out = Value::makeBool(X >= Y);
      return true;
    case BinOp::Offset:
      break;
    }
    return trap(TrapKind::TypeMismatch, "unsupported binary operation");
  }

  bool evalRvalue(Frame &F, const Rvalue &RV, Value &Out) {
    switch (RV.K) {
    case Rvalue::Kind::Use:
      return evalOperand(F, RV.Ops[0], Out);
    case Rvalue::Kind::Cast:
      return evalOperand(F, RV.Ops[0], Out); // Casts are value-preserving.
    case Rvalue::Kind::Ref:
    case Rvalue::Kind::AddressOf: {
      PointerTarget T;
      if (!resolvePlace(F, RV.P, T))
        return false;
      // Creating the reference also validates the target exists.
      if (!resolveTarget(T))
        return false;
      Out = Value::makePtr(std::move(T));
      return true;
    }
    case Rvalue::Kind::BinaryOp: {
      Value A, B;
      if (!evalOperand(F, RV.Ops[0], A) || !evalOperand(F, RV.Ops[1], B))
        return false;
      return evalBinary(RV.BOp, A, B, Out);
    }
    case Rvalue::Kind::UnaryOp: {
      Value A;
      if (!evalOperand(F, RV.Ops[0], A))
        return false;
      if (RV.UOp == UnOp::Not) {
        if (A.K == Value::Kind::Bool)
          Out = Value::makeBool(!A.Bool);
        else
          Out = Value::makeInt(~A.Int);
      } else {
        Out = Value::makeInt(-A.Int);
      }
      return true;
    }
    case Rvalue::Kind::Aggregate: {
      std::vector<Value> Elems;
      for (const Operand &O : RV.Ops) {
        Value V;
        if (!evalOperand(F, O, V))
          return false;
        Elems.push_back(std::move(V));
      }
      Out = Value::makeAggregate(std::move(Elems));
      return true;
    }
    case Rvalue::Kind::Discriminant: {
      Value V;
      if (!readPlace(F, RV.P, V))
        return false;
      Out = Value::makeInt(V.K == Value::Kind::Bool ? (V.Bool ? 1 : 0)
                                                    : V.Int);
      return true;
    }
    case Rvalue::Kind::Len: {
      Value V;
      if (!readPlace(F, RV.P, V))
        return false;
      Out = Value::makeInt(V.K == Value::Kind::Aggregate
                               ? static_cast<int64_t>(V.Elems.size())
                               : 0);
      return true;
    }
    }
    return trap(TrapKind::TypeMismatch, "unsupported rvalue");
  }

  // --- Statement / terminator execution ------------------------------------

  bool writePlace(Frame &F, const Place &Dest, Value V) {
    PointerTarget T;
    if (!resolvePlace(F, Dest, T))
      return false;
    Value *Slot = resolveTarget(T);
    if (!Slot)
      return false;
    // Assignment through a pointer drops the previous value first (Rust
    // semantics). A bare local destination is guaranteed uninitialized by
    // rustc, so no drop runs there.
    if (Dest.hasDeref()) {
      if (Slot->isUninit()) {
        if (V.needsDrop())
          return trap(TrapKind::InvalidFree,
                      "assignment through pointer drops the previous value, "
                      "but the memory at " + T.toString() +
                          " is uninitialized garbage (use ptr::write)");
      } else {
        dropValue(*Slot);
        if (Trapped)
          return false;
      }
    }
    *Slot = std::move(V);
    if (T.K == PointerTarget::Space::Stack && T.Path.empty()) {
      auto It = Frames.find(T.FrameId);
      if (It != Frames.end())
        It->second.Locals[T.Local].Reason = VoidReason::NeverInit;
    }
    return true;
  }

  bool execStatement(Frame &F, const Statement &S) {
    if (!step())
      return false;
    switch (S.K) {
    case Statement::Kind::Nop:
      return true;
    case Statement::Kind::StorageLive: {
      Cell &C = F.Locals[S.Local];
      C.StorageLive = true;
      C.V = Value::makeUninit();
      C.Reason = VoidReason::NeverInit;
      return true;
    }
    case Statement::Kind::StorageDead: {
      Cell &C = F.Locals[S.Local];
      // A value still alive at scope end runs its drop glue here.
      if (!C.V.isUninit()) {
        dropValue(C.V);
        C.Reason = VoidReason::Dropped;
        if (Trapped)
          return false;
      }
      C.StorageLive = false;
      return true;
    }
    case Statement::Kind::Assign: {
      Value V;
      if (!evalRvalue(F, S.RV, V))
        return false;
      return writePlace(F, S.Dest, std::move(V));
    }
    }
    return true;
  }

  // Intrinsic and call handling (defined below).
  bool execCall(Frame &F, const Terminator &T, BlockId &Next);
  bool callFunction(const Function &Fn, std::vector<Value> Args, Value &Ret);

  bool execTerminator(Frame &F, const Terminator &T, BlockId &Next,
                      bool &Returned) {
    if (!step())
      return false;
    Returned = false;
    switch (T.K) {
    case Terminator::Kind::Goto:
      Next = T.Target;
      return true;
    case Terminator::Kind::SwitchInt: {
      Value D;
      if (!evalOperand(F, T.Discr, D))
        return false;
      int64_t X = D.K == Value::Kind::Bool ? (D.Bool ? 1 : 0) : D.Int;
      Next = T.Target;
      for (const auto &[Case, Block] : T.Cases) {
        if (Case == X) {
          Next = Block;
          break;
        }
      }
      return true;
    }
    case Terminator::Kind::Return:
      Returned = true;
      return true;
    case Terminator::Kind::Resume:
    case Terminator::Kind::Unreachable:
      Returned = true; // Treated as abnormal-but-quiet exits.
      return true;
    case Terminator::Kind::Assert: {
      Value C;
      if (!evalOperand(F, T.Discr, C))
        return false;
      if (C.K != Value::Kind::Bool || !C.Bool)
        return trap(TrapKind::AssertFailed, "assertion failed");
      Next = T.Target;
      return true;
    }
    case Terminator::Kind::Drop: {
      PointerTarget Target;
      if (!resolvePlace(F, T.DropPlace, Target))
        return false;
      Value *Slot = resolveTarget(Target);
      if (!Slot)
        return false;
      if (Slot->isUninit()) {
        // Dropping a value that was never written runs the destructor on
        // garbage when the type has drop glue (Figure 6's invalid free).
        bool TypeHasDrop =
            T.DropPlace.isLocal() &&
            analysis::typeNeedsDrop(F.Fn->localType(T.DropPlace.Base), M);
        if (TypeHasDrop &&
            F.Locals[T.DropPlace.Base].Reason == VoidReason::NeverInit)
          return trap(TrapKind::InvalidFree,
                      "drop of uninitialized value in " +
                          T.DropPlace.toString());
      } else {
        dropValue(*Slot);
        if (Trapped)
          return false;
      }
      if (T.DropPlace.isLocal())
        F.Locals[T.DropPlace.Base].Reason = VoidReason::Dropped;
      Next = T.Target;
      return true;
    }
    case Terminator::Kind::Call:
      if (!execCall(F, T, Next))
        return false;
      return true;
    }
    return true;
  }

  bool runFunctionBody(Frame &F, Value &Ret) {
    const Function &Fn = *F.Fn;
    const Function *SavedFn = CurFn;
    CurFn = &Fn;
    BlockId Block = 0;
    while (true) {
      if (Block >= Fn.numBlocks())
        return trap(TrapKind::InvalidPointer, "branch to missing block");
      CurBlock = Block;
      const BasicBlock &BB = Fn.Blocks[Block];
      for (size_t I = 0; I != BB.Statements.size(); ++I) {
        CurStmt = I;
        if (!execStatement(F, BB.Statements[I]))
          return false;
      }
      CurStmt = BB.Statements.size();
      BlockId Next = Block;
      bool Returned = false;
      if (!execTerminator(F, BB.Term, Next, Returned))
        return false;
      if (Returned) {
        Ret = std::move(F.Locals[0].V);
        CurFn = SavedFn;
        return true;
      }
      Block = Next;
    }
  }
};

//===----------------------------------------------------------------------===//
// Calls and intrinsics
//===----------------------------------------------------------------------===//

bool Interpreter::Impl::callFunction(const Function &Fn,
                                     std::vector<Value> Args, Value &Ret) {
  if (CallDepth >= Opts.MaxCallDepth)
    return trap(TrapKind::StackOverflow,
                "call depth limit (" + std::to_string(Opts.MaxCallDepth) +
                    ") exceeded; result is inconclusive, not a bug");
  if (Args.size() != Fn.NumArgs)
    return trap(TrapKind::TypeMismatch,
                "call to '" + Fn.Name.str() + "' with wrong argument count");
  ++CallDepth;
  unsigned Id = NextFrameId++;
  Frame &F = Frames.emplace(Id, Frame{Id, &Fn, {}}).first->second;
  F.Locals.resize(Fn.numLocals());
  for (size_t I = 0; I != Args.size(); ++I)
    F.Locals[I + 1].V = std::move(Args[I]);

  BlockId SavedBlock = CurBlock;
  size_t SavedStmt = CurStmt;
  bool Ok = runFunctionBody(F, Ret);
  Frames.erase(Id); // Locals die; pointers into them dangle.
  --CallDepth;
  if (Ok) {
    CurBlock = SavedBlock;
    CurStmt = SavedStmt;
  }
  return Ok;
}

bool Interpreter::Impl::execCall(Frame &F, const Terminator &T,
                                 BlockId &Next) {
  IntrinsicKind Kind = classifyIntrinsic(T.Callee);
  Next = T.Target;

  // Helper: evaluate all arguments.
  auto EvalArgs = [&](std::vector<Value> &Out) {
    for (const Operand &O : T.Args) {
      Value V;
      if (!evalOperand(F, O, V))
        return false;
      Out.push_back(std::move(V));
    }
    return true;
  };
  auto StoreDest = [&](Value V) {
    if (!T.HasDest)
      return true;
    return writePlace(F, T.Dest, std::move(V));
  };
  auto FreshHeap = [&](Value V, bool Initialized = true) {
    unsigned Id = NextHeapId++;
    HeapObject &H = Heap[Id];
    H.V = std::move(V);
    H.Initialized = Initialized;
    PointerTarget P;
    P.K = PointerTarget::Space::Heap;
    P.HeapId = Id;
    return P;
  };
  /// The lock a Mutex/RwLock argument denotes.
  auto LockKeyOf = [&](const Value &Arg, PointerTarget &Key) {
    if (Arg.K == Value::Kind::Ptr) {
      Key = Arg.Ptr;
      return true;
    }
    // A lock owned by value: its identity is the argument place itself.
    if (!T.Args.empty() && T.Args[0].isPlace()) {
      PointerTarget P;
      if (!resolvePlace(F, T.Args[0].P, P))
        return false;
      Key = P;
      return true;
    }
    return trap(TrapKind::TypeMismatch, "cannot identify lock argument");
  };

  switch (Kind) {
  case IntrinsicKind::MutexLock:
  case IntrinsicKind::RwLockRead:
  case IntrinsicKind::RwLockWrite:
  case IntrinsicKind::RefCellBorrow:
  case IntrinsicKind::RefCellBorrowMut: {
    Value Arg;
    if (T.Args.empty() || !evalOperand(F, T.Args[0], Arg))
      return false;
    PointerTarget Key;
    if (!LockKeyOf(Arg, Key))
      return false;
    bool IsBorrow = isBorrowAcquire(Kind);
    bool Exclusive =
        isExclusiveAcquire(Kind) || Kind == IntrinsicKind::RefCellBorrowMut;
    LockState &L = Locks[Key];
    if (L.Exclusive || (Exclusive && L.Shared > 0)) {
      // Same discipline, different failure mode: locks deadlock, RefCell
      // borrows panic (the runtime check of Insight 9).
      if (IsBorrow)
        return trap(TrapKind::BorrowPanic,
                    "RefCell at " + Key.toString() +
                        " already borrowed (BorrowMutError panic)");
      return trap(TrapKind::Deadlock,
                  "acquiring lock " + Key.toString() +
                      " already held by this thread (the guard from the "
                      "first acquisition is still alive)");
    }
    if (Exclusive)
      L.Exclusive = true;
    else
      ++L.Shared;
    return StoreDest(Value::makeGuard(std::move(Key), Exclusive));
  }
  case IntrinsicKind::MemDrop: {
    for (const Operand &O : T.Args) {
      Value V;
      if (!evalOperand(F, O, V))
        return false;
      dropValue(V);
      if (Trapped)
        return false;
      // The dropped value's home cell is now use-after-free territory.
      if (O.isMove() && O.P.isLocal())
        F.Locals[O.P.Base].Reason = VoidReason::Dropped;
    }
    return StoreDest(Value::makeUnit());
  }
  case IntrinsicKind::MemForget: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    // Consume without running drop glue.
    return StoreDest(Value::makeUnit());
  }
  case IntrinsicKind::BoxNew: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    Value Inner = Args.empty() ? Value::makeUnit() : std::move(Args[0]);
    return StoreDest(Value::makePtr(FreshHeap(std::move(Inner)),
                                    /*Owning=*/true));
  }
  case IntrinsicKind::Alloc: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    // Raw allocation: non-owning pointer to uninitialized memory.
    return StoreDest(Value::makePtr(
        FreshHeap(Value::makeUninit(), /*Initialized=*/false)));
  }
  case IntrinsicKind::Dealloc: {
    Value Arg;
    if (T.Args.empty() || !evalOperand(F, T.Args[0], Arg))
      return false;
    if (Arg.K != Value::Kind::Ptr ||
        Arg.Ptr.K != PointerTarget::Space::Heap)
      return trap(TrapKind::InvalidPointer, "dealloc of a non-heap pointer");
    auto It = Heap.find(Arg.Ptr.HeapId);
    if (It == Heap.end())
      return trap(TrapKind::InvalidPointer, "dealloc of unknown pointer");
    if (It->second.Freed)
      return trap(TrapKind::DoubleFree,
                  "dealloc of already-freed " + Arg.Ptr.toString());
    It->second.Freed = true;
    return StoreDest(Value::makeUnit());
  }
  case IntrinsicKind::PtrRead: {
    Value Arg;
    if (T.Args.empty() || !evalOperand(F, T.Args[0], Arg))
      return false;
    PointerTarget Tgt =
        Arg.K == Value::Kind::Ptr ? Arg.Ptr : PointerTarget();
    if (Arg.K != Value::Kind::Ptr)
      return trap(TrapKind::TypeMismatch, "ptr::read of a non-pointer");
    Value *Slot = resolveTarget(Tgt);
    if (!Slot)
      return false;
    if (Slot->isUninit())
      return trap(TrapKind::UninitRead,
                  "ptr::read of uninitialized memory");
    // Bitwise duplication: ownership is duplicated, not moved.
    return StoreDest(*Slot);
  }
  case IntrinsicKind::PtrWrite: {
    Value Ptr, V;
    if (T.Args.size() < 2 || !evalOperand(F, T.Args[0], Ptr) ||
        !evalOperand(F, T.Args[1], V))
      return false;
    if (Ptr.K != Value::Kind::Ptr)
      return trap(TrapKind::TypeMismatch, "ptr::write to a non-pointer");
    Value *Slot = resolveTarget(Ptr.Ptr);
    if (!Slot)
      return false;
    *Slot = std::move(V); // No drop of the old value: that is the point.
    return StoreDest(Value::makeUnit());
  }
  case IntrinsicKind::ArcNew: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    Value Inner = Args.empty() ? Value::makeUnit() : std::move(Args[0]);
    PointerTarget P = FreshHeap(std::move(Inner));
    Heap[P.HeapId].RefCount = 1;
    return StoreDest(Value::makePtr(std::move(P), /*Owning=*/true,
                                    /*RefCounted=*/true));
  }
  case IntrinsicKind::ArcClone: {
    Value Arg;
    if (T.Args.empty() || !evalOperand(F, T.Args[0], Arg))
      return false;
    Value Clone = Arg;
    if (Clone.K == Value::Kind::Ptr &&
        Clone.Ptr.K == PointerTarget::Space::Heap) {
      auto It = Heap.find(Clone.Ptr.HeapId);
      if (It != Heap.end())
        ++It->second.RefCount;
      Clone.Owning = true;
      Clone.RefCounted = true;
    }
    return StoreDest(std::move(Clone));
  }
  case IntrinsicKind::ThreadSpawn: {
    if (!T.Args.empty() && !T.Args[0].isPlace() &&
        T.Args[0].C.K == ConstValue::Kind::Str)
      SpawnQueue.push_back(T.Args[0].C.Str);
    return StoreDest(Value::makeOpaque());
  }
  case IntrinsicKind::AtomicOp: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    if (Args.empty() || Args[0].K != Value::Kind::Ptr)
      return trap(TrapKind::TypeMismatch, "atomic op needs a reference");
    Value *Slot = resolveTarget(Args[0].Ptr);
    if (!Slot)
      return false;
    // compare_and_swap(current, new) -> old; load() -> value;
    // store(v) -> unit; fetch_add(v) -> old.
    std::string_view Name = T.Callee;
    size_t Sep = Name.rfind("::");
    std::string_view Op = Sep == std::string_view::npos
                              ? Name
                              : Name.substr(Sep + 2);
    if (Slot->isUninit())
      *Slot = Value::makeBool(false);
    Value Old = *Slot;
    if (Op == "compare_and_swap" && Args.size() >= 3) {
      bool Equal = (Old.K == Value::Kind::Bool &&
                    Args[1].K == Value::Kind::Bool &&
                    Old.Bool == Args[1].Bool) ||
                   (Old.K == Value::Kind::Int &&
                    Args[1].K == Value::Kind::Int && Old.Int == Args[1].Int);
      if (Equal)
        *Slot = Args[2];
      return StoreDest(std::move(Old));
    }
    if (Op == "store" && Args.size() >= 2) {
      *Slot = Args[1];
      return StoreDest(Value::makeUnit());
    }
    if (Op == "fetch_add" && Args.size() >= 2 &&
        Old.K == Value::Kind::Int) {
      *Slot = Value::makeInt(Old.Int + Args[1].Int);
      return StoreDest(std::move(Old));
    }
    return StoreDest(std::move(Old)); // load and anything else.
  }
  case IntrinsicKind::OnceCall: {
    // Once::call_once(&once, const "init_fn"): runs init_fn exactly once.
    // A recursive call_once on the same Once while the closure is still
    // initializing deadlocks (the paper's Section 6.1 Once bug).
    Value Arg;
    if (T.Args.empty() || !evalOperand(F, T.Args[0], Arg))
      return false;
    PointerTarget Key;
    if (!LockKeyOf(Arg, Key))
      return false;
    OnceState &State = Onces[Key];
    if (State == OnceState::Running)
      return trap(TrapKind::Deadlock,
                  "call_once on " + Key.toString() +
                      " re-entered while its initializer is still running");
    if (State == OnceState::Done)
      return StoreDest(Value::makeUnit());
    std::string Init;
    if (T.Args.size() >= 2 && !T.Args[1].isPlace() &&
        T.Args[1].C.K == ConstValue::Kind::Str)
      Init = T.Args[1].C.Str;
    State = OnceState::Running;
    if (const Function *InitFn = M.findFunction(Init)) {
      // Closure-capture convention: an initializer taking arguments
      // receives the Once object first (so recursive call_once on the
      // same Once is observable), opaque values after.
      std::vector<Value> InitArgs;
      for (LocalId A = 1; A <= InitFn->NumArgs; ++A)
        InitArgs.push_back(A == 1 ? Arg : Value::makeOpaque());
      Value Ignored;
      if (!callFunction(*InitFn, std::move(InitArgs), Ignored))
        return false;
    }
    Onces[Key] = OnceState::Done;
    return StoreDest(Value::makeUnit());
  }
  case IntrinsicKind::PtrCopy:
  case IntrinsicKind::CondvarWait:
  case IntrinsicKind::CondvarNotify:
  case IntrinsicKind::ChannelSend:
  case IntrinsicKind::ChannelRecv: {
    std::vector<Value> Args;
    if (!EvalArgs(Args))
      return false;
    return StoreDest(Value::makeOpaque());
  }
  case IntrinsicKind::None:
    break;
  }

  // Module-defined function: interpret it. Unknown external calls return a
  // fresh opaque heap allocation (mirroring the static analysis's model).
  std::vector<Value> Args;
  if (!EvalArgs(Args))
    return false;
  if (const Function *Callee = M.findFunction(T.Callee)) {
    Value Ret;
    if (!callFunction(*Callee, std::move(Args), Ret))
      return false;
    return StoreDest(std::move(Ret));
  }
  return StoreDest(
      Value::makePtr(FreshHeap(Value::makeOpaque()), /*Owning=*/true));
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const Module &M, Options Opts)
    : P(std::make_unique<Impl>(M, Opts)) {}

Interpreter::Interpreter(const Module &M) : Interpreter(M, Options()) {}

Interpreter::~Interpreter() = default;

Value Interpreter::defaultArgument(const Type *Ty) {
  if (!Ty)
    return Value::makeOpaque();
  switch (Ty->kind()) {
  case Type::Kind::Prim:
    switch (Ty->prim()) {
    case PrimKind::Bool:
      return Value::makeBool(false);
    case PrimKind::Unit:
      return Value::makeUnit();
    case PrimKind::Str:
      return Value::makeStr("");
    default:
      return Value::makeInt(0);
    }
  case Type::Kind::Ref:
  case Type::Kind::RawPtr: {
    // Allocate a backing heap object holding the pointee's default.
    Value Inner = defaultArgument(Ty->pointee());
    unsigned Id = P->NextHeapId++;
    P->Heap[Id].V = std::move(Inner);
    PointerTarget T;
    T.K = PointerTarget::Space::Heap;
    T.HeapId = Id;
    return Value::makePtr(std::move(T));
  }
  case Type::Kind::Tuple: {
    std::vector<Value> Elems;
    for (const Type *E : Ty->args())
      Elems.push_back(defaultArgument(E));
    return Value::makeAggregate(std::move(Elems));
  }
  case Type::Kind::Array:
  case Type::Kind::Slice:
    return Value::makeAggregate({});
  case Type::Kind::Adt: {
    // Lock wrappers hold their protected data directly.
    if ((Ty->adtName() == "Mutex" || Ty->adtName() == "RwLock") &&
        !Ty->args().empty())
      return defaultArgument(Ty->args()[0]);
    if (const StructDecl *S = P->M.findStruct(Ty->adtName())) {
      std::vector<Value> Elems;
      for (const auto &[Name, FieldTy] : S->Fields)
        Elems.push_back(defaultArgument(FieldTy));
      return Value::makeAggregate(std::move(Elems));
    }
    return Value::makeOpaque();
  }
  }
  return Value::makeOpaque();
}

ExecResult Interpreter::run(const std::string &FnName) {
  const Function *Fn = P->M.findFunction(FnName);
  if (!Fn) {
    ExecResult R;
    R.Error = Trap{TrapKind::UnknownFunction,
                   "no function named '" + FnName + "'", FnName, 0, 0};
    return R;
  }
  P->reset();
  std::vector<Value> Args;
  for (LocalId A = 1; A <= Fn->NumArgs; ++A)
    Args.push_back(defaultArgument(Fn->localType(A)));
  ExecResult R;
  Value Ret;
  bool Ok = P->callFunction(*Fn, std::move(Args), Ret);
  // Run spawned threads sequentially (one deterministic schedule).
  while (Ok && P->Opts.RunSpawnedThreads && !P->SpawnQueue.empty()) {
    std::string Next = std::move(P->SpawnQueue.front());
    P->SpawnQueue.pop_front();
    const Function *TFn = P->M.findFunction(Next);
    if (!TFn)
      continue;
    std::vector<Value> TArgs;
    for (LocalId A = 1; A <= TFn->NumArgs; ++A)
      TArgs.push_back(defaultArgument(TFn->localType(A)));
    Value TRet;
    Ok = P->callFunction(*TFn, std::move(TArgs), TRet);
  }
  R.Ok = Ok;
  R.Steps = P->Steps;
  if (Ok)
    R.Return = std::move(Ret);
  else
    R.Error = P->Error;
  return R;
}

ExecResult Interpreter::run(const std::string &FnName,
                            std::vector<Value> Args) {
  const Function *Fn = P->M.findFunction(FnName);
  if (!Fn) {
    ExecResult R;
    R.Error = Trap{TrapKind::UnknownFunction,
                   "no function named '" + FnName + "'", FnName, 0, 0};
    return R;
  }
  P->reset();
  ExecResult R;
  Value Ret;
  R.Ok = P->callFunction(*Fn, std::move(Args), Ret);
  R.Steps = P->Steps;
  if (R.Ok)
    R.Return = std::move(Ret);
  else
    R.Error = P->Error;
  return R;
}

std::vector<Trap> Interpreter::runAll() {
  std::vector<Trap> Traps;
  for (const auto &Fn : P->M.functions()) {
    ExecResult R = run(Fn.Name);
    if (!R.Ok && R.Error)
      Traps.push_back(*R.Error);
  }
  return Traps;
}

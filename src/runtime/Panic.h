//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The panic model for the runtime substrate: Rust's checked operations
/// abort the thread on violation ("Rust runtime detects and triggers a panic
/// on certain types of bugs, such as buffer overflow"). The handler is
/// configurable so tests can observe panics.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_RUNTIME_PANIC_H
#define RUSTSIGHT_RUNTIME_PANIC_H

namespace rs::runtime {

/// Handler invoked on panic. Must not return; if it does, std::abort runs.
using PanicHandler = void (*)(const char *Message);

/// Replaces the process-wide panic handler; returns the previous one.
/// The default prints the message to stderr and aborts.
PanicHandler setPanicHandler(PanicHandler Handler);

/// Reports a safety-check violation and does not return.
[[noreturn]] void panic(const char *Message);

} // namespace rs::runtime

#endif // RUSTSIGHT_RUNTIME_PANIC_H

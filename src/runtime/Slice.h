//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Rust-slice-like view with both checked and unchecked access paths,
/// mirroring the operations the paper benchmarks in Section 4.1:
///
///   - at()            = slice[i]               (bounds check, panics)
///   - get()           = slice.get(i)           (checked, optional)
///   - getUnchecked()  = slice.get_unchecked(i) (no check; unsafe in Rust)
///   - copyFromSlice() = slice.copy_from_slice  (length check + overlap-safe)
///   - copyNonoverlapping = ptr::copy_nonoverlapping (raw memcpy)
///
/// The paper measured get_unchecked and pointer-offset traversal 4-5x
/// faster than checked access, and copy_nonoverlapping 23% faster than
/// copy_from_slice in some cases; bench/bench_sec4_perf.cpp regenerates
/// those comparisons with this substrate.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_RUNTIME_SLICE_H
#define RUSTSIGHT_RUNTIME_SLICE_H

#include "runtime/Panic.h"

#include <cstddef>
#include <cstring>

namespace rs::runtime {

/// A non-owning view of a contiguous buffer.
template <typename T> class Slice {
public:
  Slice() = default;
  Slice(T *Data, size_t Len) : Data(Data), Length(Len) {}

  size_t len() const { return Length; }
  bool empty() const { return Length == 0; }
  T *data() const { return Data; }

  /// Bounds-checked access; panics on violation (Rust's slice[i]).
  T &at(size_t I) const {
    if (I >= Length)
      panic("index out of bounds");
    return Data[I];
  }

  /// Checked access returning null instead of panicking (Rust's get()).
  T *get(size_t I) const { return I < Length ? &Data[I] : nullptr; }

  /// Unchecked access (Rust's get_unchecked(); unsafe). The caller must
  /// guarantee I < len().
  T &getUnchecked(size_t I) const { return Data[I]; }

  /// Sub-slice [Begin, Begin+Len); panics when out of range.
  Slice<T> subslice(size_t Begin, size_t Len) const {
    if (Begin > Length || Len > Length - Begin)
      panic("slice range out of bounds");
    return Slice<T>(Data + Begin, Len);
  }

  /// Rust's copy_from_slice: lengths must match (panics otherwise); the
  /// copy itself is overlap-safe, as the borrow checker guarantees
  /// disjointness that this substrate must enforce dynamically.
  void copyFromSlice(Slice<const T> Src) const {
    if (Src.len() != Length)
      panic("source slice length does not match destination");
    std::memmove(Data, Src.data(), Length * sizeof(T));
  }

  /*implicit*/ operator Slice<const T>() const {
    return Slice<const T>(Data, Length);
  }

private:
  T *Data = nullptr;
  size_t Length = 0;
};

/// Rust's ptr::copy_nonoverlapping: raw memcpy with no checks; the caller
/// guarantees disjointness (unsafe in Rust).
template <typename T>
void copyNonoverlapping(const T *Src, T *Dst, size_t Count) {
  std::memcpy(Dst, Src, Count * sizeof(T));
}

/// Pointer-offset traversal (Rust's ptr::offset + dereference): sums \p N
/// elements with raw pointer arithmetic and no bounds checks.
template <typename T> unsigned long long sumPointerOffset(const T *P, size_t N) {
  unsigned long long Sum = 0;
  for (const T *End = P + N; P != End; ++P)
    Sum += static_cast<unsigned long long>(*P);
  return Sum;
}

} // namespace rs::runtime

#endif // RUSTSIGHT_RUNTIME_SLICE_H

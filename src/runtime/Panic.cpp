#include "runtime/Panic.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace rs::runtime;

namespace {

void defaultHandler(const char *Message) {
  std::fprintf(stderr, "thread panicked: %s\n", Message);
}

std::atomic<PanicHandler> CurrentHandler{&defaultHandler};

} // namespace

PanicHandler rs::runtime::setPanicHandler(PanicHandler Handler) {
  return CurrentHandler.exchange(Handler ? Handler : &defaultHandler);
}

void rs::runtime::panic(const char *Message) {
  CurrentHandler.load()(Message);
  std::abort();
}

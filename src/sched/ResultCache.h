//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed incremental result cache. Summary-based analyses
/// scale because per-unit results are reusable across runs; RustSight's
/// unit is the file, keyed by a stable 64-bit FNV-1a fingerprint of the
/// file's canonical MIR text folded with a detector-set/version salt
/// (the engine derives the key; the cache is payload-agnostic and stores
/// opaque serialized reports).
///
/// Two layers:
///  - in-memory: an LRU map, bounded by MaxMemoryEntries, thread-safe;
///  - on-disk (optional): one JSON file per entry in DiskDir, written to a
///    temporary name and atomically renamed into place so readers never
///    see a torn entry. A corrupt, truncated, mismatched or unreadable
///    entry degrades to a cache miss — never a crash (PR 1's resilience
///    rules apply to the cache too).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SCHED_RESULTCACHE_H
#define RUSTSIGHT_SCHED_RESULTCACHE_H

#include "support/Mmap.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rs::sched {

class ResultCache {
public:
  struct Options {
    /// In-memory entry cap; older entries are LRU-evicted past it.
    /// 0 means unbounded.
    size_t MaxMemoryEntries = 4096;

    /// On-disk layer root ("" disables the disk layer). Created on first
    /// store if missing.
    std::string DiskDir;
  };

  /// Counters since construction. Reads that hit the disk layer count as
  /// both a Hit and a DiskHit. The blob layer (lookupBlob/storeBlob) keeps
  /// its own hit/miss counters so report-cache accounting — which feeds
  /// CorpusReport::Stats and several exactness tests — is unaffected by
  /// how many snapshot probes a run makes.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t DiskHits = 0;
    uint64_t CorruptEntries = 0; ///< Disk entries that failed to load.
    uint64_t StoreErrors = 0;    ///< Disk writes that failed (non-fatal).
    uint64_t BlobHits = 0;       ///< lookupBlob successes (either layer).
    uint64_t BlobMisses = 0;     ///< lookupBlob misses.
    uint64_t BlobDiskHits = 0;   ///< lookupBlob hits served from disk.
  };

  ResultCache(); ///< Default options (memory-only, default cap).
  explicit ResultCache(Options O);

  /// Returns the payload stored under \p Key, or nullopt. A disk hit is
  /// promoted into the memory layer. Thread-safe.
  std::optional<std::string> lookup(uint64_t Key);

  /// Stores \p Payload under \p Key in both layers. Disk failures are
  /// counted, not raised — and the first write failure (disk full,
  /// permission lost, directory unwritable) disables the disk layer for
  /// the rest of the run with a single stderr warning, so a sick
  /// filesystem costs one syscall round-trip total, not one per file.
  /// Thread-safe. Fault-injection probe site: "cache.disk.store".
  void store(uint64_t Key, std::string_view Payload);

  /// Binary-safe lookup: like lookup(), but the disk layer reads the
  /// length-framed ".bin" envelope instead of the JSON one. Payloads may
  /// contain any bytes (the MIR snapshot layer stores serialized modules
  /// here). Callers must keep blob keys disjoint from JSON-entry keys —
  /// the in-memory layer is shared.
  std::optional<std::string> lookupBlob(uint64_t Key);

  /// Binary-safe store; same failure/disable semantics as store().
  /// Fault-injection probe site: "cache.disk.store".
  void storeBlob(uint64_t Key, std::string_view Payload);

  /// A blob payload together with whatever owns its bytes: an owned heap
  /// string (memory-layer hit, or the buffered fallback when mmap fails)
  /// or a read-only file mapping the view borrows in place. Move-only;
  /// bytes() is valid for the lifetime of the BlobRef.
  class BlobRef {
  public:
    std::string_view bytes() const {
      return (Map ? Map.view() : std::string_view(Owned))
          .substr(Off, Len);
    }

  private:
    friend class ResultCache;
    std::string Owned;
    MappedFile Map;
    size_t Off = 0;
    size_t Len = 0;
  };

  /// Zero-copy variant of lookupBlob(): a disk hit maps the envelope and
  /// returns a view of the payload without promoting it into the memory
  /// layer — snapshot blobs are typically read once per (run, file), and
  /// for the mapped path the OS page cache is the caching layer. Counters
  /// move exactly as for lookupBlob(). Thread-safe.
  std::optional<BlobRef> lookupBlobRef(uint64_t Key);

  /// True once a write failure has disabled the disk layer (memory layer
  /// unaffected). Always false when no DiskDir was configured.
  bool diskDisabled() const;

  /// Drops every in-memory entry (the disk layer is untouched).
  void clearMemory();

  Stats stats() const;

  size_t memoryEntryCount() const;

  /// The on-disk file name for \p Key: "rscache-<16 hex digits>.json".
  static std::string entryFileName(uint64_t Key);

  /// The on-disk file name for a blob entry: "rscache-<16 hex>.bin".
  static std::string blobFileName(uint64_t Key);

  /// The on-disk entry format version; bump when the envelope changes.
  static constexpr int64_t DiskFormatVersion = 1;

  /// The binary envelope version ("RSCB" magic + version + key + size +
  /// checksum + bytes); bump when the framing changes.
  static constexpr uint32_t DiskBlobFormatVersion = 1;

private:
  std::optional<std::string> loadFromDisk(uint64_t Key);
  std::optional<BlobRef> loadBlobFromDisk(uint64_t Key);
  void storeToDisk(uint64_t Key, std::string_view Payload);
  void storeBlobToDisk(uint64_t Key, std::string_view Payload);
  bool writeDiskFile(const std::string &FileName, std::string_view Contents);
  void insertMemory(uint64_t Key, std::string Payload);

  Options Opts;

  mutable std::mutex M;
  /// LRU list, most-recent first; the map points into it.
  std::list<std::pair<uint64_t, std::string>> Lru;
  std::unordered_map<uint64_t, decltype(Lru)::iterator> Index;
  Stats Counters;
  /// Set by the first disk write failure; gates both disk reads and
  /// writes from then on (guarded by M).
  bool DiskDisabledFlag = false;
};

} // namespace rs::sched

#endif // RUSTSIGHT_SCHED_RESULTCACHE_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for corpus-scale analysis. The paper ran
/// its detectors over whole code bases (Servo, TiKV, Parity, the CVE
/// sets); that workload is embarrassingly parallel at file granularity,
/// and PR 1's containment boundaries make each file an independently
/// failable task — exactly the shape a pool wants.
///
/// Design: a fixed set of workers, each with its own deque. Submissions
/// are distributed round-robin across the deques; a worker pops from the
/// front of its own deque and, when empty, steals from the back of a
/// sibling's. Tasks are coarse (one file's parse+analyze), so per-deque
/// mutexes — not lock-free Chase-Lev deques — are the right complexity
/// trade-off: contention is negligible and the implementation is easy to
/// prove clean under ThreadSanitizer.
///
/// Shutdown is clean: the destructor waits for every submitted task to
/// finish, then joins all workers. Tasks must not throw; as a last line
/// of defense the worker loop swallows escaping exceptions so one faulty
/// task cannot take down the pool (the engine's containment boundaries
/// should have caught it long before).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SCHED_THREADPOOL_H
#define RUSTSIGHT_SCHED_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rs::sched {

class ThreadPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p Workers threads; 0 means defaultWorkerCount().
  explicit ThreadPool(unsigned Workers = 0);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// std::thread::hardware_concurrency, clamped to at least 1.
  static unsigned defaultWorkerCount();

  unsigned workerCount() const { return unsigned(Workers.size()); }

  /// Enqueues \p T. Safe to call from any thread, including from inside a
  /// running task (the task goes to the submitting worker's own deque).
  void submit(Task T);

  /// Blocks until every task submitted so far has finished. Reusable: more
  /// work may be submitted afterwards.
  void wait();

  /// Tasks stolen across deques since construction (observability; the
  /// scheduler tests use it to prove stealing actually happens).
  uint64_t stealCount() const {
    return Steals.load(std::memory_order_relaxed);
  }

private:
  struct WorkerState {
    std::mutex M;
    std::deque<Task> Deque;
  };

  void workerLoop(unsigned Me);
  bool tryPop(unsigned Me, Task &Out);

  std::vector<std::unique_ptr<WorkerState>> Queues;
  std::vector<std::thread> Workers;

  /// Guards sleep/wake and completion bookkeeping.
  std::mutex SleepM;
  std::condition_variable WorkCv; ///< Workers sleep here when idle.
  std::condition_variable DoneCv; ///< wait() sleeps here.

  size_t QueuedTasks = 0;   ///< Tasks sitting in some deque (under SleepM).
  size_t InFlightTasks = 0; ///< Queued + currently running (under SleepM).
  bool Stopping = false;    ///< Set once, by the destructor (under SleepM).

  std::atomic<uint64_t> Steals{0};
  std::atomic<size_t> NextQueue{0}; ///< Round-robin submission cursor.
};

/// Runs Fn(0..N-1) across the pool and waits for all of them. Exceptions
/// escaping \p Fn are swallowed by the worker loop — callers that care
/// must capture failure state themselves (the engine records it in the
/// per-file report).
void parallelFor(ThreadPool &Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace rs::sched

#endif // RUSTSIGHT_SCHED_THREADPOOL_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persisted function-summary database behind the whole-program link
/// step (docs/WHOLEPROGRAM.md). Entries are opaque payloads (the link layer
/// serializes/validates them) addressed by link key — a fingerprint of
/// everything a function's summary can depend on — so a warm run skips
/// summarizing any module whose functions all hit, and a source edit
/// invalidates exactly the SCC slice that can observe it.
///
/// Storage rides the ResultCache machinery (atomic-rename writes, corrupt-
/// entry-is-miss, disk-disable-on-first-write-failure). The DB folds its own
/// schema version into every address, so a schema bump reads as a cold
/// cache, never as corruption, and old entries are simply never addressed
/// again.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SCHED_SUMMARYDB_H
#define RUSTSIGHT_SCHED_SUMMARYDB_H

#include "sched/ResultCache.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rs::sched {

/// On-disk summary store, payload-agnostic (the analysis layer owns the
/// payload schema; this layer owns addressing and durability). Thread-safe.
class SummaryDb {
public:
  /// The DB's address-schema version. Bump together with the link layer's
  /// SummaryPayloadVersion when the payload shape changes: every address
  /// moves, so stale-shape entries are unreachable (cold, not corrupt).
  static constexpr int64_t SchemaVersion = 1;

  struct Options {
    /// Disk root shared with the report cache ("" = memory-only; addresses
    /// are salted so summary entries never collide with report entries).
    std::string DiskDir;

    /// In-memory entry cap (0 = unbounded).
    size_t MaxMemoryEntries = 4096;

    /// Address-schema override, for the CI schema-bump drill (a run with a
    /// bumped schema must be cold but correct). 0 means SchemaVersion.
    int64_t SchemaOverride = 0;
  };

  SummaryDb() : SummaryDb(Options()) {}
  explicit SummaryDb(Options O);

  /// The stored payload under \p LinkKey, or nullopt (miss or corrupt).
  std::optional<std::string> lookup(uint64_t LinkKey);

  /// Persists \p Payload under \p LinkKey. Callers must only store
  /// converged payloads — the link solver enforces this.
  void store(uint64_t LinkKey, std::string_view Payload);

  ResultCache::Stats stats() const { return Cache.stats(); }
  bool diskDisabled() const { return Cache.diskDisabled(); }

  /// The on-disk address of \p LinkKey under schema \p Schema — exposed so
  /// tests can assert the schema-fold actually moves addresses.
  static uint64_t address(uint64_t LinkKey, int64_t Schema);

private:
  int64_t Schema;
  ResultCache Cache;
};

} // namespace rs::sched

#endif // RUSTSIGHT_SCHED_SUMMARYDB_H

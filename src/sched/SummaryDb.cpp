//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "sched/SummaryDb.h"

#include "support/Hash.h"

using namespace rs;
using namespace rs::sched;

SummaryDb::SummaryDb(Options O)
    : Schema(O.SchemaOverride ? O.SchemaOverride : SchemaVersion),
      Cache([&] {
        ResultCache::Options CO;
        CO.DiskDir = std::move(O.DiskDir);
        CO.MaxMemoryEntries = O.MaxMemoryEntries;
        return CO;
      }()) {}

uint64_t SummaryDb::address(uint64_t LinkKey, int64_t Schema) {
  uint64_t H = fnv1a64("rustsight-summarydb");
  H = fnv1a64U64(static_cast<uint64_t>(Schema), H);
  return fnv1a64U64(LinkKey, H);
}

std::optional<std::string> SummaryDb::lookup(uint64_t LinkKey) {
  return Cache.lookup(address(LinkKey, Schema));
}

void SummaryDb::store(uint64_t LinkKey, std::string_view Payload) {
  Cache.store(address(LinkKey, Schema), Payload);
}

#include "sched/ThreadPool.h"

namespace rs::sched {

namespace {
/// Which pool (if any) owns the current thread, so submit() from inside a
/// running task can prefer the submitting worker's own deque.
thread_local const ThreadPool *TlsPool = nullptr;
thread_local unsigned TlsIndex = 0;
} // namespace

unsigned ThreadPool::defaultWorkerCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Workers) {
  unsigned N = Workers == 0 ? defaultWorkerCount() : Workers;
  Queues.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Queues.push_back(std::make_unique<WorkerState>());
  this->Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    this->Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(Task T) {
  unsigned Q;
  if (TlsPool == this) {
    Q = TlsIndex; // A task spawning subtasks keeps them local.
  } else {
    Q = unsigned(NextQueue.fetch_add(1, std::memory_order_relaxed) %
                 Queues.size());
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Q]->M);
    Queues[Q]->Deque.push_back(std::move(T));
  }
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    ++QueuedTasks;
    ++InFlightTasks;
  }
  WorkCv.notify_one();
}

bool ThreadPool::tryPop(unsigned Me, Task &Out) {
  // Own deque first, from the front (submission order)...
  {
    WorkerState &Mine = *Queues[Me];
    std::lock_guard<std::mutex> Lock(Mine.M);
    if (!Mine.Deque.empty()) {
      Out = std::move(Mine.Deque.front());
      Mine.Deque.pop_front();
      return true;
    }
  }
  // ...then steal from a sibling's back, scanning ring-order from our own
  // slot so contention spreads instead of piling onto worker 0.
  for (size_t Off = 1; Off != Queues.size(); ++Off) {
    WorkerState &Victim = *Queues[(Me + Off) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (!Victim.Deque.empty()) {
      Out = std::move(Victim.Deque.back());
      Victim.Deque.pop_back();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  TlsPool = this;
  TlsIndex = Me;
  while (true) {
    Task T;
    if (tryPop(Me, T)) {
      {
        std::lock_guard<std::mutex> Lock(SleepM);
        --QueuedTasks;
      }
      try {
        T();
      } catch (...) {
        // Last line of defense; the engine's containment boundaries are
        // supposed to catch everything before it reaches the pool.
      }
      std::lock_guard<std::mutex> Lock(SleepM);
      if (--InFlightTasks == 0)
        DoneCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepM);
    // QueuedTasks is only transiently out of sync with the deques (a task
    // is pushed before it is counted, popped before it is uncounted), so
    // a positive count here means a rescan will find work or another
    // worker got there first — either way, looping is safe and a zero
    // count with an uncounted push is fixed by submit()'s notify.
    if (QueuedTasks > 0)
      continue;
    if (Stopping)
      return;
    WorkCv.wait(Lock, [this] { return Stopping || QueuedTasks > 0; });
    if (Stopping && QueuedTasks == 0)
      return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(SleepM);
  DoneCv.wait(Lock, [this] { return InFlightTasks == 0; });
}

void parallelFor(ThreadPool &Pool, size_t N,
                 const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I != N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}

} // namespace rs::sched

#include "sched/ResultCache.h"

#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

namespace fs = std::filesystem;

using namespace rs;
using namespace rs::sched;

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(Options O) : Opts(std::move(O)) {}

std::string ResultCache::entryFileName(uint64_t Key) {
  return "rscache-" + hashToHex(Key) + ".json";
}

std::string ResultCache::blobFileName(uint64_t Key) {
  return "rscache-" + hashToHex(Key) + ".bin";
}

std::optional<std::string> ResultCache::lookup(uint64_t Key) {
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Lru.splice(Lru.begin(), Lru, It->second); // Touch: move to front.
      ++Counters.Hits;
      return It->second->second;
    }
  }
  if (!Opts.DiskDir.empty() && !diskDisabled()) {
    if (std::optional<std::string> Payload = loadFromDisk(Key)) {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.Hits;
      ++Counters.DiskHits;
      insertMemory(Key, *Payload);
      return Payload;
    }
  }
  std::lock_guard<std::mutex> Lock(M);
  ++Counters.Misses;
  return std::nullopt;
}

void ResultCache::store(uint64_t Key, std::string_view Payload) {
  {
    std::lock_guard<std::mutex> Lock(M);
    insertMemory(Key, std::string(Payload));
  }
  if (!Opts.DiskDir.empty() && !diskDisabled())
    storeToDisk(Key, Payload);
}

std::optional<std::string> ResultCache::lookupBlob(uint64_t Key) {
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Lru.splice(Lru.begin(), Lru, It->second);
      ++Counters.BlobHits;
      return It->second->second;
    }
  }
  if (!Opts.DiskDir.empty() && !diskDisabled()) {
    if (std::optional<BlobRef> Ref = loadBlobFromDisk(Key)) {
      std::string Payload(Ref->bytes());
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.BlobHits;
      ++Counters.BlobDiskHits;
      insertMemory(Key, Payload);
      return Payload;
    }
  }
  std::lock_guard<std::mutex> Lock(M);
  ++Counters.BlobMisses;
  return std::nullopt;
}

std::optional<ResultCache::BlobRef> ResultCache::lookupBlobRef(uint64_t Key) {
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Lru.splice(Lru.begin(), Lru, It->second);
      ++Counters.BlobHits;
      BlobRef R;
      R.Owned = It->second->second; // Copy: the LRU entry may be evicted.
      R.Len = R.Owned.size();
      return R;
    }
  }
  if (!Opts.DiskDir.empty() && !diskDisabled()) {
    if (std::optional<BlobRef> Ref = loadBlobFromDisk(Key)) {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.BlobHits;
      ++Counters.BlobDiskHits;
      return Ref;
    }
  }
  std::lock_guard<std::mutex> Lock(M);
  ++Counters.BlobMisses;
  return std::nullopt;
}

void ResultCache::storeBlob(uint64_t Key, std::string_view Payload) {
  {
    std::lock_guard<std::mutex> Lock(M);
    insertMemory(Key, std::string(Payload));
  }
  if (!Opts.DiskDir.empty() && !diskDisabled())
    storeBlobToDisk(Key, Payload);
}

bool ResultCache::diskDisabled() const {
  std::lock_guard<std::mutex> Lock(M);
  return DiskDisabledFlag;
}

void ResultCache::clearMemory() {
  std::lock_guard<std::mutex> Lock(M);
  Lru.clear();
  Index.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}

size_t ResultCache::memoryEntryCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Index.size();
}

/// Caller holds the mutex.
void ResultCache::insertMemory(uint64_t Key, std::string Payload) {
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = std::move(Payload);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, std::move(Payload));
  Index[Key] = Lru.begin();
  while (Opts.MaxMemoryEntries != 0 && Index.size() > Opts.MaxMemoryEntries) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Counters.Evictions;
  }
}

std::optional<std::string> ResultCache::loadFromDisk(uint64_t Key) {
  fs::path Path = fs::path(Opts.DiskDir) / entryFileName(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt; // Absent: a plain miss, not corruption.
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  // Any defect from here on is corruption: count it, drop the entry so the
  // next run does not pay the parse again, and miss.
  auto Corrupt = [&]() -> std::optional<std::string> {
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.CorruptEntries;
    }
    std::error_code Ec;
    fs::remove(Path, Ec); // Best-effort.
    return std::nullopt;
  };

  std::optional<JsonValue> Doc = JsonValue::parse(Text);
  if (!Doc || !Doc->isObject())
    return Corrupt();
  if (Doc->getInt("version", -1) != DiskFormatVersion)
    return Corrupt();
  uint64_t StoredKey = 0;
  if (!hexToHash(Doc->getString("key"), StoredKey) || StoredKey != Key)
    return Corrupt();
  const JsonValue *Payload = Doc->get("payload");
  if (!Payload || !Payload->isString())
    return Corrupt();
  return Payload->asString();
}

/// Writes \p Contents to DiskDir/FileName via a temporary + atomic rename.
/// Returns false on any failure (the caller records it); one write failure
/// disables the layer for the rest of the run — a full disk or revoked
/// permission would otherwise fail identically for every file, and a cache
/// must never turn a sick filesystem into per-file latency. The warning
/// prints exactly once, on the transition.
bool ResultCache::writeDiskFile(const std::string &FileName,
                                std::string_view Contents) {
  std::error_code Ec;
  fs::create_directories(Opts.DiskDir, Ec);

  // Unique-enough temporary name per writer (pid + thread), then an atomic
  // rename: concurrent writers of the same key race benignly because both
  // wrote identical content for identical keys.
  fs::path Final = fs::path(Opts.DiskDir) / FileName;
  std::string Suffix =
      ".tmp." + std::to_string(::getpid()) + "." +
      hashToHex(std::hash<std::thread::id>()(std::this_thread::get_id()));
  fs::path Tmp = Final;
  Tmp += Suffix;

  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Contents.data(),
              static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      Out.close();
      fs::remove(Tmp, Ec);
      return false;
    }
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

namespace {

/// Little-endian fixed-width fields for the blob envelope.
void putU32LE(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64LE(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint32_t getU32LE(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

uint64_t getU64LE(const char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return V;
}

constexpr char BlobMagic[4] = {'R', 'S', 'C', 'B'};
constexpr size_t BlobHeaderSize = 4 + 4 + 8 + 8 + 8;

} // namespace

void ResultCache::storeToDisk(uint64_t Key, std::string_view Payload) {
  auto Fail = [&] {
    bool WarnNow = false;
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.StoreErrors;
      if (!DiskDisabledFlag) {
        DiskDisabledFlag = true;
        WarnNow = true;
      }
    }
    if (WarnNow)
      std::fprintf(stderr,
                   "rustsight: warning: cannot write result cache entry "
                   "under '%s'; disk cache layer disabled for the rest of "
                   "this run (in-memory layer unaffected)\n",
                   Opts.DiskDir.c_str());
  };

  if (fault::shouldFail("cache.disk.store")) {
    Fail();
    return;
  }

  JsonWriter W;
  W.beginObject();
  W.field("version", DiskFormatVersion);
  W.field("key", hashToHex(Key));
  W.field("payload", Payload);
  W.endObject();

  if (!writeDiskFile(entryFileName(Key), W.str()))
    Fail();
}

void ResultCache::storeBlobToDisk(uint64_t Key, std::string_view Payload) {
  auto Fail = [&] {
    bool WarnNow = false;
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.StoreErrors;
      if (!DiskDisabledFlag) {
        DiskDisabledFlag = true;
        WarnNow = true;
      }
    }
    if (WarnNow)
      std::fprintf(stderr,
                   "rustsight: warning: cannot write result cache entry "
                   "under '%s'; disk cache layer disabled for the rest of "
                   "this run (in-memory layer unaffected)\n",
                   Opts.DiskDir.c_str());
  };

  if (fault::shouldFail("cache.disk.store")) {
    Fail();
    return;
  }

  std::string Envelope;
  Envelope.reserve(BlobHeaderSize + Payload.size());
  Envelope.append(BlobMagic, 4);
  putU32LE(Envelope, DiskBlobFormatVersion);
  putU64LE(Envelope, Key);
  putU64LE(Envelope, Payload.size());
  putU64LE(Envelope, fnv1a64(Payload));
  Envelope.append(Payload.data(), Payload.size());

  if (!writeDiskFile(blobFileName(Key), Envelope))
    Fail();
}

std::optional<ResultCache::BlobRef> ResultCache::loadBlobFromDisk(
    uint64_t Key) {
  fs::path Path = fs::path(Opts.DiskDir) / blobFileName(Key);

  // Map the envelope when possible: validation reads straight from the
  // page cache and the returned view borrows the mapping, so the payload
  // never takes a heap copy. When mmap refuses (or the "support.mmap"
  // fault probe fires) fall back to a buffered read — byte-for-byte the
  // same validation on an owned buffer.
  BlobRef Ref;
  if (std::optional<MappedFile> Map = MappedFile::open(Path.string())) {
    Ref.Map = std::move(*Map);
  } else {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return std::nullopt; // Absent: a plain miss, not corruption.
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Ref.Owned = Buf.str();
  }
  std::string_view Bytes = Ref.Map ? Ref.Map.view()
                                   : std::string_view(Ref.Owned);

  auto Corrupt = [&]() -> std::optional<BlobRef> {
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Counters.CorruptEntries;
    }
    std::error_code Ec;
    fs::remove(Path, Ec); // Best-effort.
    return std::nullopt;
  };

  if (Bytes.size() < BlobHeaderSize ||
      std::memcmp(Bytes.data(), BlobMagic, 4) != 0)
    return Corrupt();
  const char *P = Bytes.data() + 4;
  uint32_t Version = getU32LE(P);
  uint64_t StoredKey = getU64LE(P + 4);
  uint64_t Size = getU64LE(P + 12);
  uint64_t Checksum = getU64LE(P + 20);
  if (Version != DiskBlobFormatVersion || StoredKey != Key)
    return Corrupt();
  std::string_view Payload = Bytes.substr(BlobHeaderSize);
  if (Payload.size() != Size || fnv1a64(Payload) != Checksum)
    return Corrupt();
  Ref.Off = BlobHeaderSize;
  Ref.Len = Payload.size();
  return Ref;
}

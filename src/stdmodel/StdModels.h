//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable models of the standard-library interior-unsafe patterns the
/// paper's Section 4.3 audits. Each model is a small RustLite MIR module
/// capturing one encapsulation idiom — how a safe API wraps internal
/// unsafe code — together with the paper's verdict on it:
///
///   - Proper: "Rust std ... ensures that the input or the environment
///     that the interior unsafe code executes with is safe" (e.g.
///     Arc::from_raw only consuming Arc::into_raw's output), or explicit
///     checks (e.g. bounds checks before unchecked access).
///   - Improper: the encapsulation can be broken from safe code (the
///     Figure 5 Queue::peek/pop pair; constructors whose invariants later
///     unsafe code trusts).
///
/// The detector suite run over each model must agree with the verdict,
/// making Section 4.3's audit reproducible rather than narrative.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_STDMODEL_STDMODELS_H
#define RUSTSIGHT_STDMODEL_STDMODELS_H

#include <string>
#include <vector>

namespace rs::stdmodel {

/// The paper's encapsulation verdicts.
enum class Encapsulation {
  ProperByCheck,       ///< Explicit condition check guards the unsafe code.
  ProperByEnvironment, ///< Inputs/environment constructed safe by design.
  Improper,            ///< Breakable from safe code (19 cases in Sec. 4.3).
};

const char *encapsulationName(Encapsulation E);

/// One modeled std API pattern.
struct StdModel {
  /// Stable identifier, e.g. "arc-raw-roundtrip".
  std::string Name;
  /// The std API(s) being modeled.
  std::string Api;
  /// What the model demonstrates.
  std::string Description;
  /// RustLite MIR source; every model also contains a `client` function
  /// exercising the API the way safe code would.
  std::string Mir;
  /// The paper's verdict; Improper models must trigger >=1 diagnostic,
  /// Proper models none.
  Encapsulation Verdict;
};

/// The full model registry.
const std::vector<StdModel> &stdModels();

/// Finds a model by name, or null.
const StdModel *findStdModel(const std::string &Name);

} // namespace rs::stdmodel

#endif // RUSTSIGHT_STDMODEL_STDMODELS_H

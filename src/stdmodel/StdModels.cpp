#include "stdmodel/StdModels.h"

using namespace rs::stdmodel;

const char *rs::stdmodel::encapsulationName(Encapsulation E) {
  switch (E) {
  case Encapsulation::ProperByCheck:
    return "proper (explicit check)";
  case Encapsulation::ProperByEnvironment:
    return "proper (safe inputs/environment)";
  case Encapsulation::Improper:
    return "improper";
  }
  return "?";
}

namespace {

std::vector<StdModel> buildModels() {
  std::vector<StdModel> Models;

  // --- Proper: safe by environment -----------------------------------------

  Models.push_back(
      {"arc-raw-roundtrip", "Arc::into_raw / Arc::from_raw",
       "The paper's canonical environment-safe pair: from_raw only ever "
       "consumes what into_raw produced, so no check is needed.",
       R"mir(
fn client() -> i32 {
    let _1: Arc<i32>;
    let _2: *const i32;
    let _3: Arc<i32>;
    bb0: {
        _1 = Arc::new(const 5) -> bb1;
    }
    bb1: {
        _2 = Arc::into_raw(move _1) -> bb2;
    }
    bb2: {
        _3 = Arc::from_raw(move _2) -> bb3;
    }
    bb3: {
        drop(_3) -> bb4;
    }
    bb4: {
        _0 = const 0;
        return;
    }
}
)mir",
       Encapsulation::ProperByEnvironment});

  Models.push_back(
      {"mutex-guard-scope", "Mutex::lock",
       "The guard's scope is the critical section; the implicit unlock at "
       "scope end keeps re-acquisition safe.",
       R"mir(
fn client(_1: &Mutex<i32>) -> i32 {
    let _2: MutexGuard<i32>;
    let _3: MutexGuard<i32>;
    bb0: {
        StorageLive(_2);
        _2 = Mutex::lock(copy _1) -> bb1;
    }
    bb1: {
        _0 = copy (*_2);
        StorageDead(_2);
        StorageLive(_3);
        _3 = Mutex::lock(copy _1) -> bb2;
    }
    bb2: {
        StorageDead(_3);
        return;
    }
}
)mir",
       Encapsulation::ProperByEnvironment});

  Models.push_back(
      {"vec-reserve-write", "Vec::push (grow path)",
       "Raw allocation is written through ptr::write before anything reads "
       "it: the internal unsafe code runs in an environment the safe API "
       "constructed.",
       R"mir(
fn client() -> u8 {
    let _1: *mut u8;
    let _2: ();
    bb0: {
        _1 = alloc(const 8) -> bb1;
    }
    bb1: {
        _2 = ptr::write(copy _1, const 42) -> bb2;
    }
    bb2: {
        _0 = copy (*_1);
        return;
    }
}
)mir",
       Encapsulation::ProperByEnvironment});

  Models.push_back(
      {"refcell-scoped-borrows", "RefCell::borrow_mut",
       "Dynamic borrows encapsulate aliasing+mutation safely as long as "
       "guards' scopes never overlap.",
       R"mir(
fn client(_1: &RefCell<i32>) -> i32 {
    let _2: RefMut<i32>;
    let _3: RefMut<i32>;
    bb0: {
        StorageLive(_2);
        _2 = RefCell::borrow_mut(copy _1) -> bb1;
    }
    bb1: {
        (*_2) = const 1;
        StorageDead(_2);
        StorageLive(_3);
        _3 = RefCell::borrow_mut(copy _1) -> bb2;
    }
    bb2: {
        _0 = copy (*_3);
        StorageDead(_3);
        return;
    }
}
)mir",
       Encapsulation::ProperByEnvironment});

  // --- Proper: explicit checks ---------------------------------------------

  Models.push_back(
      {"slice-get-checked", "slice::get / slice indexing",
       "The 42% of std interior-unsafe regions requiring valid memory: the "
       "bound is checked explicitly before the unchecked access.",
       R"mir(
fn client(_1: &[i32], _2: usize) -> i32 {
    let _3: usize;
    let _4: bool;
    bb0: {
        _3 = Len((*_1));
        _4 = Lt(copy _2, copy _3);
        switchInt(copy _4) -> [1: bb1, otherwise: bb2];
    }
    bb1: {
        _0 = copy (*_1)[_2];
        return;
    }
    bb2: {
        _0 = const 0;
        return;
    }
}
)mir",
       Encapsulation::ProperByCheck});

  Models.push_back(
      {"string-utf8-checked", "String::from_utf8",
       "The checked constructor validates before building: the buffer is "
       "initialized before any read.",
       R"mir(
fn client() -> u8 {
    let _1: *mut u8;
    let _2: bool;
    bb0: {
        _1 = alloc(const 4) -> bb1;
    }
    bb1: {
        (*_1) = const 104;
        _2 = validate_utf8(copy _1) -> bb2;
    }
    bb2: {
        switchInt(copy _2) -> [1: bb3, otherwise: bb4];
    }
    bb3: {
        _0 = copy (*_1);
        return;
    }
    bb4: {
        _0 = const 0;
        return;
    }
}
)mir",
       Encapsulation::ProperByCheck});

  // --- Improper (the 19 cases of Section 4.3) -------------------------------

  Models.push_back(
      {"queue-peek-pop", "Queue::peek + Queue::pop (Figure 5)",
       "Both take &self, so safe code can hold peek's reference across "
       "pop's removal of the element: interior mutability improperly "
       "encapsulated.",
       R"mir(
fn Queue_peek(_1: &Queue<i32>) -> *mut i32 {
    bb0: {
        _0 = copy (*_1).0;
        return;
    }
}
fn Queue_pop(_1: &Queue<i32>) {
    let _2: *mut i32;
    bb0: {
        _2 = copy (*_1).0;
        dealloc(copy _2) -> bb1;
    }
    bb1: {
        return;
    }
}
fn client(_1: &Queue<i32>) -> i32 {
    let _2: *mut i32;
    let _3: ();
    bb0: {
        _2 = Queue_peek(copy _1) -> bb1;
    }
    bb1: {
        _3 = Queue_pop(copy _1) -> bb2;
    }
    bb2: {
        _0 = copy (*_2);
        return;
    }
}
)mir",
       Encapsulation::Improper});

  Models.push_back(
      {"unchecked-ctor", "String::from_utf8_unchecked",
       "The unchecked constructor skips the initialization/validation the "
       "later safe reads trust (the unsafe-constructor pattern of Section "
       "4.1).",
       R"mir(
fn client() -> u8 {
    let _1: *mut u8;
    bb0: {
        _1 = alloc(const 8) -> bb1;
    }
    bb1: {
        _0 = copy (*_1);
        return;
    }
}
)mir",
       Encapsulation::Improper});

  Models.push_back(
      {"deref-param-unchecked", "ffi-style pointer parameter",
       "\"Four directly dereference input parameters ... without any "
       "boundary checking\": the callee trusts a pointer its caller "
       "already freed.",
       R"mir(
fn release(_1: *mut u8) {
    bb0: {
        dealloc(copy _1) -> bb1;
    }
    bb1: {
        return;
    }
}
fn client() -> u8 {
    let _1: *mut u8;
    let _2: ();
    bb0: {
        _1 = alloc(const 8) -> bb1;
    }
    bb1: {
        (*_1) = const 1;
        _2 = release(copy _1) -> bb2;
    }
    bb2: {
        _0 = copy (*_1);
        return;
    }
}
)mir",
       Encapsulation::Improper});

  Models.push_back(
      {"lifetime-to-static-cast", "mem::transmute lifetime extension",
       "\"Using type casting to change objects' lifetime to static\": the "
       "returned reference points into the callee's dead frame.",
       R"mir(
fn leak() -> &i32 {
    let _1: i32;
    let _2: &i32;
    bb0: {
        _1 = const 5;
        _2 = &_1;
        _0 = copy _2 as &i32;
        return;
    }
}
)mir",
       Encapsulation::Improper});

  return Models;
}

} // namespace

const std::vector<StdModel> &rs::stdmodel::stdModels() {
  static const std::vector<StdModel> Models = buildModels();
  return Models;
}

const StdModel *rs::stdmodel::findStdModel(const std::string &Name) {
  for (const StdModel &M : stdModels())
    if (M.Name == Name)
      return &M;
  return nullptr;
}

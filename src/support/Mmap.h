//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only memory-mapped file. The result cache's blob layer maps
/// snapshot envelopes instead of copying them through a stream buffer, and
/// the snapshot decoder's string table then borrows the mapped bytes in
/// place — the payload is never duplicated on the heap.
///
/// Mapping is strictly an optimization: every caller must keep a buffered
/// read path for when open() returns nullopt (file vanished, mmap refused,
/// zero-length file, exotic filesystem). The view is valid only while the
/// MappedFile is alive; callers that outlive the mapping must copy.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_MMAP_H
#define RUSTSIGHT_SUPPORT_MMAP_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace rs {

class MappedFile {
public:
  MappedFile() = default;
  MappedFile(MappedFile &&O) noexcept : Data(O.Data), Size(O.Size) {
    O.Data = nullptr;
    O.Size = 0;
  }
  MappedFile &operator=(MappedFile &&O) noexcept {
    if (this != &O) {
      unmap();
      Data = O.Data;
      Size = O.Size;
      O.Data = nullptr;
      O.Size = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile() { unmap(); }

  /// Maps \p Path read-only. Returns nullopt on any failure — open, stat,
  /// mmap, or a zero-length file (mmap of length 0 is EINVAL; an empty
  /// view carries no information a caller could not get from the
  /// fallback). Fault-injection probe site: "support.mmap".
  static std::optional<MappedFile> open(const std::string &Path);

  /// True while a mapping is held.
  explicit operator bool() const { return Data != nullptr; }

  /// The mapped bytes. Empty when no mapping is held.
  std::string_view view() const { return {Data, Size}; }

private:
  void unmap();

  const char *Data = nullptr;
  size_t Size = 0;
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_MMAP_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size bit vector used as the dataflow lattice element. All dataflow
/// facts in RustSight (live locals, initialized locals, points-to sets) are
/// sets of small dense integers.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_BITVEC_H
#define RUSTSIGHT_SUPPORT_BITVEC_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs {

/// A set of integers in [0, size()). Sized at construction; all set
/// operations require equal sizes.
class BitVec {
public:
  BitVec() = default;
  explicit BitVec(size_t NumBits, bool InitialValue = false)
      : NumBits(NumBits),
        Words(wordCount(NumBits),
              InitialValue ? ~uint64_t(0) : uint64_t(0)) {
    clearPadding();
  }

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Set-union with \p Other. Returns true if this changed.
  bool unionWith(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// Set-intersection with \p Other. Returns true if this changed.
  bool intersectWith(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] & Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// Removes every element of \p Other from this set.
  void subtract(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I != Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  friend bool operator==(const BitVec &A, const BitVec &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

  /// Calls \p F with each set bit index in increasing order.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t WI = 0; WI != Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        F(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

private:
  static size_t wordCount(size_t Bits) { return (Bits + 63) / 64; }

  /// Keeps bits past NumBits zero so count()/operator== stay exact.
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_BITVEC_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple ASCII table renderer used by the study aggregators and the bench
/// harness to print the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_TABLE_H
#define RUSTSIGHT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace rs {

/// Accumulates rows of cells and renders them with aligned columns.
///
/// The first column is left-aligned; all other columns are right-aligned,
/// which matches how the paper typesets its count tables.
class Table {
public:
  explicit Table(std::string Title = "") : Title(std::move(Title)) {}

  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header; missing
  /// cells render as empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line at the current position.
  void addSeparator();

  /// Renders the table, including the title (if any) and a trailing newline.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::string Title;
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_TABLE_H

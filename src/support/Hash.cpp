#include "support/Hash.h"

#include <string>

using namespace rs;

std::string rs::hashToHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[I] = Digits[H & 0xf];
    H >>= 4;
  }
  return Out;
}

bool rs::hexToHash(std::string_view Hex, uint64_t &Out) {
  if (Hex.size() != 16)
    return false;
  uint64_t H = 0;
  for (char C : Hex) {
    H <<= 4;
    if (C >= '0' && C <= '9')
      H |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      H |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  Out = H;
  return true;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) so corpus generation and property
/// tests are reproducible across platforms and standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_RNG_H
#define RUSTSIGHT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace rs {

/// SplitMix64: fast, well-distributed, and identical on every platform,
/// unlike std::mt19937 seeded through std::seed_seq.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() needs a nonzero bound");
    // Modulo bias is irrelevant for our corpus sizes; determinism matters.
    return next() % Bound;
  }

  /// Returns a value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_RNG_H

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first N elements. The MIR layer
/// stores per-node sequences — place projections, rvalue operands, call
/// arguments, switch cases — in SmallVectors sized for the common case, so
/// building and copying a typical statement performs zero heap
/// allocations (the old std::vector members allocated once per node).
///
/// The API is the std::vector subset the codebase uses; iteration is over
/// plain pointers. Unlike std::vector, moving a SmallVector whose elements
/// are inline moves element-by-element (still allocation-free).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_SMALLVECTOR_H
#define RUSTSIGHT_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace rs {

template <typename T, unsigned N> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> Init) {
    reserve(Init.size());
    for (const T &V : Init)
      push_back(V);
  }

  SmallVector(const SmallVector &Other) { append(Other); }

  SmallVector(SmallVector &&Other) noexcept { takeFrom(Other); }

  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    append(Other);
    return *this;
  }

  SmallVector &operator=(SmallVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroyAll();
    takeFrom(Other);
    return *this;
  }

  ~SmallVector() { destroyAll(); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }

  T *data() { return Data; }
  const T *data() const { return Data; }

  iterator begin() { return Data; }
  iterator end() { return Data + Size; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Size; }

  T &operator[](size_t I) {
    assert(I < Size);
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size);
    return Data[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &back() const { return (*this)[Size - 1]; }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void push_back(const T &V) {
    if (Size == Cap)
      grow(Cap * 2);
    new (Data + Size) T(V);
    ++Size;
  }

  void push_back(T &&V) {
    if (Size == Cap)
      grow(Cap * 2);
    new (Data + Size) T(std::move(V));
    ++Size;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Size == Cap)
      grow(Cap * 2);
    T *P = new (Data + Size) T(std::forward<Args>(A)...);
    ++Size;
    return *P;
  }

  void pop_back() {
    assert(Size != 0);
    --Size;
    Data[Size].~T();
  }

  void clear() {
    for (size_t I = 0; I != Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      for (size_t I = NewSize; I != Size; ++I)
        Data[I].~T();
      Size = NewSize;
      return;
    }
    reserve(NewSize);
    for (size_t I = Size; I != NewSize; ++I)
      new (Data + I) T();
    Size = NewSize;
  }

  iterator erase(const_iterator Pos) {
    size_t I = static_cast<size_t>(Pos - Data);
    assert(I < Size);
    for (size_t J = I; J + 1 < Size; ++J)
      Data[J] = std::move(Data[J + 1]);
    pop_back();
    return Data + I;
  }

  iterator erase(const_iterator First, const_iterator Last) {
    size_t B = static_cast<size_t>(First - Data);
    size_t E = static_cast<size_t>(Last - Data);
    assert(B <= E && E <= Size);
    size_t Removed = E - B;
    for (size_t J = B; J + Removed < Size; ++J)
      Data[J] = std::move(Data[J + Removed]);
    resize(Size - Removed);
    return Data + B;
  }

  iterator insert(const_iterator Pos, T V) {
    size_t I = static_cast<size_t>(Pos - Data);
    assert(I <= Size);
    if (Size == Cap)
      grow(Cap * 2);
    new (Data + Size) T();
    ++Size;
    for (size_t J = Size - 1; J > I; --J)
      Data[J] = std::move(Data[J - 1]);
    Data[I] = std::move(V);
    return Data + I;
  }

  friend bool operator==(const SmallVector &A, const SmallVector &B) {
    return A.Size == B.Size && std::equal(A.begin(), A.end(), B.begin());
  }
  friend bool operator!=(const SmallVector &A, const SmallVector &B) {
    return !(A == B);
  }

  /// True while elements still live in the inline buffer (observability
  /// for tests and allocation-count assertions; not part of the value).
  bool isInline() const {
    return Data == reinterpret_cast<const T *>(Inline);
  }

private:
  void grow(size_t NewCap) {
    NewCap = std::max<size_t>(NewCap, N ? 2 * N : 4);
    T *NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Size; ++I) {
      new (NewData + I) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (!isInline())
      ::operator delete(Data);
    Data = NewData;
    Cap = NewCap;
  }

  void append(const SmallVector &Other) {
    reserve(Other.Size);
    for (size_t I = 0; I != Other.Size; ++I)
      push_back(Other.Data[I]);
  }

  /// Move-construct from \p Other, leaving it empty. *this must be empty
  /// (or destroyed): called from move construction/assignment only.
  void takeFrom(SmallVector &Other) noexcept {
    if (Other.isInline()) {
      Data = reinterpret_cast<T *>(Inline);
      Cap = N;
      Size = Other.Size;
      for (size_t I = 0; I != Size; ++I) {
        new (Data + I) T(std::move(Other.Data[I]));
        Other.Data[I].~T();
      }
      Other.Size = 0;
      return;
    }
    Data = Other.Data;
    Size = Other.Size;
    Cap = Other.Cap;
    Other.Data = reinterpret_cast<T *>(Other.Inline);
    Other.Size = 0;
    Other.Cap = N;
  }

  void destroyAll() {
    clear();
    if (!isInline())
      ::operator delete(Data);
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Data = reinterpret_cast<T *>(Inline);
  size_t Size = 0;
  size_t Cap = N;
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_SMALLVECTOR_H

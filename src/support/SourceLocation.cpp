#include "support/SourceLocation.h"

#include <mutex>
#include <set>

using namespace rs;

static const std::string EmptyFileName;

const std::string &SourceLocation::file() const {
  return File ? *File : EmptyFileName;
}

const std::string *rs::internFileName(std::string_view Name) {
  // std::set never invalidates element addresses, so returned pointers stay
  // stable across later insertions; the mutex makes concurrent interning
  // from parallel per-file analysis tasks safe.
  static std::mutex PoolMutex;
  static std::set<std::string> Pool; // Function-local: no static constructor.
  std::lock_guard<std::mutex> Lock(PoolMutex);
  return &*Pool.insert(std::string(Name)).first;
}

std::string SourceLocation::toString() const {
  std::string Out;
  if (File && !File->empty()) {
    Out += *File;
    Out += ':';
  }
  Out += std::to_string(Line);
  Out += ':';
  Out += std::to_string(Col);
  return Out;
}

//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Child-process plumbing for the out-of-process analysis fleet: spawn a
/// worker with piped stdin/stdout/stderr (posix_spawn), stream its output
/// through non-blocking reads, kill it when a watchdog expires, and reap it
/// into a classified exit status (clean exit vs nonzero exit vs death by
/// signal). The supervisor's whole worker contract — SIGSEGV and SIGABRT
/// are crashes, SIGKILL after a deadline is a timeout, exit 0 after a
/// "done" frame is success — is built on the ExitStatus this class
/// returns. See docs/RESILIENCE.md ("Process-level supervision").
///
/// Everything here reports failure by return value, never by exception:
/// a worker that cannot be spawned or read is a supervisor-visible event
/// to classify, not a reason to die.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_SUBPROCESS_H
#define RUSTSIGHT_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

namespace rs::proc {

/// How a reaped child ended.
struct ExitStatus {
  bool Signaled = false; ///< True when the child was killed by a signal.
  int Code = 0;          ///< WEXITSTATUS when !Signaled.
  int Sig = 0;           ///< WTERMSIG when Signaled.

  bool cleanExit() const { return !Signaled && Code == 0; }

  /// "exited with code 3" / "killed by signal 11 (SIGSEGV)".
  std::string describe() const;
};

/// One spawned child with piped standard streams. Move-only; the
/// destructor kills (SIGKILL) and reaps a child that is still running so a
/// supervisor bug can never leak zombies or orphaned workers.
class Subprocess {
public:
  struct Options {
    /// Argv[0] is the executable, resolved through PATH (posix_spawnp).
    std::vector<std::string> Argv;
    /// When false the child inherits the parent's stdin and stdinFd() is
    /// -1.
    bool PipeStdin = true;
  };

  /// Spawns the child. On failure returns nullopt and, when \p Err is
  /// non-null, a description of what failed.
  static std::optional<Subprocess> spawn(const Options &O,
                                         std::string *Err = nullptr);

  Subprocess(Subprocess &&Other) noexcept;
  Subprocess &operator=(Subprocess &&Other) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  ~Subprocess();

  pid_t pid() const { return Pid; }

  /// Parent ends of the child's streams. stdout/stderr are non-blocking
  /// (O_NONBLOCK) so a supervisor can poll() many workers at once; -1 once
  /// closed.
  int stdoutFd() const { return OutFd; }
  int stderrFd() const { return ErrFd; }
  int stdinFd() const { return InFd; }

  /// Blocking write of the whole buffer to the child's stdin. Returns
  /// false on any write error (including EPIPE from a child that died —
  /// SIGPIPE is suppressed for the write, so the caller sees a return
  /// value, not a signal).
  bool writeStdin(std::string_view Data);

  /// Closes the child's stdin so it sees EOF.
  void closeStdin();

  enum class ReadStatus {
    Data,       ///< Appended at least one byte to the buffer.
    WouldBlock, ///< Nothing available right now (EAGAIN).
    Eof,        ///< Stream closed by the child; the fd has been closed.
    Error,      ///< Read error; the fd has been closed.
  };

  /// Non-blocking drain of one of this child's stream fds into \p Out.
  /// Call with stdoutFd() or stderrFd() after poll() reports readability.
  ReadStatus readSome(int Fd, std::string &Out);

  /// Sends \p Signal (default SIGKILL) to the child. Safe to call on an
  /// already-reaped child (no-op).
  void kill(int Signal = 9);

  /// Reaps the child without blocking; nullopt while it is still running.
  /// The status is cached: later calls keep returning it.
  std::optional<ExitStatus> tryWait();

  /// Blocking reap (waits for the child to end first).
  ExitStatus wait();

private:
  Subprocess() = default;
  void closeFd(int &Fd);

  pid_t Pid = -1;
  int InFd = -1;
  int OutFd = -1;
  int ErrFd = -1;
  std::optional<ExitStatus> Reaped;
};

/// Convenience one-shot runner used by tests and tools: spawns Argv, feeds
/// \p Stdin, collects both output streams, and enforces \p TimeoutMs
/// (0 = none) by SIGKILL.
struct RunResult {
  bool Spawned = false;   ///< False when the process never started.
  bool TimedOut = false;  ///< True when the deadline killed it.
  ExitStatus Exit;        ///< Valid when Spawned.
  std::string Stdout;
  std::string Stderr;
  std::string Error;      ///< Spawn-failure description.
};
RunResult runCommand(const std::vector<std::string> &Argv,
                     std::string_view Stdin = "", uint64_t TimeoutMs = 0);

/// Absolute path of the running executable (/proc/self/exe on Linux),
/// falling back to \p Argv0 when the link cannot be read. The supervisor
/// uses this to respawn itself in worker mode.
std::string currentExecutablePath(const char *Argv0);

} // namespace rs::proc

#endif // RUSTSIGHT_SUPPORT_SUBPROCESS_H

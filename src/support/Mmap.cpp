#include "support/Mmap.h"

#include "support/FaultInjection.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace rs;

std::optional<MappedFile> MappedFile::open(const std::string &Path) {
  if (fault::shouldFail("support.mmap"))
    return std::nullopt;

  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return std::nullopt;

  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode) || St.st_size <= 0) {
    ::close(Fd);
    return std::nullopt;
  }

  size_t Size = static_cast<size_t>(St.st_size);
  void *P = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  // The mapping holds its own reference; the descriptor is not needed
  // past this point either way.
  ::close(Fd);
  if (P == MAP_FAILED)
    return std::nullopt;

  MappedFile F;
  F.Data = static_cast<const char *>(P);
  F.Size = Size;
  return F;
}

void MappedFile::unmap() {
  if (Data != nullptr)
    ::munmap(const_cast<char *>(Data), Size);
  Data = nullptr;
  Size = 0;
}

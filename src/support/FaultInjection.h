//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for exercising recovery paths. Probe points
/// are named call sites ("engine.detector", "engine.parse", ...); a test
/// arms a site to fail on its Nth hit and the probed code simulates the
/// fault. Probes are compiled in always but cost a single branch on a
/// plain bool when nothing is armed, so production builds pay nothing.
///
/// The registry is process-global and thread-safe: parallel engine workers
/// may probe concurrently (hit counting is serialized under a lock, so
/// "fail the Nth hit" stays exact even then, though which worker observes
/// the Nth hit depends on scheduling). Tests arm/disarm around the code
/// under test (use ScopedFault so disarm survives early returns and ASSERT
/// bailouts).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_FAULTINJECTION_H
#define RUSTSIGHT_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>

namespace rs::fault {

namespace detail {
extern std::atomic<bool> Enabled;
bool shouldFailSlow(const char *Site);
} // namespace detail

/// Probe point: returns true when \p Site is armed and this hit is one of
/// the hits selected to fail. Zero-cost (one branch) when nothing is armed.
inline bool shouldFail(const char *Site) {
  return detail::Enabled.load(std::memory_order_relaxed) &&
         detail::shouldFailSlow(Site);
}

/// Arms \p Site to fail on hits [FailOnNth, FailOnNth + Count) — hit
/// numbering is 1-based. Arming resets the site's hit counter.
void arm(const std::string &Site, uint64_t FailOnNth, uint64_t Count = 1);

/// Disarms one site (its hit counter is dropped).
void disarm(const std::string &Site);

/// Disarms every site and resets all counters.
void disarmAll();

/// Hits observed at \p Site since it was armed (0 if not armed).
uint64_t hitCount(const std::string &Site);

/// RAII arming for tests: arms in the constructor, disarms the site in the
/// destructor.
class ScopedFault {
public:
  ScopedFault(std::string Site, uint64_t FailOnNth, uint64_t Count = 1)
      : Site(std::move(Site)) {
    arm(this->Site, FailOnNth, Count);
  }
  ~ScopedFault() { disarm(Site); }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;

private:
  std::string Site;
};

} // namespace rs::fault

#endif // RUSTSIGHT_SUPPORT_FAULTINJECTION_H

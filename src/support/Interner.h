//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense string-to-id index over a fixed name universe. The analysis layer
/// interns function names once (id = module ordinal) and then works in id
/// space: adjacency as flat vectors, membership as bitsets, lookups as a
/// binary search over a sorted permutation instead of per-query tree walks.
///
/// The index stores views into the caller's strings; the strings must
/// outlive the index (function names live in the Module, which outlives
/// every analysis built over it).
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_INTERNER_H
#define RUSTSIGHT_SUPPORT_INTERNER_H

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

namespace rs {

/// Maps each name in a fixed list to its position (the id), answers
/// name-to-id queries in O(log n), and exposes the ids in lexicographic
/// name order so id-space consumers can preserve the name-sorted iteration
/// order the string-keyed containers used to provide.
class NameIndex {
public:
  static constexpr uint32_t None = ~uint32_t(0);

  NameIndex() = default;

  explicit NameIndex(std::vector<std::string_view> NamesIn)
      : Names(std::move(NamesIn)), Order(Names.size()), Rank(Names.size()) {
    for (uint32_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      return Names[A] < Names[B] || (Names[A] == Names[B] && A < B);
    });
    for (uint32_t R = 0; R != Order.size(); ++R)
      Rank[Order[R]] = R;
  }

  uint32_t size() const { return static_cast<uint32_t>(Names.size()); }

  std::string_view name(uint32_t Id) const { return Names[Id]; }

  /// The id of \p Name, or None when absent. With duplicate names (the
  /// verifier rejects them, but the index stays total anyway) the first in
  /// id order wins.
  uint32_t idOf(std::string_view Name) const {
    auto It = std::lower_bound(Order.begin(), Order.end(), Name,
                               [&](uint32_t Id, std::string_view N) {
                                 return Names[Id] < N;
                               });
    if (It == Order.end() || Names[*It] != Name)
      return None;
    return *It;
  }

  /// All ids, sorted by name.
  const std::vector<uint32_t> &idsByName() const { return Order; }

  /// Position of \p Id in name order; sorting ids by rank reproduces the
  /// iteration order of a name-keyed std::map.
  uint32_t rankOf(uint32_t Id) const { return Rank[Id]; }

private:
  std::vector<std::string_view> Names; ///< By id.
  std::vector<uint32_t> Order;         ///< Ids sorted by name.
  std::vector<uint32_t> Rank;          ///< Id -> position in Order.
};

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_INTERNER_H

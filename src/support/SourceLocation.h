//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations for MIR files and Rust source files.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_SOURCELOCATION_H
#define RUSTSIGHT_SUPPORT_SOURCELOCATION_H

#include <memory>
#include <string>

namespace rs {

/// A 1-based line/column position within a named input buffer. File names are
/// interned by the owner (Lexer/SourceManager); SourceLocation stores a
/// pointer to the interned name so copies stay cheap.
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(const std::string *File, unsigned Line, unsigned Col)
      : File(File), Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }
  unsigned line() const { return Line; }
  unsigned column() const { return Col; }

  /// The file name, or "" when the location has no file (builder-made IR).
  const std::string &file() const;

  /// Renders "file:line:col" (or "line:col" with no file).
  std::string toString() const;

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.File == B.File && A.Line == B.Line && A.Col == B.Col;
  }

private:
  const std::string *File = nullptr;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Interns \p Name into a process-lifetime pool and returns a stable pointer
/// suitable for storing in SourceLocations. Thread-safe (the parallel
/// engine parses files concurrently); repeated calls with equal names
/// return the same pointer.
const std::string *internFileName(std::string_view Name);

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_SOURCELOCATION_H

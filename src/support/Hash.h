//===----------------------------------------------------------------------===//
//
// Part of RustSight, a reproduction of "Understanding Memory and Thread
// Safety Practices and Issues in Real-World Rust Programs" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable 64-bit content hashing (FNV-1a) for the result cache's
/// content-addressed fingerprints. The function is fixed forever: cache
/// entries written by one build must be readable by the next, so changing
/// the algorithm requires bumping the cache format version instead.
///
//===----------------------------------------------------------------------===//

#ifndef RUSTSIGHT_SUPPORT_HASH_H
#define RUSTSIGHT_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace rs {

inline constexpr uint64_t Fnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t Fnv1a64Prime = 1099511628211ull;

/// FNV-1a over \p Bytes, continuing from \p Seed. Chain calls to hash
/// multi-part inputs: fnv1a64(B, fnv1a64(A)) != fnv1a64(A + B) only in that
/// the former is exactly the hash of the concatenation — parts hash the
/// same as the joined string, so include explicit separators when the
/// split points matter.
constexpr uint64_t fnv1a64(std::string_view Bytes,
                           uint64_t Seed = Fnv1a64OffsetBasis) {
  uint64_t H = Seed;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= Fnv1a64Prime;
  }
  return H;
}

/// Folds the 8 bytes of \p Value into \p Seed (little-endian byte order,
/// explicitly, so the result is identical across hosts).
constexpr uint64_t fnv1a64U64(uint64_t Value,
                              uint64_t Seed = Fnv1a64OffsetBasis) {
  uint64_t H = Seed;
  for (int I = 0; I != 8; ++I) {
    H ^= (Value >> (8 * I)) & 0xff;
    H *= Fnv1a64Prime;
  }
  return H;
}

/// Renders a hash as fixed-width lowercase hex (16 digits) — the stable
/// on-disk spelling of cache keys.
std::string hashToHex(uint64_t H);

/// Parses the hashToHex spelling back; returns false on malformed input.
bool hexToHash(std::string_view Hex, uint64_t &Out);

} // namespace rs

#endif // RUSTSIGHT_SUPPORT_HASH_H

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace rs;

JsonWriter::JsonWriter() { Stack.push_back({ScopeKind::Root}); }

void JsonWriter::preValue() {
  Scope &Top = Stack.back();
  if (Top.Kind == ScopeKind::Object) {
    assert(Top.PendingKey && "object value without a key");
    Top.PendingKey = false;
    return;
  }
  if (Top.SawElement)
    Out += ',';
  Top.SawElement = true;
}

void JsonWriter::appendEscaped(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({ScopeKind::Object});
}

void JsonWriter::endObject() {
  assert(Stack.back().Kind == ScopeKind::Object && "mismatched endObject");
  assert(!Stack.back().PendingKey && "dangling key at endObject");
  Stack.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({ScopeKind::Array});
}

void JsonWriter::endArray() {
  assert(Stack.back().Kind == ScopeKind::Array && "mismatched endArray");
  Stack.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view Name) {
  Scope &Top = Stack.back();
  assert(Top.Kind == ScopeKind::Object && "key outside of object");
  assert(!Top.PendingKey && "two keys in a row");
  if (Top.SawElement)
    Out += ',';
  Top.SawElement = true;
  Top.PendingKey = true;
  appendEscaped(Name);
  Out += ':';
}

void JsonWriter::value(std::string_view S) {
  preValue();
  appendEscaped(S);
}

void JsonWriter::value(int64_t N) {
  preValue();
  Out += std::to_string(N);
}

void JsonWriter::value(uint64_t N) {
  preValue();
  Out += std::to_string(N);
}

void JsonWriter::value(double D) {
  preValue();
  Out += formatDouble(D, 6);
}

void JsonWriter::value(bool B) {
  preValue();
  Out += B ? "true" : "false";
}

void JsonWriter::nullValue() {
  preValue();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// JsonValue parsing
//===----------------------------------------------------------------------===//

namespace rs {

/// Recursive-descent parser over a string_view. Every entry point leaves
/// Pos just past what it consumed; failure is reported by return value,
/// never by exception, so corrupt cache entries cannot take down a run.
class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  bool parseDocument(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipWs();
    return Pos == Text.size(); // Trailing garbage is corruption.
  }

private:
  static constexpr int MaxDepth = JsonValue::MaxParseDepth;

  std::string_view Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool eatWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth || Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return Depth < MaxDepth && parseObject(Out, Depth);
    case '[':
      return Depth < MaxDepth && parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.S);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return eatWord("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return eatWord("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return eatWord("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (eat('}'))
      return true;
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"' || !parseString(Key))
        return false;
      skipWs();
      if (!eat(':'))
        return false;
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (eat('}'))
        return true;
      if (!eat(','))
        return false;
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (eat(']'))
      return true;
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (eat(']'))
        return true;
      if (!eat(','))
        return false;
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return false;
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return false;
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else
              return false;
          }
          Pos += 4;
          // The writer only emits \u00xx control escapes; decode the BMP
          // as UTF-8 so any conforming producer round-trips too.
          if (Code < 0x80) {
            Out += char(Code);
          } else if (Code < 0x800) {
            Out += char(0xc0 | (Code >> 6));
            Out += char(0x80 | (Code & 0x3f));
          } else {
            Out += char(0xe0 | (Code >> 12));
            Out += char(0x80 | ((Code >> 6) & 0x3f));
            Out += char(0x80 | (Code & 0x3f));
          }
          break;
        }
        default:
          return false;
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return false; // Unterminated string.
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Fractional = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C >= '0' && C <= '9') {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        Fractional = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return false;
    std::string Num(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    if (!Fractional) {
      long long V = std::strtoll(Num.c_str(), &End, 10);
      if (End == Num.c_str() + Num.size() && errno != ERANGE) {
        Out.K = JsonValue::Kind::Int;
        Out.I = V;
        return true;
      }
    }
    errno = 0;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size() || errno == ERANGE)
      return false;
    Out.K = JsonValue::Kind::Double;
    Out.D = D;
    return true;
  }
};

} // namespace rs

std::optional<JsonValue> JsonValue::parse(std::string_view Text) {
  JsonValue V;
  if (!JsonParser(Text).parseDocument(V))
    return std::nullopt;
  return V;
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string_view JsonValue::getString(std::string_view Key,
                                      std::string_view Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? std::string_view(V->S) : Default;
}

int64_t JsonValue::getInt(std::string_view Key, int64_t Default) const {
  const JsonValue *V = get(Key);
  return V && V->isInt() ? V->I : Default;
}

bool JsonValue::getBool(std::string_view Key, bool Default) const {
  const JsonValue *V = get(Key);
  return V && V->isBool() ? V->B : Default;
}

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>

using namespace rs;

JsonWriter::JsonWriter() { Stack.push_back({ScopeKind::Root}); }

void JsonWriter::preValue() {
  Scope &Top = Stack.back();
  if (Top.Kind == ScopeKind::Object) {
    assert(Top.PendingKey && "object value without a key");
    Top.PendingKey = false;
    return;
  }
  if (Top.SawElement)
    Out += ',';
  Top.SawElement = true;
}

void JsonWriter::appendEscaped(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({ScopeKind::Object});
}

void JsonWriter::endObject() {
  assert(Stack.back().Kind == ScopeKind::Object && "mismatched endObject");
  assert(!Stack.back().PendingKey && "dangling key at endObject");
  Stack.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({ScopeKind::Array});
}

void JsonWriter::endArray() {
  assert(Stack.back().Kind == ScopeKind::Array && "mismatched endArray");
  Stack.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view Name) {
  Scope &Top = Stack.back();
  assert(Top.Kind == ScopeKind::Object && "key outside of object");
  assert(!Top.PendingKey && "two keys in a row");
  if (Top.SawElement)
    Out += ',';
  Top.SawElement = true;
  Top.PendingKey = true;
  appendEscaped(Name);
  Out += ':';
}

void JsonWriter::value(std::string_view S) {
  preValue();
  appendEscaped(S);
}

void JsonWriter::value(int64_t N) {
  preValue();
  Out += std::to_string(N);
}

void JsonWriter::value(uint64_t N) {
  preValue();
  Out += std::to_string(N);
}

void JsonWriter::value(double D) {
  preValue();
  Out += formatDouble(D, 6);
}

void JsonWriter::value(bool B) {
  preValue();
  Out += B ? "true" : "false";
}

void JsonWriter::nullValue() {
  preValue();
  Out += "null";
}

#include "support/Symbol.h"

#include "support/Hash.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <unordered_map>

using namespace rs;

namespace {

/// Sharded append-only interner. Lookups and inserts take one shard mutex;
/// id-to-string resolution is lock-free over chunked, atomically published
/// storage (strings are constructed before their id escapes the shard
/// mutex, so any thread holding an id reads a fully built entry).
class InternerImpl {
public:
  static constexpr uint32_t ShardBits = 4;
  static constexpr uint32_t NumShards = 1u << ShardBits;
  static constexpr uint32_t ChunkSize = 4096;
  static constexpr uint32_t MaxChunks = 16384; ///< ~64M symbols per shard.

  uint32_t intern(std::string_view S) {
    if (S.empty())
      return 0;
    uint32_t ShardIdx =
        static_cast<uint32_t>(fnv1a64(S)) & (NumShards - 1);
    Shard &Sh = Shards[ShardIdx];
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto It = Sh.Map.find(S);
    if (It != Sh.Map.end())
      return It->second;
    uint32_t Local = Sh.Count;
    uint32_t Chunk = Local / ChunkSize;
    assert(Chunk < MaxChunks && "interner shard exhausted");
    if (Sh.Chunks[Chunk].load(std::memory_order_acquire) == nullptr)
      Sh.Chunks[Chunk].store(new std::string[ChunkSize],
                             std::memory_order_release);
    std::string *Slot =
        Sh.Chunks[Chunk].load(std::memory_order_acquire) + Local % ChunkSize;
    *Slot = std::string(S);
    uint32_t Id = ((Local << ShardBits) | ShardIdx) + 1;
    Sh.Map.emplace(std::string_view(*Slot), Id);
    ++Sh.Count;
    Total.fetch_add(1, std::memory_order_relaxed);
    return Id;
  }

  const std::string &str(uint32_t Id) const {
    if (Id == 0)
      return Empty;
    uint32_t Raw = Id - 1;
    const Shard &Sh = Shards[Raw & (NumShards - 1)];
    uint32_t Local = Raw >> ShardBits;
    const std::string *Chunk =
        Sh.Chunks[Local / ChunkSize].load(std::memory_order_acquire);
    assert(Chunk && "symbol id from a different process?");
    return Chunk[Local % ChunkSize];
  }

  uint32_t size() const {
    return Total.load(std::memory_order_relaxed) + 1; // + the empty symbol.
  }

private:
  struct Shard {
    std::mutex Mu;
    std::unordered_map<std::string_view, uint32_t> Map;
    std::atomic<std::string *> Chunks[MaxChunks] = {};
    uint32_t Count = 0; ///< Guarded by Mu.
  };

  Shard Shards[NumShards];
  std::atomic<uint32_t> Total{0};
  std::string Empty;
};

InternerImpl &interner() {
  // Leaked intentionally: symbols must stay resolvable during static
  // destruction (diagnostics built at exit).
  static InternerImpl *I = new InternerImpl();
  return *I;
}

} // namespace

Symbol Symbol::intern(std::string_view S) { return Symbol(interner().intern(S)); }

const std::string &Symbol::str() const { return interner().str(Id); }

std::string_view Symbol::view() const { return interner().str(Id); }

uint32_t Symbol::poolSize() { return interner().size(); }
